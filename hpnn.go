// Package hpnn is the public API of the HPNN reproduction — the
// obfuscation framework of "Hardware-Assisted Intellectual Property
// Protection of Deep Learning Models" (Chakraborty, Mondal, Srivastava,
// DAC 2020).
//
// The package re-exports the user-facing workflow from the internal
// packages, organized around the paper's three roles:
//
//   - The model owner generates a secret 256-bit HPNN key, trains a DNN
//     with the key-dependent backpropagation algorithm (TrainLocked) and
//     publishes the obfuscated weights (SaveModel / modelio zoo).
//
//   - An authorized end-user holds a trusted hardware device with the key
//     embedded on-chip (NewTrustedDevice) and runs inference through the
//     TPU-like accelerator simulator (NewAccelerator), which restores the
//     intended functionality.
//
//   - An attacker can download the published model and run it on the
//     baseline architecture (DisengageLocks) or mount fine-tuning attacks
//     (FineTune) — both collapse or fall short of the owner's accuracy.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every table and figure.
package hpnn

import (
	"fmt"
	"io"
	"strings"

	"hpnn/internal/attack"
	"hpnn/internal/core"
	"hpnn/internal/dataset"
	"hpnn/internal/keys"
	"hpnn/internal/lockscheme"
	"hpnn/internal/modelio"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
	"hpnn/internal/serve"
	"hpnn/internal/tensor"
	"hpnn/internal/tpu"
	"hpnn/internal/train"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Model is a (possibly key-locked) deep-learning model.
	Model = core.Model
	// Config describes a model architecture to build.
	Config = core.Config
	// Arch names one of the paper's network architectures.
	Arch = core.Arch
	// TrainConfig controls a training or fine-tuning run.
	TrainConfig = core.TrainConfig
	// TrainResult records a run's per-epoch trajectory.
	TrainResult = core.TrainResult
	// TrainHooks is the trainer's observer bus (per-step timing,
	// samples/sec, evaluation callbacks, checkpoint snapshots).
	TrainHooks = train.Hooks
	// TrainStepInfo describes one completed optimizer step.
	TrainStepInfo = train.StepInfo
	// TrainEpochInfo describes one completed epoch, including throughput
	// and a Snapshot closure for checkpointing.
	TrainEpochInfo = train.EpochInfo
	// TrainerState is the resumable trainer state captured by a snapshot
	// and serialized inside checkpoint records.
	TrainerState = train.State
	// LRSchedule maps an epoch index to a learning rate.
	LRSchedule = train.LRSchedule

	// Key is a 256-bit HPNN secret key.
	Key = keys.Key
	// Device is a sealed trusted-hardware key container.
	Device = keys.Device
	// Schedule is the private neuron→accumulator-column mapping.
	Schedule = schedule.Schedule

	// Dataset is a generated benchmark with train/test splits.
	Dataset = dataset.Dataset
	// DatasetConfig selects and sizes a benchmark.
	DatasetConfig = dataset.Config

	// Tensor is the dense float64 array type used throughout.
	Tensor = tensor.Tensor

	// Accelerator is the simulated TPU-like trusted inference device.
	Accelerator = tpu.Accelerator
	// AcceleratorConfig sizes the simulated matrix-multiply unit.
	AcceleratorConfig = tpu.Config
	// GateReport is the hardware-overhead accounting of §III-D3.
	GateReport = tpu.GateReport

	// FineTuneConfig describes a model fine-tuning attack.
	FineTuneConfig = attack.FineTuneConfig
	// AttackResult is the outcome of a fine-tuning attack.
	AttackResult = attack.Result

	// InferenceServer is the concurrent batched serving layer over the
	// locked TPU path: a micro-batcher feeding per-shard accelerators.
	InferenceServer = serve.Server
	// ServeConfig tunes the batching service (shards, batch size, window,
	// queue depth); the zero value selects defaults.
	ServeConfig = serve.Config
	// ServeStats is a snapshot of serving counters and latency percentiles.
	ServeStats = serve.Stats

	// ModelRegistry is the multi-tenant serving layer: it routes requests
	// by model ID to per-model tenants (lazily compiled+sealed serving
	// stacks), holds residents LRU under a workspace-memory budget, and
	// hot-swaps new versions with zero downtime via Deploy.
	ModelRegistry = serve.Registry
	// RegistryConfig tunes the multi-tenant registry: the per-tenant
	// serving config, the workspace-memory budget, and default routing.
	RegistryConfig = serve.RegistryConfig
	// ServeTenantInfo reports one tenant's identity, residency and
	// cumulative serving/hardware counters.
	ServeTenantInfo = serve.TenantInfo
	// ServeRegistryCounters snapshots registry-level activity: compiles,
	// evictions, hot-swaps and swap-race reroutes.
	ServeRegistryCounters = serve.RegistryCounters

	// KeyRing is the serving layer's key-isolation boundary: one trusted
	// device per served model, never shared across tenants.
	KeyRing = keys.Ring

	// ZooClient talks to an hpnn-zoo model-sharing server: publish, list,
	// fetch, and ETag-conditional blob polls for hot-swap watch loops.
	ZooClient = modelio.Client
	// ZooRecord describes one published zoo entry (name, lock scheme,
	// version).
	ZooRecord = modelio.Record
)

// Serving execution engines, selected by ServeConfig.Engine.
const (
	// ServeEngineBatched (the default) executes each flushed micro-batch
	// as one call on the batched int8 tier — bitwise-identical to the
	// golden path, several times faster (see results/BENCH_serve.json).
	ServeEngineBatched = serve.EngineBatched
	// ServeEngineGolden walks requests one at a time through the
	// per-sample simulator, the bit-accurate reference engine.
	ServeEngineGolden = serve.EngineGolden
)

// Architectures of the paper's evaluation.
const (
	CNN1     = core.CNN1
	CNN2     = core.CNN2
	CNN3     = core.CNN3
	ResNet18 = core.ResNet18
	MLP      = core.MLP
)

// Attacker initialization modes (§IV-C).
const (
	InitStolen = attack.InitStolen
	InitRandom = attack.InitRandom
)

// KeyBits is the HPNN key length (256, one bit per accumulator column).
const KeyBits = keys.KeyBits

// NewModel builds a model with freshly initialized weights and engaged
// (all-zero) locks.
func NewModel(cfg Config) (*Model, error) { return core.NewModel(cfg) }

// NewTensor allocates a zero-filled tensor with the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// GenerateKey draws a random HPNN key from a deterministic seed.
func GenerateKey(seed uint64) Key { return keys.Generate(rng.New(seed)) }

// KeyFromHex parses a 64-character hex key.
func KeyFromHex(s string) (Key, error) { return keys.FromHex(s) }

// NewSchedule creates the owner's private hardware scheduling algorithm
// for 256-column hardware.
func NewSchedule(seed uint64) *Schedule { return schedule.New(keys.KeyBits, seed) }

// NewTrustedDevice provisions trusted hardware with the key sealed on-chip.
func NewTrustedDevice(serial string, key Key) *Device { return keys.NewDevice(serial, key) }

// Authority is the owner's licensing service: it provisions trusted
// devices by serial and supports revocation (revoked devices answer every
// key-bit query with zero, degrading to the useless baseline function).
type Authority = keys.Authority

// NewAuthority creates a licensing authority holding the HPNN key.
func NewAuthority(key Key) *Authority { return keys.NewAuthority(key) }

// TrainLocked runs the owner's key-dependent training: the key is expanded
// through the schedule onto every locked neuron, then the network is
// trained with the key-dependent backpropagation rule.
func TrainLocked(m *Model, key Key, sched *Schedule, trainX *Tensor, trainY []int, testX *Tensor, testY []int, cfg TrainConfig) TrainResult {
	m.ApplyRawKey(key, sched)
	return core.Train(m, trainX, trainY, testX, testY, cfg)
}

// Train runs conventional training with the model's current lock state
// (all-zero engaged locks are the unlocked baseline).
func Train(m *Model, trainX *Tensor, trainY []int, testX *Tensor, testY []int, cfg TrainConfig) TrainResult {
	return core.Train(m, trainX, trainY, testX, testY, cfg)
}

// TrainChecked is Train returning errors instead of panicking: typed
// train.DataSizeError for sample/label mismatches, configuration errors
// for unknown optimizer or schedule names, and restore errors when
// cfg.Resume does not match the run.
func TrainChecked(m *Model, trainX *Tensor, trainY []int, testX *Tensor, testY []int, cfg TrainConfig) (TrainResult, error) {
	return core.TrainChecked(m, trainX, trainY, testX, testY, cfg)
}

// GenerateDataset builds one of the synthetic benchmarks ("fashion",
// "cifar" or "svhn").
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) { return dataset.Generate(cfg) }

// FineTune mounts a model fine-tuning attack against a victim model.
func FineTune(victim *Model, ds *Dataset, cfg FineTuneConfig) (AttackResult, *Model, error) {
	return attack.FineTune(victim, ds, cfg)
}

// NewAccelerator builds the simulated TPU-like device for the paper's
// default HPNN XOR scheme. dev may be nil to model commodity hardware
// without the HPNN key.
func NewAccelerator(cfg AcceleratorConfig, dev *Device, sched *Schedule) (*Accelerator, error) {
	return tpu.NewAccelerator(cfg, dev, sched)
}

// LockScheme is one pluggable locking backend: how a model is entangled
// with a hardware key at training time, transformed for publication, and
// lowered onto the accelerator (package lockscheme).
type LockScheme = lockscheme.Scheme

// LockSchemeNames lists the registered lock-scheme identifiers, sorted.
func LockSchemeNames() []string { return lockscheme.Names() }

// LockSchemeByName resolves a scheme identifier; the empty string selects
// the paper's default HPNN XOR scheme.
func LockSchemeByName(name string) (LockScheme, error) { return lockscheme.Get(name) }

// DefaultLockScheme is the paper's per-neuron XOR scheme.
func DefaultLockScheme() LockScheme { return lockscheme.Default() }

// CanonicalLockScheme normalizes a stored scheme identifier: the empty
// string (pre-scheme artifacts) resolves to the default scheme's name.
func CanonicalLockScheme(name string) string { return lockscheme.Canonical(name) }

// DescribeLockSchemes renders the registry as "name  description" lines for
// CLI -scheme list output.
func DescribeLockSchemes() string {
	var b strings.Builder
	for _, n := range lockscheme.Names() {
		s, err := lockscheme.Get(n)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "%-12s %s\n", n, s.Describe())
	}
	return b.String()
}

// NewAcceleratorFor builds the simulated device for an explicit lock
// scheme: the in-datapath XOR scheme drives the key-conditioned
// accumulators, weight-space schemes unlock into a device-private clone at
// plan-compile time.
func NewAcceleratorFor(scheme LockScheme, cfg AcceleratorConfig, dev *Device, sched *Schedule) (*Accelerator, error) {
	return tpu.NewAcceleratorFor(scheme, cfg, dev, sched)
}

// DefaultAcceleratorConfig is the paper's 256×256 MMU geometry.
func DefaultAcceleratorConfig() AcceleratorConfig { return tpu.DefaultConfig() }

// HardwareOverhead reports the gate/area/cycle cost of the HPNN hardware
// modification for an MMU geometry (§III-D3).
func HardwareOverhead(cfg AcceleratorConfig) GateReport { return tpu.Gates(cfg) }

// Serving-layer errors: ErrServerOverloaded when the bounded request queue
// sheds load, ErrServerClosed after shutdown has begun, ErrServerRetry when
// a request kept racing tenant hot-swaps (back off and resubmit).
// ErrZooNotModified is the conditional-fetch "nothing changed" signal.
var (
	ErrServerOverloaded = serve.ErrOverloaded
	ErrServerClosed     = serve.ErrClosed
	ErrServerRetry      = serve.ErrRetry
	ErrZooNotModified   = modelio.ErrNotModified
)

// NewInferenceServer starts a batched serving instance for one model:
// each shard owns a private compiled accelerator bound to the same sealed
// key device and schedule, warmed and sealed so steady-state requests
// allocate nothing. dev may be nil to serve on commodity hardware (the
// paper's attacker scenario). Stop with Close, which drains accepted
// requests and returns final statistics.
func NewInferenceServer(m *Model, acfg AcceleratorConfig, dev *Device, sched *Schedule, cfg ServeConfig) (*InferenceServer, error) {
	return serve.New(m, acfg, dev, sched, cfg)
}

// NewModelRegistry builds an empty multi-tenant serving registry: add
// models with Register (serialized blob + per-model key device + private
// schedule), serve with Predict/PredictBatch routing by model ID, roll new
// versions with Deploy (zero-downtime hot-swap), stop with Close. Tenants
// compile lazily and are evicted least-recently-used when resident
// workspaces exceed the configured memory budget.
func NewModelRegistry(acfg AcceleratorConfig, cfg RegistryConfig) *ModelRegistry {
	return serve.NewRegistry(acfg, cfg)
}

// NewKeyRing returns an empty per-model device ring — the structure that
// enforces one trusted device per served model.
func NewKeyRing() *KeyRing { return keys.NewRing() }

// NewZooClient returns a client for an hpnn-zoo server at base.
func NewZooClient(base string) *ZooClient { return modelio.NewClient(base) }

// Wire codec of the hpnn-serve TCP protocol (little-endian length-prefixed
// frames), re-exported so clients can be written against the public API.
// EncodeServeRequest writes a v1 frame (routes to the default model).
func EncodeServeRequest(w io.Writer, x *Tensor) error { return serve.EncodeRequest(w, x) }

// EncodeServeRequestTo writes a v2 frame addressed to the named model; an
// empty model routes to the server's default, like a v1 frame.
func EncodeServeRequestTo(w io.Writer, model string, x *Tensor) error {
	return serve.EncodeRequestTo(w, model, x)
}

// DecodeServeRequest reads one request frame of either protocol version;
// it validates shape, size and value finiteness and never panics on
// malformed input.
func DecodeServeRequest(r io.Reader) (*Tensor, error) { return serve.DecodeRequest(r) }

// DecodeServeRequestModel is DecodeServeRequest plus the model ID the
// request routes to ("" means the default model).
func DecodeServeRequestModel(r io.Reader) (*Tensor, string, error) {
	return serve.DecodeRequestModel(r)
}

// EncodeServeResponse writes one response frame: a class or an error.
func EncodeServeResponse(w io.Writer, class int, err error) error {
	return serve.EncodeResponse(w, class, err)
}

// DecodeServeResponse reads one response frame, returning the predicted
// class or the server-reported error.
func DecodeServeResponse(r io.Reader) (int, error) { return serve.DecodeResponse(r) }

// SaveModel serializes a model (weights only — never key material) to w.
func SaveModel(w io.Writer, m *Model) error { return modelio.Save(w, m) }

// LoadModel deserializes a model published with SaveModel.
func LoadModel(r io.Reader) (*Model, error) { return modelio.Load(r) }

// SaveModelFile and LoadModelFile are file-path conveniences.
func SaveModelFile(path string, m *Model) error { return modelio.SaveFile(path, m) }

// LoadModelFile reads a model from a file.
func LoadModelFile(path string) (*Model, error) { return modelio.LoadFile(path) }

// SaveCheckpoint writes a resumable training checkpoint: the model
// (including lock bits — checkpoints are the owner's PRIVATE artifact,
// unlike SaveModel's published format) plus the trainer state from a
// TrainEpochInfo.Snapshot. Restore by passing the loaded state as
// TrainConfig.Resume.
func SaveCheckpoint(w io.Writer, m *Model, st TrainerState) error {
	return modelio.SaveCheckpoint(w, m, st)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(r io.Reader) (*Model, TrainerState, error) { return modelio.LoadCheckpoint(r) }

// SaveCheckpointFile writes a checkpoint atomically (temp file + rename),
// so a crash mid-write never clobbers the previous good checkpoint.
func SaveCheckpointFile(path string, m *Model, st TrainerState) error {
	return modelio.SaveCheckpointFile(path, m, st)
}

// LoadCheckpointFile reads a checkpoint from a file.
func LoadCheckpointFile(path string) (*Model, TrainerState, error) {
	return modelio.LoadCheckpointFile(path)
}
