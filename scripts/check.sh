#!/bin/sh
# Fast correctness gate for the hot compute path: static analysis plus the
# concurrent packages under the race detector. The worker pool, the
# buffer-reusing layers and the serving layer (batcher + worker shards)
# are the repo's concurrent code, so this catches dispatch and
# request-lifecycle races without paying for the full (slow) suite.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
# The in-tree analyzer (DESIGN.md §11, §16): zero-alloc, determinism, and
# concurrency invariants as whole-module structural checks, plus the
# keyflow taint check (default-on) proving key material never reaches a
# log, error, file, or wire encoder outside the sanctioned choke points.
# Runs before the race gates — it is faster and its findings are cheaper
# to read.
go run ./cmd/hpnn-lint ./...
go test -race ./internal/tensor/... ./internal/nn/... ./internal/serve/... ./internal/train/...
# The accelerator's own concurrency surface (per-shard plans over one
# shared model, zero-alloc PredictSample) — by name, so the gate skips the
# tpu package's slow training suites.
go test -race -run 'TestServeConcurrentAccelerators|TestPredictSampleMatchesPredict' ./internal/tpu/
# The serve lifecycle tests (hammer, close-under-load, backpressure,
# cancellation) are scheduler-sensitive; repeat them to shake out
# interleavings a single run can miss.
go test -race -count=3 -run TestServe ./internal/serve/
# Multi-tenant registry lifecycle (DESIGN.md §14): the cross-tenant hammer,
# hot-swap zero-drop/bitwise-split, LRU eviction under a memory budget and
# close-under-load are all swap/evict/route interleavings — repeat under
# the race detector like the serve suite above.
go test -race -count=3 -run TestRegistry ./internal/serve/
# Trainer engine determinism: kill/resume must reproduce the uninterrupted
# run bitwise (both optimizers, locked model), and the checkpoint codec
# must round-trip exactly. By name, so the gate stays fast.
go test -race -run 'TestBitwiseResume|TestResumeValidation|TestTrainerMatchesInlineLoop' ./internal/train/
go test -race -run 'TestCheckpoint' ./internal/modelio/
# Data-parallel trainer (DESIGN.md §15): K-replica runs must be bitwise
# identical for every replica count and worker-pool width, match the
# sequential loop at one shard, and survive a kill at K=4 resumed at K=2
# bitwise-equal to the uninterrupted run. The replica goroutines are the
# trainer's only concurrency, so these run under the race detector.
go test -race -run 'TestReplica' ./internal/train/
# Micro-shard decomposition properties: exact in-order partitions,
# bitwise-reproducible shard streams per (seed, epoch, shard count).
go test -race -run 'TestShard' ./internal/dataset/
# Packed GEMM engine invariants under the race detector: worker-count
# independence (bitwise) and the zero-alloc steady-state pin for the
# pooled packing scratch. By name, so the gate stays fast. TestInt8GEMM
# covers the int8 panel engine behind the batched inference tier.
go test -race -run 'TestGEMMDeterministicAcrossWorkers|TestGEMMZeroAllocSteadyState|TestGEMMMatchesNaive|TestInt8GEMM' ./internal/tensor/
# Batched int8 inference tier: bitwise parity with the per-sample golden
# path across every registered scheme, worker-count determinism, partial
# batches after Seal, revocation mid-service, and the quantizer pin. The
# checked-in fuzz corpus replays as unit cases under -race; the zero-alloc
# pin skips itself when the race detector is on.
go test -race -run 'TestPredictBatch|TestQuantizeSlice|FuzzPredictBatch' ./internal/tpu/
# Lock-scheme contract suite in its quick profile: every registered backend
# must honor the roundtrip/collapse/leakage/revocation clauses. -short
# selects QuickContract (small victims, seconds per scheme).
go test -short -run 'TestSchemeContract' ./internal/lockscheme/
