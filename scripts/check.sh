#!/bin/sh
# Fast correctness gate for the hot compute path: static analysis plus the
# tensor/nn suites under the race detector. The worker pool and the
# buffer-reusing layers are the only concurrent code in the repo, so this
# catches dispatch races without paying for the full (slow) suite.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go test -race ./internal/tensor/... ./internal/nn/...
