#!/bin/sh
# GEMM speedup tracker: runs the blocked-vs-naive micro-benchmarks
# (internal/tensor) and the CNN1 train-step macro-benchmark (internal/nn),
# then emits machine-readable results/BENCH_gemm.json with ns/op for every
# benchmark and a naive/blocked speedup ratio per paired case. The naive
# kernels retained in matmul_ref.go are the fixed "before" baseline, so
# the ratios stay meaningful as the blocked engine evolves.
#
# BENCHTIME=2s scripts/bench_gemm.sh   # longer runs for stable numbers
set -eu
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1s}"
out=results/BENCH_gemm.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkGEMM$|BenchmarkGEMMVariants$' \
	-benchtime "$benchtime" ./internal/tensor/ | tee "$tmp"
go test -run '^$' -bench 'BenchmarkCNN1TrainStep$' \
	-benchtime "$benchtime" ./internal/nn/ | tee -a "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	ns[name] = $3
	order[++n] = name
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"benchtime\": \"%s\",\n", "'"$benchtime"'"
	printf "  \"ns_per_op\": {\n"
	for (i = 1; i <= n; i++)
		printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n ? "," : "")
	printf "  },\n"
	m = 0
	for (i = 1; i <= n; i++) {
		name = order[i]
		if (name ~ /blocked/) {
			ref = name
			sub(/blocked/, "naive", ref)
			if (ref in ns) pairs[++m] = name
		}
	}
	printf "  \"speedup_naive_over_blocked\": {\n"
	for (i = 1; i <= m; i++) {
		name = pairs[i]
		ref = name
		sub(/blocked/, "naive", ref)
		printf "    \"%s\": %.2f%s\n", name, ns[ref] / ns[name], (i < m ? "," : "")
	}
	printf "  }\n}\n"
}' "$tmp" >"$out"

echo "wrote $out"
