#!/bin/sh
# Data-parallel training scaling tracker: runs the K-replica train-step
# macro-benchmark (internal/core, CNN1 + full-width ResNet-18 at
# K ∈ {1,2,4,8}) and emits machine-readable results/BENCH_train.json with
# ns/op, samples/sec and the speedup over K=1 per case. The file records
# the runner's CPU count because the speedup column is only meaningful
# when there are cores to scale across — a single-core runner honestly
# reports ~1.0x for every K.
#
# BENCHTIME=2s scripts/bench_train.sh   # longer runs for stable numbers
set -eu
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1s}"
out=results/BENCH_train.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

cpus=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

go test -run '^$' -bench 'BenchmarkTrainStep$' \
	-benchtime "$benchtime" ./internal/core/ | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v cpus="$cpus" -v batch=32 '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^BenchmarkTrainStep\//, "", name)
	ns[name] = $3
	order[++n] = name
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"benchtime\": \"%s\",\n", "'"$benchtime"'"
	printf "  \"cpus\": %d,\n", cpus
	printf "  \"batch\": %d,\n", batch
	printf "  \"ns_per_step\": {\n"
	for (i = 1; i <= n; i++)
		printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n ? "," : "")
	printf "  },\n"
	printf "  \"samples_per_sec\": {\n"
	for (i = 1; i <= n; i++)
		printf "    \"%s\": %.1f%s\n", order[i], batch * 1e9 / ns[order[i]], (i < n ? "," : "")
	printf "  },\n"
	printf "  \"speedup_over_k1\": {\n"
	for (i = 1; i <= n; i++) {
		name = order[i]
		ref = name
		sub(/\/K[0-9]+$/, "/K1", ref)
		printf "    \"%s\": %.2f%s\n", name, ns[ref] / ns[name], (i < n ? "," : "")
	}
	printf "  }\n}\n"
}' "$tmp" >"$out"

echo "wrote $out"
