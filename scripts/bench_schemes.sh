#!/bin/sh
# Cross-scheme attack bench: runs every registered lock scheme through the
# identical train→publish→attack pipeline (hpnn-bench -exp schemes) and
# emits machine-readable results/BENCH_schemes.json. The rows feed the
# README's cross-scheme table; rerun after touching internal/lockscheme or
# the generic attacks in internal/attack.
#
# PROFILE=quick scripts/bench_schemes.sh   # larger victims, slower
set -eu
cd "$(dirname "$0")/.."

profile="${PROFILE:-bench}"
out=results/BENCH_schemes.json
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go run ./cmd/hpnn-bench -exp schemes -profile "$profile" -v -json "$tmp"

{
	printf '{\n  "generated": "%s",\n  "profile": "%s",\n  "rows": ' \
		"$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$profile"
	cat "$tmp/schemes.json"
	printf '}\n'
} >"$out"

echo "wrote $out"
