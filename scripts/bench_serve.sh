#!/bin/sh
# Serve throughput tracker, two grids into results/BENCH_serve.json:
#
#   1. Engine comparison (BenchmarkServeEngines): batch-8 CNN1 traffic
#      through the golden per-sample engine vs the batched int8 engine, for
#      every registered lock scheme. The engines answer bitwise-identically
#      (pinned by the serve differential suite), so the batched/golden ratio
#      is pure cost: what folding the lock into the batched kernels buys.
#      The acceptance bar tracked in EXPERIMENTS.md is >=4x on the default
#      scheme.
#   2. Multi-tenant registry (BenchmarkRegistryMultiModel / ColdCompile /
#      SwapBlackout): per-model throughput with one tenant per scheme
#      behind the routing registry, the cold-compile latency an evicted
#      tenant pays on its next hit, and the hot-swap numbers — Deploy
#      latency, worst single-request stall across swaps (blackout), and
#      the failed-request count, whose acceptance target is exactly 0.
#
# BENCHTIME=2s scripts/bench_serve.sh   # longer runs for stable numbers
set -eu
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1s}"
out=results/BENCH_serve.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
	-bench 'BenchmarkServeEngines$|BenchmarkRegistryMultiModel$|BenchmarkRegistryColdCompile$|BenchmarkRegistrySwapBlackout$' \
	-benchtime "$benchtime" ./internal/serve/ | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v benchtime="$benchtime" '
function metric(name,    i) {
	for (i = 2; i <= NF; i++)
		if ($i == name) return $(i - 1)
	return 0
}
/^BenchmarkServeEngines\// {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^BenchmarkServeEngines\//, "", name)
	split(name, part, "/")
	scheme = part[1]; sub(/^scheme=/, "", scheme)
	engine = part[2]; sub(/^engine=/, "", engine)
	rate[scheme "," engine] = metric("samples/sec")
	if (!(scheme in seen)) { seen[scheme] = 1; order[++n] = scheme }
}
/^BenchmarkRegistryMultiModel\// {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^BenchmarkRegistryMultiModel\/model=/, "", name)
	mrate[name] = metric("samples/sec")
	if (!(name in mseen)) { mseen[name] = 1; morder[++mn] = name }
}
/^BenchmarkRegistryColdCompile/ { cold_ns = $3 }
/^BenchmarkRegistrySwapBlackout/ {
	deploy_ns = $3
	blackout_ns = metric("blackout-ns")
	failed = metric("failed-req")
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"model\": \"CNN1 16x16\",\n"
	printf "  \"batch\": 8,\n"
	printf "  \"samples_per_sec\": {\n"
	for (i = 1; i <= n; i++) {
		s = order[i]
		printf "    \"%s\": {\"golden\": %s, \"batched\": %s}%s\n",
			s, rate[s ",golden"], rate[s ",batched"], (i < n ? "," : "")
	}
	printf "  },\n"
	printf "  \"speedup_batched_over_golden\": {\n"
	for (i = 1; i <= n; i++) {
		s = order[i]
		printf "    \"%s\": %.2f%s\n",
			s, rate[s ",batched"] / rate[s ",golden"], (i < n ? "," : "")
	}
	printf "  },\n"
	printf "  \"multi_tenant\": {\n"
	printf "    \"samples_per_sec\": {\n"
	for (i = 1; i <= mn; i++) {
		s = morder[i]
		printf "      \"%s\": %s%s\n", s, mrate[s], (i < mn ? "," : "")
	}
	printf "    },\n"
	printf "    \"cold_compile_ns\": %s,\n", cold_ns
	printf "    \"hot_swap\": {\n"
	printf "      \"deploy_ns\": %s,\n", deploy_ns
	printf "      \"blackout_ns\": %s,\n", blackout_ns
	printf "      \"failed_requests\": %s\n", failed
	printf "    }\n"
	printf "  }\n}\n"
}' "$tmp" >"$out"

echo "wrote $out"
