#!/bin/sh
# Serve-engine throughput tracker: runs the engine-comparison grid
# (BenchmarkServeEngines in internal/serve) — batch-8 CNN1 traffic through
# the golden per-sample engine vs the batched int8 engine, for every
# registered lock scheme — and emits machine-readable
# results/BENCH_serve.json with samples/sec per cell and a batched/golden
# speedup ratio per scheme. The engines answer bitwise-identically (pinned
# by the serve differential suite), so the ratio is pure cost: it measures
# what folding the lock into the batched kernels buys. The acceptance bar
# tracked in EXPERIMENTS.md is >=4x on the default scheme.
#
# BENCHTIME=2s scripts/bench_serve.sh   # longer runs for stable numbers
set -eu
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1s}"
out=results/BENCH_serve.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkServeEngines$' \
	-benchtime "$benchtime" ./internal/serve/ | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v benchtime="$benchtime" '
/^BenchmarkServeEngines\// {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^BenchmarkServeEngines\//, "", name)
	split(name, part, "/")
	scheme = part[1]; sub(/^scheme=/, "", scheme)
	engine = part[2]; sub(/^engine=/, "", engine)
	sps = 0
	for (i = 2; i <= NF; i++)
		if ($i == "samples/sec") sps = $(i - 1)
	rate[scheme "," engine] = sps
	if (!(scheme in seen)) { seen[scheme] = 1; order[++n] = scheme }
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"model\": \"CNN1 16x16\",\n"
	printf "  \"batch\": 8,\n"
	printf "  \"samples_per_sec\": {\n"
	for (i = 1; i <= n; i++) {
		s = order[i]
		printf "    \"%s\": {\"golden\": %s, \"batched\": %s}%s\n",
			s, rate[s ",golden"], rate[s ",batched"], (i < n ? "," : "")
	}
	printf "  },\n"
	printf "  \"speedup_batched_over_golden\": {\n"
	for (i = 1; i <= n; i++) {
		s = order[i]
		printf "    \"%s\": %.2f%s\n",
			s, rate[s ",batched"] / rate[s ",golden"], (i < n ? "," : "")
	}
	printf "  }\n}\n"
}' "$tmp" >"$out"

echo "wrote $out"
