module hpnn

go 1.22
