package hpnn_test

// Golden pin for the HPNN XOR lock path. These constants were captured from
// the hard-wired pre-LockScheme implementation (nn.Lock → fused plan ops →
// MatMulLockedInto → keys.Device.BitsForColumns) and pin the refactored
// scheme-interface path bitwise against it: locked accelerator inference,
// the serving layer, the owner's train step and the checkpoint encoding must
// all reproduce these exact values. If one of these changes, the refactor
// altered observable behaviour — not just structure.

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"hpnn"
)

// goldenSetup builds the deterministic victim every pin shares: a CNN1
// locked under a fixed key and schedule, trained two epochs on a tiny
// fashion benchmark.
func goldenSetup(t *testing.T) (*hpnn.Model, *hpnn.Dataset, hpnn.Key, *hpnn.Schedule, hpnn.TrainerState) {
	t.Helper()
	ds, err := hpnn.GenerateDataset(hpnn.DatasetConfig{
		Name: "fashion", TrainN: 64, TestN: 48, H: 16, W: 16, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := hpnn.NewModel(hpnn.Config{
		Arch: hpnn.CNN1, InC: ds.C, InH: ds.H, InW: ds.W, Classes: ds.Classes, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := hpnn.GenerateKey(11)
	sched := hpnn.NewSchedule(12)
	m.ApplyRawKey(key, sched)

	var snap hpnn.TrainerState
	cfg := hpnn.TrainConfig{Epochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 13}
	cfg.Hooks.OnEpoch = func(info hpnn.TrainEpochInfo) bool {
		snap = info.Snapshot()
		return true
	}
	if _, err := hpnn.TrainChecked(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, cfg); err != nil {
		t.Fatal(err)
	}
	return m, ds, key, sched, snap
}

func hashBytes(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

func hashInts(vs []int) string {
	h := fnv.New64a()
	for _, v := range vs {
		var buf [8]byte
		u := uint64(v)
		for i := range buf {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func hashFloats(vs []float64) string {
	h := fnv.New64a()
	for _, v := range vs {
		var buf [8]byte
		u := math.Float64bits(v)
		for i := range buf {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func modelWeightHash(m *hpnn.Model) string {
	h := fnv.New64a()
	for _, p := range m.Net.Params() {
		fmt.Fprint(h, p.Name)
		for _, v := range p.Value.Data {
			var buf [8]byte
			u := math.Float64bits(v)
			for i := range buf {
				buf[i] = byte(u >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Captured from the pre-refactor implementation; see file comment.
const (
	goldenTrainWeights   = "ba45d27ec30dd716"
	goldenCheckpoint     = "2390ab39ed1613c7"
	goldenLockedPreds    = "da490ffb4b7eab61"
	goldenCommodityPreds = "c6dffa1db01e1925"
	goldenServePreds     = "da490ffb4b7eab61"
)

func TestGoldenPinHPNNPath(t *testing.T) {
	m, ds, key, sched, snap := goldenSetup(t)

	// 1. Owner training: the key-dependent backpropagation trajectory.
	if got := modelWeightHash(m); got != goldenTrainWeights {
		t.Errorf("train-step weight hash = %s, want %s", got, goldenTrainWeights)
	}

	// 2. Checkpoint encoding bytes (private owner artifact, HPCK).
	var ckpt bytes.Buffer
	if err := hpnn.SaveCheckpoint(&ckpt, m, snap); err != nil {
		t.Fatal(err)
	}
	if got := hashBytes(ckpt.Bytes()); got != goldenCheckpoint {
		t.Errorf("checkpoint byte hash = %s, want %s", got, goldenCheckpoint)
	}

	// 3. Locked inference on the trusted accelerator, and the commodity
	// (no-key) accelerator next to it.
	dev := hpnn.NewTrustedDevice("golden", key)
	acc, err := hpnn.NewAccelerator(hpnn.DefaultAcceleratorConfig(), dev, sched)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := acc.Predict(m, ds.TestX)
	if err != nil {
		t.Fatal(err)
	}
	if got := hashInts(preds); got != goldenLockedPreds {
		t.Errorf("locked tpu prediction hash = %s, want %s", got, goldenLockedPreds)
	}
	commodity, err := hpnn.NewAccelerator(hpnn.DefaultAcceleratorConfig(), nil, sched)
	if err != nil {
		t.Fatal(err)
	}
	cPreds, err := commodity.Predict(m, ds.TestX)
	if err != nil {
		t.Fatal(err)
	}
	if got := hashInts(cPreds); got != goldenCommodityPreds {
		t.Errorf("commodity tpu prediction hash = %s, want %s", got, goldenCommodityPreds)
	}

	// 4. The serving layer over the same locked hardware.
	srv, err := hpnn.NewInferenceServer(m, hpnn.DefaultAcceleratorConfig(), dev, sched, hpnn.ServeConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sPreds, err := srv.PredictBatch(context.Background(), ds.TestX)
	srv.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := hashInts(sPreds); got != goldenServePreds {
		t.Errorf("serve prediction hash = %s, want %s", got, goldenServePreds)
	}

	if testing.Verbose() {
		t.Logf("golden capture: train=%s ckpt=%s locked=%s commodity=%s serve=%s",
			modelWeightHash(m), hashBytes(ckpt.Bytes()), hashInts(preds), hashInts(cPreds), hashInts(sPreds))
	}
}
