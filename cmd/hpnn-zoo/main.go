// hpnn-zoo is the public model-sharing platform of Fig. 1 and its client:
// run it as a server to host published obfuscated models, or use the
// client flags to publish, list and fetch models.
//
// Example:
//
//	hpnn-zoo -serve -addr :8080
//	hpnn-zoo -server http://localhost:8080 -publish fashion-cnn1 -model model.hpnn
//	hpnn-zoo -server http://localhost:8080 -list
//	hpnn-zoo -server http://localhost:8080 -fetch fashion-cnn1 -out stolen.hpnn
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"hpnn"
	"hpnn/internal/modelio"
)

func main() {
	log.SetFlags(0)
	var (
		serve   = flag.Bool("serve", false, "run the model-zoo server")
		addr    = flag.String("addr", ":8080", "server listen address")
		server  = flag.String("server", "http://localhost:8080", "zoo server URL (client mode)")
		publish = flag.String("publish", "", "publish the -model file under this name")
		fetch   = flag.String("fetch", "", "download this model")
		list    = flag.Bool("list", false, "list published models")
		model   = flag.String("model", "model.hpnn", "model file to publish")
		out     = flag.String("out", "fetched.hpnn", "output file for -fetch")
		scheme  = flag.String("scheme", "", `"list" prints the lock-scheme registry`)
	)
	flag.Parse()

	if *scheme == "list" {
		fmt.Print(hpnn.DescribeLockSchemes())
		return
	}

	if *serve {
		zoo := modelio.NewZoo()
		log.Printf("model zoo listening on %s (POST/GET /models/{name})", *addr)
		log.Fatal(http.ListenAndServe(*addr, zoo.Handler()))
	}

	client := modelio.NewClient(*server)
	switch {
	case *publish != "":
		m, err := hpnn.LoadModelFile(*model)
		if err != nil {
			log.Fatal(err)
		}
		if err := client.Publish(*publish, m); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %s as %q (scheme %s, %d params; weights only, no key material)\n",
			*model, *publish, hpnn.CanonicalLockScheme(m.Scheme), m.Net.ParamCount())
	case *fetch != "":
		m, err := client.Fetch(*fetch)
		if err != nil {
			log.Fatal(err)
		}
		if err := hpnn.SaveModelFile(*out, m); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fetched %q (%s, scheme %s, %d params) to %s\n",
			*fetch, m.Config.Arch, hpnn.CanonicalLockScheme(m.Scheme), m.Net.ParamCount(), *out)
	case *list:
		recs, err := client.ListRecords()
		if err != nil {
			log.Fatal(err)
		}
		if len(recs) == 0 {
			fmt.Println("(no models published)")
			return
		}
		for _, r := range recs {
			fmt.Printf("%-30s %s\n", r.Name, r.Scheme)
		}
	default:
		flag.Usage()
	}
}
