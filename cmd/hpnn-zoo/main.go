// hpnn-zoo is the public model-sharing platform of Fig. 1 and its client:
// run it as a server to host published obfuscated models, or use the
// client flags to publish, list and fetch models.
//
// Re-publishing an existing name bumps the entry's version (served as an
// HTTP ETag), which a watching hpnn-serve -zoo process picks up and
// hot-swaps with zero downtime — the owner's rollout path. -publish-ckpt
// closes the loop from training: it takes an HPCK training checkpoint (the
// owner's PRIVATE artifact), runs the lock scheme's publish transformation
// under the owner's key, and uploads the resulting public blob.
//
// Example:
//
//	hpnn-zoo -serve -addr :8080
//	hpnn-zoo -server http://localhost:8080 -publish fashion-cnn1 -model model.hpnn
//	hpnn-zoo -server http://localhost:8080 -publish fashion-cnn1 -publish-ckpt train.ckpt -key-file key.hex
//	hpnn-zoo -server http://localhost:8080 -list
//	hpnn-zoo -server http://localhost:8080 -fetch fashion-cnn1 -out stolen.hpnn
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"hpnn"
	"hpnn/internal/modelio"
)

func main() {
	log.SetFlags(0)
	var (
		serve    = flag.Bool("serve", false, "run the model-zoo server")
		addr     = flag.String("addr", ":8080", "server listen address")
		server   = flag.String("server", "http://localhost:8080", "zoo server URL (client mode)")
		publish  = flag.String("publish", "", "publish the -model file (or -publish-ckpt checkpoint) under this name")
		ckptPath = flag.String("publish-ckpt", "", "publish from this HPCK training checkpoint instead of a model file")
		keyHex   = flag.String("key", "", "owner key as hex (required by -publish-ckpt)")
		keyFile  = flag.String("key-file", "", "read the owner key hex from this file")
		schedSd  = flag.Uint64("sched-seed", 77, "private hardware-schedule seed (for -publish-ckpt)")
		fetch    = flag.String("fetch", "", "download this model")
		list     = flag.Bool("list", false, "list published models")
		model    = flag.String("model", "model.hpnn", "model file to publish")
		out      = flag.String("out", "fetched.hpnn", "output file for -fetch")
		scheme   = flag.String("scheme", "", `"list" prints the lock-scheme registry`)
	)
	flag.Parse()

	if *scheme == "list" {
		fmt.Print(hpnn.DescribeLockSchemes())
		return
	}

	if *serve {
		zoo := modelio.NewZoo()
		log.Printf("model zoo listening on %s (POST/GET /models/{name})", *addr)
		log.Fatal(http.ListenAndServe(*addr, zoo.Handler()))
	}

	client := modelio.NewClient(*server)
	switch {
	case *publish != "" && *ckptPath != "":
		m := publishableFromCheckpoint(*ckptPath, *keyHex, *keyFile, *schedSd)
		if err := client.Publish(*publish, m); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published checkpoint %s as %q (scheme %s, %d params; weights only, no key material)\n",
			*ckptPath, *publish, hpnn.CanonicalLockScheme(m.Scheme), m.Net.ParamCount())
	case *publish != "":
		m, err := hpnn.LoadModelFile(*model)
		if err != nil {
			log.Fatal(err)
		}
		if err := client.Publish(*publish, m); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %s as %q (scheme %s, %d params; weights only, no key material)\n",
			*model, *publish, hpnn.CanonicalLockScheme(m.Scheme), m.Net.ParamCount())
	case *fetch != "":
		m, err := client.Fetch(*fetch)
		if err != nil {
			log.Fatal(err)
		}
		if err := hpnn.SaveModelFile(*out, m); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fetched %q (%s, scheme %s, %d params) to %s\n",
			*fetch, m.Config.Arch, hpnn.CanonicalLockScheme(m.Scheme), m.Net.ParamCount(), *out)
	case *list:
		recs, err := client.ListRecords()
		if err != nil {
			log.Fatal(err)
		}
		if len(recs) == 0 {
			fmt.Println("(no models published)")
			return
		}
		for _, r := range recs {
			fmt.Printf("%-30s %-12s v%d\n", r.Name, r.Scheme, r.Version)
		}
	default:
		flag.Usage()
	}
}

// publishableFromCheckpoint loads an HPCK checkpoint (the owner's private,
// lock-bearing model) and runs its scheme's publish transformation under
// the owner's key — the same step hpnn-train performs after training — so
// the uploaded artifact carries obfuscated weights and no key material.
func publishableFromCheckpoint(path, keyHex, keyFile string, schedSeed uint64) *hpnn.Model {
	hexStr := keyHex
	if keyFile != "" {
		raw, err := os.ReadFile(keyFile)
		if err != nil {
			log.Fatal(err)
		}
		hexStr = strings.TrimSpace(string(raw))
	}
	if hexStr == "" {
		log.Fatal("-publish-ckpt requires the owner key (-key or -key-file): the publish transformation runs under it")
	}
	key, err := hpnn.KeyFromHex(hexStr)
	if err != nil {
		log.Fatal(err)
	}
	m, _, err := hpnn.LoadCheckpointFile(path)
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := hpnn.LockSchemeByName(m.Scheme)
	if err != nil {
		log.Fatal(err)
	}
	pub, err := m.Clone()
	if err != nil {
		log.Fatal(err)
	}
	dev := hpnn.NewTrustedDevice("owner-publish", key)
	if err := scheme.Publish(pub, dev, hpnn.NewSchedule(schedSeed)); err != nil {
		log.Fatal(err)
	}
	return pub
}
