// hpnn-dataset renders contact sheets of the synthetic benchmarks — one
// row per class — so the stand-in datasets can be inspected visually.
//
// Example:
//
//	hpnn-dataset -out sheets/             # all three benchmarks
//	hpnn-dataset -dataset svhn -img 32 -per-class 12 -out .
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hpnn/internal/dataset"
)

func main() {
	log.SetFlags(0)
	var (
		name     = flag.String("dataset", "", "benchmark to render (default: all)")
		imgSize  = flag.Int("img", 0, "image size (0 = native)")
		perClass = flag.Int("per-class", 10, "samples per class row")
		seed     = flag.Uint64("seed", 1, "generation seed")
		out      = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	names := dataset.Names()
	if *name != "" {
		names = []string{*name}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, n := range names {
		ds, err := dataset.Generate(dataset.Config{
			Name: n, TrainN: *perClass * dataset.NumClasses * 2, TestN: 10,
			H: *imgSize, W: *imgSize, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*out, n+".png")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := ds.WriteContactSheet(f, *perClass); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %dx%dx%d, %d classes -> %s\n", n, ds.C, ds.H, ds.W, ds.Classes, path)
	}
}
