// hpnn-eval evaluates a published HPNN model under the paper's usage
// scenarios: authorized user (key + trusted hardware), attacker (baseline
// architecture, no key), or wrong-key pirate hardware.
//
// Example:
//
//	hpnn-eval -model model.hpnn -key-file key.hex            # software, with key
//	hpnn-eval -model model.hpnn                              # attacker: no key
//	hpnn-eval -model model.hpnn -key-file key.hex -tpu       # trusted-device simulator
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hpnn"
)

func main() {
	log.SetFlags(0)
	var (
		modelPath = flag.String("model", "model.hpnn", "published model file")
		keyHex    = flag.String("key", "", "HPNN key as hex (empty = attacker scenario, no key)")
		keyFile   = flag.String("key-file", "", "read the key hex from this file")
		schedSd   = flag.Uint64("sched-seed", 77, "private hardware-schedule seed")
		dsName    = flag.String("dataset", "fashion", "benchmark to evaluate on")
		testN     = flag.Int("test-n", 300, "test samples")
		seed      = flag.Uint64("seed", 1, "dataset seed (must match training)")
		useTPU    = flag.Bool("tpu", false, "run on the simulated TPU-like trusted device")
		gateLevel = flag.Bool("gate-level", false, "bit-accurate accumulator datapath (slow; implies -tpu)")
		schemeNm  = flag.String("scheme", "", "lock scheme (empty = the model's own stamp; \"list\" prints the registry)")
	)
	flag.Parse()

	if *schemeNm == "list" {
		fmt.Print(hpnn.DescribeLockSchemes())
		return
	}

	m, err := hpnn.LoadModelFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	schemeName := hpnn.CanonicalLockScheme(m.Scheme)
	if *schemeNm != "" && hpnn.CanonicalLockScheme(*schemeNm) != schemeName {
		log.Fatalf("-scheme %s does not match the model's stamp %s", *schemeNm, schemeName)
	}
	scheme, err := hpnn.LockSchemeByName(schemeName)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := hpnn.GenerateDataset(hpnn.DatasetConfig{
		Name: *dsName, TrainN: 10, TestN: *testN, H: m.Config.InH, W: m.Config.InW, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	hexStr := *keyHex
	if *keyFile != "" {
		raw, err := os.ReadFile(*keyFile)
		if err != nil {
			log.Fatal(err)
		}
		hexStr = strings.TrimSpace(string(raw))
	}

	sched := hpnn.NewSchedule(*schedSd)
	switch {
	case *useTPU || *gateLevel:
		var dev *hpnn.Device
		scenario := "commodity accelerator (no key)"
		if hexStr != "" {
			key, err := hpnn.KeyFromHex(hexStr)
			if err != nil {
				log.Fatal(err)
			}
			dev = hpnn.NewTrustedDevice("cli-device", key)
			scenario = "trusted device (key on-chip)"
		}
		cfg := hpnn.DefaultAcceleratorConfig()
		cfg.GateLevel = *gateLevel
		acc, err := hpnn.NewAcceleratorFor(scheme, cfg, dev, sched)
		if err != nil {
			log.Fatal(err)
		}
		a, err := acc.Accuracy(m, ds.TestX, ds.TestY)
		if err != nil {
			log.Fatal(err)
		}
		s := acc.Stats()
		fmt.Printf("scenario: %s\n", scenario)
		fmt.Printf("accuracy: %.2f%% over %d samples\n", 100*a, *testN)
		fmt.Printf("hardware: %d MACs, %d cycles, %d tile passes, %d locked outputs\n",
			s.MACs, s.Cycles, s.TilePasses, s.LockedOutputs)
		if *gateLevel {
			fmt.Printf("gate ops: %d (bit-accurate datapath)\n", s.GateOps)
		}
	case hexStr != "":
		key, err := hpnn.KeyFromHex(hexStr)
		if err != nil {
			log.Fatal(err)
		}
		if err := scheme.Unlock(m, hpnn.NewTrustedDevice("cli-device", key), sched); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scenario: software evaluation with key (scheme %s)\n", scheme.Name())
		fmt.Printf("accuracy: %.2f%%\n", 100*m.Accuracy(ds.TestX, ds.TestY, 64))
	default:
		if err := scheme.Unlock(m, nil, sched); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scenario: attacker — published artifact, no key (scheme %s)\n", scheme.Name())
		fmt.Printf("accuracy: %.2f%%\n", 100*m.Accuracy(ds.TestX, ds.TestY, 64))
	}
}
