// hpnn-attack mounts the paper's model fine-tuning attack against a
// published HPNN model: load the stolen weights into the baseline
// architecture (or start from random weights) and retrain on a thief
// dataset.
//
// Example:
//
//	hpnn-attack -model model.hpnn -alpha 0.1 -init stolen
//	hpnn-attack -model model.hpnn -alpha 0.05 -init random -lr 0.01
package main

import (
	"flag"
	"fmt"
	"log"

	"hpnn"
	"hpnn/internal/attack"
)

func main() {
	log.SetFlags(0)
	var (
		modelPath = flag.String("model", "model.hpnn", "published (stolen) model file")
		dsName    = flag.String("dataset", "fashion", "benchmark the victim was trained on")
		trainN    = flag.Int("train-n", 800, "original training-set size (thief fraction is of this)")
		testN     = flag.Int("test-n", 300, "test samples")
		seed      = flag.Uint64("seed", 1, "dataset seed (must match training)")
		alpha     = flag.Float64("alpha", 0.10, "thief dataset fraction α")
		initMode  = flag.String("init", "stolen", "attacker initialization: stolen (HPNN fine-tuning) or random")
		epochs    = flag.Int("epochs", 8, "fine-tuning epochs")
		lr        = flag.Float64("lr", 0.02, "fine-tuning learning rate")
		momentum  = flag.Float64("momentum", 0.9, "fine-tuning momentum")
		mode      = flag.String("mode", "finetune", "attack mode: finetune or keyrecovery")
		queries   = flag.Int("queries", 500, "query budget for -mode keyrecovery")
		ckptPath  = flag.String("checkpoint", "", "write a resumable fine-tuning checkpoint here after every epoch")
		resume    = flag.Bool("resume", false, "continue from -checkpoint if it exists; the resumed attack reproduces the uninterrupted one bitwise")
		schemeNm  = flag.String("scheme", "", "lock scheme of the victim (empty = the model's own stamp; \"list\" prints the registry)")
		schedSd   = flag.Uint64("sched-seed", 77, "schedule seed assumed by -mode keyrecovery on non-default schemes (Kerckhoffs: schedule public, key secret)")
	)
	flag.Parse()

	if *schemeNm == "list" {
		fmt.Print(hpnn.DescribeLockSchemes())
		return
	}

	victim, err := hpnn.LoadModelFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	schemeName := hpnn.CanonicalLockScheme(victim.Scheme)
	if *schemeNm != "" && hpnn.CanonicalLockScheme(*schemeNm) != schemeName {
		log.Fatalf("-scheme %s does not match the model's stamp %s", *schemeNm, schemeName)
	}
	scheme, err := hpnn.LockSchemeByName(schemeName)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := hpnn.GenerateDataset(hpnn.DatasetConfig{
		Name: *dsName, TrainN: *trainN, TestN: *testN,
		H: victim.Config.InH, W: victim.Config.InW, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *mode == "keyrecovery" {
		if scheme.Name() != hpnn.CanonicalLockScheme("") {
			// Non-default schemes have no per-neuron lock bits to climb;
			// attack the 256-bit device key through the scheme's public
			// Unlock semantics instead.
			fmt.Printf("attack: greedy device-key recovery against scheme %s, α=%g%%, budget %d queries\n",
				scheme.Name(), *alpha*100, *queries)
			res, err := attack.RecoverKey(scheme, victim, hpnn.NewSchedule(*schedSd), ds, attack.SchemeKeyRecoveryConfig{
				ThiefFrac: *alpha, ThiefSeed: *seed + 11, MaxQueries: *queries, Seed: *seed + 12,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("thief samples:      %d\n", res.ThiefSamples)
			fmt.Printf("bits tried/flipped: %d/%d (of %d key bits)\n", res.BitsTried, res.BitsFlipped, hpnn.KeyBits)
			fmt.Printf("thief accuracy:     %.2f%% → %.2f%%\n", 100*res.ThiefAccStart, 100*res.ThiefAccEnd)
			fmt.Printf("test accuracy:      %.2f%% → %.2f%%\n", 100*res.TestAccStart, 100*res.TestAccEnd)
			return
		}
		fmt.Printf("attack: greedy key recovery, α=%g%%, budget %d queries\n", *alpha*100, *queries)
		res, err := attack.RecoverLocks(victim, ds, attack.KeyRecoveryConfig{
			ThiefFrac: *alpha, ThiefSeed: *seed + 11, MaxQueries: *queries, Seed: *seed + 12,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("thief samples:      %d\n", res.ThiefSamples)
		fmt.Printf("bits tried/flipped: %d/%d (of %d locked neurons)\n",
			res.BitsTried, res.BitsFlipped, victim.LockedNeurons())
		fmt.Printf("thief accuracy:     %.2f%% → %.2f%%\n", 100*res.ThiefAccStart, 100*res.ThiefAccEnd)
		fmt.Printf("test accuracy:      %.2f%% → %.2f%%\n", 100*res.TestAccStart, 100*res.TestAccEnd)
		return
	}
	if *mode != "finetune" {
		log.Fatalf("unknown -mode %q (want finetune or keyrecovery)", *mode)
	}

	var init attack.Init
	switch *initMode {
	case "stolen":
		init = hpnn.InitStolen
	case "random":
		init = hpnn.InitRandom
	default:
		log.Fatalf("unknown -init %q (want stolen or random)", *initMode)
	}

	fmt.Printf("attack: %s, α=%g%% of %d training samples\n", init, *alpha*100, *trainN)
	res, _, err := hpnn.FineTune(victim, ds, hpnn.FineTuneConfig{
		ThiefFrac: *alpha, ThiefSeed: *seed + 11, Init: init, AttackerSeed: *seed + 12,
		Train: hpnn.TrainConfig{
			Epochs: *epochs, BatchSize: 16, LR: *lr, Momentum: *momentum, Seed: *seed + 13,
			Logf: log.Printf,
		},
		CheckpointPath: *ckptPath, Resume: *resume,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thief samples:        %d\n", res.ThiefSamples)
	fmt.Printf("pre-attack accuracy:  %.2f%% (stolen model on baseline architecture)\n", 100*res.PreAttackAcc)
	fmt.Printf("final accuracy:       %.2f%%\n", 100*res.FinalAcc)
	fmt.Printf("best accuracy:        %.2f%%\n", 100*res.BestAcc)
}
