// hpnn-bench regenerates the paper's tables and figures. Each experiment
// prints a terminal rendition of its artifact and can additionally write
// machine-readable JSON; see EXPERIMENTS.md for the paper-vs-measured
// record.
//
// Example:
//
//	hpnn-bench                      # every artifact, quick profile
//	hpnn-bench -exp table1          # just Table I
//	hpnn-bench -exp fig3 -profile full
//	hpnn-bench -exp all -json out/  # also write out/<exp>.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hpnn/internal/experiments"
)

// runner executes one experiment, returning its result object (for JSON
// export) and its terminal rendition.
type runner func(p experiments.Profile, logf experiments.Logf) (any, string, error)

var runners = map[string]runner{
	"table1": func(p experiments.Profile, logf experiments.Logf) (any, string, error) {
		rows, err := experiments.Table1(p, logf)
		return rows, experiments.RenderTable1(rows), err
	},
	"fig3": func(p experiments.Profile, logf experiments.Logf) (any, string, error) {
		res, err := experiments.Fig3(p, logf)
		return res, experiments.RenderFig3(res), err
	},
	"fig4": func(p experiments.Profile, logf experiments.Logf) (any, string, error) {
		res, err := experiments.Fig4Hardware(p, logf)
		return res, experiments.RenderHardware(res), err
	},
	"fig5": func(p experiments.Profile, logf experiments.Logf) (any, string, error) {
		res, err := experiments.Fig5(p, logf)
		return res, experiments.RenderCurves("Fig. 5: Impact of thief dataset size on fine-tuning attack", res), err
	},
	"fig6": func(p experiments.Profile, logf experiments.Logf) (any, string, error) {
		res, err := experiments.Fig6(p, logf)
		return res, experiments.RenderCurves("Fig. 6: Effect of learning rate (lr) on fine-tuning", res), err
	},
	"fig7": func(p experiments.Profile, logf experiments.Logf) (any, string, error) {
		res, err := experiments.Fig7(p, logf)
		return res, experiments.RenderFig7(res), err
	},
	"crypto": func(p experiments.Profile, logf experiments.Logf) (any, string, error) {
		rows, err := experiments.CryptoBaseline(logf)
		return rows, experiments.RenderCrypto(rows), err
	},
	"ablations": func(p experiments.Profile, logf experiments.Logf) (any, string, error) {
		g, err := experiments.AblationLockGranularity(p, logf)
		if err != nil {
			return nil, "", err
		}
		l, err := experiments.AblationLockedLayers(p, logf)
		if err != nil {
			return nil, "", err
		}
		k, owner, err := experiments.AblationKeyDistance(p, logf)
		if err != nil {
			return nil, "", err
		}
		q, err := experiments.AblationQuant(p, logf)
		if err != nil {
			return nil, "", err
		}
		out := experiments.RenderGranularity(g) +
			experiments.RenderLayerSubsets(l) +
			experiments.RenderKeyDistance(k, owner) +
			experiments.RenderQuant(q)
		bundle := map[string]any{
			"granularity":  g,
			"lockedLayers": l,
			"keyDistance":  k,
			"ownerAcc":     owner,
			"quantization": q,
		}
		return bundle, out, nil
	},
	"schemes": func(p experiments.Profile, logf experiments.Logf) (any, string, error) {
		rows, err := experiments.SchemeBench(p, logf)
		return rows, experiments.RenderSchemeBench(rows), err
	},
	"security": func(p experiments.Profile, logf experiments.Logf) (any, string, error) {
		r, err := experiments.KeyRecovery(p, logf)
		if err != nil {
			return nil, "", err
		}
		tr, owner, err := experiments.TransformAttacks(p, logf)
		if err != nil {
			return nil, "", err
		}
		wc, err := experiments.WatermarkVsHPNN(p, logf)
		if err != nil {
			return nil, "", err
		}
		out := experiments.RenderKeyRecovery(r) + experiments.RenderTransforms(tr, owner) +
			experiments.RenderWatermarkComparison(wc)
		bundle := map[string]any{
			"keyRecovery": r,
			"transforms":  tr,
			"ownerAcc":    owner,
			"watermark":   wc,
		}
		return bundle, out, nil
	},
}

// order fixes the "all" execution sequence.
var order = []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "crypto", "ablations", "security", "schemes"}

func main() {
	log.SetFlags(0)
	var (
		expName = flag.String("exp", "all", "experiment: "+strings.Join(order, ", ")+" or all")
		profile = flag.String("profile", "quick", "scale profile: bench, quick or full")
		jsonDir = flag.String("json", "", "also write <dir>/<exp>.json result files")
		verbose = flag.Bool("v", false, "log per-run progress")
	)
	flag.Parse()

	p, err := experiments.ProfileByName(*profile)
	if err != nil {
		log.Fatal(err)
	}
	var logf experiments.Logf
	if *verbose {
		logf = log.Printf
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	names := []string{*expName}
	if *expName == "all" {
		names = order
	}
	for _, n := range names {
		run, ok := runners[n]
		if !ok {
			log.Fatalf("unknown experiment %q (want %s or all)", n, strings.Join(order, ", "))
		}
		fmt.Printf("=== %s (profile %s) ===\n", n, p.Name)
		start := time.Now() //hpnn:allow(determinism) wall-clock experiment timing for the progress report
		result, rendered, err := run(p, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(rendered)
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, n+".json")
			blob, err := json.MarshalIndent(result, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("(json written to %s)\n", path)
		}
		fmt.Printf("--- %s done in %s ---\n\n", n, time.Since(start).Round(time.Millisecond)) //hpnn:allow(determinism) progress report
	}
}
