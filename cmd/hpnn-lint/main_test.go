package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestLintCLI builds the binary and drives its exit-code contract: 0 on the
// clean repo, 1 with file:line diagnostics on a dirty module, and valid
// JSON under -json.
func TestLintCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "hpnn-lint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building hpnn-lint: %v\n%s", err, out)
	}

	// The repo itself must be clean: exit 0, no output.
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	clean := exec.Command(bin, "./...")
	clean.Dir = repoRoot
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("expected exit 0 on the repo, got %v\n%s", err, out)
	}

	// A module holding the noalloc golden fixture must fail with positioned
	// diagnostics. The fixture is copied out of testdata so the loader (which
	// skips testdata by design) picks it up as a regular package.
	dirty := filepath.Join(dir, "dirtymod")
	if err := os.MkdirAll(dirty, 0o755); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(repoRoot, "internal", "analysis", "testdata", "src", "noallocdata", "noalloc.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirty, "noalloc.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirty, "go.mod"), []byte("module dirtymod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	run := exec.Command(bin, "./...")
	run.Dir = dirty
	out, err := run.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("expected exit 1 on the dirty module, got %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "noalloc.go:18:") || !strings.Contains(text, "[noalloc] make in CopyInto allocates") {
		t.Errorf("missing positioned diagnostic in output:\n%s", text)
	}

	// -json must emit a decodable array carrying the same findings.
	jrun := exec.Command(bin, "-json", "./...")
	jrun.Dir = dirty
	jout, err := jrun.Output()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("expected exit 1 from -json run, got %v", err)
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(jout, &diags); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, jout)
	}
	if len(diags) == 0 {
		t.Fatal("-json reported no diagnostics on the dirty module")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Check == "" || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}

	// -checks restricts the run: the fixture is clean under seal alone.
	sealOnly := exec.Command(bin, "-checks", "seal", "./...")
	sealOnly.Dir = dirty
	if out, err := sealOnly.CombinedOutput(); err != nil {
		t.Fatalf("expected exit 0 with -checks seal, got %v\n%s", err, out)
	}
}
