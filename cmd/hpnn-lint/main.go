// Command hpnn-lint runs the repo's in-tree static analyzer: a pure-stdlib
// go/ast + go/types pass that enforces the zero-alloc, determinism, and
// concurrency invariants the runtime tests can only verify after the fact.
// See DESIGN.md §11 for the check catalogue.
//
// Usage:
//
//	hpnn-lint [-json] [-checks noalloc,seal] [-list] [packages]
//
// Packages default to ./... (the whole module; the analyzer always loads
// and type-checks the full module, the argument only filters which packages
// diagnostics are reported for). Exit status is 0 when clean, 1 when any
// diagnostic is reported, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hpnn/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list registered checks and exit")
	flag.Parse()

	if *list {
		for _, c := range analysis.Checks() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	prog, err := analysis.Load(root)
	if err != nil {
		fatal(err)
	}

	var names []string
	if *checks != "" {
		for _, n := range strings.Split(*checks, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	diags, err := analysis.Lint(prog, names...)
	if err != nil {
		fatal(err)
	}
	diags = filterPatterns(diags, prog, flag.Args(), root)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "hpnn-lint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// filterPatterns keeps diagnostics whose file falls under one of the
// ./...-style package arguments. No arguments (or ./...) keeps everything.
func filterPatterns(diags []analysis.Diagnostic, prog *analysis.Program, args []string, root string) []analysis.Diagnostic {
	if len(args) == 0 {
		return diags
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	type pat struct {
		rel string // module-root-relative dir prefix, "" = whole module
		sub bool   // trailing /... — include subdirectories
	}
	var pats []pat
	for _, a := range args {
		sub := false
		if rest, ok := strings.CutSuffix(a, "/..."); ok {
			a, sub = rest, true
		} else if a == "..." {
			a, sub = ".", true
		}
		abs := a
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, a)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			fatal(fmt.Errorf("package argument %q is outside the module", a))
		}
		if rel == "." {
			rel = ""
		}
		pats = append(pats, pat{rel: filepath.ToSlash(rel), sub: sub})
	}
	var kept []analysis.Diagnostic
	for _, d := range diags {
		dir := filepath.ToSlash(filepath.Dir(d.File))
		if dir == "." {
			dir = ""
		}
		for _, p := range pats {
			if dir == p.rel || (p.sub && (p.rel == "" || strings.HasPrefix(dir, p.rel+"/"))) {
				kept = append(kept, d)
				break
			}
		}
	}
	return kept
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("hpnn-lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpnn-lint:", err)
	os.Exit(2)
}
