// hpnn-serve runs published HPNN models as a network inference service on
// the simulated trusted hardware: a TCP listener feeding the multi-tenant
// serving registry, which routes each request to its model's tenant — a
// micro-batcher over per-shard locked accelerators, compiled lazily and
// sealed, evicted LRU under the workspace-memory budget.
//
// Two modes share one serving stack:
//
//   - Single-model (-model): the file registers as the default tenant and
//     is compiled eagerly, exactly the pre-registry behaviour.
//   - Model-zoo (-zoo URL): every model published in the zoo registers as a
//     tenant; -poll watches the zoo by ETag and hot-swaps re-published
//     models with zero downtime (in-flight requests drain on the old
//     version, new requests route to the new one).
//
// The protocol is length-prefixed binary frames (see internal/serve/wire.go).
// v2 request frames carry a model ID; v1 frames (and empty IDs) route to
// the default model, so pre-registry clients keep working. Clients encode
// samples with hpnn.EncodeServeRequestTo and read answers with
// hpnn.DecodeServeResponse, one response per request, in order, per
// connection; retry-status responses (overload, swap races) decode as
// ErrServerOverloaded so clients back off and resubmit. On SIGINT/SIGTERM
// the server drains accepted requests and prints per-tenant reports.
//
// Keys are per tenant: -keys-dir holds one <model>.hex per model; -key /
// -key-file provision every tenant (each still gets its OWN device — key
// material never crosses tenants). Models without a key serve on commodity
// hardware, the paper's attacker scenario.
//
// Example:
//
//	hpnn-serve -model model.hpnn -key-file key.hex -addr 127.0.0.1:7077
//	hpnn-serve -zoo http://localhost:8080 -keys-dir keys/ -default-model fashion-cnn1 \
//	           -mem-budget 67108864 -poll 2s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"hpnn"
)

func main() {
	log.SetFlags(0)
	var (
		modelPath = flag.String("model", "", "published model file (single-model mode)")
		zooURL    = flag.String("zoo", "", "model-zoo base URL; serve every published model (zoo mode)")
		defModel  = flag.String("default-model", "", "model v1 frames and empty model IDs route to")
		memBudget = flag.Int("mem-budget", 0, "workspace-memory budget in bytes across resident tenants (0 = unbudgeted)")
		poll      = flag.Duration("poll", 0, "zoo watch interval for hot-swapping re-published models (0 = off)")
		keyHex    = flag.String("key", "", "HPNN key as hex for every tenant (empty = commodity hardware)")
		keyFile   = flag.String("key-file", "", "read the key hex from this file")
		keysDir   = flag.String("keys-dir", "", "directory of per-model key files named <model>.hex")
		schedSd   = flag.Uint64("sched-seed", 77, "private hardware-schedule seed")
		addr      = flag.String("addr", "127.0.0.1:7077", "TCP listen address")
		shards    = flag.Int("shards", 0, "worker shards per tenant, each with a private accelerator (0 = auto)")
		maxBatch  = flag.Int("max-batch", 0, "largest coalesced batch (0 = default 8)")
		maxWait   = flag.Duration("max-wait", 0, "batcher window after the first request (0 = default 200µs)")
		queue     = flag.Int("queue", 0, "bounded request-queue depth per tenant (0 = auto)")
		bits      = flag.Int("bits", 0, "datapath quantization width 2-8 (0 = native 8)")
	)
	flag.Parse()
	if (*modelPath == "") == (*zooURL == "") {
		log.Fatal("exactly one of -model (single-model mode) or -zoo (zoo mode) is required")
	}

	sharedHex := *keyHex
	if *keyFile != "" {
		raw, err := os.ReadFile(*keyFile)
		if err != nil {
			log.Fatal(err)
		}
		sharedHex = strings.TrimSpace(string(raw))
	}
	// provisioned collects every device this process creates so shutdown
	// can zeroize the sealed keys. Appends happen from main and from the
	// zoo watcher goroutine; the read below is ordered after watch.Wait(),
	// so no lock is needed.
	var provisioned []*hpnn.Device
	// deviceFor provisions one tenant's trusted device: its own key file
	// under -keys-dir when present, else the shared key, else nil
	// (commodity). Every tenant gets a distinct device — the registry's key
	// ring enforces that they never cross.
	deviceFor := func(model string) (*hpnn.Device, error) {
		hexStr := sharedHex
		if *keysDir != "" {
			raw, err := os.ReadFile(filepath.Join(*keysDir, model+".hex"))
			switch {
			case err == nil:
				hexStr = strings.TrimSpace(string(raw))
			case os.IsNotExist(err):
			default:
				return nil, err
			}
		}
		if hexStr == "" {
			return nil, nil
		}
		key, err := hpnn.KeyFromHex(hexStr)
		if err != nil {
			return nil, fmt.Errorf("key for %q: %w", model, err)
		}
		dev := hpnn.NewTrustedDevice("serve/"+model, key)
		provisioned = append(provisioned, dev)
		return dev, nil
	}

	acfg := hpnn.DefaultAcceleratorConfig()
	acfg.Bits = *bits
	reg := hpnn.NewModelRegistry(acfg, hpnn.RegistryConfig{
		Tenant: hpnn.ServeConfig{
			Shards: *shards, MaxBatch: *maxBatch, MaxWait: *maxWait, QueueDepth: *queue,
		},
		MaxWorkspaceBytes: *memBudget,
		DefaultModel:      *defModel,
	})

	register := func(name string, blob []byte, etag string) error {
		dev, err := deviceFor(name)
		if err != nil {
			return err
		}
		if err := reg.Register(name, blob, dev, hpnn.NewSchedule(*schedSd)); err != nil {
			return err
		}
		reg.SetETag(name, etag)
		scenario := "commodity accelerator (no key)"
		if dev != nil {
			scenario = "trusted device (key on-chip)"
		}
		fmt.Printf("registered model %q — %s\n", name, scenario)
		return nil
	}

	var zoo *hpnn.ZooClient
	if *modelPath != "" {
		blob, err := os.ReadFile(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		name := *defModel
		if name == "" {
			name = "default"
		}
		if err := register(name, blob, ""); err != nil {
			log.Fatal(err)
		}
		// Eager compile+seal, the pre-registry single-model behaviour: the
		// first request pays no cold start.
		if err := reg.Warm(name); err != nil {
			log.Fatal(err)
		}
	} else {
		zoo = hpnn.NewZooClient(*zooURL)
		recs, err := zoo.ListRecords()
		if err != nil {
			log.Fatal(err)
		}
		if len(recs) == 0 {
			log.Fatalf("zoo %s has no published models", *zooURL)
		}
		for _, rec := range recs {
			blob, etag, err := zoo.FetchBlob(rec.Name, "")
			if err != nil {
				log.Fatal(err)
			}
			if err := register(rec.Name, blob, etag); err != nil {
				log.Fatal(err)
			}
		}
		if *defModel != "" {
			if err := reg.Warm(*defModel); err != nil {
				log.Fatal(err)
			}
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d model(s) on %s: %s\n", len(reg.Names()), ln.Addr(), strings.Join(reg.Names(), ", "))

	stopWatch := make(chan struct{})
	var watch sync.WaitGroup
	if zoo != nil && *poll > 0 {
		watch.Add(1)
		//hpnn:allow(gofunc) zoo watch loop owned by the server main; exits via stopWatch on shutdown
		go func() {
			defer watch.Done()
			watchZoo(reg, zoo, register, *poll, stopWatch)
		}()
	}

	var conns sync.WaitGroup
	//hpnn:allow(gofunc) accept-loop goroutine owned by the server main; exits when the listener closes
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed on shutdown
			}
			conns.Add(1)
			//hpnn:allow(gofunc) per-connection handler; drained via the conns WaitGroup on shutdown
			go func() {
				defer conns.Done()
				handle(conn, reg)
			}()
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down: draining accepted requests")
	start := time.Now() //hpnn:allow(determinism) wall-clock drain timing for the shutdown report
	close(stopWatch)
	watch.Wait()
	_ = ln.Close() // shutting down; nothing to do with a close error
	infos := reg.Close()
	for _, info := range infos {
		fmt.Printf("model %s (scheme %s, v%d): %s\n", info.Name, info.Scheme, info.Version,
			strings.ReplaceAll(info.Stats.String(), "\n", "\n  "))
		fmt.Printf("  hardware: %d MACs, %d cycles, %d locked outputs\n",
			info.Hardware.MACs, info.Hardware.Cycles, info.Hardware.LockedOutputs)
	}
	c := reg.Counters()
	fmt.Printf("registry: %d compiles, %d evictions, %d hot-swaps, %d reroutes\n",
		c.Compiles, c.Evictions, c.Swaps, c.Reroutes)
	fmt.Printf("drained in %v\n", time.Since(start).Round(time.Millisecond)) //hpnn:allow(determinism) shutdown report
	// The sealed keys were only ever consulted while compiling and running
	// plans; with the registry drained, wipe every self-provisioned device
	// so no key byte outlives its tenant in process memory (the registry's
	// Release path has already zeroed the accelerators' derived sign masks).
	for _, d := range provisioned {
		d.Zeroize()
	}
	if len(provisioned) > 0 {
		fmt.Printf("zeroized %d tenant device(s)\n", len(provisioned))
	}
	// Connections blocked reading the next request die with the process;
	// every accepted request has already been answered by Close's drain.
}

// watchZoo polls the zoo every interval: a changed ETag hot-swaps the
// tenant via Deploy, a new record registers a new tenant. Transient zoo
// errors are logged and retried on the next tick.
func watchZoo(reg *hpnn.ModelRegistry, zoo *hpnn.ZooClient, register func(string, []byte, string) error, interval time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		recs, err := zoo.ListRecords()
		if err != nil {
			log.Printf("zoo watch: %v", err)
			continue
		}
		known := make(map[string]bool)
		for _, name := range reg.Names() {
			known[name] = true
		}
		for _, rec := range recs {
			if !known[rec.Name] {
				blob, etag, err := zoo.FetchBlob(rec.Name, "")
				if err != nil {
					log.Printf("zoo watch: fetching new model %q: %v", rec.Name, err)
					continue
				}
				if err := register(rec.Name, blob, etag); err != nil {
					log.Printf("zoo watch: registering %q: %v", rec.Name, err)
				}
				continue
			}
			blob, etag, err := zoo.FetchBlob(rec.Name, reg.ETag(rec.Name))
			switch {
			case err == nil:
				if err := reg.Deploy(rec.Name, blob); err != nil {
					log.Printf("zoo watch: deploying %q: %v", rec.Name, err)
					continue
				}
				reg.SetETag(rec.Name, etag)
				fmt.Printf("hot-swapped model %q (zoo %s)\n", rec.Name, etag)
			case errors.Is(err, hpnn.ErrZooNotModified):
				// unchanged; nothing to do
			default:
				log.Printf("zoo watch: polling %q: %v", rec.Name, err)
			}
		}
	}
}

// handle serves one connection: a loop of request frame → route → predict →
// response frame. Per-request failures (bad shape, unknown model, overload,
// swap race, shutdown) are reported in-band — transient ones as retry
// status — so the client can react; malformed frames or a closed peer
// terminate the connection.
func handle(conn net.Conn, reg *hpnn.ModelRegistry) {
	defer conn.Close()
	ctx := context.Background()
	for {
		x, model, err := hpnn.DecodeServeRequestModel(conn)
		if err != nil {
			return
		}
		class, err := reg.Predict(ctx, model, x)
		if err := hpnn.EncodeServeResponse(conn, class, err); err != nil {
			return
		}
	}
}
