// hpnn-serve runs a published HPNN model as a network inference service on
// the simulated trusted hardware: a TCP listener feeding the concurrent
// micro-batching server, which coalesces client requests and executes them
// on per-shard locked accelerators.
//
// The protocol is length-prefixed binary frames (see internal/serve/wire.go);
// clients encode samples with hpnn.EncodeServeRequest and read answers with
// hpnn.DecodeServeResponse, one response per request, in order, per
// connection. On SIGINT/SIGTERM the server drains accepted requests and
// prints throughput and latency percentiles.
//
// Example:
//
//	hpnn-serve -model model.hpnn -key-file key.hex -addr 127.0.0.1:7077
//	hpnn-serve -model model.hpnn -shards 4 -max-batch 16 -max-wait 500us
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"hpnn"
)

func main() {
	log.SetFlags(0)
	var (
		modelPath = flag.String("model", "model.hpnn", "published model file")
		keyHex    = flag.String("key", "", "HPNN key as hex (empty = commodity hardware, no key)")
		keyFile   = flag.String("key-file", "", "read the key hex from this file")
		schedSd   = flag.Uint64("sched-seed", 77, "private hardware-schedule seed")
		addr      = flag.String("addr", "127.0.0.1:7077", "TCP listen address")
		shards    = flag.Int("shards", 0, "worker shards, each with a private accelerator (0 = auto)")
		maxBatch  = flag.Int("max-batch", 0, "largest coalesced batch (0 = default 8)")
		maxWait   = flag.Duration("max-wait", 0, "batcher window after the first request (0 = default 200µs)")
		queue     = flag.Int("queue", 0, "bounded request-queue depth (0 = auto)")
		bits      = flag.Int("bits", 0, "datapath quantization width 2-8 (0 = native 8)")
	)
	flag.Parse()

	m, err := hpnn.LoadModelFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	hexStr := *keyHex
	if *keyFile != "" {
		raw, err := os.ReadFile(*keyFile)
		if err != nil {
			log.Fatal(err)
		}
		hexStr = strings.TrimSpace(string(raw))
	}
	var dev *hpnn.Device
	scenario := "commodity accelerator (no key)"
	if hexStr != "" {
		key, err := hpnn.KeyFromHex(hexStr)
		if err != nil {
			log.Fatal(err)
		}
		dev = hpnn.NewTrustedDevice("serve-device", key)
		scenario = "trusted device (key on-chip)"
	}

	acfg := hpnn.DefaultAcceleratorConfig()
	acfg.Bits = *bits
	srv, err := hpnn.NewInferenceServer(m, acfg, dev, hpnn.NewSchedule(*schedSd), hpnn.ServeConfig{
		Shards: *shards, MaxBatch: *maxBatch, MaxWait: *maxWait, QueueDepth: *queue,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %s [%dx%dx%d] on %s — %s\n",
		*modelPath, m.Config.InC, m.Config.InH, m.Config.InW, ln.Addr(), scenario)

	var conns sync.WaitGroup
	//hpnn:allow(gofunc) accept-loop goroutine owned by the server main; exits when the listener closes
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed on shutdown
			}
			conns.Add(1)
			//hpnn:allow(gofunc) per-connection handler; drained via the conns WaitGroup on shutdown
			go func() {
				defer conns.Done()
				handle(conn, srv)
			}()
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down: draining accepted requests")
	start := time.Now() //hpnn:allow(determinism) wall-clock drain timing for the shutdown report
	_ = ln.Close()      // shutting down; nothing to do with a close error
	st := srv.Close()
	hw := srv.HardwareStats()
	fmt.Println(st.String())
	fmt.Printf("hardware: %d MACs, %d cycles, %d locked outputs across shards (%d workspace bytes)\n",
		hw.MACs, hw.Cycles, hw.LockedOutputs, srv.WorkspaceBytes())
	fmt.Printf("drained in %v\n", time.Since(start).Round(time.Millisecond)) //hpnn:allow(determinism) shutdown report
	// Connections blocked reading the next request die with the process;
	// every accepted request has already been answered by Close's drain.
}

// handle serves one connection: a loop of request frame → prediction →
// response frame. Per-request failures (bad shape, overload, shutdown) are
// reported in-band so the client can react; malformed frames or a closed
// peer terminate the connection.
func handle(conn net.Conn, srv *hpnn.InferenceServer) {
	defer conn.Close()
	ctx := context.Background()
	for {
		x, err := hpnn.DecodeServeRequest(conn)
		if err != nil {
			return
		}
		class, err := srv.Predict(ctx, x)
		if err := hpnn.EncodeServeResponse(conn, class, err); err != nil {
			return
		}
	}
}
