// hpnn-tpu reports the hardware cost of the HPNN modification (§III-D3)
// for a configurable MMU geometry, and optionally runs the end-to-end
// demonstration: train a locked model, then infer on the simulated device
// with the correct key, no key and a wrong key.
//
// Example:
//
//	hpnn-tpu                     # overhead report for the 256×256 TPU
//	hpnn-tpu -rows 128 -cols 128 # a smaller edge accelerator
//	hpnn-tpu -demo               # full train + device-inference demo
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hpnn/internal/experiments"
	"hpnn/internal/tpu"
)

func main() {
	log.SetFlags(0)
	var (
		rows = flag.Int("rows", 256, "MMU rows")
		cols = flag.Int("cols", 256, "MMU columns (= accumulators = key bits)")
		demo = flag.Bool("demo", false, "run the end-to-end locked-inference demo")
	)
	flag.Parse()

	rep := tpu.Gates(tpu.Config{Rows: *rows, Cols: *cols})
	fmt.Printf("HPNN hardware modification — %d×%d MMU\n", rep.Rows, rep.Cols)
	fmt.Printf("  multiplier gates:      %d\n", rep.MultiplierGates)
	fmt.Printf("  accumulator gates:     %d\n", rep.AccumulatorGates)
	fmt.Printf("  added XOR gates:       %d (16 per accumulator)\n", rep.XORGates)
	fmt.Printf("  structural overhead:   %.4f%%\n", rep.OverheadStructuralPct)
	fmt.Printf("  paper-normalized:      %.3f%% of a 10^6-gate MMU\n", rep.OverheadPaperPct)
	fmt.Printf("  extra clock cycles:    %d\n", rep.ExtraCycles)
	fmt.Printf("  secure key storage:    %d bits\n", rep.ExtraKeyBitsStorage)

	if !*demo {
		return
	}
	fmt.Println()
	res, err := experiments.Fig4Hardware(experiments.Quick(), log.Printf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(experiments.RenderHardware(res))
}
