// hpnn-train is the model owner's tool: it trains a key-locked DNN on one
// of the synthetic benchmarks with the key-dependent backpropagation
// algorithm and writes the obfuscated model (weights only, no key
// material) plus the secret key as a hex file.
//
// Example:
//
//	hpnn-train -dataset fashion -out model.hpnn -key-out key.hex
//	hpnn-train -dataset cifar -width 0.25 -epochs 12 -out cifar.hpnn
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hpnn"
	"hpnn/internal/core"
)

func main() {
	log.SetFlags(0)
	var (
		dsName   = flag.String("dataset", "fashion", "benchmark: fashion, cifar or svhn")
		archName = flag.String("arch", "", "architecture: cnn1, cnn2, cnn3, resnet18, mlp (default: the Table I pairing)")
		trainN   = flag.Int("train-n", 800, "training samples")
		testN    = flag.Int("test-n", 300, "test samples")
		imgSize  = flag.Int("img", 16, "image size (0 = dataset native)")
		width    = flag.Float64("width", 0, "architecture width scale (0 = sensible default for the size)")
		epochs   = flag.Int("epochs", 8, "training epochs")
		batch    = flag.Int("batch", 32, "batch size")
		lr       = flag.Float64("lr", 0.02, "learning rate")
		momentum = flag.Float64("momentum", 0.9, "SGD momentum")
		seed     = flag.Uint64("seed", 1, "master seed (data, init, key, schedule)")
		keyHex   = flag.String("key", "", "HPNN key as 64 hex chars (default: generate from seed)")
		schedSd  = flag.Uint64("sched-seed", 77, "private hardware-schedule seed")
		out      = flag.String("out", "model.hpnn", "output model file")
		keyOut   = flag.String("key-out", "", "write the generated key (hex) to this file")
		optName  = flag.String("optimizer", "sgd", "optimizer: sgd or adam")
		schedNm  = flag.String("schedule", "step", "LR schedule: step, cosine or constant")
		warmup   = flag.Int("warmup", 0, "linear LR warmup epochs before the schedule")
		ckptPath = flag.String("checkpoint", "", "write a resumable training checkpoint here after every epoch (contains key material — keep private)")
		resume   = flag.Bool("resume", false, "continue from -checkpoint if it exists; the resumed run reproduces the uninterrupted one bitwise")
		schemeNm = flag.String("scheme", "", "lock scheme (empty = hpnn-xor; \"list\" prints the registry)")
		replicas = flag.Int("replicas", 0, "data-parallel model replicas (0 = sequential loop; the run is bitwise identical for any replica count)")
		shards   = flag.Int("grad-shards", 0, "gradient micro-shards per step (power of two ≥ -replicas; 0 = 8 when -replicas is set); fixes the numerics, so resumes must keep it")
	)
	flag.Parse()

	if *schemeNm == "list" {
		fmt.Print(hpnn.DescribeLockSchemes())
		return
	}
	scheme, err := hpnn.LockSchemeByName(*schemeNm)
	if err != nil {
		log.Fatal(err)
	}

	ds, err := hpnn.GenerateDataset(hpnn.DatasetConfig{
		Name: *dsName, TrainN: *trainN, TestN: *testN, H: *imgSize, W: *imgSize, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	arch := core.Arch(*archName)
	if *archName == "" {
		switch *dsName {
		case "fashion":
			arch = hpnn.CNN1
		case "cifar":
			arch = hpnn.CNN2
		case "svhn":
			arch = hpnn.CNN3
		}
	}
	ws := *width
	if ws == 0 {
		// Scale the bigger nets down at reduced resolution.
		switch arch {
		case hpnn.CNN2, hpnn.ResNet18:
			ws = 0.125
		case hpnn.CNN3:
			ws = 0.25
		default:
			ws = 1
		}
	}

	m, err := hpnn.NewModel(hpnn.Config{
		Arch: arch, InC: ds.C, InH: ds.H, InW: ds.W,
		Classes: ds.Classes, WidthScale: ws, Seed: *seed + 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	key := hpnn.GenerateKey(*seed + 2)
	if *keyHex != "" {
		if key, err = hpnn.KeyFromHex(*keyHex); err != nil {
			log.Fatal(err)
		}
	}
	sched := hpnn.NewSchedule(*schedSd)

	cfg := hpnn.TrainConfig{
		Epochs: *epochs, BatchSize: *batch, LR: *lr, Momentum: *momentum, Seed: *seed + 3,
		Optimizer: *optName, Schedule: *schedNm, WarmupEpochs: *warmup,
		Replicas: *replicas, GradShards: *shards,
		Logf: log.Printf,
	}

	// Resume a checkpointed run: the checkpoint restores the weights AND
	// the engaged lock bits, so the key is not re-applied.
	resumed := false
	if *ckptPath != "" && *resume {
		if _, err := os.Stat(*ckptPath); err == nil {
			back, st, err := hpnn.LoadCheckpointFile(*ckptPath)
			if err != nil {
				log.Fatal(err)
			}
			if back.Config.Arch != arch {
				log.Fatalf("checkpoint architecture %s does not match -arch %s", back.Config.Arch, arch)
			}
			m = back
			cfg.Resume = &st
			resumed = true
			log.Printf("resuming from %s at epoch %d", *ckptPath, st.NextEpoch)
		}
	}
	dev := hpnn.NewTrustedDevice("owner-train", key)
	if !resumed {
		if err := scheme.InstrumentTraining(m, dev, sched); err != nil {
			log.Fatal(err)
		}
	}
	if *ckptPath != "" {
		cfg.Hooks.OnEpoch = func(info hpnn.TrainEpochInfo) bool {
			if err := hpnn.SaveCheckpointFile(*ckptPath, m, info.Snapshot()); err != nil {
				log.Fatalf("writing checkpoint: %v", err)
			}
			return true
		}
	}

	log.Printf("training %s on %s under scheme %s (%dx%dx%d, %d train / %d test, %d locked neurons, %d params)",
		arch, *dsName, scheme.Name(), ds.C, ds.H, ds.W, *trainN, *testN, m.LockedNeurons(), m.Net.ParamCount())
	res, err := hpnn.TrainChecked(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ownerAcc := res.FinalTestAcc()

	// Publish a clone under the scheme and measure the thief's view of the
	// published artifact (Unlock with no device).
	pub, err := m.Clone()
	if err != nil {
		log.Fatal(err)
	}
	if err := scheme.Publish(pub, dev, sched); err != nil {
		log.Fatal(err)
	}
	thief, err := pub.Clone()
	if err != nil {
		log.Fatal(err)
	}
	if err := scheme.Unlock(thief, nil, sched); err != nil {
		log.Fatal(err)
	}
	noKey := thief.Accuracy(ds.TestX, ds.TestY, 64)

	fmt.Printf("owner accuracy (with key): %.2f%%\n", 100*ownerAcc)
	fmt.Printf("stolen-model accuracy (no key): %.2f%% (drop %.2f points)\n",
		100*noKey, 100*(ownerAcc-noKey))

	if err := hpnn.SaveModelFile(*out, pub); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("obfuscated model written to %s (scheme %s)\n", *out, scheme.Name())
	if *keyOut != "" {
		// The one place the raw key legitimately leaves the process: the
		// owner asked for it with -key-out, written 0600.
		//hpnn:keyok(owner-requested key escrow via -key-out, mode 0600)
		if err := os.WriteFile(*keyOut, []byte(key.Hex()+"\n"), 0o600); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("secret key written to %s (keep private; schedule seed %d also required)\n", *keyOut, *schedSd)
	} else {
		fmt.Printf("secret key fp=%s (not printed; use -key-out to save it)\n", key.Fingerprint())
	}
}
