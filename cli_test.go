package hpnn_test

import (
	"bytes"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hpnn"
)

// TestCLIWorkflow builds the command-line tools and drives the full
// owner → publish → evaluate → attack flow through their real interfaces:
// hpnn-train writes a model and key, hpnn-eval checks all three usage
// scenarios, hpnn-attack mounts both attack modes, hpnn-tpu prints the
// overhead report.
func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"hpnn-train", "hpnn-eval", "hpnn-attack", "hpnn-tpu", "hpnn-dataset"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	model := filepath.Join(dir, "model.hpnn")
	keyFile := filepath.Join(dir, "key.hex")

	run := func(name string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin(name), args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// Owner trains and saves.
	out := run("hpnn-train",
		"-dataset", "fashion", "-train-n", "400", "-test-n", "150",
		"-epochs", "5", "-out", model, "-key-out", keyFile)
	if !strings.Contains(out, "owner accuracy") {
		t.Fatalf("train output missing summary:\n%s", out)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatal("model file not written")
	}
	key, err := os.ReadFile(keyFile)
	if err != nil || len(strings.TrimSpace(string(key))) != 64 {
		t.Fatalf("key file malformed: %v %q", err, key)
	}

	// Authorized software evaluation.
	out = run("hpnn-eval", "-model", model, "-key-file", keyFile, "-test-n", "150")
	if !strings.Contains(out, "with key") {
		t.Fatalf("eval output unexpected:\n%s", out)
	}

	// Attacker evaluation (no key) — must mention the attacker scenario.
	out = run("hpnn-eval", "-model", model, "-test-n", "150")
	if !strings.Contains(out, "attacker") {
		t.Fatalf("no-key eval output unexpected:\n%s", out)
	}

	// Trusted-device (TPU) evaluation.
	out = run("hpnn-eval", "-model", model, "-key-file", keyFile, "-tpu", "-test-n", "60")
	if !strings.Contains(out, "trusted device") || !strings.Contains(out, "MACs") {
		t.Fatalf("tpu eval output unexpected:\n%s", out)
	}

	// Checkpoint/resume: an interrupted run (killed via a short -epochs)
	// resumed with -resume must reach the same owner accuracy as an
	// uninterrupted run with identical seeds.
	ckpt := filepath.Join(dir, "train.ckpt")
	model2 := filepath.Join(dir, "model2.hpnn")
	trainArgs := []string{
		"-dataset", "fashion", "-train-n", "400", "-test-n", "150",
		"-seed", "5", "-out", model2, "-checkpoint", ckpt,
	}
	run("hpnn-train", append(trainArgs, "-epochs", "2")...)
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatal("checkpoint file not written")
	}
	resumedOut := run("hpnn-train", append(trainArgs, "-epochs", "4", "-resume")...)
	if !strings.Contains(resumedOut, "resuming from") || !strings.Contains(resumedOut, "at epoch 2") {
		t.Fatalf("resume output unexpected:\n%s", resumedOut)
	}
	straightOut := run("hpnn-train",
		"-dataset", "fashion", "-train-n", "400", "-test-n", "150",
		"-seed", "5", "-out", filepath.Join(dir, "model3.hpnn"), "-epochs", "4")
	wantAcc := accuracyLine(t, straightOut)
	gotAcc := accuracyLine(t, resumedOut)
	if wantAcc != gotAcc {
		t.Fatalf("resumed run diverged: straight %q vs resumed %q", wantAcc, gotAcc)
	}

	// Fine-tuning attack.
	out = run("hpnn-attack", "-model", model, "-alpha", "0.05", "-epochs", "3",
		"-train-n", "400", "-test-n", "150")
	if !strings.Contains(out, "final accuracy") {
		t.Fatalf("attack output unexpected:\n%s", out)
	}

	// Key-recovery attack.
	out = run("hpnn-attack", "-model", model, "-mode", "keyrecovery", "-queries", "40",
		"-train-n", "400", "-test-n", "150")
	if !strings.Contains(out, "bits tried/flipped") {
		t.Fatalf("key-recovery output unexpected:\n%s", out)
	}

	// Hardware overhead report.
	out = run("hpnn-tpu", "-rows", "128", "-cols", "128")
	if !strings.Contains(out, "XOR gates") || !strings.Contains(out, "2048") {
		t.Fatalf("tpu report unexpected (128 cols → 2048 XOR gates):\n%s", out)
	}

	// Dataset contact sheets.
	sheets := filepath.Join(dir, "sheets")
	out = run("hpnn-dataset", "-dataset", "fashion", "-per-class", "3", "-img", "16", "-out", sheets)
	if !strings.Contains(out, "fashion.png") {
		t.Fatalf("dataset tool output unexpected:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(sheets, "fashion.png")); err != nil {
		t.Fatal("contact sheet not written")
	}
}

// accuracyLine extracts the "owner accuracy" summary line from
// hpnn-train's output — the exact printed accuracy, so a bitwise-resumed
// run must reproduce it character for character.
func accuracyLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "owner accuracy") {
			return line
		}
	}
	t.Fatalf("no owner-accuracy line in output:\n%s", out)
	return ""
}

// TestCLIServe drives the network inference service end to end: train a
// tiny model, start hpnn-serve on a TCP port, classify samples through the
// public wire codec (valid, malformed and mis-shaped requests), then shut
// the server down with SIGTERM and check the drain report.
func TestCLIServe(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"hpnn-train", "hpnn-serve"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	model := filepath.Join(dir, "model.hpnn")
	keyFile := filepath.Join(dir, "key.hex")
	if out, err := exec.Command(bin("hpnn-train"),
		"-dataset", "fashion", "-train-n", "100", "-test-n", "30",
		"-epochs", "1", "-out", model, "-key-out", keyFile).CombinedOutput(); err != nil {
		t.Fatalf("hpnn-train: %v\n%s", err, out)
	}

	const addr = "127.0.0.1:18741"
	var output bytes.Buffer
	srv := exec.Command(bin("hpnn-serve"),
		"-model", model, "-key-file", keyFile, "-addr", addr, "-shards", "2")
	srv.Stdout, srv.Stderr = &output, &output
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	var conn net.Conn
	var err error
	for i := 0; i < 100; i++ {
		if conn, err = net.Dial("tcp", addr); err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("serve did not come up: %v\n%s", err, output.Bytes())
	}
	defer conn.Close()

	// Classify a batch of samples over one connection; responses come back
	// in order, one class in [0, 10) per request.
	ds, err := hpnn.GenerateDataset(hpnn.DatasetConfig{
		Name: "fashion", TrainN: 1, TestN: 8, H: 16, W: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	feat := 16 * 16
	for i := 0; i < 8; i++ {
		x := hpnn.Tensor{Shape: []int{1, 16, 16}, Data: ds.TestX.Data[i*feat : (i+1)*feat]}
		if err := hpnn.EncodeServeRequest(conn, &x); err != nil {
			t.Fatal(err)
		}
		class, err := hpnn.DecodeServeResponse(conn)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if class < 0 || class >= 10 {
			t.Fatalf("sample %d: class %d out of range", i, class)
		}
	}

	// A mis-shaped request fails in-band; the connection stays usable.
	if err := hpnn.EncodeServeRequest(conn, hpnn.NewTensor(2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := hpnn.DecodeServeResponse(conn); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("mis-shaped request answered with %v, want remote shape error", err)
	}
	x := hpnn.Tensor{Shape: []int{1, 16, 16}, Data: ds.TestX.Data[:feat]}
	if err := hpnn.EncodeServeRequest(conn, &x); err != nil {
		t.Fatal(err)
	}
	if _, err := hpnn.DecodeServeResponse(conn); err != nil {
		t.Fatalf("connection unusable after in-band error: %v", err)
	}

	// A malformed frame terminates the connection server-side.
	bad, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	bad.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	bad.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := bad.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a frame beyond the size limit")
	}
	bad.Close()

	// Graceful shutdown: SIGTERM → drain → stats report.
	if err := srv.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not exit on SIGINT\n%s", output.Bytes())
	}
	got := output.String()
	if !strings.Contains(got, "trusted device") || !strings.Contains(got, "served") ||
		!strings.Contains(got, "latency p50") || !strings.Contains(got, "locked outputs") {
		t.Fatalf("shutdown report unexpected:\n%s", got)
	}
}

// TestCLIBenchAndZoo drives the remaining tools: hpnn-bench (crypto
// experiment — fast) with JSON export, and the hpnn-zoo server/client
// round-trip over a real TCP port.
func TestCLIBenchAndZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"hpnn-bench", "hpnn-zoo", "hpnn-train"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	// hpnn-bench: fast experiment + JSON export.
	jsonDir := filepath.Join(dir, "json")
	out, err := exec.Command(bin("hpnn-bench"), "-exp", "crypto", "-profile", "bench", "-json", jsonDir).CombinedOutput()
	if err != nil {
		t.Fatalf("hpnn-bench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "AES") {
		t.Fatalf("bench output unexpected:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(jsonDir, "crypto.json")); err != nil {
		t.Fatal("bench JSON not written")
	}

	// Train a tiny model to publish.
	model := filepath.Join(dir, "m.hpnn")
	if out, err := exec.Command(bin("hpnn-train"),
		"-dataset", "fashion", "-train-n", "100", "-test-n", "30",
		"-epochs", "1", "-out", model).CombinedOutput(); err != nil {
		t.Fatalf("hpnn-train: %v\n%s", err, out)
	}

	// hpnn-zoo server on a fixed test port.
	const addr = "127.0.0.1:18734"
	srv := exec.Command(bin("hpnn-zoo"), "-serve", "-addr", addr)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()
	base := "http://" + addr
	// Wait for the server to come up.
	ready := false
	for i := 0; i < 50; i++ {
		if resp, err := http.Get(base + "/models"); err == nil {
			resp.Body.Close()
			ready = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !ready {
		t.Fatal("zoo server did not start")
	}

	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(bin("hpnn-zoo"), args...).CombinedOutput()
		if err != nil {
			t.Fatalf("hpnn-zoo %v: %v\n%s", args, err, out)
		}
		return string(out)
	}
	run("-server", base, "-publish", "tiny", "-model", model)
	if out := run("-server", base, "-list"); !strings.Contains(out, "tiny") {
		t.Fatalf("zoo list missing model:\n%s", out)
	}
	fetched := filepath.Join(dir, "fetched.hpnn")
	run("-server", base, "-fetch", "tiny", "-out", fetched)
	if _, err := os.Stat(fetched); err != nil {
		t.Fatal("fetched model not written")
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer: the zoo-mode serve test
// polls a live process's output while the process keeps writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestCLIServeZoo drives the multi-tenant story end to end through the
// real tools: publish three models into a live zoo (one straight from an
// HPCK checkpoint via -publish-ckpt), serve them all from one hpnn-serve
// process with per-model keys, route v2 requests per model (and a v1
// request to the default tenant), re-publish a model and watch the server
// hot-swap it, then drain and check the per-tenant registry report.
func TestCLIServeZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"hpnn-train", "hpnn-zoo", "hpnn-serve"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	// Two trained models: alpha from a published .hpnn, beta left as a
	// private HPCK checkpoint for the -publish-ckpt path.
	modelA := filepath.Join(dir, "a.hpnn")
	keyA := filepath.Join(dir, "keyA.hex")
	if out, err := exec.Command(bin("hpnn-train"),
		"-dataset", "fashion", "-train-n", "100", "-test-n", "30",
		"-epochs", "1", "-out", modelA, "-key-out", keyA).CombinedOutput(); err != nil {
		t.Fatalf("hpnn-train: %v\n%s", err, out)
	}
	ckptB := filepath.Join(dir, "b.ckpt")
	keyB := filepath.Join(dir, "keyB.hex")
	if out, err := exec.Command(bin("hpnn-train"),
		"-dataset", "fashion", "-train-n", "100", "-test-n", "30", "-seed", "9",
		"-epochs", "1", "-out", filepath.Join(dir, "b.hpnn"), "-key-out", keyB,
		"-checkpoint", ckptB).CombinedOutput(); err != nil {
		t.Fatalf("hpnn-train (checkpoint): %v\n%s", err, out)
	}

	// Zoo server.
	const zooAddr = "127.0.0.1:18744"
	zooSrv := exec.Command(bin("hpnn-zoo"), "-serve", "-addr", zooAddr)
	if err := zooSrv.Start(); err != nil {
		t.Fatal(err)
	}
	defer zooSrv.Process.Kill()
	base := "http://" + zooAddr
	ready := false
	for i := 0; i < 50; i++ {
		if resp, err := http.Get(base + "/models"); err == nil {
			resp.Body.Close()
			ready = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !ready {
		t.Fatal("zoo server did not start")
	}
	zoo := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(bin("hpnn-zoo"), append([]string{"-server", base}, args...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("hpnn-zoo %v: %v\n%s", args, err, out)
		}
		return string(out)
	}
	// Three tenants: alpha (published file, keyed), beta (straight from the
	// HPCK checkpoint, keyed), gamma (same published weights as alpha but
	// no key — the commodity scenario).
	zoo("-publish", "alpha", "-model", modelA)
	out := zoo("-publish", "beta", "-publish-ckpt", ckptB, "-key-file", keyB)
	if !strings.Contains(out, "published checkpoint") {
		t.Fatalf("checkpoint publish output unexpected:\n%s", out)
	}
	zoo("-publish", "gamma", "-model", modelA)
	if out := zoo("-list"); !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") ||
		!strings.Contains(out, "v1") {
		t.Fatalf("zoo list missing entries or versions:\n%s", out)
	}

	// Per-model keys for the serving process.
	keysDir := filepath.Join(dir, "keys")
	if err := os.MkdirAll(keysDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]string{"alpha": keyA, "beta": keyB} {
		raw, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(keysDir, name+".hex"), raw, 0o600); err != nil {
			t.Fatal(err)
		}
	}

	// One serving process for the whole zoo, polling for hot-swaps.
	const addr = "127.0.0.1:18745"
	var output syncBuffer
	srv := exec.Command(bin("hpnn-serve"),
		"-zoo", base, "-keys-dir", keysDir, "-default-model", "alpha",
		"-poll", "200ms", "-addr", addr, "-shards", "2")
	srv.Stdout, srv.Stderr = &output, &output
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	var conn net.Conn
	var err error
	for i := 0; i < 100; i++ {
		if conn, err = net.Dial("tcp", addr); err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("serve did not come up: %v\n%s", err, output.String())
	}
	defer conn.Close()

	ds, err := hpnn.GenerateDataset(hpnn.DatasetConfig{
		Name: "fashion", TrainN: 1, TestN: 4, H: 16, W: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	feat := 16 * 16
	sample := func(i int) *hpnn.Tensor {
		return &hpnn.Tensor{Shape: []int{1, 16, 16}, Data: ds.TestX.Data[i*feat : (i+1)*feat]}
	}
	ask := func(model string, i int) int {
		t.Helper()
		if err := hpnn.EncodeServeRequestTo(conn, model, sample(i)); err != nil {
			t.Fatal(err)
		}
		class, err := hpnn.DecodeServeResponse(conn)
		if err != nil {
			t.Fatalf("model %q sample %d: %v", model, i, err)
		}
		if class < 0 || class >= 10 {
			t.Fatalf("model %q sample %d: class %d out of range", model, i, class)
		}
		return class
	}
	// v2 frames route per model; all three tenants answer on one connection.
	for _, model := range []string{"alpha", "beta", "gamma"} {
		for i := 0; i < 4; i++ {
			ask(model, i)
		}
	}
	// A v1 frame (no model ID) routes to the default tenant and must agree
	// with an explicit v2 request to it.
	if err := hpnn.EncodeServeRequest(conn, sample(0)); err != nil {
		t.Fatal(err)
	}
	v1Class, err := hpnn.DecodeServeResponse(conn)
	if err != nil {
		t.Fatal(err)
	}
	if got := ask("alpha", 0); got != v1Class {
		t.Fatalf("v1 default routing answered %d, explicit alpha answered %d", v1Class, got)
	}
	// Unknown models fail in-band; the connection survives.
	if err := hpnn.EncodeServeRequestTo(conn, "ghost", sample(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := hpnn.DecodeServeResponse(conn); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("unknown model answered with %v, want in-band unknown-model error", err)
	}
	ask("alpha", 1)

	// Re-publish alpha with beta's weights: the watch loop must hot-swap it.
	zoo("-publish", "alpha", "-model", filepath.Join(dir, "b.hpnn"))
	swapped := false
	for i := 0; i < 150; i++ {
		if strings.Contains(output.String(), `hot-swapped model "alpha"`) {
			swapped = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !swapped {
		t.Fatalf("server never hot-swapped the re-published model\n%s", output.String())
	}
	ask("alpha", 2) // the swapped tenant keeps serving

	// Drain and check the registry report.
	if err := srv.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not exit on SIGINT\n%s", output.String())
	}
	got := output.String()
	for _, want := range []string{
		"serving 3 model(s)", "trusted device", "commodity accelerator",
		"model alpha", "model beta", "model gamma",
		"registry:", "1 hot-swaps", "locked outputs",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("zoo-serve report missing %q:\n%s", want, got)
		}
	}
}
