package hpnn_test

import (
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCLIWorkflow builds the command-line tools and drives the full
// owner → publish → evaluate → attack flow through their real interfaces:
// hpnn-train writes a model and key, hpnn-eval checks all three usage
// scenarios, hpnn-attack mounts both attack modes, hpnn-tpu prints the
// overhead report.
func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"hpnn-train", "hpnn-eval", "hpnn-attack", "hpnn-tpu", "hpnn-dataset"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	model := filepath.Join(dir, "model.hpnn")
	keyFile := filepath.Join(dir, "key.hex")

	run := func(name string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin(name), args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// Owner trains and saves.
	out := run("hpnn-train",
		"-dataset", "fashion", "-train-n", "400", "-test-n", "150",
		"-epochs", "5", "-out", model, "-key-out", keyFile)
	if !strings.Contains(out, "owner accuracy") {
		t.Fatalf("train output missing summary:\n%s", out)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatal("model file not written")
	}
	key, err := os.ReadFile(keyFile)
	if err != nil || len(strings.TrimSpace(string(key))) != 64 {
		t.Fatalf("key file malformed: %v %q", err, key)
	}

	// Authorized software evaluation.
	out = run("hpnn-eval", "-model", model, "-key-file", keyFile, "-test-n", "150")
	if !strings.Contains(out, "with key") {
		t.Fatalf("eval output unexpected:\n%s", out)
	}

	// Attacker evaluation (no key) — must mention the attacker scenario.
	out = run("hpnn-eval", "-model", model, "-test-n", "150")
	if !strings.Contains(out, "attacker") {
		t.Fatalf("no-key eval output unexpected:\n%s", out)
	}

	// Trusted-device (TPU) evaluation.
	out = run("hpnn-eval", "-model", model, "-key-file", keyFile, "-tpu", "-test-n", "60")
	if !strings.Contains(out, "trusted device") || !strings.Contains(out, "MACs") {
		t.Fatalf("tpu eval output unexpected:\n%s", out)
	}

	// Fine-tuning attack.
	out = run("hpnn-attack", "-model", model, "-alpha", "0.05", "-epochs", "3",
		"-train-n", "400", "-test-n", "150")
	if !strings.Contains(out, "final accuracy") {
		t.Fatalf("attack output unexpected:\n%s", out)
	}

	// Key-recovery attack.
	out = run("hpnn-attack", "-model", model, "-mode", "keyrecovery", "-queries", "40",
		"-train-n", "400", "-test-n", "150")
	if !strings.Contains(out, "bits tried/flipped") {
		t.Fatalf("key-recovery output unexpected:\n%s", out)
	}

	// Hardware overhead report.
	out = run("hpnn-tpu", "-rows", "128", "-cols", "128")
	if !strings.Contains(out, "XOR gates") || !strings.Contains(out, "2048") {
		t.Fatalf("tpu report unexpected (128 cols → 2048 XOR gates):\n%s", out)
	}

	// Dataset contact sheets.
	sheets := filepath.Join(dir, "sheets")
	out = run("hpnn-dataset", "-dataset", "fashion", "-per-class", "3", "-img", "16", "-out", sheets)
	if !strings.Contains(out, "fashion.png") {
		t.Fatalf("dataset tool output unexpected:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(sheets, "fashion.png")); err != nil {
		t.Fatal("contact sheet not written")
	}
}

// TestCLIBenchAndZoo drives the remaining tools: hpnn-bench (crypto
// experiment — fast) with JSON export, and the hpnn-zoo server/client
// round-trip over a real TCP port.
func TestCLIBenchAndZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"hpnn-bench", "hpnn-zoo", "hpnn-train"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	// hpnn-bench: fast experiment + JSON export.
	jsonDir := filepath.Join(dir, "json")
	out, err := exec.Command(bin("hpnn-bench"), "-exp", "crypto", "-profile", "bench", "-json", jsonDir).CombinedOutput()
	if err != nil {
		t.Fatalf("hpnn-bench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "AES") {
		t.Fatalf("bench output unexpected:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(jsonDir, "crypto.json")); err != nil {
		t.Fatal("bench JSON not written")
	}

	// Train a tiny model to publish.
	model := filepath.Join(dir, "m.hpnn")
	if out, err := exec.Command(bin("hpnn-train"),
		"-dataset", "fashion", "-train-n", "100", "-test-n", "30",
		"-epochs", "1", "-out", model).CombinedOutput(); err != nil {
		t.Fatalf("hpnn-train: %v\n%s", err, out)
	}

	// hpnn-zoo server on a fixed test port.
	const addr = "127.0.0.1:18734"
	srv := exec.Command(bin("hpnn-zoo"), "-serve", "-addr", addr)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()
	base := "http://" + addr
	// Wait for the server to come up.
	ready := false
	for i := 0; i < 50; i++ {
		if resp, err := http.Get(base + "/models"); err == nil {
			resp.Body.Close()
			ready = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !ready {
		t.Fatal("zoo server did not start")
	}

	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(bin("hpnn-zoo"), args...).CombinedOutput()
		if err != nil {
			t.Fatalf("hpnn-zoo %v: %v\n%s", args, err, out)
		}
		return string(out)
	}
	run("-server", base, "-publish", "tiny", "-model", model)
	if out := run("-server", base, "-list"); !strings.Contains(out, "tiny") {
		t.Fatalf("zoo list missing model:\n%s", out)
	}
	fetched := filepath.Join(dir, "fetched.hpnn")
	run("-server", base, "-fetch", "tiny", "-out", fetched)
	if _, err := os.Stat(fetched); err != nil {
		t.Fatal("fetched model not written")
	}
}
