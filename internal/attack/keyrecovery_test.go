package attack

import (
	"testing"
)

func TestRecoverLocksImprovesButRespectsBudget(t *testing.T) {
	f := getFixture(t)
	res, err := RecoverLocks(f.victim, f.ds, KeyRecoveryConfig{
		ThiefFrac: 0.1, ThiefSeed: 7, MaxQueries: 150, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries > 150 {
		t.Fatalf("query budget exceeded: %d", res.Queries)
	}
	if res.BitsTried == 0 || res.ThiefSamples == 0 {
		t.Fatalf("attack did not run: %+v", res)
	}
	// Greedy hill climbing never decreases thief accuracy.
	if res.ThiefAccEnd < res.ThiefAccStart {
		t.Fatalf("thief accuracy decreased: %.3f -> %.3f", res.ThiefAccStart, res.ThiefAccEnd)
	}
	// With a budget far below the number of locked neurons, the attacker
	// must not reach the owner's accuracy.
	if res.TestAccEnd >= f.ownerAcc-0.02 {
		t.Fatalf("budgeted key recovery reached owner accuracy: %.3f vs %.3f", res.TestAccEnd, f.ownerAcc)
	}
	t.Logf("key recovery: thief %.3f->%.3f, test %.3f->%.3f, flipped %d/%d (owner %.3f)",
		res.ThiefAccStart, res.ThiefAccEnd, res.TestAccStart, res.TestAccEnd,
		res.BitsFlipped, res.BitsTried, f.ownerAcc)
}

func TestRecoverLocksVictimUntouched(t *testing.T) {
	f := getFixture(t)
	before := f.victim.Accuracy(f.ds.TestX, f.ds.TestY, 64)
	if _, err := RecoverLocks(f.victim, f.ds, KeyRecoveryConfig{
		ThiefFrac: 0.05, ThiefSeed: 9, MaxQueries: 30, Seed: 10,
	}); err != nil {
		t.Fatal(err)
	}
	if after := f.victim.Accuracy(f.ds.TestX, f.ds.TestY, 64); after != before {
		t.Fatal("key-recovery attack mutated the victim")
	}
}

func TestRecoverLocksValidation(t *testing.T) {
	f := getFixture(t)
	if _, err := RecoverLocks(f.victim, f.ds, KeyRecoveryConfig{ThiefFrac: 0}); err == nil {
		t.Fatal("zero thief fraction accepted")
	}
	if _, err := RecoverLocks(f.victim, f.ds, KeyRecoveryConfig{ThiefFrac: 1.5}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}
