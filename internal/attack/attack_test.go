package attack

import (
	"testing"

	"hpnn/internal/core"
	"hpnn/internal/dataset"
	"hpnn/internal/keys"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
)

// fixture trains a miniature locked victim model once per test binary.
type fixture struct {
	victim   *core.Model
	ds       *dataset.Dataset
	ownerAcc float64
}

var shared *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if shared != nil {
		return shared
	}
	ds, err := dataset.Generate(dataset.Config{
		Name: "fashion", TrainN: 600, TestN: 200, H: 16, W: 16, Seed: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	victim := core.MustModel(core.Config{Arch: core.CNN1, InC: 1, InH: 16, InW: 16, Seed: 51})
	victim.ApplyRawKey(keys.Generate(rng.New(52)), schedule.New(keys.KeyBits, 53))
	res := core.Train(victim, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, core.TrainConfig{
		Epochs: 8, BatchSize: 32, LR: 0.02, Momentum: 0.9, Seed: 54,
	})
	shared = &fixture{victim: victim, ds: ds, ownerAcc: res.FinalTestAcc()}
	if shared.ownerAcc < 0.6 {
		t.Fatalf("victim failed to train: %.3f", shared.ownerAcc)
	}
	return shared
}

func defaultTrain() core.TrainConfig {
	return core.TrainConfig{Epochs: 6, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 55}
}

func TestFineTuneStolenInitLimitedByThiefSize(t *testing.T) {
	f := getFixture(t)
	small, _, err := FineTune(f.victim, f.ds, FineTuneConfig{
		ThiefFrac: 0.02, ThiefSeed: 1, Init: InitStolen, Train: defaultTrain(),
	})
	if err != nil {
		t.Fatal(err)
	}
	large, _, err := FineTune(f.victim, f.ds, FineTuneConfig{
		ThiefFrac: 0.3, ThiefSeed: 1, Init: InitStolen, Train: defaultTrain(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if small.ThiefSamples >= large.ThiefSamples {
		t.Fatal("thief sample counts not monotone in fraction")
	}
	if small.BestAcc >= large.BestAcc+0.05 {
		t.Fatalf("more thief data should not hurt: α=2%% %.3f vs α=30%% %.3f", small.BestAcc, large.BestAcc)
	}
	// The paper's core claim: a small thief set cannot recover the owner's
	// accuracy.
	if small.Success(f.ownerAcc, 0.05) {
		t.Fatalf("2%% thief attack recovered owner accuracy (%.3f vs %.3f)", small.BestAcc, f.ownerAcc)
	}
}

func TestFineTunePreAttackCollapse(t *testing.T) {
	f := getFixture(t)
	r, _, err := FineTune(f.victim, f.ds, FineTuneConfig{
		ThiefFrac: 0.05, ThiefSeed: 2, Init: InitStolen, Train: defaultTrain(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The stolen model on the baseline architecture (pre-retraining) must
	// be far below the owner's accuracy.
	if r.PreAttackAcc > f.ownerAcc-0.3 {
		t.Fatalf("stolen model pre-attack accuracy %.3f too close to owner %.3f", r.PreAttackAcc, f.ownerAcc)
	}
}

func TestFineTuneVictimUnchanged(t *testing.T) {
	f := getFixture(t)
	before := f.victim.Accuracy(f.ds.TestX, f.ds.TestY, 64)
	_, _, err := FineTune(f.victim, f.ds, FineTuneConfig{
		ThiefFrac: 0.05, ThiefSeed: 3, Init: InitStolen, Train: defaultTrain(),
	})
	if err != nil {
		t.Fatal(err)
	}
	after := f.victim.Accuracy(f.ds.TestX, f.ds.TestY, 64)
	if before != after {
		t.Fatalf("attack mutated the victim model: %.4f -> %.4f", before, after)
	}
	for _, l := range f.victim.Locks() {
		if !l.Engaged {
			t.Fatal("attack disengaged the victim's locks")
		}
	}
}

func TestFineTuneZeroFraction(t *testing.T) {
	f := getFixture(t)
	r, _, err := FineTune(f.victim, f.ds, FineTuneConfig{
		ThiefFrac: 0, Init: InitStolen, Train: defaultTrain(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ThiefSamples != 0 || len(r.TestAcc) != 0 {
		t.Fatal("α=0 must not train")
	}
	if r.FinalAcc != r.PreAttackAcc {
		t.Fatal("α=0 final accuracy must equal pre-attack accuracy")
	}
}

func TestFineTuneRejectsBadFraction(t *testing.T) {
	f := getFixture(t)
	if _, _, err := FineTune(f.victim, f.ds, FineTuneConfig{ThiefFrac: 1.2}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

// TestInformationLeakage reproduces the §IV-C comparison: HPNN-initialized
// and random-initialized fine-tuning should land close to each other —
// the obfuscated weights give the attacker no meaningful head start.
func TestInformationLeakage(t *testing.T) {
	f := getFixture(t)
	cfg := FineTuneConfig{ThiefFrac: 0.1, ThiefSeed: 4, Train: defaultTrain()}
	cfg.Init = InitStolen
	hpnnFT, _, err := FineTune(f.victim, f.ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Init = InitRandom
	cfg.AttackerSeed = 99
	randFT, _, err := FineTune(f.victim, f.ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gap := LeakageGap(hpnnFT, randFT)
	if gap > 0.25 {
		t.Fatalf("information leakage gap %.3f too large (hpnn %.3f vs random %.3f)",
			gap, hpnnFT.FinalAcc, randFT.FinalAcc)
	}
	// Neither attack should recover the owner's accuracy.
	if hpnnFT.Success(f.ownerAcc, 0.02) && randFT.Success(f.ownerAcc, 0.02) {
		t.Fatalf("both attacks recovered owner accuracy %.3f", f.ownerAcc)
	}
}

func TestSweepThiefFractions(t *testing.T) {
	f := getFixture(t)
	fracs := []float64{0.02, 0.1}
	res, err := SweepThiefFractions(f.victim, f.ds, fracs, FineTuneConfig{
		Init: InitStolen, ThiefSeed: 5, Train: defaultTrain(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	for i, r := range res {
		if r.ThiefFrac != fracs[i] {
			t.Fatal("fractions not preserved in order")
		}
		if len(r.TestAcc) == 0 {
			t.Fatal("missing trajectory")
		}
	}
}

func TestSweepLearningRates(t *testing.T) {
	f := getFixture(t)
	lrs := []float64{0.01, 0.05}
	res, err := SweepLearningRates(f.victim, f.ds, lrs, FineTuneConfig{
		ThiefFrac: 0.1, ThiefSeed: 6, Init: InitStolen, Train: defaultTrain(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	// Results must differ: learning rate is not being ignored.
	if res[0].FinalAcc == res[1].FinalAcc && res[0].TestAcc[0] == res[1].TestAcc[0] {
		t.Fatal("learning-rate sweep produced identical trajectories")
	}
}

func TestInitString(t *testing.T) {
	if InitStolen.String() != "hpnn-finetune" || InitRandom.String() != "random-finetune" {
		t.Fatal("Init naming wrong")
	}
}
