package attack

import (
	"fmt"

	"hpnn/internal/core"
	"hpnn/internal/dataset"
	"hpnn/internal/keys"
	"hpnn/internal/lockscheme"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
	"hpnn/internal/tensor"
)

// Scheme-generic attacks. RecoverLocks (keyrecovery.go) hill-climbs the
// per-neuron lock bits of the paper's scheme directly; the attacks here
// instead target the 256-bit device key of ANY registered lock scheme
// through its public Unlock semantics. The threat model is Kerckhoffs's:
// the scheme, the schedule and the key-derivation code are public, only the
// key is secret. That is strictly generous to the attacker (the paper also
// keeps the schedule private), so cross-scheme numbers are lower bounds on
// security.

// evalUnlocked clones the published model, unlocks the clone under a
// hypothesized key and returns it for evaluation. The published artifact is
// never mutated.
func evalUnlocked(scheme lockscheme.Scheme, published *core.Model, key keys.Key, sched *schedule.Schedule) (*core.Model, error) {
	c, err := published.Clone()
	if err != nil {
		return nil, err
	}
	if err := scheme.Unlock(c, keys.NewDevice("attacker-hypothesis", key), sched); err != nil {
		return nil, err
	}
	return c, nil
}

// SchemeKeyRecoveryConfig budgets a greedy device-key recovery attack.
type SchemeKeyRecoveryConfig struct {
	// ThiefFrac/ThiefSeed select the attacker's labelled data.
	ThiefFrac float64
	ThiefSeed uint64
	// MaxQueries caps thief-set evaluations (one per key-bit trial).
	MaxQueries int
	// Seed randomizes the key-bit visit order.
	Seed uint64
}

// SchemeKeyRecoveryResult summarizes a device-key recovery attack.
type SchemeKeyRecoveryResult struct {
	Scheme       string
	ThiefSamples int
	Queries      int
	BitsTried    int
	BitsFlipped  int
	// Thief-set accuracy under the starting (all-zero) and final key
	// hypotheses.
	ThiefAccStart, ThiefAccEnd float64
	// Held-out test accuracy under the same hypotheses — the attacker's
	// actual gain.
	TestAccStart, TestAccEnd float64
}

// RecoverKey hill-climbs the 256-bit device key against a published model:
// starting from the all-zero key, it flips one hypothesized bit at a time
// (random order, repeated rounds) and keeps flips that improve thief-set
// accuracy under scheme.Unlock. Per-neuron XOR locking gives each bit a
// local, measurable effect and is expected to leak; cipher- and
// permutation-based schemes rekey the whole derived stream on any single
// bit flip, so the climb has no gradient to follow.
func RecoverKey(scheme lockscheme.Scheme, published *core.Model, sched *schedule.Schedule, ds *dataset.Dataset, cfg SchemeKeyRecoveryConfig) (SchemeKeyRecoveryResult, error) {
	res := SchemeKeyRecoveryResult{Scheme: scheme.Name()}
	if cfg.ThiefFrac <= 0 || cfg.ThiefFrac > 1 {
		return res, fmt.Errorf("attack: thief fraction %v out of (0,1]", cfg.ThiefFrac)
	}
	if cfg.MaxQueries <= 0 {
		cfg.MaxQueries = 512
	}
	thiefX, thiefY := ds.ThiefSubset(cfg.ThiefFrac, cfg.ThiefSeed)
	res.ThiefSamples = len(thiefY)
	if res.ThiefSamples == 0 {
		return res, fmt.Errorf("attack: empty thief set")
	}

	evalKey := func(k keys.Key, x *tensor.Tensor, y []int) (float64, error) {
		m, err := evalUnlocked(scheme, published, k, sched)
		if err != nil {
			return 0, err
		}
		return m.Accuracy(x, y, 64), nil
	}
	evalThief := func(k keys.Key) (float64, error) {
		res.Queries++
		return evalKey(k, thiefX, thiefY)
	}

	var hyp keys.Key // all-zero start: the attacker knows nothing
	var err error
	if res.TestAccStart, err = evalKey(hyp, ds.TestX, ds.TestY); err != nil {
		return res, err
	}
	best, err := evalThief(hyp)
	if err != nil {
		return res, err
	}
	res.ThiefAccStart = best

	// Rounds of greedy single-bit flips until the budget runs out or a
	// full round accepts nothing.
	r := rng.New(cfg.Seed)
	for res.Queries < cfg.MaxQueries {
		order := r.Perm(keys.KeyBits)
		flippedThisRound := 0
		for _, bit := range order {
			if res.Queries >= cfg.MaxQueries {
				break
			}
			cand := hyp.FlipBit(bit)
			res.BitsTried++
			acc, err := evalThief(cand)
			if err != nil {
				return res, err
			}
			if acc > best {
				best, hyp = acc, cand
				res.BitsFlipped++
				flippedThisRound++
			}
		}
		if flippedThisRound == 0 {
			break
		}
	}
	res.ThiefAccEnd = best
	if res.TestAccEnd, err = evalKey(hyp, ds.TestX, ds.TestY); err != nil {
		return res, err
	}
	return res, nil
}

// TrojanConfig budgets the logic-locking neural-trojan attack (after Xu et
// al.): an insider holding a valid key searches for a perturbed key within
// a Hamming budget that selectively breaks one class while keeping overall
// accuracy — turning the lock itself into a trojan trigger.
type TrojanConfig struct {
	// TargetClass is the class the trojaned key should degrade.
	TargetClass int
	// MaxFlips is the Hamming budget on the provisioned key.
	MaxFlips int
	// CleanDropTol is the largest tolerated drop in off-target accuracy; a
	// candidate flip violating it is rejected (the trojan must stay
	// stealthy).
	CleanDropTol float64
	// MaxQueries caps evaluation queries.
	MaxQueries int
	// Seed randomizes the key-bit visit order.
	Seed uint64
}

func (c TrojanConfig) withDefaults() TrojanConfig {
	if c.MaxFlips <= 0 {
		c.MaxFlips = 16
	}
	if c.CleanDropTol <= 0 {
		c.CleanDropTol = 0.10
	}
	if c.MaxQueries <= 0 {
		c.MaxQueries = 256
	}
	return c
}

// TrojanResult summarizes a trojan-key search.
type TrojanResult struct {
	Scheme      string
	TargetClass int
	// Flips is the Hamming distance of the trojaned key from the true key;
	// Queries the evaluations spent.
	Flips, Queries int
	// Off-target ("clean") and target-class accuracy under the true key
	// and under the trojaned key.
	CleanAccStart, CleanAccEnd   float64
	TargetAccStart, TargetAccEnd float64
	// Success: target-class accuracy at most halved-from-start while clean
	// accuracy stayed within CleanDropTol.
	Success bool
}

// Trojan searches for a trojaned key near trueKey that collapses
// cfg.TargetClass while preserving the other classes, evaluating on the
// test split of ds. Per-neuron XOR locking is expected to admit such keys —
// each bit touches an attributable subset of neurons — while avalanche-type
// schemes (cipher, permutation) destroy the whole model on any flip and so
// resist the trojan.
func Trojan(scheme lockscheme.Scheme, published *core.Model, trueKey keys.Key, sched *schedule.Schedule, ds *dataset.Dataset, cfg TrojanConfig) (TrojanResult, error) {
	cfg = cfg.withDefaults()
	res := TrojanResult{Scheme: scheme.Name(), TargetClass: cfg.TargetClass}

	targetX, targetY, cleanX, cleanY := splitByClass(ds.TestX, ds.TestY, cfg.TargetClass)
	if len(targetY) == 0 || len(cleanY) == 0 {
		return res, fmt.Errorf("attack: class %d split leaves an empty side (%d target, %d clean)",
			cfg.TargetClass, len(targetY), len(cleanY))
	}

	eval := func(k keys.Key) (clean, target float64, err error) {
		res.Queries++
		m, err := evalUnlocked(scheme, published, k, sched)
		if err != nil {
			return 0, 0, err
		}
		return m.Accuracy(cleanX, cleanY, 64), m.Accuracy(targetX, targetY, 64), nil
	}

	cleanStart, targetStart, err := eval(trueKey)
	if err != nil {
		return res, err
	}
	res.CleanAccStart, res.TargetAccStart = cleanStart, targetStart
	res.CleanAccEnd, res.TargetAccEnd = cleanStart, targetStart

	hyp := trueKey
	bestTarget := targetStart
	r := rng.New(cfg.Seed)
	for res.Flips < cfg.MaxFlips && res.Queries < cfg.MaxQueries {
		order := r.Perm(keys.KeyBits)
		accepted := false
		for _, bit := range order {
			if res.Flips >= cfg.MaxFlips || res.Queries >= cfg.MaxQueries {
				break
			}
			cand := hyp.FlipBit(bit)
			clean, target, err := eval(cand)
			if err != nil {
				return res, err
			}
			if target < bestTarget && clean >= cleanStart-cfg.CleanDropTol {
				hyp, bestTarget = cand, target
				res.Flips = trueKey.HammingDistance(hyp)
				res.CleanAccEnd, res.TargetAccEnd = clean, target
				accepted = true
			}
		}
		if !accepted {
			break
		}
	}
	res.Success = res.TargetAccEnd <= 0.5*res.TargetAccStart &&
		res.CleanAccEnd >= res.CleanAccStart-cfg.CleanDropTol
	return res, nil
}

// splitByClass partitions (x, y) into target-class and off-target tensors.
func splitByClass(x *tensor.Tensor, y []int, class int) (tx *tensor.Tensor, ty []int, cx *tensor.Tensor, cy []int) {
	n := x.Shape[0]
	feat := x.Len() / n
	var tIdx, cIdx []int
	for i, label := range y {
		if label == class {
			tIdx = append(tIdx, i)
		} else {
			cIdx = append(cIdx, i)
		}
	}
	gather := func(idx []int) (*tensor.Tensor, []int) {
		shape := append([]int{len(idx)}, x.Shape[1:]...)
		out := tensor.New(shape...)
		labels := make([]int, len(idx))
		for j, i := range idx {
			copy(out.Data[j*feat:(j+1)*feat], x.Data[i*feat:(i+1)*feat])
			labels[j] = y[i]
		}
		return out, labels
	}
	tx, ty = gather(tIdx)
	cx, cy = gather(cIdx)
	return tx, ty, cx, cy
}
