package attack

import (
	"fmt"
	"math"
	"sort"

	"hpnn/internal/core"
	"hpnn/internal/dataset"
	"hpnn/internal/rng"
)

// Transformation attacks (§I): techniques pirates use to "cleverly modify
// model parameters without affecting the functionality" — positive
// scaling (ReLU networks are scale-equivariant), small additive noise and
// magnitude pruning. Against watermarking these defeat ownership checks;
// against HPNN the question is the opposite: can any cheap weight
// transformation recover usable accuracy from a stolen locked model? The
// lock is a sign structure, which none of these transformations touch, so
// the locked model stays collapsed — quantified by TransformSweep.

// Transform names a weight transformation.
type Transform string

// Supported transformations.
const (
	// TransformScale multiplies every weight of selected layers by a
	// positive constant (functionality-preserving on ReLU nets when
	// applied uniformly per layer pair).
	TransformScale Transform = "scale"
	// TransformNoise adds small Gaussian noise relative to each
	// parameter tensor's scale.
	TransformNoise Transform = "noise"
	// TransformPrune zeroes the smallest-magnitude fraction of each
	// parameter tensor.
	TransformPrune Transform = "prune"
)

// Transforms lists the supported transformations.
func Transforms() []Transform {
	return []Transform{TransformScale, TransformNoise, TransformPrune}
}

// TransformConfig parameterizes one transformation attack.
type TransformConfig struct {
	Kind Transform
	// Strength: scale factor for scale (e.g. 1.5), relative noise std
	// for noise (e.g. 0.05), pruned fraction for prune (e.g. 0.3).
	Strength float64
	Seed     uint64
}

// TransformResult reports accuracy after transforming stolen weights.
type TransformResult struct {
	Config TransformConfig
	// NoKeyAcc is the transformed stolen model on the baseline
	// architecture — the piracy scenario.
	NoKeyAcc float64
	// WithKeyAcc is the transformed model under the true key: how much
	// damage the transformation does to the *legitimate* function
	// (watermark-evasion transformations must keep this high to be
	// useful against watermark defenses; against HPNN they gain nothing
	// either way).
	WithKeyAcc float64
}

// ApplyTransform mutates a model's parameters in place.
func ApplyTransform(m *core.Model, cfg TransformConfig) error {
	r := rng.New(cfg.Seed)
	for _, p := range m.Net.Params() {
		data := p.Value.Data
		switch cfg.Kind {
		case TransformScale:
			if cfg.Strength <= 0 {
				return fmt.Errorf("attack: scale strength must be positive")
			}
			for i := range data {
				data[i] *= cfg.Strength
			}
		case TransformNoise:
			std := cfg.Strength * p.Value.MaxAbs()
			for i := range data {
				data[i] += r.NormScaled(0, std)
			}
		case TransformPrune:
			if cfg.Strength < 0 || cfg.Strength > 1 {
				return fmt.Errorf("attack: prune fraction %v out of [0,1]", cfg.Strength)
			}
			mags := make([]float64, len(data))
			for i, v := range data {
				mags[i] = math.Abs(v)
			}
			sort.Float64s(mags)
			cut := mags[int(float64(len(mags)-1)*cfg.Strength)]
			for i := range data {
				if math.Abs(data[i]) <= cut {
					data[i] = 0
				}
			}
		default:
			return fmt.Errorf("attack: unknown transform %q", cfg.Kind)
		}
	}
	return nil
}

// TransformSweep clones the victim, applies each transformation and
// evaluates both usage scenarios. The victim is untouched.
func TransformSweep(victim *core.Model, ds *dataset.Dataset, cfgs []TransformConfig) ([]TransformResult, error) {
	out := make([]TransformResult, 0, len(cfgs))
	for _, cfg := range cfgs {
		clone, err := core.NewModel(victim.Config)
		if err != nil {
			return nil, err
		}
		if err := victim.CloneWeightsTo(clone); err != nil {
			return nil, err
		}
		for i, l := range victim.Locks() {
			clone.Locks()[i].SetBits(l.Bits())
		}
		if err := ApplyTransform(clone, cfg); err != nil {
			return nil, err
		}
		res := TransformResult{Config: cfg}
		clone.EngageLocks()
		res.WithKeyAcc = clone.Accuracy(ds.TestX, ds.TestY, 64)
		clone.DisengageLocks()
		res.NoKeyAcc = clone.Accuracy(ds.TestX, ds.TestY, 64)
		out = append(out, res)
	}
	return out, nil
}
