// Package attack implements the model fine-tuning attacks of §IV-B/§IV-C:
// an adversary who has stolen a locked model's weights (white-box) loads
// them into the plain baseline architecture and retrains on a small thief
// dataset, hoping to recover the owner's accuracy.
//
// Two initializations are compared, exactly as in the paper's information-
// leakage study (Table I's last four columns and Fig. 7):
//
//   - HPNN fine-tuning: the baseline DNN is initialized with the stolen
//     obfuscated weights;
//   - Random fine-tuning: the baseline DNN is initialized with fresh random
//     weights (the stolen model is discarded).
//
// If the two attacks reach similar accuracy, the obfuscated model leaks no
// useful information beyond what the thief dataset itself provides.
package attack

import (
	"fmt"
	"os"

	"hpnn/internal/core"
	"hpnn/internal/dataset"
	"hpnn/internal/modelio"
	"hpnn/internal/train"
)

// Init selects the attacker's weight initialization.
type Init int

const (
	// InitStolen is "HPNN fine-tuning": start from the stolen obfuscated
	// weights.
	InitStolen Init = iota
	// InitRandom is "random fine-tuning": start from fresh random weights.
	InitRandom
)

// String implements fmt.Stringer.
func (i Init) String() string {
	if i == InitStolen {
		return "hpnn-finetune"
	}
	return "random-finetune"
}

// FineTuneConfig describes one fine-tuning attack.
type FineTuneConfig struct {
	// ThiefFrac is the fraction α of the original training set available
	// to the attacker (§IV-B1 uses 1-10 %).
	ThiefFrac float64
	// ThiefSeed selects which samples leaked.
	ThiefSeed uint64
	// Init selects stolen-weight or random initialization.
	Init Init
	// AttackerSeed seeds the attacker's random initialization (InitRandom).
	AttackerSeed uint64
	// Train is the attacker's training configuration. The paper's default
	// threat model reuses the owner's hyperparameters; Fig. 6 sweeps them.
	Train core.TrainConfig
	// CheckpointPath, when non-empty, writes a resumable checkpoint of the
	// attacker's fine-tuning run after every epoch, so long thief-fraction
	// × learning-rate sweeps survive a restart.
	CheckpointPath string
	// Resume continues from CheckpointPath if the file exists; the
	// restored run reproduces the uninterrupted one bitwise.
	Resume bool
}

// Result is the outcome of one fine-tuning attack.
type Result struct {
	Init         Init
	ThiefFrac    float64
	ThiefSamples int
	// PreAttackAcc is the stolen model's test accuracy on the baseline
	// architecture before any retraining (the locked/no-key accuracy for
	// InitStolen, chance for InitRandom).
	PreAttackAcc float64
	// TestAcc is the per-epoch test-accuracy trajectory (Figs. 5 and 6).
	TestAcc []float64
	// FinalAcc and BestAcc summarize the trajectory.
	FinalAcc float64
	BestAcc  float64
}

// FineTune runs a fine-tuning attack against victim using ds's thief
// subset, evaluating on ds's test split. The victim model is not modified.
// It returns the attack result and the attacker's retrained model.
func FineTune(victim *core.Model, ds *dataset.Dataset, cfg FineTuneConfig) (Result, *core.Model, error) {
	if cfg.ThiefFrac < 0 || cfg.ThiefFrac > 1 {
		return Result{}, nil, fmt.Errorf("attack: thief fraction %v out of [0,1]", cfg.ThiefFrac)
	}
	trainCfg := cfg.Train

	// Resume a previously checkpointed attack run if asked: the restored
	// attacker model (weights + disengaged-lock state) and trainer state
	// replace the fresh initialization below.
	var attacker *core.Model
	if cfg.CheckpointPath != "" && cfg.Resume {
		if _, err := os.Stat(cfg.CheckpointPath); err == nil {
			m, st, err := modelio.LoadCheckpointFile(cfg.CheckpointPath)
			if err != nil {
				return Result{}, nil, fmt.Errorf("attack: loading checkpoint: %w", err)
			}
			if m.Config.Arch != victim.Config.Arch {
				return Result{}, nil, fmt.Errorf("attack: checkpoint architecture %s does not match victim %s",
					m.Config.Arch, victim.Config.Arch)
			}
			attacker = m
			trainCfg.Resume = &st
		}
	}
	if attacker == nil {
		// The attacker knows the baseline architecture (white-box
		// assumption) but not the key: locks are disengaged on the
		// attacker's copy.
		attackerCfg := victim.Config
		attackerCfg.Seed = cfg.AttackerSeed
		m, err := core.NewModel(attackerCfg)
		if err != nil {
			return Result{}, nil, err
		}
		if cfg.Init == InitStolen {
			if err := victim.CloneWeightsTo(m); err != nil {
				return Result{}, nil, err
			}
		}
		m.DisengageLocks()
		attacker = m
	}

	res := Result{Init: cfg.Init, ThiefFrac: cfg.ThiefFrac}
	res.PreAttackAcc = attacker.Accuracy(ds.TestX, ds.TestY, 64)

	thiefX, thiefY := ds.ThiefSubset(cfg.ThiefFrac, cfg.ThiefSeed)
	res.ThiefSamples = len(thiefY)
	if res.ThiefSamples == 0 {
		// α = 0: no retraining possible; the attack is the bare stolen or
		// random model.
		res.FinalAcc = res.PreAttackAcc
		res.BestAcc = res.PreAttackAcc
		return res, attacker, nil
	}

	// Checkpoint every epoch boundary through the trainer's hook bus; a
	// failed write stops the run rather than silently losing restarts.
	var ckptErr error
	if cfg.CheckpointPath != "" {
		user := trainCfg.Hooks.OnEpoch
		trainCfg.Hooks.OnEpoch = func(info train.EpochInfo) bool {
			if err := modelio.SaveCheckpointFile(cfg.CheckpointPath, attacker, info.Snapshot()); err != nil {
				ckptErr = fmt.Errorf("attack: writing checkpoint: %w", err)
				return false
			}
			if user != nil {
				return user(info)
			}
			return true
		}
	}

	// The trainer reuses the attacker network's layer scratch across steps,
	// so the fine-tuning loop — like owner training — is allocation-free in
	// steady state; sweeps over α or learning rate pay only per-run setup.
	tr, err := core.TrainChecked(attacker, thiefX, thiefY, ds.TestX, ds.TestY, trainCfg)
	if err != nil {
		return Result{}, nil, err
	}
	if ckptErr != nil {
		return Result{}, nil, ckptErr
	}
	res.TestAcc = tr.TestAcc
	res.FinalAcc = tr.FinalTestAcc()
	res.BestAcc = tr.BestTestAcc()
	return res, attacker, nil
}

// SweepThiefFractions runs the α sweep of Fig. 5 / Fig. 7 for one victim:
// one fine-tuning attack per fraction, same initialization mode.
func SweepThiefFractions(victim *core.Model, ds *dataset.Dataset, fracs []float64, base FineTuneConfig) ([]Result, error) {
	out := make([]Result, 0, len(fracs))
	for i, f := range fracs {
		cfg := base
		cfg.ThiefFrac = f
		cfg.ThiefSeed = base.ThiefSeed + uint64(i)
		cfg.AttackerSeed = base.AttackerSeed + uint64(i)*101
		r, _, err := FineTune(victim, ds, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// SweepLearningRates runs the hyperparameter study of Fig. 6: the same
// attack at several learning rates, returning one trajectory per rate.
func SweepLearningRates(victim *core.Model, ds *dataset.Dataset, lrs []float64, base FineTuneConfig) ([]Result, error) {
	out := make([]Result, 0, len(lrs))
	for _, lr := range lrs {
		cfg := base
		cfg.Train.LR = lr
		r, _, err := FineTune(victim, ds, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Success reports whether the attack recovered the owner's accuracy to
// within margin — the paper's criterion for a successful model theft.
func (r Result) Success(ownerAcc, margin float64) bool {
	return r.BestAcc >= ownerAcc-margin
}

// LeakageGap quantifies the information-leakage comparison of §IV-C: the
// absolute accuracy difference between an HPNN-initialized and a
// random-initialized attack under the same budget. Small values mean the
// obfuscated weights leak nothing useful.
func LeakageGap(hpnnFT, randomFT Result) float64 {
	d := hpnnFT.FinalAcc - randomFT.FinalAcc
	if d < 0 {
		return -d
	}
	return d
}
