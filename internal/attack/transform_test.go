package attack

import (
	"testing"

	"hpnn/internal/core"
	"hpnn/internal/rng"
)

func TestTransformSweepShapes(t *testing.T) {
	f := getFixture(t)
	cfgs := []TransformConfig{
		{Kind: TransformScale, Strength: 1.5, Seed: 1},
		{Kind: TransformNoise, Strength: 0.02, Seed: 2},
		{Kind: TransformPrune, Strength: 0.2, Seed: 3},
	}
	res, err := TransformSweep(f.victim, f.ds, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		// No transformation unlocks the model: the no-key accuracy must
		// stay far below the owner's.
		if r.NoKeyAcc > f.ownerAcc-0.25 {
			t.Fatalf("%s (%.2f): transformed no-key accuracy %.3f approaches owner %.3f",
				r.Config.Kind, r.Config.Strength, r.NoKeyAcc, f.ownerAcc)
		}
	}
	// Mild transformations barely hurt the legitimate (with-key) function.
	if res[0].WithKeyAcc < f.ownerAcc-0.1 {
		t.Fatalf("uniform scaling should preserve the keyed function: %.3f vs %.3f",
			res[0].WithKeyAcc, f.ownerAcc)
	}
}

func TestTransformVictimUntouched(t *testing.T) {
	f := getFixture(t)
	before := f.victim.Accuracy(f.ds.TestX, f.ds.TestY, 64)
	_, err := TransformSweep(f.victim, f.ds, []TransformConfig{
		{Kind: TransformNoise, Strength: 0.5, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if after := f.victim.Accuracy(f.ds.TestX, f.ds.TestY, 64); after != before {
		t.Fatal("transform sweep mutated the victim")
	}
}

func TestApplyTransformScaleExact(t *testing.T) {
	m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 1})
	p0 := m.Net.Params()[0]
	p0.Value.Fill(2)
	if err := ApplyTransform(m, TransformConfig{Kind: TransformScale, Strength: 0.5}); err != nil {
		t.Fatal(err)
	}
	if p0.Value.Data[0] != 1 {
		t.Fatalf("scale 0.5 gave %v", p0.Value.Data[0])
	}
}

func TestApplyTransformPruneZeroesSmallest(t *testing.T) {
	m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 2})
	for _, p := range m.Net.Params() {
		p.Value.FillNorm(rng.New(77), 0, 1)
	}
	if err := ApplyTransform(m, TransformConfig{Kind: TransformPrune, Strength: 0.5}); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Net.Params() {
		zeros := 0
		for _, v := range p.Value.Data {
			if v == 0 {
				zeros++
			}
		}
		if frac := float64(zeros) / float64(p.Value.Len()); frac < 0.4 {
			t.Fatalf("prune 0.5 zeroed only %.2f of %s", frac, p.Name)
		}
	}
}

func TestApplyTransformValidation(t *testing.T) {
	m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 3})
	if err := ApplyTransform(m, TransformConfig{Kind: TransformScale, Strength: 0}); err == nil {
		t.Fatal("zero scale accepted")
	}
	if err := ApplyTransform(m, TransformConfig{Kind: TransformPrune, Strength: 2}); err == nil {
		t.Fatal("prune fraction > 1 accepted")
	}
	if err := ApplyTransform(m, TransformConfig{Kind: "fold"}); err == nil {
		t.Fatal("unknown transform accepted")
	}
}

func TestTransformsList(t *testing.T) {
	if len(Transforms()) != 3 {
		t.Fatal("expected 3 transforms")
	}
}
