package attack

import (
	"fmt"

	"hpnn/internal/core"
	"hpnn/internal/dataset"
	"hpnn/internal/rng"
)

// Key-recovery attack (beyond the paper's evaluation; DESIGN.md ablation):
// instead of retraining, the attacker tries to recover the lock bits
// themselves. Each locked neuron's bit flips the sign of its
// pre-activation, so an attacker with thief data can hill-climb: flip one
// hypothesized bit at a time and keep the flip when thief-set accuracy
// improves. This is the analogue of sensitization attacks on logic
// locking, and quantifies how much security rests on the key length and
// schedule privacy rather than on retraining cost alone.

// KeyRecoveryConfig budgets a greedy bit-recovery attack.
type KeyRecoveryConfig struct {
	// ThiefFrac/ThiefSeed select the attacker's labelled data.
	ThiefFrac float64
	ThiefSeed uint64
	// MaxQueries caps the number of thief-set evaluations (each bit trial
	// costs one forward pass over the thief set).
	MaxQueries int
	// Seed randomizes the neuron visit order.
	Seed uint64
}

// KeyRecoveryResult summarizes the attack.
type KeyRecoveryResult struct {
	ThiefSamples int
	Queries      int
	BitsTried    int
	BitsFlipped  int
	// Thief-set accuracy before and after hill climbing.
	ThiefAccStart, ThiefAccEnd float64
	// Held-out test accuracy before and after (what the attacker gains).
	TestAccStart, TestAccEnd float64
}

// RecoverLocks runs the greedy bit-recovery attack against victim using
// its dataset's thief subset, and evaluates the attacker's gain on the
// test split. The victim is not modified.
func RecoverLocks(victim *core.Model, ds *dataset.Dataset, cfg KeyRecoveryConfig) (KeyRecoveryResult, error) {
	var res KeyRecoveryResult
	if cfg.ThiefFrac <= 0 || cfg.ThiefFrac > 1 {
		return res, fmt.Errorf("attack: thief fraction %v out of (0,1]", cfg.ThiefFrac)
	}
	if cfg.MaxQueries <= 0 {
		cfg.MaxQueries = 1000
	}

	// The attacker's copy: stolen weights on the baseline architecture,
	// with a lock-bit hypothesis it is free to mutate (all-zero start).
	attackerCfg := victim.Config
	attacker, err := core.NewModel(attackerCfg)
	if err != nil {
		return res, err
	}
	if err := victim.CloneWeightsTo(attacker); err != nil {
		return res, err
	}
	for _, l := range attacker.Locks() {
		l.SetBits(make([]byte, l.Neurons()))
		l.Engage()
	}

	thiefX, thiefY := ds.ThiefSubset(cfg.ThiefFrac, cfg.ThiefSeed)
	res.ThiefSamples = len(thiefY)
	if res.ThiefSamples == 0 {
		return res, fmt.Errorf("attack: empty thief set")
	}

	// Each bit trial costs one thief-set evaluation. Accuracy runs through
	// the attacker model's cached eval scratch (batch views, layer buffers,
	// prediction buffer), so the thousands of queries of a budgeted attack
	// allocate nothing after the first.
	evalThief := func() float64 {
		res.Queries++
		return attacker.Accuracy(thiefX, thiefY, 64)
	}

	res.TestAccStart = attacker.Accuracy(ds.TestX, ds.TestY, 64)
	best := evalThief()
	res.ThiefAccStart = best

	// Visit neurons in a random order across all locks, flipping greedily
	// until the query budget runs out.
	locks := attacker.Locks()
	type site struct{ lock, bit int }
	var sites []site
	for li, l := range locks {
		for j := 0; j < l.Neurons(); j++ {
			sites = append(sites, site{li, j})
		}
	}
	r := rng.New(cfg.Seed)
	order := r.Perm(len(sites))
	for _, si := range order {
		if res.Queries >= cfg.MaxQueries {
			break
		}
		s := sites[si]
		l := locks[s.lock]
		res.BitsTried++
		l.Factors[s.bit] = -l.Factors[s.bit]
		if acc := evalThief(); acc > best {
			best = acc
			res.BitsFlipped++
		} else {
			l.Factors[s.bit] = -l.Factors[s.bit] // revert
		}
	}
	res.ThiefAccEnd = best
	res.TestAccEnd = attacker.Accuracy(ds.TestX, ds.TestY, 64)
	return res, nil
}
