package attack

import (
	"testing"

	"hpnn/internal/core"
	"hpnn/internal/dataset"
	"hpnn/internal/keys"
	"hpnn/internal/lockscheme"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
)

// weightFixture trains a small plaintext MLP once for the weight-space
// scheme attacks (cipher/permutation schemes train in plaintext).
type weightFixture struct {
	plain    *core.Model
	ds       *dataset.Dataset
	key      keys.Key
	sched    *schedule.Schedule
	ownerAcc float64
}

var sharedWeight *weightFixture

func getWeightFixture(t *testing.T) *weightFixture {
	t.Helper()
	if sharedWeight != nil {
		return sharedWeight
	}
	ds, err := dataset.Generate(dataset.Config{
		Name: "fashion", TrainN: 400, TestN: 200, H: 8, W: 8, Seed: 70,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 71})
	res := core.Train(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, core.TrainConfig{
		Epochs: 8, BatchSize: 32, LR: 0.05, Momentum: 0.9, Seed: 72,
	})
	sharedWeight = &weightFixture{
		plain: m, ds: ds,
		key:      keys.Generate(rng.New(73)),
		sched:    schedule.New(keys.KeyBits, 74),
		ownerAcc: res.FinalTestAcc(),
	}
	if sharedWeight.ownerAcc < 0.6 {
		t.Fatalf("plaintext victim failed to train: %.3f", sharedWeight.ownerAcc)
	}
	return sharedWeight
}

// publishUnder publishes a clone of the fixture's plaintext model under the
// named weight-space scheme.
func (f *weightFixture) publishUnder(t *testing.T, name string) (lockscheme.Scheme, *core.Model) {
	t.Helper()
	scheme, err := lockscheme.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := f.plain.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := scheme.Publish(pub, keys.NewDevice("owner", f.key), f.sched); err != nil {
		t.Fatal(err)
	}
	return scheme, pub
}

// Greedy device-key recovery cannot climb an avalanche cipher: every
// single-bit hypothesis change rekeys the entire stream, so the attack ends
// as far from the owner's accuracy as it began.
func TestRecoverKeyFailsAgainstCipherSchemes(t *testing.T) {
	f := getWeightFixture(t)
	for _, name := range []string{"deeplock", "pufshuffle"} {
		scheme, pub := f.publishUnder(t, name)
		res, err := RecoverKey(scheme, pub, f.sched, f.ds, SchemeKeyRecoveryConfig{
			ThiefFrac: 0.2, ThiefSeed: 1, MaxQueries: 80, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.TestAccEnd > f.ownerAcc-0.2 {
			t.Errorf("%s: key recovery reached %.3f (owner %.3f) — avalanche scheme leaked",
				name, res.TestAccEnd, f.ownerAcc)
		}
		if res.ThiefAccEnd < res.ThiefAccStart {
			t.Errorf("%s: greedy climb regressed %.3f -> %.3f", name, res.ThiefAccStart, res.ThiefAccEnd)
		}
	}
}

// The per-neuron XOR scheme gives every key bit a local, attributable
// effect: greedy recovery must make strictly more progress against it than
// against the avalanche schemes under the same budget.
func TestRecoverKeyClimbsHPNNButNotCipher(t *testing.T) {
	wf := getWeightFixture(t)
	hf := getFixture(t)

	hpnnRes, err := RecoverKey(lockscheme.Default(), hf.victim, schedule.New(keys.KeyBits, 53), hf.ds,
		SchemeKeyRecoveryConfig{ThiefFrac: 0.2, ThiefSeed: 1, MaxQueries: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	scheme, pub := wf.publishUnder(t, "deeplock")
	dlRes, err := RecoverKey(scheme, pub, wf.sched, wf.ds,
		SchemeKeyRecoveryConfig{ThiefFrac: 0.2, ThiefSeed: 1, MaxQueries: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hpnnGain := hpnnRes.ThiefAccEnd - hpnnRes.ThiefAccStart
	dlGain := dlRes.ThiefAccEnd - dlRes.ThiefAccStart
	if hpnnRes.BitsFlipped == 0 {
		t.Error("hpnn-xor: greedy recovery accepted no flips — per-bit locality lost")
	}
	if hpnnGain < dlGain {
		t.Errorf("hpnn-xor gain %.3f below deeplock gain %.3f — expected XOR locality to leak more", hpnnGain, dlGain)
	}
}

// Avalanche schemes resist the logic-locking trojan: no single key-bit flip
// can degrade one class while keeping the rest, because every flip destroys
// the whole model and violates the stealth constraint.
func TestTrojanRejectedByAvalancheSchemes(t *testing.T) {
	f := getWeightFixture(t)
	for _, name := range []string{"deeplock", "pufshuffle"} {
		scheme, pub := f.publishUnder(t, name)
		res, err := Trojan(scheme, pub, f.key, f.sched, f.ds, TrojanConfig{
			TargetClass: 0, MaxFlips: 8, CleanDropTol: 0.10, MaxQueries: 64, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Flips != 0 {
			t.Errorf("%s: trojan accepted %d stealthy flips, want 0", name, res.Flips)
		}
		if res.Success {
			t.Errorf("%s: trojan reported success against an avalanche scheme", name)
		}
	}
}

// Against the per-neuron XOR scheme the trojan search at least finds
// stealthy flips that bias the target class downward — the scenario Xu et
// al. warn about.
func TestTrojanFindsStealthyFlipsOnHPNN(t *testing.T) {
	f := getFixture(t)
	res, err := Trojan(lockscheme.Default(), f.victim, keys.Generate(rng.New(52)),
		schedule.New(keys.KeyBits, 53), f.ds, TrojanConfig{
			TargetClass: 0, MaxFlips: 12, CleanDropTol: 0.10, MaxQueries: 120, Seed: 3,
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips == 0 {
		t.Error("hpnn-xor: trojan found no stealthy flips — expected per-bit locality to admit some")
	}
	if res.TargetAccEnd > res.TargetAccStart {
		t.Errorf("trojan raised target accuracy %.3f -> %.3f", res.TargetAccStart, res.TargetAccEnd)
	}
	if res.CleanAccEnd < res.CleanAccStart-0.10 {
		t.Errorf("trojan violated stealth constraint: clean %.3f -> %.3f", res.CleanAccStart, res.CleanAccEnd)
	}
}
