package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps kernel parallelism. It defaults to GOMAXPROCS and can be
// lowered in tests for determinism probing (results are deterministic either
// way: work is partitioned, never reduced concurrently into shared state).
// It is atomic because Parallel reads it from arbitrary goroutines while
// SetMaxWorkers may be called concurrently.
var maxWorkers atomic.Int32

func init() { maxWorkers.Store(int32(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers overrides the kernel worker count; n < 1 resets to
// GOMAXPROCS. It returns the previous value.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(maxWorkers.Swap(int32(n)))
}

// MaxWorkers returns the current kernel worker cap.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// KernelArgs carries operand views for pooled kernels. Kernels that run on
// the worker pool receive their operands through this struct instead of a
// capturing closure, so dispatching a kernel performs no heap allocation:
// the pool copies the struct by value into its own stable storage before
// waking workers.
//
// Off and Flag exist for the blocked GEMM engine: Off is the current
// kc-block's offset into the shared dimension (the packing routines read
// source columns/rows starting there) and Flag marks the first block,
// whose tiles overwrite the destination instead of accumulating.
type KernelArgs struct {
	Dst, A, B []float64
	M, N, K   int
	Off       int
	Flag      bool
}

// workerPool runs parallel regions on a set of persistent goroutines.
//
// One region runs at a time (the mutex serializes them); a caller that finds
// the pool busy — including a nested Parallel from inside a kernel — simply
// runs its indices inline, which is always correct because regions never
// require true concurrency. The calling goroutine participates as a worker,
// so a pool with W background workers executes on W+1 goroutines.
//
// Dispatch is allocation-free in steady state: workers are woken by zero-size
// tokens on per-worker buffered channels, chunks are claimed with an atomic
// cursor, and task state lives in pool fields written under the mutex before
// the wake tokens are sent (the channel send/receive pair provides the
// happens-before edge; the WaitGroup provides the reverse edge at the end of
// the region, so resetting the fields afterwards is race-free).
type workerPool struct {
	mu   sync.Mutex
	wake []chan struct{}
	done sync.WaitGroup

	// Region state. Exactly one of fn / (cfn, ctx) / (kfn, args) is set.
	next  atomic.Int64
	n     int
	chunk int
	fn    func(int)
	cfn   func(any, int)
	ctx   any
	kfn   func(*KernelArgs, int)
	args  KernelArgs
}

var pool workerPool

// kargsScratch recycles KernelArgs copies for run's serial fallback. Passing
// the caller's pointer straight to kfn would leak it, forcing every
// &KernelArgs{...} call-site literal onto the heap even when the parallel
// path is taken; copying into pooled scratch keeps dispatch allocation-free.
var kargsScratch = sync.Pool{New: func() any { return new(KernelArgs) }}

// ensureWorkers grows the background worker set to at least k goroutines.
// Workers idle on their wake channel and are never torn down; lowering
// SetMaxWorkers simply leaves the surplus asleep.
func (p *workerPool) ensureWorkers(k int) {
	for len(p.wake) < k {
		ch := make(chan struct{}, 1) //hpnn:allow(noalloc) one-time worker spin-up; workers persist for the process lifetime
		p.wake = append(p.wake, ch)  //hpnn:allow(noalloc) one-time worker registry growth
		go p.workerLoop(ch)
	}
}

func (p *workerPool) workerLoop(ch chan struct{}) {
	for range ch {
		p.runChunks()
		p.done.Done()
	}
}

// runChunks claims and executes chunks until the region's index space is
// exhausted. Each index is processed exactly once regardless of which
// executor claims it, so results are deterministic.
func (p *workerPool) runChunks() {
	n, chunk := p.n, p.chunk
	for {
		lo := int(p.next.Add(int64(chunk))) - chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		switch {
		case p.fn != nil:
			for i := lo; i < hi; i++ {
				p.fn(i)
			}
		case p.cfn != nil:
			for i := lo; i < hi; i++ {
				p.cfn(p.ctx, i)
			}
		default:
			for i := lo; i < hi; i++ {
				p.kfn(&p.args, i)
			}
		}
	}
}

// run executes one parallel region. Exactly one of fn / (cfn, ctx) /
// (kfn, args) must be provided; args is copied into pool storage so the
// caller may pass a stack value.
func (p *workerPool) run(n int, fn func(int), cfn func(any, int), ctx any, kfn func(*KernelArgs, int), args *KernelArgs) {
	workers := int(maxWorkers.Load())
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 || !p.mu.TryLock() {
		// Serial fallback: tiny regions, single-worker mode, and nested or
		// concurrent regions (the pool is busy) all run inline.
		switch {
		case fn != nil:
			for i := 0; i < n; i++ {
				fn(i)
			}
		case cfn != nil:
			for i := 0; i < n; i++ {
				cfn(ctx, i)
			}
		default:
			a := kargsScratch.Get().(*KernelArgs)
			*a = *args
			for i := 0; i < n; i++ {
				kfn(a, i)
			}
			*a = KernelArgs{}
			kargsScratch.Put(a)
		}
		return
	}
	defer p.mu.Unlock()
	bg := workers - 1
	p.ensureWorkers(bg)
	p.n = n
	p.chunk = (n + workers - 1) / workers
	p.next.Store(0)
	p.fn, p.cfn, p.ctx, p.kfn = fn, cfn, ctx, kfn
	if kfn != nil {
		p.args = *args
	}
	p.done.Add(bg)
	for w := 0; w < bg; w++ {
		p.wake[w] <- struct{}{}
	}
	p.runChunks()
	p.done.Wait()
	p.fn, p.cfn, p.ctx, p.kfn = nil, nil, nil, nil
	p.args = KernelArgs{}
}

// Parallel runs fn(i) for i in [0, n) across up to MaxWorkers goroutines
// of the persistent worker pool. Each index is processed exactly once.
// Small n runs inline to avoid dispatch overhead.
//
// The closure passed here typically heap-allocates at the call site; hot
// paths that must stay allocation-free should use ParallelCtx or
// ParallelKernel instead.
func Parallel(n int, fn func(i int)) {
	pool.run(n, fn, nil, nil, nil, nil)
}

// ParallelCtx runs fn(ctx, i) for i in [0, n) on the worker pool. When fn
// is a top-level function and ctx is a pointer (e.g. a layer's scratch
// struct), dispatch performs zero heap allocations: a static func value is
// free and boxing a pointer into an interface does not allocate.
func ParallelCtx(n int, ctx any, fn func(ctx any, i int)) {
	pool.run(n, nil, fn, ctx, nil, nil)
}

// ParallelKernel runs fn(&args, i) for i in [0, n) on the worker pool,
// copying args by value into pool-owned storage. It is the allocation-free
// dispatch used by the tensor kernels themselves.
func ParallelKernel(n int, args *KernelArgs, fn func(*KernelArgs, int)) {
	pool.run(n, nil, nil, nil, fn, args)
}
