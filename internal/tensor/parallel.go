package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers caps kernel parallelism. It defaults to GOMAXPROCS and can be
// lowered in tests for determinism probing (results are deterministic either
// way: work is partitioned, never reduced concurrently into shared state).
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers overrides the kernel worker count; n < 1 resets to
// GOMAXPROCS. It returns the previous value.
func SetMaxWorkers(n int) int {
	prev := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return prev
}

// Parallel runs fn(i) for i in [0, n) across up to maxWorkers goroutines.
// Each index is processed exactly once. Small n runs inline to avoid
// goroutine overhead.
func Parallel(n int, fn func(i int)) {
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
