package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window.
type ConvGeom struct {
	InC, InH, InW int // input channels / height / width
	KH, KW        int // kernel size
	Stride        int
	Pad           int // symmetric zero padding
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate checks that the geometry yields a non-empty output.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 {
		return fmt.Errorf("tensor: invalid input dims %dx%dx%d", g.InC, g.InH, g.InW)
	}
	if g.KH <= 0 || g.KW <= 0 || g.Stride <= 0 || g.Pad < 0 {
		return fmt.Errorf("tensor: invalid kernel %dx%d stride %d pad %d", g.KH, g.KW, g.Stride, g.Pad)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: empty conv output for geom %+v", g)
	}
	return nil
}

// Im2Col lowers a single [C,H,W] image to the column matrix used by
// GEMM-based convolution. Result shape: [C*KH*KW, OutH*OutW]; column p
// holds the receptive field of output pixel p, zero-filled where the
// window overlaps padding.
func Im2Col(img *Tensor, g ConvGeom) *Tensor {
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	cols := outH * outW
	col := New(rows, cols)
	Im2ColInto(col, img, g)
	return col
}

// Im2ColInto is Im2Col writing into a preallocated destination.
func Im2ColInto(col, img *Tensor, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	src := img.Data
	dst := col.Data
	r := 0
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for ky := 0; ky < g.KH; ky++ {
			for kx := 0; kx < g.KW; kx++ {
				rowBase := r * cols
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride + ky - g.Pad
					outBase := rowBase + oy*outW
					if iy < 0 || iy >= g.InH {
						for ox := 0; ox < outW; ox++ {
							dst[outBase+ox] = 0
						}
						continue
					}
					inBase := chanBase + iy*g.InW
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							dst[outBase+ox] = 0
						} else {
							dst[outBase+ox] = src[inBase+ix]
						}
					}
				}
				r++
			}
		}
	}
}

// Col2Im scatters a column matrix (the gradient w.r.t. an Im2Col result)
// back into image space, accumulating overlapping contributions. It is the
// exact adjoint of Im2Col.
func Col2Im(col *Tensor, g ConvGeom) *Tensor {
	img := New(g.InC, g.InH, g.InW)
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	src := col.Data
	dst := img.Data
	r := 0
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for ky := 0; ky < g.KH; ky++ {
			for kx := 0; kx < g.KW; kx++ {
				rowBase := r * cols
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					inBase := chanBase + iy*g.InW
					outBase := rowBase + oy*outW
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						dst[inBase+ix] += src[outBase+ox]
					}
				}
				r++
			}
		}
	}
	return img
}

// ConvDirect computes a 2-D convolution of a [C,H,W] image with kernels
// [outC, C, KH, KW] by direct summation. It is O(outC·C·KH·KW·outH·outW)
// and exists as the reference implementation that the GEMM path is tested
// against.
func ConvDirect(img, kernels *Tensor, g ConvGeom) *Tensor {
	outC := kernels.Shape[0]
	outH, outW := g.OutH(), g.OutW()
	out := New(outC, outH, outW)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				s := 0.0
				for c := 0; c < g.InC; c++ {
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.Stride + ky - g.Pad
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.Stride + kx - g.Pad
							if ix < 0 || ix >= g.InW {
								continue
							}
							s += img.At(c, iy, ix) * kernels.At(oc, c, ky, kx)
						}
					}
				}
				out.Set(s, oc, oy, ox)
			}
		}
	}
	return out
}
