package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window.
type ConvGeom struct {
	InC, InH, InW int // input channels / height / width
	KH, KW        int // kernel size
	Stride        int
	Pad           int // symmetric zero padding
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// InLen returns the number of elements of one input image (C·H·W).
func (g ConvGeom) InLen() int { return g.InC * g.InH * g.InW }

// ColRows returns the row count of the im2col matrix (C·KH·KW).
func (g ConvGeom) ColRows() int { return g.InC * g.KH * g.KW }

// Validate checks that the geometry yields a non-empty output.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 {
		return fmt.Errorf("tensor: invalid input dims %dx%dx%d", g.InC, g.InH, g.InW)
	}
	if g.KH <= 0 || g.KW <= 0 || g.Stride <= 0 || g.Pad < 0 {
		return fmt.Errorf("tensor: invalid kernel %dx%d stride %d pad %d", g.KH, g.KW, g.Stride, g.Pad)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: empty conv output for geom %+v", g)
	}
	return nil
}

// Im2Col lowers a single [C,H,W] image to the column matrix used by
// GEMM-based convolution. Result shape: [C*KH*KW, OutH*OutW]; column p
// holds the receptive field of output pixel p, zero-filled where the
// window overlaps padding.
func Im2Col(img *Tensor, g ConvGeom) *Tensor {
	col := New(g.ColRows(), g.OutH()*g.OutW())
	Im2ColInto(col, img, g)
	return col
}

// Im2ColInto is Im2Col writing into a preallocated destination.
func Im2ColInto(col, img *Tensor, g ConvGeom) {
	Im2ColSlice(col.Data, img.Data, g)
}

// Im2ColSlice is the raw-slice core of Im2Col, for callers that window
// per-sample regions out of a batch buffer without allocating tensor
// headers. dst must hold ColRows()·OutH()·OutW() values, src InLen().
func Im2ColSlice(dst, src []float64, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	r := 0
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for ky := 0; ky < g.KH; ky++ {
			for kx := 0; kx < g.KW; kx++ {
				rowBase := r * cols
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride + ky - g.Pad
					outBase := rowBase + oy*outW
					if iy < 0 || iy >= g.InH {
						for ox := 0; ox < outW; ox++ {
							dst[outBase+ox] = 0
						}
						continue
					}
					inBase := chanBase + iy*g.InW
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							dst[outBase+ox] = 0
						} else {
							dst[outBase+ox] = src[inBase+ix]
						}
					}
				}
				r++
			}
		}
	}
}

// Im2ColInt8Slice is Im2ColSlice over already-quantized int8 data: it
// gathers a [ColRows, OutH·OutW] column matrix of int8 codes from a
// quantized input image, zero-filling padding. Gathering bytes instead of
// float64 words is what lets the batched int8 tier quantize the image once
// and lower it cheaply — valid whenever the quantization scale of the image
// equals that of the column matrix (stride-1 geometries; see the int8 tier
// in internal/tpu).
//
//hpnn:noalloc
func Im2ColInt8Slice(dst, src []int8, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	r := 0
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for ky := 0; ky < g.KH; ky++ {
			for kx := 0; kx < g.KW; kx++ {
				rowBase := r * cols
				// At stride 1 the gathered row ix = ox + kx − Pad is
				// contiguous in ox, so each output row is two zero-filled
				// edges around one memmove instead of a per-element gather.
				lo, hi := 0, outW
				if g.Stride == 1 {
					if d := g.Pad - kx; d > 0 {
						lo = d
					}
					if d := g.InW + g.Pad - kx; d < outW {
						hi = d
					}
					if hi < lo {
						hi = lo
					}
				}
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride + ky - g.Pad
					outBase := rowBase + oy*outW
					if iy < 0 || iy >= g.InH {
						row := dst[outBase : outBase+outW]
						for ox := range row {
							row[ox] = 0
						}
						continue
					}
					inBase := chanBase + iy*g.InW
					if g.Stride == 1 {
						for ox := 0; ox < lo; ox++ {
							dst[outBase+ox] = 0
						}
						copy(dst[outBase+lo:outBase+hi], src[inBase+kx-g.Pad+lo:])
						for ox := hi; ox < outW; ox++ {
							dst[outBase+ox] = 0
						}
						continue
					}
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							dst[outBase+ox] = 0
						} else {
							dst[outBase+ox] = src[inBase+ix]
						}
					}
				}
				r++
			}
		}
	}
}

// Col2Im scatters a column matrix (the gradient w.r.t. an Im2Col result)
// back into image space, accumulating overlapping contributions. It is the
// exact adjoint of Im2Col.
func Col2Im(col *Tensor, g ConvGeom) *Tensor {
	img := New(g.InC, g.InH, g.InW)
	Col2ImInto(img, col, g)
	return img
}

// Col2ImInto is Col2Im writing into a preallocated destination, which is
// zeroed before the scatter.
func Col2ImInto(img, col *Tensor, g ConvGeom) {
	Col2ImSlice(img.Data, col.Data, g)
}

// Col2ImSlice is the raw-slice core of Col2Im. dst (length InLen()) is
// zeroed, then overlapping receptive-field contributions from src are
// accumulated into it.
func Col2ImSlice(dst, src []float64, g ConvGeom) {
	for i := range dst {
		dst[i] = 0
	}
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	r := 0
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for ky := 0; ky < g.KH; ky++ {
			for kx := 0; kx < g.KW; kx++ {
				rowBase := r * cols
				for oy := 0; oy < outH; oy++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					inBase := chanBase + iy*g.InW
					outBase := rowBase + oy*outW
					for ox := 0; ox < outW; ox++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						dst[inBase+ix] += src[outBase+ox]
					}
				}
				r++
			}
		}
	}
}

// ConvDirect computes a 2-D convolution of a [C,H,W] image with kernels
// [outC, C, KH, KW] by direct summation. It is O(outC·C·KH·KW·outH·outW)
// and exists as the reference implementation that the GEMM path is tested
// against.
func ConvDirect(img, kernels *Tensor, g ConvGeom) *Tensor {
	out := New(kernels.Shape[0], g.OutH(), g.OutW())
	ConvDirectInto(out, img, kernels, g)
	return out
}

// ConvDirectInto is ConvDirect writing into a preallocated destination of
// shape [outC, OutH, OutW].
func ConvDirectInto(out, img, kernels *Tensor, g ConvGeom) {
	outC := kernels.Shape[0]
	outH, outW := g.OutH(), g.OutW()
	if len(out.Data) != outC*outH*outW {
		panic("tensor: ConvDirectInto destination size mismatch")
	}
	// Flat indexing instead of At(): the variadic index slices would
	// allocate in the innermost loop.
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				s := 0.0
				for c := 0; c < g.InC; c++ {
					imgBase := c * g.InH * g.InW
					kernBase := (oc*g.InC + c) * g.KH * g.KW
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.Stride + ky - g.Pad
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.Stride + kx - g.Pad
							if ix < 0 || ix >= g.InW {
								continue
							}
							s += img.Data[imgBase+iy*g.InW+ix] * kernels.Data[kernBase+ky*g.KW+kx]
						}
					}
				}
				out.Data[(oc*outH+oy)*outW+ox] = s
			}
		}
	}
}
