package tensor

// Gradient-reduction kernels for the data-parallel trainer: elementwise
// accumulation over large flat vectors. AddTo is the single merge primitive
// of the replica tree reduction — every internal node of the fixed-shape
// binary tree is one AddTo(left, right), so the summed gradient is a pure
// function of the leaf partials and the tree shape, independent of how many
// goroutines execute the leaves.

// addToChunk is the fixed dispatch granularity. It is a constant — NOT a
// function of the worker count — so the chunk decomposition (and therefore
// the set of disjoint dst ranges) is identical for any MaxWorkers setting.
// Each element is read and written exactly once, so the result is bitwise
// deterministic regardless of which worker executes which chunk.
const addToChunk = 8192

// AddTo accumulates src into dst elementwise: dst[i] += src[i]. Large
// vectors fan out on the worker pool over fixed-size disjoint chunks.
//
//hpnn:noalloc
func AddTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: AddTo length mismatch")
	}
	n := len(dst)
	if n <= addToChunk {
		addToSerial(dst, src)
		return
	}
	chunks := (n + addToChunk - 1) / addToChunk
	args := KernelArgs{Dst: dst, A: src, N: n}
	ParallelKernel(chunks, &args, addToWorker)
}

// addToWorker accumulates chunk i's disjoint range.
func addToWorker(a *KernelArgs, i int) {
	lo := i * addToChunk
	hi := lo + addToChunk
	if hi > a.N {
		hi = a.N
	}
	addToSerial(a.Dst[lo:hi], a.A[lo:hi])
}

//hpnn:noalloc
func addToSerial(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}
