package tensor

// gemmMicroFMA is the AVX2+FMA micro-kernel in gemm_amd64.s: it computes
// the full padded gemmMR×gemmNR accumulator tile over kc packed panel
// columns. Only called when gemmCPUSupportsFMA reported support.
//
//go:noescape
func gemmMicroFMA(ap, bp *float64, kc int, acc *[gemmMR * gemmNR]float64)

// gemmCPUSupportsFMA reports whether the CPU and OS support the AVX2+FMA
// micro-kernel (CPUID feature bits plus XGETBV-visible YMM state).
func gemmCPUSupportsFMA() bool
