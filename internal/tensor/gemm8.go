package tensor

import "sync"

// Packed int8×int8→int32 GEMM: the arithmetic core of the accelerator's
// batched fast path (internal/tpu). It reuses the float engine's design
// (gemm.go) — pack both operands into fixed-width lane panels, then run a
// register-tiled micro-kernel over the output tile grid — specialized to
// the integer datapath:
//
//   - Both operands pack into 4-wide lane panels [panel][k][4]int8 with the
//     shared dimension contiguous, so one micro-kernel layout serves both
//     roles: lanes taken from rows of a row-major [R, K] matrix
//     (PackInt8RowsInto — weights, batched activations) or from columns of
//     a row-major [K, P] matrix (PackInt8ColsInto — im2col matrices).
//     Edge lanes are zero-filled; zero products contribute zero, so padding
//     never changes a result.
//   - The micro-kernel holds a 4×4 int32 accumulator tile and streams both
//     panels sequentially — branch-free, bounds-check-hoisted, and laid out
//     so each step is 4+4 sign-extending loads feeding 16 independent
//     multiply-adds (the shape a vectorizing compiler or a future VPMADDWD
//     kernel wants).
//   - int32 addition is exact and wraps identically in any association, so
//     unlike the float engine there is no rounding-order hazard: results
//     are bitwise-identical across tile shapes, worker counts and runs by
//     construction. The simulator's key-conditioned accumulator chain
//     (internal/tpu) computes in the same Z/2^32 ring, which is what makes
//     the fast path provably equal to the gate-level golden reference.
//   - There is no kc blocking: the models' shared dimensions (≤ a few
//     hundred) keep one A panel and one B panel L1-resident, and int8
//     panels are 8× smaller than the float engine's.
//
// Allocation follows the engine discipline: callers own their packed-panel
// buffers (grow-once, reuse-forever), and the per-call dispatch context
// comes from a mutex-guarded freelist, so a steady-state product performs
// zero heap allocations.
const (
	// int8Lanes is both the row and column width of the micro-kernel tile:
	// with equal lane widths a packed weight matrix has the identical
	// layout whether it enters the product as the left or the right
	// operand, so one cached pack serves conv (weights on the left) and
	// batched dense (weights on the right).
	int8Lanes = 4
)

// Int8Panels is one packed GEMM operand: rows logical lanes over the
// shared dimension k, grouped into ⌈rows/4⌉ zero-padded panels.
type Int8Panels struct {
	data   []int8
	rows   int // logical lane count (matrix rows packed across panels)
	k      int // shared dimension
	panels int
}

// Rows returns the logical lane count of the packed operand.
func (p *Int8Panels) Rows() int { return p.rows }

// K returns the packed shared-dimension length.
func (p *Int8Panels) K() int { return p.k }

// ensure sizes the panel buffer for rows×k, reusing capacity.
func (p *Int8Panels) ensure(rows, k int) {
	p.rows, p.k = rows, k
	p.panels = (rows + int8Lanes - 1) / int8Lanes
	need := p.panels * int8Lanes * k
	if cap(p.data) < need {
		p.data = make([]int8, need) //hpnn:allow(noalloc) grow-on-first-use; steady state reuses capacity
	}
	p.data = p.data[:need]
}

// PackInt8RowsInto packs src, a row-major [rows, k] int8 matrix, into
// 4-wide lane panels: panel lane r holds row base+r with its k elements
// contiguous. A nil dst allocates; steady-state callers pass the previous
// value back in and no allocation occurs.
func PackInt8RowsInto(dst *Int8Panels, src []int8, rows, k int) *Int8Panels {
	if len(src) < rows*k {
		panic("tensor: PackInt8RowsInto source shorter than rows×k")
	}
	if dst == nil {
		dst = &Int8Panels{} //hpnn:allow(noalloc) first-use allocation; steady state passes a live value
	}
	dst.ensure(rows, k)
	for pi := 0; pi < dst.panels; pi++ {
		panel := dst.data[pi*int8Lanes*k : (pi+1)*int8Lanes*k]
		base := pi * int8Lanes
		lanes := rows - base
		if lanes > int8Lanes {
			lanes = int8Lanes
		}
		for lane := 0; lane < lanes; lane++ {
			row := src[(base+lane)*k : (base+lane)*k+k]
			for p, v := range row {
				panel[p*int8Lanes+lane] = v
			}
		}
		for lane := lanes; lane < int8Lanes; lane++ {
			for p := 0; p < k; p++ {
				panel[p*int8Lanes+lane] = 0
			}
		}
	}
	return dst
}

// PackInt8ColsInto packs src, a row-major [k, cols] int8 matrix, into
// 4-wide lane panels whose lanes are columns of src — the im2col layout,
// where each column is one output pixel's receptive field. A nil dst
// allocates; steady-state callers reuse.
func PackInt8ColsInto(dst *Int8Panels, src []int8, k, cols int) *Int8Panels {
	if len(src) < k*cols {
		panic("tensor: PackInt8ColsInto source shorter than k×cols")
	}
	if dst == nil {
		dst = &Int8Panels{} //hpnn:allow(noalloc) first-use allocation; steady state passes a live value
	}
	dst.ensure(cols, k)
	for pi := 0; pi < dst.panels; pi++ {
		panel := dst.data[pi*int8Lanes*k : (pi+1)*int8Lanes*k]
		base := pi * int8Lanes
		lanes := cols - base
		if lanes > int8Lanes {
			lanes = int8Lanes
		}
		if lanes == int8Lanes {
			for p := 0; p < k; p++ {
				row := src[p*cols+base : p*cols+base+int8Lanes]
				d := panel[p*int8Lanes : p*int8Lanes+int8Lanes]
				d[0], d[1], d[2], d[3] = row[0], row[1], row[2], row[3]
			}
			continue
		}
		for p := 0; p < k; p++ {
			row := src[p*cols+base : p*cols+base+lanes]
			d := panel[p*int8Lanes : p*int8Lanes+int8Lanes]
			for c := 0; c < int8Lanes; c++ {
				if c < lanes {
					d[c] = row[c]
				} else {
					d[c] = 0
				}
			}
		}
	}
	return dst
}

// int8Call is one product's dispatch context, shared with pool workers
// through a pointer (ParallelCtx boxes a pointer without allocating).
type int8Call struct {
	a, b []int8
	dst  []int32
	m, n int
	k    int
	nP   int
}

// int8Free recycles dispatch contexts. A mutex-guarded LIFO freelist for
// the same reason as the float engine's gemmFree: sync.Pool drops items
// randomly under the race detector, which would make the zero-alloc pins
// flaky; this list grows to the peak number of concurrent products and
// then recycles forever.
var int8Free struct {
	sync.Mutex
	list []*int8Call
}

func int8Acquire() *int8Call {
	int8Free.Lock()
	n := len(int8Free.list)
	if n == 0 {
		int8Free.Unlock()
		return new(int8Call) //hpnn:allow(noalloc) freelist growth to the peak concurrent-product count, then recycled forever
	}
	c := int8Free.list[n-1]
	int8Free.list = int8Free.list[:n-1]
	int8Free.Unlock()
	return c
}

func (c *int8Call) release() {
	c.a, c.b, c.dst = nil, nil, nil
	int8Free.Lock()
	int8Free.list = append(int8Free.list, c) //hpnn:allow(noalloc) freelist push; capacity reaches the concurrency peak and stays
	int8Free.Unlock()
}

// int8ParTiles is the tile count below which dispatch overhead beats the
// pool: small products (a micro-batch through a narrow dense layer) run
// inline on the caller.
const int8ParTiles = 16

// Int8MatMulPanelsInto computes dst[m×n] int32 = A·Bᵀ over two packed
// operands sharing dimension k: dst[r·n+c] = Σ_p A.lane(r)[p]·B.lane(c)[p].
// With A packed from a row-major [m, k] matrix and B from a row-major
// [n, k] matrix this is the NT product; with B packed from an im2col
// [k, n] matrix by columns it is the NN product — packing normalized the
// distinction away, exactly as in the float engine.
//
// Results are bitwise-deterministic for any worker count: every output
// element is written by exactly one tile and int32 accumulation is exact.
//
//hpnn:noalloc
func Int8MatMulPanelsInto(dst []int32, a, b *Int8Panels) {
	if a.k != b.k {
		panic("tensor: Int8MatMulPanelsInto operands disagree on the shared dimension")
	}
	m, n := a.rows, b.rows
	if len(dst) < m*n {
		panic("tensor: Int8MatMulPanelsInto destination shorter than m×n")
	}
	if m == 0 || n == 0 {
		return
	}
	c := int8Acquire()
	c.a, c.b, c.dst = a.data, b.data, dst
	c.m, c.n, c.k, c.nP = m, n, a.k, b.panels
	tiles := a.panels * b.panels
	if tiles >= int8ParTiles && MaxWorkers() > 1 {
		ParallelCtx(tiles, c, int8TileWorker)
	} else {
		for t := 0; t < tiles; t++ {
			int8Tile(c, t)
		}
	}
	c.release()
}

// int8TileWorker adapts int8Tile to the pool's context-kernel signature.
//
//hpnn:noalloc
func int8TileWorker(ctx any, t int) { int8Tile(ctx.(*int8Call), t) }

// int8Tile computes output tile t: the 4×4 block at panel row t/nP, panel
// column t%nP. Edge tiles compute the full padded 4×4 (zero lanes
// contribute zeros) and store only the valid region.
//
//hpnn:noalloc
func int8Tile(c *int8Call, t int) {
	k := c.k
	ip, jp := t/c.nP, t%c.nP
	ap := c.a[ip*int8Lanes*k : (ip+1)*int8Lanes*k]
	bp := c.b[jp*int8Lanes*k : (jp+1)*int8Lanes*k]

	var c00, c01, c02, c03 int32
	var c10, c11, c12, c13 int32
	var c20, c21, c22, c23 int32
	var c30, c31, c32, c33 int32
	for o := 0; o+3 < len(ap); o += 4 {
		a0, a1, a2, a3 := int32(ap[o]), int32(ap[o+1]), int32(ap[o+2]), int32(ap[o+3])
		b := bp[o : o+4 : len(bp)]
		b0, b1, b2, b3 := int32(b[0]), int32(b[1]), int32(b[2]), int32(b[3])
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}

	var acc [int8Lanes * int8Lanes]int32
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33

	i0, j0 := ip*int8Lanes, jp*int8Lanes
	mEff, nEff := c.m-i0, c.n-j0
	if mEff > int8Lanes {
		mEff = int8Lanes
	}
	if nEff > int8Lanes {
		nEff = int8Lanes
	}
	for r := 0; r < mEff; r++ {
		row := c.dst[(i0+r)*c.n+j0 : (i0+r)*c.n+j0+nEff]
		at := acc[r*int8Lanes : r*int8Lanes+nEff]
		for cc := range row {
			row[cc] = at[cc]
		}
	}
}

// EnsureInt32s grows s to length n, reusing capacity. Contents are
// unspecified after a resize.
func EnsureInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n) //hpnn:allow(noalloc) grow-on-first-use; steady state reuses capacity
	}
	return s[:n]
}

// EnsureInt8s grows s to length n, reusing capacity. Contents are
// unspecified after a resize.
func EnsureInt8s(s []int8, n int) []int8 {
	if cap(s) < n {
		return make([]int8, n) //hpnn:allow(noalloc) grow-on-first-use; steady state reuses capacity
	}
	return s[:n]
}
