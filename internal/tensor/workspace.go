package tensor

// EnsureShape returns a tensor with the given shape, reusing t's storage
// whenever its capacity allows. A nil t allocates fresh; otherwise the data
// slice is resliced (growing only when capacity is exceeded) and the shape
// header is rewritten in place, so steady-state calls with a stable — or
// shrinking, or re-growing within capacity — shape perform no allocation.
//
// Contents after a resize are unspecified: callers that accumulate into the
// buffer must zero it first.
func EnsureShape(t *Tensor, shape ...int) *Tensor {
	need := Prod(shape)
	// The nil branch builds the tensor inline rather than calling New: New
	// retains its shape argument, which would make the variadic slice
	// escape — and heap-allocate — at every EnsureShape call site.
	if t == nil {
		t = &Tensor{} //hpnn:allow(noalloc) first-use allocation; steady state passes a live tensor
	}
	if cap(t.Data) < need {
		t.Data = make([]float64, need) //hpnn:allow(noalloc) grow-on-first-use; steady state reuses capacity
	} else {
		t.Data = t.Data[:need]
	}
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// ViewInto points view at data with the given shape, reusing the view's
// shape header. It is the allocation-free counterpart of FromSlice for hot
// paths that repeatedly re-window a larger buffer (batch slicing, reshape
// layers). The view shares data; it owns nothing.
func ViewInto(view *Tensor, data []float64, shape ...int) *Tensor {
	if len(data) != Prod(shape) {
		panic("tensor: ViewInto data length does not match shape")
	}
	view.Data = data
	view.Shape = append(view.Shape[:0], shape...)
	return view
}

// EnsureFloats grows s to length n, reusing capacity. Contents are
// unspecified after a resize.
func EnsureFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) //hpnn:allow(noalloc) grow-on-first-use; steady state reuses capacity
	}
	return s[:n]
}

// EnsureInts grows s to length n, reusing capacity. Contents are
// unspecified after a resize.
func EnsureInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n) //hpnn:allow(noalloc) grow-on-first-use; steady state reuses capacity
	}
	return s[:n]
}

// Workspace is a keyed arena of reusable tensor buffers: the backing store
// for plan-once/reuse-forever execution. Each key names one logical buffer
// whose storage persists across calls; requesting a key with a new shape
// resizes the buffer in place (see EnsureShape), so a steady-state caller
// that cycles through the same keys with stable shapes allocates nothing.
//
// Keys should be static strings (or strings built once at plan time):
// map lookups with an existing key do not allocate. A Workspace is not safe
// for concurrent use; give each execution context its own — the serving
// layer runs one workspace per shard for exactly this reason.
type Workspace struct {
	bufs   map[string]*Tensor
	sealed bool
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{bufs: make(map[string]*Tensor)} }

// Get returns the workspace buffer for key, (re)shaped to shape. Contents
// are unspecified when the shape changed; otherwise the previous contents
// are retained.
func (w *Workspace) Get(key string, shape ...int) *Tensor {
	if w.bufs == nil {
		w.bufs = make(map[string]*Tensor) //hpnn:allow(noalloc) lazy init of a zero-value Workspace; NewWorkspace pre-builds it
	}
	t, ok := w.bufs[key]
	if w.sealed && (!ok || cap(t.Data) < Prod(shape)) {
		panic("tensor: sealed workspace would allocate for key " + key)
	}
	t = EnsureShape(t, shape...)
	if !ok {
		w.bufs[key] = t
	}
	return t
}

// GetZeroed is Get with the returned buffer zero-filled, for kernels that
// accumulate into their destination.
func (w *Workspace) GetZeroed(key string, shape ...int) *Tensor {
	t := w.Get(key, shape...)
	t.Zero()
	return t
}

// Seal freezes the workspace's memory footprint: after Seal, a Get that
// would create a new buffer or grow an existing one panics instead of
// allocating. Callers with a fixed working set (a serving shard after its
// warmup inference) use this to turn the steady-state zero-allocation
// invariant from a benchmark observation into an enforced runtime contract.
// Reshaping within existing capacity remains allowed.
func (w *Workspace) Seal() { w.sealed = true }

// Sealed reports whether the workspace has been sealed.
func (w *Workspace) Sealed() bool { return w.sealed }

// Reset drops every buffer, releasing the memory to the garbage collector,
// and lifts any seal.
func (w *Workspace) Reset() {
	//hpnn:allow(determinism) order-independent full clear (the compiler's map-clear idiom)
	for k := range w.bufs {
		delete(w.bufs, k)
	}
	w.sealed = false
}

// Bytes reports the total bytes currently held by the workspace's buffers.
func (w *Workspace) Bytes() int {
	total := 0
	//hpnn:allow(determinism) order-independent sum
	for _, t := range w.bufs {
		total += cap(t.Data) * 8
	}
	return total
}
