package tensor

import "testing"

// Allocation-regression tests for the workspace execution engine: every
// *Into kernel and the worker-pool dispatch must be allocation-free once
// buffers exist. A regression here silently reintroduces per-step garbage
// across the whole training path, so these are hard zeroes, not thresholds.

func mustZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	f() // warmup: lazily grown buffers and pool workers settle here
	if allocs := testing.AllocsPerRun(10, f); allocs != 0 {
		t.Errorf("%s: %v allocs/run in steady state, want 0", name, allocs)
	}
}

func TestKernelsZeroAllocSteadyState(t *testing.T) {
	a := benchTensor(32, 48)
	bm := benchTensor(48, 24)
	bt := benchTensor(24, 48)
	c := benchTensor(32, 32)
	dst := New(32, 24)
	dtn := New(48, 32)
	dt := New(48, 32)
	v := make([]float64, 48)
	mv := make([]float64, 32)

	mustZeroAllocs(t, "MatMulInto", func() { MatMulInto(dst, a, bm) })
	mustZeroAllocs(t, "MatMulNTInto", func() { MatMulNTInto(dst, a, bt) })
	mustZeroAllocs(t, "MatMulTNInto", func() { MatMulTNInto(dtn, a, c) })
	mustZeroAllocs(t, "TransposeInto", func() { TransposeInto(dt, a) })
	mustZeroAllocs(t, "MatVecInto", func() { MatVecInto(mv, a, v) })
}

// TestGEMMZeroAllocSteadyState pins the packed engine itself: shapes that
// span several kc blocks (packing scratch grows once, then recycles), the
// serial slice-level entry points used inside conv batch workers, and the
// arena-backed Workspace.MatVec.
func TestGEMMZeroAllocSteadyState(t *testing.T) {
	a := benchTensor(33, 600)
	bm := benchTensor(600, 41)
	dst := New(33, 41)
	sd := make([]float64, 33*41)
	ws := NewWorkspace()
	x := make([]float64, 600)

	mustZeroAllocs(t, "MatMulInto multi-block", func() { MatMulInto(dst, a, bm) })
	mustZeroAllocs(t, "MatMulSliceInto", func() { MatMulSliceInto(sd, a.Data, bm.Data, 33, 600, 41) })
	mustZeroAllocs(t, "Workspace.MatVec", func() { ws.MatVec("y", a, x) })
}

func TestConvKernelsZeroAllocSteadyState(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 12, InW: 12, KH: 3, KW: 3, Stride: 1, Pad: 1}
	img := New(3, 12, 12)
	img.Fill(0.5)
	col := New(g.ColRows(), g.OutH()*g.OutW())
	back := New(3, 12, 12)
	kern := New(5, 3, 3, 3)
	kern.Fill(0.1)
	out := New(5, 12, 12)

	mustZeroAllocs(t, "Im2ColInto", func() { Im2ColInto(col, img, g) })
	mustZeroAllocs(t, "Col2ImInto", func() { Col2ImInto(back, col, g) })
	mustZeroAllocs(t, "ConvDirectInto", func() { ConvDirectInto(out, img, kern, g) })
}

func TestParallelCtxZeroAlloc(t *testing.T) {
	type job struct{ data []float64 }
	j := &job{data: make([]float64, 256)}
	worker := func(ctx any, i int) { ctx.(*job).data[i]++ }
	mustZeroAllocs(t, "ParallelCtx", func() { ParallelCtx(len(j.data), j, worker) })
}

func TestParallelKernelZeroAlloc(t *testing.T) {
	args := &KernelArgs{Dst: make([]float64, 64), A: make([]float64, 64), M: 64}
	worker := func(a *KernelArgs, i int) { a.Dst[i] = a.A[i] * 2 }
	mustZeroAllocs(t, "ParallelKernel", func() { ParallelKernel(args.M, args, worker) })
}

func TestWorkspaceZeroAllocSteadyState(t *testing.T) {
	ws := NewWorkspace()
	mustZeroAllocs(t, "Workspace.Get", func() {
		ws.Get("a", 8, 8)
		ws.Get("b", 4)
	})
}

func TestWorkspaceSealEnforcesFootprint(t *testing.T) {
	ws := NewWorkspace()
	ws.Get("a", 8, 8)
	ws.Get("b", 4)
	ws.Seal()
	if !ws.Sealed() {
		t.Fatal("Seal did not mark the workspace sealed")
	}
	// Reuse and in-capacity reshapes stay legal.
	ws.Get("a", 8, 8)
	ws.Get("a", 4, 4)
	ws.Get("b", 2)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("%s: sealed workspace did not panic", name)
			}
		}()
		f()
	}
	mustPanic("new key", func() { ws.Get("c", 1) })
	mustPanic("growth", func() { ws.Get("b", 1024) })

	ws.Reset()
	if ws.Sealed() {
		t.Fatal("Reset did not lift the seal")
	}
	ws.Get("c", 16) // legal again after Reset
}

func TestEnsureShapeAlternatingBatchZeroAlloc(t *testing.T) {
	// The short final batch of an epoch shrinks the buffer in place; the
	// next full batch must find the original capacity still there.
	buf := New(16, 10)
	mustZeroAllocs(t, "EnsureShape alternating", func() {
		buf = EnsureShape(buf, 16, 10)
		buf = EnsureShape(buf, 3, 10)
	})
}
