// Package tensor implements the dense numerical arrays and kernels that the
// HPNN neural-network framework is built on: row-major float64 tensors,
// parallel matrix multiplication, im2col/col2im convolution lowering,
// pooling helpers and elementwise/reduction utilities.
//
// The package is deliberately small and allocation-conscious rather than
// general: it supports exactly what CNN training requires. All kernels are
// pure Go (stdlib only) and deterministic.
package tensor

import (
	"fmt"
	"math"

	"hpnn/internal/rng"
)

// Tensor is a dense row-major array of float64 values.
//
// Shape is the dimension list (e.g. [N, C, H, W] for an image batch); Data
// holds len = prod(Shape) values. Tensors share no hidden state: two tensors
// alias only if their Data slices alias.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, Prod(shape))}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it panics if the length does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	if len(data) != Prod(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Prod returns the product of dims (1 for an empty list).
func Prod(dims []int) int {
	p := 1
	for _, d := range dims {
		if d < 0 {
			// Format only the offending int: interpolating dims itself
			// would leak the slice and force every variadic shape at every
			// call site onto the heap.
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		p *= d
	}
	return p
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if Prod(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero resets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// FillNorm fills t with N(mean, std) variates from r.
func (t *Tensor) FillNorm(r *rng.Rand, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = r.NormScaled(mean, std)
	}
}

// FillUniform fills t with uniform [lo, hi) variates from r.
func (t *Tensor) FillUniform(r *rng.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = r.Range(lo, hi)
	}
}

// AddScaled computes t += alpha * other (elementwise, equal sizes).
func (t *Tensor) AddScaled(alpha float64, other *Tensor) {
	if len(t.Data) != len(other.Data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i, v := range other.Data {
		t.Data[i] += alpha * v
	}
}

// Scale computes t *= alpha.
func (t *Tensor) Scale(alpha float64) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// MaxAbs returns the maximum absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether a and b have identical shapes and elementwise values
// within tol.
func Equal(a, b *Tensor, tol float64) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Argmax returns the index of the largest value in v (first on ties).
func Argmax(v []float64) int {
	best, bestIdx := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, bestIdx = x, i
		}
	}
	return bestIdx
}

// String renders a compact description, used in error messages and debugging.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.Shape)
}
