package tensor

import (
	"testing"
	"testing/quick"

	"hpnn/internal/rng"
)

func TestConvGeomOutput(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if g.OutH() != 32 || g.OutW() != 32 {
		t.Fatalf("same-pad 3x3 should preserve size, got %dx%d", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 1, InH: 28, InW: 28, KH: 5, KW: 5, Stride: 1, Pad: 0}
	if g2.OutH() != 24 {
		t.Fatalf("valid 5x5 on 28 should give 24, got %d", g2.OutH())
	}
	g3 := ConvGeom{InC: 1, InH: 8, InW: 8, KH: 2, KW: 2, Stride: 2, Pad: 0}
	if g3.OutH() != 4 || g3.OutW() != 4 {
		t.Fatal("stride-2 2x2 pooling geometry wrong")
	}
}

func TestConvGeomValidate(t *testing.T) {
	bad := []ConvGeom{
		{InC: 0, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, KH: 0, KW: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 0},
		{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1, Pad: 0},
		{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: -1},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Fatalf("geometry %d should be invalid: %+v", i, g)
		}
	}
	good := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
}

// convViaGEMM runs convolution through the im2col + matmul path.
func convViaGEMM(img, kernels *Tensor, g ConvGeom) *Tensor {
	outC := kernels.Shape[0]
	col := Im2Col(img, g)
	w := kernels.Reshape(outC, g.InC*g.KH*g.KW)
	out := MatMul(w, col)
	return out.Reshape(outC, g.OutH(), g.OutW())
}

func TestGEMMConvMatchesDirectProperty(t *testing.T) {
	f := func(seed uint64, cR, hR, kR, sR, pR, ocR uint8) bool {
		c := int(cR%3) + 1
		h := int(hR%10) + 4
		k := int(kR%3) + 1 // 1..3
		s := int(sR%2) + 1
		p := int(pR % 2)
		oc := int(ocR%4) + 1
		g := ConvGeom{InC: c, InH: h, InW: h, KH: k, KW: k, Stride: s, Pad: p}
		if g.Validate() != nil {
			return true
		}
		r := rng.New(seed)
		img := randTensor(r, c, h, h)
		kern := randTensor(r, oc, c, k, k)
		return Equal(convViaGEMM(img, kern, g), ConvDirect(img, kern, g), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColKnownValues(t *testing.T) {
	// 1x3x3 image, 2x2 kernel, stride 1, no pad -> 4 columns of 4 rows.
	img := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, Stride: 1, Pad: 0}
	col := Im2Col(img, g)
	if col.Shape[0] != 4 || col.Shape[1] != 4 {
		t.Fatalf("im2col shape %v", col.Shape)
	}
	// Column 0 is the top-left window [1 2 4 5].
	want := []float64{1, 2, 4, 5}
	for r, v := range want {
		if col.At(r, 0) != v {
			t.Fatalf("col[%d,0] = %v, want %v", r, col.At(r, 0), v)
		}
	}
	// Column 3 is the bottom-right window [5 6 8 9].
	want = []float64{5, 6, 8, 9}
	for r, v := range want {
		if col.At(r, 3) != v {
			t.Fatalf("col[%d,3] = %v, want %v", r, col.At(r, 3), v)
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	img := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	col := Im2Col(img, g)
	// Output is 2x2; column 0 (output pixel (0,0)) sees padding in its
	// first row/col of the window; its kernel-center element (ky=1,kx=1,
	// row 4) is img(0,0)=1.
	if col.At(4, 0) != 1 {
		t.Fatalf("center of window at (0,0) should be 1, got %v", col.At(4, 0))
	}
	if col.At(0, 0) != 0 {
		t.Fatal("padded position should be 0")
	}
}

// TestCol2ImAdjoint verifies <Im2Col(x), y> == <x, Col2Im(y)>, i.e. Col2Im
// is the exact adjoint of Im2Col — the property backprop relies on.
func TestCol2ImAdjoint(t *testing.T) {
	f := func(seed uint64, hR, kR, sR, pR uint8) bool {
		h := int(hR%8) + 4
		k := int(kR%3) + 1
		s := int(sR%2) + 1
		p := int(pR % 2)
		g := ConvGeom{InC: 2, InH: h, InW: h, KH: k, KW: k, Stride: s, Pad: p}
		if g.Validate() != nil {
			return true
		}
		r := rng.New(seed)
		x := randTensor(r, 2, h, h)
		colX := Im2Col(x, g)
		y := randTensor(r, colX.Shape[0], colX.Shape[1])
		// <Im2Col(x), y>
		lhs := 0.0
		for i := range colX.Data {
			lhs += colX.Data[i] * y.Data[i]
		}
		// <x, Col2Im(y)>
		back := Col2Im(y, g)
		rhs := 0.0
		for i := range x.Data {
			rhs += x.Data[i] * back.Data[i]
		}
		return absDiff(lhs, rhs) < 1e-8*(1+absDiff(lhs, 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func absDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		return -d
	}
	return d
}

func TestConvDirectIdentityKernel(t *testing.T) {
	r := rng.New(3)
	img := randTensor(r, 1, 5, 5)
	kern := New(1, 1, 1, 1)
	kern.Data[0] = 1
	g := ConvGeom{InC: 1, InH: 5, InW: 5, KH: 1, KW: 1, Stride: 1, Pad: 0}
	out := ConvDirect(img, kern, g)
	if !Equal(out, img, 0) {
		t.Fatal("1x1 identity kernel should reproduce the image")
	}
}

// TestIm2ColInt8MatchesFloat pins the int8 column gather to the float
// reference: for random int8 images across a spread of geometries — both
// stride-1 (the copy-run fast path, including pad edges) and strided (the
// generic gather) — Im2ColInt8Slice must produce exactly the columns
// Im2ColSlice produces on the same values. The batched int8 inference tier
// rests on this equivalence.
func TestIm2ColInt8MatchesFloat(t *testing.T) {
	f := func(seed uint64, cR, hR, wR, kR, sR, pR uint8) bool {
		g := ConvGeom{
			InC: int(cR%3) + 1,
			InH: int(hR%10) + 4, InW: int(wR%10) + 4,
			KH: int(kR%3) + 1, KW: int(kR%3) + 1,
			Stride: int(sR%2) + 1, Pad: int(pR % 3),
		}
		if g.Validate() != nil {
			return true
		}
		r := rng.New(seed)
		src8 := make([]int8, g.InLen())
		srcF := make([]float64, g.InLen())
		for i := range src8 {
			src8[i] = int8(r.Uint64())
			srcF[i] = float64(src8[i])
		}
		n := g.ColRows() * g.OutH() * g.OutW()
		dst8 := make([]int8, n)
		dstF := make([]float64, n)
		Im2ColInt8Slice(dst8, src8, g)
		Im2ColSlice(dstF, srcF, g)
		for i := range dst8 {
			if float64(dst8[i]) != dstF[i] {
				t.Logf("geom %+v: column element %d is %d, float reference %v", g, i, dst8[i], dstF[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
