package tensor

import "fmt"

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n).
// Rows of the result are computed in parallel.
func MatMul(a, b *Tensor) *Tensor {
	m, k := dims2(a, "MatMul lhs")
	k2, n := dims2(b, "MatMul rhs")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = A·B, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := dims2(a, "MatMul lhs")
	_, n := dims2(b, "MatMul rhs")
	if len(dst.Data) != m*n {
		panic("tensor: MatMulInto destination size mismatch")
	}
	ad, bd, cd := a.Data, b.Data, dst.Data
	Parallel(m, func(i int) {
		crow := cd[i*n : (i+1)*n]
		for x := range crow {
			crow[x] = 0
		}
		arow := ad[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	})
}

// MatMulNT computes C = A·Bᵀ where A is m×k and B is n×k.
func MatMulNT(a, b *Tensor) *Tensor {
	m, k := dims2(a, "MatMulNT lhs")
	n, k2 := dims2(b, "MatMulNT rhs")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulNT inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	ad, bd, cd := a.Data, b.Data, c.Data
	Parallel(m, func(i int) {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	})
	return c
}

// MatMulTN computes C = Aᵀ·B where A is k×m and B is k×n.
func MatMulTN(a, b *Tensor) *Tensor {
	k, m := dims2(a, "MatMulTN lhs")
	k2, n := dims2(b, "MatMulTN rhs")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTN inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	ad, bd, cd := a.Data, b.Data, c.Data
	Parallel(m, func(i int) {
		crow := cd[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ad[p*m+i]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	})
	return c
}

// Transpose returns Aᵀ for a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	m, n := dims2(a, "Transpose")
	t := New(n, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			t.Data[j*m+i] = v
		}
	}
	return t
}

// MatVec computes y = A·x for A m×k and x of length k.
func MatVec(a *Tensor, x []float64) []float64 {
	m, k := dims2(a, "MatVec")
	if len(x) != k {
		panic(fmt.Sprintf("tensor: MatVec vector length %d != %d", len(x), k))
	}
	y := make([]float64, m)
	Parallel(m, func(i int) {
		row := a.Data[i*k : (i+1)*k]
		s := 0.0
		for p, av := range row {
			s += av * x[p]
		}
		y[i] = s
	})
	return y
}

func dims2(t *Tensor, what string) (int, int) {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires a 2-D tensor, got %v", what, t.Shape))
	}
	return t.Shape[0], t.Shape[1]
}
