package tensor

import "fmt"

// The GEMM kernels dispatch through ParallelKernel with top-level worker
// functions, so a steady-state call allocates nothing: operand views travel
// in a KernelArgs value copied into the worker pool, not in a closure.

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n).
// Rows of the result are computed in parallel.
func MatMul(a, b *Tensor) *Tensor {
	m, _ := dims2(a, "MatMul lhs")
	_, n := dims2(b, "MatMul rhs")
	return MatMulInto(New(m, n), a, b)
}

// MatMulInto computes dst = A·B, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, k := dims2(a, "MatMul lhs")
	k2, n := dims2(b, "MatMul rhs")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", k, k2))
	}
	if len(dst.Data) != m*n {
		panic("tensor: MatMulInto destination size mismatch")
	}
	ParallelKernel(m, &KernelArgs{Dst: dst.Data, A: a.Data, B: b.Data, N: n, K: k}, matMulRow)
	return dst
}

func matMulRow(g *KernelArgs, i int) {
	n, k := g.N, g.K
	crow := g.Dst[i*n : (i+1)*n]
	for x := range crow {
		crow[x] = 0
	}
	arow := g.A[i*k : (i+1)*k]
	for p, av := range arow {
		if av == 0 {
			continue
		}
		brow := g.B[p*n : (p+1)*n]
		for j, bv := range brow {
			crow[j] += av * bv
		}
	}
}

// MatMulNT computes C = A·Bᵀ where A is m×k and B is n×k.
func MatMulNT(a, b *Tensor) *Tensor {
	m, _ := dims2(a, "MatMulNT lhs")
	n, _ := dims2(b, "MatMulNT rhs")
	return MatMulNTInto(New(m, n), a, b)
}

// MatMulNTInto computes dst = A·Bᵀ, reusing dst's storage. dst must be m×n.
func MatMulNTInto(dst, a, b *Tensor) *Tensor {
	m, k := dims2(a, "MatMulNT lhs")
	n, k2 := dims2(b, "MatMulNT rhs")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulNT inner dims %d != %d", k, k2))
	}
	if len(dst.Data) != m*n {
		panic("tensor: MatMulNTInto destination size mismatch")
	}
	ParallelKernel(m, &KernelArgs{Dst: dst.Data, A: a.Data, B: b.Data, N: n, K: k}, matMulNTRow)
	return dst
}

func matMulNTRow(g *KernelArgs, i int) {
	n, k := g.N, g.K
	arow := g.A[i*k : (i+1)*k]
	crow := g.Dst[i*n : (i+1)*n]
	for j := 0; j < n; j++ {
		brow := g.B[j*k : (j+1)*k]
		s := 0.0
		for p, av := range arow {
			s += av * brow[p]
		}
		crow[j] = s
	}
}

// MatMulTN computes C = Aᵀ·B where A is k×m and B is k×n.
func MatMulTN(a, b *Tensor) *Tensor {
	_, m := dims2(a, "MatMulTN lhs")
	_, n := dims2(b, "MatMulTN rhs")
	return MatMulTNInto(New(m, n), a, b)
}

// MatMulTNInto computes dst = Aᵀ·B, reusing dst's storage. dst must be m×n.
func MatMulTNInto(dst, a, b *Tensor) *Tensor {
	k, m := dims2(a, "MatMulTN lhs")
	k2, n := dims2(b, "MatMulTN rhs")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTN inner dims %d != %d", k, k2))
	}
	if len(dst.Data) != m*n {
		panic("tensor: MatMulTNInto destination size mismatch")
	}
	ParallelKernel(m, &KernelArgs{Dst: dst.Data, A: a.Data, B: b.Data, M: m, N: n, K: k}, matMulTNRow)
	return dst
}

func matMulTNRow(g *KernelArgs, i int) {
	m, n, k := g.M, g.N, g.K
	crow := g.Dst[i*n : (i+1)*n]
	for x := range crow {
		crow[x] = 0
	}
	for p := 0; p < k; p++ {
		av := g.A[p*m+i]
		if av == 0 {
			continue
		}
		brow := g.B[p*n : (p+1)*n]
		for j, bv := range brow {
			crow[j] += av * bv
		}
	}
}

// Transpose returns Aᵀ for a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	m, n := dims2(a, "Transpose")
	return TransposeInto(New(n, m), a)
}

// TransposeInto computes dst = Aᵀ, reusing dst's storage. dst must be n×m
// for an m×n input.
func TransposeInto(dst, a *Tensor) *Tensor {
	m, n := dims2(a, "Transpose")
	if len(dst.Data) != m*n {
		panic("tensor: TransposeInto destination size mismatch")
	}
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			dst.Data[j*m+i] = v
		}
	}
	return dst
}

// MatVec computes y = A·x for A m×k and x of length k.
func MatVec(a *Tensor, x []float64) []float64 {
	m, _ := dims2(a, "MatVec")
	y := make([]float64, m)
	MatVecInto(y, a, x)
	return y
}

// MatVecInto computes y = A·x into a caller-provided y of length m.
func MatVecInto(y []float64, a *Tensor, x []float64) {
	m, k := dims2(a, "MatVec")
	if len(x) != k {
		panic(fmt.Sprintf("tensor: MatVec vector length %d != %d", len(x), k))
	}
	if len(y) != m {
		panic(fmt.Sprintf("tensor: MatVec destination length %d != %d", len(y), m))
	}
	ParallelKernel(m, &KernelArgs{Dst: y, A: a.Data, B: x, K: k}, matVecRow)
}

func matVecRow(g *KernelArgs, i int) {
	k := g.K
	row := g.A[i*k : (i+1)*k]
	s := 0.0
	for p, av := range row {
		s += av * g.B[p]
	}
	g.Dst[i] = s
}

func dims2(t *Tensor, what string) (int, int) {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires a 2-D tensor, got %v", what, t.Shape))
	}
	return t.Shape[0], t.Shape[1]
}
