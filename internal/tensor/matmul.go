package tensor

import "fmt"

// The tensor-level matrix products validate shapes and lower onto the
// packed, cache-blocked GEMM engine in gemm.go, which parallelizes over
// the 2-D output tile grid. That grid is what keeps small-m products —
// per-sample convolution-backward slices, small-batch dense layers — from
// collapsing to a serial kernel the way the old rows-only partitioning
// did. Slice-level serial entry points for callers that own their own
// parallelism (MatMulSliceInto and friends) live alongside the engine.

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n).
func MatMul(a, b *Tensor) *Tensor {
	m, _ := dims2(a, "MatMul lhs")
	_, n := dims2(b, "MatMul rhs")
	return MatMulInto(New(m, n), a, b)
}

// MatMulInto computes dst = A·B, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, k := dims2(a, "MatMul lhs")
	k2, n := dims2(b, "MatMul rhs")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", k, k2))
	}
	if len(dst.Data) != m*n {
		panic("tensor: MatMulInto destination size mismatch")
	}
	gemmRun(dst.Data, a.Data, b.Data, m, n, k, gemmNN, true)
	return dst
}

// MatMulNT computes C = A·Bᵀ where A is m×k and B is n×k.
func MatMulNT(a, b *Tensor) *Tensor {
	m, _ := dims2(a, "MatMulNT lhs")
	n, _ := dims2(b, "MatMulNT rhs")
	return MatMulNTInto(New(m, n), a, b)
}

// MatMulNTInto computes dst = A·Bᵀ, reusing dst's storage. dst must be m×n.
func MatMulNTInto(dst, a, b *Tensor) *Tensor {
	m, k := dims2(a, "MatMulNT lhs")
	n, k2 := dims2(b, "MatMulNT rhs")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulNT inner dims %d != %d", k, k2))
	}
	if len(dst.Data) != m*n {
		panic("tensor: MatMulNTInto destination size mismatch")
	}
	gemmRun(dst.Data, a.Data, b.Data, m, n, k, gemmNT, true)
	return dst
}

// MatMulTN computes C = Aᵀ·B where A is k×m and B is k×n.
func MatMulTN(a, b *Tensor) *Tensor {
	_, m := dims2(a, "MatMulTN lhs")
	_, n := dims2(b, "MatMulTN rhs")
	return MatMulTNInto(New(m, n), a, b)
}

// MatMulTNInto computes dst = Aᵀ·B, reusing dst's storage. dst must be m×n.
func MatMulTNInto(dst, a, b *Tensor) *Tensor {
	k, m := dims2(a, "MatMulTN lhs")
	k2, n := dims2(b, "MatMulTN rhs")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTN inner dims %d != %d", k, k2))
	}
	if len(dst.Data) != m*n {
		panic("tensor: MatMulTNInto destination size mismatch")
	}
	gemmRun(dst.Data, a.Data, b.Data, m, n, k, gemmTN, true)
	return dst
}

// Transpose returns Aᵀ for a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	m, n := dims2(a, "Transpose")
	return TransposeInto(New(n, m), a)
}

// TransposeInto computes dst = Aᵀ, reusing dst's storage. dst must be n×m
// for an m×n input.
func TransposeInto(dst, a *Tensor) *Tensor {
	m, n := dims2(a, "Transpose")
	if len(dst.Data) != m*n {
		panic("tensor: TransposeInto destination size mismatch")
	}
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			dst.Data[j*m+i] = v
		}
	}
	return dst
}

// MatVec computes y = A·x for A m×k and x of length k. It allocates the
// result on every call; hot paths should use MatVecInto with caller-owned
// storage or Workspace.MatVec with an arena-backed buffer.
func MatVec(a *Tensor, x []float64) []float64 {
	m, _ := dims2(a, "MatVec")
	y := make([]float64, m)
	MatVecInto(y, a, x)
	return y
}

// MatVecInto computes y = A·x into a caller-provided y of length m.
func MatVecInto(y []float64, a *Tensor, x []float64) {
	m, k := dims2(a, "MatVec")
	if len(x) != k {
		panic(fmt.Sprintf("tensor: MatVec vector length %d != %d", len(x), k))
	}
	if len(y) != m {
		panic(fmt.Sprintf("tensor: MatVec destination length %d != %d", len(y), m))
	}
	gemmRun(y, a.Data, x, m, 1, k, gemmNN, true)
}

// MatVec computes y = A·x into the workspace buffer named key, returning
// the buffer's storage. It is the allocation-free counterpart of the
// package-level MatVec for steady-state callers (the watermark
// regularizer evaluates two of these per optimizer step).
//
//hpnn:noalloc
func (w *Workspace) MatVec(key string, a *Tensor, x []float64) []float64 {
	m, _ := dims2(a, "MatVec")
	y := w.Get(key, m)
	MatVecInto(y.Data, a, x)
	return y.Data
}

func dims2(t *Tensor, what string) (int, int) {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires a 2-D tensor, got %v", what, t.Shape))
	}
	return t.Shape[0], t.Shape[1]
}
