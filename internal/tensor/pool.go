package tensor

import "math"

// Single-image pooling and padding kernels on raw slices. The nn pooling
// layers fan these out across the batch on the worker pool; keeping the
// cores here (rather than inlined in the layers) gives the accelerator
// simulator and future backends one shared, tested implementation.

// MaxPool2D max-pools one [C,H,W] image described by g into dst
// ([C,OutH,OutW]), recording the winning flat source index per output cell
// in arg (-1 when the window saw only padding). Padded cells never win.
//
//hpnn:noalloc
func MaxPool2D(dst []float64, arg []int, src []float64, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	o := 0
	for c := 0; c < g.InC; c++ {
		base := c * g.InH * g.InW
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				best := math.Inf(-1)
				bestIdx := -1
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						idx := base + iy*g.InW + ix
						if src[idx] > best {
							best = src[idx]
							bestIdx = idx
						}
					}
				}
				dst[o] = best
				arg[o] = bestIdx
				o++
			}
		}
	}
}

// MaxPool2DGrad scatters pooled gradients back through the argmax indices
// recorded by MaxPool2D. dx is zeroed first.
//
//hpnn:noalloc
func MaxPool2DGrad(dx, grad []float64, arg []int) {
	for i := range dx {
		dx[i] = 0
	}
	for o, a := range arg {
		if a >= 0 {
			dx[a] += grad[o]
		}
	}
}

// AvgPool2D average-pools one [C,H,W] image into dst ([C,OutH,OutW]) with
// count_include_pad=true semantics (the divisor is the fixed window size).
//
//hpnn:noalloc
func AvgPool2D(dst, src []float64, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	inv := 1 / float64(g.KH*g.KW)
	o := 0
	for c := 0; c < g.InC; c++ {
		base := c * g.InH * g.InW
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				s := 0.0
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						s += src[base+iy*g.InW+ix]
					}
				}
				dst[o] = s * inv
				o++
			}
		}
	}
}

// AvgPool2DGrad distributes pooled gradients uniformly over each window.
// dx is zeroed first.
//
//hpnn:noalloc
func AvgPool2DGrad(dx, grad []float64, g ConvGeom) {
	for i := range dx {
		dx[i] = 0
	}
	outH, outW := g.OutH(), g.OutW()
	inv := 1 / float64(g.KH*g.KW)
	o := 0
	for c := 0; c < g.InC; c++ {
		base := c * g.InH * g.InW
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				gv := grad[o] * inv
				o++
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						dx[base+iy*g.InW+ix] += gv
					}
				}
			}
		}
	}
}

// Pad2DInto zero-pads a [C,H,W] image by pad on every spatial side into dst
// ([C, H+2p, W+2p]).
func Pad2DInto(dst, src []float64, c, h, w, pad int) {
	ph, pw := h+2*pad, w+2*pad
	for i := range dst {
		dst[i] = 0
	}
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			srcRow := src[(ch*h+y)*w : (ch*h+y+1)*w]
			dstBase := (ch*ph+y+pad)*pw + pad
			copy(dst[dstBase:dstBase+w], srcRow)
		}
	}
}

// Unpad2DInto crops the pad border of a [C, H+2p, W+2p] image back to
// [C,H,W] — the adjoint of Pad2DInto.
func Unpad2DInto(dst, src []float64, c, h, w, pad int) {
	ph, pw := h+2*pad, w+2*pad
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			srcBase := (ch*ph+y+pad)*pw + pad
			copy(dst[(ch*h+y)*w:(ch*h+y+1)*w], src[srcBase:srcBase+w])
		}
	}
}
