package tensor

import "sync"

// Cache-blocked, packed GEMM engine. All dense matrix products in the
// repository — the three transposition variants plus the matrix-vector
// product — lower onto one kernel:
//
//	for each kc-wide block of the shared dimension (serial, in order):
//	  pack A's block into mr-wide row panels    [mPanels][kc][mr]
//	  pack B's block into nr-wide column panels [nPanels][kc][nr]
//	  for every (i,j) tile of the output grid (parallel, disjoint writes):
//	    run the mr×nr register-tiled micro-kernel over the packed panels
//
// Packing normalizes all transposition variants into one contiguous,
// stride-free layout, so the micro-kernel is shared and the variants only
// differ in which pack routine reads the source (rows vs columns). The
// micro-kernel holds the mr×nr accumulator tile in registers and streams
// both panels sequentially; on amd64 with AVX2+FMA it is a hand-written
// assembly kernel (four broadcast·vector fused multiply-adds per packed
// column — see gemm_amd64.s) and elsewhere a scalar Go loop. The kernel
// choice is fixed once at init, so results stay run-to-run deterministic.
//
// Determinism: tiles are assigned to workers by index but every output
// element is written by exactly one tile per kc block, kc blocks run
// serially in ascending order, and the micro-kernel sums p in ascending
// order within each lane. The result is a pure function of the operands —
// bitwise identical across worker counts and across runs.
//
// Allocation: panel scratch lives in pooled gemmScratch arenas
// (grow-once, reuse-forever — the same discipline as the Workspace), and
// all parallel dispatch goes through ParallelKernel with top-level worker
// functions, so a steady-state call performs zero heap allocations.
const (
	// gemmMR×gemmNR is the micro-kernel's register tile: four rows of two
	// 4-wide fp64 vectors, eight vector accumulators plus three operand
	// registers on amd64. The scalar fallback runs it as two 4×4 halves
	// to stay inside the scalar register budget.
	gemmMR = 4
	gemmNR = 8
	// gemmKC is the shared-dimension block: one A panel (mr×kc) plus one
	// B panel (nr×kc) occupy 24 KB, inside L1, and the packed B block for
	// a 256-wide output stays L2-resident.
	gemmKC = 256
)

// GEMM transposition variants. Packing normalizes them; only the pack
// routines differ.
const (
	gemmNN = iota // C = A·B        A m×k, B k×n
	gemmNT        // C = A·Bᵀ       A m×k, B n×k
	gemmTN        // C = Aᵀ·B       A k×m, B k×n
)

// gemmUseFMA selects the AVX2+FMA assembly micro-kernel. Decided once at
// init: a per-call choice would be a determinism hazard, not just a
// branch cost.
var gemmUseFMA = gemmCPUSupportsFMA()

// gemmScratch is one call's packing arena. A freelist (rather than a
// single package-level buffer) because slice-level GEMMs run concurrently
// on the worker pool — every in-flight call owns a private arena, and
// steady-state acquire/release recycles without allocating. The
// KernelArgs live here rather than on the stack because the pack routines
// are called through function variables: an indirect callee makes a
// stack-allocated &args escape at every call, while a pointer into the
// pooled arena is heap storage that is recycled, not reallocated.
type gemmScratch struct {
	pa, pb              []float64
	aArgs, bArgs, tArgs KernelArgs
}

// gemmFree is a mutex-guarded LIFO freelist, deliberately not a
// sync.Pool: under the race detector sync.Pool.Put randomly drops items,
// which would make the zero-alloc pins (run under -race by
// scripts/check.sh) flaky. The list grows to the peak number of
// concurrent GEMMs and then recycles forever; the critical section is two
// pointer moves, noise against the O(mnk) work it brackets.
var gemmFree struct {
	sync.Mutex
	list []*gemmScratch
}

func gemmAcquire() *gemmScratch {
	gemmFree.Lock()
	n := len(gemmFree.list)
	if n == 0 {
		gemmFree.Unlock()
		return new(gemmScratch) //hpnn:allow(noalloc) freelist growth to the peak concurrent-GEMM count, then recycled forever
	}
	s := gemmFree.list[n-1]
	gemmFree.list = gemmFree.list[:n-1]
	gemmFree.Unlock()
	return s
}

// release drops the arena's operand references (so a freed scratch never
// pins caller tensors) and returns it to the freelist; the packing
// buffers are the arena and stay.
func (s *gemmScratch) release() {
	s.aArgs, s.bArgs, s.tArgs = KernelArgs{}, KernelArgs{}, KernelArgs{}
	gemmFree.Lock()
	gemmFree.list = append(gemmFree.list, s) //hpnn:allow(noalloc) freelist push; capacity reaches the concurrency peak and stays
	gemmFree.Unlock()
}

// gemmRun executes dst = op(A)·op(B) for one of the variants. par selects
// pool-parallel execution over the tile grid; the slice-level entry points
// pass false because their callers (the convolution layer's per-sample
// workers) already own the batch-level parallelism.
//
//hpnn:noalloc
func gemmRun(dst, a, b []float64, m, n, k, variant int, par bool) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		for i := range dst[:m*n] {
			dst[i] = 0
		}
		return
	}
	// With a 1-worker cap ParallelKernel degenerates to its serial
	// fallback anyway; taking the in-line serial branch directly keeps the
	// path free of the dispatch layer's pooled-args copy.
	if par && MaxWorkers() <= 1 {
		par = false
	}
	s := gemmAcquire()
	if n == 1 {
		gemmVec(s, dst, a, b, m, k, variant, par)
		s.release()
		return
	}
	// Pack-routine selection: "rows" panels take their lanes from
	// consecutive ld-strided rows of the source, "cols" panels from
	// consecutive columns.
	var packA, packB func(*KernelArgs, int)
	var ldA, ldB int
	switch variant {
	case gemmNN:
		packA, ldA = gemmPackARows, k // lanes = rows of A
		packB, ldB = gemmPackBCols, n // lanes = columns of B
	case gemmNT:
		packA, ldA = gemmPackARows, k // lanes = rows of A
		packB, ldB = gemmPackBRows, k // lanes = rows of B (= columns of Bᵀ)
	default: // gemmTN
		packA, ldA = gemmPackACols, m // lanes = columns of A (= rows of Aᵀ)
		packB, ldB = gemmPackBCols, n // lanes = columns of B
	}
	mP := (m + gemmMR - 1) / gemmMR
	nP := (n + gemmNR - 1) / gemmNR
	kc := k
	if kc > gemmKC {
		kc = gemmKC
	}
	s.pa = EnsureFloats(s.pa, mP*gemmMR*kc)
	s.pb = EnsureFloats(s.pb, nP*gemmNR*kc)
	for pc := 0; pc < k; pc += gemmKC {
		kcEff := k - pc
		if kcEff > gemmKC {
			kcEff = gemmKC
		}
		s.aArgs = KernelArgs{Dst: s.pa, A: a, M: m, N: ldA, K: kcEff, Off: pc}
		s.bArgs = KernelArgs{Dst: s.pb, A: b, M: n, N: ldB, K: kcEff, Off: pc}
		s.tArgs = KernelArgs{Dst: dst, A: s.pa, B: s.pb, M: m, N: n, K: kcEff, Flag: pc == 0}
		if par {
			ParallelKernel(mP, &s.aArgs, packA)
			ParallelKernel(nP, &s.bArgs, packB)
			ParallelKernel(mP*nP, &s.tArgs, gemmTile)
		} else {
			for i := 0; i < mP; i++ {
				packA(&s.aArgs, i)
			}
			for j := 0; j < nP; j++ {
				packB(&s.bArgs, j)
			}
			for t := 0; t < mP*nP; t++ {
				gemmTile(&s.tArgs, t)
			}
		}
	}
	s.release()
}

// gemmPackARows packs A panel pi of the current kc block from lanes that
// are rows of the ld-strided source: panel[p][lane] =
// src[(pi·mr+lane)·ld + off+p]. Lanes beyond the matrix edge are
// zero-filled so the micro-kernel never branches on tile size.
//
//hpnn:noalloc
func gemmPackARows(g *KernelArgs, pi int) {
	kc := g.K
	dst := g.Dst[pi*gemmMR*kc : (pi+1)*gemmMR*kc]
	base := pi * gemmMR
	lanes := g.M - base
	if lanes > gemmMR {
		lanes = gemmMR
	}
	for lane := 0; lane < lanes; lane++ {
		row := g.A[(base+lane)*g.N+g.Off : (base+lane)*g.N+g.Off+kc]
		for p, v := range row {
			dst[p*gemmMR+lane] = v
		}
	}
	for lane := lanes; lane < gemmMR; lane++ {
		for p := 0; p < kc; p++ {
			dst[p*gemmMR+lane] = 0
		}
	}
}

// gemmPackACols packs A panel pi from lanes that are columns of the
// ld-strided source (the Aᵀ case): panel[p][lane] =
// src[(off+p)·ld + pi·mr+lane], with zero-filled edge lanes.
//
//hpnn:noalloc
func gemmPackACols(g *KernelArgs, pi int) {
	kc, ld := g.K, g.N
	dst := g.Dst[pi*gemmMR*kc : (pi+1)*gemmMR*kc]
	base := pi * gemmMR
	lanes := g.M - base
	if lanes > gemmMR {
		lanes = gemmMR
	}
	if lanes == gemmMR {
		for p := 0; p < kc; p++ {
			src := g.A[(g.Off+p)*ld+base : (g.Off+p)*ld+base+gemmMR]
			d := dst[p*gemmMR : p*gemmMR+gemmMR]
			d[0], d[1], d[2], d[3] = src[0], src[1], src[2], src[3]
		}
		return
	}
	for p := 0; p < kc; p++ {
		src := g.A[(g.Off+p)*ld+base : (g.Off+p)*ld+base+lanes]
		d := dst[p*gemmMR : p*gemmMR+gemmMR]
		for c := 0; c < gemmMR; c++ {
			if c < lanes {
				d[c] = src[c]
			} else {
				d[c] = 0
			}
		}
	}
}

// gemmPackBRows packs B panel pi from lanes that are rows of the
// ld-strided source (the Bᵀ case), zero-filling edge lanes.
//
//hpnn:noalloc
func gemmPackBRows(g *KernelArgs, pi int) {
	kc := g.K
	dst := g.Dst[pi*gemmNR*kc : (pi+1)*gemmNR*kc]
	base := pi * gemmNR
	lanes := g.M - base
	if lanes > gemmNR {
		lanes = gemmNR
	}
	for lane := 0; lane < lanes; lane++ {
		row := g.A[(base+lane)*g.N+g.Off : (base+lane)*g.N+g.Off+kc]
		for p, v := range row {
			dst[p*gemmNR+lane] = v
		}
	}
	for lane := lanes; lane < gemmNR; lane++ {
		for p := 0; p < kc; p++ {
			dst[p*gemmNR+lane] = 0
		}
	}
}

// gemmPackBCols packs B panel pi from lanes that are columns of the
// ld-strided source, zero-filling edge lanes.
//
//hpnn:noalloc
func gemmPackBCols(g *KernelArgs, pi int) {
	kc, ld := g.K, g.N
	dst := g.Dst[pi*gemmNR*kc : (pi+1)*gemmNR*kc]
	base := pi * gemmNR
	lanes := g.M - base
	if lanes > gemmNR {
		lanes = gemmNR
	}
	if lanes == gemmNR {
		for p := 0; p < kc; p++ {
			src := g.A[(g.Off+p)*ld+base : (g.Off+p)*ld+base+gemmNR]
			d := dst[p*gemmNR : p*gemmNR+gemmNR]
			d[0], d[1], d[2], d[3] = src[0], src[1], src[2], src[3]
			d[4], d[5], d[6], d[7] = src[4], src[5], src[6], src[7]
		}
		return
	}
	for p := 0; p < kc; p++ {
		src := g.A[(g.Off+p)*ld+base : (g.Off+p)*ld+base+lanes]
		d := dst[p*gemmNR : p*gemmNR+gemmNR]
		for c := 0; c < gemmNR; c++ {
			if c < lanes {
				d[c] = src[c]
			} else {
				d[c] = 0
			}
		}
	}
}

// gemmTile runs the micro-kernel for output tile t of the current kc
// block. On the first block (Flag) the tile overwrites dst — no separate
// zeroing pass — and on later blocks it accumulates. Edge tiles compute
// the full padded mr×nr (zero lanes contribute zeros) and store only the
// valid region.
//
//hpnn:noalloc
func gemmTile(g *KernelArgs, t int) {
	kc := g.K
	nP := (g.N + gemmNR - 1) / gemmNR
	ip, jp := t/nP, t%nP
	ap := g.A[ip*gemmMR*kc : (ip+1)*gemmMR*kc]
	bp := g.B[jp*gemmNR*kc : (jp+1)*gemmNR*kc]
	var acc [gemmMR * gemmNR]float64
	if gemmUseFMA {
		gemmMicroFMA(&ap[0], &bp[0], kc, &acc)
	} else {
		gemmMicroGo(ap, bp, kc, &acc)
	}
	m, n := g.M, g.N
	i0, j0 := ip*gemmMR, jp*gemmNR
	mEff, nEff := m-i0, n-j0
	if mEff > gemmMR {
		mEff = gemmMR
	}
	if nEff > gemmNR {
		nEff = gemmNR
	}
	for r := 0; r < mEff; r++ {
		row := g.Dst[(i0+r)*n+j0 : (i0+r)*n+j0+nEff]
		at := acc[r*gemmNR : r*gemmNR+nEff]
		if g.Flag {
			for c := range row {
				row[c] = at[c]
			}
		} else {
			for c := range row {
				row[c] += at[c]
			}
		}
	}
}

// gemmMicroGo is the portable micro-kernel: acc[r][c] = Σ_p ap[p][r]·bp[p][c]
// over the packed panels, run as two 4×4 halves so the sixteen live
// accumulators of each half stay near the scalar register budget. The
// per-lane summation order (ascending p) matches the vector kernel; only
// rounding differs (the assembly kernel's FMA skips the intermediate
// rounding), and the choice between them is fixed at init.
//
//hpnn:noalloc
func gemmMicroGo(ap, bp []float64, kc int, acc *[gemmMR * gemmNR]float64) {
	ap = ap[:kc*gemmMR]
	for h := 0; h < gemmNR; h += 4 {
		var c00, c01, c02, c03 float64
		var c10, c11, c12, c13 float64
		var c20, c21, c22, c23 float64
		var c30, c31, c32, c33 float64
		bo := h
		for o := 0; o+3 < len(ap); o += 4 {
			a0, a1, a2, a3 := ap[o], ap[o+1], ap[o+2], ap[o+3]
			b := bp[bo : bo+4 : len(bp)]
			b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
			c20 += a2 * b0
			c21 += a2 * b1
			c22 += a2 * b2
			c23 += a2 * b3
			c30 += a3 * b0
			c31 += a3 * b1
			c32 += a3 * b2
			c33 += a3 * b3
			bo += gemmNR
		}
		acc[0*gemmNR+h+0], acc[0*gemmNR+h+1], acc[0*gemmNR+h+2], acc[0*gemmNR+h+3] = c00, c01, c02, c03
		acc[1*gemmNR+h+0], acc[1*gemmNR+h+1], acc[1*gemmNR+h+2], acc[1*gemmNR+h+3] = c10, c11, c12, c13
		acc[2*gemmNR+h+0], acc[2*gemmNR+h+1], acc[2*gemmNR+h+2], acc[2*gemmNR+h+3] = c20, c21, c22, c23
		acc[3*gemmNR+h+0], acc[3*gemmNR+h+1], acc[3*gemmNR+h+2], acc[3*gemmNR+h+3] = c30, c31, c32, c33
	}
}

// gemmVec is the engine's skinny path for n == 1 outputs (MatVec and
// degenerate single-column products). Packing would double the memory
// traffic of an already memory-bound product, so each output element is a
// straight ascending-order dot product, deterministic for the same reason
// as the tile grid: one worker owns each output row.
//
//hpnn:noalloc
func gemmVec(s *gemmScratch, dst, a, b []float64, m, k, variant int, par bool) {
	s.aArgs = KernelArgs{Dst: dst, A: a, B: b, M: m, K: k}
	fn := gemmVecRow
	if variant == gemmTN {
		fn = gemmVecTNRow
	}
	if par {
		ParallelKernel(m, &s.aArgs, fn)
		return
	}
	for i := 0; i < m; i++ {
		fn(&s.aArgs, i)
	}
}

// gemmVecRow computes dst[i] = A[i,:]·b for row-major A (NN and NT agree
// when B has a single row/column).
//
//hpnn:noalloc
func gemmVecRow(g *KernelArgs, i int) {
	k := g.K
	row := g.A[i*k : (i+1)*k]
	s := 0.0
	for p, av := range row {
		s += av * g.B[p]
	}
	g.Dst[i] = s
}

// gemmVecTNRow computes dst[i] = A[:,i]·b for a k×m A (the Aᵀ·b case).
//
//hpnn:noalloc
func gemmVecTNRow(g *KernelArgs, i int) {
	m := g.M
	s := 0.0
	for p, bv := range g.B[:g.K] {
		s += g.A[p*m+i] * bv
	}
	g.Dst[i] = s
}

// MatMulSliceInto computes dst[m×n] = a[m×k]·b[k×n] on raw slices with the
// packed blocked kernel, serially: callers (the convolution layer's
// per-sample workers) already own the batch-level parallelism.
func MatMulSliceInto(dst, a, b []float64, m, k, n int) {
	checkSliceGEMM("MatMulSliceInto", dst, a, b, m*n, m*k, k*n)
	gemmRun(dst, a, b, m, n, k, gemmNN, false)
}

// MatMulNTSliceInto computes dst[m×n] = a[m×k]·b[n×k]ᵀ serially on raw
// slices with the packed blocked kernel.
func MatMulNTSliceInto(dst, a, b []float64, m, k, n int) {
	checkSliceGEMM("MatMulNTSliceInto", dst, a, b, m*n, m*k, n*k)
	gemmRun(dst, a, b, m, n, k, gemmNT, false)
}

// MatMulTNSliceInto computes dst[m×n] = a[k×m]ᵀ·b[k×n] serially on raw
// slices with the packed blocked kernel.
func MatMulTNSliceInto(dst, a, b []float64, k, m, n int) {
	checkSliceGEMM("MatMulTNSliceInto", dst, a, b, m*n, k*m, k*n)
	gemmRun(dst, a, b, m, n, k, gemmTN, false)
}

func checkSliceGEMM(what string, dst, a, b []float64, nd, na, nb int) {
	if len(dst) < nd || len(a) < na || len(b) < nb {
		panic("tensor: " + what + " operand shorter than its shape")
	}
}
