//go:build !amd64

package tensor

// Non-amd64 builds always use the portable micro-kernel.
func gemmCPUSupportsFMA() bool { return false }

// gemmMicroFMA is never called when gemmCPUSupportsFMA returns false; the
// stub exists so gemm.go compiles on every architecture.
func gemmMicroFMA(ap, bp *float64, kc int, acc *[gemmMR * gemmNR]float64) {
	panic("tensor: gemmMicroFMA called without FMA support")
}
