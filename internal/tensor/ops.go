package tensor

import "fmt"

// Row/column reductions and broadcasts over 2-D tensors — the bias-add and
// bias-gradient primitives of the dense and convolution layers, exposed as
// allocation-free kernels.

// AddRowBroadcast adds row (length n) to every row of the m×n tensor t.
//
//hpnn:noalloc
func AddRowBroadcast(t *Tensor, row []float64) {
	m, n := dims2(t, "AddRowBroadcast")
	if len(row) != n {
		panic(fmt.Sprintf("tensor: AddRowBroadcast row length %d != %d", len(row), n))
	}
	for i := 0; i < m; i++ {
		trow := t.Data[i*n : (i+1)*n]
		for j, v := range row {
			trow[j] += v
		}
	}
}

// AddColSums accumulates the column sums of the m×n tensor t into dst
// (length n): dst[j] += Σ_i t[i][j]. Used for bias gradients, which add
// into an existing accumulator.
//
//hpnn:noalloc
func AddColSums(dst []float64, t *Tensor) {
	m, n := dims2(t, "AddColSums")
	if len(dst) != n {
		panic(fmt.Sprintf("tensor: AddColSums destination length %d != %d", len(dst), n))
	}
	for i := 0; i < m; i++ {
		trow := t.Data[i*n : (i+1)*n]
		for j, v := range trow {
			dst[j] += v
		}
	}
}

// SumRowsInto writes each row's sum of the m×n tensor t into dst (length m).
func SumRowsInto(dst []float64, t *Tensor) {
	m, n := dims2(t, "SumRowsInto")
	if len(dst) != m {
		panic(fmt.Sprintf("tensor: SumRowsInto destination length %d != %d", len(dst), m))
	}
	for i := 0; i < m; i++ {
		trow := t.Data[i*n : (i+1)*n]
		s := 0.0
		for _, v := range trow {
			s += v
		}
		dst[i] = s
	}
}
