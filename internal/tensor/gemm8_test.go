package tensor

import (
	"testing"
)

// int8Naive is the reference product: dst[r*n+c] = Σ_p A[r,p]·B[c,p] over
// row-major [m, k] and [n, k] operands, in plain int32 arithmetic.
func int8Naive(a []int8, m, k int, b []int8, n int) []int32 {
	out := make([]int32, m*n)
	for r := 0; r < m; r++ {
		for c := 0; c < n; c++ {
			var s int32
			for p := 0; p < k; p++ {
				s += int32(a[r*k+p]) * int32(b[c*k+p])
			}
			out[r*n+c] = s
		}
	}
	return out
}

func fillInt8(dst []int8, seed uint64) {
	s := seed
	for i := range dst {
		s = s*6364136223846793005 + 1442695040888963407
		dst[i] = int8(s >> 56)
	}
}

// transposeInt8 converts a row-major [r, c] matrix into row-major [c, r].
func transposeInt8(src []int8, r, c int) []int8 {
	out := make([]int8, len(src))
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out[j*r+i] = src[i*c+j]
		}
	}
	return out
}

// TestInt8GEMMMatchesNaive sweeps shapes across tile edges (every residue
// of the 4-lane panel width, plus k = 0 and the parallel-dispatch regime)
// and checks the packed kernel against the naive reference exactly — int32
// results have no tolerance.
func TestInt8GEMMMatchesNaive(t *testing.T) {
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {1, 1, 0}, {4, 4, 4}, {3, 5, 7}, {5, 3, 9},
		{8, 8, 16}, {7, 9, 13}, {9, 7, 25}, {4, 16, 64},
		{16, 4, 64}, {17, 19, 101}, {33, 31, 57}, {64, 64, 64},
	}
	var pa, pb *Int8Panels
	for _, s := range shapes {
		a := make([]int8, s.m*s.k)
		b := make([]int8, s.n*s.k)
		fillInt8(a, uint64(s.m*1000+s.k))
		fillInt8(b, uint64(s.n*2000+s.k))
		want := int8Naive(a, s.m, s.k, b, s.n)

		pa = PackInt8RowsInto(pa, a, s.m, s.k)
		pb = PackInt8RowsInto(pb, b, s.n, s.k)
		got := make([]int32, s.m*s.n)
		Int8MatMulPanelsInto(got, pa, pb)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %dx%dx%d: element %d = %d, want %d", s.m, s.n, s.k, i, got[i], want[i])
			}
		}

		// Column packing of the transposed operand must land in the same
		// panels: B[n,k] row-packed == Bᵀ[k,n] column-packed.
		bt := transposeInt8(b, s.n, s.k)
		pbc := PackInt8ColsInto(nil, bt, s.k, s.n)
		got2 := make([]int32, s.m*s.n)
		Int8MatMulPanelsInto(got2, pa, pbc)
		for i := range want {
			if got2[i] != want[i] {
				t.Fatalf("shape %dx%dx%d (col-packed): element %d = %d, want %d", s.m, s.n, s.k, i, got2[i], want[i])
			}
		}
	}
}

// TestInt8GEMMOverflowWraps pins the wrap-around semantics the bitwise
// equality with the simulator's accumulator chain rests on: int32 overflow
// must wrap identically to the naive sequential accumulation.
func TestInt8GEMMOverflowWraps(t *testing.T) {
	const m, n, k = 4, 4, 200000 // 200k·127·127 ≫ MaxInt32: guaranteed overflow
	a := make([]int8, m*k)
	b := make([]int8, n*k)
	for i := range a {
		a[i] = 127
	}
	for i := range b {
		b[i] = 127
	}
	want := int8Naive(a, m, k, b, n)
	got := make([]int32, m*n)
	Int8MatMulPanelsInto(got, PackInt8RowsInto(nil, a, m, k), PackInt8RowsInto(nil, b, n, k))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("overflow wrap diverges at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

// TestInt8GEMMDeterministicAcrossWorkers runs one large product under
// worker caps 1, 2 and 8 and demands bitwise-identical results — the
// property the batched inference engine's golden-reference contract needs
// from this kernel.
func TestInt8GEMMDeterministicAcrossWorkers(t *testing.T) {
	const m, n, k = 61, 67, 129
	a := make([]int8, m*k)
	b := make([]int8, n*k)
	fillInt8(a, 7)
	fillInt8(b, 11)
	pa := PackInt8RowsInto(nil, a, m, k)
	pb := PackInt8RowsInto(nil, b, n, k)

	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	ref := make([]int32, m*n)
	Int8MatMulPanelsInto(ref, pa, pb)
	for _, w := range []int{2, 8} {
		SetMaxWorkers(w)
		got := make([]int32, m*n)
		Int8MatMulPanelsInto(got, pa, pb)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: element %d = %d, want %d (workers=1)", w, i, got[i], ref[i])
			}
		}
	}
}

// TestInt8GEMMZeroAllocSteadyState pins the packed path — both pack
// orientations and the tile-grid product — at zero allocations per call
// once every buffer has been through one warmup.
func TestInt8GEMMZeroAllocSteadyState(t *testing.T) {
	const m, n, k = 32, 48, 96
	a := make([]int8, m*k)
	b := make([]int8, n*k)
	fillInt8(a, 3)
	fillInt8(b, 5)
	bt := transposeInt8(b, n, k) // [k, n], column-packed below
	var pa, pb *Int8Panels
	dst := make([]int32, m*n)
	mustZeroAllocs(t, "int8 pack+GEMM", func() {
		pa = PackInt8RowsInto(pa, a, m, k)
		pb = PackInt8ColsInto(pb, bt, k, n)
		Int8MatMulPanelsInto(dst, pa, pb)
	})
}

// TestInt8GEMMPanics pins the guard rails: mismatched shared dimensions
// and short destinations must panic rather than corrupt memory.
func TestInt8GEMMPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	a := PackInt8RowsInto(nil, make([]int8, 4*3), 4, 3)
	b := PackInt8RowsInto(nil, make([]int8, 4*5), 4, 5)
	expectPanic("k mismatch", func() { Int8MatMulPanelsInto(make([]int32, 16), a, b) })
	b2 := PackInt8RowsInto(nil, make([]int8, 4*3), 4, 3)
	expectPanic("short dst", func() { Int8MatMulPanelsInto(make([]int32, 15), a, b2) })
	expectPanic("short pack src", func() { PackInt8RowsInto(nil, make([]int8, 5), 2, 3) })
	expectPanic("short col src", func() { PackInt8ColsInto(nil, make([]int8, 5), 3, 2) })
}
