package tensor

import (
	"testing"

	"hpnn/internal/rng"
)

func benchTensor(n, m int) *Tensor {
	t := New(n, m)
	t.FillNorm(rng.New(1), 0, 1)
	return t
}

func BenchmarkMatMul128(b *testing.B) {
	x := benchTensor(128, 128)
	y := benchTensor(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

// BenchmarkMatMulInto128 is the workspace-reuse counterpart of
// BenchmarkMatMul128: the destination lives across iterations, so
// steady-state allocs/op must be zero.
func BenchmarkMatMulInto128(b *testing.B) {
	x := benchTensor(128, 128)
	y := benchTensor(128, 128)
	dst := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkMatMulNT128(b *testing.B) {
	x := benchTensor(128, 128)
	y := benchTensor(128, 128)
	dst := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulNTInto(dst, x, y)
	}
}

// gemmBenchCase is one blocked-vs-naive GEMM comparison point. The naive
// kernels from matmul_ref.go are the "before" of the speedup trajectory
// recorded by scripts/bench_gemm.sh; the blocked runs pin allocs at zero.
type gemmBenchCase struct {
	name    string
	m, k, n int
}

// gemmBenchCases: square shapes for raw throughput (256³ is the headline
// single-threaded acceptance point), skinny small-m shapes for the 2-D
// tile-grid parallelism fix (rows-only partitioning collapses to serial
// there), and a conv-backward-like slab.
var gemmBenchCases = []gemmBenchCase{
	{"square64", 64, 64, 64},
	{"square128", 128, 128, 128},
	{"square256", 256, 256, 256},
	{"skinny4x256x256", 4, 256, 256},
	{"skinny8x288x576", 8, 288, 576},
}

// BenchmarkGEMM measures the packed blocked kernel against the retained
// naive reference, single-threaded (SetMaxWorkers(1)) so the comparison
// isolates kernel quality from parallel speedup.
func BenchmarkGEMM(b *testing.B) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	for _, c := range gemmBenchCases {
		a := benchTensor(c.m, c.k)
		bm := benchTensor(c.k, c.n)
		dst := New(c.m, c.n)
		b.Run("blocked/"+c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, a, bm)
			}
		})
		b.Run("naive/"+c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				naiveMatMulSlice(dst.Data, a.Data, bm.Data, c.m, c.k, c.n)
			}
		})
	}
}

// BenchmarkGEMMVariants covers the transposed entry points at the headline
// shape; their naive counterparts bound the speedup from packing alone.
func BenchmarkGEMMVariants(b *testing.B) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	const d = 256
	a := benchTensor(d, d)
	bm := benchTensor(d, d)
	dst := New(d, d)
	b.Run("blockedNT", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MatMulNTInto(dst, a, bm)
		}
	})
	b.Run("naiveNT", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			naiveMatMulNTSlice(dst.Data, a.Data, bm.Data, d, d, d)
		}
	})
	b.Run("blockedTN", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MatMulTNInto(dst, a, bm)
		}
	})
	b.Run("naiveTN", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			naiveMatMulTNSlice(dst.Data, a.Data, bm.Data, d, d, d)
		}
	})
}

func BenchmarkIm2Col(b *testing.B) {
	img := New(16, 32, 32)
	img.FillNorm(rng.New(2), 0, 1)
	g := ConvGeom{InC: 16, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	col := New(16*9, 32*32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColInto(col, img, g)
	}
}

func BenchmarkConvGEMMvsDirect(b *testing.B) {
	img := New(8, 16, 16)
	img.FillNorm(rng.New(3), 0, 1)
	kern := New(16, 8, 3, 3)
	kern.FillNorm(rng.New(4), 0, 1)
	g := ConvGeom{InC: 8, InH: 16, InW: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	b.Run("gemm", func(b *testing.B) {
		kmat := kern.Reshape(16, 8*9)
		col := New(8*9, 16*16)
		dst := New(16, 16*16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Im2ColInto(col, img, g)
			MatMulInto(dst, kmat, col)
		}
	})
	b.Run("direct", func(b *testing.B) {
		out := New(16, 16, 16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ConvDirectInto(out, img, kern, g)
		}
	})
}
