package tensor

import (
	"testing"

	"hpnn/internal/rng"
)

func benchTensor(n, m int) *Tensor {
	t := New(n, m)
	t.FillNorm(rng.New(1), 0, 1)
	return t
}

func BenchmarkMatMul128(b *testing.B) {
	x := benchTensor(128, 128)
	y := benchTensor(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

// BenchmarkMatMulInto128 is the workspace-reuse counterpart of
// BenchmarkMatMul128: the destination lives across iterations, so
// steady-state allocs/op must be zero.
func BenchmarkMatMulInto128(b *testing.B) {
	x := benchTensor(128, 128)
	y := benchTensor(128, 128)
	dst := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkMatMulNT128(b *testing.B) {
	x := benchTensor(128, 128)
	y := benchTensor(128, 128)
	dst := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulNTInto(dst, x, y)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	img := New(16, 32, 32)
	img.FillNorm(rng.New(2), 0, 1)
	g := ConvGeom{InC: 16, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	col := New(16*9, 32*32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColInto(col, img, g)
	}
}

func BenchmarkConvGEMMvsDirect(b *testing.B) {
	img := New(8, 16, 16)
	img.FillNorm(rng.New(3), 0, 1)
	kern := New(16, 8, 3, 3)
	kern.FillNorm(rng.New(4), 0, 1)
	g := ConvGeom{InC: 8, InH: 16, InW: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	b.Run("gemm", func(b *testing.B) {
		kmat := kern.Reshape(16, 8*9)
		col := New(8*9, 16*16)
		dst := New(16, 16*16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Im2ColInto(col, img, g)
			MatMulInto(dst, kmat, col)
		}
	})
	b.Run("direct", func(b *testing.B) {
		out := New(16, 16, 16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ConvDirectInto(out, img, kern, g)
		}
	})
}
