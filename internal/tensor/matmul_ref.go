package tensor

// Naive reference GEMM kernels, retained after the packed blocked engine
// replaced them on the hot path. They are the ground truth for the
// property tests (randomized blocked-vs-naive comparisons over edge
// shapes) and the "before" baseline for the speedup benchmarks in
// bench_test.go and scripts/bench_gemm.sh. Nothing in the library routes
// through them.

// naiveMatMulSlice computes dst[m×n] = a[m×k]·b[k×n] with the original
// row-at-a-time axpy kernel.
func naiveMatMulSlice(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		crow := dst[i*n : (i+1)*n]
		for x := range crow {
			crow[x] = 0
		}
		arow := a[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// naiveMatMulNTSlice computes dst[m×n] = a[m×k]·b[n×k]ᵀ with the original
// dot-product kernel.
func naiveMatMulNTSlice(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
}

// naiveMatMulTNSlice computes dst[m×n] = a[k×m]ᵀ·b[k×n] with the original
// rank-1-update kernel.
func naiveMatMulTNSlice(dst, a, b []float64, k, m, n int) {
	for i := range dst[:m*n] {
		dst[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := dst[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}
