package tensor

import (
	"math"
	"testing"

	"hpnn/internal/rng"
)

// gemmShapes are the property-test shapes: every m/n combination crosses a
// micro-tile boundary (1, just-under, exact, just-over multiples of the
// 4×8 register tile) and k crosses the kc=256 block boundary, including a
// two-and-a-bit-block 513 and the degenerate k=1.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 9},
	{3, 5, 1},
	{4, 8, 8},
	{5, 3, 7},
	{7, 255, 17},
	{8, 256, 8},
	{9, 257, 15},
	{16, 64, 33},
	{31, 513, 5},
	{32, 100, 32},
	{33, 258, 41},
}

// gemmClose compares blocked output against the naive reference with a
// tolerance covering reassociation and FMA rounding (the blocked kernel
// sums in packed-lane order and the assembly kernel skips intermediate
// rounding, so bitwise equality with the reference is not expected).
func gemmClose(t *testing.T, what string, got, want []float64, m, k, n int) {
	t.Helper()
	for i := range want {
		g, w := got[i], want[i]
		tol := 1e-9 * (1 + math.Abs(w))
		if math.Abs(g-w) > tol {
			t.Fatalf("%s m=%d k=%d n=%d: elem %d = %g, reference %g", what, m, k, n, i, g, w)
		}
	}
}

// TestGEMMMatchesNaive cross-checks all three blocked variants against the
// retained naive kernels over the edge-shape grid, exercising both the
// tensor-level (parallel) and slice-level (serial) entry points.
func TestGEMMMatchesNaive(t *testing.T) {
	r := rng.New(11)
	for _, s := range gemmShapes {
		a := New(s.m, s.k)
		a.FillNorm(r, 0, 1)
		b := New(s.k, s.n)
		b.FillNorm(r, 0, 1)
		at := Transpose(a) // k×m
		bt := Transpose(b) // n×k
		want := make([]float64, s.m*s.n)

		naiveMatMulSlice(want, a.Data, b.Data, s.m, s.k, s.n)
		got := MatMul(a, b)
		gemmClose(t, "MatMul", got.Data, want, s.m, s.k, s.n)
		gotS := make([]float64, s.m*s.n)
		MatMulSliceInto(gotS, a.Data, b.Data, s.m, s.k, s.n)
		gemmClose(t, "MatMulSliceInto", gotS, want, s.m, s.k, s.n)

		naiveMatMulNTSlice(want, a.Data, bt.Data, s.m, s.k, s.n)
		got = MatMulNT(a, bt)
		gemmClose(t, "MatMulNT", got.Data, want, s.m, s.k, s.n)
		MatMulNTSliceInto(gotS, a.Data, bt.Data, s.m, s.k, s.n)
		gemmClose(t, "MatMulNTSliceInto", gotS, want, s.m, s.k, s.n)

		naiveMatMulTNSlice(want, at.Data, b.Data, s.k, s.m, s.n)
		got = MatMulTN(at, b)
		gemmClose(t, "MatMulTN", got.Data, want, s.m, s.k, s.n)
		MatMulTNSliceInto(gotS, at.Data, b.Data, s.k, s.m, s.n)
		gemmClose(t, "MatMulTNSliceInto", gotS, want, s.m, s.k, s.n)
	}
}

// TestGEMMRandomizedShapes fuzzes random dimensions (including frequent
// small values, where tile-edge handling lives) against the reference.
func TestGEMMRandomizedShapes(t *testing.T) {
	r := rng.New(23)
	dim := func() int {
		if r.Intn(3) == 0 {
			return 1 + r.Intn(9)
		}
		return 1 + r.Intn(70)
	}
	for it := 0; it < 60; it++ {
		m, k, n := dim(), dim(), dim()
		a := New(m, k)
		a.FillNorm(r, 0, 1)
		b := New(k, n)
		b.FillNorm(r, 0, 1)
		want := make([]float64, m*n)
		naiveMatMulSlice(want, a.Data, b.Data, m, k, n)
		gemmClose(t, "MatMul", MatMul(a, b).Data, want, m, k, n)
	}
}

// TestGEMMDeterministicAcrossWorkers asserts the engine's core invariant:
// the same product is bitwise identical whatever the worker count, because
// workers partition the fixed tile grid and never reduce concurrently.
// Shapes span one and several kc blocks and ragged tile edges.
func TestGEMMDeterministicAcrossWorkers(t *testing.T) {
	r := rng.New(37)
	shapes := []struct{ m, k, n int }{{33, 257, 41}, {8, 600, 8}, {5, 64, 1}, {64, 513, 19}}
	for _, s := range shapes {
		a := New(s.m, s.k)
		a.FillNorm(r, 0, 1)
		b := New(s.k, s.n)
		b.FillNorm(r, 0, 1)
		bt := Transpose(b)
		at := Transpose(a)
		ref := [3]*Tensor{New(s.m, s.n), New(s.m, s.n), New(s.m, s.n)}
		got := [3]*Tensor{New(s.m, s.n), New(s.m, s.n), New(s.m, s.n)}
		prev := SetMaxWorkers(1)
		MatMulInto(ref[0], a, b)
		MatMulNTInto(ref[1], a, bt)
		MatMulTNInto(ref[2], at, b)
		for _, workers := range []int{2, 8} {
			SetMaxWorkers(workers)
			MatMulInto(got[0], a, b)
			MatMulNTInto(got[1], a, bt)
			MatMulTNInto(got[2], at, b)
			for v := range ref {
				for i, w := range ref[v].Data {
					if got[v].Data[i] != w {
						t.Fatalf("variant %d m=%d k=%d n=%d workers=%d: elem %d = %v, 1-worker run produced %v",
							v, s.m, s.k, s.n, workers, i, got[v].Data[i], w)
					}
				}
			}
		}
		SetMaxWorkers(prev)
	}
}

// TestGEMMReusesDst verifies the first-kc-block overwrite semantics: a
// destination full of garbage must come out identical to a fresh one.
func TestGEMMReusesDst(t *testing.T) {
	r := rng.New(41)
	a := New(9, 300)
	a.FillNorm(r, 0, 1)
	b := New(300, 13)
	b.FillNorm(r, 0, 1)
	fresh := MatMul(a, b)
	dirty := New(9, 13)
	for i := range dirty.Data {
		dirty.Data[i] = math.Inf(1)
	}
	MatMulInto(dirty, a, b)
	for i, w := range fresh.Data {
		if dirty.Data[i] != w {
			t.Fatalf("elem %d = %v after reuse, %v fresh", i, dirty.Data[i], w)
		}
	}
}

// TestMatVecMatchesGEMM pins the n==1 skinny path (and Workspace.MatVec)
// to the full engine and the naive reference.
func TestMatVecMatchesGEMM(t *testing.T) {
	r := rng.New(43)
	for _, s := range []struct{ m, k int }{{1, 1}, {7, 300}, {64, 513}} {
		a := New(s.m, s.k)
		a.FillNorm(r, 0, 1)
		x := make([]float64, s.k)
		for i := range x {
			x[i] = r.Float64() - 0.5
		}
		want := make([]float64, s.m)
		naiveMatMulSlice(want, a.Data, x, s.m, s.k, 1)
		got := MatVec(a, x)
		gemmClose(t, "MatVec", got, want, s.m, s.k, 1)
		ws := NewWorkspace()
		wsGot := ws.MatVec("y", a, x)
		for i := range want {
			if wsGot[i] != got[i] {
				t.Fatalf("Workspace.MatVec elem %d = %v, MatVec %v", i, wsGot[i], got[i])
			}
		}
	}
}

// TestGEMMZeroK checks the degenerate k=0 contract: dst is zeroed, not
// left stale.
func TestGEMMZeroK(t *testing.T) {
	dst := []float64{1, 2, 3, 4, 5, 6}
	MatMulSliceInto(dst, nil, nil, 2, 0, 3)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("elem %d = %v, want 0", i, v)
		}
	}
}

// TestGEMMSliceLengthChecks pins the slice entry points' operand
// validation.
func TestGEMMSliceLengthChecks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short operand did not panic")
		}
	}()
	MatMulSliceInto(make([]float64, 3), make([]float64, 4), make([]float64, 4), 2, 2, 2)
}
