package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"hpnn/internal/rng"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	n := 0.0
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				x.Set(n, i, j, k)
				n++
			}
		}
	}
	// Row-major: last index fastest.
	for i := range x.Data {
		if x.Data[i] != float64(i) {
			t.Fatalf("row-major layout broken at %d: %v", i, x.Data[i])
		}
	}
	if x.At(2, 3, 4) != 59 {
		t.Fatalf("At(2,3,4) = %v, want 59", x.At(2, 3, 4))
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds At did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 7
	if x.Data[0] != 7 {
		t.Fatal("Reshape must share the backing data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Reshape did not panic")
		}
	}()
	x.Reshape(5, 5)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Fatal("Clone must not alias the original")
	}
}

func TestFromSliceLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with bad length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAddScaledAndScale(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := FromSlice([]float64{10, 20}, 2)
	x.AddScaled(0.5, y)
	if x.Data[0] != 6 || x.Data[1] != 12 {
		t.Fatalf("AddScaled wrong: %v", x.Data)
	}
	x.Scale(2)
	if x.Data[0] != 12 || x.Data[1] != 24 {
		t.Fatalf("Scale wrong: %v", x.Data)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(5)
	a := New(7, 7)
	a.FillNorm(r, 0, 1)
	id := New(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(1, i, i)
	}
	if !Equal(MatMul(a, id), a, 1e-12) || !Equal(MatMul(id, a), a, 1e-12) {
		t.Fatal("identity matmul changed the matrix")
	}
}

// naiveMatMul is a reference used by the property tests.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			c.Set(s, i, j)
		}
	}
	return c
}

func randTensor(r *rng.Rand, shape ...int) *Tensor {
	x := New(shape...)
	x.FillNorm(r, 0, 1)
	return x
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	f := func(seed uint64, mr, kr, nr uint8) bool {
		m, k, n := int(mr%16)+1, int(kr%16)+1, int(nr%16)+1
		r := rng.New(seed)
		a, b := randTensor(r, m, k), randTensor(r, k, n)
		return Equal(MatMul(a, b), naiveMatMul(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulNTAndTN(t *testing.T) {
	r := rng.New(11)
	a := randTensor(r, 5, 7)
	b := randTensor(r, 4, 7) // B is n×k for NT
	if !Equal(MatMulNT(a, b), MatMul(a, Transpose(b)), 1e-9) {
		t.Fatal("MatMulNT != A·Bᵀ")
	}
	c := randTensor(r, 7, 5) // A is k×m for TN
	d := randTensor(r, 7, 6)
	if !Equal(MatMulTN(c, d), MatMul(Transpose(c), d), 1e-9) {
		t.Fatal("MatMulTN != Aᵀ·B")
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64, mr, nr uint8) bool {
		m, n := int(mr%12)+1, int(nr%12)+1
		a := randTensor(rng.New(seed), m, n)
		return Equal(Transpose(Transpose(a)), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := MatVec(a, []float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MatVec wrong: %v", y)
	}
}

func TestParallelCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 3, 17, 100, 1000} {
		hits := make([]int32, n)
		Parallel(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	sum := 0
	Parallel(10, func(i int) { sum += i }) // safe with 1 worker
	if sum != 45 {
		t.Fatalf("single-worker Parallel sum = %d", sum)
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{1, 5, 3}) != 1 {
		t.Fatal("Argmax basic failed")
	}
	if Argmax([]float64{2, 2, 2}) != 0 {
		t.Fatal("Argmax tie should pick first")
	}
	if Argmax([]float64{math.Inf(-1), -4}) != 1 {
		t.Fatal("Argmax with -inf failed")
	}
}

func TestSumNormStats(t *testing.T) {
	x := FromSlice([]float64{3, -4}, 2)
	if x.Sum() != -1 {
		t.Fatal("Sum wrong")
	}
	if x.L2Norm() != 5 {
		t.Fatal("L2Norm wrong")
	}
	if x.MaxAbs() != 4 {
		t.Fatal("MaxAbs wrong")
	}
}
