// AVX2+FMA micro-kernel for the packed blocked GEMM engine (gemm.go).
//
// gemmMicroFMA computes the 4×8 accumulator tile
//
//	acc[r][c] = Σ_p ap[p*4+r] · bp[p*8+c]
//
// over kc packed columns. The eight YMM accumulators (Y0..Y7: row r in
// Y(2r) cols 0-3 and Y(2r+1) cols 4-7) stay resident for the whole loop;
// each packed column costs two 4-wide loads of bp, four broadcasts of ap
// lanes, and eight fused multiply-adds — FMA-throughput-bound on any
// core with two FMA ports. p advances in ascending order, one lane per
// output element, so the summation order matches the scalar fallback and
// results are deterministic for a fixed kernel choice.

#include "textflag.h"

// func gemmMicroFMA(ap, bp *float64, kc int, acc *[32]float64)
TEXT ·gemmMicroFMA(SB), NOSPLIT, $0-32
	MOVQ ap+0(FP), DI
	MOVQ bp+8(FP), SI
	MOVQ kc+16(FP), CX
	MOVQ acc+24(FP), DX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	MOVQ CX, BX
	SHRQ $1, CX   // unrolled 2×: CX counts column pairs, BX keeps parity
	JZ   tail

loop:
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (DI), Y10
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 8(DI), Y11
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 16(DI), Y12
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VBROADCASTSD 24(DI), Y13
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7

	VMOVUPD      64(SI), Y8
	VMOVUPD      96(SI), Y9
	VBROADCASTSD 32(DI), Y10
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 40(DI), Y11
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 48(DI), Y12
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VBROADCASTSD 56(DI), Y13
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7

	ADDQ $64, DI
	ADDQ $128, SI
	DECQ CX
	JNE  loop

tail:
	ANDQ $1, BX
	JZ   store

	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (DI), Y10
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 8(DI), Y11
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 16(DI), Y12
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VBROADCASTSD 24(DI), Y13
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7

store:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VMOVUPD Y4, 128(DX)
	VMOVUPD Y5, 160(DX)
	VMOVUPD Y6, 192(DX)
	VMOVUPD Y7, 224(DX)
	VZEROUPPER
	RET

// func gemmCPUSupportsFMA() bool
//
// True when the CPU reports FMA, AVX and AVX2 and the OS has enabled
// XMM+YMM state saving (OSXSAVE set and XCR0 bits 1-2 set). Checked once
// at package init; the kernel choice never changes afterwards.
TEXT ·gemmCPUSupportsFMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<12 | 1<<27 | 1<<28), CX   // FMA, OSXSAVE, AVX
	CMPL CX, $(1<<12 | 1<<27 | 1<<28)
	JNE  nofma
	MOVL $7, AX
	XORL CX, CX
	CPUID
	BTL  $5, BX                         // AVX2
	JCC  nofma
	XORL CX, CX
	XGETBV
	ANDL $6, AX                         // XCR0: XMM and YMM state enabled
	CMPL AX, $6
	JNE  nofma
	MOVB $1, ret+0(FP)
	RET

nofma:
	MOVB $0, ret+0(FP)
	RET
