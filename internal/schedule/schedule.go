// Package schedule implements the hardware-specific scheduling algorithm of
// the paper (§III-D2): the private mapping from locked neurons to the
// accumulator columns of the matrix-multiply unit.
//
// A large DNN has far more locked neurons than the MMU has accumulator
// units, so many neurons share one column — and therefore one HPNN key bit.
// The model owner uses the same schedule during training (to derive each
// neuron's key bit) that the hardware uses at inference time, and the
// schedule itself is kept private as a second line of defence: an attacker
// who somehow learned the 256-bit key would still not know which neuron is
// governed by which bit.
package schedule

import (
	"fmt"

	"hpnn/internal/rng"
)

// Schedule deterministically assigns neurons to accumulator columns. It is
// parameterized by the column count of the target hardware and a private
// seed (the "scheduling secret").
type Schedule struct {
	columns int
	seed    uint64
}

// New creates a schedule for hardware with the given number of accumulator
// columns (256 for the Google-TPU-like device of the paper).
func New(columns int, seed uint64) *Schedule {
	if columns <= 0 {
		panic(fmt.Sprintf("schedule: invalid column count %d", columns))
	}
	return &Schedule{columns: columns, seed: seed}
}

// Columns returns the hardware column count.
func (s *Schedule) Columns() int { return s.columns }

// layerPerm returns the keyed column permutation for a layer. Each layer
// gets its own permutation so identical neuron indices in different layers
// map to unrelated columns.
func (s *Schedule) layerPerm(layerID string) []int {
	h := s.seed
	for _, c := range layerID {
		h = rng.Mix64(h ^ uint64(c))
	}
	return rng.NewStream(h, rng.Mix64(h)).Perm(s.columns)
}

// Assign maps the neurons of one locked layer to accumulator columns.
// Neurons are tiled across the MMU in output order (the natural systolic
// streaming order), then routed through the layer's private permutation:
// column(j) = perm[j mod columns]. The result has one entry per neuron.
func (s *Schedule) Assign(layerID string, neurons int) []int {
	if neurons < 0 {
		panic("schedule: negative neuron count")
	}
	perm := s.layerPerm(layerID)
	out := make([]int, neurons)
	for j := 0; j < neurons; j++ {
		out[j] = perm[j%s.columns]
	}
	return out
}

// Load returns, for each column, how many neurons of a layer it serves —
// used by the hardware-utilization diagnostics and tests.
func (s *Schedule) Load(layerID string, neurons int) []int {
	load := make([]int, s.columns)
	for _, c := range s.Assign(layerID, neurons) {
		load[c]++
	}
	return load
}
