package schedule

import (
	"testing"
	"testing/quick"
)

func TestAssignDeterministic(t *testing.T) {
	s1 := New(256, 42)
	s2 := New(256, 42)
	a := s1.Assign("conv1", 1000)
	b := s2.Assign("conv1", 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignment diverged at %d", i)
		}
	}
}

func TestAssignSeedPrivacy(t *testing.T) {
	a := New(256, 1).Assign("conv1", 512)
	b := New(256, 2).Assign("conv1", 512)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/8 {
		t.Fatalf("different schedule seeds agree on %d/%d columns — schedule is not private", same, len(a))
	}
}

func TestAssignLayerSeparation(t *testing.T) {
	s := New(256, 7)
	a := s.Assign("conv1", 256)
	b := s.Assign("conv2", 256)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 64 {
		t.Fatalf("layers share %d/256 column assignments — permutations not layer-keyed", same)
	}
}

func TestAssignColumnsInRange(t *testing.T) {
	f := func(seed uint64, colsRaw, nRaw uint16) bool {
		cols := int(colsRaw%500) + 1
		n := int(nRaw % 4096)
		s := New(cols, seed)
		for _, c := range s.Assign("layer", n) {
			if c < 0 || c >= cols {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAssignBalanced: the tiling guarantees near-perfect balance — no
// column serves more than ceil(n/columns) neurons, which is what lets a
// 256-bit key cover hundreds of thousands of locked neurons.
func TestAssignBalanced(t *testing.T) {
	s := New(256, 99)
	load := s.Load("big", 198144) // CNN2's locked-neuron count from Table I
	want := 198144 / 256
	for c, l := range load {
		if l != want {
			t.Fatalf("column %d load %d, want %d", c, l, want)
		}
	}
}

func TestFirstTileIsPermutation(t *testing.T) {
	s := New(128, 5)
	a := s.Assign("layer", 128)
	seen := make([]bool, 128)
	for _, c := range a {
		if seen[c] {
			t.Fatal("first tile must visit each column exactly once")
		}
		seen[c] = true
	}
}

func TestNewPanicsOnBadColumns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, 1)
}

func TestColumnsAccessor(t *testing.T) {
	if New(64, 0).Columns() != 64 {
		t.Fatal("Columns() wrong")
	}
}
