// Package train is the single training engine of the HPNN reproduction:
// every SGD loop in the system — the owner's key-dependent training
// (Eq. 1–4), watermark embedding, and the fine-tuning attack sweeps of
// Table III — is a thin configuration of the Trainer in this package.
//
// The Trainer owns the epoch/step loop and exposes:
//
//   - a pluggable nn.Optimizer selected by name (momentum SGD or Adam);
//   - an LRSchedule (step decay, cosine annealing, linear warmup);
//   - global gradient-norm clipping;
//   - a hook bus (OnStep/OnEpoch/OnEval) carrying step timing and
//     samples/sec, so experiments and CLIs stop re-deriving throughput;
//   - checkpoint/resume: Snapshot captures optimizer slots, the schedule
//     position, the shuffle-seed stream and the trajectory so far, and
//     Restore continues a killed run **bitwise** — the same determinism
//     bar the workspace execution engine pins for single steps.
//
// The steady-state step is allocation-free: the loss-gradient buffer and
// every layer's scratch are reused across steps (see nn.Layer's contract),
// and hook dispatch costs nothing when no hook is installed.
package train

import (
	"fmt"
	"time"

	"hpnn/internal/dataset"
	"hpnn/internal/nn"
	"hpnn/internal/tensor"
)

// Config parameterizes a Trainer. The zero value selects the defaults the
// old inline loops used: 10 epochs, batch 32, LR 0.05, momentum SGD,
// constant schedule, clip norm 5.
type Config struct {
	Epochs    int
	BatchSize int
	// Optimizer selects the update rule by name: "" or "sgd" is SGD with
	// the Momentum/WeightDecay fields below; "adam" is Adam with standard
	// betas (Momentum is ignored, WeightDecay still applies).
	Optimizer   string
	LR          float64
	Momentum    float64
	WeightDecay float64
	// Schedule drives the per-epoch learning rate; nil holds LR constant.
	Schedule LRSchedule
	// ClipNorm caps the global gradient norm per step. 0 selects the
	// default of 5 (which stabilizes high-LR momentum runs); negative
	// values disable clipping.
	ClipNorm float64
	// Seed drives the per-epoch batch shuffle. Epoch e shuffles with
	// ShuffleSeed(Seed, e), a pure function — which is why resume needs no
	// serialized RNG cursor beyond the seed and epoch index.
	Seed uint64
	// Hooks is the observer bus; all fields are optional.
	Hooks Hooks
	// GradAugment, when non-nil, runs after the backward pass and before
	// gradient clipping on every step. It may add regularizer terms to the
	// parameter gradients in place (the watermark embedding path) and
	// returns the extra per-sample loss it contributed, which the Trainer
	// folds into the reported step and epoch losses.
	GradAugment func() float64
	// GradAugments is the generalized hook bus: every entry runs after
	// GradAugment at the same point in the step, under the same contract.
	// In data-parallel runs the hooks execute on the master network after
	// the reduced gradient has landed, so they compose with any replica
	// count (the trigger-set watermark rides here).
	GradAugments []func() float64

	// Replicas selects data-parallel training with K model replicas; 0 (or
	// unset) keeps the sequential step loop bitwise-unchanged. Replicas is
	// purely an execution-width knob: for any K the run is bitwise
	// identical, because the numerics are fixed by GradShards (see
	// replica.go). Replicas must divide GradShards.
	Replicas int
	// GradShards is the number of micro-shards each step's batch is split
	// into — the knob that fixes the gradient-reduction tree shape and
	// therefore the numerics of a data-parallel run. It must be a power of
	// two ≥ Replicas; 0 defaults to 8 when Replicas > 0. Setting
	// GradShards > 0 with Replicas == 0 runs the replica engine with one
	// replica (useful for pinning K-invariance in tests). Note GradShards
	// = 1 reproduces the sequential loop's numerics exactly; GradShards >
	// 1 changes gradient rounding (different but equally valid sums).
	GradShards int
}

func (c Config) withDefaults() Config {
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	if c.Schedule == nil {
		c.Schedule = Constant{Base: c.LR}
	}
	if c.GradShards > 0 && c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Replicas > 0 && c.GradShards == 0 {
		c.GradShards = 8
	}
	return c
}

// Hooks is the Trainer's observer bus. Every field may be nil; dispatch
// is skipped (and step timing not even sampled) for absent hooks.
type Hooks struct {
	// Logf receives one formatted line per epoch.
	Logf func(format string, args ...any)
	// OnStep runs after every optimizer step with timing information.
	OnStep func(StepInfo)
	// OnEval runs after every test-set evaluation.
	OnEval func(epoch int, acc float64)
	// OnEpoch runs at the end of every epoch; returning false stops the
	// run early (the hook point for checkpointing and early stopping).
	OnEpoch func(EpochInfo) bool
}

// StepInfo describes one completed optimizer step.
type StepInfo struct {
	Epoch      int // 0-based epoch index
	Step       int // 0-based step within the epoch
	GlobalStep int // steps completed by this Trainer across epochs
	Loss       float64
	Batch      int // samples in this step's minibatch
	LR         float64
	Duration   time.Duration
}

// EpochInfo describes one completed epoch.
type EpochInfo struct {
	Epoch   int
	Loss    float64 // mean training loss over the epoch
	TestAcc float64 // valid when HasEval
	HasEval bool
	Steps   int
	Samples int
	// Duration covers the training steps only (evaluation excluded), so
	// SamplesPerSec is a pure training-throughput figure.
	Duration      time.Duration
	SamplesPerSec float64
	// Trajectory is a read-only view of the run's per-epoch series so far.
	Trajectory Result
	// Snapshot captures the full resumable state at this epoch boundary;
	// pair it with the model in a modelio checkpoint record.
	Snapshot func() State
}

// Result records the per-epoch trajectory of a run — the raw series
// behind the accuracy-vs-epoch curves of Figs. 5 and 6.
type Result struct {
	EpochLoss []float64
	TestAcc   []float64
	// Stopped is true when an OnEpoch hook ended the run early.
	Stopped bool
}

// State is everything beyond the model weights that a bitwise resume
// needs: where the run is (NextEpoch doubles as the LR-schedule position
// and — with Seed — the shuffle-stream position), the optimizer's slot
// state, and the trajectory recorded so far. modelio serializes it next
// to the model in a versioned checkpoint record.
type State struct {
	NextEpoch int
	Seed      uint64
	Schedule  string // descriptor of the schedule that produced the run
	Optimizer nn.OptState
	EpochLoss []float64
	TestAcc   []float64
	// Shards records the gradient micro-shard count the run was produced
	// with (0 for the sequential loop). The replica count is deliberately
	// NOT recorded: a run trained at K=4 resumes bitwise at K=2, because
	// only Shards fixes the numerics.
	Shards int
}

// DataSizeError reports a sample/label count mismatch. It replaces the
// panic the old inline loop raised; core.Train keeps a panicking shim for
// legacy callers.
type DataSizeError struct {
	Samples, Labels int
}

// Error implements error.
func (e *DataSizeError) Error() string {
	return fmt.Sprintf("train: %d samples vs %d labels", e.Samples, e.Labels)
}

// ShuffleSeed derives epoch e's batch-shuffle seed from the run seed —
// the single formula shared by every training path (owner, watermark,
// attack), replacing the divergent per-package variants.
func ShuffleSeed(seed uint64, epoch int) uint64 {
	return seed + uint64(epoch)*0x9e37 + 1
}

// Trainer owns the epoch/step loop. Build with New, optionally Restore a
// checkpoint, then Run.
type Trainer struct {
	net    *nn.Network
	cfg    Config
	opt    nn.Optimizer
	params []*nn.Param
	loss   nn.SoftmaxCrossEntropy

	// gradBuf is the reused loss-gradient buffer; together with the
	// layers' own scratch it makes the steady-state step allocation-free.
	gradBuf    *tensor.Tensor
	nextEpoch  int
	globalStep int
	res        Result

	// eng is the data-parallel gradient engine, nil for the sequential
	// loop (Replicas == 0 and GradShards == 0).
	eng *replicaEngine
}

// New builds a Trainer for net. It validates the optimizer name and the
// replica/shard configuration; the schedule defaults to a constant LR.
func New(net *nn.Network, cfg Config) (*Trainer, error) {
	cfg = cfg.withDefaults()
	opt, err := newOptimizer(cfg)
	if err != nil {
		return nil, err
	}
	t := &Trainer{net: net, cfg: cfg, opt: opt, params: net.Params()}
	if cfg.Replicas < 0 || cfg.GradShards < 0 {
		return nil, fmt.Errorf("train: negative replicas (%d) or grad shards (%d)", cfg.Replicas, cfg.GradShards)
	}
	if cfg.Replicas > 0 {
		s := cfg.GradShards
		if s&(s-1) != 0 {
			return nil, fmt.Errorf("train: grad shards %d is not a power of two", s)
		}
		if cfg.Replicas > s || s%cfg.Replicas != 0 {
			return nil, fmt.Errorf("train: %d replicas must divide %d grad shards (set GradShards explicitly for K > 8)", cfg.Replicas, s)
		}
		t.eng = newReplicaEngine(net, cfg)
	}
	return t, nil
}

// shardCount reports the effective micro-shard count: cfg.GradShards for
// data-parallel runs, 0 for the sequential loop. It is what checkpoints
// record and validate, since it alone fixes the run's numerics.
func (t *Trainer) shardCount() int {
	if t.eng == nil {
		return 0
	}
	return t.cfg.GradShards
}

func newOptimizer(cfg Config) (nn.Optimizer, error) {
	switch cfg.Optimizer {
	case "", "sgd":
		return nn.NewMomentumSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay), nil
	case "adam":
		a := nn.NewAdam(cfg.LR)
		a.WeightDecay = cfg.WeightDecay
		return a, nil
	default:
		return nil, fmt.Errorf("train: unknown optimizer %q (want sgd or adam)", cfg.Optimizer)
	}
}

// Optimizer returns the Trainer's optimizer (tests and diagnostics).
func (t *Trainer) Optimizer() nn.Optimizer { return t.opt }

// Snapshot captures the resumable state at the current epoch boundary.
// It deep-copies optimizer slots and trajectory, so the snapshot is
// immune to further training.
func (t *Trainer) Snapshot() State {
	return State{
		NextEpoch: t.nextEpoch,
		Seed:      t.cfg.Seed,
		Schedule:  t.cfg.Schedule.String(),
		Optimizer: t.opt.ExportState(t.params),
		EpochLoss: append([]float64(nil), t.res.EpochLoss...),
		TestAcc:   append([]float64(nil), t.res.TestAcc...),
		Shards:    t.shardCount(),
	}
}

// Restore positions the Trainer at a checkpointed epoch boundary: the
// optimizer slots, trajectory, and epoch cursor are loaded so the next
// Run continues the original sequence bitwise. It must be called before
// Run, on a network already holding the checkpointed weights and lock
// bits (modelio.LoadCheckpoint does both).
func (t *Trainer) Restore(st State) error {
	if st.NextEpoch < 0 || st.NextEpoch > t.cfg.Epochs {
		return fmt.Errorf("train: checkpoint at epoch %d outside the %d-epoch run", st.NextEpoch, t.cfg.Epochs)
	}
	if st.Seed != t.cfg.Seed {
		return fmt.Errorf("train: checkpoint shuffle seed %d does not match configured %d", st.Seed, t.cfg.Seed)
	}
	if st.Schedule != "" && st.Schedule != t.cfg.Schedule.String() {
		return fmt.Errorf("train: checkpoint schedule %q does not match configured %q", st.Schedule, t.cfg.Schedule)
	}
	if st.Shards != t.shardCount() {
		return fmt.Errorf("train: checkpoint used %d grad shards but trainer is configured for %d (the replica count may change freely, the shard count may not)", st.Shards, t.shardCount())
	}
	if err := t.opt.ImportState(t.params, st.Optimizer); err != nil {
		return err
	}
	t.nextEpoch = st.NextEpoch
	t.res = Result{
		EpochLoss: append([]float64(nil), st.EpochLoss...),
		TestAcc:   append([]float64(nil), st.TestAcc...),
	}
	return nil
}

// Run trains on (x, y) with softmax cross-entropy until cfg.Epochs (or an
// OnEpoch hook stops it). eval, when non-nil, is called after every epoch
// and its result recorded in the TestAcc trajectory — callers pass a
// closure over their model's Accuracy. Run continues from the restored
// epoch after Restore.
func (t *Trainer) Run(x *tensor.Tensor, y []int, eval func() float64) (Result, error) {
	n := 0
	if x != nil {
		n = x.Shape[0]
	}
	if x == nil || n != len(y) {
		return t.res, &DataSizeError{Samples: n, Labels: len(y)}
	}
	if t.eng != nil {
		defer t.eng.stop()
	}
	for epoch := t.nextEpoch; epoch < t.cfg.Epochs; epoch++ {
		lr := t.cfg.Schedule.LR(epoch)
		t.opt.SetLR(lr)
		batches := dataset.Batches(x, y, t.cfg.BatchSize, ShuffleSeed(t.cfg.Seed, epoch))
		start := time.Now()
		lossSum := 0.0
		for si, b := range batches {
			lossSum += t.step(b, epoch, si, lr) * float64(len(b.Y))
		}
		dur := time.Since(start)
		t.nextEpoch = epoch + 1
		epochLoss := lossSum / float64(len(y))
		t.res.EpochLoss = append(t.res.EpochLoss, epochLoss)

		info := EpochInfo{
			Epoch:    epoch,
			Loss:     epochLoss,
			Steps:    len(batches),
			Samples:  len(y),
			Duration: dur,
		}
		if secs := dur.Seconds(); secs > 0 {
			info.SamplesPerSec = float64(len(y)) / secs
		}
		if eval != nil {
			acc := eval()
			t.res.TestAcc = append(t.res.TestAcc, acc)
			info.TestAcc, info.HasEval = acc, true
			if h := t.cfg.Hooks.OnEval; h != nil {
				h(epoch, acc)
			}
			if logf := t.cfg.Hooks.Logf; logf != nil {
				logf("epoch %2d  loss %.4f  test acc %.4f", epoch+1, epochLoss, acc)
			}
		} else if logf := t.cfg.Hooks.Logf; logf != nil {
			logf("epoch %2d  loss %.4f", epoch+1, epochLoss)
		}
		if h := t.cfg.Hooks.OnEpoch; h != nil {
			info.Trajectory = t.res
			info.Snapshot = t.Snapshot
			if !h(info) {
				t.res.Stopped = true
				break
			}
		}
	}
	return t.res, nil
}

// step runs one forward/loss/backward/clip/update cycle and returns the
// mean batch loss (including any GradAugment contribution). It is the
// only place in the codebase that advances model weights.
func (t *Trainer) step(b dataset.Batch, epoch, stepIdx int, lr float64) float64 {
	timed := t.cfg.Hooks.OnStep != nil
	var begin time.Time
	if timed {
		begin = time.Now()
	}
	var l float64
	if t.eng != nil {
		l = t.eng.gradStep(b, t.globalStep)
	} else {
		out := t.net.Forward(b.X, true)
		var g *tensor.Tensor
		l, g = t.loss.LossInto(t.gradBuf, out, b.Y)
		t.gradBuf = g
		t.net.Backward(g)
	}
	if t.cfg.GradAugment != nil {
		l += t.cfg.GradAugment()
	}
	for _, h := range t.cfg.GradAugments {
		l += h()
	}
	if t.cfg.ClipNorm > 0 {
		nn.ClipGradNorm(t.params, t.cfg.ClipNorm)
	}
	t.opt.Step(t.params)
	t.globalStep++
	if timed {
		t.cfg.Hooks.OnStep(StepInfo{
			Epoch:      epoch,
			Step:       stepIdx,
			GlobalStep: t.globalStep - 1,
			Loss:       l,
			Batch:      len(b.Y),
			LR:         lr,
			Duration:   time.Since(begin),
		})
	}
	return l
}
