package train

import (
	"fmt"
	"math"

	"hpnn/internal/nn"
)

// LRSchedule maps a 0-based epoch index to a learning rate. Schedules are
// pure functions of the epoch, which is what makes a resumed run bitwise
// identical to an uninterrupted one: the checkpoint only needs to record
// the epoch position, not any schedule-internal state.
//
// String returns a stable descriptor recorded in checkpoints so that
// resuming under different hyperparameters fails loudly instead of
// silently continuing on the wrong curve.
type LRSchedule interface {
	LR(epoch int) float64
	String() string
}

// Constant holds the learning rate fixed for the whole run.
type Constant struct {
	Base float64
}

// LR implements LRSchedule.
func (c Constant) LR(int) float64 { return c.Base }

// String implements LRSchedule.
func (c Constant) String() string { return fmt.Sprintf("const(%g)", c.Base) }

// StepDecay multiplies the base rate by Factor every Every epochs — the
// schedule of the paper's longer CNN runs. Every <= 0 disables decay.
type StepDecay struct {
	Base   float64
	Every  int
	Factor float64
}

// LR implements LRSchedule.
func (s StepDecay) LR(epoch int) float64 {
	return nn.StepDecay(s.Base, epoch, s.Every, s.Factor)
}

// String implements LRSchedule.
func (s StepDecay) String() string {
	return fmt.Sprintf("step(%g,every=%d,factor=%g)", s.Base, s.Every, s.Factor)
}

// Cosine anneals from Base to Min over Epochs epochs following half a
// cosine period: LR(0) = Base, LR(Epochs-1) = Min, epochs beyond the
// horizon stay at Min.
type Cosine struct {
	Base   float64
	Min    float64
	Epochs int
}

// LR implements LRSchedule.
func (c Cosine) LR(epoch int) float64 {
	if epoch <= 0 || c.Epochs <= 1 {
		return c.Base
	}
	if epoch >= c.Epochs-1 {
		return c.Min
	}
	frac := float64(epoch) / float64(c.Epochs-1)
	return c.Min + 0.5*(c.Base-c.Min)*(1+math.Cos(math.Pi*frac))
}

// String implements LRSchedule.
func (c Cosine) String() string {
	return fmt.Sprintf("cosine(%g→%g,epochs=%d)", c.Base, c.Min, c.Epochs)
}

// LinearWarmup ramps linearly from Next.LR(0)/Epochs up to Next.LR(0)
// over the first Epochs epochs, then hands off to Next with the epoch
// index shifted so Next starts from its own epoch 0. The handoff is
// continuous: LR(Epochs) == Next.LR(0).
type LinearWarmup struct {
	Epochs int
	Next   LRSchedule
}

// LR implements LRSchedule.
func (w LinearWarmup) LR(epoch int) float64 {
	if w.Epochs > 0 && epoch < w.Epochs {
		return w.Next.LR(0) * float64(epoch+1) / float64(w.Epochs)
	}
	return w.Next.LR(epoch - w.Epochs)
}

// String implements LRSchedule.
func (w LinearWarmup) String() string {
	return fmt.Sprintf("warmup(%d)+%s", w.Epochs, w.Next)
}
