package train

import (
	"math"
	"testing"
)

// TestStepDecayBoundaries pins the step schedule at its edges: epoch 0,
// decay disabled (Every = 0), and exact decay multiples.
func TestStepDecayBoundaries(t *testing.T) {
	s := StepDecay{Base: 0.1, Every: 2, Factor: 0.5}
	if got := s.LR(0); got != 0.1 {
		t.Fatalf("epoch 0: %v, want base", got)
	}
	if got := s.LR(1); got != 0.1 {
		t.Fatalf("epoch 1 (below first boundary): %v, want base", got)
	}
	if got := s.LR(2); got != 0.05 {
		t.Fatalf("epoch 2 (exact multiple): %v, want 0.05", got)
	}
	if got := s.LR(3); got != 0.05 {
		t.Fatalf("epoch 3: %v, want 0.05", got)
	}
	if got := s.LR(4); math.Abs(got-0.025) > 1e-15 {
		t.Fatalf("epoch 4 (second multiple): %v, want 0.025", got)
	}

	off := StepDecay{Base: 0.1, Every: 0, Factor: 0.5}
	for _, e := range []int{0, 1, 7, 100} {
		if got := off.LR(e); got != 0.1 {
			t.Fatalf("decay-every=0 epoch %d: %v, want base", e, got)
		}
	}
}

// TestCosineEndpoints: the cosine schedule starts exactly at Base, ends
// exactly at Min, decreases monotonically in between, and stays at Min
// past its horizon.
func TestCosineEndpoints(t *testing.T) {
	c := Cosine{Base: 0.2, Min: 0.01, Epochs: 8}
	if got := c.LR(0); got != 0.2 {
		t.Fatalf("cosine start: %v, want base 0.2", got)
	}
	if got := c.LR(7); got != 0.01 {
		t.Fatalf("cosine end: %v, want min 0.01", got)
	}
	if got := c.LR(100); got != 0.01 {
		t.Fatalf("past horizon: %v, want min", got)
	}
	prev := c.LR(0)
	for e := 1; e < 8; e++ {
		cur := c.LR(e)
		if cur >= prev {
			t.Fatalf("cosine not strictly decreasing at epoch %d: %v >= %v", e, cur, prev)
		}
		prev = cur
	}
	// Midpoint of the half-period sits halfway between Base and Min.
	mid := c.LR(3) + c.LR(4)
	want := 0.2 + 0.01 // symmetric pair around the midpoint sums to Base+Min
	if math.Abs(mid-want) > 1e-12 {
		t.Fatalf("cosine symmetry broken: LR(3)+LR(4) = %v, want %v", mid, want)
	}

	// Degenerate horizons never divide by zero.
	one := Cosine{Base: 0.2, Min: 0.01, Epochs: 1}
	if got := one.LR(0); got != 0.2 {
		t.Fatalf("1-epoch cosine: %v, want base", got)
	}
}

// TestWarmupHandoff: the linear ramp reaches the wrapped schedule's
// starting rate exactly at the handoff epoch, and the wrapped schedule
// then proceeds from its own epoch 0.
func TestWarmupHandoff(t *testing.T) {
	base := StepDecay{Base: 0.1, Every: 2, Factor: 0.5}
	w := LinearWarmup{Epochs: 4, Next: base}
	for e := 0; e < 4; e++ {
		want := 0.1 * float64(e+1) / 4
		if got := w.LR(e); math.Abs(got-want) > 1e-15 {
			t.Fatalf("warmup epoch %d: %v, want %v", e, got, want)
		}
	}
	if got := w.LR(4); got != base.LR(0) {
		t.Fatalf("handoff: %v, want %v (Next.LR(0))", got, base.LR(0))
	}
	if got := w.LR(6); got != base.LR(2) {
		t.Fatalf("post-handoff shift: LR(6)=%v, want Next.LR(2)=%v", got, base.LR(2))
	}

	// Warmup into cosine: ramp top equals the cosine start.
	wc := LinearWarmup{Epochs: 2, Next: Cosine{Base: 0.3, Min: 0, Epochs: 6}}
	if got := wc.LR(2); got != 0.3 {
		t.Fatalf("warmup→cosine handoff: %v, want 0.3", got)
	}
	if got := wc.LR(7); got != 0 {
		t.Fatalf("warmup→cosine endpoint: %v, want 0", got)
	}
}

// TestScheduleDescriptors: descriptors are stable and distinguish
// configurations — the property the checkpoint resume check relies on.
func TestScheduleDescriptors(t *testing.T) {
	a := StepDecay{Base: 0.1, Every: 2, Factor: 0.5}.String()
	b := StepDecay{Base: 0.1, Every: 3, Factor: 0.5}.String()
	if a == b {
		t.Fatal("different step schedules share a descriptor")
	}
	w := LinearWarmup{Epochs: 2, Next: Cosine{Base: 0.3, Min: 0, Epochs: 6}}.String()
	if w != "warmup(2)+cosine(0.3→0,epochs=6)" {
		t.Fatalf("unexpected composite descriptor %q", w)
	}
}
