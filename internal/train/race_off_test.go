//go:build !race

package train

const raceEnabled = false
