package train_test

// Kill/resume determinism: a training run interrupted at epoch k and
// resumed from its checkpoint must reproduce the uninterrupted run
// BITWISE — identical final weights, identical lock bits, identical
// test-accuracy trajectory. This is the acceptance bar for the Trainer's
// Snapshot/Restore contract and the modelio checkpoint record, exercised
// here end-to-end on a locked (key-engaged) model for both optimizers.

import (
	"math"
	"path/filepath"
	"testing"

	"hpnn/internal/core"
	"hpnn/internal/dataset"
	"hpnn/internal/keys"
	"hpnn/internal/modelio"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
	"hpnn/internal/train"
)

// lockedModel builds the small locked MLP all resume tests share, with
// the owner's key engaged so training runs the key-dependent backprop
// path.
func lockedModel(t *testing.T) *core.Model {
	t.Helper()
	m, err := core.NewModel(core.Config{Arch: core.MLP, InC: 1, InH: 12, InW: 12, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	m.ApplyRawKey(keys.Generate(rng.New(78)), schedule.New(keys.KeyBits, 79))
	return m
}

func resumeData(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{Name: "fashion", TrainN: 80, TestN: 40, H: 12, W: 12, Seed: 80})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func modelBits(m *core.Model) []uint64 {
	var out []uint64
	for _, p := range m.Net.Params() {
		for _, v := range p.Value.Data {
			out = append(out, math.Float64bits(v))
		}
	}
	return out
}

func sameF64sBitwise(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func resumeTrainCfg(optimizer string) core.TrainConfig {
	return core.TrainConfig{
		Epochs: 6, BatchSize: 16, Optimizer: optimizer,
		LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4,
		LRDecayEvery: 2, LRDecayFactor: 0.5, Seed: 81,
	}
}

func TestBitwiseResume(t *testing.T) {
	for _, optimizer := range []string{"sgd", "adam"} {
		t.Run(optimizer, func(t *testing.T) {
			ds := resumeData(t)
			cfg := resumeTrainCfg(optimizer)
			const killAfter = 3 // epochs completed before the "crash"

			// Reference: the uninterrupted run.
			straight := lockedModel(t)
			wantRes, err := core.TrainChecked(straight, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted run: checkpoint at every epoch boundary, kill
			// after killAfter epochs.
			ckpt := filepath.Join(t.TempDir(), "run.ckpt")
			killed := lockedModel(t)
			killCfg := cfg
			killCfg.Hooks.OnEpoch = func(info train.EpochInfo) bool {
				if err := modelio.SaveCheckpointFile(ckpt, killed, info.Snapshot()); err != nil {
					t.Fatalf("checkpoint write: %v", err)
				}
				return info.Epoch+1 < killAfter
			}
			if _, err := core.TrainChecked(killed, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, killCfg); err != nil {
				t.Fatal(err)
			}

			// Resume from the checkpoint into a fresh process-equivalent:
			// the model (weights + lock bits) and trainer state both come
			// from the file.
			resumed, st, err := modelio.LoadCheckpointFile(ckpt)
			if err != nil {
				t.Fatal(err)
			}
			if st.NextEpoch != killAfter {
				t.Fatalf("checkpoint resumes at epoch %d, want %d", st.NextEpoch, killAfter)
			}
			resumeCfg := cfg
			resumeCfg.Resume = &st
			gotRes, err := core.TrainChecked(resumed, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, resumeCfg)
			if err != nil {
				t.Fatal(err)
			}

			// Bitwise-identical weights.
			want, got := modelBits(straight), modelBits(resumed)
			if len(want) != len(got) {
				t.Fatalf("parameter count mismatch: %d vs %d", len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("resumed weights diverge at scalar %d", i)
				}
			}
			// Identical lock bits (and still engaged).
			wantKey, gotKey := straight.KeyBits(), resumed.KeyBits()
			if len(wantKey) != len(gotKey) {
				t.Fatalf("lock bit count mismatch: %d vs %d", len(wantKey), len(gotKey))
			}
			for i := range wantKey {
				if wantKey[i] != gotKey[i] {
					t.Fatalf("lock bits diverge at neuron %d", i)
				}
			}
			// The resumed result carries the FULL trajectory — restored
			// prefix plus post-resume epochs — identical to the straight run.
			if !sameF64sBitwise(wantRes.TestAcc, gotRes.TestAcc) {
				t.Fatalf("test-acc curves diverge:\nstraight %v\nresumed  %v", wantRes.TestAcc, gotRes.TestAcc)
			}
			if !sameF64sBitwise(wantRes.EpochLoss, gotRes.EpochLoss) {
				t.Fatalf("loss curves diverge:\nstraight %v\nresumed  %v", wantRes.EpochLoss, gotRes.EpochLoss)
			}
		})
	}
}

// TestResumeValidation: a checkpoint only restores into a compatible run —
// wrong shuffle seed, wrong schedule, or an epoch cursor beyond the run
// are rejected rather than silently producing a divergent continuation.
func TestResumeValidation(t *testing.T) {
	ds := resumeData(t)
	cfg := resumeTrainCfg("sgd")
	cfg.Epochs = 2
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	m := lockedModel(t)
	cfg.Hooks.OnEpoch = func(info train.EpochInfo) bool {
		if err := modelio.SaveCheckpointFile(ckpt, m, info.Snapshot()); err != nil {
			t.Fatalf("checkpoint write: %v", err)
		}
		return true
	}
	if _, err := core.TrainChecked(m, ds.TrainX, ds.TrainY, nil, nil, cfg); err != nil {
		t.Fatal(err)
	}

	load := func() (*core.Model, train.State) {
		t.Helper()
		back, st, err := modelio.LoadCheckpointFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		return back, st
	}
	base := resumeTrainCfg("sgd")
	base.Epochs = 2
	base.Hooks = train.Hooks{}

	wrongSeed := base
	wrongSeed.Seed = 999
	back, st := load()
	wrongSeed.Resume = &st
	if _, err := core.TrainChecked(back, ds.TrainX, ds.TrainY, nil, nil, wrongSeed); err == nil {
		t.Fatal("resume with a different shuffle seed accepted")
	}

	wrongSched := base
	wrongSched.Schedule = "cosine"
	back, st = load()
	wrongSched.Resume = &st
	if _, err := core.TrainChecked(back, ds.TrainX, ds.TrainY, nil, nil, wrongSched); err == nil {
		t.Fatal("resume with a different LR schedule accepted")
	}

	wrongOpt := base
	wrongOpt.Optimizer = "adam"
	back, st = load()
	wrongOpt.Resume = &st
	if _, err := core.TrainChecked(back, ds.TrainX, ds.TrainY, nil, nil, wrongOpt); err == nil {
		t.Fatal("resume into a different optimizer accepted")
	}

	tooShort := base
	tooShort.Epochs = 1
	back, st = load()
	tooShort.Resume = &st
	if st.NextEpoch != 2 {
		t.Fatalf("checkpoint at epoch %d, want 2", st.NextEpoch)
	}
	if _, err := core.TrainChecked(back, ds.TrainX, ds.TrainY, nil, nil, tooShort); err == nil {
		t.Fatal("resume beyond the configured epoch count accepted")
	}
}
