package train

import (
	"math"
	"strings"
	"testing"

	"hpnn/internal/dataset"
	"hpnn/internal/nn"
	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// convLockNet builds a small network exercising every layer family the
// replica engine must handle: convolution, batch norm, locks, a residual
// block, pooling and (optionally) dropout — over [N, 2, 8, 8] inputs with
// 4 classes. Lock bits are programmed deterministically from seed.
func convLockNet(seed uint64, withDropout bool) *nn.Network {
	r := rng.New(seed)
	g := tensor.ConvGeom{InC: 2, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	g2 := tensor.ConvGeom{InC: 4, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	body := nn.NewNetwork(nn.NewConv2D(g2, 4).InitHe(r), nn.NewBatchNorm2D(4))
	post := nn.NewNetwork(nn.NewLock("res.lock", 4*8*8), nn.NewReLU())
	layers := []nn.Layer{
		nn.NewConv2D(g, 4).InitHe(r),
		nn.NewBatchNorm2D(4),
		nn.NewLock("l1", 4*8*8),
		nn.NewReLU(),
		nn.NewResidual(body, nil, post),
		nn.NewMaxPool(tensor.ConvGeom{InC: 4, InH: 8, InW: 8, KH: 2, KW: 2, Stride: 2}),
		nn.NewFlatten(),
	}
	if withDropout {
		layers = append(layers, nn.NewDropout(0.1, rng.New(seed+99)))
	}
	layers = append(layers, nn.NewDense(4*4*4, 4).InitHe(r))
	net := nn.NewNetwork(layers...)
	bitsRng := rng.New(seed + 7)
	for _, l := range net.Locks() {
		bits := make([]byte, l.Neurons())
		for i := range bits {
			bits[i] = byte(bitsRng.Intn(2))
		}
		l.SetBits(bits)
	}
	return net
}

// convData builds a deterministic [n, 2, 8, 8] batch with 4-way labels.
func convData(seed uint64, n int) (*tensor.Tensor, []int) {
	r := rng.New(seed)
	x := tensor.New(n, 2, 8, 8)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	y := make([]int, n)
	for i := range y {
		y[i] = r.Intn(4)
	}
	return x, y
}

// stateBits captures everything a bitwise comparison must cover: parameter
// values, batch-norm running statistics and lock bits.
func stateBits(net *nn.Network) []uint64 {
	out := netBits(net)
	for _, bn := range net.BatchNorms() {
		for _, v := range bn.RunMean.Data {
			out = append(out, math.Float64bits(v))
		}
		for _, v := range bn.RunVar.Data {
			out = append(out, math.Float64bits(v))
		}
	}
	for _, l := range net.Locks() {
		for _, b := range l.Bits() {
			out = append(out, uint64(b))
		}
	}
	return out
}

func sameBits(t *testing.T, label string, want, got []uint64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: state length %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: diverges at scalar %d", label, i)
		}
	}
}

// TestReplicaS1MatchesLegacy: with one micro-shard covering the whole
// batch, the replica engine must reproduce the sequential loop bitwise —
// weights, batch-norm running statistics, lock bits and the loss
// trajectory. The data size is chosen so the final batch is short.
func TestReplicaS1MatchesLegacy(t *testing.T) {
	x, y := convData(3, 30)
	base := Config{Epochs: 2, BatchSize: 12, LR: 0.05, Momentum: 0.9, Seed: 11}

	legacy := convLockNet(5, false)
	trL, err := New(legacy, base)
	if err != nil {
		t.Fatal(err)
	}
	resL, err := trL.Run(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}

	rep := convLockNet(5, false)
	cfg := base
	cfg.Replicas, cfg.GradShards = 1, 1
	trR, err := New(rep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resR, err := trR.Run(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}

	sameBits(t, "replica S=1 vs legacy", stateBits(legacy), stateBits(rep))
	for i := range resL.EpochLoss {
		if math.Float64bits(resL.EpochLoss[i]) != math.Float64bits(resR.EpochLoss[i]) {
			t.Fatalf("epoch %d loss %v vs %v", i, resL.EpochLoss[i], resR.EpochLoss[i])
		}
	}
}

// TestReplicaBitwiseAcrossK: for a fixed GradShards the run is bitwise
// identical for every replica count that divides it and for any worker-pool
// width — the replica count and SetMaxWorkers are pure execution knobs.
// The dropout layer exercises the canonical per-(step, shard) reseeding;
// the short final batch (30 % 12 = 6 rows over 8 shards) exercises empty
// ∅ leaves in the reduction tree.
func TestReplicaBitwiseAcrossK(t *testing.T) {
	x, y := convData(4, 30)
	run := func(k, workers int) ([]uint64, []float64) {
		if workers > 0 {
			old := tensor.SetMaxWorkers(workers)
			defer tensor.SetMaxWorkers(old)
		}
		net := convLockNet(6, true)
		cfg := Config{Epochs: 2, BatchSize: 12, LR: 0.05, Momentum: 0.9, Seed: 13,
			Replicas: k, GradShards: 8}
		tr, err := New(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Run(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		return stateBits(net), res.EpochLoss
	}

	wantState, wantLoss := run(1, 0)
	for _, k := range []int{2, 4, 8} {
		gotState, gotLoss := run(k, 0)
		sameBits(t, "K variant", wantState, gotState)
		for i := range wantLoss {
			if math.Float64bits(wantLoss[i]) != math.Float64bits(gotLoss[i]) {
				t.Fatalf("K=%d epoch %d loss %v vs %v", k, i, gotLoss[i], wantLoss[i])
			}
		}
	}
	for _, w := range []int{1, 2, 8} {
		gotState, _ := run(4, w)
		sameBits(t, "worker variant", wantState, gotState)
	}
}

// TestReplicaConfigValidation: the shard/replica geometry is validated at
// construction, and GradShards alone implies a one-replica engine.
func TestReplicaConfigValidation(t *testing.T) {
	bad := []Config{
		{Replicas: 2, GradShards: 6}, // not a power of two
		{Replicas: 3, GradShards: 8}, // does not divide
		{Replicas: 16},               // exceeds the default 8 shards
		{Replicas: -1},
		{GradShards: -4},
	}
	for _, cfg := range bad {
		if _, err := New(blobNet(1), cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	tr, err := New(blobNet(1), Config{GradShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tr.eng == nil || tr.eng.k != 1 || tr.shardCount() != 4 {
		t.Fatalf("GradShards alone should imply a 1-replica engine, got %+v", tr.eng)
	}
	if tr, err := New(blobNet(1), Config{Replicas: 8}); err != nil || tr.eng.shards != 8 {
		t.Fatalf("Replicas=8 should default to 8 shards: %v", err)
	}
}

// TestReplicaResumeShardMismatch: a checkpoint's shard count must match the
// resuming trainer's — the replica count may change, the shard count fixes
// the numerics and may not.
func TestReplicaResumeShardMismatch(t *testing.T) {
	tr4, err := New(blobNet(2), Config{Epochs: 4, Replicas: 4, GradShards: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := tr4.Snapshot()
	if st.Shards != 8 {
		t.Fatalf("snapshot records %d shards, want 8", st.Shards)
	}

	// Same shard count, different replica count: accepted.
	tr2, err := New(blobNet(2), Config{Epochs: 4, Replicas: 2, GradShards: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Restore(st); err != nil {
		t.Fatalf("K=2 resume of a K=4 run rejected: %v", err)
	}

	// Different shard count or a sequential trainer: rejected.
	trS, err := New(blobNet(2), Config{Epochs: 4, Replicas: 4, GradShards: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := trS.Restore(st); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("shard mismatch accepted: %v", err)
	}
	trL, err := New(blobNet(2), Config{Epochs: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := trL.Restore(st); err == nil {
		t.Fatal("sequential resume of a sharded run accepted")
	}
}

// TestReplicaEngineRestart: Run stops the replica goroutines on exit and a
// subsequent Run (or direct step) restarts them transparently.
func TestReplicaEngineRestart(t *testing.T) {
	x, y := blobData(21, 32)
	net := blobNet(21)
	tr, err := New(net, Config{Epochs: 1, BatchSize: 8, LR: 0.05, Seed: 9, Replicas: 2, GradShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if tr.eng.started {
		t.Fatal("engine still started after Run returned")
	}
	b := dataset.Batches(x, y, 8, ShuffleSeed(9, 0))[0]
	tr.step(b, 0, 0, 0.05) // must restart the goroutines, not deadlock
	if !tr.eng.started {
		t.Fatal("direct step did not restart the engine")
	}
	tr.eng.stop()
}
