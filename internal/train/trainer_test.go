package train

import (
	"errors"
	"math"
	"testing"

	"hpnn/internal/dataset"
	"hpnn/internal/nn"
	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// blobNet builds a small deterministic classifier over 2-D inputs.
func blobNet(seed uint64) *nn.Network {
	r := rng.New(seed)
	return nn.NewNetwork(
		nn.NewDense(2, 16).InitHe(r), nn.NewReLU(),
		nn.NewDense(16, 2).InitHe(r),
	)
}

// blobData builds an XOR-style quadrant dataset shaped [n, 2].
func blobData(seed uint64, n int) (*tensor.Tensor, []int) {
	r := rng.New(seed)
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cx := float64(1 - 2*r.Intn(2))
		cy := float64(1 - 2*r.Intn(2))
		x.Set(cx+0.3*r.Norm(), i, 0)
		x.Set(cy+0.3*r.Norm(), i, 1)
		if cx*cy > 0 {
			y[i] = 1
		}
	}
	return x, y
}

func netBits(net *nn.Network) []uint64 {
	var out []uint64
	for _, p := range net.Params() {
		for _, v := range p.Value.Data {
			out = append(out, math.Float64bits(v))
		}
	}
	return out
}

// TestTrainerMatchesInlineLoop: the Trainer must reproduce the exact
// update sequence of the hand-written loop it replaced — same shuffle,
// same schedule, same clipping — verified bitwise on the final weights.
func TestTrainerMatchesInlineLoop(t *testing.T) {
	x, y := blobData(5, 96)
	const (
		epochs = 4
		batch  = 16
		lr     = 0.1
	)

	// Reference: the old core.Train loop, inlined.
	ref := blobNet(9)
	opt := nn.NewMomentumSGD(lr, 0.9, 1e-4)
	loss := nn.SoftmaxCrossEntropy{}
	params := ref.Params()
	var gradBuf *tensor.Tensor
	for ep := 0; ep < epochs; ep++ {
		opt.SetLR(nn.StepDecay(lr, ep, 2, 0.5))
		for _, b := range dataset.Batches(x, y, batch, ShuffleSeed(42, ep)) {
			out := ref.Forward(b.X, true)
			_, g := loss.LossInto(gradBuf, out, b.Y)
			gradBuf = g
			ref.Backward(g)
			nn.ClipGradNorm(params, 5)
			opt.Step(params)
		}
	}

	// Same run through the Trainer.
	net := blobNet(9)
	tr, err := New(net, Config{
		Epochs: epochs, BatchSize: batch, LR: lr, Momentum: 0.9, WeightDecay: 1e-4,
		Schedule: StepDecay{Base: lr, Every: 2, Factor: 0.5}, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(x, y, nil); err != nil {
		t.Fatal(err)
	}

	a, b := netBits(ref), netBits(net)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trainer diverges from inline loop at scalar %d", i)
		}
	}
}

// TestDataSizeError: mismatched samples/labels return the typed error
// instead of panicking.
func TestDataSizeError(t *testing.T) {
	net := blobNet(1)
	tr, err := New(net, Config{Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := blobData(2, 8)
	_, err = tr.Run(x, make([]int, 5), nil)
	var dse *DataSizeError
	if !errors.As(err, &dse) {
		t.Fatalf("want DataSizeError, got %v", err)
	}
	if dse.Samples != 8 || dse.Labels != 5 {
		t.Fatalf("error carries %d/%d, want 8/5", dse.Samples, dse.Labels)
	}
	if _, err := tr.Run(nil, nil, nil); err == nil {
		t.Fatal("nil input accepted")
	}
}

// TestUnknownOptimizerRejected: optimizer selection is by name and
// validated at construction.
func TestUnknownOptimizerRejected(t *testing.T) {
	if _, err := New(blobNet(1), Config{Optimizer: "rmsprop"}); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
	for _, ok := range []string{"", "sgd", "adam"} {
		if _, err := New(blobNet(1), Config{Optimizer: ok}); err != nil {
			t.Fatalf("optimizer %q rejected: %v", ok, err)
		}
	}
}

// TestHookBus: OnStep fires once per optimizer step with timing and LR,
// OnEval once per epoch, and OnEpoch carries throughput plus a usable
// snapshot closure.
func TestHookBus(t *testing.T) {
	x, y := blobData(6, 64)
	const epochs, batch = 3, 16
	steps, evals, epochsSeen := 0, 0, 0
	var lastInfo EpochInfo
	net := blobNet(2)
	tr, err := New(net, Config{
		Epochs: epochs, BatchSize: batch, LR: 0.05, Seed: 3,
		Hooks: Hooks{
			OnStep: func(si StepInfo) {
				steps++
				if si.Batch <= 0 || si.LR <= 0 {
					t.Errorf("bad step info %+v", si)
				}
			},
			OnEval:  func(epoch int, acc float64) { evals++ },
			OnEpoch: func(info EpochInfo) bool { epochsSeen++; lastInfo = info; return true },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	eval := func() float64 { return 0.5 }
	if _, err := tr.Run(x, y, eval); err != nil {
		t.Fatal(err)
	}
	wantSteps := epochs * (64 / batch)
	if steps != wantSteps {
		t.Fatalf("OnStep fired %d times, want %d", steps, wantSteps)
	}
	if evals != epochs || epochsSeen != epochs {
		t.Fatalf("OnEval/OnEpoch fired %d/%d times, want %d", evals, epochsSeen, epochs)
	}
	if lastInfo.SamplesPerSec <= 0 || lastInfo.Samples != 64 || lastInfo.Steps != 4 {
		t.Fatalf("epoch info missing throughput: %+v", lastInfo)
	}
	if !lastInfo.HasEval || lastInfo.TestAcc != 0.5 {
		t.Fatalf("epoch info missing eval: %+v", lastInfo)
	}
	st := lastInfo.Snapshot()
	if st.NextEpoch != epochs || len(st.EpochLoss) != epochs {
		t.Fatalf("snapshot at %d with %d losses, want %d", st.NextEpoch, len(st.EpochLoss), epochs)
	}
}

// TestEarlyStop: OnEpoch returning false ends the run and marks the
// result.
func TestEarlyStop(t *testing.T) {
	x, y := blobData(8, 32)
	tr, err := New(blobNet(4), Config{
		Epochs: 10, BatchSize: 8, LR: 0.05, Seed: 1,
		Hooks: Hooks{OnEpoch: func(info EpochInfo) bool { return info.Epoch < 2 }},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || len(res.EpochLoss) != 3 {
		t.Fatalf("early stop after epoch 2: stopped=%v, %d epochs recorded", res.Stopped, len(res.EpochLoss))
	}
}

// TestGradAugmentLossAccounting: the augment hook's extra loss is folded
// into the reported epoch loss.
func TestGradAugmentLossAccounting(t *testing.T) {
	x, y := blobData(9, 32)
	run := func(extra float64) float64 {
		cfg := Config{Epochs: 1, BatchSize: 8, LR: 0.0, Seed: 1, ClipNorm: -1}
		cfg.LR = 1e-12 // effectively frozen weights so losses align
		if extra != 0 {
			cfg.GradAugment = func() float64 { return extra }
		}
		tr, err := New(blobNet(7), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Run(x, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.EpochLoss[0]
	}
	base, augmented := run(0), run(0.25)
	if math.Abs((augmented-base)-0.25) > 1e-9 {
		t.Fatalf("augment loss not accounted: base %v, augmented %v", base, augmented)
	}
}
