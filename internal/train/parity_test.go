package train_test

import (
	"testing"

	"hpnn/internal/core"
)

// TestAdamParity: the newly-wired Adam optimizer must be a usable
// alternative to momentum SGD — on the synthetic MLP profile it reaches
// at least SGD's test accuracy (small tolerance for run-to-run seed
// variation). This pins satellite #2: nn.Adam is no longer dead code.
func TestAdamParity(t *testing.T) {
	if testing.Short() {
		t.Skip("training comparison skipped in -short")
	}
	ds := resumeData(t)
	runWith := func(optimizer string, lr float64) float64 {
		m, err := core.NewModel(core.Config{Arch: core.MLP, InC: 1, InH: 12, InW: 12, Seed: 90})
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.TrainConfig{
			Epochs: 12, BatchSize: 16, Optimizer: optimizer,
			LR: lr, Momentum: 0.9, WeightDecay: 1e-4, Seed: 91,
		}
		res, err := core.TrainChecked(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.BestTestAcc()
	}
	sgd := runWith("sgd", 0.05)
	adam := runWith("adam", 0.01)
	t.Logf("best test acc: sgd %.4f, adam %.4f", sgd, adam)
	if adam < sgd-0.05 {
		t.Fatalf("adam best acc %.4f more than 0.05 below sgd %.4f", adam, sgd)
	}
	if adam < 0.5 {
		t.Fatalf("adam best acc %.4f — optimizer not learning", adam)
	}
}
