//go:build race

package train

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumented runtime allocates and would distort the
// allocation pin.
const raceEnabled = true
