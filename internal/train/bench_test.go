package train

import (
	"testing"

	"hpnn/internal/dataset"
	"hpnn/internal/nn"
	"hpnn/internal/tensor"
)

// The two benchmarks below measure what the Trainer abstraction costs per
// epoch against the hand-inlined loop it replaced (identical math: same
// shuffle, schedule, clipping, optimizer). EXPERIMENTS.md records the
// measured overhead; the budget is ≤1% step time.

func benchData(b *testing.B) (*tensor.Tensor, []int) {
	b.Helper()
	x, y := blobData(21, 256)
	return x, y
}

func BenchmarkInlineStepLoop(b *testing.B) {
	x, y := benchData(b)
	net := blobNet(22)
	opt := nn.NewMomentumSGD(0.05, 0.9, 1e-4)
	loss := nn.SoftmaxCrossEntropy{}
	params := net.Params()
	var gradBuf *tensor.Tensor
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep := i % 4
		opt.SetLR(nn.StepDecay(0.05, ep, 2, 0.5))
		for _, bt := range dataset.Batches(x, y, 32, ShuffleSeed(23, ep)) {
			out := net.Forward(bt.X, true)
			_, g := loss.LossInto(gradBuf, out, bt.Y)
			gradBuf = g
			net.Backward(g)
			nn.ClipGradNorm(params, 5)
			opt.Step(params)
		}
	}
}

func BenchmarkTrainerEpoch(b *testing.B) {
	x, y := benchData(b)
	net := blobNet(22)
	tr, err := New(net, Config{
		Epochs: 1 << 30, BatchSize: 32, LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4,
		Schedule: StepDecay{Base: 0.05, Every: 2, Factor: 0.5}, Seed: 23,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep := i % 4
		lr := tr.cfg.Schedule.LR(ep)
		tr.opt.SetLR(lr)
		for si, bt := range dataset.Batches(x, y, 32, ShuffleSeed(23, ep)) {
			tr.step(bt, ep, si, lr)
		}
	}
}

// BenchmarkTrainerRun measures the full Run path — including epoch
// bookkeeping, hook dispatch checks, and trajectory append — at one
// epoch per iteration.
func BenchmarkTrainerRun(b *testing.B) {
	x, y := benchData(b)
	net := blobNet(22)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr, err := New(net, Config{
			Epochs: 1, BatchSize: 32, LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4,
			Schedule: StepDecay{Base: 0.05, Every: 2, Factor: 0.5}, Seed: 23,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := tr.Run(x, y, nil); err != nil {
			b.Fatal(err)
		}
	}
}
