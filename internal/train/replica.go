package train

import (
	"sync"

	"hpnn/internal/dataset"
	"hpnn/internal/nn"
	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// Data-parallel gradient engine.
//
// # Canonical micro-shard decomposition
//
// Every step's batch of n rows is split into S = Config.GradShards
// contiguous micro-shards; shard s owns rows [s·n/S, (s+1)·n/S) (integer
// floor, dataset.ShardRange), so trailing shards of a short batch may be
// empty. S is fixed by configuration — it does NOT scale with the replica
// count K — which makes the per-shard forward/backward results, and
// everything derived from them, a pure function of (seed, batch, S).
// K = Config.Replicas is purely an execution-width knob: replica r executes
// the m = S/K shards [r·m, (r+1)·m).
//
// # Fixed-shape tree reduction
//
// Shard gradients combine over the complete balanced binary tree with S
// leaves. Every internal node is one AddTo(left, right) with left always
// the lower-indexed subtree; empty shards are ∅ nodes that pass the other
// child through untouched (no floating-point op). Within a replica the
// m-leaf subtree is evaluated with a binary-counter stack (log2(m)+1
// levels); across replicas the K subtree roots merge in gap-doubling rounds
// (gap = 1, 2, 4, …: reps[i] += reps[i+gap]). Because S is a power of two
// and K divides S, the within-replica subtrees are exactly the aligned
// height-log2(m) subtrees of the S-leaf tree, so the full reduction shape —
// and therefore every intermediate and final sum, bitwise — is identical
// for every K.
//
// # Execution width
//
// While the replicas run, the tensor worker pool is clamped to one worker
// (SetMaxWorkers(1), restored after the barrier): each replica computes its
// shards serially and all parallelism comes from the K replica goroutines.
// Per-shard compute is bitwise worker-count-invariant anyway (the PR 4 GEMM
// grid guarantee), so the clamp costs nothing in determinism and gives
// clean K-way scaling without nested-pool contention.
//
// # Shared state discipline
//
// Replica networks are nn.ReplicaClone()s: weights, lock factors and BN
// running statistics are shared read-only; gradients, scratch, dropout
// generators and BN statistic outputs are private. Batch-norm batch stats
// are redirected per shard into engine-owned buffers and folded into the
// shared running stats serially, in shard order, after the barrier; shard
// losses are summed in shard order the same way. Dropout generators are
// reseeded per (step, shard, layer), so mask draws depend on the shard
// position, not on which replica ran it.
type replicaEngine struct {
	k, shards int
	seed      uint64

	masterParams []*nn.Param
	masterBNs    []*nn.BatchNorm2D
	masterLocks  []*nn.Lock
	gradLen      int

	reps []*replica
	// stats[s][j] receives shard s's batch statistics for the j-th
	// batch-norm layer ([mean, var] pairs, len 2C).
	stats [][][]float64
	// shardLoss[s] is shard s's invN-scaled loss; shards are disjoint per
	// replica, so the writes never race.
	shardLoss []float64

	started bool
	done    sync.WaitGroup
}

// replica is one model clone plus the goroutine-local state to run its
// micro-shards and reduce their gradients.
type replica struct {
	idx   int
	eng   *replicaEngine
	net   *nn.Network
	locks []*nn.Lock
	bns   []*nn.BatchNorm2D
	drops []*nn.Dropout
	loss  nn.SoftmaxCrossEntropy

	// gradVec is the clone's parameter gradients rebased onto one flat
	// vector (nn.FlattenGrads): cleared before each shard's backward pass,
	// then pushed into the reduction stack.
	gradVec []float64
	gradBuf *tensor.Tensor

	// xView windows the step batch's rows [lo, hi) without copying;
	// shapeBuf backs its shape header across calls.
	xView    tensor.Tensor
	shapeBuf []int

	// Binary-counter reduction stack: stack[l] holds the sum of 2^l
	// consecutive leaves when present[l]. The top level is the replica's
	// subtree root.
	stack       [][]float64
	present     []bool
	root        []float64
	rootPresent bool

	// Per-step task, written by the driver before waking the replica.
	b    dataset.Batch
	invN float64
	step int

	wake chan struct{}
}

func newReplicaEngine(net *nn.Network, cfg Config) *replicaEngine {
	e := &replicaEngine{
		k:            cfg.Replicas,
		shards:       cfg.GradShards,
		seed:         cfg.Seed,
		masterParams: net.Params(),
		masterBNs:    net.BatchNorms(),
		masterLocks:  net.Locks(),
	}
	for _, p := range e.masterParams {
		e.gradLen += p.Grad.Len()
	}
	m := e.shards / e.k
	levels := 1
	for 1<<(levels-1) < m {
		levels++
	}
	e.reps = make([]*replica, e.k)
	for r := range e.reps {
		clone := net.ReplicaClone()
		rep := &replica{
			idx:   r,
			eng:   e,
			net:   clone,
			locks: clone.Locks(),
			bns:   clone.BatchNorms(),
			drops: clone.Dropouts(),
			wake:  make(chan struct{}, 1),
		}
		rep.gradVec = nn.FlattenGrads(clone.Params())
		rep.stack = make([][]float64, levels)
		for l := range rep.stack {
			rep.stack[l] = make([]float64, e.gradLen)
		}
		rep.present = make([]bool, levels)
		e.reps[r] = rep
	}
	e.stats = make([][][]float64, e.shards)
	for s := range e.stats {
		e.stats[s] = make([][]float64, len(e.masterBNs))
		for j, bn := range e.masterBNs {
			e.stats[s][j] = make([]float64, 2*bn.C)
		}
	}
	e.shardLoss = make([]float64, e.shards)
	return e
}

// ensureStarted lazily spins up the persistent replica goroutines. It is
// called from gradStep (not just Run) so tests driving Trainer.step
// directly still work; stop tears the goroutines down again.
func (e *replicaEngine) ensureStarted() {
	if e.started {
		return
	}
	e.started = true
	for _, r := range e.reps {
		go r.loop(r.wake) //hpnn:allow(noalloc) one-time goroutine spin-up; steady state reuses the running replicas
	}
}

// stop terminates the replica goroutines. The engine can be restarted by
// the next gradStep.
func (e *replicaEngine) stop() {
	if !e.started {
		return
	}
	e.started = false
	for _, r := range e.reps {
		close(r.wake)
		r.wake = make(chan struct{}, 1)
	}
}

// loop processes one step task per wake message. The channel is passed as
// an argument (captured at spawn time on the driver goroutine) so stop's
// channel replacement never races with the loop's receive.
func (r *replica) loop(wake chan struct{}) {
	for range wake {
		r.runStep()
		r.eng.done.Done()
	}
}

// syncLocks copies lock engagement from the master network onto every
// clone. Factors are shared slices (SetBits propagates automatically);
// Engaged is a plain bool copied at clone time, so it must be refreshed in
// case the caller engaged/disengaged locks after the Trainer was built.
func (e *replicaEngine) syncLocks() {
	for _, r := range e.reps {
		for i, l := range r.locks {
			l.Engaged = e.masterLocks[i].Engaged
		}
	}
}

// gradStep computes the full-batch gradient of b data-parallel and leaves
// it in the master parameters' Grad tensors, returning the mean batch loss.
// It replaces the forward/loss/backward stage of Trainer.step; clipping and
// the optimizer update still run on the master afterwards.
func (e *replicaEngine) gradStep(b dataset.Batch, globalStep int) float64 {
	e.ensureStarted()
	e.syncLocks()
	n := len(b.Y)
	invN := 1 / float64(n)
	for _, r := range e.reps {
		r.b, r.invN, r.step = b, invN, globalStep
	}
	e.done.Add(len(e.reps))
	// Clamp the worker pool for the replica phase: parallelism comes from
	// the K replica goroutines, each computing its shards serially.
	old := tensor.SetMaxWorkers(1)
	for _, r := range e.reps {
		r.wake <- struct{}{}
	}
	e.done.Wait()
	tensor.SetMaxWorkers(old)

	// Cross-replica reduction: gap-doubling pairwise rounds over the
	// replica subtree roots, lower index always on the left. ∅ roots (all
	// shards empty — possible on short batches) pass the partner through
	// by pointer, with no floating-point op.
	for gap := 1; gap < e.k; gap *= 2 {
		for i := 0; i+gap < e.k; i += 2 * gap {
			left, right := e.reps[i], e.reps[i+gap]
			if !right.rootPresent {
				continue
			}
			if !left.rootPresent {
				left.root, left.rootPresent = right.root, true
				continue
			}
			tensor.AddTo(left.root, right.root)
		}
	}

	// Copy (not +=) the reduced gradient into the master gradients: the
	// master Grad tensors are zeroed by the optimizer, and 0 + (-0.0)
	// would flip -0.0 components to +0.0, breaking bitwise K=1 parity.
	root := e.reps[0].root
	off := 0
	for _, p := range e.masterParams {
		ln := p.Grad.Len()
		copy(p.Grad.Data, root[off:off+ln])
		off += ln
	}

	// Fold shard batch-norm statistics into the shared running stats and
	// sum shard losses — serially, in canonical shard order, skipping
	// empty shards, so the result is independent of K.
	loss := 0.0
	for s := 0; s < e.shards; s++ {
		lo, hi := dataset.ShardRange(n, s, e.shards)
		if lo == hi {
			continue
		}
		for j, bn := range e.masterBNs {
			bn.AbsorbStats(e.stats[s][j])
		}
		loss += e.shardLoss[s]
	}
	return loss
}

// runStep executes the replica's m = S/K micro-shards for the current task
// and leaves the subtree root in r.root.
//
//hpnn:noalloc
func (r *replica) runStep() {
	e := r.eng
	n := len(r.b.Y)
	m := e.shards / e.k
	feat := 1
	for _, d := range r.b.X.Shape[1:] {
		feat *= d
	}
	for li := 0; li < m; li++ {
		s := r.idx*m + li
		lo, hi := dataset.ShardRange(n, s, e.shards)
		if lo == hi {
			r.push(li, false)
			continue
		}
		for di, d := range r.drops {
			d.Rng.Reseed(e.seed, dropStream(r.step, s, di))
		}
		for j, bn := range r.bns {
			bn.StatsOut = e.stats[s][j]
		}
		clear(r.gradVec)
		r.shapeBuf = append(r.shapeBuf[:0], hi-lo)
		r.shapeBuf = append(r.shapeBuf, r.b.X.Shape[1:]...) //hpnn:allow(noalloc) grows once, to the batch rank, then stays
		tensor.ViewInto(&r.xView, r.b.X.Data[lo*feat:hi*feat], r.shapeBuf...)
		out := r.net.Forward(&r.xView, true)
		var l float64
		l, r.gradBuf = r.loss.LossScaledInto(r.gradBuf, out, r.b.Y[lo:hi], r.invN)
		r.net.Backward(r.gradBuf)
		e.shardLoss[s] = l
		r.push(li, true)
	}
	top := len(r.stack) - 1
	r.root = r.stack[top]
	r.rootPresent = r.present[top]
	r.present[top] = false
}

// push merges leaf li (the replica's li-th local shard, currently in
// r.gradVec when srcPresent) into the binary-counter stack. Each trailing
// set bit of li closes one subtree of the fixed reduction shape: the
// left-subtree partial at that level merges with src via AddTo(left, right)
// — earlier leaves always on the left — while ∅ children pass through with
// no floating-point op. The placement level is a function of li alone (NOT
// of which levels happen to hold values: ∅ subtrees leave their level
// vacant without shrinking the tree), so the shape never depends on which
// shards were empty. The merged value is finally copied into its placement
// level, freeing gradVec for the next shard and keeping every stack level
// the owner of its own buffer.
//
//hpnn:noalloc
func (r *replica) push(li int, srcPresent bool) {
	src := r.gradVec
	lvl := 0
	for ; li&(1<<lvl) != 0; lvl++ {
		if !r.present[lvl] {
			continue // ∅ left subtree: src passes through unchanged
		}
		if srcPresent {
			tensor.AddTo(r.stack[lvl], src)
		}
		src = r.stack[lvl]
		srcPresent = true
		r.present[lvl] = false
	}
	if srcPresent && len(src) != 0 && &src[0] != &r.stack[lvl][0] {
		copy(r.stack[lvl], src)
	}
	r.present[lvl] = srcPresent
}

// dropStream derives the dropout RNG stream for (global step, shard,
// dropout-layer index) — replica-independent by construction.
func dropStream(step, shard, layer int) uint64 {
	h := rng.Mix64(uint64(step)*0x9e3779b97f4a7c15 + uint64(shard))
	return rng.Mix64(h + uint64(layer))
}
