package train_test

// Cross-replica kill/resume determinism: a data-parallel run killed
// mid-training at K=4 and resumed from its checkpoint at K=2 must land on
// the SAME final model, bitwise, as the uninterrupted K=1 run. The replica
// count is execution width only; the checkpoint records the shard count
// (which fixes the numerics) and nothing about K, so any power-of-two
// divisor of GradShards may pick the run back up.

import (
	"path/filepath"
	"testing"

	"hpnn/internal/core"
	"hpnn/internal/modelio"
	"hpnn/internal/train"
)

func TestReplicaCrossKResume(t *testing.T) {
	ds := resumeData(t)
	cfg := resumeTrainCfg("sgd")
	cfg.GradShards = 8
	const killAfter = 3 // epochs completed before the "crash"

	// Reference: the uninterrupted run at K=1.
	cfg.Replicas = 1
	straight := lockedModel(t)
	wantRes, err := core.TrainChecked(straight, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run at K=4: checkpoint every epoch, kill after killAfter.
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	killed := lockedModel(t)
	killCfg := cfg
	killCfg.Replicas = 4
	killCfg.Hooks.OnEpoch = func(info train.EpochInfo) bool {
		if err := modelio.SaveCheckpointFile(ckpt, killed, info.Snapshot()); err != nil {
			t.Fatalf("checkpoint write: %v", err)
		}
		return info.Epoch+1 < killAfter
	}
	if _, err := core.TrainChecked(killed, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, killCfg); err != nil {
		t.Fatal(err)
	}

	// Resume at K=2 from the file alone (weights + lock bits + state).
	resumed, st, err := modelio.LoadCheckpointFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if st.NextEpoch != killAfter {
		t.Fatalf("checkpoint resumes at epoch %d, want %d", st.NextEpoch, killAfter)
	}
	if st.Shards != 8 {
		t.Fatalf("checkpoint carries %d shards, want 8", st.Shards)
	}
	resumeCfg := cfg
	resumeCfg.Replicas = 2
	resumeCfg.Resume = &st
	gotRes, err := core.TrainChecked(resumed, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, resumeCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Bitwise-identical weights against the K=1 reference.
	want, got := modelBits(straight), modelBits(resumed)
	if len(want) != len(got) {
		t.Fatalf("parameter count mismatch: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("resumed weights diverge at scalar %d", i)
		}
	}
	// Identical lock bits.
	wantKey, gotKey := straight.KeyBits(), resumed.KeyBits()
	for i := range wantKey {
		if wantKey[i] != gotKey[i] {
			t.Fatalf("lock bits diverge at neuron %d", i)
		}
	}
	// Full trajectory (restored prefix + post-resume epochs) matches.
	if !sameF64sBitwise(wantRes.TestAcc, gotRes.TestAcc) {
		t.Fatalf("test-acc curves diverge:\nstraight %v\nresumed  %v", wantRes.TestAcc, gotRes.TestAcc)
	}
	if !sameF64sBitwise(wantRes.EpochLoss, gotRes.EpochLoss) {
		t.Fatalf("loss curves diverge:\nstraight %v\nresumed  %v", wantRes.EpochLoss, gotRes.EpochLoss)
	}

	// A resume that changes the shard count — the numerics knob — must be
	// rejected end-to-end, not drift.
	wrongShards := cfg
	wrongShards.Replicas = 2
	wrongShards.GradShards = 4
	back, st2, err := modelio.LoadCheckpointFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	wrongShards.Resume = &st2
	if _, err := core.TrainChecked(back, ds.TrainX, ds.TrainY, nil, nil, wrongShards); err == nil {
		t.Fatal("resume with a different shard count accepted")
	}
}
