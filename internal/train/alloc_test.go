package train

import (
	"testing"

	"hpnn/internal/dataset"
)

// TestStepZeroAlloc pins the Trainer's steady-state step at zero
// allocations per step with no hooks installed — the refactor must not
// regress the workspace execution engine's invariant. The first step
// warms the loss-gradient buffer and layer scratch; everything after
// reuses them.
func TestStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented runtime allocates during the step")
	}
	x, y := blobData(11, 64)
	tr, err := New(blobNet(11), Config{Epochs: 1, BatchSize: 16, LR: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	batches := dataset.Batches(x, y, 16, ShuffleSeed(7, 0))
	b := batches[0]
	// Warm-up: allocate gradBuf and layer scratch.
	for i := 0; i < 3; i++ {
		tr.step(b, 0, i, 0.05)
	}
	allocs := testing.AllocsPerRun(50, func() {
		tr.step(b, 0, 0, 0.05)
	})
	if allocs != 0 {
		t.Fatalf("steady-state trainer step allocates %.1f times per run, want 0", allocs)
	}
}

// TestReplicaStepZeroAlloc extends the pin to the data-parallel path: the
// persistent replica goroutines, flat gradient vectors, reduction stacks
// and shard views are all preallocated, so a steady-state K-replica step
// allocates nothing on any goroutine (AllocsPerRun counts globally).
func TestReplicaStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented runtime allocates during the step")
	}
	x, y := blobData(13, 64)
	tr, err := New(blobNet(13), Config{Epochs: 1, BatchSize: 16, LR: 0.05, Seed: 7, Replicas: 2, GradShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.eng.stop()
	batches := dataset.Batches(x, y, 16, ShuffleSeed(7, 0))
	b := batches[0]
	for i := 0; i < 3; i++ {
		tr.step(b, 0, i, 0.05)
	}
	allocs := testing.AllocsPerRun(50, func() {
		tr.step(b, 0, 0, 0.05)
	})
	if allocs != 0 {
		t.Fatalf("steady-state replica step allocates %.1f times per run, want 0", allocs)
	}
}

// TestStepZeroAllocAdam extends the pin to the Adam path: its moment
// slots are lazily allocated on first use and reused thereafter.
func TestStepZeroAllocAdam(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented runtime allocates during the step")
	}
	x, y := blobData(12, 64)
	tr, err := New(blobNet(12), Config{Epochs: 1, BatchSize: 16, Optimizer: "adam", LR: 0.001, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	batches := dataset.Batches(x, y, 16, ShuffleSeed(7, 0))
	b := batches[0]
	for i := 0; i < 3; i++ {
		tr.step(b, 0, i, 0.001)
	}
	allocs := testing.AllocsPerRun(50, func() {
		tr.step(b, 0, 0, 0.001)
	})
	if allocs != 0 {
		t.Fatalf("steady-state adam step allocates %.1f times per run, want 0", allocs)
	}
}
