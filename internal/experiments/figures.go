package experiments

import (
	"fmt"

	"hpnn/internal/attack"
	"hpnn/internal/core"
	"hpnn/internal/keys"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
	"hpnn/internal/stats"
)

// Fig3Result is the capacity study for one architecture: prediction
// accuracies of models trained with many different HPNN keys, against the
// conventionally trained baseline.
type Fig3Result struct {
	Arch        core.Arch
	BaselineAcc float64
	KeyAccs     []float64
	Summary     stats.Summary
}

// Fig3 reproduces the model-capacity experiment of §III-C: the same
// architecture and data trained under p.Fig3Keys random keys must perform
// on par with the unlocked baseline.
func Fig3(p Profile, logf Logf) ([]Fig3Result, error) {
	ds, err := makeDataset(p, "fashion", seedFor("fashion"))
	if err != nil {
		return nil, err
	}
	sched := schedule.New(keys.KeyBits, p.Seed+50)
	var out []Fig3Result
	for _, arch := range []core.Arch{core.CNN1, core.ResNet18} {
		res := Fig3Result{Arch: arch}
		// Baseline: conventional training of the baseline architecture
		// (all lock bits zero — lock factors +1 everywhere).
		base, err := buildModel(p, arch, ds, 0)
		if err != nil {
			return nil, err
		}
		tr := core.Train(base, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, ownerTrain(p, nil))
		res.BaselineAcc = tr.FinalTestAcc()
		logf.printf("[fig3/%s] baseline accuracy %.4f", arch, res.BaselineAcc)

		for k := 0; k < p.Fig3Keys; k++ {
			m, err := buildModel(p, arch, ds, uint64(k))
			if err != nil {
				return nil, err
			}
			m.ApplyRawKey(keys.Generate(rng.New(p.Seed+200+uint64(k))), sched)
			tr := core.Train(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, ownerTrain(p, nil))
			res.KeyAccs = append(res.KeyAccs, tr.FinalTestAcc())
			logf.printf("[fig3/%s] key %2d accuracy %.4f", arch, k+1, tr.FinalTestAcc())
		}
		res.Summary = stats.Summarize(res.KeyAccs)
		out = append(out, res)
	}
	return out, nil
}

// Curve is one accuracy-vs-epoch trajectory.
type Curve struct {
	Label string
	Acc   []float64
}

// CurveSet is a family of trajectories for one (dataset, architecture)
// pair, with the owner's accuracy as the reference line.
type CurveSet struct {
	Dataset  string
	Arch     core.Arch
	OwnerAcc float64
	Curves   []Curve
}

// Fig5Alphas are the thief-dataset fractions of Fig. 5.
var Fig5Alphas = []float64{0.01, 0.02, 0.03, 0.05, 0.10}

// Fig5 reproduces the thief-dataset-size study: HPNN fine-tuning curves
// for α ∈ {1..10 %} on Fashion-MNIST-like data, for CNN1 and ResNet18.
func Fig5(p Profile, logf Logf) ([]CurveSet, error) {
	var out []CurveSet
	for _, arch := range []core.Arch{core.CNN1, core.ResNet18} {
		v, err := trainVictim(p, "fashion", arch, logf)
		if err != nil {
			return nil, err
		}
		set := CurveSet{Dataset: "fashion", Arch: arch, OwnerAcc: v.OwnerAcc}
		for i, a := range Fig5Alphas {
			r, err := v.fineTune(p, attack.InitStolen, a, uint64(i))
			if err != nil {
				return nil, err
			}
			set.Curves = append(set.Curves, Curve{
				Label: fmt.Sprintf("α=%g%%", a*100),
				Acc:   r.TestAcc,
			})
			logf.printf("[fig5/%s] α=%g%% final %.4f (owner %.4f)", arch, a*100, r.FinalAcc, v.OwnerAcc)
		}
		out = append(out, set)
	}
	return out, nil
}

// Fig6LRs are the learning rates swept in Fig. 6.
var Fig6LRs = []float64{0.05, 0.01, 0.005, 0.001}

// Fig6 reproduces the hyperparameter study: fine-tuning trajectories at
// several learning rates with α = 10 %, on (fashion, CNN1) and
// (cifar, CNN2).
func Fig6(p Profile, logf Logf) ([]CurveSet, error) {
	pairs := []struct {
		ds   string
		arch core.Arch
	}{
		{"fashion", core.CNN1},
		{"cifar", core.CNN2},
	}
	var out []CurveSet
	for _, pair := range pairs {
		v, err := trainVictim(p, pair.ds, pair.arch, logf)
		if err != nil {
			return nil, err
		}
		set := CurveSet{Dataset: pair.ds, Arch: pair.arch, OwnerAcc: v.OwnerAcc}
		results, err := attack.SweepLearningRates(v.Model, v.Dataset, Fig6LRs, attack.FineTuneConfig{
			ThiefFrac:    0.10,
			ThiefSeed:    p.Seed + 81,
			Init:         attack.InitStolen,
			AttackerSeed: p.Seed + 82,
			Train:        ftTrain(p),
		})
		if err != nil {
			return nil, err
		}
		for i, r := range results {
			set.Curves = append(set.Curves, Curve{
				Label: fmt.Sprintf("lr=%g", Fig6LRs[i]),
				Acc:   r.TestAcc,
			})
			logf.printf("[fig6/%s] lr=%g final %.4f", pair.ds, Fig6LRs[i], r.FinalAcc)
		}
		out = append(out, set)
	}
	return out, nil
}

// Fig7Alphas are the thief fractions of Fig. 7 (α = 0 is the no-data case).
var Fig7Alphas = []float64{0, 0.01, 0.02, 0.03, 0.05, 0.10}

// Fig7Result compares random- and HPNN-initialized fine-tuning across
// thief fractions for one dataset.
type Fig7Result struct {
	Dataset  string
	Arch     core.Arch
	OwnerAcc float64
	Alphas   []float64
	HPNNFT   []float64
	RandomFT []float64
}

// Fig7 reproduces the information-leakage study of §IV-C across all three
// benchmarks.
func Fig7(p Profile, logf Logf) ([]Fig7Result, error) {
	var out []Fig7Result
	for _, b := range benchmarks {
		v, err := trainVictim(p, b.Dataset, b.Arch, logf)
		if err != nil {
			return nil, err
		}
		res := Fig7Result{Dataset: b.Dataset, Arch: b.Arch, OwnerAcc: v.OwnerAcc, Alphas: Fig7Alphas}
		for i, a := range Fig7Alphas {
			h, err := v.fineTune(p, attack.InitStolen, a, uint64(i))
			if err != nil {
				return nil, err
			}
			r, err := v.fineTune(p, attack.InitRandom, a, uint64(i))
			if err != nil {
				return nil, err
			}
			res.HPNNFT = append(res.HPNNFT, h.FinalAcc)
			res.RandomFT = append(res.RandomFT, r.FinalAcc)
			logf.printf("[fig7/%s] α=%g%%: hpnn-ft %.4f, random-ft %.4f", b.Dataset, a*100, h.FinalAcc, r.FinalAcc)
		}
		out = append(out, res)
	}
	return out, nil
}
