package experiments

import (
	"hpnn/internal/attack"
	"hpnn/internal/core"
	"hpnn/internal/stats"
)

// Table1Row is one row of the paper's Table I.
type Table1Row struct {
	Dataset       string
	Arch          core.Arch
	LockedNeurons int

	// OriginalAcc is the locked model's accuracy on trusted hardware
	// (key engaged) — the paper's "Original accuracy" column.
	OriginalAcc float64
	// LockedAcc is the accuracy of the stolen model on the baseline
	// architecture (no key) and LockedDrop its percentage-point drop.
	LockedAcc, LockedDrop float64
	// Random / HPNN fine-tuning attack outcomes at α = 10 %.
	RandomFTAcc, RandomFTDrop float64
	HPNNFTAcc, HPNNFTDrop     float64
}

// Table1 reproduces Table I: for each (dataset, architecture) pair, the
// owner's accuracy, the no-key collapse, and both fine-tuning attacks with
// a 10 % thief dataset.
func Table1(p Profile, logf Logf) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(benchmarks))
	for _, b := range benchmarks {
		v, err := trainVictim(p, b.Dataset, b.Arch, logf)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Dataset:       b.Dataset,
			Arch:          b.Arch,
			LockedNeurons: v.Model.LockedNeurons(),
			OriginalAcc:   v.OwnerAcc,
		}
		row.LockedAcc = v.lockedAcc()
		row.LockedDrop = stats.PctDrop(row.OriginalAcc, row.LockedAcc)
		logf.printf("[%s] locked (no key) accuracy %.4f (drop %.2f)", b.Dataset, row.LockedAcc, row.LockedDrop)

		randFT, err := v.fineTune(p, attack.InitRandom, 0.10, 1)
		if err != nil {
			return nil, err
		}
		row.RandomFTAcc = randFT.FinalAcc
		row.RandomFTDrop = stats.PctDrop(row.OriginalAcc, row.RandomFTAcc)

		hpnnFT, err := v.fineTune(p, attack.InitStolen, 0.10, 1)
		if err != nil {
			return nil, err
		}
		row.HPNNFTAcc = hpnnFT.FinalAcc
		row.HPNNFTDrop = stats.PctDrop(row.OriginalAcc, row.HPNNFTAcc)
		logf.printf("[%s] random-FT %.4f, HPNN-FT %.4f", b.Dataset, row.RandomFTAcc, row.HPNNFTAcc)

		rows = append(rows, row)
	}
	return rows, nil
}
