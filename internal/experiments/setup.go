package experiments

import (
	"fmt"

	"hpnn/internal/attack"
	"hpnn/internal/core"
	"hpnn/internal/dataset"
	"hpnn/internal/keys"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
)

// victim bundles a trained locked model with everything the experiments
// need to attack or deploy it.
type victim struct {
	Model    *core.Model
	Key      keys.Key
	Sched    *schedule.Schedule
	Dataset  *dataset.Dataset
	OwnerAcc float64 // test accuracy with the key engaged
}

// makeDataset generates one benchmark at profile scale.
func makeDataset(p Profile, name string, seedOffset uint64) (*dataset.Dataset, error) {
	return dataset.Generate(dataset.Config{
		Name:   name,
		TrainN: p.TrainN,
		TestN:  p.TestN,
		H:      p.img(),
		W:      p.img(),
		Seed:   p.Seed + seedOffset,
	})
}

// buildModel constructs an architecture at profile scale for a dataset.
func buildModel(p Profile, arch core.Arch, ds *dataset.Dataset, seedOffset uint64) (*core.Model, error) {
	return core.NewModel(core.Config{
		Arch: arch,
		InC:  ds.C, InH: ds.H, InW: ds.W,
		Classes:    ds.Classes,
		WidthScale: p.scale(arch),
		Seed:       p.Seed + 1000 + seedOffset,
	})
}

// ownerTrain is the owner's training configuration at profile scale.
func ownerTrain(p Profile, logf Logf) core.TrainConfig {
	return core.TrainConfig{
		Epochs:    p.OwnerEpochs,
		BatchSize: p.BatchSize,
		Optimizer: p.Optimizer,
		LR:        p.LR,
		Momentum:  p.Momentum,
		Seed:      p.Seed + 7,
		Logf:      logf,
	}
}

// ftTrain is the attacker's fine-tuning configuration. The paper's default
// threat model reuses the owner's hyperparameters.
func ftTrain(p Profile) core.TrainConfig {
	return core.TrainConfig{
		Epochs:    p.FTEpochs,
		BatchSize: 16,
		Optimizer: p.Optimizer,
		LR:        p.LR,
		Momentum:  p.Momentum,
		Seed:      p.Seed + 13,
	}
}

// trainVictim generates a dataset, trains a key-locked model on it and
// evaluates the owner's accuracy.
func trainVictim(p Profile, dsName string, arch core.Arch, logf Logf) (*victim, error) {
	ds, err := makeDataset(p, dsName, seedFor(dsName))
	if err != nil {
		return nil, err
	}
	m, err := buildModel(p, arch, ds, seedFor(dsName))
	if err != nil {
		return nil, err
	}
	key := keys.Generate(rng.New(p.Seed + 40 + seedFor(dsName)))
	sched := schedule.New(keys.KeyBits, p.Seed+50)
	m.ApplyRawKey(key, sched)

	logf.printf("[%s/%s] training locked victim (%d locked neurons, %d params)",
		dsName, arch, m.LockedNeurons(), m.Net.ParamCount())
	res := core.Train(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, ownerTrain(p, nil))
	v := &victim{Model: m, Key: key, Sched: sched, Dataset: ds, OwnerAcc: res.FinalTestAcc()}
	logf.printf("[%s/%s] owner accuracy %.4f", dsName, arch, v.OwnerAcc)
	return v, nil
}

// lockedAcc evaluates the victim with locks disengaged (the stolen-model /
// baseline-architecture scenario) and restores the lock state.
func (v *victim) lockedAcc() float64 {
	v.Model.DisengageLocks()
	acc := v.Model.Accuracy(v.Dataset.TestX, v.Dataset.TestY, 64)
	v.Model.EngageLocks()
	return acc
}

// fineTune runs one attack with the profile's fine-tuning budget.
func (v *victim) fineTune(p Profile, init attack.Init, frac float64, seedOffset uint64) (attack.Result, error) {
	r, _, err := attack.FineTune(v.Model, v.Dataset, attack.FineTuneConfig{
		ThiefFrac:    frac,
		ThiefSeed:    p.Seed + 60 + seedOffset,
		Init:         init,
		AttackerSeed: p.Seed + 70 + seedOffset,
		Train:        ftTrain(p),
	})
	return r, err
}

// seedFor gives each dataset its own deterministic seed offset.
func seedFor(name string) uint64 {
	h := uint64(0)
	for _, c := range name {
		h = h*131 + uint64(c)
	}
	return h % 997
}

// archFor returns the Table I architecture for a dataset.
func archFor(dsName string) (core.Arch, error) {
	for _, b := range benchmarks {
		if b.Dataset == dsName {
			return b.Arch, nil
		}
	}
	return "", fmt.Errorf("experiments: no architecture mapped to dataset %q", dsName)
}
