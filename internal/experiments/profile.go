// Package experiments reproduces every table and figure of the paper's
// evaluation: Table I (locked-model and fine-tuning accuracy), Fig. 3
// (model capacity across keys), Fig. 5 (thief-dataset-size sweep), Fig. 6
// (learning-rate sweep), Fig. 7 (random- vs HPNN-initialized fine-tuning),
// the §III-D hardware overhead analysis (Fig. 4) and the §II encryption
// baseline, plus the ablation studies called out in DESIGN.md.
//
// Experiments are sized by a Profile. The substrate is a single-core pure
// Go trainer on synthetic data, so the default profiles run at reduced
// resolution/width; EXPERIMENTS.md records how each measured artifact
// compares with the paper's numbers.
package experiments

import (
	"fmt"

	"hpnn/internal/core"
)

// Logf receives progress lines from experiment drivers; nil discards them.
type Logf func(format string, args ...any)

func (l Logf) printf(format string, args ...any) {
	if l != nil {
		l(format, args...)
	}
}

// Profile sizes every experiment consistently.
type Profile struct {
	Name string

	// Dataset sizing. ImgSize applies to all three benchmarks (square);
	// 0 keeps native sizes (28/32 px).
	TrainN, TestN int
	ImgSize       int

	// Architecture width scales (1.0 = paper widths).
	WidthScale  map[core.Arch]float64
	OwnerEpochs int // owner (victim) training epochs
	FTEpochs    int // attacker fine-tuning epochs
	BatchSize   int
	LR          float64
	Momentum    float64
	// Optimizer selects the update rule by name ("" or "sgd" is momentum
	// SGD, "adam" is Adam); threaded through both the owner's training and
	// the attacker's fine-tuning.
	Optimizer string

	// Fig3Keys is the number of random HPNN keys for the capacity study
	// (the paper uses 20).
	Fig3Keys int

	// Seed derives every random stream in the harness.
	Seed uint64
}

// scale returns the width scale for an architecture (default 1).
func (p Profile) scale(a core.Arch) float64 {
	if s, ok := p.WidthScale[a]; ok {
		return s
	}
	return 1
}

// img returns the image size for a dataset (0 = native).
func (p Profile) img() int { return p.ImgSize }

// Bench is the smallest profile: used by the go-test benchmarks so the
// whole suite regenerates every artifact in minutes on one core.
func Bench() Profile {
	return Profile{
		Name:   "bench",
		TrainN: 400, TestN: 150, ImgSize: 16,
		WidthScale: map[core.Arch]float64{
			core.CNN1:     1,
			core.CNN2:     0.125,
			core.CNN3:     0.25,
			core.ResNet18: 0.125,
		},
		OwnerEpochs: 5, FTEpochs: 5,
		BatchSize: 32, LR: 0.02, Momentum: 0.9,
		Fig3Keys: 4,
		Seed:     3,
	}
}

// Quick is the default CLI profile: small enough for a laptop core,
// large enough that every qualitative shape of the paper is visible.
func Quick() Profile {
	return Profile{
		Name:   "quick",
		TrainN: 800, TestN: 300, ImgSize: 16,
		WidthScale: map[core.Arch]float64{
			core.CNN1:     1,
			core.CNN2:     0.125,
			core.CNN3:     0.25,
			core.ResNet18: 0.125,
		},
		OwnerEpochs: 8, FTEpochs: 8,
		BatchSize: 32, LR: 0.02, Momentum: 0.9,
		Fig3Keys: 6,
		Seed:     3,
	}
}

// Full is the faithful-scale profile: native resolutions, paper widths and
// the paper's 20-key capacity study. Expect hours of single-core runtime.
func Full() Profile {
	return Profile{
		Name:   "full",
		TrainN: 8000, TestN: 2000, ImgSize: 0,
		WidthScale: map[core.Arch]float64{
			core.CNN1:     1,
			core.CNN2:     1,
			core.CNN3:     1,
			core.ResNet18: 1,
		},
		OwnerEpochs: 20, FTEpochs: 15,
		BatchSize: 64, LR: 0.02, Momentum: 0.9,
		Fig3Keys: 20,
		Seed:     3,
	}
}

// ProfileByName resolves "bench", "quick" or "full".
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "bench":
		return Bench(), nil
	case "quick", "":
		return Quick(), nil
	case "full":
		return Full(), nil
	default:
		return Profile{}, fmt.Errorf("experiments: unknown profile %q (want bench, quick or full)", name)
	}
}

// benchmarks maps each paper dataset row to its architecture (Table I).
var benchmarks = []struct {
	Dataset string
	Arch    core.Arch
}{
	{"fashion", core.CNN1},
	{"cifar", core.CNN2},
	{"svhn", core.CNN3},
}
