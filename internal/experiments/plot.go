package experiments

import (
	"fmt"
	"math"
	"strings"
)

// curveGlyphs label the series in an ASCII plot, in curve order.
var curveGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// PlotCurves renders a CurveSet as an ASCII accuracy-vs-epoch chart
// (y: accuracy %, x: epoch), with the owner's accuracy drawn as a
// horizontal reference line of '='. It is the terminal rendition of the
// line plots in Figs. 5 and 6.
func PlotCurves(s CurveSet, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	epochs := 0
	lo, hi := 1.0, 0.0
	for _, c := range s.Curves {
		if len(c.Acc) > epochs {
			epochs = len(c.Acc)
		}
		for _, a := range c.Acc {
			lo = math.Min(lo, a)
			hi = math.Max(hi, a)
		}
	}
	if epochs == 0 {
		return "(no data)\n"
	}
	hi = math.Max(hi, s.OwnerAcc)
	lo = math.Min(lo, s.OwnerAcc)
	pad := 0.05 * (hi - lo + 0.01)
	lo, hi = math.Max(0, lo-pad), math.Min(1, hi+pad)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(acc float64) int {
		r := int(math.Round((hi - acc) / (hi - lo) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	col := func(epoch int) int {
		if epochs == 1 {
			return 0
		}
		return epoch * (width - 1) / (epochs - 1)
	}
	// Owner reference line.
	or := row(s.OwnerAcc)
	for x := 0; x < width; x++ {
		grid[or][x] = '='
	}
	// Series (later curves overwrite; glyphs keep them distinguishable).
	for ci, c := range s.Curves {
		g := curveGlyphs[ci%len(curveGlyphs)]
		for e, a := range c.Acc {
			grid[row(a)][col(e)] = g
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s / %s — accuracy vs epoch ('=' owner %.1f%%)\n", s.Dataset, s.Arch, 100*s.OwnerAcc)
	for r, line := range grid {
		y := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%6.1f%% |%s|\n", 100*y, string(line))
	}
	fmt.Fprintf(&b, "         epoch 1%sepoch %d\n", strings.Repeat(" ", max0(width-14)), epochs)
	legend := "         "
	for ci, c := range s.Curves {
		legend += fmt.Sprintf("%c=%s  ", curveGlyphs[ci%len(curveGlyphs)], c.Label)
	}
	b.WriteString(legend + "\n")
	return b.String()
}

func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}
