package experiments

import (
	"fmt"
	"strings"
)

// RenderTable1 formats Table I in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("TABLE I: Effectiveness of HPNN framework against model fine-tuning attack\n")
	b.WriteString(fmt.Sprintf("%-10s %-9s %9s | %8s | %8s %7s | %8s %7s | %8s %7s\n",
		"Dataset", "Network", "ReLU-neur", "Original",
		"Locked", "%drop", "RandFT", "%drop", "HPNNFT", "%drop"))
	b.WriteString(strings.Repeat("-", 104) + "\n")
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-10s %-9s %9d | %8.2f | %8.2f %7.2f | %8.2f %7.2f | %8.2f %7.2f\n",
			r.Dataset, r.Arch, r.LockedNeurons,
			100*r.OriginalAcc,
			100*r.LockedAcc, r.LockedDrop,
			100*r.RandomFTAcc, r.RandomFTDrop,
			100*r.HPNNFTAcc, r.HPNNFTDrop))
	}
	return b.String()
}

// RenderFig3 formats the capacity study as box-plot summaries.
func RenderFig3(results []Fig3Result) string {
	var b strings.Builder
	b.WriteString("Fig. 3: Performance of DL models locked using different HPNN keys\n")
	for _, r := range results {
		b.WriteString(fmt.Sprintf("%-9s baseline %.2f%% | %d keys: %s\n",
			r.Arch, 100*r.BaselineAcc, len(r.KeyAccs), r.Summary.String()))
		lo, hi := r.Summary.Min-0.05, r.Summary.Max+0.05
		b.WriteString(fmt.Sprintf("          [%.2f..%.2f] %s\n", 100*lo, 100*hi, r.Summary.BoxPlot(lo, hi, 50)))
	}
	return b.String()
}

// RenderCurves formats a family of accuracy-vs-epoch trajectories (Figs. 5
// and 6).
func RenderCurves(title string, sets []CurveSet) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, s := range sets {
		b.WriteString(fmt.Sprintf("%s / %s (owner accuracy %.2f%%)\n", s.Dataset, s.Arch, 100*s.OwnerAcc))
		epochs := 0
		for _, c := range s.Curves {
			if len(c.Acc) > epochs {
				epochs = len(c.Acc)
			}
		}
		header := fmt.Sprintf("  %-10s", "series")
		for e := 1; e <= epochs; e++ {
			header += fmt.Sprintf(" ep%-4d", e)
		}
		b.WriteString(header + "\n")
		for _, c := range s.Curves {
			line := fmt.Sprintf("  %-10s", c.Label)
			for _, a := range c.Acc {
				line += fmt.Sprintf(" %6.2f", 100*a)
			}
			b.WriteString(line + "\n")
		}
		b.WriteString(PlotCurves(s, 56, 12))
	}
	return b.String()
}

// RenderFig7 formats the random- vs HPNN-initialized comparison.
func RenderFig7(results []Fig7Result) string {
	var b strings.Builder
	b.WriteString("Fig. 7: Impact of thief dataset size on fine-tuning attack\n")
	for _, r := range results {
		b.WriteString(fmt.Sprintf("%s / %s (owner accuracy %.2f%%)\n", r.Dataset, r.Arch, 100*r.OwnerAcc))
		line := "  α%:       "
		for _, a := range r.Alphas {
			line += fmt.Sprintf(" %6.4g", a*100)
		}
		b.WriteString(line + "\n")
		line = "  hpnn-ft:  "
		for _, v := range r.HPNNFT {
			line += fmt.Sprintf(" %6.2f", 100*v)
		}
		b.WriteString(line + "\n")
		line = "  random-ft:"
		for _, v := range r.RandomFT {
			line += fmt.Sprintf(" %6.2f", 100*v)
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

// RenderHardware formats the §III-D overhead analysis and end-to-end
// device accuracies.
func RenderHardware(r HardwareResult) string {
	var b strings.Builder
	b.WriteString("Fig. 4 / §III-D: Hardware realization of neuron locking\n")
	b.WriteString(fmt.Sprintf("  MMU geometry:           %d×%d MACs, %d accumulator columns\n",
		r.Report.Rows, r.Report.Cols, r.Report.Cols))
	b.WriteString(fmt.Sprintf("  HPNN key length:        %d bits (secure on-chip storage)\n", r.Report.ExtraKeyBitsStorage))
	b.WriteString(fmt.Sprintf("  Additional XOR gates:   %d (16 per accumulator)\n", r.Report.XORGates))
	b.WriteString(fmt.Sprintf("  Gate overhead:          %.3f%% of the paper's 10^6-gate MMU (<0.5%% claim)\n", r.Report.OverheadPaperPct))
	b.WriteString(fmt.Sprintf("                          %.4f%% of the structural MMU model (%d gates)\n", r.Report.OverheadStructuralPct, r.Report.BaselineGates))
	b.WriteString(fmt.Sprintf("  Clock-cycle overhead:   %d (cycles with key %d == without key %d)\n",
		r.CyclesLocked-r.CyclesPlain, r.CyclesLocked, r.CyclesPlain))
	b.WriteString(fmt.Sprintf("  End-to-end accuracy:    float %.2f%% | TPU+key %.2f%% | TPU no key %.2f%% | TPU wrong key %.2f%%\n",
		100*r.FloatAcc, 100*r.TPUWithKey, 100*r.TPUNoKey, 100*r.TPUWrongKey))
	b.WriteString(fmt.Sprintf("  Gate-level datapath:    agrees with fast datapath = %v (%d gate ops sampled)\n",
		r.GateLevelAgrees, r.GateOpsSampled))
	b.WriteString(fmt.Sprintf("  Energy (test set):      %.2f µJ total, XOR share %.3f%%\n",
		r.Energy.TotalpJ/1e6, r.Energy.OverheadPct))
	return b.String()
}

// RenderCrypto formats the encryption-baseline comparison.
func RenderCrypto(rows []CryptoRow) string {
	var b strings.Builder
	b.WriteString("§II baseline: cryptographic protection vs HPNN locking\n")
	b.WriteString(fmt.Sprintf("  %-9s %12s %14s %14s\n", "Network", "Params", "AES enc (ms)", "AES dec (ms)"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("  %-9s %12d %14.2f %14.2f\n", r.Arch, r.Params, r.EncryptMS, r.DecryptMS))
	}
	b.WriteString("  HPNN alternative: 0 extra cycles at inference, 4096 XOR gates, no decryption step\n")
	return b.String()
}

// RenderGranularity formats the lock-granularity ablation.
func RenderGranularity(rows []GranularityRow) string {
	var b strings.Builder
	b.WriteString("Ablation: lock granularity (CNN1)\n")
	b.WriteString(fmt.Sprintf("  %-12s %13s %10s %10s\n", "granularity", "distinct bits", "owner", "no-key"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("  %-12s %13d %9.2f%% %9.2f%%\n",
			r.Granularity, r.DistinctBits, 100*r.OwnerAcc, 100*r.NoKeyAcc))
	}
	return b.String()
}

// RenderLayerSubsets formats the locked-layer-subset ablation.
func RenderLayerSubsets(rows []LayerSubsetRow) string {
	var b strings.Builder
	b.WriteString("Ablation: which layers are locked (CNN1)\n")
	b.WriteString(fmt.Sprintf("  %-12s %14s %10s %10s\n", "subset", "locked neurons", "owner", "no-key"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("  %-12s %14d %9.2f%% %9.2f%%\n",
			r.Subset, r.LockedNeurons, 100*r.OwnerAcc, 100*r.NoKeyAcc))
	}
	return b.String()
}

// RenderKeyDistance formats the key-Hamming-distance ablation.
func RenderKeyDistance(rows []KeyDistanceRow, ownerAcc float64) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("Ablation: accuracy vs key Hamming distance (owner %.2f%%)\n", 100*ownerAcc))
	line1, line2 := "  distance:", "  accuracy:"
	for _, r := range rows {
		line1 += fmt.Sprintf(" %6d", r.Distance)
		line2 += fmt.Sprintf(" %5.1f%%", 100*r.Acc)
	}
	b.WriteString(line1 + "\n" + line2 + "\n")
	return b.String()
}

// RenderKeyRecovery formats the greedy key-recovery study.
func RenderKeyRecovery(r KeyRecoveryResult) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("Security: greedy key-recovery attack (owner %.2f%%, %d locked neurons)\n",
		100*r.OwnerAcc, r.LockedNeurons))
	b.WriteString(fmt.Sprintf("  %-10s %12s %12s\n", "queries", "test acc", "bits flipped"))
	for i, budget := range r.Budgets {
		b.WriteString(fmt.Sprintf("  %-10d %11.2f%% %12d\n", budget, 100*r.TestAcc[i], r.BitsFlipped[i]))
	}
	b.WriteString("  a polynomial hill climber stays far below the owner: the key must be searched, not climbed\n")
	return b.String()
}

// RenderQuant formats the datapath-width ablation.
func RenderQuant(rows []QuantRow) string {
	var b strings.Builder
	b.WriteString("Ablation: accelerator datapath width (trusted device, CNN1)\n")
	b.WriteString(fmt.Sprintf("  %-6s %10s %10s\n", "bits", "TPU acc", "float"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("  %-6d %9.2f%% %9.2f%%\n", r.Bits, 100*r.TPUAcc, 100*r.FloatAcc))
	}
	return b.String()
}

// RenderTransforms formats the transformation-attack sweep.
func RenderTransforms(rows []TransformRow, ownerAcc float64) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("Security: transformation attacks on stolen weights (owner %.2f%%)\n", 100*ownerAcc))
	b.WriteString(fmt.Sprintf("  %-8s %9s %10s %10s\n", "kind", "strength", "no-key", "with-key"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("  %-8s %9.2f %9.2f%% %9.2f%%\n",
			r.Kind, r.Strength, 100*r.NoKeyAcc, 100*r.KeyAcc))
	}
	b.WriteString("  no weight transformation recovers the locked function — the key is a sign structure\n")
	return b.String()
}

// RenderWatermarkComparison formats the watermark-vs-HPNN study.
func RenderWatermarkComparison(c WatermarkComparison) string {
	var b strings.Builder
	b.WriteString("Baseline comparison: watermarking vs HPNN under model theft + fine-tuning (α=10%)\n")
	b.WriteString(fmt.Sprintf("  watermarked model: owner %.2f%%, embed BER %.3f\n", 100*c.WMOwnerAcc, c.WMEmbedBER))
	b.WriteString(fmt.Sprintf("    pirate's fine-tuned copy: %.2f%% accuracy — fully usable privately\n", 100*c.WMPirateAcc))
	det := "only if the owner can inspect/query the pirate's copy"
	if !c.WMDetectable {
		det = "and the signature did not even survive (BER " + fmt.Sprintf("%.3f", c.WMPostBER) + ")"
	} else {
		det += fmt.Sprintf(" (BER %.3f)", c.WMPostBER)
	}
	b.WriteString("    ownership detectable: " + det + "\n")
	b.WriteString(fmt.Sprintf("  HPNN-locked model: owner %.2f%%\n", 100*c.HPNNOwnerAcc))
	b.WriteString(fmt.Sprintf("    pirate without key: %.2f%% — the raw theft is unusable\n", 100*c.HPNNStolenAcc))
	b.WriteString(fmt.Sprintf("    pirate after fine-tuning on thief data: %.2f%% (%.2f points below the owner)\n",
		100*c.HPNNPirateAcc, 100*(c.HPNNOwnerAcc-c.HPNNPirateAcc)))
	b.WriteString("  watermarks prove ownership after the fact; HPNN makes the stolen artifact itself worthless\n")
	b.WriteString("  without the key, and caps what thief-data retraining can recover (§I-II, §IV-B)\n")
	return b.String()
}
