package experiments

import (
	"fmt"

	"hpnn/internal/core"
	"hpnn/internal/keys"
	"hpnn/internal/nn"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
)

// Ablation studies for the design choices called out in DESIGN.md §5.
// None of these appear in the paper; they probe how much each design knob
// contributes to the obfuscation.

// GranularityRow reports the no-key collapse when locks are programmed at
// different granularities.
type GranularityRow struct {
	Granularity string
	// DistinctBits is the number of independent lock decisions the
	// granularity allows across the network.
	DistinctBits int
	OwnerAcc     float64
	NoKeyAcc     float64
}

// AblationLockGranularity compares per-neuron locking (the paper's scheme,
// via the 256-column schedule), per-channel locking (all spatial positions
// of a feature map share one bit) and per-layer locking (a single bit flips
// an entire layer).
func AblationLockGranularity(p Profile, logf Logf) ([]GranularityRow, error) {
	ds, err := makeDataset(p, "fashion", seedFor("fashion"))
	if err != nil {
		return nil, err
	}
	key := keys.Generate(rng.New(p.Seed + 300))
	sched := schedule.New(keys.KeyBits, p.Seed+50)

	grans := []string{"per-neuron", "per-channel", "per-layer"}
	var rows []GranularityRow
	for gi, g := range grans {
		m, err := buildModel(p, core.CNN1, ds, uint64(300+gi))
		if err != nil {
			return nil, err
		}
		distinct := programGranularity(m, key, sched, g)
		tr := core.Train(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, ownerTrain(p, nil))
		row := GranularityRow{
			Granularity:  g,
			DistinctBits: distinct,
			OwnerAcc:     tr.FinalTestAcc(),
		}
		m.DisengageLocks()
		row.NoKeyAcc = m.Accuracy(ds.TestX, ds.TestY, 64)
		m.EngageLocks()
		rows = append(rows, row)
		logf.printf("[ablation/granularity] %s: owner %.4f, no-key %.4f (%d distinct bits)",
			g, row.OwnerAcc, row.NoKeyAcc, distinct)
	}
	return rows, nil
}

// programGranularity programs a model's locks at the requested granularity
// and returns the number of independent bits used.
func programGranularity(m *core.Model, key keys.Key, sched *schedule.Schedule, gran string) int {
	distinct := 0
	for li, l := range m.Locks() {
		n := l.Neurons()
		bits := make([]byte, n)
		switch gran {
		case "per-neuron":
			cols := sched.Assign(l.ID, n)
			for j, c := range cols {
				bits[j] = key.Bit(c)
			}
			distinct += minInt(n, keys.KeyBits)
		case "per-channel":
			// The lock covers [C, H, W] flattened; CNN1's conv outputs
			// have H·W pixels per channel. Use the schedule on channel
			// indices so every pixel of a channel shares a bit. For
			// dense locks (no spatial extent) this degrades to
			// per-neuron.
			channels, pix := channelsOf(m, li, n)
			cols := sched.Assign(l.ID, channels)
			for ch := 0; ch < channels; ch++ {
				b := key.Bit(cols[ch])
				for p := 0; p < pix; p++ {
					bits[ch*pix+p] = b
				}
			}
			distinct += minInt(channels, keys.KeyBits)
		case "per-layer":
			b := key.Bit(sched.Assign(l.ID, 1)[0])
			for j := range bits {
				bits[j] = b
			}
			distinct++
		default:
			panic(fmt.Sprintf("experiments: unknown granularity %q", gran))
		}
		l.SetBits(bits)
		l.Engage()
	}
	return distinct
}

// channelsOf infers the channel count of the li-th lock from the preceding
// convolution (sequential architectures: lock i follows conv i). Dense
// locks fall back to per-neuron (pix = 1).
func channelsOf(m *core.Model, li, neurons int) (channels, pix int) {
	convs := 0
	for _, l := range m.Net.Layers {
		c, ok := l.(*nn.Conv2D)
		if !ok {
			continue
		}
		if convs == li && neurons%c.OutC == 0 {
			return c.OutC, neurons / c.OutC
		}
		convs++
	}
	return neurons, 1
}

// LayerSubsetRow reports collapse when only a subset of lock layers is
// active during training.
type LayerSubsetRow struct {
	Subset        string
	LockedNeurons int
	OwnerAcc      float64
	NoKeyAcc      float64
}

// AblationLockedLayers trains CNN2 victims with locks active on (a) only
// the first ReLU, (b) only the last ReLU, (c) all ReLUs, and measures the
// collapse each provides.
func AblationLockedLayers(p Profile, logf Logf) ([]LayerSubsetRow, error) {
	ds, err := makeDataset(p, "fashion", seedFor("fashion"))
	if err != nil {
		return nil, err
	}
	key := keys.Generate(rng.New(p.Seed + 310))
	sched := schedule.New(keys.KeyBits, p.Seed+50)

	subsets := []string{"first-only", "last-only", "all"}
	var rows []LayerSubsetRow
	for si, subset := range subsets {
		m, err := buildModel(p, core.CNN1, ds, uint64(310+si))
		if err != nil {
			return nil, err
		}
		m.ApplyRawKey(key, sched)
		locks := m.Locks()
		lockedNeurons := 0
		for i, l := range locks {
			use := subset == "all" ||
				(subset == "first-only" && i == 0) ||
				(subset == "last-only" && i == len(locks)-1)
			if use {
				lockedNeurons += l.Neurons()
			} else {
				// Zero bits = identity transform: layer effectively unlocked.
				l.SetBits(make([]byte, l.Neurons()))
			}
		}
		tr := core.Train(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, ownerTrain(p, nil))
		row := LayerSubsetRow{Subset: subset, LockedNeurons: lockedNeurons, OwnerAcc: tr.FinalTestAcc()}
		m.DisengageLocks()
		row.NoKeyAcc = m.Accuracy(ds.TestX, ds.TestY, 64)
		m.EngageLocks()
		rows = append(rows, row)
		logf.printf("[ablation/layers] %s: owner %.4f, no-key %.4f (%d locked neurons)",
			subset, row.OwnerAcc, row.NoKeyAcc, lockedNeurons)
	}
	return rows, nil
}

// KeyDistanceRow reports accuracy under a key at Hamming distance D from
// the true key.
type KeyDistanceRow struct {
	Distance int
	Acc      float64
}

// AblationKeyDistance trains one victim and evaluates it under
// progressively more wrong keys — does partial key knowledge help an
// attacker? (Related to the paper's security argument that the key space
// must be searched exhaustively.)
func AblationKeyDistance(p Profile, logf Logf) ([]KeyDistanceRow, float64, error) {
	v, err := trainVictim(p, "fashion", core.CNN1, logf)
	if err != nil {
		return nil, 0, err
	}
	distances := []int{0, 1, 4, 16, 64, 128, 192, 256}
	var rows []KeyDistanceRow
	for _, d := range distances {
		flipped := v.Key.FlipRandomBits(rng.New(p.Seed+320+uint64(d)), d)
		v.Model.ApplyRawKey(flipped, v.Sched)
		acc := v.Model.Accuracy(v.Dataset.TestX, v.Dataset.TestY, 64)
		rows = append(rows, KeyDistanceRow{Distance: d, Acc: acc})
		logf.printf("[ablation/keydist] d=%3d: accuracy %.4f", d, acc)
	}
	// Restore the true key.
	v.Model.ApplyRawKey(v.Key, v.Sched)
	return rows, v.OwnerAcc, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
