package experiments

import (
	"fmt"
	"strings"

	"hpnn/internal/attack"
	"hpnn/internal/core"
	"hpnn/internal/dataset"
	"hpnn/internal/keys"
	"hpnn/internal/lockscheme"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
)

// SchemeBenchRow is one lock scheme's line in the cross-scheme comparison:
// deployment accuracies from the contract views plus the outcome of every
// generic attack under an identical budget.
type SchemeBenchRow struct {
	Scheme   string
	Describe string

	// Deployment views.
	OwnerAcc    float64 // owner's model before publishing
	UnlockedAcc float64 // published + Unlock on the owner's device
	NoKeyAcc    float64 // published + Unlock with no device (thief view)
	WrongKeyAcc float64 // published + Unlock under a far (d=128) key

	// Fine-tuning attack (identical thief data and budget per scheme).
	FTStolenAcc float64 // fine-tune from the published weights
	FTRandomAcc float64 // fine-tune from random init (baseline theft value)

	// Greedy device-key recovery: attacker test accuracy after the budget
	// and the number of key bits the climb committed to.
	KeyRecAcc  float64
	KeyRecBits int
	KeyRecGain float64 // thief-view improvement over the all-zero start
	KeyQueries int

	// Logic-locking trojan (insider with the true key).
	TrojanSuccess   bool
	TrojanFlips     int
	TrojanTargetAcc float64 // target-class accuracy under the trojaned key
	TrojanCleanAcc  float64 // off-target accuracy under the trojaned key
}

// SchemeBench runs every registered lock scheme through an identical
// train→publish→attack pipeline on fashion/CNN1 at profile scale. The table
// is the repo's answer to "which locking mechanism should a device vendor
// pick": hpnn-xor pays for its zero-overhead datapath with per-bit key
// locality (climbable, trojanable), while the avalanche-style weight-space
// schemes resist both generic attacks at the price of a compile-time unlock
// inside the device boundary.
func SchemeBench(p Profile, logf Logf) ([]SchemeBenchRow, error) {
	ds, err := makeDataset(p, "fashion", seedFor("fashion"))
	if err != nil {
		return nil, err
	}
	var rows []SchemeBenchRow
	for _, name := range lockscheme.Names() {
		scheme, err := lockscheme.Get(name)
		if err != nil {
			return nil, err
		}
		row, err := benchScheme(p, scheme, ds, logf)
		if err != nil {
			return nil, fmt.Errorf("scheme %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// benchScheme measures one scheme end to end.
func benchScheme(p Profile, scheme lockscheme.Scheme, ds *dataset.Dataset, logf Logf) (SchemeBenchRow, error) {
	row := SchemeBenchRow{Scheme: scheme.Name(), Describe: scheme.Describe()}

	m, err := buildModel(p, core.CNN1, ds, seedFor("fashion"))
	if err != nil {
		return row, err
	}
	key := keys.Generate(rng.New(p.Seed + 500))
	sched := schedule.New(keys.KeyBits, p.Seed+501)
	dev := keys.NewDevice("schemebench", key)

	// Owner lifecycle.
	if err := scheme.InstrumentTraining(m, dev, sched); err != nil {
		return row, err
	}
	logf.printf("[schemes/%s] training victim", scheme.Name())
	res := core.Train(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, ownerTrain(p, nil))
	row.OwnerAcc = res.FinalTestAcc()

	pub, err := m.Clone()
	if err != nil {
		return row, err
	}
	if err := scheme.Publish(pub, dev, sched); err != nil {
		return row, err
	}
	unlock := func(d *keys.Device) (*core.Model, error) {
		c, err := pub.Clone()
		if err != nil {
			return nil, err
		}
		if err := scheme.Unlock(c, d, sched); err != nil {
			return nil, err
		}
		return c, nil
	}

	// Deployment views.
	unlocked, err := unlock(dev)
	if err != nil {
		return row, err
	}
	row.UnlockedAcc = unlocked.Accuracy(ds.TestX, ds.TestY, 64)
	commodity, err := unlock(nil)
	if err != nil {
		return row, err
	}
	row.NoKeyAcc = commodity.Accuracy(ds.TestX, ds.TestY, 64)
	wrongKey := key.FlipRandomBits(rng.New(p.Seed+502), keys.KeyBits/2)
	wrong, err := unlock(keys.NewDevice("schemebench-wrong", wrongKey))
	if err != nil {
		return row, err
	}
	row.WrongKeyAcc = wrong.Accuracy(ds.TestX, ds.TestY, 64)
	logf.printf("[schemes/%s] owner %.4f, unlocked %.4f, no-key %.4f, wrong-key %.4f",
		scheme.Name(), row.OwnerAcc, row.UnlockedAcc, row.NoKeyAcc, row.WrongKeyAcc)

	// Fine-tuning attacks start from the commodity view of the published
	// artifact — exactly what a thief downloads and can run.
	ftCfg := attack.FineTuneConfig{
		ThiefFrac: 0.10, ThiefSeed: p.Seed + 503,
		AttackerSeed: p.Seed + 504, Train: ftTrain(p),
	}
	ftCfg.Init = attack.InitStolen
	stolen, _, err := attack.FineTune(commodity, ds, ftCfg)
	if err != nil {
		return row, err
	}
	row.FTStolenAcc = stolen.FinalAcc
	ftCfg.Init = attack.InitRandom
	random, _, err := attack.FineTune(commodity, ds, ftCfg)
	if err != nil {
		return row, err
	}
	row.FTRandomAcc = random.FinalAcc
	logf.printf("[schemes/%s] fine-tune stolen %.4f, random %.4f",
		scheme.Name(), row.FTStolenAcc, row.FTRandomAcc)

	// Greedy device-key recovery.
	rec, err := attack.RecoverKey(scheme, pub, sched, ds, attack.SchemeKeyRecoveryConfig{
		ThiefFrac: 0.10, ThiefSeed: p.Seed + 505,
		MaxQueries: 40 * p.FTEpochs, Seed: p.Seed + 506,
	})
	if err != nil {
		return row, err
	}
	row.KeyRecAcc = rec.TestAccEnd
	row.KeyRecBits = rec.BitsFlipped
	row.KeyRecGain = rec.ThiefAccEnd - rec.ThiefAccStart
	row.KeyQueries = rec.Queries
	logf.printf("[schemes/%s] key recovery: test %.4f (gain %.4f, %d bits, %d queries)",
		scheme.Name(), row.KeyRecAcc, row.KeyRecGain, row.KeyRecBits, row.KeyQueries)

	// Logic-locking trojan.
	tro, err := attack.Trojan(scheme, pub, key, sched, ds, attack.TrojanConfig{
		TargetClass: 0, MaxFlips: 16, CleanDropTol: 0.10,
		MaxQueries: 20 * p.FTEpochs, Seed: p.Seed + 507,
	})
	if err != nil {
		return row, err
	}
	row.TrojanSuccess = tro.Success
	row.TrojanFlips = tro.Flips
	row.TrojanTargetAcc = tro.TargetAccEnd
	row.TrojanCleanAcc = tro.CleanAccEnd
	logf.printf("[schemes/%s] trojan: success=%v flips=%d target %.4f clean %.4f",
		scheme.Name(), tro.Success, tro.Flips, tro.TargetAccEnd, tro.CleanAccEnd)
	return row, nil
}

// RenderSchemeBench formats the cross-scheme comparison table.
func RenderSchemeBench(rows []SchemeBenchRow) string {
	var b strings.Builder
	b.WriteString("Cross-scheme comparison: every registered lock scheme under identical attacks\n")
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("  %-10s %s\n", r.Scheme, r.Describe))
	}
	b.WriteString(fmt.Sprintf("  %-10s | %6s %7s %6s %6s | %6s %6s | %12s | %s\n",
		"scheme", "owner", "unlock", "no-key", "wrongK", "FT-st", "FT-rnd", "key-recovery", "trojan"))
	b.WriteString("  " + strings.Repeat("-", 96) + "\n")
	for _, r := range rows {
		trojan := fmt.Sprintf("resisted (%d flips)", r.TrojanFlips)
		if r.TrojanSuccess {
			trojan = fmt.Sprintf("SUCCEEDED (%d flips, target %.0f%%)", r.TrojanFlips, 100*r.TrojanTargetAcc)
		}
		b.WriteString(fmt.Sprintf("  %-10s | %5.1f%% %6.1f%% %5.1f%% %5.1f%% | %5.1f%% %5.1f%% | %5.1f%% (%3db) | %s\n",
			r.Scheme,
			100*r.OwnerAcc, 100*r.UnlockedAcc, 100*r.NoKeyAcc, 100*r.WrongKeyAcc,
			100*r.FTStolenAcc, 100*r.FTRandomAcc,
			100*r.KeyRecAcc, r.KeyRecBits, trojan))
	}
	b.WriteString("  hpnn-xor's per-bit key locality is what the datapath XOR buys — and what the greedy\n")
	b.WriteString("  climber and the trojan exploit; the avalanche weight-space schemes resist both\n")
	b.WriteString("  but give up the zero-cost in-datapath unlock (DESIGN.md §12)\n")
	return b.String()
}
