package experiments

import (
	"hpnn/internal/attack"
	"hpnn/internal/core"
	"hpnn/internal/keys"
	"hpnn/internal/tpu"
	"hpnn/internal/watermark"
)

// KeyRecoveryResult is the greedy bit-recovery study: attacker gain as a
// function of query budget.
type KeyRecoveryResult struct {
	OwnerAcc      float64
	LockedNeurons int
	Budgets       []int
	TestAcc       []float64 // attacker test accuracy after each budget
	BitsFlipped   []int
}

// KeyRecovery runs the greedy sign-recovery attack at increasing query
// budgets against a CNN1 victim. The paper's security argument is that
// the key must be searched exhaustively; this experiment quantifies what a
// polynomial hill climber actually achieves.
func KeyRecovery(p Profile, logf Logf) (KeyRecoveryResult, error) {
	var out KeyRecoveryResult
	v, err := trainVictim(p, "fashion", core.CNN1, logf)
	if err != nil {
		return out, err
	}
	out.OwnerAcc = v.OwnerAcc
	out.LockedNeurons = v.Model.LockedNeurons()
	out.Budgets = []int{50, 200, 800}
	for _, budget := range out.Budgets {
		res, err := attack.RecoverLocks(v.Model, v.Dataset, attack.KeyRecoveryConfig{
			ThiefFrac:  0.10,
			ThiefSeed:  p.Seed + 91,
			MaxQueries: budget,
			Seed:       p.Seed + 92,
		})
		if err != nil {
			return out, err
		}
		out.TestAcc = append(out.TestAcc, res.TestAccEnd)
		out.BitsFlipped = append(out.BitsFlipped, res.BitsFlipped)
		logf.printf("[keyrecovery] budget %4d: test %.4f (flipped %d bits, owner %.4f)",
			budget, res.TestAccEnd, res.BitsFlipped, v.OwnerAcc)
	}
	return out, nil
}

// QuantRow is the datapath-width ablation for one width.
type QuantRow struct {
	Bits     int
	TPUAcc   float64
	FloatAcc float64
}

// AblationQuant measures locked-inference fidelity of the simulated device
// across datapath widths (8 down to 2 bits) against the float reference.
func AblationQuant(p Profile, logf Logf) ([]QuantRow, error) {
	v, err := trainVictim(p, "fashion", core.CNN1, logf)
	if err != nil {
		return nil, err
	}
	dev := keys.NewDevice("trusted", v.Key)
	var rows []QuantRow
	for _, bits := range []int{8, 6, 4, 2} {
		cfg := tpu.DefaultConfig()
		cfg.Bits = bits
		acc, err := tpu.NewAccelerator(cfg, dev, v.Sched)
		if err != nil {
			return nil, err
		}
		a, err := acc.Accuracy(v.Model, v.Dataset.TestX, v.Dataset.TestY)
		if err != nil {
			return nil, err
		}
		rows = append(rows, QuantRow{Bits: bits, TPUAcc: a, FloatAcc: v.OwnerAcc})
		logf.printf("[ablation/quant] %d-bit datapath: %.4f (float %.4f)", bits, a, v.OwnerAcc)
	}
	return rows, nil
}

// TransformRow is one transformation-attack measurement.
type TransformRow struct {
	Kind     attack.Transform
	Strength float64
	NoKeyAcc float64
	KeyAcc   float64
}

// TransformAttacks runs the §I transformation-attack sweep (scaling,
// noising, pruning) against a locked CNN1 victim: none of them recover
// accuracy without the key, and mild ones preserve the keyed function.
func TransformAttacks(p Profile, logf Logf) ([]TransformRow, float64, error) {
	v, err := trainVictim(p, "fashion", core.CNN1, logf)
	if err != nil {
		return nil, 0, err
	}
	cfgs := []attack.TransformConfig{
		{Kind: attack.TransformScale, Strength: 1.5, Seed: p.Seed + 95},
		{Kind: attack.TransformScale, Strength: 4, Seed: p.Seed + 95},
		{Kind: attack.TransformNoise, Strength: 0.02, Seed: p.Seed + 96},
		{Kind: attack.TransformNoise, Strength: 0.10, Seed: p.Seed + 96},
		{Kind: attack.TransformPrune, Strength: 0.2, Seed: p.Seed + 97},
		{Kind: attack.TransformPrune, Strength: 0.5, Seed: p.Seed + 97},
	}
	res, err := attack.TransformSweep(v.Model, v.Dataset, cfgs)
	if err != nil {
		return nil, 0, err
	}
	rows := make([]TransformRow, 0, len(res))
	for _, r := range res {
		rows = append(rows, TransformRow{
			Kind:     r.Config.Kind,
			Strength: r.Config.Strength,
			NoKeyAcc: r.NoKeyAcc,
			KeyAcc:   r.WithKeyAcc,
		})
		logf.printf("[transform] %s(%.2f): no-key %.4f, with-key %.4f",
			r.Config.Kind, r.Config.Strength, r.NoKeyAcc, r.WithKeyAcc)
	}
	return rows, v.OwnerAcc, nil
}

// WatermarkComparison pits the §I/§II watermarking baseline against HPNN
// in the private-deployment threat model the paper motivates: a pirate
// steals the published model and fine-tunes it for private use.
type WatermarkComparison struct {
	// Watermarked (unprotected-function) model.
	WMOwnerAcc   float64
	WMEmbedBER   float64
	WMPirateAcc  float64 // pirate's fine-tuned accuracy — the usable theft
	WMPostBER    float64 // BER after the pirate's fine-tuning
	WMDetectable bool    // detection still possible IF the owner gets access
	// HPNN-locked model under the identical attack.
	HPNNOwnerAcc  float64
	HPNNStolenAcc float64 // no-key accuracy
	HPNNPirateAcc float64 // fine-tuned accuracy
}

// WatermarkVsHPNN runs the comparison at profile scale on fashion/CNN1.
func WatermarkVsHPNN(p Profile, logf Logf) (WatermarkComparison, error) {
	var out WatermarkComparison
	ds, err := makeDataset(p, "fashion", seedFor("fashion"))
	if err != nil {
		return out, err
	}

	// Watermarking baseline.
	wmModel, err := buildModel(p, core.CNN1, ds, 400)
	if err != nil {
		return out, err
	}
	wm, err := watermark.New(wmModel, watermark.Config{Bits: 32, Strength: 0.5, Seed: p.Seed + 401, ParamIndex: -1})
	if err != nil {
		return out, err
	}
	res := watermark.TrainEmbedded(wmModel, wm, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, ownerTrain(p, nil))
	out.WMOwnerAcc = res.FinalTestAcc()
	_, out.WMEmbedBER, err = wm.Detected(wmModel)
	if err != nil {
		return out, err
	}
	ft, pirate, err := attack.FineTune(wmModel, ds, attack.FineTuneConfig{
		ThiefFrac: 0.10, ThiefSeed: p.Seed + 402, Init: attack.InitStolen,
		AttackerSeed: p.Seed + 403, Train: ftTrain(p),
	})
	if err != nil {
		return out, err
	}
	out.WMPirateAcc = ft.FinalAcc
	out.WMDetectable, out.WMPostBER, err = wm.Detected(pirate)
	if err != nil {
		return out, err
	}
	logf.printf("[wm-vs-hpnn] watermark: owner %.4f, pirate FT %.4f, post-attack BER %.3f",
		out.WMOwnerAcc, out.WMPirateAcc, out.WMPostBER)

	// HPNN under the identical attack.
	v, err := trainVictim(p, "fashion", core.CNN1, logf)
	if err != nil {
		return out, err
	}
	out.HPNNOwnerAcc = v.OwnerAcc
	out.HPNNStolenAcc = v.lockedAcc()
	hft, err := v.fineTune(p, attack.InitStolen, 0.10, 404)
	if err != nil {
		return out, err
	}
	out.HPNNPirateAcc = hft.FinalAcc
	logf.printf("[wm-vs-hpnn] hpnn: owner %.4f, stolen %.4f, pirate FT %.4f",
		out.HPNNOwnerAcc, out.HPNNStolenAcc, out.HPNNPirateAcc)
	return out, nil
}
