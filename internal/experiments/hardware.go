package experiments

import (
	"hpnn/internal/core"
	"hpnn/internal/cryptobase"
	"hpnn/internal/dataset"
	"hpnn/internal/keys"
	"hpnn/internal/modelio"
	"hpnn/internal/rng"
	"hpnn/internal/tensor"
	"hpnn/internal/tpu"
)

// HardwareResult reproduces the §III-D analysis (Fig. 4): the gate-count /
// area / cycle overhead of the key-dependent accumulator, plus end-to-end
// accuracy of a locked model on the simulated device under the four key
// scenarios.
type HardwareResult struct {
	Report tpu.GateReport

	// Cycle counts for the same inference workload with and without the
	// HPNN key device attached — equal by construction (zero overhead).
	CyclesPlain, CyclesLocked uint64

	// End-to-end accuracies: float reference (key engaged in software),
	// trusted device (correct key), commodity device (no key), pirate
	// device (wrong key).
	FloatAcc, TPUWithKey, TPUNoKey, TPUWrongKey float64

	// GateLevelAgrees records that the bit-level datapath matched the
	// fast datapath on a sample of inferences.
	GateLevelAgrees bool
	GateOpsSampled  uint64

	// Energy is the estimated per-workload energy breakdown, with the
	// XOR gates' share as the HPNN overhead.
	Energy tpu.EnergyReport
}

// Fig4Hardware trains a locked CNN1 victim at profile scale and runs it on
// the simulated TPU.
func Fig4Hardware(p Profile, logf Logf) (HardwareResult, error) {
	var res HardwareResult
	res.Report = tpu.Gates(tpu.DefaultConfig())

	v, err := trainVictim(p, "fashion", core.CNN1, logf)
	if err != nil {
		return res, err
	}
	res.FloatAcc = v.OwnerAcc

	trustedDev := keys.NewDevice("trusted", v.Key)
	trusted, err := tpu.NewAccelerator(tpu.DefaultConfig(), trustedDev, v.Sched)
	if err != nil {
		return res, err
	}
	if res.TPUWithKey, err = trusted.Accuracy(v.Model, v.Dataset.TestX, v.Dataset.TestY); err != nil {
		return res, err
	}
	res.CyclesLocked = trusted.Stats().Cycles
	res.Energy = tpu.Energy(trusted.Stats())

	commodity, err := tpu.NewAccelerator(tpu.DefaultConfig(), nil, v.Sched)
	if err != nil {
		return res, err
	}
	if res.TPUNoKey, err = commodity.Accuracy(v.Model, v.Dataset.TestX, v.Dataset.TestY); err != nil {
		return res, err
	}
	res.CyclesPlain = commodity.Stats().Cycles

	pirateDev := keys.NewDevice("pirate", v.Key.FlipRandomBits(rng.New(p.Seed+90), keys.KeyBits/2))
	pirate, err := tpu.NewAccelerator(tpu.DefaultConfig(), pirateDev, v.Sched)
	if err != nil {
		return res, err
	}
	if res.TPUWrongKey, err = pirate.Accuracy(v.Model, v.Dataset.TestX, v.Dataset.TestY); err != nil {
		return res, err
	}

	// Gate-level spot check on a few samples.
	gate, err := tpu.NewAccelerator(tpu.Config{Rows: 256, Cols: 256, GateLevel: true}, trustedDev, v.Sched)
	if err != nil {
		return res, err
	}
	n := 4
	if v.Dataset.TestX.Shape[0] < n {
		n = v.Dataset.TestX.Shape[0]
	}
	sub := subBatch(v.Dataset, n)
	fastPred, err := trusted.Predict(v.Model, sub)
	if err != nil {
		return res, err
	}
	gatePred, err := gate.Predict(v.Model, sub)
	if err != nil {
		return res, err
	}
	res.GateLevelAgrees = true
	for i := range fastPred {
		if fastPred[i] != gatePred[i] {
			res.GateLevelAgrees = false
		}
	}
	res.GateOpsSampled = gate.Stats().GateOps
	logf.printf("[fig4] float %.4f | tpu+key %.4f | tpu no-key %.4f | tpu wrong-key %.4f",
		res.FloatAcc, res.TPUWithKey, res.TPUNoKey, res.TPUWrongKey)
	return res, nil
}

// CryptoRow is the encryption-baseline measurement for one architecture.
type CryptoRow struct {
	Arch      core.Arch
	Params    int
	EncryptMS float64
	DecryptMS float64
}

// CryptoBaseline measures AES-256-CTR encrypt/decrypt latency over each
// full-scale architecture's parameters — the §II heavyweight alternative.
// HPNN's runtime alternative costs zero cycles and 4096 gates.
func CryptoBaseline(logf Logf) ([]CryptoRow, error) {
	configs := []core.Config{
		{Arch: core.CNN1, InC: 1, InH: 28, InW: 28},
		{Arch: core.CNN3, InC: 3, InH: 32, InW: 32},
		{Arch: core.CNN2, InC: 3, InH: 32, InW: 32},
	}
	key := make([]byte, cryptobase.KeySize)
	iv := make([]byte, 16)
	for i := range key {
		key[i] = byte(i)
	}
	var rows []CryptoRow
	for _, cfg := range configs {
		m, err := core.NewModel(cfg)
		if err != nil {
			return nil, err
		}
		params := len(modelio.FlattenParams(m))
		rep, err := cryptobase.MeasureOverhead(params, key, iv)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CryptoRow{
			Arch:      cfg.Arch,
			Params:    params,
			EncryptMS: float64(rep.Encrypt.Microseconds()) / 1000,
			DecryptMS: float64(rep.Decrypt.Microseconds()) / 1000,
		})
		logf.printf("[crypto] %s: %d params, enc %.2f ms, dec %.2f ms",
			cfg.Arch, params, rows[len(rows)-1].EncryptMS, rows[len(rows)-1].DecryptMS)
	}
	return rows, nil
}

func subBatch(ds *dataset.Dataset, n int) *tensor.Tensor {
	feat := ds.C * ds.H * ds.W
	return tensor.FromSlice(ds.TestX.Data[:n*feat], n, ds.C, ds.H, ds.W)
}
