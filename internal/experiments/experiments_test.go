package experiments

import (
	"strings"
	"testing"

	"hpnn/internal/core"
)

// micro is a minimal profile for the experiment-driver tests: every driver
// must produce sane, correctly shaped results; statistical strength is the
// benchmarks' job.
func micro() Profile {
	return Profile{
		Name:   "micro",
		TrainN: 200, TestN: 80, ImgSize: 16,
		WidthScale: map[core.Arch]float64{
			core.CNN1:     0.5,
			core.CNN2:     0.125,
			core.CNN3:     0.25,
			core.ResNet18: 0.125,
		},
		OwnerEpochs: 3, FTEpochs: 3,
		BatchSize: 32, LR: 0.02, Momentum: 0.9,
		Fig3Keys: 2,
		Seed:     3,
	}
}

func TestProfileByName(t *testing.T) {
	for _, n := range []string{"bench", "quick", "full", ""} {
		p, err := ProfileByName(n)
		if err != nil {
			t.Fatalf("%q: %v", n, err)
		}
		if p.TrainN <= 0 || p.OwnerEpochs <= 0 {
			t.Fatalf("%q: degenerate profile %+v", n, p)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1(micro(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.OriginalAcc <= 0 || r.OriginalAcc > 1 {
			t.Fatalf("%s: bad original accuracy %v", r.Dataset, r.OriginalAcc)
		}
		if r.LockedAcc >= r.OriginalAcc {
			t.Fatalf("%s: locked accuracy %v did not drop from %v", r.Dataset, r.LockedAcc, r.OriginalAcc)
		}
		if r.LockedNeurons <= 0 {
			t.Fatalf("%s: no locked neurons", r.Dataset)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "TABLE I") || !strings.Contains(out, "fashion") {
		t.Fatal("Table I rendering incomplete")
	}
}

func TestFig3Shapes(t *testing.T) {
	res, err := Fig3(micro(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d architectures, want 2", len(res))
	}
	for _, r := range res {
		if len(r.KeyAccs) != 2 {
			t.Fatalf("%s: got %d key accuracies, want 2", r.Arch, len(r.KeyAccs))
		}
		if r.Summary.N != 2 {
			t.Fatal("summary not computed")
		}
	}
	out := RenderFig3(res)
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "resnet18") {
		t.Fatal("Fig. 3 rendering incomplete")
	}
}

func TestFig5Shapes(t *testing.T) {
	res, err := Fig5(micro(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d curve sets, want 2", len(res))
	}
	for _, s := range res {
		if len(s.Curves) != len(Fig5Alphas) {
			t.Fatalf("%s: %d curves, want %d", s.Arch, len(s.Curves), len(Fig5Alphas))
		}
		for _, c := range s.Curves {
			if len(c.Acc) != micro().FTEpochs {
				t.Fatalf("curve %s has %d epochs", c.Label, len(c.Acc))
			}
		}
	}
	out := RenderCurves("Fig. 5", res)
	if !strings.Contains(out, "α=10%") {
		t.Fatal("Fig. 5 rendering incomplete")
	}
}

func TestFig6Shapes(t *testing.T) {
	res, err := Fig6(micro(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d curve sets, want 2", len(res))
	}
	for _, s := range res {
		if len(s.Curves) != len(Fig6LRs) {
			t.Fatalf("%s: %d curves, want %d", s.Dataset, len(s.Curves), len(Fig6LRs))
		}
	}
	out := RenderCurves("Fig. 6", res)
	if !strings.Contains(out, "lr=0.001") {
		t.Fatal("Fig. 6 rendering incomplete")
	}
}

func TestFig7Shapes(t *testing.T) {
	res, err := Fig7(micro(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	for _, r := range res {
		if len(r.HPNNFT) != len(Fig7Alphas) || len(r.RandomFT) != len(Fig7Alphas) {
			t.Fatalf("%s: series lengths wrong", r.Dataset)
		}
		// α = 0 entries: no retraining — the random attacker is at chance.
		if r.RandomFT[0] > 0.35 {
			t.Fatalf("%s: α=0 random-init accuracy %v should be near chance", r.Dataset, r.RandomFT[0])
		}
	}
	out := RenderFig7(res)
	if !strings.Contains(out, "random-ft") {
		t.Fatal("Fig. 7 rendering incomplete")
	}
}

func TestFig4HardwareShapes(t *testing.T) {
	res, err := Fig4Hardware(micro(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.XORGates != 4096 {
		t.Fatalf("gate report wrong: %+v", res.Report)
	}
	if res.CyclesLocked != res.CyclesPlain {
		t.Fatal("cycle overhead detected")
	}
	if !res.GateLevelAgrees {
		t.Fatal("gate-level datapath disagreed with fast datapath")
	}
	if res.TPUNoKey >= res.TPUWithKey {
		t.Fatalf("no-key TPU accuracy %v did not drop below with-key %v", res.TPUNoKey, res.TPUWithKey)
	}
	out := RenderHardware(res)
	if !strings.Contains(out, "XOR gates") {
		t.Fatal("hardware rendering incomplete")
	}
}

func TestCryptoBaselineShapes(t *testing.T) {
	rows, err := CryptoBaseline(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// CNN2 (last row) is the largest network by far.
	if rows[2].Params < rows[0].Params {
		t.Fatal("CNN2 should have more parameters than CNN1")
	}
	for _, r := range rows {
		if r.EncryptMS < 0 || r.DecryptMS < 0 {
			t.Fatal("negative latency")
		}
	}
	out := RenderCrypto(rows)
	if !strings.Contains(out, "AES") {
		t.Fatal("crypto rendering incomplete")
	}
}

func TestAblationGranularity(t *testing.T) {
	rows, err := AblationLockGranularity(micro(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].DistinctBits <= rows[1].DistinctBits || rows[1].DistinctBits <= rows[2].DistinctBits {
		t.Fatalf("distinct bits should decrease with coarser granularity: %+v", rows)
	}
	if out := RenderGranularity(rows); !strings.Contains(out, "per-neuron") {
		t.Fatal("granularity rendering incomplete")
	}
}

func TestAblationLockedLayers(t *testing.T) {
	rows, err := AblationLockedLayers(micro(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[2].LockedNeurons <= rows[0].LockedNeurons {
		t.Fatal("all-layers subset should lock more neurons than first-only")
	}
	if out := RenderLayerSubsets(rows); !strings.Contains(out, "first-only") {
		t.Fatal("layer-subset rendering incomplete")
	}
}

func TestAblationKeyDistance(t *testing.T) {
	rows, ownerAcc, err := AblationKeyDistance(micro(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || rows[0].Distance != 0 {
		t.Fatal("distance sweep malformed")
	}
	// d = 0 is the true key: accuracy must match the owner's.
	if rows[0].Acc < ownerAcc-1e-9 {
		t.Fatalf("d=0 accuracy %v below owner %v", rows[0].Acc, ownerAcc)
	}
	// Large distances must hurt.
	last := rows[len(rows)-1]
	if last.Acc > ownerAcc-0.1 {
		t.Fatalf("d=%d accuracy %v did not drop (owner %v)", last.Distance, last.Acc, ownerAcc)
	}
	if out := RenderKeyDistance(rows, ownerAcc); !strings.Contains(out, "distance") {
		t.Fatal("key-distance rendering incomplete")
	}
}

func TestArchFor(t *testing.T) {
	if a, err := archFor("cifar"); err != nil || a != core.CNN2 {
		t.Fatalf("archFor(cifar) = %v, %v", a, err)
	}
	if _, err := archFor("imagenet"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestKeyRecoveryExperiment(t *testing.T) {
	res, err := KeyRecovery(micro(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TestAcc) != len(res.Budgets) || len(res.Budgets) == 0 {
		t.Fatalf("malformed result: %+v", res)
	}
	// The budgeted hill climber must stay below the owner.
	for i, a := range res.TestAcc {
		if a >= res.OwnerAcc {
			t.Fatalf("budget %d reached owner accuracy", res.Budgets[i])
		}
	}
	if out := RenderKeyRecovery(res); !strings.Contains(out, "queries") {
		t.Fatal("key-recovery rendering incomplete")
	}
}

func TestAblationQuantExperiment(t *testing.T) {
	rows, err := AblationQuant(micro(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Bits != 8 {
		t.Fatalf("malformed rows: %+v", rows)
	}
	// 8-bit fidelity should beat 2-bit.
	if rows[0].TPUAcc < rows[3].TPUAcc {
		t.Fatalf("8-bit accuracy %v below 2-bit %v", rows[0].TPUAcc, rows[3].TPUAcc)
	}
	if out := RenderQuant(rows); !strings.Contains(out, "bits") {
		t.Fatal("quant rendering incomplete")
	}
}

func TestPlotCurves(t *testing.T) {
	s := CurveSet{
		Dataset: "fashion", Arch: core.CNN1, OwnerAcc: 0.9,
		Curves: []Curve{
			{Label: "α=1%", Acc: []float64{0.2, 0.3, 0.4}},
			{Label: "α=10%", Acc: []float64{0.5, 0.7, 0.8}},
		},
	}
	out := PlotCurves(s, 40, 10)
	if !strings.Contains(out, "=") || !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("plot missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "α=10%") {
		t.Fatal("plot missing legend")
	}
	// Degenerate inputs must not panic.
	_ = PlotCurves(CurveSet{}, 1, 1)
	_ = PlotCurves(CurveSet{Curves: []Curve{{Label: "x", Acc: []float64{0.5}}}}, 20, 6)
}

func TestTransformAttacksExperiment(t *testing.T) {
	rows, owner, err := TransformAttacks(micro(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.NoKeyAcc >= owner {
			t.Fatalf("%s(%v): transformation unlocked the model", r.Kind, r.Strength)
		}
	}
	if out := RenderTransforms(rows, owner); !strings.Contains(out, "prune") {
		t.Fatal("transform rendering incomplete")
	}
}

func TestWatermarkVsHPNNExperiment(t *testing.T) {
	c, err := WatermarkVsHPNN(micro(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.WMEmbedBER > 0.05 {
		t.Fatalf("watermark embedding failed (BER %.3f)", c.WMEmbedBER)
	}
	// The motivating asymmetry: the watermarked pirate copy is usable,
	// the HPNN pirate copy is not better than its fine-tuned ceiling and
	// the raw stolen model collapsed.
	if c.WMPirateAcc < 0.3 {
		t.Fatalf("watermarked pirate copy unusable (%.3f) — scenario not demonstrated", c.WMPirateAcc)
	}
	if c.HPNNStolenAcc > 0.5 || c.HPNNStolenAcc >= c.HPNNOwnerAcc {
		t.Fatalf("HPNN stolen accuracy %.3f did not collapse (owner %.3f)", c.HPNNStolenAcc, c.HPNNOwnerAcc)
	}
	if out := RenderWatermarkComparison(c); !strings.Contains(out, "watermark") {
		t.Fatal("rendering incomplete")
	}
}
