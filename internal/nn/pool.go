package nn

import (
	"fmt"
	"math"

	"hpnn/internal/tensor"
)

// MaxPool is a 2-D max-pooling layer over [N, C, H, W] batches.
type MaxPool struct {
	Geom tensor.ConvGeom // InC/InH/InW describe per-sample input; KH/KW/Stride the window

	lastArg []int // flat input index chosen per output element
	lastN   int
}

// NewMaxPool constructs a max-pooling layer. The geometry's InC/InH/InW
// must match the incoming feature maps; Pad is honoured with -inf padding
// semantics (padded cells never win).
func NewMaxPool(g tensor.ConvGeom) *MaxPool {
	if err := g.Validate(); err != nil {
		panic("nn: " + err.Error())
	}
	return &MaxPool{Geom: g}
}

// Name implements Layer.
func (m *MaxPool) Name() string {
	return fmt.Sprintf("MaxPool(%dx%d, s%d)", m.Geom.KH, m.Geom.KW, m.Geom.Stride)
}

// Params implements Layer.
func (m *MaxPool) Params() []*Param { return nil }

// OutShape returns the per-sample output dimensions.
func (m *MaxPool) OutShape() (int, int, int) {
	return m.Geom.InC, m.Geom.OutH(), m.Geom.OutW()
}

// Forward implements Layer.
func (m *MaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := m.Geom
	n := x.Shape[0]
	outH, outW := g.OutH(), g.OutW()
	featIn := g.InC * g.InH * g.InW
	featOut := g.InC * outH * outW
	out := tensor.New(n, g.InC, outH, outW)
	if len(m.lastArg) != n*featOut {
		m.lastArg = make([]int, n*featOut)
	}
	m.lastN = n
	tensor.Parallel(n, func(i int) {
		src := x.Data[i*featIn : (i+1)*featIn]
		dst := out.Data[i*featOut : (i+1)*featOut]
		arg := m.lastArg[i*featOut : (i+1)*featOut]
		o := 0
		for c := 0; c < g.InC; c++ {
			base := c * g.InH * g.InW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.Stride + ky - g.Pad
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.Stride + kx - g.Pad
							if ix < 0 || ix >= g.InW {
								continue
							}
							idx := base + iy*g.InW + ix
							if src[idx] > best {
								best = src[idx]
								bestIdx = idx
							}
						}
					}
					dst[o] = best
					arg[o] = bestIdx
					o++
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (m *MaxPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := m.Geom
	n := m.lastN
	featIn := g.InC * g.InH * g.InW
	featOut := g.InC * g.OutH() * g.OutW()
	dx := tensor.New(n, g.InC, g.InH, g.InW)
	tensor.Parallel(n, func(i int) {
		src := grad.Data[i*featOut : (i+1)*featOut]
		dst := dx.Data[i*featIn : (i+1)*featIn]
		arg := m.lastArg[i*featOut : (i+1)*featOut]
		for o, a := range arg {
			if a >= 0 {
				dst[a] += src[o]
			}
		}
	})
	return dx
}

// AvgPool is a 2-D average-pooling layer (zero-padding contributes to the
// divisor only through the fixed window size, matching the common
// count_include_pad=true convention).
type AvgPool struct {
	Geom  tensor.ConvGeom
	lastN int
}

// NewAvgPool constructs an average-pooling layer.
func NewAvgPool(g tensor.ConvGeom) *AvgPool {
	if err := g.Validate(); err != nil {
		panic("nn: " + err.Error())
	}
	return &AvgPool{Geom: g}
}

// Name implements Layer.
func (a *AvgPool) Name() string {
	return fmt.Sprintf("AvgPool(%dx%d, s%d)", a.Geom.KH, a.Geom.KW, a.Geom.Stride)
}

// Params implements Layer.
func (a *AvgPool) Params() []*Param { return nil }

// Forward implements Layer.
func (a *AvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := a.Geom
	n := x.Shape[0]
	outH, outW := g.OutH(), g.OutW()
	featIn := g.InC * g.InH * g.InW
	featOut := g.InC * outH * outW
	a.lastN = n
	out := tensor.New(n, g.InC, outH, outW)
	inv := 1 / float64(g.KH*g.KW)
	tensor.Parallel(n, func(i int) {
		src := x.Data[i*featIn : (i+1)*featIn]
		dst := out.Data[i*featOut : (i+1)*featOut]
		o := 0
		for c := 0; c < g.InC; c++ {
			base := c * g.InH * g.InW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					s := 0.0
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.Stride + ky - g.Pad
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.Stride + kx - g.Pad
							if ix < 0 || ix >= g.InW {
								continue
							}
							s += src[base+iy*g.InW+ix]
						}
					}
					dst[o] = s * inv
					o++
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (a *AvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := a.Geom
	n := a.lastN
	outH, outW := g.OutH(), g.OutW()
	featIn := g.InC * g.InH * g.InW
	featOut := g.InC * outH * outW
	dx := tensor.New(n, g.InC, g.InH, g.InW)
	inv := 1 / float64(g.KH*g.KW)
	tensor.Parallel(n, func(i int) {
		src := grad.Data[i*featOut : (i+1)*featOut]
		dst := dx.Data[i*featIn : (i+1)*featIn]
		o := 0
		for c := 0; c < g.InC; c++ {
			base := c * g.InH * g.InW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					gv := src[o] * inv
					o++
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.Stride + ky - g.Pad
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.Stride + kx - g.Pad
							if ix < 0 || ix >= g.InW {
								continue
							}
							dst[base+iy*g.InW+ix] += gv
						}
					}
				}
			}
		}
	})
	return dx
}

// GlobalAvgPool averages each channel's full spatial map, producing [N, C].
// ResNet-18 uses it ahead of the final classifier.
type GlobalAvgPool struct {
	lastShape []int
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return "GlobalAvgPool" }

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool expects [N,C,H,W], got %v", x.Shape))
	}
	g.lastShape = append(g.lastShape[:0], x.Shape...)
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	pix := h * w
	out := tensor.New(n, c)
	inv := 1 / float64(pix)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * pix
			s := 0.0
			for p := 0; p < pix; p++ {
				s += x.Data[base+p]
			}
			out.Data[i*c+ch] = s * inv
		}
	}
	return out
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.lastShape[0], g.lastShape[1], g.lastShape[2], g.lastShape[3]
	pix := h * w
	dx := tensor.New(n, c, h, w)
	inv := 1 / float64(pix)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			gv := grad.Data[i*c+ch] * inv
			base := (i*c + ch) * pix
			for p := 0; p < pix; p++ {
				dx.Data[base+p] = gv
			}
		}
	}
	return dx
}
