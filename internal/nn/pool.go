package nn

import (
	"fmt"

	"hpnn/internal/tensor"
)

// MaxPool is a 2-D max-pooling layer over [N, C, H, W] batches. The output,
// input gradient and argmax index cache are layer-owned scratch reused
// across steps; the batch is fanned out on the worker pool through
// top-level worker functions so steady-state calls allocate nothing.
type MaxPool struct {
	Geom tensor.ConvGeom // InC/InH/InW describe per-sample input; KH/KW/Stride the window

	out, dx *tensor.Tensor
	lastArg []int // flat input index chosen per output element
	lastN   int

	// Per-call operand views read by the pool workers.
	featIn, featOut      int
	fx, fout, fgrad, fdx []float64
}

// NewMaxPool constructs a max-pooling layer. The geometry's InC/InH/InW
// must match the incoming feature maps; Pad is honoured with -inf padding
// semantics (padded cells never win).
func NewMaxPool(g tensor.ConvGeom) *MaxPool {
	if err := g.Validate(); err != nil {
		panic("nn: " + err.Error())
	}
	return &MaxPool{Geom: g}
}

// Name implements Layer.
func (m *MaxPool) Name() string {
	return fmt.Sprintf("MaxPool(%dx%d, s%d)", m.Geom.KH, m.Geom.KW, m.Geom.Stride)
}

// Params implements Layer.
func (m *MaxPool) Params() []*Param { return nil }

// OutShape returns the per-sample output dimensions.
func (m *MaxPool) OutShape() (int, int, int) {
	return m.Geom.InC, m.Geom.OutH(), m.Geom.OutW()
}

// Forward implements Layer.
//
//hpnn:noalloc
func (m *MaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := m.Geom
	n := x.Shape[0]
	outH, outW := g.OutH(), g.OutW()
	m.featIn = g.InLen()
	m.featOut = g.InC * outH * outW
	m.out = tensor.EnsureShape(m.out, n, g.InC, outH, outW)
	m.lastArg = tensor.EnsureInts(m.lastArg, n*m.featOut)
	m.lastN = n
	m.fx, m.fout = x.Data, m.out.Data
	tensor.ParallelCtx(n, m, maxPoolFwdWorker)
	return m.out
}

func maxPoolFwdWorker(ctx any, i int) {
	m := ctx.(*MaxPool)
	tensor.MaxPool2D(
		m.fout[i*m.featOut:(i+1)*m.featOut],
		m.lastArg[i*m.featOut:(i+1)*m.featOut],
		m.fx[i*m.featIn:(i+1)*m.featIn],
		m.Geom)
}

// Backward implements Layer.
//
//hpnn:noalloc
func (m *MaxPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := m.Geom
	n := m.lastN
	m.dx = tensor.EnsureShape(m.dx, n, g.InC, g.InH, g.InW)
	m.fgrad, m.fdx = grad.Data, m.dx.Data
	tensor.ParallelCtx(n, m, maxPoolBwdWorker)
	return m.dx
}

func maxPoolBwdWorker(ctx any, i int) {
	m := ctx.(*MaxPool)
	tensor.MaxPool2DGrad(
		m.fdx[i*m.featIn:(i+1)*m.featIn],
		m.fgrad[i*m.featOut:(i+1)*m.featOut],
		m.lastArg[i*m.featOut:(i+1)*m.featOut])
}

// AvgPool is a 2-D average-pooling layer (zero-padding contributes to the
// divisor only through the fixed window size, matching the common
// count_include_pad=true convention).
type AvgPool struct {
	Geom  tensor.ConvGeom
	lastN int

	out, dx *tensor.Tensor

	featIn, featOut      int
	fx, fout, fgrad, fdx []float64
}

// NewAvgPool constructs an average-pooling layer.
func NewAvgPool(g tensor.ConvGeom) *AvgPool {
	if err := g.Validate(); err != nil {
		panic("nn: " + err.Error())
	}
	return &AvgPool{Geom: g}
}

// Name implements Layer.
func (a *AvgPool) Name() string {
	return fmt.Sprintf("AvgPool(%dx%d, s%d)", a.Geom.KH, a.Geom.KW, a.Geom.Stride)
}

// Params implements Layer.
func (a *AvgPool) Params() []*Param { return nil }

// Forward implements Layer.
//
//hpnn:noalloc
func (a *AvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := a.Geom
	n := x.Shape[0]
	outH, outW := g.OutH(), g.OutW()
	a.featIn = g.InLen()
	a.featOut = g.InC * outH * outW
	a.lastN = n
	a.out = tensor.EnsureShape(a.out, n, g.InC, outH, outW)
	a.fx, a.fout = x.Data, a.out.Data
	tensor.ParallelCtx(n, a, avgPoolFwdWorker)
	return a.out
}

func avgPoolFwdWorker(ctx any, i int) {
	a := ctx.(*AvgPool)
	tensor.AvgPool2D(
		a.fout[i*a.featOut:(i+1)*a.featOut],
		a.fx[i*a.featIn:(i+1)*a.featIn],
		a.Geom)
}

// Backward implements Layer.
//
//hpnn:noalloc
func (a *AvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := a.Geom
	n := a.lastN
	a.dx = tensor.EnsureShape(a.dx, n, g.InC, g.InH, g.InW)
	a.fgrad, a.fdx = grad.Data, a.dx.Data
	tensor.ParallelCtx(n, a, avgPoolBwdWorker)
	return a.dx
}

func avgPoolBwdWorker(ctx any, i int) {
	a := ctx.(*AvgPool)
	tensor.AvgPool2DGrad(
		a.fdx[i*a.featIn:(i+1)*a.featIn],
		a.fgrad[i*a.featOut:(i+1)*a.featOut],
		a.Geom)
}

// GlobalAvgPool averages each channel's full spatial map, producing [N, C].
// ResNet-18 uses it ahead of the final classifier.
type GlobalAvgPool struct {
	lastShape []int
	out, dx   *tensor.Tensor
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return "GlobalAvgPool" }

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Forward implements Layer.
//
//hpnn:noalloc
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool expects [N,C,H,W], got %v", x.Shape))
	}
	g.lastShape = append(g.lastShape[:0], x.Shape...)
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	pix := h * w
	g.out = tensor.EnsureShape(g.out, n, c)
	inv := 1 / float64(pix)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * pix
			s := 0.0
			for p := 0; p < pix; p++ {
				s += x.Data[base+p]
			}
			g.out.Data[i*c+ch] = s * inv
		}
	}
	return g.out
}

// Backward implements Layer.
//
//hpnn:noalloc
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.lastShape[0], g.lastShape[1], g.lastShape[2], g.lastShape[3]
	pix := h * w
	g.dx = tensor.EnsureShape(g.dx, n, c, h, w)
	inv := 1 / float64(pix)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			gv := grad.Data[i*c+ch] * inv
			base := (i*c + ch) * pix
			for p := 0; p < pix; p++ {
				g.dx.Data[base+p] = gv
			}
		}
	}
	return g.dx
}
