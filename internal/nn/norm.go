package nn

import (
	"fmt"
	"math"

	"hpnn/internal/tensor"
)

// BatchNorm2D normalizes each channel of [N, C, H, W] activations over the
// batch and spatial dimensions, with learnable scale (gamma) and shift
// (beta) and running statistics for inference. ResNet-18 uses it after
// every convolution.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate, e.g. 0.1

	Gamma, Beta *Param
	RunMean     *tensor.Tensor
	RunVar      *tensor.Tensor

	// caches from the last training forward
	lastXHat  *tensor.Tensor
	lastStd   []float64
	lastShape []int
}

// NewBatchNorm2D constructs a batch-norm layer for c channels.
func NewBatchNorm2D(c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C:        c,
		Eps:      1e-5,
		Momentum: 0.1,
		Gamma:    NewParam(fmt.Sprintf("bn_%d.gamma", c), c),
		Beta:     NewParam(fmt.Sprintf("bn_%d.beta", c), c),
		RunMean:  tensor.New(c),
		RunVar:   tensor.New(c),
	}
	bn.Gamma.Value.Fill(1)
	bn.RunVar.Fill(1)
	return bn
}

// Name implements Layer.
func (b *BatchNorm2D) Name() string { return fmt.Sprintf("BatchNorm2D(%d)", b.C) }

// Params implements Layer.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// Forward implements Layer.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != b.C {
		panic(fmt.Sprintf("nn: BatchNorm2D(%d) got %v", b.C, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	pix := h * w
	cnt := float64(n * pix)
	y := tensor.New(x.Shape...)
	b.lastShape = append(b.lastShape[:0], x.Shape...)

	if train {
		b.lastXHat = tensor.New(x.Shape...)
		if len(b.lastStd) != c {
			b.lastStd = make([]float64, c)
		}
		tensor.Parallel(c, func(ch int) {
			mean := 0.0
			for i := 0; i < n; i++ {
				base := (i*c + ch) * pix
				for p := 0; p < pix; p++ {
					mean += x.Data[base+p]
				}
			}
			mean /= cnt
			variance := 0.0
			for i := 0; i < n; i++ {
				base := (i*c + ch) * pix
				for p := 0; p < pix; p++ {
					d := x.Data[base+p] - mean
					variance += d * d
				}
			}
			variance /= cnt
			std := math.Sqrt(variance + b.Eps)
			b.lastStd[ch] = std
			g, be := b.Gamma.Value.Data[ch], b.Beta.Value.Data[ch]
			for i := 0; i < n; i++ {
				base := (i*c + ch) * pix
				for p := 0; p < pix; p++ {
					xh := (x.Data[base+p] - mean) / std
					b.lastXHat.Data[base+p] = xh
					y.Data[base+p] = g*xh + be
				}
			}
			b.RunMean.Data[ch] = (1-b.Momentum)*b.RunMean.Data[ch] + b.Momentum*mean
			b.RunVar.Data[ch] = (1-b.Momentum)*b.RunVar.Data[ch] + b.Momentum*variance
		})
		return y
	}

	tensor.Parallel(c, func(ch int) {
		mean := b.RunMean.Data[ch]
		std := math.Sqrt(b.RunVar.Data[ch] + b.Eps)
		g, be := b.Gamma.Value.Data[ch], b.Beta.Value.Data[ch]
		for i := 0; i < n; i++ {
			base := (i*c + ch) * pix
			for p := 0; p < pix; p++ {
				y.Data[base+p] = g*(x.Data[base+p]-mean)/std + be
			}
		}
	})
	return y
}

// Backward implements Layer (training mode statistics).
func (b *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := b.lastShape[0], b.lastShape[1], b.lastShape[2], b.lastShape[3]
	pix := h * w
	cnt := float64(n * pix)
	dx := tensor.New(grad.Shape...)
	tensor.Parallel(c, func(ch int) {
		g := b.Gamma.Value.Data[ch]
		std := b.lastStd[ch]
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * pix
			for p := 0; p < pix; p++ {
				dy := grad.Data[base+p]
				sumDy += dy
				sumDyXhat += dy * b.lastXHat.Data[base+p]
			}
		}
		b.Beta.Grad.Data[ch] += sumDy
		b.Gamma.Grad.Data[ch] += sumDyXhat
		for i := 0; i < n; i++ {
			base := (i*c + ch) * pix
			for p := 0; p < pix; p++ {
				dy := grad.Data[base+p]
				xh := b.lastXHat.Data[base+p]
				dx.Data[base+p] = g / std * (dy - sumDy/cnt - xh*sumDyXhat/cnt)
			}
		}
	})
	return dx
}
