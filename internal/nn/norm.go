package nn

import (
	"fmt"
	"math"

	"hpnn/internal/tensor"
)

// BatchNorm2D normalizes each channel of [N, C, H, W] activations over the
// batch and spatial dimensions, with learnable scale (gamma) and shift
// (beta) and running statistics for inference. ResNet-18 uses it after
// every convolution.
//
// The output, normalized-input cache and input gradient are layer-owned
// scratch reused across steps; channels fan out on the worker pool through
// top-level worker functions, so steady-state calls allocate nothing.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate, e.g. 0.1

	Gamma, Beta *Param
	RunMean     *tensor.Tensor
	RunVar      *tensor.Tensor

	// StatsOut, when non-nil, redirects the batch statistics of a training
	// forward into the provided buffer ([mean, var] pairs, length 2C)
	// instead of folding them into RunMean/RunVar. The data-parallel
	// trainer sets it on replica clones so shard statistics can be applied
	// to the shared running stats serially, in canonical shard order, via
	// AbsorbStats — and so concurrent clone forwards never write the
	// master's running-stat tensors.
	StatsOut []float64

	// caches from the last training forward
	lastXHat  *tensor.Tensor
	lastStd   []float64
	lastShape []int

	y, dx *tensor.Tensor

	// Per-call geometry and operand views read by the pool workers.
	n, pix             int
	fx, fy, fgrad, fdx []float64
}

// NewBatchNorm2D constructs a batch-norm layer for c channels.
func NewBatchNorm2D(c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C:        c,
		Eps:      1e-5,
		Momentum: 0.1,
		Gamma:    NewParam(fmt.Sprintf("bn_%d.gamma", c), c),
		Beta:     NewParam(fmt.Sprintf("bn_%d.beta", c), c),
		RunMean:  tensor.New(c),
		RunVar:   tensor.New(c),
	}
	bn.Gamma.Value.Fill(1)
	bn.RunVar.Fill(1)
	return bn
}

// Name implements Layer.
func (b *BatchNorm2D) Name() string { return fmt.Sprintf("BatchNorm2D(%d)", b.C) }

// Params implements Layer.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// Forward implements Layer.
//
//hpnn:noalloc
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != b.C {
		panic(fmt.Sprintf("nn: BatchNorm2D(%d) got %v", b.C, x.Shape))
	}
	b.n, b.pix = x.Shape[0], x.Shape[2]*x.Shape[3]
	b.y = tensor.EnsureShape(b.y, x.Shape...)
	b.lastShape = append(b.lastShape[:0], x.Shape...)
	b.fx, b.fy = x.Data, b.y.Data

	if train {
		b.lastXHat = tensor.EnsureShape(b.lastXHat, x.Shape...)
		b.lastStd = tensor.EnsureFloats(b.lastStd, b.C)
		tensor.ParallelCtx(b.C, b, bnTrainFwdWorker)
		return b.y
	}

	tensor.ParallelCtx(b.C, b, bnEvalFwdWorker)
	return b.y
}

// bnTrainFwdWorker normalizes channel ch with batch statistics and updates
// the running statistics. Each worker owns a disjoint channel, so the
// running-stat writes race with nothing.
func bnTrainFwdWorker(ctx any, ch int) {
	b := ctx.(*BatchNorm2D)
	n, c, pix := b.n, b.C, b.pix
	cnt := float64(n * pix)
	mean := 0.0
	for i := 0; i < n; i++ {
		base := (i*c + ch) * pix
		for p := 0; p < pix; p++ {
			mean += b.fx[base+p]
		}
	}
	mean /= cnt
	variance := 0.0
	for i := 0; i < n; i++ {
		base := (i*c + ch) * pix
		for p := 0; p < pix; p++ {
			d := b.fx[base+p] - mean
			variance += d * d
		}
	}
	variance /= cnt
	std := math.Sqrt(variance + b.Eps)
	b.lastStd[ch] = std
	g, be := b.Gamma.Value.Data[ch], b.Beta.Value.Data[ch]
	for i := 0; i < n; i++ {
		base := (i*c + ch) * pix
		for p := 0; p < pix; p++ {
			xh := (b.fx[base+p] - mean) / std
			b.lastXHat.Data[base+p] = xh
			b.fy[base+p] = g*xh + be
		}
	}
	if b.StatsOut != nil {
		b.StatsOut[2*ch] = mean
		b.StatsOut[2*ch+1] = variance
		return
	}
	b.RunMean.Data[ch] = (1-b.Momentum)*b.RunMean.Data[ch] + b.Momentum*mean
	b.RunVar.Data[ch] = (1-b.Momentum)*b.RunVar.Data[ch] + b.Momentum*variance
}

// AbsorbStats folds batch statistics captured through StatsOut ([mean, var]
// pairs, length 2C) into the running statistics, using exactly the update
// expression the non-redirected training forward applies. The replica driver
// calls it once per micro-shard in shard order, so the running-stat
// trajectory is a function of the shard decomposition, not of K.
func (b *BatchNorm2D) AbsorbStats(stats []float64) {
	if len(stats) != 2*b.C {
		panic(fmt.Sprintf("nn: BatchNorm2D(%d) AbsorbStats got %d values", b.C, len(stats)))
	}
	for ch := 0; ch < b.C; ch++ {
		mean, variance := stats[2*ch], stats[2*ch+1]
		b.RunMean.Data[ch] = (1-b.Momentum)*b.RunMean.Data[ch] + b.Momentum*mean
		b.RunVar.Data[ch] = (1-b.Momentum)*b.RunVar.Data[ch] + b.Momentum*variance
	}
}

func bnEvalFwdWorker(ctx any, ch int) {
	b := ctx.(*BatchNorm2D)
	n, c, pix := b.n, b.C, b.pix
	mean := b.RunMean.Data[ch]
	std := math.Sqrt(b.RunVar.Data[ch] + b.Eps)
	g, be := b.Gamma.Value.Data[ch], b.Beta.Value.Data[ch]
	for i := 0; i < n; i++ {
		base := (i*c + ch) * pix
		for p := 0; p < pix; p++ {
			b.fy[base+p] = g*(b.fx[base+p]-mean)/std + be
		}
	}
}

// Backward implements Layer (training mode statistics).
//
//hpnn:noalloc
func (b *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b.n, b.pix = b.lastShape[0], b.lastShape[2]*b.lastShape[3]
	b.dx = tensor.EnsureShape(b.dx, grad.Shape...)
	b.fgrad, b.fdx = grad.Data, b.dx.Data
	tensor.ParallelCtx(b.C, b, bnBwdWorker)
	return b.dx
}

// bnBwdWorker backpropagates channel ch. Gamma/Beta gradient accumulation
// is per-channel, so disjoint workers never contend.
func bnBwdWorker(ctx any, ch int) {
	b := ctx.(*BatchNorm2D)
	n, c, pix := b.n, b.C, b.pix
	cnt := float64(n * pix)
	g := b.Gamma.Value.Data[ch]
	std := b.lastStd[ch]
	var sumDy, sumDyXhat float64
	for i := 0; i < n; i++ {
		base := (i*c + ch) * pix
		for p := 0; p < pix; p++ {
			dy := b.fgrad[base+p]
			sumDy += dy
			sumDyXhat += dy * b.lastXHat.Data[base+p]
		}
	}
	b.Beta.Grad.Data[ch] += sumDy
	b.Gamma.Grad.Data[ch] += sumDyXhat
	for i := 0; i < n; i++ {
		base := (i*c + ch) * pix
		for p := 0; p < pix; p++ {
			dy := b.fgrad[base+p]
			xh := b.lastXHat.Data[base+p]
			b.fdx[base+p] = g / std * (dy - sumDy/cnt - xh*sumDyXhat/cnt)
		}
	}
}
