package nn

import (
	"math"
	"testing"

	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// gradCheckNet verifies analytic vs numeric gradients for a small network
// under softmax cross-entropy, for both parameters and input.
func gradCheckNet(t *testing.T, net *Network, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	loss := SoftmaxCrossEntropy{}
	run := func() float64 {
		out := net.Forward(x, true)
		l, _ := loss.Loss(out, labels)
		return l
	}
	// Populate analytic gradients (params and input).
	net.ZeroGrad()
	out := net.Forward(x, true)
	_, g := loss.Loss(out, labels)
	dx := net.Backward(g)

	const eps = 1e-5
	worst := CheckGradients(net, x, run, eps)
	if worst > tol {
		t.Fatalf("parameter gradient check failed: max rel err %v > %v", worst, tol)
	}
	// Input gradient check.
	worstIn := 0.0
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := run()
		x.Data[i] = orig - eps
		lm := run()
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		worstIn = math.Max(worstIn, relErr(dx.Data[i], numeric))
	}
	if worstIn > tol {
		t.Fatalf("input gradient check failed: max rel err %v > %v", worstIn, tol)
	}
}

func TestDenseGradients(t *testing.T) {
	r := rng.New(1)
	net := NewNetwork(NewDense(6, 4).InitHe(r))
	x := tensor.New(3, 6)
	x.FillNorm(r, 0, 1)
	gradCheckNet(t, net, x, []int{0, 2, 3}, 1e-5)
}

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense(2, 2)
	copy(d.W.Value.Data, []float64{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(d.B.Value.Data, []float64{10, 20})
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	y := d.Forward(x, false)
	if y.Data[0] != 13 || y.Data[1] != 27 {
		t.Fatalf("dense forward wrong: %v", y.Data)
	}
}

func TestConvGradients(t *testing.T) {
	r := rng.New(2)
	g := tensor.ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := NewNetwork(
		NewConv2D(g, 3).InitHe(r),
		NewFlatten(),
		NewDense(3*5*5, 3).InitHe(r),
	)
	x := tensor.New(2, 2, 5, 5)
	x.FillNorm(r, 0, 1)
	gradCheckNet(t, net, x, []int{0, 2}, 1e-4)
}

func TestConvStrideGradients(t *testing.T) {
	r := rng.New(3)
	g := tensor.ConvGeom{InC: 1, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 2, Pad: 0}
	net := NewNetwork(
		NewConv2D(g, 2).InitHe(r),
		NewFlatten(),
		NewDense(2*2*2, 2).InitHe(r),
	)
	x := tensor.New(2, 1, 6, 6)
	x.FillNorm(r, 0, 1)
	gradCheckNet(t, net, x, []int{0, 1}, 1e-4)
}

func TestReLUGradients(t *testing.T) {
	r := rng.New(4)
	net := NewNetwork(NewDense(5, 5).InitHe(r), NewReLU(), NewDense(5, 3).InitHe(r))
	x := tensor.New(4, 5)
	x.FillNorm(r, 0, 1)
	gradCheckNet(t, net, x, []int{0, 1, 2, 0}, 1e-4)
}

func TestLeakyReLUAndTanhSigmoidGradients(t *testing.T) {
	r := rng.New(5)
	net := NewNetwork(
		NewDense(4, 6).InitHe(r), NewLeakyReLU(0.1),
		NewDense(6, 6).InitHe(r), NewTanh(),
		NewDense(6, 5).InitHe(r), NewSigmoid(),
		NewDense(5, 3).InitHe(r),
	)
	x := tensor.New(3, 4)
	x.FillNorm(r, 0, 1)
	gradCheckNet(t, net, x, []int{2, 1, 0}, 1e-4)
}

func TestMaxPoolGradients(t *testing.T) {
	r := rng.New(6)
	pg := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 2, KW: 2, Stride: 2}
	net := NewNetwork(
		NewMaxPool(pg),
		NewFlatten(),
		NewDense(2*2*2, 3).InitHe(r),
	)
	x := tensor.New(2, 2, 4, 4)
	x.FillNorm(r, 0, 1)
	gradCheckNet(t, net, x, []int{0, 2}, 1e-4)
}

func TestMaxPoolForwardKnown(t *testing.T) {
	g := tensor.ConvGeom{InC: 1, InH: 2, InW: 2, KH: 2, KW: 2, Stride: 2}
	mp := NewMaxPool(g)
	x := tensor.FromSlice([]float64{1, -5, 3, 2}, 1, 1, 2, 2)
	y := mp.Forward(x, false)
	if y.Len() != 1 || y.Data[0] != 3 {
		t.Fatalf("maxpool forward wrong: %v", y.Data)
	}
}

func TestAvgPoolGradients(t *testing.T) {
	r := rng.New(7)
	pg := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, Stride: 2}
	net := NewNetwork(NewAvgPool(pg), NewFlatten(), NewDense(4, 2).InitHe(r))
	x := tensor.New(3, 1, 4, 4)
	x.FillNorm(r, 0, 1)
	gradCheckNet(t, net, x, []int{0, 1, 0}, 1e-4)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	r := rng.New(8)
	net := NewNetwork(NewGlobalAvgPool(), NewDense(3, 2).InitHe(r))
	x := tensor.New(2, 3, 4, 4)
	x.FillNorm(r, 0, 1)
	gradCheckNet(t, net, x, []int{0, 1}, 1e-4)
}

func TestBatchNormGradients(t *testing.T) {
	r := rng.New(9)
	g := tensor.ConvGeom{InC: 2, InH: 3, InW: 3, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := NewNetwork(
		NewConv2D(g, 2).InitHe(r),
		NewBatchNorm2D(2),
		NewFlatten(),
		NewDense(2*3*3, 2).InitHe(r),
	)
	x := tensor.New(4, 2, 3, 3)
	x.FillNorm(r, 0, 1)
	gradCheckNet(t, net, x, []int{0, 1, 1, 0}, 2e-4)
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm2D(1)
	x := tensor.New(8, 1, 2, 2)
	x.FillNorm(rng.New(10), 5, 2)
	bn.Forward(x, true) // populate running stats
	yEval := bn.Forward(x, false)
	// Eval output should differ from train output in general, and be a
	// deterministic affine function of the input.
	yEval2 := bn.Forward(x, false)
	if !tensor.Equal(yEval, yEval2, 0) {
		t.Fatal("eval-mode batchnorm must be deterministic")
	}
	// Running stats should be pulled toward the batch statistics.
	if bn.RunMean.Data[0] == 0 {
		t.Fatal("running mean not updated")
	}
}

func TestLockGradients(t *testing.T) {
	r := rng.New(11)
	lock := NewLock("L0", 6)
	bits := []byte{1, 0, 1, 1, 0, 0}
	lock.SetBits(bits)
	net := NewNetwork(NewDense(5, 6).InitHe(r), lock, NewReLU(), NewDense(6, 3).InitHe(r))
	x := tensor.New(3, 5)
	x.FillNorm(r, 0, 1)
	gradCheckNet(t, net, x, []int{0, 1, 2}, 1e-4)
}

func TestLockForwardSemantics(t *testing.T) {
	lock := NewLock("L", 3)
	lock.SetBits([]byte{0, 1, 0})
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := lock.Forward(x, false)
	want := []float64{1, -2, 3, 4, -5, 6}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("lock forward[%d] = %v, want %v", i, y.Data[i], v)
		}
	}
	lock.Disengage()
	y2 := lock.Forward(x, false)
	if !tensor.Equal(y2, x, 0) {
		t.Fatal("disengaged lock must be identity")
	}
	lock.Engage()
	got := lock.Bits()
	for i, b := range []byte{0, 1, 0} {
		if got[i] != b {
			t.Fatal("Bits round-trip failed")
		}
	}
}

func TestLockBitsSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetBits with wrong size did not panic")
		}
	}()
	NewLock("L", 3).SetBits([]byte{1})
}

func TestDropoutTrainEval(t *testing.T) {
	r := rng.New(12)
	d := NewDropout(0.5, r)
	x := tensor.New(1, 1000)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros := 0
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("surviving activation should be scaled to 2, got %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout 0.5 zeroed %d/1000", zeros)
	}
	yEval := d.Forward(x, false)
	if !tensor.Equal(yEval, x, 0) {
		t.Fatal("eval-mode dropout must be identity")
	}
}

func TestDropoutBackwardMask(t *testing.T) {
	r := rng.New(13)
	d := NewDropout(0.3, r)
	x := tensor.New(2, 50)
	x.Fill(1)
	y := d.Forward(x, true)
	g := tensor.New(2, 50)
	g.Fill(1)
	dx := d.Backward(g)
	for i := range y.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("dropout backward mask must match forward mask")
		}
	}
}

func TestResidualGradients(t *testing.T) {
	r := rng.New(14)
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	body := NewNetwork(NewConv2D(g, 2).InitHe(r), NewReLU(), NewConv2D(g, 2).InitHe(r))
	post := NewNetwork(NewReLU())
	net := NewNetwork(
		NewResidual(body, nil, post),
		NewFlatten(),
		NewDense(2*4*4, 2).InitHe(r),
	)
	x := tensor.New(2, 2, 4, 4)
	x.FillNorm(r, 0, 1)
	gradCheckNet(t, net, x, []int{0, 1}, 1e-4)
}

func TestResidualProjectionGradients(t *testing.T) {
	r := rng.New(15)
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 2, Pad: 1}
	skipG := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 1, KW: 1, Stride: 2, Pad: 0}
	g2 := tensor.ConvGeom{InC: 4, InH: 2, InW: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	body := NewNetwork(NewConv2D(g, 4).InitHe(r), NewReLU(), NewConv2D(g2, 4).InitHe(r))
	skip := NewNetwork(NewConv2D(skipG, 4).InitHe(r))
	net := NewNetwork(
		NewResidual(body, skip, NewNetwork(NewReLU())),
		NewFlatten(),
		NewDense(4*2*2, 2).InitHe(r),
	)
	x := tensor.New(2, 2, 4, 4)
	x.FillNorm(r, 0, 1)
	gradCheckNet(t, net, x, []int{1, 0}, 1e-4)
}

func TestNetworkLocksDiscovery(t *testing.T) {
	r := rng.New(16)
	g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	body := NewNetwork(NewConv2D(g, 1).InitHe(r), NewLock("inner", 16), NewReLU())
	net := NewNetwork(
		NewLock("top", 16),
		NewResidual(body, nil, NewNetwork(NewLock("post", 16), NewReLU())),
	)
	locks := net.Locks()
	if len(locks) != 3 {
		t.Fatalf("found %d locks, want 3", len(locks))
	}
	if locks[0].ID != "top" || locks[1].ID != "inner" || locks[2].ID != "post" {
		t.Fatalf("lock order wrong: %s %s %s", locks[0].ID, locks[1].ID, locks[2].ID)
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	loss := SoftmaxCrossEntropy{}
	logits := tensor.FromSlice([]float64{0, 0}, 1, 2)
	l, g := loss.Loss(logits, []int{0})
	if math.Abs(l-math.Log(2)) > 1e-12 {
		t.Fatalf("uniform logits loss %v, want ln2", l)
	}
	if math.Abs(g.Data[0]+0.5) > 1e-12 || math.Abs(g.Data[1]-0.5) > 1e-12 {
		t.Fatalf("gradient wrong: %v", g.Data)
	}
}

func TestSoftmaxProbabilitiesSumToOne(t *testing.T) {
	r := rng.New(17)
	logits := tensor.New(5, 10)
	logits.FillNorm(r, 0, 3)
	p := SoftmaxCrossEntropy{}.Probabilities(logits)
	for i := 0; i < 5; i++ {
		s := 0.0
		for j := 0; j < 10; j++ {
			s += p.At(i, j)
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d probabilities sum to %v", i, s)
		}
	}
}

func TestMSELossKnown(t *testing.T) {
	pred := tensor.FromSlice([]float64{1, 2}, 1, 2)
	target := tensor.FromSlice([]float64{0, 0}, 1, 2)
	l, g := MSE{}.Loss(pred, target)
	if math.Abs(l-2.5) > 1e-12 {
		t.Fatalf("MSE loss %v, want 2.5", l)
	}
	if g.Data[0] != 1 || g.Data[1] != 2 {
		t.Fatalf("MSE grad wrong: %v", g.Data)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 4, 5)
	y := f.Forward(x, false)
	if y.Shape[0] != 2 || y.Shape[1] != 60 {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	back := f.Backward(y)
	if len(back.Shape) != 4 || back.Shape[3] != 5 {
		t.Fatalf("flatten backward shape %v", back.Shape)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("p", 4)
	copy(p.Grad.Data, []float64{3, 0, 4, 0}) // norm 5
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v", norm)
	}
	if math.Abs(p.Grad.L2Norm()-1) > 1e-12 {
		t.Fatalf("post-clip norm %v", p.Grad.L2Norm())
	}
}

func TestStepDecay(t *testing.T) {
	if StepDecay(0.1, 0, 10, 0.5) != 0.1 {
		t.Fatal("epoch 0 should be base")
	}
	if math.Abs(StepDecay(0.1, 20, 10, 0.5)-0.025) > 1e-15 {
		t.Fatal("two decays expected at epoch 20")
	}
	if StepDecay(0.1, 50, 0, 0.5) != 0.1 {
		t.Fatal("zero interval disables decay")
	}
}

func TestParamCountAndSummary(t *testing.T) {
	r := rng.New(18)
	net := NewNetwork(NewDense(10, 5).InitHe(r), NewReLU(), NewDense(5, 2).InitHe(r))
	want := 10*5 + 5 + 5*2 + 2
	if net.ParamCount() != want {
		t.Fatalf("ParamCount %d, want %d", net.ParamCount(), want)
	}
	if net.Summary() == "" {
		t.Fatal("empty summary")
	}
}
