package nn

import (
	"fmt"

	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// Conv2D is a 2-D convolution layer over [N, C, H, W] batches, lowered to
// GEMM through im2col. Weights have shape [OutC, InC, KH, KW].
//
// All forward/backward scratch — the output, the per-sample im2col
// matrices, the input gradient and the per-sample weight-gradient partials
// — is layer-owned and reused across steps; the batch fans out on the
// worker pool through top-level worker functions (the layer pointer is the
// dispatch context), so a steady-state step allocates nothing.
type Conv2D struct {
	Geom tensor.ConvGeom
	OutC int
	W    *Param // [OutC, InC*KH*KW] (flattened kernel bank)
	B    *Param // [OutC]

	lastX   *tensor.Tensor
	out, dx *tensor.Tensor
	// cols holds the n stacked im2col matrices from the last forward; the
	// backward pass reuses each sample's region in place for dcol once its
	// weight-gradient partial has been taken.
	cols []float64
	// dW/dB are per-sample gradient partials, reduced serially after the
	// parallel region so the backward pass stays deterministic.
	dW, dB []float64

	// Per-call geometry and operand views read by the pool workers.
	n, pix, rows, featIn, featOut int
	fx, fout, fgrad, fdx          []float64
}

// NewConv2D constructs a convolution layer. Parameters start at zero; call
// InitHe to randomize.
func NewConv2D(g tensor.ConvGeom, outC int) *Conv2D {
	if err := g.Validate(); err != nil {
		panic("nn: " + err.Error())
	}
	k := g.InC * g.KH * g.KW
	return &Conv2D{
		Geom: g,
		OutC: outC,
		W:    NewParam(fmt.Sprintf("conv_%dx%dx%dx%d.W", outC, g.InC, g.KH, g.KW), outC, k),
		B:    NewParam(fmt.Sprintf("conv_%d.B", outC), outC),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%d→%d, %dx%d, s%d, p%d)",
		c.Geom.InC, c.OutC, c.Geom.KH, c.Geom.KW, c.Geom.Stride, c.Geom.Pad)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// InitHe applies He-normal initialization over the kernel fan-in.
func (c *Conv2D) InitHe(r *rng.Rand) *Conv2D {
	fanIn := float64(c.Geom.InC * c.Geom.KH * c.Geom.KW)
	c.W.Value.FillNorm(r, 0, sqrt(2/fanIn))
	c.B.Value.Zero()
	return c
}

// OutShape returns the per-sample output dimensions [OutC, OutH, OutW].
func (c *Conv2D) OutShape() (int, int, int) {
	return c.OutC, c.Geom.OutH(), c.Geom.OutW()
}

// Forward implements Layer.
//
//hpnn:noalloc
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.Geom
	if len(x.Shape) != 4 || x.Shape[1] != g.InC || x.Shape[2] != g.InH || x.Shape[3] != g.InW {
		panic(fmt.Sprintf("nn: Conv2D expects [N,%d,%d,%d], got %v", g.InC, g.InH, g.InW, x.Shape))
	}
	n := x.Shape[0]
	outH, outW := g.OutH(), g.OutW()
	c.n, c.pix, c.rows = n, outH*outW, g.ColRows()
	c.featIn, c.featOut = g.InLen(), c.OutC*outH*outW
	c.lastX = x
	c.out = tensor.EnsureShape(c.out, n, c.OutC, outH, outW)
	c.cols = tensor.EnsureFloats(c.cols, n*c.rows*c.pix)
	c.fx, c.fout = x.Data, c.out.Data
	tensor.ParallelCtx(n, c, convFwdWorker)
	return c.out
}

// convFwdWorker lowers sample i to columns and runs the kernel GEMM
// serially (the batch dimension already saturates the worker pool).
func convFwdWorker(ctx any, i int) {
	c := ctx.(*Conv2D)
	colLen := c.rows * c.pix
	col := c.cols[i*colLen : (i+1)*colLen]
	tensor.Im2ColSlice(col, c.fx[i*c.featIn:(i+1)*c.featIn], c.Geom)
	out := c.fout[i*c.featOut : (i+1)*c.featOut]
	tensor.MatMulSliceInto(out, c.W.Value.Data, col, c.OutC, c.rows, c.pix)
	bd := c.B.Value.Data
	for oc := 0; oc < c.OutC; oc++ {
		row := out[oc*c.pix : (oc+1)*c.pix]
		b := bd[oc]
		for p := range row {
			row[p] += b
		}
	}
}

// Backward implements Layer.
//
//hpnn:noalloc
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := c.Geom
	n := grad.Shape[0]
	c.dx = tensor.EnsureShape(c.dx, n, g.InC, g.InH, g.InW)
	c.dW = tensor.EnsureFloats(c.dW, n*c.OutC*c.rows)
	c.dB = tensor.EnsureFloats(c.dB, n*c.OutC)
	c.fgrad, c.fdx = grad.Data, c.dx.Data
	tensor.ParallelCtx(n, c, convBwdWorker)
	// Per-sample partials reduce serially in sample order, keeping the
	// backward pass bitwise deterministic.
	wg, bg := c.W.Grad.Data, c.B.Grad.Data
	wLen := len(wg)
	for i := 0; i < n; i++ {
		part := c.dW[i*wLen : (i+1)*wLen]
		for j, v := range part {
			wg[j] += v
		}
		partB := c.dB[i*c.OutC : (i+1)*c.OutC]
		for j, v := range partB {
			bg[j] += v
		}
	}
	return c.dx
}

// convBwdWorker computes sample i's weight/bias partials, then reuses the
// sample's im2col region for dcol and scatters it back to image space.
func convBwdWorker(ctx any, i int) {
	c := ctx.(*Conv2D)
	colLen := c.rows * c.pix
	col := c.cols[i*colLen : (i+1)*colLen]
	gOut := c.fgrad[i*c.featOut : (i+1)*c.featOut]
	// dW_i = gOut · colᵀ  -> [OutC, rows]
	tensor.MatMulNTSliceInto(c.dW[i*c.OutC*c.rows:(i+1)*c.OutC*c.rows], gOut, col, c.OutC, c.pix, c.rows)
	dB := c.dB[i*c.OutC : (i+1)*c.OutC]
	for oc := 0; oc < c.OutC; oc++ {
		row := gOut[oc*c.pix : (oc+1)*c.pix]
		s := 0.0
		for _, v := range row {
			s += v
		}
		dB[oc] = s
	}
	// dcol = Wᵀ · gOut -> [rows, pix], overwriting col; scatter to image.
	tensor.MatMulTNSliceInto(col, c.W.Value.Data, gOut, c.OutC, c.rows, c.pix)
	tensor.Col2ImSlice(c.fdx[i*c.featIn:(i+1)*c.featIn], col, c.Geom)
}
