package nn

import (
	"fmt"

	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// Conv2D is a 2-D convolution layer over [N, C, H, W] batches, lowered to
// GEMM through im2col. Weights have shape [OutC, InC, KH, KW].
type Conv2D struct {
	Geom tensor.ConvGeom
	OutC int
	W    *Param // [OutC, InC*KH*KW] (flattened kernel bank)
	B    *Param // [OutC]

	lastX    *tensor.Tensor
	lastCols []*tensor.Tensor // per-sample im2col matrices
}

// NewConv2D constructs a convolution layer. Parameters start at zero; call
// InitHe to randomize.
func NewConv2D(g tensor.ConvGeom, outC int) *Conv2D {
	if err := g.Validate(); err != nil {
		panic("nn: " + err.Error())
	}
	k := g.InC * g.KH * g.KW
	return &Conv2D{
		Geom: g,
		OutC: outC,
		W:    NewParam(fmt.Sprintf("conv_%dx%dx%dx%d.W", outC, g.InC, g.KH, g.KW), outC, k),
		B:    NewParam(fmt.Sprintf("conv_%d.B", outC), outC),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%d→%d, %dx%d, s%d, p%d)",
		c.Geom.InC, c.OutC, c.Geom.KH, c.Geom.KW, c.Geom.Stride, c.Geom.Pad)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// InitHe applies He-normal initialization over the kernel fan-in.
func (c *Conv2D) InitHe(r *rng.Rand) *Conv2D {
	fanIn := float64(c.Geom.InC * c.Geom.KH * c.Geom.KW)
	c.W.Value.FillNorm(r, 0, sqrt(2/fanIn))
	c.B.Value.Zero()
	return c
}

// OutShape returns the per-sample output dimensions [OutC, OutH, OutW].
func (c *Conv2D) OutShape() (int, int, int) {
	return c.OutC, c.Geom.OutH(), c.Geom.OutW()
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.Geom
	if len(x.Shape) != 4 || x.Shape[1] != g.InC || x.Shape[2] != g.InH || x.Shape[3] != g.InW {
		panic(fmt.Sprintf("nn: Conv2D expects [N,%d,%d,%d], got %v", g.InC, g.InH, g.InW, x.Shape))
	}
	n := x.Shape[0]
	outH, outW := g.OutH(), g.OutW()
	pix := outH * outW
	featIn := g.InC * g.InH * g.InW
	c.lastX = x
	if len(c.lastCols) != n {
		c.lastCols = make([]*tensor.Tensor, n)
	}
	out := tensor.New(n, c.OutC, outH, outW)
	rows := g.InC * g.KH * g.KW
	bd := c.B.Value.Data
	tensor.Parallel(n, func(i int) {
		img := tensor.FromSlice(x.Data[i*featIn:(i+1)*featIn], g.InC, g.InH, g.InW)
		col := c.lastCols[i]
		if col == nil || col.Len() != rows*pix {
			col = tensor.New(rows, pix)
			c.lastCols[i] = col
		}
		tensor.Im2ColInto(col, img, g)
		res := tensor.FromSlice(out.Data[i*c.OutC*pix:(i+1)*c.OutC*pix], c.OutC, pix)
		matMulSerialInto(res, c.W.Value, col)
		for oc := 0; oc < c.OutC; oc++ {
			row := res.Data[oc*pix : (oc+1)*pix]
			b := bd[oc]
			for p := range row {
				row[p] += b
			}
		}
	})
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := c.Geom
	n := grad.Shape[0]
	outH, outW := g.OutH(), g.OutW()
	pix := outH * outW
	featIn := g.InC * g.InH * g.InW
	dx := tensor.New(n, g.InC, g.InH, g.InW)

	// Per-sample weight-gradient partials are accumulated into worker-local
	// buffers and reduced serially, keeping the backward pass deterministic.
	type partial struct {
		dW *tensor.Tensor
		dB []float64
	}
	parts := make([]partial, n)
	tensor.Parallel(n, func(i int) {
		gOut := tensor.FromSlice(grad.Data[i*c.OutC*pix:(i+1)*c.OutC*pix], c.OutC, pix)
		col := c.lastCols[i]
		// dW_i = gOut · colᵀ  -> [OutC, rows]
		dW := matMulNTSerial(gOut, col)
		dB := make([]float64, c.OutC)
		for oc := 0; oc < c.OutC; oc++ {
			row := gOut.Data[oc*pix : (oc+1)*pix]
			s := 0.0
			for _, v := range row {
				s += v
			}
			dB[oc] = s
		}
		parts[i] = partial{dW: dW, dB: dB}
		// dcol = Wᵀ · gOut -> [rows, pix]; scatter back to image space.
		dcol := matMulTNSerial(c.W.Value, gOut)
		img := tensor.Col2Im(dcol, g)
		copy(dx.Data[i*featIn:(i+1)*featIn], img.Data)
	})
	for i := 0; i < n; i++ {
		c.W.Grad.AddScaled(1, parts[i].dW)
		bg := c.B.Grad.Data
		for j, v := range parts[i].dB {
			bg[j] += v
		}
	}
	return dx
}

// matMulSerialInto computes dst = a·b without spawning goroutines; the
// convolution layer already parallelizes across the batch.
func matMulSerialInto(dst, a, b *tensor.Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	nCols := b.Shape[1]
	for i := 0; i < m; i++ {
		crow := dst.Data[i*nCols : (i+1)*nCols]
		for x := range crow {
			crow[x] = 0
		}
		arow := a.Data[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[p*nCols : (p+1)*nCols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

func matMulNTSerial(a, b *tensor.Tensor) *tensor.Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	out := tensor.New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
	return out
}

func matMulTNSerial(a, b *tensor.Tensor) *tensor.Tensor {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	out := tensor.New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return out
}
