package nn

import (
	"fmt"

	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// Dense is a fully-connected layer: y = x·Wᵀ + b with x of shape [N, In].
type Dense struct {
	In, Out int
	W       *Param // [Out, In]
	B       *Param // [Out]

	lastX *tensor.Tensor
	// Layer-owned scratch: output, input gradient and the weight-gradient
	// staging buffer, reused across steps while the batch shape is stable.
	y, dx, dW *tensor.Tensor
}

// NewDense constructs a dense layer with zero-initialized parameters.
// Use InitHe/InitXavier (or Network initializers) to randomize weights.
func NewDense(in, out int) *Dense {
	return &Dense{
		In:  in,
		Out: out,
		W:   NewParam(fmt.Sprintf("dense_%dx%d.W", out, in), out, in),
		B:   NewParam(fmt.Sprintf("dense_%dx%d.B", out, in), out),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%d→%d)", d.In, d.Out) }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// InitHe applies He-normal initialization (std = sqrt(2/fanIn)), the
// standard choice ahead of ReLU activations.
func (d *Dense) InitHe(r *rng.Rand) *Dense {
	d.W.Value.FillNorm(r, 0, sqrt(2/float64(d.In)))
	d.B.Value.Zero()
	return d
}

// InitXavier applies Xavier-normal initialization (std = sqrt(1/fanIn)).
func (d *Dense) InitXavier(r *rng.Rand) *Dense {
	d.W.Value.FillNorm(r, 0, sqrt(1/float64(d.In)))
	d.B.Value.Zero()
	return d
}

// Forward implements Layer.
//
//hpnn:noalloc
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: Dense expects [N,%d], got %v", d.In, x.Shape))
	}
	d.lastX = x
	n := x.Shape[0]
	d.y = tensor.EnsureShape(d.y, n, d.Out)
	tensor.MatMulNTInto(d.y, x, d.W.Value) // [N, Out]
	tensor.AddRowBroadcast(d.y, d.B.Value.Data)
	return d.y
}

// Backward implements Layer.
//
//hpnn:noalloc
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	// dW = gradᵀ·x  ([Out,N]·[N,In])
	d.dW = tensor.EnsureShape(d.dW, d.Out, d.In)
	tensor.MatMulTNInto(d.dW, grad, d.lastX)
	d.W.Grad.AddScaled(1, d.dW)
	// dB = column sums of grad
	tensor.AddColSums(d.B.Grad.Data, grad)
	// dX = grad·W  ([N,Out]·[Out,In])
	d.dx = tensor.EnsureShape(d.dx, n, d.In)
	return tensor.MatMulInto(d.dx, grad, d.W.Value)
}
