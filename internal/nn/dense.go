package nn

import (
	"fmt"

	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// Dense is a fully-connected layer: y = x·Wᵀ + b with x of shape [N, In].
type Dense struct {
	In, Out int
	W       *Param // [Out, In]
	B       *Param // [Out]

	lastX *tensor.Tensor
}

// NewDense constructs a dense layer with zero-initialized parameters.
// Use InitHe/InitXavier (or Network initializers) to randomize weights.
func NewDense(in, out int) *Dense {
	return &Dense{
		In:  in,
		Out: out,
		W:   NewParam(fmt.Sprintf("dense_%dx%d.W", out, in), out, in),
		B:   NewParam(fmt.Sprintf("dense_%dx%d.B", out, in), out),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%d→%d)", d.In, d.Out) }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// InitHe applies He-normal initialization (std = sqrt(2/fanIn)), the
// standard choice ahead of ReLU activations.
func (d *Dense) InitHe(r *rng.Rand) *Dense {
	d.W.Value.FillNorm(r, 0, sqrt(2/float64(d.In)))
	d.B.Value.Zero()
	return d
}

// InitXavier applies Xavier-normal initialization (std = sqrt(1/fanIn)).
func (d *Dense) InitXavier(r *rng.Rand) *Dense {
	d.W.Value.FillNorm(r, 0, sqrt(1/float64(d.In)))
	d.B.Value.Zero()
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: Dense expects [N,%d], got %v", d.In, x.Shape))
	}
	d.lastX = x
	y := tensor.MatMulNT(x, d.W.Value) // [N, Out]
	n := x.Shape[0]
	bd := d.B.Value.Data
	for i := 0; i < n; i++ {
		row := y.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	// dW = gradᵀ·x  ([Out,N]·[N,In])
	dW := tensor.MatMulTN(grad, d.lastX)
	d.W.Grad.AddScaled(1, dW)
	// dB = column sums of grad
	bg := d.B.Grad.Data
	for i := 0; i < n; i++ {
		row := grad.Data[i*d.Out : (i+1)*d.Out]
		for j, v := range row {
			bg[j] += v
		}
	}
	// dX = grad·W  ([N,Out]·[Out,In])
	return tensor.MatMul(grad, d.W.Value)
}
