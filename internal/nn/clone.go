package nn

import (
	"fmt"

	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// Replica clones for the data-parallel trainer.
//
// A replica clone shares everything that is read-only during a training
// forward/backward — parameter values, lock factors, batch-norm running
// statistics — and privatizes everything that is written: gradient
// accumulators, layer scratch (outputs, lowering buffers, caches), dropout
// generators, and batch-norm statistic outputs. K clones can therefore run
// concurrent forward/backward passes over disjoint micro-shards while the
// master network stays the single owner of weights and optimizer state.

// cloneParam returns a parameter that aliases p's value tensor but owns a
// fresh zeroed gradient. The clone's Param identity is distinct from the
// master's, so optimizer slot maps (keyed on *Param) never see clone params.
func cloneParam(p *Param) *Param {
	return &Param{Name: p.Name, Value: p.Value, Grad: tensor.New(p.Value.Shape...)}
}

// ReplicaClone returns a network sharing n's weights but owning private
// gradients and scratch, safe to Forward/Backward concurrently with other
// clones of the same master. It panics on layer types it does not know how
// to clone — a new Layer implementation must be added here before it can be
// trained data-parallel.
func (n *Network) ReplicaClone() *Network {
	layers := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = cloneLayer(l)
	}
	return NewNetwork(layers...)
}

func cloneLayer(l Layer) Layer {
	switch v := l.(type) {
	case *Conv2D:
		return &Conv2D{Geom: v.Geom, OutC: v.OutC, W: cloneParam(v.W), B: cloneParam(v.B)}
	case *Dense:
		return &Dense{In: v.In, Out: v.Out, W: cloneParam(v.W), B: cloneParam(v.B)}
	case *BatchNorm2D:
		// Clones ALWAYS carry a StatsOut redirect so a clone training
		// forward can never race on the shared running-stat tensors; the
		// replica driver repoints it at the per-shard buffer before each
		// shard and absorbs the stats serially afterwards.
		return &BatchNorm2D{
			C: v.C, Eps: v.Eps, Momentum: v.Momentum,
			Gamma: cloneParam(v.Gamma), Beta: cloneParam(v.Beta),
			RunMean: v.RunMean, RunVar: v.RunVar,
			StatsOut: make([]float64, 2*v.C),
		}
	case *Lock:
		// Factors is shared so SetBits on the master propagates; Engaged is
		// a copied bool, so the replica driver re-syncs engagement from the
		// master locks when a run starts.
		return &Lock{ID: v.ID, Factors: v.Factors, Engaged: v.Engaged}
	case *Dropout:
		// The generator is reseeded per (step, shard) by the replica
		// driver; the placeholder seed is never drawn from.
		return &Dropout{P: v.P, Rng: rng.New(0)}
	case *Residual:
		var skip *Network
		if v.Skip != nil {
			skip = v.Skip.ReplicaClone()
		}
		return &Residual{Body: v.Body.ReplicaClone(), Skip: skip, Post: v.Post.ReplicaClone()}
	case *ReLU:
		return &ReLU{}
	case *LeakyReLU:
		return &LeakyReLU{Alpha: v.Alpha}
	case *Sigmoid:
		return &Sigmoid{}
	case *Tanh:
		return &Tanh{}
	case *Flatten:
		return &Flatten{}
	case *MaxPool:
		return &MaxPool{Geom: v.Geom}
	case *AvgPool:
		return &AvgPool{Geom: v.Geom}
	case *GlobalAvgPool:
		return &GlobalAvgPool{}
	default:
		panic(fmt.Sprintf("nn: ReplicaClone does not support layer %s", l.Name()))
	}
}

// BatchNorms returns every BatchNorm2D in the network in forward order,
// descending into residual blocks — the same traversal order as Locks, so
// master and clone collections correspond index-by-index.
func (n *Network) BatchNorms() []*BatchNorm2D {
	var out []*BatchNorm2D
	for _, l := range n.Layers {
		out = append(out, collectBatchNorms(l)...)
	}
	return out
}

func collectBatchNorms(l Layer) []*BatchNorm2D {
	switch v := l.(type) {
	case *BatchNorm2D:
		return []*BatchNorm2D{v}
	case *Residual:
		var out []*BatchNorm2D
		out = append(out, v.Body.BatchNorms()...)
		if v.Skip != nil {
			out = append(out, v.Skip.BatchNorms()...)
		}
		out = append(out, v.Post.BatchNorms()...)
		return out
	default:
		return nil
	}
}

// Dropouts returns every Dropout in the network in forward order, descending
// into residual blocks.
func (n *Network) Dropouts() []*Dropout {
	var out []*Dropout
	for _, l := range n.Layers {
		out = append(out, collectDropouts(l)...)
	}
	return out
}

func collectDropouts(l Layer) []*Dropout {
	switch v := l.(type) {
	case *Dropout:
		return []*Dropout{v}
	case *Residual:
		var out []*Dropout
		out = append(out, v.Body.Dropouts()...)
		if v.Skip != nil {
			out = append(out, v.Skip.Dropouts()...)
		}
		out = append(out, v.Post.Dropouts()...)
		return out
	default:
		return nil
	}
}

// FlattenGrads rebases every parameter gradient in params onto one
// contiguous flat vector and returns it. Each Param.Grad becomes a view into
// the vector (same shapes, zero-copy), so a full-model gradient can be
// cleared, accumulated (tensor.AddTo) and copied as a single slice — the
// representation the replica tree reduction operates on.
func FlattenGrads(params []*Param) []float64 {
	total := 0
	for _, p := range params {
		total += p.Grad.Len()
	}
	flat := make([]float64, total)
	off := 0
	for _, p := range params {
		ln := p.Grad.Len()
		p.Grad = tensor.FromSlice(flat[off:off+ln:off+ln], p.Grad.Shape...)
		off += ln
	}
	return flat
}
