// Package nn is a from-scratch CPU neural-network training framework: the
// substrate the HPNN reproduction trains its convolutional networks with.
//
// It provides the layers needed by the paper's architectures (CNN1/2/3 and
// ResNet-18): convolution (via im2col GEMM), dense, ReLU-family activations,
// max/average pooling, batch normalization, dropout, residual blocks — plus
// the Lock layer, which implements the paper's neuron-locking transform
// out_j = f(L_j · MAC_j) and its key-dependent backpropagation rule.
//
// Conventions: activations flow as tensors whose first dimension is the
// batch (either [N, D] or [N, C, H, W]); Backward receives dLoss/dOutput and
// returns dLoss/dInput while accumulating parameter gradients into Param.Grad.
package nn

import (
	"fmt"

	"hpnn/internal/tensor"
)

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter (and its gradient) with the given shape.
func NewParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable network stage.
//
// Buffer-reuse contract: every layer owns its forward/backward scratch —
// output, input-gradient and any lowering buffers — sized lazily on the
// first batch and reused verbatim while the input shape is stable. A shape
// change (e.g. the short final batch of an epoch) resizes the scratch in
// place, retaining capacity, so cycling between batch sizes settles into a
// steady state with zero allocations per step.
//
// Consequently the tensors returned by Forward and Backward are views into
// layer-owned storage: they are valid until the layer's next Forward or
// Backward call, and callers that need the values beyond that must Clone.
// The training loop, attack loops and accelerator never do — each pass
// fully consumes the previous pass's views — which is what makes the whole
// compute path allocation-free after warmup.
type Layer interface {
	// Name identifies the layer in diagnostics and serialization.
	Name() string
	// Forward computes the layer output for a batch. train selects
	// training-mode behaviour (dropout masks, batch statistics). The
	// result is layer-owned scratch, overwritten by the next call.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dLoss/dOutput of the most recent Forward and
	// returns dLoss/dInput, accumulating parameter gradients. The result
	// is layer-owned scratch, overwritten by the next call.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (nil if none), in a
	// deterministic order used by optimizers and serialization.
	Params() []*Param
}

// Network is an ordered sequence of layers trained end-to-end.
type Network struct {
	Layers []Layer

	// paramsCache memoizes Params(); it is invalidated when the layer count
	// changes, so builders that append layers after a Params call stay
	// correct. Gathered once, it keeps per-step optimizer walks free of
	// slice growth.
	paramsCache  []*Param
	paramsLayers int
}

// NewNetwork builds a network from the given layers.
func NewNetwork(layers ...Layer) *Network {
	return &Network{Layers: layers}
}

// Forward runs the batch through every layer in order.
//
//hpnn:noalloc
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the loss gradient through the layers in reverse.
//
//hpnn:noalloc
func (n *Network) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameters in layer order. The slice is
// memoized — callers must not append to or reorder it.
func (n *Network) Params() []*Param {
	if n.paramsCache != nil && n.paramsLayers == len(n.Layers) {
		return n.paramsCache
	}
	ps := []*Param{}
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	n.paramsCache, n.paramsLayers = ps, len(n.Layers)
	return ps
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of trainable scalars.
func (n *Network) ParamCount() int {
	c := 0
	for _, p := range n.Params() {
		c += p.Value.Len()
	}
	return c
}

// Locks returns every Lock layer in the network, in forward order,
// descending into residual blocks. The HPNN key schedule uses this to
// assign key bits to neurons.
func (n *Network) Locks() []*Lock {
	var locks []*Lock
	for _, l := range n.Layers {
		locks = append(locks, collectLocks(l)...)
	}
	return locks
}

func collectLocks(l Layer) []*Lock {
	switch v := l.(type) {
	case *Lock:
		return []*Lock{v}
	case *Residual:
		var out []*Lock
		out = append(out, v.Body.Locks()...)
		if v.Skip != nil {
			out = append(out, v.Skip.Locks()...)
		}
		out = append(out, v.Post.Locks()...)
		return out
	default:
		return nil
	}
}

// Summary returns a human-readable multi-line description of the network.
func (n *Network) Summary() string {
	s := ""
	for i, l := range n.Layers {
		s += fmt.Sprintf("%2d: %s\n", i, l.Name())
	}
	s += fmt.Sprintf("trainable parameters: %d\n", n.ParamCount())
	return s
}
