package nn

import (
	"math"

	"hpnn/internal/tensor"
)

// Optimizer updates network parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and zeroes the gradients.
	Step(params []*Param)
	// SetLR changes the learning rate (used by schedules and the Fig. 6
	// hyperparameter sweeps).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent with optional momentum and L2 weight
// decay. With Momentum == 0 it is the plain delta rule of Eq. (3).
type SGD struct {
	Rate        float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param]*tensor.Tensor
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{Rate: lr} }

// NewMomentumSGD returns SGD with momentum and weight decay, the
// configuration used for the CNN training runs.
func NewMomentumSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{Rate: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.Rate }

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.Rate = lr }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		g := p.Grad
		if s.WeightDecay != 0 {
			g.AddScaled(s.WeightDecay, p.Value)
		}
		if s.Momentum != 0 {
			if s.velocity == nil {
				s.velocity = make(map[*Param]*tensor.Tensor)
			}
			v := s.velocity[p]
			if v == nil {
				v = tensor.New(p.Value.Shape...)
				s.velocity[p] = v
			}
			v.Scale(s.Momentum)
			v.AddScaled(1, g)
			p.Value.AddScaled(-s.Rate, v)
		} else {
			p.Value.AddScaled(-s.Rate, g)
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	Rate, Beta1, Beta2, Eps float64
	WeightDecay             float64

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

// NewAdam returns an Adam optimizer with standard hyperparameters.
func NewAdam(lr float64) *Adam {
	return &Adam{Rate: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.Rate }

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.Rate = lr }

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make(map[*Param]*tensor.Tensor)
		a.v = make(map[*Param]*tensor.Tensor)
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		g := p.Grad
		if a.WeightDecay != 0 {
			g.AddScaled(a.WeightDecay, p.Value)
		}
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = tensor.New(p.Value.Shape...)
			v = tensor.New(p.Value.Shape...)
			a.m[p] = m
			a.v[p] = v
		}
		for i, gi := range g.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*gi
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*gi*gi
			mh := m.Data[i] / c1
			vh := v.Data[i] / c2
			p.Value.Data[i] -= a.Rate * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm. Returns the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}

// StepDecay returns lr decayed by factor every interval epochs, the
// schedule used by the longer CNN runs.
func StepDecay(base float64, epoch, interval int, factor float64) float64 {
	if interval <= 0 {
		return base
	}
	return base * math.Pow(factor, float64(epoch/interval))
}
