package nn

import (
	"fmt"
	"math"

	"hpnn/internal/tensor"
)

// Optimizer updates network parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and zeroes the gradients.
	Step(params []*Param)
	// SetLR changes the learning rate (used by schedules and the Fig. 6
	// hyperparameter sweeps).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
	// ExportState snapshots the optimizer's per-parameter slots (velocity,
	// moments) aligned with params. The copy is deep, so a checkpoint taken
	// mid-run is immune to later steps.
	ExportState(params []*Param) OptState
	// ImportState restores a snapshot taken by ExportState against the same
	// parameter list (same order, same shapes). A resumed run continues the
	// original update sequence bitwise.
	ImportState(params []*Param, st OptState) error
}

// OptState is a portable snapshot of an optimizer's internal slots. Slots
// is aligned with the parameter list handed to ExportState/ImportState:
// Slots[i] holds the state vectors of params[i] — one vector (velocity)
// for momentum SGD, two (first and second moments) for Adam, none before
// the slot is first touched. It is the unit the modelio checkpoint format
// serializes for resumable training.
type OptState struct {
	Kind  string        // "sgd" or "adam"
	Step  int           // Adam's bias-correction counter; 0 for SGD
	Slots [][][]float64 // per-param state vectors, possibly empty
}

// SGD is stochastic gradient descent with optional momentum and L2 weight
// decay. With Momentum == 0 it is the plain delta rule of Eq. (3).
type SGD struct {
	Rate        float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param]*tensor.Tensor
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{Rate: lr} }

// NewMomentumSGD returns SGD with momentum and weight decay, the
// configuration used for the CNN training runs.
func NewMomentumSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{Rate: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.Rate }

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.Rate = lr }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		g := p.Grad
		if s.WeightDecay != 0 {
			g.AddScaled(s.WeightDecay, p.Value)
		}
		if s.Momentum != 0 {
			if s.velocity == nil {
				s.velocity = make(map[*Param]*tensor.Tensor)
			}
			v := s.velocity[p]
			if v == nil {
				v = tensor.New(p.Value.Shape...)
				s.velocity[p] = v
			}
			v.Scale(s.Momentum)
			v.AddScaled(1, g)
			p.Value.AddScaled(-s.Rate, v)
		} else {
			p.Value.AddScaled(-s.Rate, g)
		}
		p.ZeroGrad()
	}
}

// ExportState implements Optimizer: one velocity vector per param (none
// while momentum is unused or before the first step allocates it).
func (s *SGD) ExportState(params []*Param) OptState {
	st := OptState{Kind: "sgd", Slots: make([][][]float64, len(params))}
	for i, p := range params {
		if v := s.velocity[p]; v != nil {
			st.Slots[i] = [][]float64{append([]float64(nil), v.Data...)}
		}
	}
	return st
}

// ImportState implements Optimizer.
func (s *SGD) ImportState(params []*Param, st OptState) error {
	if st.Kind != "sgd" {
		return fmt.Errorf("nn: cannot import %q optimizer state into SGD", st.Kind)
	}
	if len(st.Slots) != len(params) {
		return fmt.Errorf("nn: SGD state has %d parameter slots, want %d", len(st.Slots), len(params))
	}
	for i, p := range params {
		vecs := st.Slots[i]
		if len(vecs) == 0 {
			delete(s.velocity, p)
			continue
		}
		if len(vecs) != 1 {
			return fmt.Errorf("nn: SGD slot %d has %d vectors, want 1", i, len(vecs))
		}
		if len(vecs[0]) != p.Value.Len() {
			return fmt.Errorf("nn: SGD slot %d sized %d, parameter %q needs %d",
				i, len(vecs[0]), p.Name, p.Value.Len())
		}
		if s.velocity == nil {
			s.velocity = make(map[*Param]*tensor.Tensor)
		}
		v := tensor.New(p.Value.Shape...)
		copy(v.Data, vecs[0])
		s.velocity[p] = v
	}
	return nil
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	Rate, Beta1, Beta2, Eps float64
	WeightDecay             float64

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

// NewAdam returns an Adam optimizer with standard hyperparameters.
func NewAdam(lr float64) *Adam {
	return &Adam{Rate: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.Rate }

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.Rate = lr }

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make(map[*Param]*tensor.Tensor)
		a.v = make(map[*Param]*tensor.Tensor)
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		g := p.Grad
		if a.WeightDecay != 0 {
			g.AddScaled(a.WeightDecay, p.Value)
		}
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = tensor.New(p.Value.Shape...)
			v = tensor.New(p.Value.Shape...)
			a.m[p] = m
			a.v[p] = v
		}
		for i, gi := range g.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*gi
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*gi*gi
			mh := m.Data[i] / c1
			vh := v.Data[i] / c2
			p.Value.Data[i] -= a.Rate * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// ExportState implements Optimizer: first and second moment vectors per
// param plus the shared step counter driving bias correction.
func (a *Adam) ExportState(params []*Param) OptState {
	st := OptState{Kind: "adam", Step: a.t, Slots: make([][][]float64, len(params))}
	for i, p := range params {
		m, v := a.m[p], a.v[p]
		if m == nil || v == nil {
			continue
		}
		st.Slots[i] = [][]float64{
			append([]float64(nil), m.Data...),
			append([]float64(nil), v.Data...),
		}
	}
	return st
}

// ImportState implements Optimizer.
func (a *Adam) ImportState(params []*Param, st OptState) error {
	if st.Kind != "adam" {
		return fmt.Errorf("nn: cannot import %q optimizer state into Adam", st.Kind)
	}
	if len(st.Slots) != len(params) {
		return fmt.Errorf("nn: Adam state has %d parameter slots, want %d", len(st.Slots), len(params))
	}
	if st.Step < 0 {
		return fmt.Errorf("nn: Adam state has negative step count %d", st.Step)
	}
	a.t = st.Step
	for i, p := range params {
		vecs := st.Slots[i]
		if len(vecs) == 0 {
			delete(a.m, p)
			delete(a.v, p)
			continue
		}
		if len(vecs) != 2 {
			return fmt.Errorf("nn: Adam slot %d has %d vectors, want 2 (m, v)", i, len(vecs))
		}
		if len(vecs[0]) != p.Value.Len() || len(vecs[1]) != p.Value.Len() {
			return fmt.Errorf("nn: Adam slot %d sized %d/%d, parameter %q needs %d",
				i, len(vecs[0]), len(vecs[1]), p.Name, p.Value.Len())
		}
		if a.m == nil {
			a.m = make(map[*Param]*tensor.Tensor)
			a.v = make(map[*Param]*tensor.Tensor)
		}
		m := tensor.New(p.Value.Shape...)
		v := tensor.New(p.Value.Shape...)
		copy(m.Data, vecs[0])
		copy(v.Data, vecs[1])
		a.m[p], a.v[p] = m, v
	}
	return nil
}

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm. Returns the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}

// StepDecay returns lr decayed by factor every interval epochs, the
// schedule used by the longer CNN runs.
func StepDecay(base float64, epoch, interval int, factor float64) float64 {
	if interval <= 0 {
		return base
	}
	return base * math.Pow(factor, float64(epoch/interval))
}
