package nn

import (
	"math"

	"hpnn/internal/tensor"
)

// CheckGradients compares the analytic gradients of net (under loss
// function lossFn, which must run Forward+Backward and return the scalar
// loss) against central finite differences, for both parameters and the
// input. It returns the maximum relative error observed.
//
// lossFn is called many times; keep the network tiny. This is the
// correctness backbone for every layer, including the key-locked ones.
func CheckGradients(net *Network, x *tensor.Tensor, lossFn func() float64, eps float64) float64 {
	// Analytic pass: caller's lossFn must have populated Grad fields.
	worst := 0.0
	for _, p := range net.Params() {
		analytic := p.Grad.Clone()
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lPlus := lossFn()
			p.Value.Data[i] = orig - eps
			lMinus := lossFn()
			p.Value.Data[i] = orig
			numeric := (lPlus - lMinus) / (2 * eps)
			worst = math.Max(worst, relErr(analytic.Data[i], numeric))
		}
	}
	return worst
}

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1e-4)
	return d / scale
}
