package nn

import (
	"fmt"
	"math"

	"hpnn/internal/tensor"
)

// SoftmaxCrossEntropy combines a softmax over class logits with the
// cross-entropy loss, averaged over the batch. It is the training loss for
// all classification experiments.
type SoftmaxCrossEntropy struct{}

// Loss returns the mean cross-entropy of logits [N, K] against integer
// labels, plus dLoss/dLogits ready for Network.Backward.
func (s SoftmaxCrossEntropy) Loss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	return s.LossInto(nil, logits, labels)
}

// LossInto is the buffer-reusing form of Loss: the gradient is written into
// grad (resized in place; allocated when nil) and returned. Training loops
// keep one gradient buffer alive across steps, so the loss stage costs no
// allocations after warmup.
func (s SoftmaxCrossEntropy) LossInto(grad *tensor.Tensor, logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	return s.LossScaledInto(grad, logits, labels, 1/float64(logits.Shape[0]))
}

// LossScaledInto is LossInto with an explicit averaging factor instead of the
// implied 1/batch: both the returned loss and the gradient are the per-row
// sums multiplied by invN. The data-parallel trainer passes 1/fullBatch while
// feeding micro-shards, so shard losses and gradients sum to exactly the
// full-batch quantities; trigger-set watermark hooks pass λ/len(trigger).
// LossInto delegates here with invN = 1/n, so the expressions below are the
// single (bitwise-pinned) softmax-CE implementation.
func (SoftmaxCrossEntropy) LossScaledInto(grad *tensor.Tensor, logits *tensor.Tensor, labels []int, invN float64) (float64, *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	grad = tensor.EnsureShape(grad, n, k)
	total := 0.0
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		g := grad.Data[i*k : (i+1)*k]
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxV)
			g[j] = e
			sum += e
		}
		label := labels[i]
		if label < 0 || label >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, k))
		}
		p := g[label] / sum
		total += -math.Log(math.Max(p, 1e-300))
		for j := range g {
			g[j] = (g[j]/sum - oneHot(j, label)) * invN
		}
	}
	return total * invN, grad
}

func oneHot(j, label int) float64 {
	if j == label {
		return 1
	}
	return 0
}

// Probabilities returns the softmax distribution for each row of logits.
func (SoftmaxCrossEntropy) Probabilities(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Shape[0], logits.Shape[1]
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		o := out.Data[i*k : (i+1)*k]
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxV)
			o[j] = e
			sum += e
		}
		for j := range o {
			o[j] /= sum
		}
	}
	return out
}

// MSE is the mean-squared-error cost of the paper's Section III-C,
// E = ½ Σ_j (t_j - out_j)², summed over outputs and averaged over the batch.
// The key-dependent delta rule (Eq. 4) is derived for this loss; it is used
// by the Theorem 1 experiments.
type MSE struct{}

// Loss returns the cost and dLoss/dOutput for predictions and targets of
// identical shape [N, K].
func (m MSE) Loss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	return m.LossInto(nil, pred, target)
}

// LossInto is the buffer-reusing form of Loss: the gradient is written into
// grad (resized in place; allocated when nil) and returned.
func (MSE) LossInto(grad *tensor.Tensor, pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if pred.Len() != target.Len() {
		panic("nn: MSE shape mismatch")
	}
	n := pred.Shape[0]
	invN := 1 / float64(n)
	grad = tensor.EnsureShape(grad, pred.Shape...)
	total := 0.0
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		total += 0.5 * d * d
		grad.Data[i] = d * invN
	}
	return total * invN, grad
}
