package nn

import (
	"math"

	"hpnn/internal/tensor"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// ReLU is the rectified linear activation max(0, x).
//
// In the HPNN framework every ReLU is preceded by a Lock layer: the paper
// locks exactly the neurons "belonging to nonlinear layers", i.e. the
// pre-activation values feeding each ReLU.
type ReLU struct {
	lastIn *tensor.Tensor
	y, dx  *tensor.Tensor // layer-owned scratch, resized on shape change
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "ReLU" }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
//
//hpnn:noalloc
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.lastIn = x
	r.y = tensor.EnsureShape(r.y, x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			r.y.Data[i] = v
		} else {
			r.y.Data[i] = 0
		}
	}
	return r.y
}

// Backward implements Layer.
//
//hpnn:noalloc
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	r.dx = tensor.EnsureShape(r.dx, grad.Shape...)
	for i, v := range r.lastIn.Data {
		if v > 0 {
			r.dx.Data[i] = grad.Data[i]
		} else {
			r.dx.Data[i] = 0
		}
	}
	return r.dx
}

// LeakyReLU is max(x, alpha·x).
type LeakyReLU struct {
	Alpha  float64
	lastIn *tensor.Tensor
	y, dx  *tensor.Tensor
}

// NewLeakyReLU returns a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Name implements Layer.
func (r *LeakyReLU) Name() string { return "LeakyReLU" }

// Params implements Layer.
func (r *LeakyReLU) Params() []*Param { return nil }

// Forward implements Layer.
//
//hpnn:noalloc
func (r *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.lastIn = x
	r.y = tensor.EnsureShape(r.y, x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			r.y.Data[i] = v
		} else {
			r.y.Data[i] = r.Alpha * v
		}
	}
	return r.y
}

// Backward implements Layer.
//
//hpnn:noalloc
func (r *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	r.dx = tensor.EnsureShape(r.dx, grad.Shape...)
	for i, v := range r.lastIn.Data {
		if v > 0 {
			r.dx.Data[i] = grad.Data[i]
		} else {
			r.dx.Data[i] = r.Alpha * grad.Data[i]
		}
	}
	return r.dx
}

// Sigmoid is the logistic activation 1/(1+e^-x). It is used by the
// Theorem 1 single-layer delta-rule experiments.
type Sigmoid struct {
	lastOut *tensor.Tensor
	dx      *tensor.Tensor
}

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "Sigmoid" }

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Forward implements Layer.
//
//hpnn:noalloc
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s.lastOut = tensor.EnsureShape(s.lastOut, x.Shape...)
	for i, v := range x.Data {
		s.lastOut.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return s.lastOut
}

// Backward implements Layer.
//
//hpnn:noalloc
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	s.dx = tensor.EnsureShape(s.dx, grad.Shape...)
	for i, o := range s.lastOut.Data {
		s.dx.Data[i] = grad.Data[i] * o * (1 - o)
	}
	return s.dx
}

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	lastOut *tensor.Tensor
	dx      *tensor.Tensor
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "Tanh" }

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Forward implements Layer.
//
//hpnn:noalloc
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	t.lastOut = tensor.EnsureShape(t.lastOut, x.Shape...)
	for i, v := range x.Data {
		t.lastOut.Data[i] = math.Tanh(v)
	}
	return t.lastOut
}

// Backward implements Layer.
//
//hpnn:noalloc
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	t.dx = tensor.EnsureShape(t.dx, grad.Shape...)
	for i, o := range t.lastOut.Data {
		t.dx.Data[i] = grad.Data[i] * (1 - o*o)
	}
	return t.dx
}

// Flatten reshapes [N, C, H, W] (or any rank ≥ 2) batches to [N, D].
type Flatten struct {
	lastShape []int
	// Reshape views are cached headers over the caller's data — rebuilding
	// them in place keeps Forward/Backward allocation-free.
	fwdView, bwdView tensor.Tensor
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "Flatten" }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
//
//hpnn:noalloc
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.lastShape = append(f.lastShape[:0], x.Shape...)
	n := x.Shape[0]
	return tensor.ViewInto(&f.fwdView, x.Data, n, x.Len()/n)
}

// Backward implements Layer.
//
//hpnn:noalloc
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return tensor.ViewInto(&f.bwdView, grad.Data, f.lastShape...)
}
