package nn

import (
	"fmt"

	"hpnn/internal/tensor"
)

// Residual is a skip-connection block: out = Post(Body(x) + Skip(x)).
//
// Body carries the main transform (conv-bn-lock-relu-conv-bn in a ResNet
// basic block); Skip is the projection path (nil for identity, or a 1×1
// strided conv + bn when shapes change); Post applies the stages after the
// join (the block's final lock + ReLU).
type Residual struct {
	Body *Network
	Skip *Network // nil means identity
	Post *Network // may be empty

	lastBodyOut *tensor.Tensor
	sum, dx     *tensor.Tensor // layer-owned scratch, resized on shape change
}

// NewResidual constructs a residual block.
func NewResidual(body, skip, post *Network) *Residual {
	if body == nil {
		panic("nn: Residual requires a body")
	}
	if post == nil {
		post = NewNetwork()
	}
	return &Residual{Body: body, Skip: skip, Post: post}
}

// Name implements Layer.
func (r *Residual) Name() string {
	skip := "identity"
	if r.Skip != nil {
		skip = fmt.Sprintf("%d-layer projection", len(r.Skip.Layers))
	}
	return fmt.Sprintf("Residual(body=%d layers, skip=%s, post=%d layers)",
		len(r.Body.Layers), skip, len(r.Post.Layers))
}

// Params implements Layer.
func (r *Residual) Params() []*Param {
	ps := r.Body.Params()
	if r.Skip != nil {
		ps = append(ps, r.Skip.Params()...)
	}
	ps = append(ps, r.Post.Params()...)
	return ps
}

// Forward implements Layer.
//
//hpnn:noalloc
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	body := r.Body.Forward(x, train)
	var skip *tensor.Tensor
	if r.Skip != nil {
		skip = r.Skip.Forward(x, train)
	} else {
		skip = x
	}
	if body.Len() != skip.Len() {
		panic(fmt.Sprintf("nn: residual join mismatch %v vs %v", body.Shape, skip.Shape))
	}
	r.sum = tensor.EnsureShape(r.sum, body.Shape...)
	for i := range r.sum.Data {
		r.sum.Data[i] = body.Data[i] + skip.Data[i]
	}
	r.lastBodyOut = body
	return r.Post.Forward(r.sum, train)
}

// Backward implements Layer.
//
//hpnn:noalloc
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gSum := r.Post.Backward(grad)
	gBody := r.Body.Backward(gSum)
	var gSkip *tensor.Tensor
	if r.Skip != nil {
		gSkip = r.Skip.Backward(gSum)
	} else {
		gSkip = gSum
	}
	// gSum stays valid across both sub-backwards: it is owned by Post's
	// layers (or is the caller's grad when Post is empty), while Body and
	// Skip write into their own scratch.
	r.dx = tensor.EnsureShape(r.dx, gBody.Shape...)
	for i := range r.dx.Data {
		r.dx.Data[i] = gBody.Data[i] + gSkip.Data[i]
	}
	return r.dx
}
