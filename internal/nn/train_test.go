package nn

import (
	"math"
	"testing"

	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// makeBlobs builds a linearly-inseparable 2-D two-class dataset (XOR-style
// quadrant blobs) for optimizer convergence tests.
func makeBlobs(r *rng.Rand, n int) (*tensor.Tensor, []int) {
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cx := float64(1 - 2*(r.Intn(2)))
		cy := float64(1 - 2*(r.Intn(2)))
		x.Set(cx+0.3*r.Norm(), i, 0)
		x.Set(cy+0.3*r.Norm(), i, 1)
		if cx*cy > 0 {
			labels[i] = 1
		}
	}
	return x, labels
}

func trainAccuracy(net *Network, x *tensor.Tensor, labels []int) float64 {
	out := net.Forward(x, false)
	k := out.Shape[1]
	correct := 0
	for i := range labels {
		if tensor.Argmax(out.Data[i*k:(i+1)*k]) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

func TestSGDLearnsXOR(t *testing.T) {
	r := rng.New(100)
	x, labels := makeBlobs(r, 200)
	net := NewNetwork(
		NewDense(2, 16).InitHe(r), NewReLU(),
		NewDense(16, 2).InitHe(r),
	)
	opt := NewMomentumSGD(0.1, 0.9, 0)
	loss := SoftmaxCrossEntropy{}
	for ep := 0; ep < 120; ep++ {
		out := net.Forward(x, true)
		_, g := loss.Loss(out, labels)
		net.Backward(g)
		opt.Step(net.Params())
	}
	if acc := trainAccuracy(net, x, labels); acc < 0.95 {
		t.Fatalf("SGD failed to learn XOR blobs: accuracy %v", acc)
	}
}

func TestAdamLearnsXOR(t *testing.T) {
	r := rng.New(101)
	x, labels := makeBlobs(r, 200)
	net := NewNetwork(
		NewDense(2, 16).InitHe(r), NewReLU(),
		NewDense(16, 2).InitHe(r),
	)
	opt := NewAdam(0.01)
	loss := SoftmaxCrossEntropy{}
	for ep := 0; ep < 120; ep++ {
		out := net.Forward(x, true)
		_, g := loss.Loss(out, labels)
		net.Backward(g)
		opt.Step(net.Params())
	}
	if acc := trainAccuracy(net, x, labels); acc < 0.95 {
		t.Fatalf("Adam failed to learn XOR blobs: accuracy %v", acc)
	}
}

// TestLockedTrainingCollapsesWithoutLock is the core HPNN behaviour at
// miniature scale: a network trained with an engaged lock performs well
// with the lock engaged and collapses when the lock is removed (the
// attacker's baseline-architecture scenario).
func TestLockedTrainingCollapsesWithoutLock(t *testing.T) {
	// 4-class quadrant task: fragile enough that removing the lock breaks
	// the decision boundaries (collapse strength at this toy scale depends
	// on the key draw; the full-scale behaviour is exercised in the hpnn
	// integration tests).
	r := rng.New(102)
	n := 400
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		q := r.Intn(4)
		cx := float64(1 - 2*(q&1))
		cy := float64(1 - 2*((q>>1)&1))
		x.Set(cx+0.35*r.Norm(), i, 0)
		x.Set(cy+0.35*r.Norm(), i, 1)
		labels[i] = q
	}
	lock := NewLock("h", 16)
	bits := make([]byte, 16)
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	lock.SetBits(bits)
	net := NewNetwork(
		NewDense(2, 16).InitHe(r), lock, NewReLU(),
		NewDense(16, 4).InitHe(r),
	)
	opt := NewMomentumSGD(0.1, 0.9, 0)
	loss := SoftmaxCrossEntropy{}
	for ep := 0; ep < 200; ep++ {
		out := net.Forward(x, true)
		_, g := loss.Loss(out, labels)
		net.Backward(g)
		opt.Step(net.Params())
	}
	withKey := trainAccuracy(net, x, labels)
	lock.Disengage()
	withoutKey := trainAccuracy(net, x, labels)
	lock.Engage()
	if withKey < 0.9 {
		t.Fatalf("locked training failed to converge: %v", withKey)
	}
	if withoutKey > withKey-0.2 {
		t.Fatalf("removing the lock should hurt accuracy: with=%v without=%v", withKey, withoutKey)
	}
}

// TestLockGradientMatchesManualDeltaRule verifies Eq. (4)-(5) of the paper
// directly: for a single locked sigmoid neuron under MSE, the framework's
// gradient must equal η·δ_j·a with δ_j = (t-out)·f'(L·MAC)·L (up to sign
// convention: Δw = -η ∂E/∂w).
func TestLockGradientMatchesManualDeltaRule(t *testing.T) {
	for _, kj := range []byte{0, 1} {
		lj := 1.0
		if kj == 1 {
			lj = -1
		}
		d := NewDense(3, 1)
		copy(d.W.Value.Data, []float64{0.2, -0.4, 0.7})
		d.B.Value.Data[0] = 0.1
		lock := NewLock("n", 1)
		lock.SetBits([]byte{kj})
		net := NewNetwork(d, lock, NewSigmoid())

		a := []float64{0.5, -1.0, 2.0}
		x := tensor.FromSlice(append([]float64(nil), a...), 1, 3)
		target := tensor.FromSlice([]float64{1}, 1, 1)

		net.ZeroGrad()
		out := net.Forward(x, true)
		_, g := MSE{}.Loss(out, target)
		net.Backward(g)

		mac := 0.2*a[0] - 0.4*a[1] + 0.7*a[2] + 0.1
		f := 1 / (1 + math.Exp(-lj*mac))
		fprime := f * (1 - f)
		delta := (f - target.Data[0]) * fprime * lj // dE/dMAC
		for i := range a {
			want := delta * a[i] // dE/dw_i
			got := d.W.Grad.Data[i]
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("k=%d: dE/dw[%d] = %v, want %v", kj, i, got, want)
			}
		}
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	p := NewParam("w", 1)
	p.Value.Data[0] = 1
	opt := NewMomentumSGD(0.1, 0, 1.0)
	opt.Step([]*Param{p}) // grad 0 + decay 1*value
	if p.Value.Data[0] >= 1 {
		t.Fatalf("weight decay did not shrink weight: %v", p.Value.Data[0])
	}
}

func TestOptimizerZeroesGrads(t *testing.T) {
	p := NewParam("w", 2)
	p.Grad.Fill(1)
	NewSGD(0.1).Step([]*Param{p})
	if p.Grad.Data[0] != 0 || p.Grad.Data[1] != 0 {
		t.Fatal("SGD.Step must zero gradients")
	}
	p.Grad.Fill(1)
	NewAdam(0.01).Step([]*Param{p})
	if p.Grad.Data[0] != 0 {
		t.Fatal("Adam.Step must zero gradients")
	}
}

func TestSetLR(t *testing.T) {
	s := NewSGD(0.1)
	s.SetLR(0.01)
	if s.LR() != 0.01 {
		t.Fatal("SGD SetLR failed")
	}
	a := NewAdam(0.1)
	a.SetLR(0.02)
	if a.LR() != 0.02 {
		t.Fatal("Adam SetLR failed")
	}
}
