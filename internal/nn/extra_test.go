package nn

import (
	"math"
	"testing"

	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// TestHeInitStatistics: He initialization must give zero-mean weights with
// variance 2/fanIn.
func TestHeInitStatistics(t *testing.T) {
	const in, out = 200, 300
	d := NewDense(in, out).InitHe(rng.New(1))
	var sum, sumSq float64
	n := float64(d.W.Value.Len())
	for _, v := range d.W.Value.Data {
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	want := 2.0 / in
	if math.Abs(mean) > 0.005 {
		t.Fatalf("He init mean %v too far from 0", mean)
	}
	if math.Abs(variance-want)/want > 0.1 {
		t.Fatalf("He init variance %v, want %v", variance, want)
	}
	for _, v := range d.B.Value.Data {
		if v != 0 {
			t.Fatal("He init must zero biases")
		}
	}
}

func TestXavierInitVariance(t *testing.T) {
	const in, out = 300, 200
	d := NewDense(in, out).InitXavier(rng.New(2))
	var sumSq float64
	for _, v := range d.W.Value.Data {
		sumSq += v * v
	}
	variance := sumSq / float64(d.W.Value.Len())
	want := 1.0 / in
	if math.Abs(variance-want)/want > 0.1 {
		t.Fatalf("Xavier variance %v, want %v", variance, want)
	}
}

// TestBatchNormNormalizes: training-mode output per channel must be
// ~N(beta, gamma²) regardless of input statistics.
func TestBatchNormNormalizes(t *testing.T) {
	bn := NewBatchNorm2D(2)
	x := tensor.New(16, 2, 4, 4)
	r := rng.New(3)
	for i := range x.Data {
		x.Data[i] = 5 + 3*r.Norm() // far from standard normal
	}
	y := bn.Forward(x, true)
	for ch := 0; ch < 2; ch++ {
		var sum, sumSq float64
		cnt := 0.0
		for i := 0; i < 16; i++ {
			for p := 0; p < 16; p++ {
				v := y.Data[(i*2+ch)*16+p]
				sum += v
				sumSq += v * v
				cnt++
			}
		}
		mean := sum / cnt
		variance := sumSq/cnt - mean*mean
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("channel %d mean %v, want 0", ch, mean)
		}
		if math.Abs(variance-1) > 0.01 {
			t.Fatalf("channel %d variance %v, want 1", ch, variance)
		}
	}
}

// TestParamsOrderStable: serialization depends on a deterministic Params
// traversal; two identically configured networks must agree on names.
func TestParamsOrderStable(t *testing.T) {
	build := func() *Network {
		r := rng.New(4)
		g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
		body := NewNetwork(NewConv2D(g, 2).InitHe(r), NewBatchNorm2D(2))
		return NewNetwork(
			NewConv2D(g, 1).InitHe(r),
			NewResidual(NewNetwork(NewConv2D(g, 1).InitHe(r)), nil, NewNetwork()),
			NewFlatten(),
			NewDense(64, 4).InitHe(r),
			&Residual{Body: body, Post: NewNetwork()}, // unused shape; order check only
		)
	}
	a, b := build(), build()
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) || len(pa) == 0 {
		t.Fatalf("param counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name {
			t.Fatalf("param order unstable at %d: %s vs %s", i, pa[i].Name, pb[i].Name)
		}
	}
}

func TestDropoutInvalidProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDropout(1) did not panic")
		}
	}()
	NewDropout(1, rng.New(1))
}

func TestConvRejectsWrongInput(t *testing.T) {
	g := tensor.ConvGeom{InC: 2, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	c := NewConv2D(g, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("conv with wrong input shape did not panic")
		}
	}()
	c.Forward(tensor.New(1, 3, 8, 8), false)
}

func TestDenseRejectsWrongInput(t *testing.T) {
	d := NewDense(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("dense with wrong width did not panic")
		}
	}()
	d.Forward(tensor.New(1, 5), false)
}

// TestLockTrainEquivalence: training with an engaged all-zero lock must be
// byte-identical to training without the lock layer (L = +1 everywhere is
// the identity).
func TestLockTrainEquivalence(t *testing.T) {
	mkData := func() (*tensor.Tensor, []int) {
		r := rng.New(5)
		x := tensor.New(8, 4)
		x.FillNorm(r, 0, 1)
		return x, []int{0, 1, 2, 0, 1, 2, 0, 1}
	}
	train := func(withLock bool) []float64 {
		r := rng.New(6)
		layers := []Layer{NewDense(4, 6).InitHe(r)}
		if withLock {
			layers = append(layers, NewLock("z", 6))
		}
		layers = append(layers, NewReLU(), NewDense(6, 3).InitHe(r))
		net := NewNetwork(layers...)
		opt := NewSGD(0.1)
		loss := SoftmaxCrossEntropy{}
		x, y := mkData()
		for e := 0; e < 10; e++ {
			out := net.Forward(x, true)
			_, g := loss.Loss(out, y)
			net.Backward(g)
			opt.Step(net.Params())
		}
		var flat []float64
		for _, p := range net.Params() {
			flat = append(flat, p.Value.Data...)
		}
		return flat
	}
	a, b := train(false), train(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("zero-key lock changed training at weight %d", i)
		}
	}
}

func BenchmarkCNN1TrainStep(b *testing.B) {
	r := rng.New(7)
	g1 := tensor.ConvGeom{InC: 1, InH: 16, InW: 16, KH: 5, KW: 5, Stride: 1}
	g2 := tensor.ConvGeom{InC: 4, InH: 6, InW: 6, KH: 5, KW: 5, Stride: 1}
	net := NewNetwork(
		NewConv2D(g1, 4).InitHe(r),
		NewLock("l0", 4*12*12), NewReLU(),
		NewMaxPool(tensor.ConvGeom{InC: 4, InH: 12, InW: 12, KH: 2, KW: 2, Stride: 2}),
		NewConv2D(g2, 32).InitHe(r),
		NewLock("l1", 32*2*2), NewReLU(),
		NewMaxPool(tensor.ConvGeom{InC: 32, InH: 2, InW: 2, KH: 2, KW: 2, Stride: 2}),
		NewFlatten(),
		NewDense(32, 10).InitHe(r),
	)
	x := tensor.New(32, 1, 16, 16)
	x.FillNorm(r, 0, 1)
	y := make([]int, 32)
	for i := range y {
		y[i] = i % 10
	}
	opt := NewMomentumSGD(0.02, 0.9, 0)
	loss := SoftmaxCrossEntropy{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := net.Forward(x, true)
		_, g := loss.Loss(out, y)
		net.Backward(g)
		opt.Step(net.Params())
	}
}

func TestAvgPoolPaddedGradients(t *testing.T) {
	r := rng.New(8)
	pg := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 2, Pad: 1}
	net := NewNetwork(NewAvgPool(pg), NewFlatten(), NewDense(4, 2).InitHe(r))
	x := tensor.New(2, 1, 4, 4)
	x.FillNorm(r, 0, 1)
	gradCheckNet(t, net, x, []int{0, 1}, 1e-4)
}

func TestParamZeroGrad(t *testing.T) {
	p := NewParam("w", 3)
	p.Grad.Fill(7)
	p.ZeroGrad()
	for _, v := range p.Grad.Data {
		if v != 0 {
			t.Fatal("ZeroGrad left residue")
		}
	}
}

func TestLockNeuronsAccessor(t *testing.T) {
	if NewLock("x", 9).Neurons() != 9 {
		t.Fatal("Neurons accessor wrong")
	}
}

func TestResidualRequiresBody(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewResidual(nil, ...) did not panic")
		}
	}()
	NewResidual(nil, nil, nil)
}
