package nn

import (
	"fmt"

	"hpnn/internal/tensor"
)

// Lock implements the HPNN neuron-locking transform of the paper (Eq. 1):
//
//	out_j = f(L_j · MAC_j),   L_j = (-1)^{k_j}
//
// A Lock layer sits between the MAC stage (Conv2D/Dense) and its nonlinear
// activation f, multiplying each pre-activation by the neuron's lock factor
// L_j ∈ {+1, -1}. The backward pass multiplies the incoming gradient by the
// same factors, which yields exactly the key-dependent backpropagation rule
// of Eq. (4)–(5): δ_j picks up the L_j term through dout/dMAC = L_j·f'.
//
// Factors has one entry per neuron of the layer's per-sample feature block
// (C·H·W for conv outputs, D for dense outputs). Engaged selects whether the
// lock is applied:
//
//   - owner training / trusted-hardware inference: Engaged with the true key;
//   - attacker running the baseline architecture: Disengage() — the lock
//     disappears and the layer is the identity, which models loading stolen
//     weights into the plain published topology;
//   - wrong-key usage: Engaged with a different key's factors.
type Lock struct {
	ID      string // stable identifier used by the key schedule
	Factors []float64
	Engaged bool

	y, dx *tensor.Tensor // layer-owned scratch, resized on shape change
}

// NewLock creates an engaged lock of size n with all factors +1 (k_j = 0).
func NewLock(id string, n int) *Lock {
	f := make([]float64, n)
	for i := range f {
		f[i] = 1
	}
	return &Lock{ID: id, Factors: f, Engaged: true}
}

// Name implements Layer.
func (l *Lock) Name() string {
	state := "engaged"
	if !l.Engaged {
		state = "disengaged"
	}
	return fmt.Sprintf("Lock(%s, %d neurons, %s)", l.ID, len(l.Factors), state)
}

// Params implements Layer. Lock factors are key material, not trainable
// parameters, so Lock exposes none.
func (l *Lock) Params() []*Param { return nil }

// Neurons returns the number of locked neurons.
func (l *Lock) Neurons() int { return len(l.Factors) }

// SetBits programs the lock from key bits: factor_j = (-1)^{bits[j]}
// (Eq. 2 of the paper). It panics if the bit count does not match.
func (l *Lock) SetBits(bits []byte) {
	if len(bits) != len(l.Factors) {
		panic(fmt.Sprintf("nn: Lock %s expects %d bits, got %d", l.ID, len(l.Factors), len(bits)))
	}
	for i, b := range bits {
		if b&1 == 0 {
			l.Factors[i] = 1
		} else {
			l.Factors[i] = -1
		}
	}
}

// Bits returns the current key bits (0 for +1, 1 for -1).
func (l *Lock) Bits() []byte {
	bits := make([]byte, len(l.Factors))
	for i, f := range l.Factors {
		if f < 0 {
			bits[i] = 1
		}
	}
	return bits
}

// Disengage makes the layer an identity, modelling inference on the plain
// baseline architecture (stolen model, no trusted hardware).
func (l *Lock) Disengage() { l.Engaged = false }

// Engage re-applies the lock factors.
func (l *Lock) Engage() { l.Engaged = true }

// Forward implements Layer: out = L ⊙ x per sample.
//
//hpnn:noalloc
func (l *Lock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !l.Engaged {
		return x
	}
	feat := len(l.Factors)
	if x.Len()%feat != 0 || x.Shape[0]*feat != x.Len() {
		panic(fmt.Sprintf("nn: Lock %s sized %d cannot apply to %v", l.ID, feat, x.Shape))
	}
	n := x.Shape[0]
	l.y = tensor.EnsureShape(l.y, x.Shape...)
	for i := 0; i < n; i++ {
		src := x.Data[i*feat : (i+1)*feat]
		dst := l.y.Data[i*feat : (i+1)*feat]
		for j, v := range src {
			dst[j] = l.Factors[j] * v
		}
	}
	return l.y
}

// Backward implements Layer: dx = L ⊙ grad — the key-dependent term of the
// paper's learning rule.
//
//hpnn:noalloc
func (l *Lock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if !l.Engaged {
		return grad
	}
	feat := len(l.Factors)
	n := grad.Shape[0]
	l.dx = tensor.EnsureShape(l.dx, grad.Shape...)
	for i := 0; i < n; i++ {
		src := grad.Data[i*feat : (i+1)*feat]
		dst := l.dx.Data[i*feat : (i+1)*feat]
		for j, v := range src {
			dst[j] = l.Factors[j] * v
		}
	}
	return l.dx
}
