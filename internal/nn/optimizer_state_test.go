package nn

import (
	"math"
	"testing"

	"hpnn/internal/rng"
)

// stateNet builds a small two-layer net with deterministic weights for the
// optimizer state roundtrip tests.
func stateNet(seed uint64) *Network {
	r := rng.New(seed)
	return NewNetwork(
		NewDense(4, 8).InitHe(r), NewReLU(),
		NewDense(8, 3).InitHe(r),
	)
}

// driveSteps runs k optimizer steps with a synthetic deterministic
// gradient pattern (no forward/backward needed to exercise slot state).
func driveSteps(net *Network, opt Optimizer, k int, seed uint64) {
	r := rng.New(seed)
	params := net.Params()
	for s := 0; s < k; s++ {
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = r.NormScaled(0, 0.1)
			}
		}
		opt.Step(params)
	}
}

// weightsBits flattens all parameter values to raw float64 bit patterns so
// equality checks are bitwise, not approximate.
func weightsBits(net *Network) []uint64 {
	var out []uint64
	for _, p := range net.Params() {
		for _, v := range p.Value.Data {
			out = append(out, math.Float64bits(v))
		}
	}
	return out
}

// TestOptimizerStateRoundtrip: for each optimizer, run a steps, export the
// state into a fresh optimizer on an identical network, then continue both
// for b more steps with identical gradients — the two networks must agree
// bitwise, proving ExportState/ImportState capture every slot.
func TestOptimizerStateRoundtrip(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Optimizer
	}{
		{"momentum-sgd", func() Optimizer { return NewMomentumSGD(0.05, 0.9, 1e-4) }},
		{"adam", func() Optimizer { return NewAdam(0.01) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			straight := stateNet(11)
			optA := tc.mk()
			driveSteps(straight, optA, 7, 21)
			driveSteps(straight, optA, 5, 22)

			resumed := stateNet(11)
			optB := tc.mk()
			driveSteps(resumed, optB, 7, 21)
			st := optB.ExportState(resumed.Params())
			optC := tc.mk()
			if err := optC.ImportState(resumed.Params(), st); err != nil {
				t.Fatal(err)
			}
			driveSteps(resumed, optC, 5, 22)

			a, b := weightsBits(straight), weightsBits(resumed)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: weights diverge at scalar %d after state roundtrip", tc.name, i)
				}
			}
		})
	}
}

// TestOptimizerStateValidation: importing mismatched state fails loudly
// instead of silently corrupting a resumed run.
func TestOptimizerStateValidation(t *testing.T) {
	net := stateNet(3)
	params := net.Params()
	sgd := NewMomentumSGD(0.1, 0.9, 0)
	driveSteps(net, sgd, 2, 5)
	st := sgd.ExportState(params)

	if err := NewAdam(0.01).ImportState(params, st); err == nil {
		t.Fatal("Adam accepted SGD state")
	}
	short := st
	short.Slots = short.Slots[:1]
	if err := NewMomentumSGD(0.1, 0.9, 0).ImportState(params, short); err == nil {
		t.Fatal("slot count mismatch accepted")
	}
	bad := sgd.ExportState(params)
	bad.Slots[0] = [][]float64{make([]float64, 1)}
	if err := NewMomentumSGD(0.1, 0.9, 0).ImportState(params, bad); err == nil {
		t.Fatal("vector size mismatch accepted")
	}
}

// TestPlainSGDExportsEmptySlots: without momentum there is no slot state;
// the snapshot must still roundtrip (fresh optimizer, empty slots).
func TestPlainSGDExportsEmptySlots(t *testing.T) {
	net := stateNet(9)
	params := net.Params()
	opt := NewSGD(0.1)
	driveSteps(net, opt, 3, 7)
	st := opt.ExportState(params)
	for i, s := range st.Slots {
		if len(s) != 0 {
			t.Fatalf("plain SGD exported state vectors for slot %d", i)
		}
	}
	if err := NewSGD(0.1).ImportState(params, st); err != nil {
		t.Fatal(err)
	}
}
