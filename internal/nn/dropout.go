package nn

import (
	"fmt"

	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// Dropout zeroes a fraction P of activations during training and rescales
// the survivors by 1/(1-P) (inverted dropout), so inference needs no
// adjustment.
type Dropout struct {
	P   float64
	Rng *rng.Rand

	lastMask []float64
	y, dx    *tensor.Tensor // layer-owned scratch, resized on shape change
}

// NewDropout constructs a dropout layer with drop probability p, drawing
// masks from r.
func NewDropout(p float64, r *rng.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0,1)", p))
	}
	return &Dropout{P: p, Rng: r}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("Dropout(%.2f)", d.P) }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Forward implements Layer.
//
//hpnn:noalloc
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.lastMask = nil
		return x
	}
	d.lastMask = tensor.EnsureFloats(d.lastMask, x.Len())
	scale := 1 / (1 - d.P)
	d.y = tensor.EnsureShape(d.y, x.Shape...)
	for i, v := range x.Data {
		if d.Rng.Float64() < d.P {
			d.lastMask[i] = 0
			d.y.Data[i] = 0
		} else {
			d.lastMask[i] = scale
			d.y.Data[i] = v * scale
		}
	}
	return d.y
}

// Backward implements Layer.
//
//hpnn:noalloc
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.lastMask == nil {
		return grad
	}
	d.dx = tensor.EnsureShape(d.dx, grad.Shape...)
	for i, m := range d.lastMask {
		d.dx.Data[i] = grad.Data[i] * m
	}
	return d.dx
}
