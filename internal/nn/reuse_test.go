package nn

import (
	"testing"

	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// Buffer-reuse regression tests. Since the workspace refactor every layer
// returns layer-owned scratch that is overwritten on the next call; these
// tests pin down the two properties that refactor must preserve:
//
//  1. determinism — a warmed-up pass (reusing buffers) is bitwise identical
//     to the very first pass of a freshly constructed network (which
//     allocates everything from scratch), and
//  2. zero allocations — a warmed-up Forward/Backward allocates nothing.

// reuseNet builds a small network covering every scratch-caching layer kind
// (conv, lock, activation, batchnorm, pool, flatten, dense). Identical seeds
// yield bitwise-identical parameters.
func reuseNet(seed uint64) *Network {
	r := rng.New(seed)
	g := tensor.ConvGeom{InC: 2, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	pool := tensor.ConvGeom{InC: 4, InH: 8, InW: 8, KH: 2, KW: 2, Stride: 2}
	lock := NewLock("reuse", 4*8*8)
	bits := make([]byte, lock.Neurons())
	kr := rng.New(99)
	for i := range bits {
		bits[i] = byte(kr.Intn(2))
	}
	lock.SetBits(bits)
	return NewNetwork(
		NewConv2D(g, 4).InitHe(r),
		lock,
		NewReLU(),
		NewBatchNorm2D(4),
		NewMaxPool(pool),
		NewFlatten(),
		NewDense(4*4*4, 5).InitHe(r),
	)
}

// runPass executes one full train-mode forward/backward and deep-copies the
// results (outputs and scratch are invalidated by the next pass).
func runPass(net *Network, x *tensor.Tensor, labels []int) (out, dx *tensor.Tensor, grads []*tensor.Tensor) {
	loss := SoftmaxCrossEntropy{}
	net.ZeroGrad()
	o := net.Forward(x, true)
	_, g := loss.Loss(o, labels)
	d := net.Backward(g)
	out, dx = o.Clone(), d.Clone()
	for _, p := range net.Params() {
		grads = append(grads, p.Grad.Clone())
	}
	return out, dx, grads
}

func bitwiseEqual(a, b *tensor.Tensor) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// TestReusedBuffersMatchFreshNetwork checks that the second pass of a
// network (running entirely on reused scratch) is bitwise identical to the
// first pass of an identically seeded fresh network (which takes the
// allocate-fresh path for every buffer). Any stale-buffer bug — a kernel
// that skips writing zeros, an aliased workspace region, a reduction whose
// order depends on buffer history — breaks exact equality here.
func TestReusedBuffersMatchFreshNetwork(t *testing.T) {
	x := tensor.New(3, 2, 8, 8)
	x.FillNorm(rng.New(5), 0, 1)
	labels := []int{0, 2, 4}

	warm := reuseNet(11)
	runPass(warm, x, labels) // warmup: allocates and caches all scratch
	out2, dx2, grads2 := runPass(warm, x, labels)

	fresh := reuseNet(11)
	out1, dx1, grads1 := runPass(fresh, x, labels)

	if !bitwiseEqual(out1, out2) {
		t.Errorf("reused-buffer forward differs from allocate-fresh forward")
	}
	if !bitwiseEqual(dx1, dx2) {
		t.Errorf("reused-buffer input gradient differs from allocate-fresh")
	}
	for i := range grads1 {
		if !bitwiseEqual(grads1[i], grads2[i]) {
			t.Errorf("reused-buffer gradient %d differs from allocate-fresh", i)
		}
	}
}

// TestReusedBuffersSurviveBatchShrink runs the short-final-batch pattern:
// full batch, short batch, full batch again. The re-grown pass must match
// a fresh network bitwise — this catches EnsureShape resize bugs where a
// shrink corrupts the header or loses capacity.
func TestReusedBuffersSurviveBatchShrink(t *testing.T) {
	xFull := tensor.New(4, 2, 8, 8)
	xFull.FillNorm(rng.New(6), 0, 1)
	xShort := tensor.New(1, 2, 8, 8)
	copy(xShort.Data, xFull.Data[:xShort.Len()])
	full := []int{1, 3, 0, 2}
	short := []int{1}

	warm := reuseNet(12)
	runPass(warm, xFull, full)
	runPass(warm, xShort, short)
	out2, dx2, grads2 := runPass(warm, xFull, full)

	fresh := reuseNet(12)
	out1, dx1, grads1 := runPass(fresh, xFull, full)

	if !bitwiseEqual(out1, out2) || !bitwiseEqual(dx1, dx2) {
		t.Errorf("pass after batch shrink/regrow differs from allocate-fresh")
	}
	for i := range grads1 {
		if !bitwiseEqual(grads1[i], grads2[i]) {
			t.Errorf("gradient %d differs after batch shrink/regrow", i)
		}
	}
}

// TestLayerPassZeroAllocSteadyState checks that a warmed-up full
// forward/backward over every scratch-caching layer performs zero heap
// allocations.
func TestLayerPassZeroAllocSteadyState(t *testing.T) {
	net := reuseNet(13)
	x := tensor.New(3, 2, 8, 8)
	x.FillNorm(rng.New(7), 0, 1)
	labels := []int{0, 2, 4}
	loss := SoftmaxCrossEntropy{}
	params := net.Params()
	var gradBuf *tensor.Tensor
	pass := func() {
		net.ZeroGrad()
		out := net.Forward(x, true)
		_, g := loss.LossInto(gradBuf, out, labels)
		gradBuf = g
		net.Backward(g)
		_ = params
	}
	pass() // warmup: scratch and loss-grad buffers settle
	if allocs := testing.AllocsPerRun(10, pass); allocs != 0 {
		t.Errorf("forward/backward: %v allocs/run in steady state, want 0", allocs)
	}
}
