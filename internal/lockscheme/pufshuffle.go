package lockscheme

import (
	"fmt"

	"hpnn/internal/core"
	"hpnn/internal/keys"
	"hpnn/internal/schedule"
)

// pufShuffle is a PUF-bound permutation scheme in the style of the
// PUF-Transformer / Arnold-cat-map line of work (SNIPPETS.md §2): the
// values of every parameter tensor are published in a key-derived shuffled
// order. The device — standing in for a PUF whose response reconstructs the
// permutation seed — inverts the shuffle at load time. Weight values are
// preserved exactly (no arithmetic on them at all); only their positions
// are secret, which already destroys the learned function: a convolution
// whose taps are permuted is noise.
type pufShuffle struct{}

func init() { Register(pufShuffle{}) }

func (pufShuffle) Name() string { return "pufshuffle" }

func (pufShuffle) Describe() string {
	return "PUF-bound keyed permutation of each weight tensor (ACM-shuffle style)"
}

// InstrumentTraining is a no-op: training is plaintext, protection is the
// post-training shuffle.
func (pufShuffle) InstrumentTraining(m *core.Model, dev *keys.Device, sched *schedule.Schedule) error {
	if dev == nil {
		return fmt.Errorf("lockscheme: pufshuffle training requires a key device")
	}
	return nil
}

// Publish shuffles every parameter tensor in place under the device-derived
// permutation: published[j] = plain[perm[j]].
func (p pufShuffle) Publish(m *core.Model, dev *keys.Device, sched *schedule.Schedule) error {
	if dev == nil {
		return fmt.Errorf("lockscheme: pufshuffle publish requires a key device")
	}
	p.apply(m, dev, false)
	scrubLocks(m)
	m.Scheme = p.Name()
	return nil
}

// Unlock inverts the shuffle with the device's permutation; a nil device
// leaves the published order untouched (the thief's view), and a wrong
// device applies the inverse of an unrelated permutation — still shuffled.
func (p pufShuffle) Unlock(m *core.Model, dev *keys.Device, sched *schedule.Schedule) error {
	if dev == nil {
		return nil
	}
	p.apply(m, dev, true)
	return nil
}

// apply permutes every parameter tensor (forward or inverse) under the
// device's per-parameter permutation. Runs only at publish/unlock time, so
// the per-tensor scratch allocation is off the inference path.
func (pufShuffle) apply(m *core.Model, dev *keys.Device, inverse bool) {
	var scratch []float64
	for _, p := range m.Net.Params() {
		data := p.Value.Data
		n := len(data)
		if n < 2 {
			continue
		}
		perm := dev.Permutation("pufshuffle/"+p.Name, n)
		if cap(scratch) < n {
			scratch = make([]float64, n)
		}
		tmp := scratch[:n]
		copy(tmp, data)
		if inverse {
			for j, src := range perm {
				data[src] = tmp[j]
			}
		} else {
			for j, src := range perm {
				data[j] = tmp[src]
			}
		}
	}
}

// Lowering shares the weight-space compile-time unlock: the datapath is
// untouched, the device unshuffles into a private clone before the plan is
// compiled.
func (p pufShuffle) Lowering(dev *keys.Device, sched *schedule.Schedule) Lowering {
	return weightSpaceLowering{scheme: p, dev: dev, sched: sched}
}
