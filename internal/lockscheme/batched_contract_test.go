// External test package: the batched contract clauses are checked against
// the real accelerator, and internal/tpu imports internal/lockscheme — an
// in-package test would be an import cycle. Living outside the package is
// also the point: the suite runs against the same public surface any engine
// implementor would use.
package lockscheme_test

import (
	"testing"

	"hpnn/internal/core"
	"hpnn/internal/keys"
	"hpnn/internal/lockscheme"
	"hpnn/internal/schedule"
	"hpnn/internal/tensor"
	"hpnn/internal/tpu"
)

// tpuBackend binds the contract suite's InferenceBackend to the
// accelerator's two tiers: Predict is the functional per-sample golden
// path, PredictBatch is the batched int8 engine. A fresh accelerator per
// call keeps the binding stateless, so every probe also judges a fresh
// plan compile.
type tpuBackend struct{}

func (tpuBackend) Predict(s lockscheme.Scheme, m *core.Model, dev *keys.Device, sched *schedule.Schedule, x *tensor.Tensor) ([]int, error) {
	acc, err := tpu.NewAcceleratorFor(s, tpu.DefaultConfig(), dev, sched)
	if err != nil {
		return nil, err
	}
	return acc.Predict(m, x)
}

func (tpuBackend) PredictBatch(s lockscheme.Scheme, m *core.Model, dev *keys.Device, sched *schedule.Schedule, x *tensor.Tensor) ([]int, error) {
	acc, err := tpu.NewAcceleratorFor(s, tpu.DefaultConfig(), dev, sched)
	if err != nil {
		return nil, err
	}
	return acc.PredictBatch(m, x)
}

// TestSchemeContractBatched runs the batched-inference contract clauses for
// every registered scheme against the tpu accelerator. The name shares the
// TestSchemeContract prefix so scripts/check.sh's quick contract gate picks
// it up without a separate entry.
func TestSchemeContractBatched(t *testing.T) {
	cfg := lockscheme.FullContract()
	if testing.Short() {
		cfg = lockscheme.QuickContract()
	}
	for _, name := range lockscheme.Names() {
		s, err := lockscheme.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			rep, violations := lockscheme.RunBatchedContract(s, cfg, tpuBackend{})
			for _, v := range violations {
				t.Error(v)
			}
			t.Logf("owner %.3f, batched owner %.3f, batched no-key %.3f",
				rep.OwnerAcc, rep.UnlockedAcc, rep.NoKeyAcc)
		})
	}
}
