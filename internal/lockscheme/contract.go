package lockscheme

import (
	"bytes"
	"fmt"
	"math"

	"hpnn/internal/core"
	"hpnn/internal/dataset"
	"hpnn/internal/keys"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
	"hpnn/internal/tensor"
)

// This file is the shared scheme-contract suite: the behavioral obligations
// every registered backend must meet, checked against a freshly trained
// victim. The clauses are the security claims the rest of the repo builds
// on:
//
//  1. roundtrip  — Publish followed by Unlock on the owner's device restores
//     the owner's model bitwise (weights and predictions).
//  2. collapse   — the commodity view (Unlock with no device) loses at
//     least MinCollapse accuracy versus the owner.
//  3. far keys   — a key at maximal probed Hamming distance collapses too;
//     the full distance curve is reported for the cross-scheme bench.
//  4. no leakage — the published artifact contains no raw key bytes and no
//     engaged lock state; key material exists only inside keys.Device.
//  5. revocation — a revoked device unlocks to a collapsed model, never to
//     the owner's accuracy.
//
// The suite runs from `go test ./internal/lockscheme/` (all backends) and in
// quick form from scripts/check.sh.

// ContractConfig sizes the contract suite's victim and probes.
type ContractConfig struct {
	// Victim scale: a fashion-MLP victim of TrainN/TestN samples at
	// ImgSize² pixels, trained for Epochs.
	TrainN, TestN, ImgSize, Epochs int
	// Distances are the probed wrong-key Hamming distances; WrongKeys is
	// the number of sampled keys averaged per distance.
	Distances []int
	WrongKeys int
	// MinOwnerAcc gates the fixture (a victim that failed to train proves
	// nothing); MinCollapse is the accuracy drop demanded from the no-key,
	// far-key and revoked views.
	MinOwnerAcc, MinCollapse float64
	// Seed derives every random stream of the suite.
	Seed uint64
}

// QuickContract is the scripts/check.sh profile: a small victim, two probed
// distances, single-key sampling. Runs in seconds per scheme.
func QuickContract() ContractConfig {
	return ContractConfig{
		TrainN: 300, TestN: 150, ImgSize: 8, Epochs: 6,
		Distances:   []int{1, keys.KeyBits / 2},
		WrongKeys:   1,
		MinOwnerAcc: 0.55, MinCollapse: 0.15,
		Seed: 977,
	}
}

// FullContract is the go-test profile: a larger victim and a denser
// Hamming-sensitivity curve.
func FullContract() ContractConfig {
	return ContractConfig{
		TrainN: 500, TestN: 200, ImgSize: 8, Epochs: 8,
		Distances:   []int{1, 4, 16, 64, keys.KeyBits / 2},
		WrongKeys:   2,
		MinOwnerAcc: 0.6, MinCollapse: 0.2,
		Seed: 977,
	}
}

// ContractReport carries the measured numbers behind a contract run — the
// cross-scheme bench renders these side by side.
type ContractReport struct {
	Scheme      string
	OwnerAcc    float64
	UnlockedAcc float64 // published + Unlock(owner device)
	NoKeyAcc    float64 // published + Unlock(nil): the thief's view
	RevokedAcc  float64 // published + Unlock(revoked device)
	Distances   []int
	WrongKeyAcc []float64 // mean accuracy at each probed Hamming distance
}

// contractVictim is the shared fixture behind the contract suites: a
// trained owner model, its published clone, and the key infrastructure that
// produced them. Both RunContract and RunBatchedContract start from the
// same lifecycle so they judge the same artifact.
type contractVictim struct {
	ds       *dataset.Dataset
	owner    *core.Model // trained, pre-publish: the roundtrip reference
	pub      *core.Model // published clone
	key      keys.Key
	sched    *schedule.Schedule
	auth     *keys.Authority
	dev      *keys.Device
	ownerAcc float64
}

// trainContractVictim runs the owner lifecycle once: dataset, MLP victim,
// key issuance, scheme instrumentation, training (gated on MinOwnerAcc — a
// victim that failed to train proves nothing), and Publish on a clone.
func trainContractVictim(s Scheme, cfg ContractConfig) (*contractVictim, error) {
	ds, err := dataset.Generate(dataset.Config{
		Name: "fashion", TrainN: cfg.TrainN, TestN: cfg.TestN,
		H: cfg.ImgSize, W: cfg.ImgSize, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	m, err := core.NewModel(core.Config{
		Arch: core.MLP, InC: 1, InH: cfg.ImgSize, InW: cfg.ImgSize, Seed: cfg.Seed + 2,
	})
	if err != nil {
		return nil, err
	}
	v := &contractVictim{
		ds:    ds,
		owner: m,
		key:   keys.Generate(rng.New(cfg.Seed + 3)),
		sched: schedule.New(keys.KeyBits, cfg.Seed+4),
	}
	v.auth = keys.NewAuthority(v.key)
	v.dev, err = v.auth.Issue("contract-owner")
	if err != nil {
		return nil, err
	}

	// Owner lifecycle: instrument, train, measure the reference accuracy.
	if err := s.InstrumentTraining(m, v.dev, v.sched); err != nil {
		return nil, err
	}
	core.Train(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, core.TrainConfig{
		Epochs: cfg.Epochs, BatchSize: 32, LR: 0.05, Momentum: 0.9, Seed: cfg.Seed + 5,
	})
	v.ownerAcc = m.Accuracy(ds.TestX, ds.TestY, 64)
	if v.ownerAcc < cfg.MinOwnerAcc {
		return nil, fmt.Errorf("%s: victim failed to train (owner accuracy %.3f < %.3f)",
			s.Name(), v.ownerAcc, cfg.MinOwnerAcc)
	}

	// Publish on a clone; the owner's model stays the roundtrip reference.
	v.pub, err = m.Clone()
	if err != nil {
		return nil, err
	}
	if err := s.Publish(v.pub, v.dev, v.sched); err != nil {
		return nil, err
	}
	return v, nil
}

// RunContract trains a victim under the scheme's lifecycle and checks every
// contract clause, returning the measured report and the violations (empty
// means the scheme honors the contract).
func RunContract(s Scheme, cfg ContractConfig) (ContractReport, []error) {
	rep := ContractReport{Scheme: s.Name(), Distances: cfg.Distances}
	var violations []error
	fail := func(format string, args ...any) {
		violations = append(violations, fmt.Errorf("%s: "+format, append([]any{s.Name()}, args...)...))
	}

	v, err := trainContractVictim(s, cfg)
	if err != nil {
		return rep, append(violations, err)
	}
	ds, pub, key, sched, auth, dev := v.ds, v.pub, v.key, v.sched, v.auth, v.dev
	rep.OwnerAcc = v.ownerAcc
	ownerBits := paramBits(v.owner)
	ownerPreds := v.owner.Predict(ds.TestX, 64)

	if Canonical(pub.Scheme) != s.Name() {
		fail("Publish stamped scheme %q, want %q", pub.Scheme, s.Name())
	}

	// Clause 4 — no key material in the published artifact: the raw key must
	// not appear in the parameter image, and no lock layer may stay engaged
	// or keep non-identity factors (the wire format never carries them).
	if bytes.Contains(paramImage(pub), key.Bytes()) {
		fail("published parameters contain the raw device key")
	}
	for _, l := range pub.Locks() {
		if l.Engaged {
			fail("published artifact leaves lock %s engaged", l.ID)
		}
		for _, f := range l.Factors {
			if f != 1 {
				fail("published artifact leaks key bits through lock %s factors", l.ID)
				break
			}
		}
	}

	unlock := func(d *keys.Device) (*core.Model, error) {
		c, err := pub.Clone()
		if err != nil {
			return nil, err
		}
		if err := s.Unlock(c, d, sched); err != nil {
			return nil, err
		}
		return c, nil
	}

	// Clause 1 — roundtrip: unlocking on the owner's device restores the
	// trained weights bit-for-bit and reproduces the owner's predictions.
	got, err := unlock(dev)
	if err != nil {
		return rep, append(violations, err)
	}
	rep.UnlockedAcc = got.Accuracy(ds.TestX, ds.TestY, 64)
	if diff := bitsDiffer(ownerBits, paramBits(got)); diff != "" {
		fail("publish/unlock roundtrip is not bitwise: %s", diff)
	}
	for i, p := range got.Predict(ds.TestX, 64) {
		if p != ownerPreds[i] {
			fail("publish/unlock roundtrip changes prediction for test sample %d", i)
			break
		}
	}

	// Clause 2 — commodity collapse: the no-key view must be far below the
	// owner.
	noKey, err := unlock(nil)
	if err != nil {
		return rep, append(violations, err)
	}
	rep.NoKeyAcc = noKey.Accuracy(ds.TestX, ds.TestY, 64)
	if rep.NoKeyAcc > rep.OwnerAcc-cfg.MinCollapse {
		fail("no-key accuracy %.3f too close to owner %.3f (want a drop of at least %.2f)",
			rep.NoKeyAcc, rep.OwnerAcc, cfg.MinCollapse)
	}

	// Clause 3 — wrong-key sensitivity: measure the Hamming curve; the
	// farthest probed key must collapse.
	r := rng.New(cfg.Seed + 6)
	for _, d := range cfg.Distances {
		sum := 0.0
		for k := 0; k < cfg.WrongKeys; k++ {
			wrong, err := unlock(keys.NewDevice("contract-wrong", key.FlipRandomBits(r, d)))
			if err != nil {
				return rep, append(violations, err)
			}
			sum += wrong.Accuracy(ds.TestX, ds.TestY, 64)
		}
		rep.WrongKeyAcc = append(rep.WrongKeyAcc, sum/float64(cfg.WrongKeys))
	}
	if far := rep.WrongKeyAcc[len(rep.WrongKeyAcc)-1]; far > rep.OwnerAcc-cfg.MinCollapse {
		fail("key at Hamming distance %d still reaches %.3f (owner %.3f)",
			cfg.Distances[len(cfg.Distances)-1], far, rep.OwnerAcc)
	}

	// Clause 5 — revocation: a pulled license must not unlock the model.
	if err := auth.Revoke(dev.Serial()); err != nil {
		return rep, append(violations, err)
	}
	revoked, err := unlock(dev)
	if err != nil {
		return rep, append(violations, err)
	}
	rep.RevokedAcc = revoked.Accuracy(ds.TestX, ds.TestY, 64)
	if rep.RevokedAcc > rep.OwnerAcc-cfg.MinCollapse {
		fail("revoked device still unlocks to %.3f (owner %.3f)", rep.RevokedAcc, rep.OwnerAcc)
	}
	return rep, violations
}

// InferenceBackend abstracts an execution engine over published models so
// the contract suite can pin batched semantics without importing the tpu
// package (which imports this one). The external test in this package binds
// it to the accelerator's per-sample golden path and batched int8 tier; any
// future engine that wants registry coverage implements the same pair.
type InferenceBackend interface {
	// Predict runs x (one sample per leading index) through the engine's
	// reference per-sample path on hardware holding dev (nil = commodity).
	Predict(s Scheme, m *core.Model, dev *keys.Device, sched *schedule.Schedule, x *tensor.Tensor) ([]int, error)
	// PredictBatch runs the same samples through the engine's batched path
	// in a single call.
	PredictBatch(s Scheme, m *core.Model, dev *keys.Device, sched *schedule.Schedule, x *tensor.Tensor) ([]int, error)
}

// batchProbeSizes picks the batch sizes the batched clauses probe: a lone
// sample, a small partial batch, and the full test set.
func batchProbeSizes(n int) []int {
	sizes := []int{}
	for _, p := range []int{1, 3} {
		if p < n {
			sizes = append(sizes, p)
		}
	}
	return append(sizes, n)
}

// RunBatchedContract extends the scheme contract to batched inference. A
// batch of N published-model samples must produce exactly the N predictions
// of the engine's per-sample path — on the owner's device, where a batched
// tier folds the key into its kernels and the fold must be invisible in the
// answers, and on commodity hardware, where batching must not rescue the
// no-key collapse the float contract already demands. Runs per registered
// scheme from the external contract test, so every backend in the registry
// is pinned automatically.
func RunBatchedContract(s Scheme, cfg ContractConfig, be InferenceBackend) (ContractReport, []error) {
	rep := ContractReport{Scheme: s.Name()}
	var violations []error
	fail := func(format string, args ...any) {
		violations = append(violations, fmt.Errorf("%s: "+format, append([]any{s.Name()}, args...)...))
	}

	v, err := trainContractVictim(s, cfg)
	if err != nil {
		return rep, append(violations, err)
	}
	rep.OwnerAcc = v.ownerAcc
	accuracy := func(preds []int) float64 {
		correct := 0
		for i, p := range preds {
			if p == v.ds.TestY[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(preds))
	}
	total := v.ds.TestX.Shape[0]
	feat := len(v.ds.TestX.Data) / total
	prefix := func(n int) *tensor.Tensor {
		var view tensor.Tensor
		shape := append([]int{n}, v.ds.TestX.Shape[1:]...)
		return tensor.ViewInto(&view, v.ds.TestX.Data[:n*feat], shape...)
	}

	// Clause B1 — batch ≡ N single calls on the owner's device, for a lone
	// sample, a partial batch, and the full test set. The quantized engine
	// is deterministic, so any divergence is a kernel bug, not noise.
	single, err := be.Predict(s, v.pub, v.dev, v.sched, v.ds.TestX)
	if err != nil {
		return rep, append(violations, err)
	}
	var full []int
	for _, n := range batchProbeSizes(total) {
		batched, err := be.PredictBatch(s, v.pub, v.dev, v.sched, prefix(n))
		if err != nil {
			return rep, append(violations, err)
		}
		if len(batched) != n {
			fail("batch of %d returned %d predictions", n, len(batched))
			continue
		}
		for i := 0; i < n; i++ {
			if batched[i] != single[i] {
				fail("batch of %d diverges from the per-sample path at sample %d (class %d vs %d)",
					n, i, batched[i], single[i])
				break
			}
		}
		if n == total {
			full = batched
		}
	}
	if full == nil {
		return rep, violations
	}

	// Clause B2 — the batched engine serves the owner: its accuracy tracks
	// the float victim up to quantization.
	rep.UnlockedAcc = accuracy(full)
	if rep.UnlockedAcc < rep.OwnerAcc-0.1 {
		fail("batched owner accuracy %.3f too far below float owner %.3f",
			rep.UnlockedAcc, rep.OwnerAcc)
	}

	// Clause B3 — batching preserves the no-key collapse: the commodity
	// batch equals the commodity single calls elementwise and stays far
	// below the owner.
	noKeySingle, err := be.Predict(s, v.pub, nil, v.sched, v.ds.TestX)
	if err != nil {
		return rep, append(violations, err)
	}
	noKeyBatch, err := be.PredictBatch(s, v.pub, nil, v.sched, v.ds.TestX)
	if err != nil {
		return rep, append(violations, err)
	}
	for i := range noKeyBatch {
		if noKeyBatch[i] != noKeySingle[i] {
			fail("no-key batch diverges from no-key single calls at sample %d (class %d vs %d)",
				i, noKeyBatch[i], noKeySingle[i])
			break
		}
	}
	rep.NoKeyAcc = accuracy(noKeyBatch)
	if rep.NoKeyAcc > rep.OwnerAcc-cfg.MinCollapse {
		fail("batching rescued the no-key view: %.3f vs owner %.3f (want a drop of at least %.2f)",
			rep.NoKeyAcc, rep.OwnerAcc, cfg.MinCollapse)
	}
	return rep, violations
}

// paramBits snapshots every trainable parameter as raw float bits.
func paramBits(m *core.Model) []uint64 {
	var out []uint64
	for _, p := range m.Net.Params() {
		for _, v := range p.Value.Data {
			out = append(out, math.Float64bits(v))
		}
	}
	return out
}

// bitsDiffer reports the first mismatch between two parameter snapshots
// ("" when identical).
func bitsDiffer(a, b []uint64) string {
	if len(a) != len(b) {
		return fmt.Sprintf("parameter count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("parameter word %d: %016x vs %016x", i, a[i], b[i])
		}
	}
	return ""
}

// paramImage serializes the parameters (and lock factors) of a model into
// the byte image a published artifact would expose, for the leakage scan.
func paramImage(m *core.Model) []byte {
	var buf bytes.Buffer
	var w [8]byte
	putF64 := func(v float64) {
		bits := math.Float64bits(v)
		for j := 0; j < 8; j++ {
			w[j] = byte(bits >> (8 * j))
		}
		buf.Write(w[:])
	}
	for _, p := range m.Net.Params() {
		for _, v := range p.Value.Data {
			putF64(v)
		}
	}
	for _, l := range m.Locks() {
		for _, f := range l.Factors {
			putF64(f)
		}
	}
	return buf.Bytes()
}
