package lockscheme

import (
	"bytes"
	"fmt"
	"math"

	"hpnn/internal/core"
	"hpnn/internal/dataset"
	"hpnn/internal/keys"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
)

// This file is the shared scheme-contract suite: the behavioral obligations
// every registered backend must meet, checked against a freshly trained
// victim. The clauses are the security claims the rest of the repo builds
// on:
//
//  1. roundtrip  — Publish followed by Unlock on the owner's device restores
//     the owner's model bitwise (weights and predictions).
//  2. collapse   — the commodity view (Unlock with no device) loses at
//     least MinCollapse accuracy versus the owner.
//  3. far keys   — a key at maximal probed Hamming distance collapses too;
//     the full distance curve is reported for the cross-scheme bench.
//  4. no leakage — the published artifact contains no raw key bytes and no
//     engaged lock state; key material exists only inside keys.Device.
//  5. revocation — a revoked device unlocks to a collapsed model, never to
//     the owner's accuracy.
//
// The suite runs from `go test ./internal/lockscheme/` (all backends) and in
// quick form from scripts/check.sh.

// ContractConfig sizes the contract suite's victim and probes.
type ContractConfig struct {
	// Victim scale: a fashion-MLP victim of TrainN/TestN samples at
	// ImgSize² pixels, trained for Epochs.
	TrainN, TestN, ImgSize, Epochs int
	// Distances are the probed wrong-key Hamming distances; WrongKeys is
	// the number of sampled keys averaged per distance.
	Distances []int
	WrongKeys int
	// MinOwnerAcc gates the fixture (a victim that failed to train proves
	// nothing); MinCollapse is the accuracy drop demanded from the no-key,
	// far-key and revoked views.
	MinOwnerAcc, MinCollapse float64
	// Seed derives every random stream of the suite.
	Seed uint64
}

// QuickContract is the scripts/check.sh profile: a small victim, two probed
// distances, single-key sampling. Runs in seconds per scheme.
func QuickContract() ContractConfig {
	return ContractConfig{
		TrainN: 300, TestN: 150, ImgSize: 8, Epochs: 6,
		Distances:   []int{1, keys.KeyBits / 2},
		WrongKeys:   1,
		MinOwnerAcc: 0.55, MinCollapse: 0.15,
		Seed: 977,
	}
}

// FullContract is the go-test profile: a larger victim and a denser
// Hamming-sensitivity curve.
func FullContract() ContractConfig {
	return ContractConfig{
		TrainN: 500, TestN: 200, ImgSize: 8, Epochs: 8,
		Distances:   []int{1, 4, 16, 64, keys.KeyBits / 2},
		WrongKeys:   2,
		MinOwnerAcc: 0.6, MinCollapse: 0.2,
		Seed: 977,
	}
}

// ContractReport carries the measured numbers behind a contract run — the
// cross-scheme bench renders these side by side.
type ContractReport struct {
	Scheme      string
	OwnerAcc    float64
	UnlockedAcc float64 // published + Unlock(owner device)
	NoKeyAcc    float64 // published + Unlock(nil): the thief's view
	RevokedAcc  float64 // published + Unlock(revoked device)
	Distances   []int
	WrongKeyAcc []float64 // mean accuracy at each probed Hamming distance
}

// RunContract trains a victim under the scheme's lifecycle and checks every
// contract clause, returning the measured report and the violations (empty
// means the scheme honors the contract).
func RunContract(s Scheme, cfg ContractConfig) (ContractReport, []error) {
	rep := ContractReport{Scheme: s.Name(), Distances: cfg.Distances}
	var violations []error
	fail := func(format string, args ...any) {
		violations = append(violations, fmt.Errorf("%s: "+format, append([]any{s.Name()}, args...)...))
	}

	ds, err := dataset.Generate(dataset.Config{
		Name: "fashion", TrainN: cfg.TrainN, TestN: cfg.TestN,
		H: cfg.ImgSize, W: cfg.ImgSize, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return rep, append(violations, err)
	}
	m, err := core.NewModel(core.Config{
		Arch: core.MLP, InC: 1, InH: cfg.ImgSize, InW: cfg.ImgSize, Seed: cfg.Seed + 2,
	})
	if err != nil {
		return rep, append(violations, err)
	}
	key := keys.Generate(rng.New(cfg.Seed + 3))
	sched := schedule.New(keys.KeyBits, cfg.Seed+4)
	auth := keys.NewAuthority(key)
	dev, err := auth.Issue("contract-owner")
	if err != nil {
		return rep, append(violations, err)
	}

	// Owner lifecycle: instrument, train, measure the reference accuracy.
	if err := s.InstrumentTraining(m, dev, sched); err != nil {
		return rep, append(violations, err)
	}
	core.Train(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, core.TrainConfig{
		Epochs: cfg.Epochs, BatchSize: 32, LR: 0.05, Momentum: 0.9, Seed: cfg.Seed + 5,
	})
	rep.OwnerAcc = m.Accuracy(ds.TestX, ds.TestY, 64)
	if rep.OwnerAcc < cfg.MinOwnerAcc {
		fail("victim failed to train (owner accuracy %.3f < %.3f)", rep.OwnerAcc, cfg.MinOwnerAcc)
		return rep, violations
	}
	ownerBits := paramBits(m)
	ownerPreds := m.Predict(ds.TestX, 64)

	// Publish on a clone; the owner's model is the roundtrip reference.
	pub, err := m.Clone()
	if err != nil {
		return rep, append(violations, err)
	}
	if err := s.Publish(pub, dev, sched); err != nil {
		return rep, append(violations, err)
	}
	if Canonical(pub.Scheme) != s.Name() {
		fail("Publish stamped scheme %q, want %q", pub.Scheme, s.Name())
	}

	// Clause 4 — no key material in the published artifact: the raw key must
	// not appear in the parameter image, and no lock layer may stay engaged
	// or keep non-identity factors (the wire format never carries them).
	if bytes.Contains(paramImage(pub), key.Bytes()) {
		fail("published parameters contain the raw device key")
	}
	for _, l := range pub.Locks() {
		if l.Engaged {
			fail("published artifact leaves lock %s engaged", l.ID)
		}
		for _, f := range l.Factors {
			if f != 1 {
				fail("published artifact leaks key bits through lock %s factors", l.ID)
				break
			}
		}
	}

	unlock := func(d *keys.Device) (*core.Model, error) {
		c, err := pub.Clone()
		if err != nil {
			return nil, err
		}
		if err := s.Unlock(c, d, sched); err != nil {
			return nil, err
		}
		return c, nil
	}

	// Clause 1 — roundtrip: unlocking on the owner's device restores the
	// trained weights bit-for-bit and reproduces the owner's predictions.
	got, err := unlock(dev)
	if err != nil {
		return rep, append(violations, err)
	}
	rep.UnlockedAcc = got.Accuracy(ds.TestX, ds.TestY, 64)
	if diff := bitsDiffer(ownerBits, paramBits(got)); diff != "" {
		fail("publish/unlock roundtrip is not bitwise: %s", diff)
	}
	for i, p := range got.Predict(ds.TestX, 64) {
		if p != ownerPreds[i] {
			fail("publish/unlock roundtrip changes prediction for test sample %d", i)
			break
		}
	}

	// Clause 2 — commodity collapse: the no-key view must be far below the
	// owner.
	noKey, err := unlock(nil)
	if err != nil {
		return rep, append(violations, err)
	}
	rep.NoKeyAcc = noKey.Accuracy(ds.TestX, ds.TestY, 64)
	if rep.NoKeyAcc > rep.OwnerAcc-cfg.MinCollapse {
		fail("no-key accuracy %.3f too close to owner %.3f (want a drop of at least %.2f)",
			rep.NoKeyAcc, rep.OwnerAcc, cfg.MinCollapse)
	}

	// Clause 3 — wrong-key sensitivity: measure the Hamming curve; the
	// farthest probed key must collapse.
	r := rng.New(cfg.Seed + 6)
	for _, d := range cfg.Distances {
		sum := 0.0
		for k := 0; k < cfg.WrongKeys; k++ {
			wrong, err := unlock(keys.NewDevice("contract-wrong", key.FlipRandomBits(r, d)))
			if err != nil {
				return rep, append(violations, err)
			}
			sum += wrong.Accuracy(ds.TestX, ds.TestY, 64)
		}
		rep.WrongKeyAcc = append(rep.WrongKeyAcc, sum/float64(cfg.WrongKeys))
	}
	if far := rep.WrongKeyAcc[len(rep.WrongKeyAcc)-1]; far > rep.OwnerAcc-cfg.MinCollapse {
		fail("key at Hamming distance %d still reaches %.3f (owner %.3f)",
			cfg.Distances[len(cfg.Distances)-1], far, rep.OwnerAcc)
	}

	// Clause 5 — revocation: a pulled license must not unlock the model.
	if err := auth.Revoke(dev.Serial()); err != nil {
		return rep, append(violations, err)
	}
	revoked, err := unlock(dev)
	if err != nil {
		return rep, append(violations, err)
	}
	rep.RevokedAcc = revoked.Accuracy(ds.TestX, ds.TestY, 64)
	if rep.RevokedAcc > rep.OwnerAcc-cfg.MinCollapse {
		fail("revoked device still unlocks to %.3f (owner %.3f)", rep.RevokedAcc, rep.OwnerAcc)
	}
	return rep, violations
}

// paramBits snapshots every trainable parameter as raw float bits.
func paramBits(m *core.Model) []uint64 {
	var out []uint64
	for _, p := range m.Net.Params() {
		for _, v := range p.Value.Data {
			out = append(out, math.Float64bits(v))
		}
	}
	return out
}

// bitsDiffer reports the first mismatch between two parameter snapshots
// ("" when identical).
func bitsDiffer(a, b []uint64) string {
	if len(a) != len(b) {
		return fmt.Sprintf("parameter count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("parameter word %d: %016x vs %016x", i, a[i], b[i])
		}
	}
	return ""
}

// paramImage serializes the parameters (and lock factors) of a model into
// the byte image a published artifact would expose, for the leakage scan.
func paramImage(m *core.Model) []byte {
	var buf bytes.Buffer
	var w [8]byte
	putF64 := func(v float64) {
		bits := math.Float64bits(v)
		for j := 0; j < 8; j++ {
			w[j] = byte(bits >> (8 * j))
		}
		buf.Write(w[:])
	}
	for _, p := range m.Net.Params() {
		for _, v := range p.Value.Data {
			putF64(v)
		}
	}
	for _, l := range m.Locks() {
		for _, f := range l.Factors {
			putF64(f)
		}
	}
	return buf.Bytes()
}
