package lockscheme

import (
	"fmt"

	"hpnn/internal/core"
	"hpnn/internal/keys"
	"hpnn/internal/schedule"
)

// hpnnXOR is the source paper's scheme: every neuron of a nonlinear layer
// is locked with one key bit through the private neuron→accumulator-column
// schedule, and the lock is evaluated inside the MAC datapath (the XOR gate
// on the accumulator sign). The weights themselves are published unchanged;
// the protection comes from training against the engaged lock, which makes
// the weights useless without it.
type hpnnXOR struct{}

func init() { Register(hpnnXOR{}) }

func (hpnnXOR) Name() string { return DefaultName }

func (hpnnXOR) Describe() string {
	return "per-neuron XOR sign lock in the MAC datapath (the paper's HPNN)"
}

// InstrumentTraining engages every lock with the device's key bits, exactly
// the owner's one-time pre-processing of §III-D3.
func (hpnnXOR) InstrumentTraining(m *core.Model, dev *keys.Device, sched *schedule.Schedule) error {
	if dev == nil {
		return fmt.Errorf("lockscheme: %s training requires a key device", DefaultName)
	}
	m.ApplyKey(dev, sched)
	return nil
}

// Publish is weight-space identity: the published parameters are the
// trained parameters. The lock layers are scrubbed — factors reset to +1
// and disengaged — because the serialized model format never carries lock
// state, so the in-memory published artifact must not either.
func (hpnnXOR) Publish(m *core.Model, dev *keys.Device, sched *schedule.Schedule) error {
	if dev == nil {
		return fmt.Errorf("lockscheme: %s publish requires a key device", DefaultName)
	}
	scrubLocks(m)
	m.Scheme = DefaultName
	return nil
}

// Unlock re-engages the locks from the device's key; with no device the
// locks disengage — the thief's model running on the plain baseline
// architecture.
func (hpnnXOR) Unlock(m *core.Model, dev *keys.Device, sched *schedule.Schedule) error {
	if dev == nil {
		m.DisengageLocks()
		return nil
	}
	m.ApplyKey(dev, sched)
	return nil
}

// Lowering drives the MMU's key-conditioned accumulators through the
// schedule — the original hard-wired path, now behind the interface. The
// golden pin tests hold this bitwise-equal to the pre-refactor compiler.
func (hpnnXOR) Lowering(dev *keys.Device, sched *schedule.Schedule) Lowering {
	return hpnnLowering{sched: sched}
}

type hpnnLowering struct {
	sched *schedule.Schedule
}

func (l hpnnLowering) MACColumns(lockID string, n int) []int {
	return l.sched.Assign(lockID, n)
}

func (hpnnLowering) UnlockModel(m *core.Model) (*core.Model, error) {
	return nil, nil // execute the published model as-is; the lock lives in the datapath
}
