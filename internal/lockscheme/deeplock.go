package lockscheme

import (
	"fmt"
	"math"

	"hpnn/internal/core"
	"hpnn/internal/keys"
	"hpnn/internal/schedule"
)

// deepLock is a Deep-Lock-style keyed weight cipher (Alam & Mukhopadhyay:
// every weight of the network encrypted under a key-scheduled block cipher).
// Here the cipher is a device-derived keystream XORed into the sign and
// mantissa bits of each float64 parameter; the exponent is left untouched so
// ciphered weights are always finite and the transform is exactly
// involutive. Sign flips plus full mantissa scrambling collapse accuracy to
// chance while keeping the published artifact a well-formed model file.
//
// Training is plaintext; the entire protection is the post-training cipher,
// so — unlike hpnn-xor — the scheme needs no key-dependent training step and
// no in-datapath hardware support beyond the sealed keystream query.
type deepLock struct{}

func init() { Register(deepLock{}) }

// deepLockMask selects the ciphered bits of each float64: sign + 52-bit
// mantissa. Exponent bits stay, keeping every ciphered value finite.
const deepLockMask = 0x800FFFFFFFFFFFFF

func (deepLock) Name() string { return "deeplock" }

func (deepLock) Describe() string {
	return "keyed per-weight cipher over sign+mantissa bits (Deep-Lock style)"
}

// InstrumentTraining is a no-op: Deep-Lock trains in plaintext.
func (deepLock) InstrumentTraining(m *core.Model, dev *keys.Device, sched *schedule.Schedule) error {
	if dev == nil {
		return fmt.Errorf("lockscheme: deeplock training requires a key device")
	}
	return nil
}

// Publish ciphers every trainable parameter in place under the device's
// keystream and stamps the scheme.
func (d deepLock) Publish(m *core.Model, dev *keys.Device, sched *schedule.Schedule) error {
	if dev == nil {
		return fmt.Errorf("lockscheme: deeplock publish requires a key device")
	}
	d.xorParams(m, dev)
	scrubLocks(m)
	m.Scheme = d.Name()
	return nil
}

// Unlock applies the same involutive keystream: the right device recovers
// the plaintext weights bit-for-bit, a wrong device re-scrambles, and a nil
// device (thief, commodity hardware) leaves the published ciphertext as-is.
func (d deepLock) Unlock(m *core.Model, dev *keys.Device, sched *schedule.Schedule) error {
	if dev == nil {
		return nil
	}
	d.xorParams(m, dev)
	return nil
}

// xorParams XORs the device keystream into sign+mantissa of every
// parameter. The per-parameter domain label binds the stream to the
// parameter's identity, so reordering tensors does not align ciphertext.
func (deepLock) xorParams(m *core.Model, dev *keys.Device) {
	for _, p := range m.Net.Params() {
		data := p.Value.Data
		mask := dev.MaskStream("deeplock/"+p.Name, 8*len(data))
		for i, v := range data {
			var mv uint64
			for j := 0; j < 8; j++ {
				mv |= uint64(mask[8*i+j]) << (8 * j)
			}
			data[i] = math.Float64frombits(math.Float64bits(v) ^ (mv & deepLockMask))
		}
	}
}

// Lowering unlocks the whole model into a device-private clone at plan
// compile time; the datapath itself runs unmodified (MACColumns nil), so no
// accumulator is ever wrongly negated by this scheme.
func (d deepLock) Lowering(dev *keys.Device, sched *schedule.Schedule) Lowering {
	return weightSpaceLowering{scheme: d, dev: dev, sched: sched}
}

// weightSpaceLowering is the shared compile-time lowering for schemes that
// protect the weight space rather than the datapath: clone the published
// model inside the device boundary, run the scheme's Unlock on the clone,
// and hand the compiler the clone. With a nil device the clone stays
// ciphered/shuffled — commodity hardware faithfully executes garbage.
type weightSpaceLowering struct {
	scheme Scheme
	dev    *keys.Device
	sched  *schedule.Schedule
}

func (weightSpaceLowering) MACColumns(lockID string, n int) []int { return nil }

func (l weightSpaceLowering) UnlockModel(m *core.Model) (*core.Model, error) {
	c, err := m.Clone()
	if err != nil {
		return nil, err
	}
	// Published weight-space models carry disarmed (all-+1) lock layers;
	// keep them disengaged on the execution clone so the fused plan ops
	// see the plain baseline topology.
	c.DisengageLocks()
	if err := l.scheme.Unlock(c, l.dev, l.sched); err != nil {
		return nil, err
	}
	return c, nil
}
