// Package lockscheme defines the pluggable locking boundary of the HPNN
// reproduction: what it means to entangle a model with a hardware-held key,
// how that entanglement lowers onto the accelerator, and how key material is
// provisioned — strictly through the sealed keys.Device query API.
//
// The paper's per-neuron XOR lock (hpnn-xor) is one point in a design space
// that the related work maps out: Deep-Lock ciphers every weight under a
// keyed stream, and PUF-bound permutation schemes shuffle weight order under
// a device-derived permutation. Each backend implements Scheme; the tpu plan
// compiler, the serving layer, the serializer and the attack suite are all
// written against the interface, so adding a backend automatically extends
// the CLIs, the contract suite and the cross-scheme attack bench.
//
// A Scheme's lifecycle mirrors the paper's Fig. 1 deployment flow:
//
//	InstrumentTraining  owner-side, pre-training: entangle the model with
//	                    the key so SGD bakes the key into the weights
//	                    (hpnn-xor) — weight-space schemes train plaintext
//	                    and do nothing here.
//	Publish             owner-side, post-training: transform the model into
//	                    its published (distributed) form. Weight-space
//	                    schemes cipher/permute the parameters here.
//	Unlock              consumer-side reference semantics: given a trusted
//	                    device, recover the usable model from the published
//	                    form; given a nil device (commodity hardware /
//	                    thief), produce whatever an attacker gets.
//	Lowering            accelerator-side: how the scheme folds into the tpu
//	                    plan compiler — per-MAC column assignments for the
//	                    in-datapath XOR lock, or a sealed weight-space
//	                    unlock at compile time for cipher/permutation
//	                    schemes.
package lockscheme

import (
	"fmt"
	"sort"

	"hpnn/internal/core"
	"hpnn/internal/keys"
	"hpnn/internal/schedule"
)

// DefaultName is the scheme of the source paper; it is what empty scheme
// identifiers (pre-scheme checkpoints, zero-valued configs) resolve to.
const DefaultName = "hpnn-xor"

// Scheme is one locking mechanism. Implementations must be stateless value
// types: all key material stays inside the keys.Device passed per call, and
// one Scheme instance may serve many models concurrently.
type Scheme interface {
	// Name returns the stable registry identifier (also the serialized
	// scheme ID in model files and checkpoints).
	Name() string

	// Describe returns a one-line human-readable summary for CLI listings.
	Describe() string

	// InstrumentTraining prepares a freshly initialized model for
	// owner-side training under the device's key. dev must be non-nil.
	InstrumentTraining(m *core.Model, dev *keys.Device, sched *schedule.Schedule) error

	// Publish transforms a trained model, in place, into its published
	// form and stamps m.Scheme. dev must be non-nil.
	Publish(m *core.Model, dev *keys.Device, sched *schedule.Schedule) error

	// Unlock recovers usable semantics from a published model, in place.
	// A nil dev models the no-key attacker: the model is left in (or put
	// into) exactly the state commodity hardware would execute.
	Unlock(m *core.Model, dev *keys.Device, sched *schedule.Schedule) error

	// Lowering returns the accelerator-side hooks for running published
	// models of this scheme on a device holding dev (nil = commodity).
	Lowering(dev *keys.Device, sched *schedule.Schedule) Lowering
}

// Lowering is the plan-compile-time contract between a Scheme and the tpu
// plan compiler. Both hooks run once per (accelerator, model) pair at
// compile time, never on the per-sample inference path, so they are free to
// allocate.
type Lowering interface {
	// MACColumns returns the accumulator-column assignment for the n
	// outputs of the MAC stage feeding lock layer lockID, or nil when this
	// scheme applies no in-datapath lock there. Non-nil assignments drive
	// the MMU's key-conditioned accumulators (MatMulLockedInto).
	MACColumns(lockID string, n int) []int

	// UnlockModel maps the published model to the model the compiled plan
	// should execute. Returning (nil, nil) means "execute m as-is" — the
	// in-datapath schemes take that path, keeping the original HPNN
	// pipeline bitwise intact. Weight-space schemes return a private
	// device-side clone with the cipher/permutation removed; the published
	// artifact is never mutated.
	UnlockModel(m *core.Model) (*core.Model, error)
}

// scrubLocks strips lock state from a model being published: the serialized
// format never carries lock factors (they are key material), so the
// in-memory published artifact must not either. Every backend's Publish
// calls this.
func scrubLocks(m *core.Model) {
	for _, l := range m.Locks() {
		for i := range l.Factors {
			l.Factors[i] = 1
		}
		l.Disengage()
	}
}

// registry holds the built-in backends. Registration happens only from
// package init functions; all later access is read-only, so no locking.
var registry = map[string]Scheme{}

// Register adds a backend. It panics on duplicate or empty names — both are
// programmer errors in an init-time-only registry.
func Register(s Scheme) {
	name := s.Name()
	if name == "" {
		panic("lockscheme: empty scheme name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("lockscheme: duplicate scheme %q", name))
	}
	registry[name] = s
}

// Get resolves a scheme identifier. The empty string resolves to the
// default (paper) scheme; unknown names are an error listing what exists.
func Get(name string) (Scheme, error) {
	if name == "" {
		name = DefaultName
	}
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("lockscheme: unknown scheme %q (have %v)", name, Names())
	}
	return s, nil
}

// Default returns the paper's HPNN XOR scheme.
func Default() Scheme {
	s, err := Get(DefaultName)
	if err != nil {
		panic(err)
	}
	return s
}

// Valid reports whether name identifies a registered scheme ("" counts,
// resolving to the default).
//
//hpnn:noalloc
func Valid(name string) bool {
	if name == "" {
		return true
	}
	_, ok := registry[name]
	return ok
}

// Names returns the registered scheme identifiers, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	//hpnn:allow(determinism) iteration order erased by the sort below
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Canonical normalizes a serialized scheme identifier: the empty string
// (format v1 artifacts) becomes the default name.
//
//hpnn:noalloc
func Canonical(name string) string {
	if name == "" {
		return DefaultName
	}
	return name
}

// IsDefault reports whether name (possibly empty) identifies the default
// scheme — the serializers use it to keep default-scheme artifacts in the
// original byte format.
//
//hpnn:noalloc
func IsDefault(name string) bool { return Canonical(name) == DefaultName }
