package lockscheme

import "testing"

// TestSchemeContract runs the shared contract suite against every registered
// backend. A new scheme that registers itself is picked up automatically; if
// it cannot honor the five clauses it does not belong in the registry.
func TestSchemeContract(t *testing.T) {
	cfg := FullContract()
	if testing.Short() {
		cfg = QuickContract()
	}
	for _, name := range Names() {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			rep, violations := RunContract(s, cfg)
			for _, v := range violations {
				t.Error(v)
			}
			t.Logf("owner %.3f, unlocked %.3f, no-key %.3f, revoked %.3f, wrong-key %v @ %v",
				rep.OwnerAcc, rep.UnlockedAcc, rep.NoKeyAcc, rep.RevokedAcc, rep.WrongKeyAcc, rep.Distances)
		})
	}
}

// TestRegistryResolution pins the registry semantics the serializers and
// CLIs rely on: empty resolves to the default, unknown names error, and the
// canonical form of a v1 (empty) identifier is the paper's scheme.
func TestRegistryResolution(t *testing.T) {
	if def := Default().Name(); def != DefaultName {
		t.Errorf("Default().Name() = %q, want %q", def, DefaultName)
	}
	s, err := Get("")
	if err != nil || s.Name() != DefaultName {
		t.Errorf(`Get("") = %v, %v; want the default scheme`, s, err)
	}
	if _, err := Get("no-such-scheme"); err == nil {
		t.Error("Get accepted an unknown scheme name")
	}
	if !Valid("") || !Valid(DefaultName) || Valid("no-such-scheme") {
		t.Error("Valid misclassifies scheme identifiers")
	}
	if got := Canonical(""); got != DefaultName {
		t.Errorf(`Canonical("") = %q, want %q`, got, DefaultName)
	}
	if !IsDefault("") || !IsDefault(DefaultName) || IsDefault("deeplock") {
		t.Error("IsDefault misclassifies scheme identifiers")
	}
	names := Names()
	for _, want := range []string{DefaultName, "deeplock", "pufshuffle"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() = %v missing %q", names, want)
		}
	}
}
