// Package stats provides the small statistical summaries the experiment
// harness reports: five-number box-plot summaries (Fig. 3), means and
// standard deviations, and ASCII rendering helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary is a five-number summary plus mean and standard deviation — the
// contents of one box plot in Fig. 3.
type Summary struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean, Std                float64
}

// Summarize computes a Summary of xs. It panics on an empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum, sumSq := 0.0, 0.0
	for _, v := range s {
		sum += v
		sumSq += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   mean,
		Std:    math.Sqrt(variance),
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of sorted data using linear
// interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4f q1=%.4f med=%.4f q3=%.4f max=%.4f mean=%.4f±%.4f",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean, s.Std)
}

// BoxPlot renders a width-character ASCII box plot of the summary over the
// [lo, hi] axis range — the terminal rendition of Fig. 3.
func (s Summary) BoxPlot(lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	if hi <= lo {
		hi = lo + 1
	}
	pos := func(v float64) int {
		p := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	row := []rune(strings.Repeat(" ", width))
	for i := pos(s.Min); i <= pos(s.Max); i++ {
		row[i] = '-'
	}
	for i := pos(s.Q1); i <= pos(s.Q3); i++ {
		row[i] = '='
	}
	row[pos(s.Min)] = '|'
	row[pos(s.Max)] = '|'
	row[pos(s.Median)] = 'M'
	return string(row)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// PctDrop returns the accuracy drop from base to v in percentage points,
// the metric of Table I's "%drop" columns (e.g. 89.93 → 10.05 is a 79.88
// drop). base and v are fractions in [0, 1].
func PctDrop(base, v float64) float64 {
	return 100 * (base - v)
}
