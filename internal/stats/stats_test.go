package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"hpnn/internal/rng"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles wrong: %+v", s)
	}
	if s.Mean != 3 {
		t.Fatalf("mean wrong: %v", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("std wrong: %v", s.Std)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Std != 0 {
		t.Fatalf("singleton summary wrong: %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty Summarize did not panic")
		}
	}()
	Summarize(nil)
}

func TestSummaryOrderingProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := rng.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm()
		}
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestQuantileEdges(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if Quantile(s, 0) != 1 || Quantile(s, 1) != 4 {
		t.Fatal("extreme quantiles wrong")
	}
	if Quantile(s, 0.5) != 2.5 {
		t.Fatalf("median of even-sized data wrong: %v", Quantile(s, 0.5))
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = r.Norm()
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxPlotRendering(t *testing.T) {
	s := Summarize([]float64{0.1, 0.2, 0.3, 0.4, 0.5})
	plot := s.BoxPlot(0, 1, 40)
	if len([]rune(plot)) != 40 {
		t.Fatalf("plot width %d, want 40", len(plot))
	}
	if !strings.Contains(plot, "M") || !strings.Contains(plot, "=") || !strings.Contains(plot, "|") {
		t.Fatalf("plot missing glyphs: %q", plot)
	}
}

func TestBoxPlotDegenerateRange(t *testing.T) {
	s := Summarize([]float64{5})
	// hi <= lo must not panic.
	_ = s.BoxPlot(5, 5, 20)
	_ = s.BoxPlot(0, 1, 2) // tiny width clamped
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if Mean([]float64{1, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestPctDrop(t *testing.T) {
	// Table I: 89.93 % original, 10.05 % locked → 79.88-point drop.
	if math.Abs(PctDrop(0.8993, 0.1005)-79.88) > 1e-9 {
		t.Fatalf("PctDrop(89.93, 10.05) = %v, want 79.88", PctDrop(0.8993, 0.1005))
	}
	if PctDrop(0.9, 0.9) != 0 {
		t.Fatal("no drop expected")
	}
}

func TestSummaryString(t *testing.T) {
	if Summarize([]float64{1, 2}).String() == "" {
		t.Fatal("empty String")
	}
}
