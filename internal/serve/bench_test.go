package serve

import (
	"context"
	"runtime"
	"testing"
	"time"

	"hpnn/internal/core"
	"hpnn/internal/lockscheme"
	"hpnn/internal/tpu"
)

// benchServer builds a warmed server sized for the machine: one shard per
// available core (capped at 8), MaxBatch 8 — the configuration the ISSUE's
// throughput criterion is stated against.
func benchServer(b *testing.B, f *testFixture) *Server {
	b.Helper()
	return f.server(b, Config{
		Shards:     runtime.GOMAXPROCS(0),
		MaxBatch:   8,
		MaxWait:    200 * time.Microsecond,
		QueueDepth: 1024,
	})
}

// BenchmarkServeThroughput submits batch-8 requests through PredictBatch:
// a full batch flushes the moment its last sample arrives, so the batcher
// window never idles and the shards stay busy. Compare samples/sec against
// BenchmarkServeSerializedLoop — the acceptance bar is ≥2× at batch 8 on a
// ≥4-core machine, where shard parallelism compounds with window
// amortization (see EXPERIMENTS.md for measured single-core numbers).
func BenchmarkServeThroughput(b *testing.B) {
	const batch = 8
	f := newFixture(b, core.MLP, 8, batch, 700)
	s := benchServer(b, f)
	defer s.Close()
	ctx := context.Background()
	if _, err := s.PredictBatch(ctx, f.x); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PredictBatch(ctx, f.x); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkServeSerializedLoop is the contrast case: one outstanding
// request at a time through the same server. Every lone request sits out
// the full MaxWait window before its batch of one is dispatched — the
// latency cost of micro-batching that PredictBatch amortizes away.
func BenchmarkServeSerializedLoop(b *testing.B) {
	f := newFixture(b, core.MLP, 8, 1, 700)
	s := benchServer(b, f)
	defer s.Close()
	ctx := context.Background()
	x := f.sample(0)
	if _, err := s.Predict(ctx, x); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Predict(ctx, x); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkServeEngines is the engine-comparison grid behind
// results/BENCH_serve.json: for every registered lock scheme, batch-8
// traffic through a convolutional model (CNN1 16×16 — compute-heavy enough
// that kernel speed, not batcher overhead, dominates) on the golden
// per-sample engine vs the batched int8 engine. The ratio per scheme is
// the batched tier's speedup; the acceptance bar is ≥4× on the default
// scheme. Engines answer bitwise-identically (see diff_test.go), so this
// measures cost, not quality.
func BenchmarkServeEngines(b *testing.B) {
	const batch = 8
	for si, schemeName := range lockscheme.Names() {
		f := newSchemeFixture(b, schemeName, core.CNN1, 16, batch, 720+uint64(si))
		for _, engine := range []string{EngineGolden, EngineBatched} {
			b.Run("scheme="+schemeName+"/engine="+engine, func(b *testing.B) {
				s := f.server(b, Config{
					Shards:     runtime.GOMAXPROCS(0),
					MaxBatch:   batch,
					MaxWait:    200 * time.Microsecond,
					QueueDepth: 1024,
					Engine:     engine,
				})
				defer s.Close()
				ctx := context.Background()
				if _, err := s.PredictBatch(ctx, f.x); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.PredictBatch(ctx, f.x); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "samples/sec")
			})
		}
	}
}

// BenchmarkDirectAccelerator is the no-service floor: raw PredictSample on
// one warmed accelerator, no batcher, no channels. The gap between this
// and BenchmarkServeThroughput is the serving layer's overhead; the gap to
// BenchmarkServeSerializedLoop is the batcher window.
func BenchmarkDirectAccelerator(b *testing.B) {
	f := newFixture(b, core.MLP, 8, 1, 700)
	acc, err := tpu.NewAccelerator(tpu.DefaultConfig(), f.dev, f.sched)
	if err != nil {
		b.Fatal(err)
	}
	x := f.sample(0)
	if _, err := acc.PredictSample(f.model, x); err != nil {
		b.Fatal(err)
	}
	acc.Seal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.PredictSample(f.model, x); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
}
