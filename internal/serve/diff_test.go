package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"hpnn/internal/core"
	"hpnn/internal/dataset"
	"hpnn/internal/keys"
	"hpnn/internal/lockscheme"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
	"hpnn/internal/tensor"
	"hpnn/internal/tpu"
)

// TestServeDifferentialRandomModels is the property-style half of the
// differential harness: for every registered lock scheme, a spread of
// architectures, and both execution engines, every class served through
// the batcher must equal the single-call accelerator bit-for-bit. The
// quantized path is fully deterministic, so any divergence — however the
// batcher slices the traffic across shards — is a bug, not noise. Run
// under -race.
func TestServeDifferentialRandomModels(t *testing.T) {
	cases := []struct {
		arch core.Arch
		hw   int
		seed uint64
	}{
		{core.MLP, 8, 500},
		{core.MLP, 12, 510},
		{core.CNN1, 16, 520},
	}
	for si, schemeName := range lockscheme.Names() {
		for ci, tc := range cases {
			const n = 24
			f := newSchemeFixture(t, schemeName, tc.arch, tc.hw, n, tc.seed+uint64(1000*si+100*ci))
			for _, engine := range []string{EngineBatched, EngineGolden} {
				t.Run(fmt.Sprintf("%s/%v-%d/%s", schemeName, tc.arch, tc.hw, engine), func(t *testing.T) {
					s := f.server(t, Config{
						Shards: 3, MaxBatch: 4, MaxWait: 100 * time.Microsecond,
						QueueDepth: 256, Engine: engine,
					})
					defer s.Close()

					// Concurrent submission: shard assignment and batch
					// boundaries are scheduler-dependent, the answers must
					// not be.
					var wg sync.WaitGroup
					got := make([]int, n)
					errs := make([]error, n)
					for i := 0; i < n; i++ {
						wg.Add(1)
						go func(i int) {
							defer wg.Done()
							got[i], errs[i] = s.Predict(context.Background(), f.sample(i))
						}(i)
					}
					wg.Wait()
					for i := 0; i < n; i++ {
						if errs[i] != nil {
							t.Fatalf("sample %d: %v", i, errs[i])
						}
						if got[i] != f.want[i] {
							t.Fatalf("sample %d: served class %d, single-call accelerator %d",
								i, got[i], f.want[i])
						}
					}
				})
			}
		}
	}
}

// TestServeDifferentialTrainedModel is the end-to-end half: a trained
// locked CNN1 served through the batcher must (a) agree bit-for-bit with
// the single-call locked accelerator on every test sample and (b) stay
// within quantization tolerance of the float core path — the same bound
// the accelerator itself is held to in internal/tpu.
func TestServeDifferentialTrainedModel(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Name: "fashion", TrainN: 300, TestN: 120, H: 16, W: 16, Seed: 530,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := core.MustModel(core.Config{Arch: core.CNN1, InC: 1, InH: 16, InW: 16, Seed: 531})
	key := keys.Generate(rng.New(532))
	sched := schedule.New(keys.KeyBits, 533)
	m.ApplyRawKey(key, sched)
	core.Train(m, ds.TrainX, ds.TrainY, nil, nil, core.TrainConfig{
		Epochs: 6, BatchSize: 32, LR: 0.05, Momentum: 0.9, Seed: 534,
	})
	dev := keys.NewDevice("user", key)

	floatAcc := m.Accuracy(ds.TestX, ds.TestY, 64)
	if floatAcc < 0.55 {
		t.Fatalf("float reference failed to train (%.3f)", floatAcc)
	}

	ref, err := tpu.NewAccelerator(tpu.DefaultConfig(), dev, sched)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Predict(m, ds.TestX)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(m, tpu.DefaultConfig(), dev, sched, Config{
		Shards: 2, MaxBatch: 8, MaxWait: 100 * time.Microsecond, QueueDepth: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := s.PredictBatch(context.Background(), ds.TestX)
	if err != nil {
		t.Fatal(err)
	}

	servedCorrect := 0
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("test sample %d: served class %d, single-call accelerator %d", i, got[i], want[i])
		}
		if got[i] == ds.TestY[i] {
			servedCorrect++
		}
	}
	servedAcc := float64(servedCorrect) / float64(len(ds.TestY))
	if servedAcc < floatAcc-0.1 {
		t.Fatalf("served accuracy %.3f too far below float reference %.3f", servedAcc, floatAcc)
	}

	// The served traffic really ran on locked hardware: key-conditioned
	// negations happened on every shard's MMU.
	if s.HardwareStats().LockedOutputs == 0 {
		t.Fatal("served inference reported no locked outputs")
	}
}

// TestServeDifferentialCommodityHardware serves the same trained weights
// with no key device (the paper's piracy scenario) and checks the service
// faithfully reproduces the collapsed single-call behaviour — the serving
// layer must not accidentally "fix" what the missing key breaks.
func TestServeDifferentialCommodityHardware(t *testing.T) {
	const n = 24
	f := newFixture(t, core.MLP, 8, n, 540)

	commodity, err := tpu.NewAccelerator(tpu.DefaultConfig(), nil, f.sched)
	if err != nil {
		t.Fatal(err)
	}
	want, err := commodity.Predict(f.model, f.x)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(f.model, tpu.DefaultConfig(), nil, f.sched, Config{Shards: 2, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := s.PredictBatch(context.Background(), f.x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d: no-key served class %d, no-key single-call %d", i, got[i], want[i])
		}
	}
	if s.HardwareStats().LockedOutputs != 0 {
		t.Fatal("commodity hardware reported locked outputs")
	}
	x := tensor.New(1, 8, 8)
	if _, err := s.Predict(context.Background(), x); err != nil {
		t.Fatalf("zero sample on commodity hardware: %v", err)
	}
}
