package serve

import (
	"context"
	"testing"
	"time"

	"hpnn/internal/core"
)

// TestServeSteadyStateAllocs pins the per-request allocation count of a
// warmed shard. The execution engine is zero-allocation per sample (the
// sealed workspace panics otherwise) and the serving layer recycles
// requests and batch slices through pools, so a warmed server must answer
// sequential requests without allocating. The small slack absorbs pool
// refills after an unlucky GC, not a regression: if this number creeps up,
// a buffer stopped being reused somewhere on the request path.
func TestServeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented runtime allocates on channel operations")
	}
	f := newFixture(t, core.CNN1, 16, 2, 180)
	s := f.server(t, Config{Shards: 1, MaxBatch: 1, MaxWait: 50 * time.Microsecond, QueueDepth: 16})
	defer s.Close()

	ctx := context.Background()
	x := f.sample(0)
	// Warm the request/batch pools past any first-use growth.
	for i := 0; i < 32; i++ {
		if _, err := s.Predict(ctx, x); err != nil {
			t.Fatal(err)
		}
	}

	avg := testing.AllocsPerRun(200, func() {
		if _, err := s.Predict(ctx, x); err != nil {
			t.Fatal(err)
		}
	})
	// AllocsPerRun counts process-wide mallocs, so the batcher and worker
	// goroutines are included — exactly what this regression test wants.
	const maxAllocs = 1.0
	if avg > maxAllocs {
		t.Fatalf("steady-state Predict averaged %.2f allocs/request, want <= %.1f", avg, maxAllocs)
	}
}

// TestServeWarmupSealsShards confirms every shard's workspace is sealed
// after New: the zero-allocation contract is enforced by the arena itself,
// not just measured above.
func TestServeWarmupSealsShards(t *testing.T) {
	f := newFixture(t, core.MLP, 8, 1, 190)
	s := f.server(t, Config{Shards: 3})
	defer s.Close()
	for i, sh := range s.shards {
		if !sh.acc.WorkspaceSealed() {
			t.Fatalf("shard %d workspace not sealed after warmup", i)
		}
	}
}
