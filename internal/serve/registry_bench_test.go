package serve

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpnn/internal/core"
	"hpnn/internal/lockscheme"
	"hpnn/internal/rng"
	"hpnn/internal/tpu"
)

// benchRegistryConfig sizes tenants like benchServer sizes a single server.
func benchRegistryConfig() RegistryConfig {
	return RegistryConfig{Tenant: Config{
		Shards:     runtime.GOMAXPROCS(0),
		MaxBatch:   8,
		MaxWait:    200 * time.Microsecond,
		QueueDepth: 1024,
	}}
}

// BenchmarkRegistryMultiModel measures per-model throughput through a
// multi-tenant registry hosting one warmed tenant per lock scheme — the
// routed counterpart of BenchmarkServeThroughput. The gap to the
// single-model number is the routing layer's cost.
func BenchmarkRegistryMultiModel(b *testing.B) {
	const batch = 8
	reg := NewRegistry(tpu.DefaultConfig(), benchRegistryConfig())
	defer reg.Close()
	fixtures := make(map[string]*testFixture)
	for si, schemeName := range lockscheme.Names() {
		f := newSchemeFixture(b, schemeName, core.CNN1, 16, batch, 4000+uint64(si))
		fixtures[schemeName] = f
		if err := reg.Register(schemeName, blobFor(b, f.model), f.dev, f.sched); err != nil {
			b.Fatal(err)
		}
		if err := reg.Warm(schemeName); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	for _, schemeName := range lockscheme.Names() {
		f := fixtures[schemeName]
		b.Run("model="+schemeName, func(b *testing.B) {
			if _, err := reg.PredictBatch(ctx, schemeName, f.x); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reg.PredictBatch(ctx, schemeName, f.x); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "samples/sec")
		})
	}
}

// BenchmarkRegistryColdCompile measures the lazy-residency cost an evicted
// tenant pays on its next hit: blob decode, server build, compile, warmup,
// seal. ns/op is the cold-start latency the LRU trades memory against.
func BenchmarkRegistryColdCompile(b *testing.B) {
	f := newSchemeFixture(b, lockscheme.DefaultName, core.CNN1, 16, 1, 4100)
	reg := NewRegistry(tpu.DefaultConfig(), benchRegistryConfig())
	defer reg.Close()
	if err := reg.Register("m", blobFor(b, f.model), f.dev, f.sched); err != nil {
		b.Fatal(err)
	}
	t, err := reg.tenant("m")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.Warm("m"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		t.evict()
		b.StartTimer()
	}
}

// BenchmarkRegistrySwapBlackout measures what a hot-swap costs the traffic
// riding through it: loader goroutines stream single-sample requests while
// every benchmark iteration Deploys the tenant's other version. ns/op is
// the full Deploy (side compile + atomic flip + old-version drain);
// blackout-ns is the worst single-request latency a loader observed across
// all the swaps — how long any one request could stall on a flip; and
// failed-req must stay 0: a hot-swap drops nothing (the acceptance bar).
func BenchmarkRegistrySwapBlackout(b *testing.B) {
	const n = 8
	sf := newSwapFixture(b, n, 4200)
	reg := NewRegistry(tpu.DefaultConfig(), benchRegistryConfig())
	defer reg.Close()
	if err := reg.Register("m", sf.blob1, sf.dev, sf.sched); err != nil {
		b.Fatal(err)
	}
	if err := reg.Warm("m"); err != nil {
		b.Fatal(err)
	}

	stop := make(chan struct{})
	var failed atomic.Uint64
	var maxLatNS atomic.Int64
	var wg sync.WaitGroup
	loaders := runtime.GOMAXPROCS(0)
	for g := 0; g < loaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(5000 + g))
			ctx := context.Background()
			for {
				select {
				case <-stop:
					return
				default:
				}
				idx := int(r.Uint64() % n)
				t0 := time.Now()
				_, err := reg.Predict(ctx, "m", sf.sample(idx))
				lat := time.Since(t0).Nanoseconds()
				for {
					cur := maxLatNS.Load()
					if lat <= cur || maxLatNS.CompareAndSwap(cur, lat) {
						break
					}
				}
				if err != nil {
					failed.Add(1)
				}
			}
		}(g)
	}

	blobs := [][]byte{sf.blob2, sf.blob1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.Deploy("m", blobs[i%2]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(maxLatNS.Load()), "blackout-ns")
	b.ReportMetric(float64(failed.Load()), "failed-req")
	if failed.Load() != 0 {
		b.Fatalf("%d requests failed across %d hot-swaps, want 0", failed.Load(), b.N)
	}
}
