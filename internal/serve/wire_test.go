package serve

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"hpnn/internal/tensor"
)

// TestWireV2RoundTrip pins the v2 frame: the model ID and the sample both
// survive an encode/decode round trip, byte-exact.
func TestWireV2RoundTrip(t *testing.T) {
	x := tensor.New(1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)/8 - 1
	}
	for _, model := range []string{"", "m", "fashion-cnn1", strings.Repeat("x", MaxModelIDLen)} {
		var buf bytes.Buffer
		if err := EncodeRequestTo(&buf, model, x); err != nil {
			t.Fatalf("model %q: %v", model, err)
		}
		got, gotModel, err := DecodeRequestModel(&buf)
		if err != nil {
			t.Fatalf("model %q: %v", model, err)
		}
		if gotModel != model {
			t.Fatalf("model ID %q decoded as %q", model, gotModel)
		}
		if len(got.Shape) != len(x.Shape) {
			t.Fatalf("rank %d, want %d", len(got.Shape), len(x.Shape))
		}
		for i := range x.Data {
			if got.Data[i] != x.Data[i] {
				t.Fatalf("model %q element %d: %v, want %v", model, i, got.Data[i], x.Data[i])
			}
		}
	}
}

// TestWireV1RoutesDefault pins backward compatibility: a v1 frame decodes
// through the routing decoder with an empty model ID — the default route.
func TestWireV1RoutesDefault(t *testing.T) {
	x := tensor.New(2, 2)
	var buf bytes.Buffer
	if err := EncodeRequest(&buf, x); err != nil {
		t.Fatal(err)
	}
	_, model, err := DecodeRequestModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if model != "" {
		t.Fatalf("v1 frame decoded with model ID %q, want \"\"", model)
	}
}

// TestWireMixedVersionStream decodes an interleaved v1/v2 byte stream —
// what a server sees when old and new clients share a connection pool —
// and checks each frame routes independently.
func TestWireMixedVersionStream(t *testing.T) {
	x := tensor.New(1, 2, 2)
	var buf bytes.Buffer
	frames := []string{"", "alpha", "", "beta"}
	for _, model := range frames {
		var err error
		if model == "" {
			err = EncodeRequest(&buf, x)
		} else {
			err = EncodeRequestTo(&buf, model, x)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		_, model, err := DecodeRequestModel(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if model != want {
			t.Fatalf("frame %d routed to %q, want %q", i, model, want)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left over after decoding the stream", buf.Len())
	}
}

// TestWireModelIDTooLong pins the encoder-side limit: a model ID that does
// not fit the one-byte length field is rejected before any bytes go out.
func TestWireModelIDTooLong(t *testing.T) {
	x := tensor.New(1)
	var buf bytes.Buffer
	if err := EncodeRequestTo(&buf, strings.Repeat("x", MaxModelIDLen+1), x); err == nil {
		t.Fatal("oversized model ID encoded")
	}
	if buf.Len() != 0 {
		t.Fatalf("rejected encode wrote %d bytes", buf.Len())
	}
}

// TestWireTruncatedModelID pins the decoder against a frame whose declared
// model-ID length runs past the payload.
func TestWireTruncatedModelID(t *testing.T) {
	x := tensor.New(1, 2, 2)
	var buf bytes.Buffer
	if err := EncodeRequestTo(&buf, "ab", x); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[5] = 200 // mlen now claims 200 bytes the payload does not have
	if _, _, err := DecodeRequestModel(bytes.NewReader(raw)); err == nil {
		t.Fatal("frame truncated inside the model ID accepted")
	}
}

// TestWireRetryStatus pins the transient-failure path: overload and
// swap-race errors encode as retry status, and clients decode them as
// ErrOverloaded — the signal to back off and resubmit.
func TestWireRetryStatus(t *testing.T) {
	for _, cause := range []error{ErrOverloaded, ErrRetry} {
		var buf bytes.Buffer
		if err := EncodeResponse(&buf, -1, cause); err != nil {
			t.Fatal(err)
		}
		_, err := DecodeResponse(&buf)
		if err == nil {
			t.Fatalf("retry response for %v decoded without error", cause)
		}
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("retry response for %v decoded as %v, want ErrOverloaded", cause, err)
		}
	}
	// Definitive errors stay definitive: no retry semantics attached.
	var buf bytes.Buffer
	if err := EncodeResponse(&buf, -1, errors.New("bad shape")); err != nil {
		t.Fatal(err)
	}
	_, err := DecodeResponse(&buf)
	if err == nil || errors.Is(err, ErrOverloaded) {
		t.Fatalf("definitive error decoded as %v", err)
	}
	// And the success path still round-trips.
	buf.Reset()
	if err := EncodeResponse(&buf, 3, nil); err != nil {
		t.Fatal(err)
	}
	class, err := DecodeResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if class != 3 {
		t.Fatalf("class %d, want 3", class)
	}
}
