package serve

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"hpnn/internal/tensor"
)

// frameFor encodes x as a version-1 request frame for the seed corpus.
func frameFor(f *testing.F, x *tensor.Tensor) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := EncodeRequest(&buf, x); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// frameForModel encodes x as a version-2 request frame addressed to model.
func frameForModel(f *testing.F, model string, x *tensor.Tensor) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := EncodeRequestTo(&buf, model, x); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeRequest hardens the wire decoder against malformed input:
// DecodeRequestModel must return an error or a valid (tensor, model ID)
// pair — never panic, hang, or allocate beyond the frame cap — for
// arbitrary bytes off the network, across both protocol versions and
// mixed-version streams. Input is decoded as a stream (frame after frame
// until the bytes run out), matching how a serving connection consumes it.
// The seed corpus is a valid frame per version plus targeted mutations of
// every validated field: length prefix, version byte, model-ID length
// (empty, maximal, truncated, overflowing), rank, dimensions, payload
// size, value encoding.
func FuzzDecodeRequest(f *testing.F) {
	x := tensor.New(1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)/8 - 1
	}
	valid := frameFor(f, x)
	f.Add(valid)
	f.Add(frameFor(f, tensor.New(3)))
	f.Add([]byte{})
	f.Add(valid[:3])            // truncated length prefix
	f.Add(valid[:len(valid)/2]) // truncated payload

	// Version-2 seeds: typical, empty and maximal model IDs, and a
	// mixed-version stream (v1, v2, v1) decoded frame after frame.
	v2 := frameForModel(f, "fashion-cnn1", x)
	f.Add(v2)
	f.Add(frameForModel(f, "", x))
	f.Add(frameForModel(f, strings.Repeat("m", MaxModelIDLen), x))
	mixed := append(append(append([]byte(nil), valid...), v2...), valid...)
	f.Add(mixed)

	// v2 model-ID length edge cases: mlen pointing past the payload, and a
	// frame truncated mid-ID.
	lieID := append([]byte(nil), v2...)
	lieID[5] = 255 // mlen claims 255 bytes; payload has 12
	f.Add(lieID)
	f.Add(v2[:4+2+6]) // cut inside the model-ID bytes

	// Length prefix larger than the payload that follows.
	lie := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(lie[:4], uint32(len(valid)))
	f.Add(lie)
	// Length prefix beyond MaxFrameBytes: must be rejected pre-allocation.
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[:4], MaxFrameBytes+1)
	f.Add(huge)

	// Wrong version byte (payload starts after the 4-byte prefix).
	badVer := append([]byte(nil), valid...)
	badVer[4] = 0xFF
	f.Add(badVer)
	// Rank 0 and rank beyond maxRank, in both versions.
	badRank := append([]byte(nil), valid...)
	badRank[5] = 0
	f.Add(badRank)
	badRank2 := append([]byte(nil), valid...)
	badRank2[5] = 200
	f.Add(badRank2)
	badRankV2 := append([]byte(nil), v2...)
	badRankV2[4+2+12] = 200 // rank byte sits after the 12-byte model ID
	f.Add(badRankV2)
	// Zero dimension and overflow-bait dimensions.
	zeroDim := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(zeroDim[6:], 0)
	f.Add(zeroDim)
	hugeDim := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hugeDim[6:], math.MaxUint32)
	f.Add(hugeDim)
	// Non-finite value in an otherwise valid frame.
	nanVal := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(nanVal[len(nanVal)-8:], math.Float64bits(math.NaN()))
	f.Add(nanVal)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for r.Len() > 0 {
			x, model, err := DecodeRequestModel(r)
			if err != nil {
				return // one bad frame poisons the stream, like a real connection
			}
			if x == nil {
				t.Fatal("DecodeRequestModel returned nil tensor without error")
			}
			if len(model) > MaxModelIDLen {
				t.Fatalf("accepted model ID of %d bytes beyond limit %d", len(model), MaxModelIDLen)
			}
			if len(x.Shape) < 1 || len(x.Shape) > maxRank {
				t.Fatalf("accepted tensor with rank %d", len(x.Shape))
			}
			if x.Len() > MaxFrameBytes/8 {
				t.Fatalf("accepted tensor of %d elements beyond the frame cap", x.Len())
			}
			for i, v := range x.Data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("accepted non-finite value %v at element %d", v, i)
				}
			}
			// A decoded request must survive re-encoding with its model ID:
			// the accepted subset of the protocol round-trips.
			var buf bytes.Buffer
			if err := EncodeRequestTo(&buf, model, x); err != nil {
				t.Fatalf("accepted request failed to re-encode: %v", err)
			}
			rx, rmodel, err := DecodeRequestModel(&buf)
			if err != nil {
				t.Fatalf("re-encoded request failed to decode: %v", err)
			}
			if rmodel != model {
				t.Fatalf("model ID %q re-decoded as %q", model, rmodel)
			}
			for i := range x.Data {
				if rx.Data[i] != x.Data[i] {
					t.Fatalf("element %d changed across re-encode: %v → %v", i, x.Data[i], rx.Data[i])
				}
			}
		}
	})
}
