package serve

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"hpnn/internal/tensor"
)

// frameFor encodes x as a request frame for the seed corpus.
func frameFor(f *testing.F, x *tensor.Tensor) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := EncodeRequest(&buf, x); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeRequest hardens the wire decoder against malformed input:
// DecodeRequest must return an error or a valid tensor — never panic,
// hang, or allocate beyond the frame cap — for arbitrary bytes off the
// network. The seed corpus is a valid frame plus targeted mutations of
// every validated field (length prefix, version, rank, dimensions,
// payload size, value encoding).
func FuzzDecodeRequest(f *testing.F) {
	x := tensor.New(1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)/8 - 1
	}
	valid := frameFor(f, x)
	f.Add(valid)
	f.Add(frameFor(f, tensor.New(3)))
	f.Add([]byte{})
	f.Add(valid[:3])            // truncated length prefix
	f.Add(valid[:len(valid)/2]) // truncated payload

	// Length prefix larger than the payload that follows.
	lie := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(lie[:4], uint32(len(valid)))
	f.Add(lie)
	// Length prefix beyond MaxFrameBytes: must be rejected pre-allocation.
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[:4], MaxFrameBytes+1)
	f.Add(huge)

	// Wrong version byte (payload starts after the 4-byte prefix).
	badVer := append([]byte(nil), valid...)
	badVer[4] = 0xFF
	f.Add(badVer)
	// Rank 0 and rank beyond maxRank.
	badRank := append([]byte(nil), valid...)
	badRank[5] = 0
	f.Add(badRank)
	badRank2 := append([]byte(nil), valid...)
	badRank2[5] = 200
	f.Add(badRank2)
	// Zero dimension and overflow-bait dimensions.
	zeroDim := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(zeroDim[6:], 0)
	f.Add(zeroDim)
	hugeDim := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hugeDim[6:], math.MaxUint32)
	f.Add(hugeDim)
	// Non-finite value in an otherwise valid frame.
	nanVal := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(nanVal[len(nanVal)-8:], math.Float64bits(math.NaN()))
	f.Add(nanVal)

	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := DecodeRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if x == nil {
			t.Fatal("DecodeRequest returned nil tensor without error")
		}
		if len(x.Shape) < 1 || len(x.Shape) > maxRank {
			t.Fatalf("accepted tensor with rank %d", len(x.Shape))
		}
		if x.Len() > MaxFrameBytes/8 {
			t.Fatalf("accepted tensor of %d elements beyond the frame cap", x.Len())
		}
		for i, v := range x.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted non-finite value %v at element %d", v, i)
			}
		}
		// A decoded request must survive re-encoding: the accepted subset of
		// the protocol round-trips.
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, x); err != nil {
			t.Fatalf("accepted request failed to re-encode: %v", err)
		}
	})
}
