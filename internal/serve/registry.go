package serve

// Multi-tenant model-zoo serving: a Registry routes requests by model ID to
// per-model tenants, each the full single-model serving stack (micro-batcher
// + per-shard compiled/sealed accelerators) built lazily from a serialized
// model blob. This is the deployment story of the paper at fleet scale: many
// obfuscated models published through the zoo, each usable only with its own
// device-resident key, all served from one process.
//
// Ownership and isolation:
//
//   - A Tenant owns its blob, its version counter, its private schedule and
//     its trusted key device. Devices are bound through a keys.Ring, whose
//     one-device-one-model invariant keeps key material from ever crossing
//     tenants — the trust boundary of the whole design.
//   - Residency is lazy: the first request for a tenant decodes the blob,
//     compiles and seals a Server (shards, warmup, zero-alloc steady state),
//     and later requests route to it over an atomic pointer — no locks on
//     the hot path.
//   - The Registry holds residents under a workspace-memory budget: when a
//     compile pushes the summed shard workspaces past MaxWorkspaceBytes,
//     least-recently-used tenants are evicted — drained through Close, then
//     released back to the allocator via the accelerator's Release hook.
//     Evicted tenants recompile on their next hit.
//   - Deploy is the zero-downtime hot-swap: the incoming version compiles
//     off to the side while the old server keeps answering, the routing
//     pointer flips atomically, and the old server drains its in-flight
//     batches before its plans are released. Requests that raced into the
//     old server during the flip are transparently re-routed.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hpnn/internal/keys"
	"hpnn/internal/modelio"
	"hpnn/internal/schedule"
	"hpnn/internal/tensor"
	"hpnn/internal/tpu"
)

// routeAttempts bounds how often one request re-resolves its tenant after
// landing on a server closed by a concurrent swap or eviction. Each retry
// needs a fresh swap/eviction to race with, so more than a couple is
// pathological churn; the request then fails with ErrRetry.
const routeAttempts = 8

// RegistryConfig tunes the multi-tenant registry. The zero value serves
// with default per-tenant settings and no memory budget.
type RegistryConfig struct {
	// Tenant is the serving configuration every tenant's Server is built
	// with (shards, batch size, window, queue depth, engine).
	Tenant Config
	// MaxWorkspaceBytes bounds the summed activation-workspace footprint of
	// resident tenants; exceeding it evicts least-recently-used tenants
	// (drain + release). 0 means unbudgeted. The newest tenant is never
	// evicted, so one oversized model still serves.
	MaxWorkspaceBytes int
	// DefaultModel is where v1 frames and empty model IDs route. Empty
	// selects the sole registered tenant when there is exactly one.
	DefaultModel string
}

// Tenant is one served model: its published blob, key device, schedule and
// (when resident) its compiled serving stack. Created through
// Registry.Register; all state transitions go through the registry.
type Tenant struct {
	name string
	reg  *Registry

	// mu serializes the expensive transitions — compile, evict, swap — so
	// the routing pointer only ever flips between consistent states.
	mu      sync.Mutex
	blob    []byte
	scheme  string
	version uint64
	etag    string
	dev     *keys.Device
	sched   *schedule.Schedule

	// srv is the routing entry: non-nil when resident. Reads are lock-free;
	// writes happen under mu.
	srv     atomic.Pointer[Server]
	bytes   atomic.Int64  // resident workspace footprint
	lastUse atomic.Uint64 // registry clock tick of the last route

	// Folded totals from servers retired by swap, eviction or shutdown, so
	// per-tenant accounting survives residency churn. Guarded by mu.
	retired   Stats
	retiredHW tpu.Stats
}

// TenantInfo is a point-in-time report of one tenant: identity, residency,
// and the cumulative serving/hardware counters across every server this
// tenant has had (current resident included).
type TenantInfo struct {
	Name           string
	Scheme         string
	Version        uint64
	Resident       bool
	WorkspaceBytes int
	Stats          Stats
	Hardware       tpu.Stats
}

// RegistryCounters snapshots the registry-level activity counters.
type RegistryCounters struct {
	// Compiles counts lazy tenant compilations (cold starts and
	// post-eviction recompiles). Evictions counts budget-driven tenant
	// releases. Swaps counts completed Deploy hot-swaps. Reroutes counts
	// requests transparently re-routed after racing a swap or eviction.
	Compiles, Evictions, Swaps, Reroutes uint64
}

// Registry routes inference requests to a fleet of tenants by model ID.
// Create with NewRegistry, add models with Register, serve with Predict /
// PredictBatch, roll new versions with Deploy, stop with Close. All methods
// are safe for concurrent use.
type Registry struct {
	acfg tpu.Config
	cfg  RegistryConfig
	ring *keys.Ring

	mu      sync.Mutex
	tenants map[string]*Tenant
	closed  bool

	clock    atomic.Uint64
	compiles atomic.Uint64
	evicts   atomic.Uint64
	swaps    atomic.Uint64
	reroutes atomic.Uint64
}

// NewRegistry builds an empty multi-tenant registry. acfg sizes the
// simulated accelerator every tenant's shards are built on.
func NewRegistry(acfg tpu.Config, cfg RegistryConfig) *Registry {
	return &Registry{
		acfg:    acfg,
		cfg:     cfg,
		ring:    keys.NewRing(),
		tenants: make(map[string]*Tenant),
	}
}

// Register adds a model under name from its serialized blob. The blob is
// validated and defensively copied; compilation is deferred to the first
// request (or an explicit Warm). dev is the tenant's trusted key device —
// binding a device already serving another tenant fails (keys never cross
// tenants); nil serves on commodity hardware. sched is the tenant's private
// hardware schedule.
func (r *Registry) Register(name string, blob []byte, dev *keys.Device, sched *schedule.Schedule) error {
	if name == "" {
		return fmt.Errorf("serve: registry tenant requires a name")
	}
	if len(name) > MaxModelIDLen {
		return fmt.Errorf("serve: tenant name of %d bytes exceeds wire limit %d", len(name), MaxModelIDLen)
	}
	if sched == nil {
		return fmt.Errorf("serve: tenant %q requires a schedule", name)
	}
	scheme, err := validateBlob(blob)
	if err != nil {
		return fmt.Errorf("serve: tenant %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if _, dup := r.tenants[name]; dup {
		return fmt.Errorf("serve: tenant %q already registered (use Deploy to roll a new version)", name)
	}
	if err := r.ring.Bind(name, dev); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	r.tenants[name] = &Tenant{
		name:   name,
		reg:    r,
		blob:   append([]byte(nil), blob...),
		scheme: scheme,
		dev:    dev,
		sched:  sched,
	}
	return nil
}

// validateBlob decodes blob far enough to reject junk at the API boundary:
// full model decode plus the scheme sniff the zoo records carry.
func validateBlob(blob []byte) (string, error) {
	scheme, err := modelio.SniffScheme(blob)
	if err != nil {
		return "", err
	}
	if _, err := modelio.Load(bytes.NewReader(blob)); err != nil {
		return "", err
	}
	return scheme, nil
}

// tenant resolves a model ID to its tenant, applying default routing: ""
// routes to DefaultModel, or to the sole tenant when none is configured.
func (r *Registry) tenant(model string) (*Tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if model == "" {
		model = r.cfg.DefaultModel
	}
	if model == "" {
		if len(r.tenants) != 1 {
			return nil, fmt.Errorf("serve: no model ID and no default model among %d tenants", len(r.tenants))
		}
		//hpnn:allow(determinism) single-entry map read
		for _, t := range r.tenants {
			return t, nil
		}
	}
	t, ok := r.tenants[model]
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q", model)
	}
	return t, nil
}

// resident returns the tenant's serving stack, compiling and sealing it
// from the blob on first use (and after eviction). Concurrent first
// requests for the same tenant compile once; the rest wait on mu.
func (t *Tenant) resident() (*Server, error) {
	if s := t.srv.Load(); s != nil {
		return s, nil
	}
	t.mu.Lock()
	if s := t.srv.Load(); s != nil {
		t.mu.Unlock()
		return s, nil
	}
	srv, bytes, err := t.compileLocked(t.blob)
	if err != nil {
		t.mu.Unlock()
		return nil, fmt.Errorf("serve: compiling tenant %q: %w", t.name, err)
	}
	t.bytes.Store(int64(bytes))
	t.srv.Store(srv)
	t.mu.Unlock()
	t.reg.compiles.Add(1)
	t.reg.maybeEvict(t)
	return srv, nil
}

// compileLocked builds a sealed Server from a blob. Caller holds t.mu.
func (t *Tenant) compileLocked(blob []byte) (*Server, int, error) {
	m, err := modelio.Load(bytes.NewReader(blob))
	if err != nil {
		return nil, 0, err
	}
	srv, err := New(m, t.reg.acfg, t.dev, t.sched, t.reg.cfg.Tenant)
	if err != nil {
		return nil, 0, err
	}
	return srv, srv.WorkspaceBytes(), nil
}

// retire folds a server's final counters into the tenant's cumulative
// totals. Caller holds t.mu and has already Closed srv.
func (t *Tenant) retire(st Stats, hw tpu.Stats) {
	t.retired.Completed += st.Completed
	t.retired.Errors += st.Errors
	t.retired.Canceled += st.Canceled
	t.retired.Overloaded += st.Overloaded
	t.retired.Batches += st.Batches
	t.retiredHW.Add(hw)
}

// evict drains and releases the tenant's resident server, if any. Holding
// mu through the drain blocks a concurrent recompile until the old server's
// memory is actually free.
func (t *Tenant) evict() {
	t.mu.Lock()
	defer t.mu.Unlock()
	srv := t.srv.Swap(nil)
	if srv == nil {
		return
	}
	st := srv.Close()
	t.retire(st, srv.HardwareStats())
	srv.release()
	t.bytes.Store(0)
	t.reg.evicts.Add(1)
}

// maybeEvict enforces the workspace budget: while resident tenants sum past
// MaxWorkspaceBytes, the least-recently-used tenant other than keep is
// drained and released. Runs without holding keep's lock, so compiles never
// deadlock against evictions.
func (r *Registry) maybeEvict(keep *Tenant) {
	if r.cfg.MaxWorkspaceBytes <= 0 {
		return
	}
	for {
		r.mu.Lock()
		total := 0
		var victim *Tenant
		//hpnn:allow(determinism) scan for minimum lastUse; order-independent
		for _, t := range r.tenants {
			b := int(t.bytes.Load())
			if b == 0 {
				continue
			}
			total += b
			if t == keep {
				continue
			}
			if victim == nil || t.lastUse.Load() < victim.lastUse.Load() {
				victim = t
			}
		}
		r.mu.Unlock()
		if total <= r.cfg.MaxWorkspaceBytes || victim == nil {
			return
		}
		victim.evict()
	}
}

// Warm compiles and seals the named tenant eagerly, so its first request
// pays no cold-start latency.
func (r *Registry) Warm(model string) error {
	t, err := r.tenant(model)
	if err != nil {
		return err
	}
	t.lastUse.Store(r.clock.Add(1))
	_, err = t.resident()
	return err
}

// Predict routes one sample to the named model's tenant and classifies it
// on that tenant's locked hardware. model "" follows default routing (v1
// clients). A request that races a hot-swap or eviction is transparently
// re-routed to the tenant's new server; sustained churn surfaces as
// ErrRetry. Other errors are the single-model Server's: ErrOverloaded on a
// full tenant queue, shape errors, the context's error on cancellation.
func (r *Registry) Predict(ctx context.Context, model string, x *tensor.Tensor) (int, error) {
	t, err := r.tenant(model)
	if err != nil {
		return -1, err
	}
	for attempt := 0; attempt < routeAttempts; attempt++ {
		srv, err := t.resident()
		if err != nil {
			return -1, err
		}
		t.lastUse.Store(r.clock.Add(1))
		class, err := srv.Predict(ctx, x)
		if err != nil && errors.Is(err, ErrClosed) {
			// The server closed beneath us: a swap or eviction retired it
			// between routing and enqueue. Re-resolve and resubmit — this is
			// what makes a hot-swap lose zero in-flight requests.
			r.reroutes.Add(1)
			if r.isClosed() {
				return -1, ErrClosed
			}
			continue
		}
		return class, err
	}
	return -1, ErrRetry
}

// PredictBatch routes a batch ([N, C, H, W]) to the named model's tenant
// and returns per-sample classes, re-routing like Predict when the batch
// races a swap or eviction.
func (r *Registry) PredictBatch(ctx context.Context, model string, x *tensor.Tensor) ([]int, error) {
	t, err := r.tenant(model)
	if err != nil {
		return nil, err
	}
	for attempt := 0; attempt < routeAttempts; attempt++ {
		srv, err := t.resident()
		if err != nil {
			return nil, err
		}
		t.lastUse.Store(r.clock.Add(1))
		out, err := srv.PredictBatch(ctx, x)
		if err != nil && errors.Is(err, ErrClosed) {
			r.reroutes.Add(1)
			if r.isClosed() {
				return nil, ErrClosed
			}
			continue
		}
		return out, err
	}
	return nil, ErrRetry
}

// Deploy rolls a new version of an already-registered tenant with zero
// downtime: the new blob compiles and seals off to the side while the old
// server keeps answering, the routing entry swaps atomically, and the old
// server drains its in-flight batches before its plans are released. A
// non-resident tenant just gets the new blob (it compiles on next hit).
// Deploy returns after the old version has fully drained — a prediction
// stream through the tenant answers with the old version before the swap
// point and the new version after it, and no request in between is dropped.
func (r *Registry) Deploy(name string, blob []byte) error {
	if _, err := validateBlob(blob); err != nil {
		return fmt.Errorf("serve: deploying %q: %w", name, err)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	t, ok := r.tenants[name]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: deploy of unregistered model %q (Register first)", name)
	}

	t.mu.Lock()
	var newSrv *Server
	if t.srv.Load() != nil {
		srv, bytes, err := t.compileLocked(blob)
		if err != nil {
			t.mu.Unlock()
			return fmt.Errorf("serve: deploying %q: %w", name, err)
		}
		newSrv = srv
		t.bytes.Store(int64(bytes))
	}
	scheme, _ := modelio.SniffScheme(blob) // validated above
	t.blob = append(t.blob[:0], blob...)
	t.scheme = scheme
	t.version++
	old := t.srv.Swap(newSrv) // the atomic routing flip
	if old != nil {
		st := old.Close() // drain every in-flight batch of the old version
		t.retire(st, old.HardwareStats())
		old.release()
	}
	t.mu.Unlock()
	r.swaps.Add(1)
	if newSrv != nil {
		r.maybeEvict(t)
	}
	return nil
}

// SetETag records the zoo ETag the tenant's current blob was fetched under;
// ETag returns it. The hpnn-serve watch loop uses the pair to poll the zoo
// cheaply: an unchanged ETag skips the download and the swap.
func (r *Registry) SetETag(name, etag string) {
	r.mu.Lock()
	t, ok := r.tenants[name]
	r.mu.Unlock()
	if ok {
		t.mu.Lock()
		t.etag = etag
		t.mu.Unlock()
	}
}

// ETag returns the recorded zoo ETag for name ("" when unknown).
func (r *Registry) ETag(name string) string {
	r.mu.Lock()
	t, ok := r.tenants[name]
	r.mu.Unlock()
	if !ok {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.etag
}

// Remove drains, releases and deletes a tenant, unbinding its key device.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	t, ok := r.tenants[name]
	if ok {
		delete(r.tenants, name)
		r.ring.Unbind(name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: unknown model %q", name)
	}
	t.evict()
	return nil
}

// Names lists the registered model IDs, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.tenants))
	//hpnn:allow(determinism) keys are collected then sorted below
	for n := range r.tenants {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Tenants reports every tenant's identity, residency and cumulative
// counters, sorted by name.
func (r *Registry) Tenants() []TenantInfo {
	r.mu.Lock()
	list := make([]*Tenant, 0, len(r.tenants))
	//hpnn:allow(determinism) values are collected then sorted below
	for _, t := range r.tenants {
		list = append(list, t)
	}
	r.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })
	out := make([]TenantInfo, 0, len(list))
	for _, t := range list {
		out = append(out, t.info())
	}
	return out
}

// info snapshots one tenant, folding the live server's counters (when
// resident) into the retired totals.
func (t *Tenant) info() TenantInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	info := TenantInfo{
		Name:     t.name,
		Scheme:   t.scheme,
		Version:  t.version,
		Stats:    t.retired,
		Hardware: t.retiredHW,
	}
	if srv := t.srv.Load(); srv != nil {
		info.Resident = true
		info.WorkspaceBytes = int(t.bytes.Load())
		live := srv.Stats()
		info.Stats.Completed += live.Completed
		info.Stats.Errors += live.Errors
		info.Stats.Canceled += live.Canceled
		info.Stats.Overloaded += live.Overloaded
		info.Stats.Batches += live.Batches
		info.Stats.MeanBatch = live.MeanBatch
		info.Stats.P50, info.Stats.P90, info.Stats.P99, info.Stats.Max = live.P50, live.P90, live.P99, live.Max
		info.Hardware.Add(srv.HardwareStats())
	}
	if info.Stats.Batches > 0 && info.Stats.MeanBatch == 0 {
		info.Stats.MeanBatch = float64(info.Stats.Completed) / float64(info.Stats.Batches)
	}
	return info
}

// WorkspaceBytes sums the resident tenants' activation-workspace
// footprints — the number the eviction budget is enforced against.
func (r *Registry) WorkspaceBytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	//hpnn:allow(determinism) order-independent sum
	for _, t := range r.tenants {
		total += int(t.bytes.Load())
	}
	return total
}

// HardwareStats sums simulated-hardware activity across every tenant,
// retired servers included.
func (r *Registry) HardwareStats() tpu.Stats {
	var total tpu.Stats
	for _, info := range r.Tenants() {
		total.Add(info.Hardware)
	}
	return total
}

// Counters snapshots the registry-level activity counters.
func (r *Registry) Counters() RegistryCounters {
	return RegistryCounters{
		Compiles:  r.compiles.Load(),
		Evictions: r.evicts.Load(),
		Swaps:     r.swaps.Load(),
		Reroutes:  r.reroutes.Load(),
	}
}

func (r *Registry) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Close stops routing, drains every resident tenant through its server's
// Close and releases their plans. It returns the final per-tenant reports.
// Close is idempotent.
func (r *Registry) Close() []TenantInfo {
	r.mu.Lock()
	r.closed = true
	list := make([]*Tenant, 0, len(r.tenants))
	//hpnn:allow(determinism) values are collected then sorted in Tenants
	for _, t := range r.tenants {
		list = append(list, t)
	}
	r.mu.Unlock()
	for _, t := range list {
		t.evict()
	}
	return r.Tenants()
}
