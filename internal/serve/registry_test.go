package serve

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpnn/internal/core"
	"hpnn/internal/keys"
	"hpnn/internal/lockscheme"
	"hpnn/internal/modelio"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
	"hpnn/internal/tensor"
	"hpnn/internal/tpu"
)

// blobFor serializes a fixture's model into the published-blob form tenants
// are registered from.
func blobFor(t testing.TB, m *core.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := modelio.Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// registryConfig is the test default: small shards, generous queue.
func registryConfig() RegistryConfig {
	return RegistryConfig{Tenant: Config{
		Shards: 2, MaxBatch: 8, MaxWait: 100 * time.Microsecond, QueueDepth: 4096,
	}}
}

// TestRegistryMultiModelDifferential is the headline acceptance test: one
// registry serving one tenant per registered lock scheme (≥3 models, ≥2
// schemes) concurrently, every answer bitwise-equal to that model's
// single-tenant golden prediction. Run under -race by scripts/check.sh.
func TestRegistryMultiModelDifferential(t *testing.T) {
	const n = 8
	names := lockscheme.Names()
	if len(names) < 2 {
		t.Fatalf("need ≥2 lock schemes for the multi-tenant differential, have %d", len(names))
	}
	fixtures := make(map[string]*testFixture, len(names)+1)
	reg := NewRegistry(tpu.DefaultConfig(), registryConfig())
	defer reg.Close()
	for si, schemeName := range names {
		f := newSchemeFixture(t, schemeName, core.MLP, 8, n, 900+uint64(100*si))
		fixtures[schemeName] = f
		if err := reg.Register(schemeName, blobFor(t, f.model), f.dev, f.sched); err != nil {
			t.Fatal(err)
		}
	}
	// A raw-key tenant alongside the scheme tenants, guaranteeing ≥3 models
	// even with a two-scheme registry.
	raw := newFixture(t, core.MLP, 8, n, 990)
	fixtures["raw"] = raw
	if err := reg.Register("raw", blobFor(t, raw.model), raw.dev, raw.sched); err != nil {
		t.Fatal(err)
	}
	models := append(append([]string(nil), names...), "raw")
	if len(models) < 3 {
		t.Fatalf("acceptance requires ≥3 tenants, have %d", len(models))
	}

	const goroutines = 16
	const perG = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(7000 + g))
			ctx := context.Background()
			for i := 0; i < perG; i++ {
				model := models[r.Uint64()%uint64(len(models))]
				f := fixtures[model]
				if i%5 == 4 { // batch submission through the same tenant
					bn := 1 + int(r.Uint64()%4)
					lo := int(r.Uint64() % uint64(n-bn+1))
					bx := tensor.FromSlice(f.x.Data[lo*f.feat:(lo+bn)*f.feat], bn, 1, 8, 8)
					got, err := reg.PredictBatch(ctx, model, bx)
					if err != nil {
						t.Errorf("goroutine %d model %s batch: %v", g, model, err)
						return
					}
					for j := range got {
						if got[j] != f.want[lo+j] {
							t.Errorf("goroutine %d model %s batch sample %d: class %d, want %d",
								g, model, lo+j, got[j], f.want[lo+j])
							return
						}
					}
					continue
				}
				idx := int(r.Uint64() % n)
				got, err := reg.Predict(ctx, model, f.sample(idx))
				if err != nil {
					t.Errorf("goroutine %d model %s: %v", g, model, err)
					return
				}
				if got != f.want[idx] {
					t.Errorf("goroutine %d model %s sample %d: class %d, want %d",
						g, model, idx, got, f.want[idx])
					return
				}
			}
		}(g)
	}
	wg.Wait()

	infos := reg.Tenants()
	if len(infos) != len(models) {
		t.Fatalf("registry reports %d tenants, registered %d", len(infos), len(models))
	}
	var completed uint64
	for _, info := range infos {
		completed += info.Stats.Completed
		if info.Hardware.MACs == 0 {
			t.Errorf("tenant %s served traffic but recorded no MMU activity", info.Name)
		}
	}
	if completed == 0 {
		t.Fatal("no completions recorded across tenants")
	}
}

// TestRegistryDefaultRouting pins the v1-compat routing rules: "" routes to
// the sole tenant, then to the configured default; unknown IDs fail.
func TestRegistryDefaultRouting(t *testing.T) {
	f := newFixture(t, core.MLP, 8, 2, 1100)
	ctx := context.Background()

	// Sole tenant: "" routes to it without any configuration.
	reg := NewRegistry(tpu.DefaultConfig(), registryConfig())
	if err := reg.Register("only", blobFor(t, f.model), f.dev, f.sched); err != nil {
		t.Fatal(err)
	}
	got, err := reg.Predict(ctx, "", f.sample(0))
	if err != nil {
		t.Fatal(err)
	}
	if got != f.want[0] {
		t.Fatalf("default-routed class %d, want %d", got, f.want[0])
	}
	if _, err := reg.Predict(ctx, "nope", f.sample(0)); err == nil {
		t.Fatal("unknown model ID accepted")
	}

	// Two tenants, no default: "" must be rejected, not routed arbitrarily.
	g := newFixture(t, core.MLP, 8, 2, 1200)
	if err := reg.Register("second", blobFor(t, g.model), g.dev, g.sched); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Predict(ctx, "", f.sample(0)); err == nil {
		t.Fatal("ambiguous default routing accepted with 2 tenants and no DefaultModel")
	}
	reg.Close()

	// Configured default: "" routes there even among several tenants.
	cfg := registryConfig()
	cfg.DefaultModel = "beta"
	reg2 := NewRegistry(tpu.DefaultConfig(), cfg)
	defer reg2.Close()
	f2 := newFixture(t, core.MLP, 8, 2, 1300)
	g2 := newFixture(t, core.MLP, 8, 2, 1400)
	if err := reg2.Register("alpha", blobFor(t, f2.model), f2.dev, f2.sched); err != nil {
		t.Fatal(err)
	}
	if err := reg2.Register("beta", blobFor(t, g2.model), g2.dev, g2.sched); err != nil {
		t.Fatal(err)
	}
	got, err = reg2.Predict(ctx, "", g2.sample(1))
	if err != nil {
		t.Fatal(err)
	}
	if got != g2.want[1] {
		t.Fatalf("DefaultModel-routed class %d, want beta's %d", got, g2.want[1])
	}
}

// TestRegistryKeyIsolation pins the trust boundary: one device serves one
// model. Binding a device already bound to another tenant must fail, and
// the failed registration must not leave a half-registered tenant behind.
func TestRegistryKeyIsolation(t *testing.T) {
	f := newFixture(t, core.MLP, 8, 1, 1500)
	g := newFixture(t, core.MLP, 8, 1, 1600)
	reg := NewRegistry(tpu.DefaultConfig(), registryConfig())
	defer reg.Close()
	if err := reg.Register("a", blobFor(t, f.model), f.dev, f.sched); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("b", blobFor(t, g.model), f.dev, g.sched); err == nil {
		t.Fatal("device bound to tenant a accepted for tenant b — key material crossed tenants")
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("failed registration left tenants %v", names)
	}
	// Distinct devices register fine; commodity (nil-device) tenants are not
	// constrained by the ring.
	if err := reg.Register("b", blobFor(t, g.model), g.dev, g.sched); err != nil {
		t.Fatal(err)
	}
	h := newFixture(t, core.MLP, 8, 1, 1700)
	if err := reg.Register("c", blobFor(t, h.model), nil, h.sched); err != nil {
		t.Fatal(err)
	}
	i := newFixture(t, core.MLP, 8, 1, 1800)
	if err := reg.Register("d", blobFor(t, i.model), nil, i.sched); err != nil {
		t.Fatal(err)
	}
	// Removing a tenant releases its device for rebinding.
	if err := reg.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("a2", blobFor(t, f.model), f.dev, f.sched); err != nil {
		t.Fatalf("device not released on Remove: %v", err)
	}
}

// TestRegistryBudgetEviction exercises the LRU under a budget that fits
// exactly one resident tenant: compiling the second must drain and release
// the first, the summed footprint must stay within budget, and the evicted
// tenant must lazily recompile — still bitwise-correct — on its next hit.
func TestRegistryBudgetEviction(t *testing.T) {
	f := newFixture(t, core.MLP, 8, 4, 1900)
	g := newFixture(t, core.MLP, 8, 4, 2000)
	ctx := context.Background()

	// Measure one tenant's resident footprint with an unbudgeted registry.
	probe := NewRegistry(tpu.DefaultConfig(), registryConfig())
	if err := probe.Register("a", blobFor(t, f.model), f.dev, f.sched); err != nil {
		t.Fatal(err)
	}
	if err := probe.Warm("a"); err != nil {
		t.Fatal(err)
	}
	budget := probe.WorkspaceBytes()
	if budget == 0 {
		t.Fatal("resident tenant reports zero workspace footprint")
	}
	probe.Close()

	cfg := registryConfig()
	cfg.MaxWorkspaceBytes = budget // same arch ⇒ room for exactly one tenant
	reg := NewRegistry(tpu.DefaultConfig(), cfg)
	defer reg.Close()
	if err := reg.Register("a", blobFor(t, f.model), f.dev, f.sched); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("b", blobFor(t, g.model), g.dev, g.sched); err != nil {
		t.Fatal(err)
	}

	check := func(model string, fx *testFixture, idx int) {
		t.Helper()
		got, err := reg.Predict(ctx, model, fx.sample(idx))
		if err != nil {
			t.Fatalf("model %s: %v", model, err)
		}
		if got != fx.want[idx] {
			t.Fatalf("model %s sample %d: class %d, want %d", model, idx, got, fx.want[idx])
		}
		if ws := reg.WorkspaceBytes(); ws > budget {
			t.Fatalf("resident footprint %d exceeds budget %d after hitting %s", ws, budget, model)
		}
	}
	check("a", f, 0) // a resident
	check("b", g, 1) // b compiles, a evicted
	check("a", f, 2) // a recompiles lazily, b evicted
	check("b", g, 3)

	c := reg.Counters()
	if c.Evictions < 3 {
		t.Fatalf("budget for one tenant, 4 alternating hits: %d evictions, want ≥3", c.Evictions)
	}
	if c.Compiles < 4 {
		t.Fatalf("alternating hits under a one-tenant budget: %d compiles, want ≥4", c.Compiles)
	}
	// Residency flipped, but per-tenant accounting survived the churn.
	for _, info := range reg.Tenants() {
		if info.Stats.Completed != 2 {
			t.Fatalf("tenant %s: %d completions across evictions, want 2", info.Name, info.Stats.Completed)
		}
	}
	resident := 0
	for _, info := range reg.Tenants() {
		if info.Resident {
			resident++
		}
	}
	if resident != 1 {
		t.Fatalf("%d tenants resident under a one-tenant budget", resident)
	}
}

// swapFixture builds two versions of one tenant — same key, same schedule,
// same device, different weights — plus golden predictions for both on a
// shared input set. The pair drives the hot-swap bitwise tests.
type swapFixture struct {
	dev          *keys.Device
	sched        *schedule.Schedule
	blob1, blob2 []byte
	x            *tensor.Tensor
	want1, want2 []int
	feat         int
}

func newSwapFixture(t testing.TB, n int, seed uint64) *swapFixture {
	t.Helper()
	const hw = 8
	key := keys.Generate(rng.New(seed))
	sched := schedule.New(keys.KeyBits, seed+1)
	dev := keys.NewDevice("owner", key)

	m1 := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: hw, InW: hw, Classes: 4, Seed: seed + 2})
	m1.ApplyRawKey(key, sched)
	m2 := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: hw, InW: hw, Classes: 4, Seed: seed + 3})
	m2.ApplyRawKey(key, sched)

	x := tensor.New(n, 1, hw, hw)
	x.FillUniform(rng.New(seed+4), -1, 1)

	ref, err := tpu.NewAccelerator(tpu.DefaultConfig(), dev, sched)
	if err != nil {
		t.Fatal(err)
	}
	want1, err := ref.Predict(m1, x)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := ref.Predict(m2, x)
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for i := range want1 {
		if want1[i] != want2[i] {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("swap fixture versions predict identically everywhere — the split test would be vacuous")
	}
	return &swapFixture{
		dev: dev, sched: sched,
		blob1: blobFor(t, m1), blob2: blobFor(t, m2),
		x: x, want1: want1, want2: want2, feat: hw * hw,
	}
}

func (sf *swapFixture) sample(i int) *tensor.Tensor {
	return tensor.FromSlice(sf.x.Data[i*sf.feat:(i+1)*sf.feat], 1, sf.x.Shape[2], sf.x.Shape[3])
}

// TestRegistryHotSwapBitwiseSplit streams predictions through a tenant
// across a synchronous Deploy and asserts the stream is exactly the two
// versions' golden outputs split at the swap point: old version bitwise
// before, new version bitwise after, nothing in between.
func TestRegistryHotSwapBitwiseSplit(t *testing.T) {
	const n = 12
	const split = 6
	sf := newSwapFixture(t, n, 2100)
	reg := NewRegistry(tpu.DefaultConfig(), registryConfig())
	defer reg.Close()
	if err := reg.Register("m", sf.blob1, sf.dev, sf.sched); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < split; i++ {
		got, err := reg.Predict(ctx, "m", sf.sample(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != sf.want1[i] {
			t.Fatalf("pre-swap sample %d: class %d, want v1's %d", i, got, sf.want1[i])
		}
	}
	if err := reg.Deploy("m", sf.blob2); err != nil {
		t.Fatal(err)
	}
	for i := split; i < n; i++ {
		got, err := reg.Predict(ctx, "m", sf.sample(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != sf.want2[i] {
			t.Fatalf("post-swap sample %d: class %d, want v2's %d", i, got, sf.want2[i])
		}
	}
	infos := reg.Tenants()
	if len(infos) != 1 || infos[0].Version != 1 {
		t.Fatalf("tenant version %d after one deploy, want 1", infos[0].Version)
	}
	if infos[0].Stats.Completed != n {
		t.Fatalf("tenant completed %d across the swap, want %d (stats must survive retirement)",
			infos[0].Stats.Completed, n)
	}
	if c := reg.Counters(); c.Swaps != 1 {
		t.Fatalf("registry counted %d swaps, want 1", c.Swaps)
	}
	// Deploying a non-resident tenant is a pure blob update: no compile until
	// the next hit, which then serves the newest version.
	if err := reg.Remove("m"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("m2", sf.blob1, sf.dev, sf.sched); err != nil {
		t.Fatal(err)
	}
	before := reg.Counters().Compiles
	if err := reg.Deploy("m2", sf.blob2); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counters().Compiles; got != before {
		t.Fatalf("deploy to a non-resident tenant compiled eagerly (%d → %d)", before, got)
	}
	got, err := reg.Predict(ctx, "m2", sf.sample(0))
	if err != nil {
		t.Fatal(err)
	}
	if got != sf.want2[0] {
		t.Fatalf("non-resident deploy then hit: class %d, want v2's %d", got, sf.want2[0])
	}
}

// TestRegistryHotSwapZeroDrop hammers a tenant from many goroutines while a
// Deploy hot-swaps it mid-stream. Acceptance: zero requests dropped or
// failed; every answer is bitwise one of the two versions; per goroutine
// the stream is monotonic (once the new version answers, the old never
// does); and once Deploy has returned, only the new version answers.
// Run under -race by scripts/check.sh.
func TestRegistryHotSwapZeroDrop(t *testing.T) {
	const n = 8
	sf := newSwapFixture(t, n, 2200)
	reg := NewRegistry(tpu.DefaultConfig(), registryConfig())
	defer reg.Close()
	if err := reg.Register("m", sf.blob1, sf.dev, sf.sched); err != nil {
		t.Fatal(err)
	}
	if err := reg.Warm("m"); err != nil {
		t.Fatal(err)
	}

	var swapDone atomic.Bool
	stop := make(chan struct{})
	var submitted, answered atomic.Uint64
	var wg sync.WaitGroup
	const goroutines = 12
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(3000 + g))
			ctx := context.Background()
			sawNew := false
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := int(r.Uint64() % n)
				settled := swapDone.Load() // sampled before submit: if true, only v2 may answer
				submitted.Add(1)
				got, err := reg.Predict(ctx, "m", sf.sample(idx))
				if err != nil {
					t.Errorf("goroutine %d: request failed across the swap: %v", g, err)
					return
				}
				answered.Add(1)
				isV1 := got == sf.want1[idx]
				isV2 := got == sf.want2[idx]
				switch {
				case !isV1 && !isV2:
					t.Errorf("goroutine %d sample %d: class %d matches neither v1 %d nor v2 %d",
						g, idx, got, sf.want1[idx], sf.want2[idx])
					return
				case settled && !isV2:
					t.Errorf("goroutine %d sample %d: v1 answer %d after Deploy returned", g, idx, got)
					return
				case sawNew && !isV2:
					t.Errorf("goroutine %d sample %d: v1 answer %d after a v2 answer — swap not monotonic",
						g, idx, got)
					return
				}
				if isV2 && !isV1 { // unambiguously the new version
					sawNew = true
				}
			}
		}(g)
	}

	time.Sleep(10 * time.Millisecond) // load builds against v1
	if err := reg.Deploy("m", sf.blob2); err != nil {
		t.Fatal(err)
	}
	swapDone.Store(true)
	time.Sleep(10 * time.Millisecond) // load continues against v2
	close(stop)
	wg.Wait()

	if submitted.Load() != answered.Load() {
		t.Fatalf("submitted %d, answered %d — the swap dropped requests", submitted.Load(), answered.Load())
	}
	if answered.Load() == 0 {
		t.Fatal("hammer made no requests")
	}
	infos := reg.Tenants()
	if infos[0].Stats.Completed < answered.Load() {
		t.Fatalf("tenant counted %d completions, clients observed %d", infos[0].Stats.Completed, answered.Load())
	}
	if c := reg.Counters(); c.Swaps != 1 {
		t.Fatalf("registry counted %d swaps, want 1", c.Swaps)
	}
}

// TestRegistryCloseDuringLoad closes the registry while goroutines submit
// across two tenants: every request resolves (correct answer or ErrClosed),
// nothing hangs, and Close's tenant reports carry the served totals.
func TestRegistryCloseDuringLoad(t *testing.T) {
	const n = 4
	f := newFixture(t, core.MLP, 8, n, 2300)
	g := newFixture(t, core.MLP, 8, n, 2400)
	reg := NewRegistry(tpu.DefaultConfig(), registryConfig())
	if err := reg.Register("a", blobFor(t, f.model), f.dev, f.sched); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("b", blobFor(t, g.model), g.dev, g.sched); err != nil {
		t.Fatal(err)
	}

	fixtures := map[string]*testFixture{"a": f, "b": g}
	var wg sync.WaitGroup
	var served atomic.Uint64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			model := []string{"a", "b"}[i%2]
			fx := fixtures[model]
			ctx := context.Background()
			for j := 0; ; j++ {
				idx := j % n
				got, err := reg.Predict(ctx, model, fx.sample(idx))
				switch {
				case err == nil:
					if got != fx.want[idx] {
						t.Errorf("model %s sample %d: class %d, want %d", model, idx, got, fx.want[idx])
						return
					}
					served.Add(1)
				case errors.Is(err, ErrClosed):
					return
				case errors.Is(err, ErrOverloaded):
					// heavy load; retry
				default:
					t.Errorf("unexpected error during close: %v", err)
					return
				}
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond)

	done := make(chan []TenantInfo, 1)
	go func() { done <- reg.Close() }()
	select {
	case infos := <-done:
		wg.Wait()
		var completed uint64
		for _, info := range infos {
			completed += info.Stats.Completed
			if info.Resident {
				t.Errorf("tenant %s still resident after Close", info.Name)
			}
		}
		if completed < served.Load() {
			t.Fatalf("tenant reports count %d completions, clients observed %d", completed, served.Load())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("registry Close deadlocked under load")
	}
	if _, err := reg.Predict(context.Background(), "a", f.sample(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Predict returned %v, want ErrClosed", err)
	}
	reg.Close() // idempotent
}

// TestRegistryRegisterValidation pins the registration boundary: junk
// blobs, empty and oversized names, nil schedules and duplicates all fail.
func TestRegistryRegisterValidation(t *testing.T) {
	f := newFixture(t, core.MLP, 8, 1, 2500)
	blob := blobFor(t, f.model)
	reg := NewRegistry(tpu.DefaultConfig(), registryConfig())
	defer reg.Close()
	if err := reg.Register("", blob, f.dev, f.sched); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	long := make([]byte, MaxModelIDLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if err := reg.Register(string(long), blob, f.dev, f.sched); err == nil {
		t.Fatal("tenant name beyond the wire's model-ID limit accepted")
	}
	if err := reg.Register("m", blob, f.dev, nil); err == nil {
		t.Fatal("nil schedule accepted")
	}
	if err := reg.Register("m", []byte("not a model"), f.dev, f.sched); err == nil {
		t.Fatal("junk blob accepted")
	}
	if err := reg.Register("m", blob, f.dev, f.sched); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("m", blob, f.dev, f.sched); err == nil {
		t.Fatal("duplicate tenant name accepted")
	}
	if err := reg.Deploy("ghost", blob); err == nil {
		t.Fatal("deploy to an unregistered tenant accepted")
	}
	if err := reg.Deploy("m", []byte("junk")); err == nil {
		t.Fatal("deploy of a junk blob accepted")
	}
	if err := reg.Remove("ghost"); err == nil {
		t.Fatal("remove of an unregistered tenant accepted")
	}
	// The registered blob is a defensive copy: mutating the caller's slice
	// must not corrupt the tenant.
	blob[len(blob)-1] ^= 0xFF
	if err := reg.Warm("m"); err != nil {
		t.Fatalf("tenant compiled from caller-mutated blob: %v", err)
	}
}

// TestRegistryWarm pins eager compilation: Warm compiles once, a second
// Warm and subsequent requests reuse the resident server.
func TestRegistryWarm(t *testing.T) {
	f := newFixture(t, core.MLP, 8, 2, 2600)
	reg := NewRegistry(tpu.DefaultConfig(), registryConfig())
	defer reg.Close()
	if err := reg.Register("m", blobFor(t, f.model), f.dev, f.sched); err != nil {
		t.Fatal(err)
	}
	if c := reg.Counters().Compiles; c != 0 {
		t.Fatalf("registration compiled eagerly (%d compiles)", c)
	}
	if err := reg.Warm("m"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Warm("m"); err != nil {
		t.Fatal(err)
	}
	got, err := reg.Predict(context.Background(), "m", f.sample(0))
	if err != nil {
		t.Fatal(err)
	}
	if got != f.want[0] {
		t.Fatalf("class %d, want %d", got, f.want[0])
	}
	if c := reg.Counters().Compiles; c != 1 {
		t.Fatalf("%d compiles after Warm+Warm+Predict, want 1", c)
	}
}

// TestRegistryETag pins the zoo-watch bookkeeping the hpnn-serve poll loop
// depends on.
func TestRegistryETag(t *testing.T) {
	f := newFixture(t, core.MLP, 8, 1, 2700)
	reg := NewRegistry(tpu.DefaultConfig(), registryConfig())
	defer reg.Close()
	if err := reg.Register("m", blobFor(t, f.model), f.dev, f.sched); err != nil {
		t.Fatal(err)
	}
	if got := reg.ETag("m"); got != "" {
		t.Fatalf("fresh tenant ETag %q, want empty", got)
	}
	reg.SetETag("m", `"v7"`)
	if got := reg.ETag("m"); got != `"v7"` {
		t.Fatalf("ETag %q, want %q", got, `"v7"`)
	}
	if got := reg.ETag("ghost"); got != "" {
		t.Fatalf("unknown tenant ETag %q, want empty", got)
	}
}
