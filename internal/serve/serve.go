// Package serve is the deployment layer of the reproduction: a concurrent
// batched inference service over the hardware-locked TPU path. The paper's
// trusted accelerator serves authorized end-users; this package makes that
// story operational — many clients issue Predict calls, a deadline-based
// micro-batcher coalesces them, and N worker shards execute them on the
// simulated locked hardware.
//
// Topology and ownership:
//
//   - One batcher goroutine drains a bounded request queue, coalescing up
//     to MaxBatch requests or waiting at most MaxWait after the first —
//     whichever comes first — before handing the batch to the shards.
//   - Each of the Shards worker goroutines owns a complete Accelerator:
//     its own compiled plan, activation workspace, quantization caches and
//     MMU counters. Nothing mutable is shared between shards (the model's
//     weights are read-only at inference), so the per-shard zero-allocation
//     invariant of the execution engine holds under full concurrency, and
//     each shard's workspace is sealed after warmup to enforce it.
//   - Results return over a per-request buffered channel; callers select
//     on it against their context, so cancellation never blocks a shard.
//
// Backpressure is a bounded queue: when it is full, Predict fails fast
// with ErrOverloaded rather than queueing unbounded work. Close drains
// every accepted request through the shards before returning.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hpnn/internal/core"
	"hpnn/internal/keys"
	"hpnn/internal/lockscheme"
	"hpnn/internal/schedule"
	"hpnn/internal/tensor"
	"hpnn/internal/tpu"
)

// ErrOverloaded is returned by Predict when the bounded request queue is
// full. Clients should back off and retry; the server sheds load instead of
// queueing unbounded work.
var ErrOverloaded = errors.New("serve: server overloaded, request queue full")

// ErrClosed is returned by Predict after Close has begun.
var ErrClosed = errors.New("serve: server closed")

// ErrRetry marks a transient routing failure in the multi-tenant registry —
// a request that kept landing on tenants mid-swap or mid-eviction. Like
// ErrOverloaded it travels as a retry-status response on the wire; clients
// should back off and resubmit.
var ErrRetry = errors.New("serve: tenant swapping, retry")

// Execution engines selectable via Config.Engine.
const (
	// EngineBatched executes each coalesced micro-batch in one call on the
	// accelerator's batched int8 tier (tpu.PredictBatchInto): quantization,
	// im2col and lock lowering amortize across the batch on a packed GEMM
	// kernel. Bitwise-equal to the golden engine, and the default.
	EngineBatched = "batched"
	// EngineGolden executes requests one at a time through the per-sample
	// simulator path (tpu.PredictSample). It is the golden reference the
	// batched tier is differentially pinned against, kept as a serving
	// backend for diff tests and benchmark baselines.
	EngineGolden = "golden"
)

// Config tunes the batching service. The zero value selects sensible
// defaults for every field.
type Config struct {
	// Shards is the number of worker shards, each owning a private
	// compiled accelerator. Default: GOMAXPROCS, capped at 8.
	Shards int
	// MaxBatch is the largest number of requests coalesced into one
	// dispatch. Default 8.
	MaxBatch int
	// MaxWait bounds how long the batcher holds an underfull batch after
	// its first request arrives. Default 200µs.
	MaxWait time.Duration
	// QueueDepth bounds the pending-request queue; a full queue makes
	// Predict fail with ErrOverloaded. Default 4·MaxBatch·Shards.
	QueueDepth int
	// Scheme selects the lock-scheme backend the shards lower (see package
	// lockscheme). Empty selects the model's own scheme stamp, so sealed
	// plans always carry the scheme the model was published under.
	Scheme string
	// Engine selects the execution engine: EngineBatched (default) runs
	// whole micro-batches on the int8 fast path, EngineGolden runs the
	// per-sample simulator. Answers are bitwise-identical either way.
	Engine string

	// testBatchHook, when set, runs on the worker goroutine before each
	// dispatched batch. Tests use it to stall the pipeline deterministically
	// (e.g. to force overload); never set in production.
	testBatchHook func()
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 200 * time.Microsecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch * c.Shards
	}
	if c.Engine == "" {
		c.Engine = EngineBatched
	}
	return c
}

// response is the terminal state of one request.
type response struct {
	class int
	err   error
}

// request is one in-flight Predict call. The done channel is buffered so a
// shard can always complete a request without blocking, even when the
// caller has already abandoned it via context cancellation.
type request struct {
	ctx   context.Context
	data  []float64 // the sample's backing values, valid until completion
	start time.Time
	done  chan response
}

// shard is one worker's private execution state: a full accelerator (plan,
// workspace, quantization caches) plus a reusable sample-view header and —
// for the batched engine — pre-sized gather buffers so dispatching a
// micro-batch performs no allocation.
type shard struct {
	acc  *tpu.Accelerator
	view tensor.Tensor

	bview tensor.Tensor
	live  []*request // requests gathered into the current dispatch
	batch []float64  // [MaxBatch·feat] contiguous sample gather buffer
	preds []int      // [MaxBatch] per-dispatch predictions
}

// Server is a concurrent batched inference service over the locked TPU
// path. Create with New, submit with Predict / PredictBatch, stop with
// Close. All methods are safe for concurrent use.
type Server struct {
	cfg   Config
	model *core.Model
	c     int // expected sample shape
	h, w  int
	feat  int

	mu     sync.RWMutex // guards closed against concurrent sends on in
	closed bool

	in      chan *request
	batches chan []*request
	wg      sync.WaitGroup

	shards []*shard

	reqPool   sync.Pool
	batchPool sync.Pool

	stats statsRec
}

// New builds a serving instance for one model on simulated locked hardware.
// Each shard gets its own accelerator bound to the same sealed key device
// and private schedule; plans compile eagerly and each shard runs (and then
// seals) a warmup inference so steady-state requests allocate nothing.
// dev may be nil to serve on commodity hardware without the HPNN key — the
// paper's attacker scenario, useful for differential experiments.
func New(m *core.Model, acfg tpu.Config, dev *keys.Device, sched *schedule.Schedule, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	schemeName := cfg.Scheme
	if schemeName == "" {
		schemeName = m.Scheme // sealed plans carry the model's published scheme
	}
	scheme, err := lockscheme.Get(schemeName)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.Engine != EngineBatched && cfg.Engine != EngineGolden {
		return nil, fmt.Errorf("serve: unknown engine %q (want %q or %q)", cfg.Engine, EngineBatched, EngineGolden)
	}
	s := &Server{
		cfg:   cfg,
		model: m,
		c:     m.Config.InC, h: m.Config.InH, w: m.Config.InW,
		feat:    m.Config.InC * m.Config.InH * m.Config.InW,
		in:      make(chan *request, cfg.QueueDepth),
		batches: make(chan []*request, cfg.Shards),
	}
	s.reqPool.New = func() any { return &request{done: make(chan response, 1)} }
	s.batchPool.New = func() any {
		b := make([]*request, 0, cfg.MaxBatch)
		return &b
	}
	// Warm every buffer a shard will touch in steady state, then seal: the
	// golden engine warms the per-sample path, the batched engine warms the
	// batch path at its maximum batch size (smaller partial batches reshape
	// within the sealed capacity).
	warm := tensor.New(s.c, s.h, s.w)
	warmBatch := tensor.New(cfg.MaxBatch, s.c, s.h, s.w)
	for i := 0; i < cfg.Shards; i++ {
		acc, err := tpu.NewAcceleratorFor(scheme, acfg, dev, sched)
		if err != nil {
			return nil, err
		}
		if err := acc.Compile(m); err != nil {
			return nil, err
		}
		sh := &shard{acc: acc}
		if cfg.Engine == EngineBatched {
			sh.live = make([]*request, cfg.MaxBatch)
			sh.batch = make([]float64, cfg.MaxBatch*s.feat)
			sh.preds = make([]int, cfg.MaxBatch)
			if err := acc.PredictBatchInto(sh.preds, m, warmBatch); err != nil {
				return nil, fmt.Errorf("serve: shard %d warmup: %w", i, err)
			}
		} else {
			if _, err := acc.PredictSample(m, warm); err != nil {
				return nil, fmt.Errorf("serve: shard %d warmup: %w", i, err)
			}
		}
		acc.Seal()
		acc.ResetStats() // warmup activity is not served traffic
		s.shards = append(s.shards, sh)
	}
	s.wg.Add(1)
	go s.batchLoop()
	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.workerLoop(sh)
	}
	return s, nil
}

// checkSample validates a single sample's shape against the model.
func (s *Server) checkSample(x *tensor.Tensor) error {
	if len(x.Shape) != 3 || x.Shape[0] != s.c || x.Shape[1] != s.h || x.Shape[2] != s.w {
		return fmt.Errorf("serve: sample shape %v, want [%d %d %d]", x.Shape, s.c, s.h, s.w)
	}
	return nil
}

// enqueue hands a request to the batcher, failing fast when the server is
// closed or the bounded queue is full. The read-lock pairs with Close's
// write-lock so a send never races the channel close.
func (s *Server) enqueue(req *request) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case s.in <- req:
		return nil
	default:
		s.stats.overloaded.Add(1)
		return ErrOverloaded
	}
}

func (s *Server) getReq(ctx context.Context, data []float64) *request {
	req := s.reqPool.Get().(*request)
	req.ctx = ctx
	req.data = data
	req.start = time.Now()
	return req
}

// putReq recycles a request whose response has been consumed (or that was
// never enqueued). Abandoned in-flight requests must NOT be recycled: the
// shard's eventual completion lands in the buffered channel, and reuse
// would deliver that stale response to an unrelated caller.
func (s *Server) putReq(req *request) {
	req.ctx, req.data = nil, nil
	s.reqPool.Put(req)
}

// Predict classifies one sample x ([C, H, W], matching the model's input)
// on the locked hardware, blocking until a shard completes it, the context
// is done, or the server sheds it. x.Data must stay untouched until Predict
// returns. The error is ErrOverloaded when the queue is full, ErrClosed
// after Close, or the context's error on cancellation.
func (s *Server) Predict(ctx context.Context, x *tensor.Tensor) (int, error) {
	if err := s.checkSample(x); err != nil {
		return -1, err
	}
	req := s.getReq(ctx, x.Data)
	if err := s.enqueue(req); err != nil {
		s.putReq(req)
		return -1, err
	}
	select {
	case r := <-req.done:
		s.putReq(req)
		if r.err != nil {
			return -1, r.err
		}
		return r.class, nil
	case <-ctx.Done():
		// In flight: the shard completes into the buffered channel and the
		// request object is left to the garbage collector.
		return -1, ctx.Err()
	}
}

// PredictBatch classifies a batch x ([N, C, H, W]) by submitting every
// sample through the micro-batcher and gathering the results in order. On
// any per-sample failure (overload, cancellation) the first error is
// returned; samples already enqueued still drain through the shards.
func (s *Server) PredictBatch(ctx context.Context, x *tensor.Tensor) ([]int, error) {
	if len(x.Shape) != 4 || x.Shape[1] != s.c || x.Shape[2] != s.h || x.Shape[3] != s.w {
		return nil, fmt.Errorf("serve: batch shape %v, want [N %d %d %d]", x.Shape, s.c, s.h, s.w)
	}
	n := x.Shape[0]
	reqs := make([]*request, 0, n)
	var firstErr error
	for i := 0; i < n; i++ {
		req := s.getReq(ctx, x.Data[i*s.feat:(i+1)*s.feat])
		if err := s.enqueue(req); err != nil {
			s.putReq(req)
			firstErr = err
			break
		}
		reqs = append(reqs, req)
	}
	out := make([]int, len(reqs))
	for i, req := range reqs {
		select {
		case r := <-req.done:
			out[i] = r.class
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
			s.putReq(req)
		case <-ctx.Done():
			if firstErr == nil {
				firstErr = ctx.Err()
			}
			// Abandoned in flight; not recycled (see putReq).
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// batchLoop is the micro-batcher: it blocks for the first request of a
// batch, then coalesces follow-ups until MaxBatch is reached or MaxWait
// has elapsed, whichever is first, and hands the batch to the shards.
func (s *Server) batchLoop() {
	defer s.wg.Done()
	defer close(s.batches)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerLive := false
	var cur []*request
	stopTimer := func() {
		if timerLive && !timer.Stop() {
			<-timer.C
		}
		timerLive = false
	}
	flush := func() {
		if len(cur) > 0 {
			s.stats.batches.Add(1)
			s.stats.batched.Add(uint64(len(cur)))
			s.batches <- cur
			cur = nil
		}
	}
	for {
		if cur == nil {
			req, ok := <-s.in
			if !ok {
				return
			}
			if err := req.ctx.Err(); err != nil {
				s.finish(req, -1, err)
				continue
			}
			cur = append((*s.batchPool.Get().(*[]*request))[:0], req)
			if len(cur) >= s.cfg.MaxBatch {
				flush()
				continue
			}
			timer.Reset(s.cfg.MaxWait)
			timerLive = true
			continue
		}
		select {
		case req, ok := <-s.in:
			if !ok {
				stopTimer()
				flush()
				return
			}
			if err := req.ctx.Err(); err != nil {
				s.finish(req, -1, err)
				continue
			}
			cur = append(cur, req)
			if len(cur) >= s.cfg.MaxBatch {
				stopTimer()
				flush()
			}
		case <-timer.C:
			timerLive = false
			flush()
		}
	}
}

// workerLoop executes dispatched batches on one shard. Requests whose
// context died while queued are completed with the context error without
// touching the hardware. The batched engine gathers the survivors into the
// shard's contiguous buffer and runs them as one call on the int8 tier;
// the golden engine runs them one at a time through the simulator.
func (s *Server) workerLoop(sh *shard) {
	defer s.wg.Done()
	golden := s.cfg.Engine == EngineGolden
	for b := range s.batches {
		if s.cfg.testBatchHook != nil {
			s.cfg.testBatchHook()
		}
		if golden {
			for _, req := range b {
				if err := req.ctx.Err(); err != nil {
					s.finish(req, -1, err)
					continue
				}
				x := tensor.ViewInto(&sh.view, req.data, s.c, s.h, s.w)
				class, err := sh.acc.PredictSample(s.model, x)
				s.finish(req, class, err)
			}
		} else {
			k := 0
			for _, req := range b {
				if err := req.ctx.Err(); err != nil {
					s.finish(req, -1, err)
					continue
				}
				copy(sh.batch[k*s.feat:(k+1)*s.feat], req.data)
				sh.live[k] = req
				k++
			}
			if k > 0 {
				x := tensor.ViewInto(&sh.bview, sh.batch[:k*s.feat], k, s.c, s.h, s.w)
				err := sh.acc.PredictBatchInto(sh.preds[:k], s.model, x)
				for i := 0; i < k; i++ {
					if err != nil {
						s.finish(sh.live[i], -1, err)
					} else {
						s.finish(sh.live[i], sh.preds[i], nil)
					}
					sh.live[i] = nil
				}
			}
		}
		b = b[:0]
		s.batchPool.Put(&b)
	}
}

// finish records the outcome and completes the request. The buffered done
// channel makes the send non-blocking even for abandoned requests.
func (s *Server) finish(req *request, class int, err error) {
	switch {
	case err == nil:
		s.stats.completed.Add(1)
		s.stats.recordLatency(time.Since(req.start))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.stats.canceled.Add(1)
	default:
		s.stats.errors.Add(1)
	}
	req.done <- response{class: class, err: err}
}

// Close stops accepting new requests, drains every already-accepted
// request through the shards, waits for the batcher and workers to exit
// and returns the final statistics. Close is idempotent.
func (s *Server) Close() Stats {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.in)
	}
	s.mu.Unlock()
	s.wg.Wait()
	return s.Stats()
}

// release drops the shards' compiled plans and activation workspaces,
// returning their memory to the garbage collector. Only valid after Close
// has drained the pipeline; the registry's eviction path (close + release)
// is the only caller. A released server stays closed — tenants build a
// fresh Server when they recompile.
func (s *Server) release() {
	for _, sh := range s.shards {
		sh.acc.Release()
		sh.batch, sh.preds, sh.live = nil, nil, nil
	}
}

// HardwareStats sums the simulated-hardware activity counters across all
// shards: total MACs, cycles and locked outputs of the served traffic.
func (s *Server) HardwareStats() tpu.Stats {
	var total tpu.Stats
	for _, sh := range s.shards {
		total.Add(sh.acc.Stats())
	}
	return total
}

// WorkspaceBytes reports the summed activation-workspace footprint of all
// shards — the serving memory cost beyond the model weights.
func (s *Server) WorkspaceBytes() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.acc.WorkspaceBytes()
	}
	return total
}

// --- statistics --------------------------------------------------------------

// latRing sizes the latency reservoir: percentiles are computed over the
// most recent latRing completed requests.
const latRing = 4096

type statsRec struct {
	completed  atomic.Uint64
	errors     atomic.Uint64
	canceled   atomic.Uint64
	overloaded atomic.Uint64
	batches    atomic.Uint64
	batched    atomic.Uint64

	latIdx atomic.Uint64
	lat    [latRing]atomic.Int64
}

func (r *statsRec) recordLatency(d time.Duration) {
	i := r.latIdx.Add(1) - 1
	r.lat[i%latRing].Store(int64(d))
}

// Stats is a snapshot of the service counters and latency percentiles.
type Stats struct {
	// Completed counts successfully answered requests; Errors counts
	// hardware/validation failures; Canceled counts requests whose context
	// died while queued or in flight; Overloaded counts shed requests.
	Completed, Errors, Canceled, Overloaded uint64
	// Batches is the number of dispatched micro-batches and MeanBatch the
	// average coalesced size.
	Batches   uint64
	MeanBatch float64
	// Latency percentiles over the most recent completed requests
	// (enqueue→completion, as observed by the shard).
	P50, P90, P99, Max time.Duration
}

// String renders the snapshot for CLI shutdown reports.
func (s Stats) String() string {
	return fmt.Sprintf(
		"served %d requests (%d errors, %d canceled, %d shed) in %d batches (mean %.2f)\nlatency p50 %v  p90 %v  p99 %v  max %v",
		s.Completed, s.Errors, s.Canceled, s.Overloaded, s.Batches, s.MeanBatch,
		s.P50, s.P90, s.P99, s.Max)
}

// Stats snapshots the current counters. Safe to call at any time, including
// while serving; percentiles cover the most recent latRing completions.
func (s *Server) Stats() Stats {
	st := Stats{
		Completed:  s.stats.completed.Load(),
		Errors:     s.stats.errors.Load(),
		Canceled:   s.stats.canceled.Load(),
		Overloaded: s.stats.overloaded.Load(),
		Batches:    s.stats.batches.Load(),
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(s.stats.batched.Load()) / float64(st.Batches)
	}
	n := int(s.stats.latIdx.Load())
	if n > latRing {
		n = latRing
	}
	if n == 0 {
		return st
	}
	lats := make([]int64, n)
	for i := 0; i < n; i++ {
		lats[i] = s.lat(i)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(n-1))
		return time.Duration(lats[i])
	}
	st.P50, st.P90, st.P99, st.Max = pct(0.50), pct(0.90), pct(0.99), time.Duration(lats[n-1])
	return st
}

func (s *Server) lat(i int) int64 { return s.stats.lat[i].Load() }
