package serve

// Wire protocol for cmd/hpnn-serve: little-endian length-prefixed frames
// over a byte stream (TCP). Deliberately minimal — no external encoders —
// and hardened against malformed input (FuzzDecodeRequest): a decoder
// must return an error, never panic or over-allocate, for arbitrary bytes.
//
//	frame    := len u32 | payload (len bytes, ≤ MaxFrameBytes)
//	request  := version u8 | rank u8 | dim u32 × rank | value f64 × prod(dims)
//	response := version u8 | status u8 | class u32            (status 0, ok)
//	          | version u8 | status u8 | mlen u16 | msg bytes  (status 1, error)

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hpnn/internal/tensor"
)

const (
	// WireVersion is the protocol version byte on every payload.
	WireVersion = 1
	// MaxFrameBytes bounds a frame payload; larger length prefixes are
	// rejected before any allocation.
	MaxFrameBytes = 16 << 20
	// maxRank bounds request tensor rank ([C,H,W] samples use 3).
	maxRank = 4

	statusOK  = 0
	statusErr = 1
)

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("serve: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// EncodeRequest writes x as one request frame.
func EncodeRequest(w io.Writer, x *tensor.Tensor) error {
	rank := len(x.Shape)
	if rank < 1 || rank > maxRank {
		return fmt.Errorf("serve: request rank %d out of [1,%d]", rank, maxRank)
	}
	payload := make([]byte, 2+4*rank+8*x.Len())
	payload[0] = WireVersion
	payload[1] = byte(rank)
	off := 2
	for _, d := range x.Shape {
		binary.LittleEndian.PutUint32(payload[off:], uint32(d))
		off += 4
	}
	for _, v := range x.Data {
		binary.LittleEndian.PutUint64(payload[off:], math.Float64bits(v))
		off += 8
	}
	return writeFrame(w, payload)
}

// DecodeRequest reads one request frame and returns the sample tensor. It
// validates version, rank, dimensions and payload length before allocating
// the tensor, and rejects non-finite values — junk the quantizer must never
// see.
func DecodeRequest(r io.Reader) (*tensor.Tensor, error) {
	payload, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if len(payload) < 2 {
		return nil, fmt.Errorf("serve: request payload of %d bytes truncated", len(payload))
	}
	if payload[0] != WireVersion {
		return nil, fmt.Errorf("serve: request version %d, want %d", payload[0], WireVersion)
	}
	rank := int(payload[1])
	if rank < 1 || rank > maxRank {
		return nil, fmt.Errorf("serve: request rank %d out of [1,%d]", rank, maxRank)
	}
	if len(payload) < 2+4*rank {
		return nil, fmt.Errorf("serve: request payload truncated in dimensions")
	}
	shape := make([]int, rank)
	elems := 1
	off := 2
	for i := range shape {
		d := binary.LittleEndian.Uint32(payload[off:])
		off += 4
		if d == 0 || d > MaxFrameBytes {
			return nil, fmt.Errorf("serve: request dimension %d invalid", d)
		}
		shape[i] = int(d)
		elems *= int(d)
		if elems > MaxFrameBytes/8 {
			return nil, fmt.Errorf("serve: request of %d elements exceeds frame limit", elems)
		}
	}
	if len(payload) != off+8*elems {
		return nil, fmt.Errorf("serve: request payload %d bytes, want %d for shape %v",
			len(payload), off+8*elems, shape)
	}
	x := tensor.New(shape...)
	for i := range x.Data {
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("serve: non-finite value at element %d", i)
		}
		x.Data[i] = v
	}
	return x, nil
}

// EncodeResponse writes one response frame: the predicted class, or the
// error's message when err is non-nil.
func EncodeResponse(w io.Writer, class int, err error) error {
	if err != nil {
		msg := err.Error()
		if len(msg) > math.MaxUint16 {
			msg = msg[:math.MaxUint16]
		}
		payload := make([]byte, 4+len(msg))
		payload[0], payload[1] = WireVersion, statusErr
		binary.LittleEndian.PutUint16(payload[2:], uint16(len(msg)))
		copy(payload[4:], msg)
		return writeFrame(w, payload)
	}
	var payload [6]byte
	payload[0], payload[1] = WireVersion, statusOK
	binary.LittleEndian.PutUint32(payload[2:], uint32(class))
	return writeFrame(w, payload[:])
}

// DecodeResponse reads one response frame, returning the predicted class or
// the server-reported error.
func DecodeResponse(r io.Reader) (int, error) {
	payload, err := readFrame(r)
	if err != nil {
		return -1, err
	}
	if len(payload) < 2 {
		return -1, fmt.Errorf("serve: response payload of %d bytes truncated", len(payload))
	}
	if payload[0] != WireVersion {
		return -1, fmt.Errorf("serve: response version %d, want %d", payload[0], WireVersion)
	}
	switch payload[1] {
	case statusOK:
		if len(payload) != 6 {
			return -1, fmt.Errorf("serve: ok response payload %d bytes, want 6", len(payload))
		}
		return int(int32(binary.LittleEndian.Uint32(payload[2:]))), nil
	case statusErr:
		if len(payload) < 4 {
			return -1, fmt.Errorf("serve: error response truncated")
		}
		mlen := int(binary.LittleEndian.Uint16(payload[2:]))
		if len(payload) != 4+mlen {
			return -1, fmt.Errorf("serve: error response payload %d bytes, want %d", len(payload), 4+mlen)
		}
		return -1, fmt.Errorf("serve: remote: %s", payload[4:])
	default:
		return -1, fmt.Errorf("serve: response status %d unknown", payload[1])
	}
}
