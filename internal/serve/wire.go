package serve

// Wire protocol for cmd/hpnn-serve: little-endian length-prefixed frames
// over a byte stream (TCP). Deliberately minimal — no external encoders —
// and hardened against malformed input (FuzzDecodeRequest): a decoder
// must return an error, never panic or over-allocate, for arbitrary bytes.
//
//	frame      := len u32 | payload (len bytes, ≤ MaxFrameBytes)
//	request v1 := 1 u8 | rank u8 | dim u32 × rank | value f64 × prod(dims)
//	request v2 := 2 u8 | mlen u8 | model bytes (mlen) | rank u8 | dim u32 × rank | value f64 × prod(dims)
//	response   := version u8 | status u8 | class u32             (status 0, ok)
//	            | version u8 | status u8 | mlen u16 | msg bytes  (status 1, error)
//	            | version u8 | status u8 | mlen u16 | msg bytes  (status 2, retry)
//
// Version 2 adds multi-tenant routing: the model-ID string names the tenant
// the sample is for. Version 1 frames remain valid and route to the
// server's configured default model, so pre-registry clients keep working
// unchanged. Status 2 (retry) marks transient failures — a shed request
// (ErrOverloaded) or a routing race during a hot-swap (ErrRetry) — that the
// client should back off and resubmit, as opposed to status 1 errors, which
// are definitive.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"hpnn/internal/tensor"
)

const (
	// WireVersion is the original single-model protocol version.
	WireVersion = 1
	// WireVersion2 is the multi-tenant protocol version: request frames
	// carry a model-ID string ahead of the sample.
	WireVersion2 = 2
	// MaxFrameBytes bounds a frame payload; larger length prefixes are
	// rejected before any allocation.
	MaxFrameBytes = 16 << 20
	// MaxModelIDLen bounds the v2 model-ID string (its length travels in
	// one byte).
	MaxModelIDLen = 255
	// maxRank bounds request tensor rank ([C,H,W] samples use 3).
	maxRank = 4

	statusOK    = 0
	statusErr   = 1
	statusRetry = 2
)

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("serve: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// EncodeRequest writes x as one version-1 request frame (no model ID; the
// server routes it to its default model).
func EncodeRequest(w io.Writer, x *tensor.Tensor) error {
	return encodeRequest(w, WireVersion, "", x)
}

// EncodeRequestTo writes x as one version-2 request frame addressed to the
// named model. An empty model ID is valid and routes to the server's
// default model, like a v1 frame.
func EncodeRequestTo(w io.Writer, model string, x *tensor.Tensor) error {
	return encodeRequest(w, WireVersion2, model, x)
}

func encodeRequest(w io.Writer, version byte, model string, x *tensor.Tensor) error {
	rank := len(x.Shape)
	if rank < 1 || rank > maxRank {
		return fmt.Errorf("serve: request rank %d out of [1,%d]", rank, maxRank)
	}
	if len(model) > MaxModelIDLen {
		return fmt.Errorf("serve: model ID of %d bytes exceeds limit %d", len(model), MaxModelIDLen)
	}
	head := 2
	if version == WireVersion2 {
		head = 3 + len(model)
	}
	payload := make([]byte, head+4*rank+8*x.Len())
	payload[0] = version
	off := 1
	if version == WireVersion2 {
		payload[1] = byte(len(model))
		copy(payload[2:], model)
		off = 2 + len(model)
	}
	payload[off] = byte(rank)
	off++
	for _, d := range x.Shape {
		binary.LittleEndian.PutUint32(payload[off:], uint32(d))
		off += 4
	}
	for _, v := range x.Data {
		binary.LittleEndian.PutUint64(payload[off:], math.Float64bits(v))
		off += 8
	}
	return writeFrame(w, payload)
}

// DecodeRequest reads one request frame (either version) and returns the
// sample tensor, discarding any model ID. Kept for single-model callers;
// routing servers use DecodeRequestModel.
func DecodeRequest(r io.Reader) (*tensor.Tensor, error) {
	x, _, err := DecodeRequestModel(r)
	return x, err
}

// DecodeRequestModel reads one request frame of either protocol version and
// returns the sample tensor plus the model ID the request routes to — ""
// for v1 frames and v2 frames with an empty ID, meaning the default model.
// It validates version, model-ID length, rank, dimensions and payload
// length before allocating the tensor, and rejects non-finite values — junk
// the quantizer must never see.
func DecodeRequestModel(r io.Reader) (*tensor.Tensor, string, error) {
	payload, err := readFrame(r)
	if err != nil {
		return nil, "", err
	}
	if len(payload) < 2 {
		return nil, "", fmt.Errorf("serve: request payload of %d bytes truncated", len(payload))
	}
	model := ""
	off := 1
	switch payload[0] {
	case WireVersion:
	case WireVersion2:
		mlen := int(payload[1])
		if len(payload) < 2+mlen+1 {
			return nil, "", fmt.Errorf("serve: request payload truncated in model ID (%d of %d bytes)",
				len(payload)-2, mlen)
		}
		model = string(payload[2 : 2+mlen])
		off = 2 + mlen
	default:
		return nil, "", fmt.Errorf("serve: request version %d, want %d or %d", payload[0], WireVersion, WireVersion2)
	}
	rank := int(payload[off])
	off++
	if rank < 1 || rank > maxRank {
		return nil, "", fmt.Errorf("serve: request rank %d out of [1,%d]", rank, maxRank)
	}
	if len(payload) < off+4*rank {
		return nil, "", fmt.Errorf("serve: request payload truncated in dimensions")
	}
	shape := make([]int, rank)
	elems := 1
	for i := range shape {
		d := binary.LittleEndian.Uint32(payload[off:])
		off += 4
		if d == 0 || d > MaxFrameBytes {
			return nil, "", fmt.Errorf("serve: request dimension %d invalid", d)
		}
		shape[i] = int(d)
		elems *= int(d)
		if elems > MaxFrameBytes/8 {
			return nil, "", fmt.Errorf("serve: request of %d elements exceeds frame limit", elems)
		}
	}
	if len(payload) != off+8*elems {
		return nil, "", fmt.Errorf("serve: request payload %d bytes, want %d for shape %v",
			len(payload), off+8*elems, shape)
	}
	x := tensor.New(shape...)
	for i := range x.Data {
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, "", fmt.Errorf("serve: non-finite value at element %d", i)
		}
		x.Data[i] = v
	}
	return x, model, nil
}

// EncodeResponse writes one response frame: the predicted class, or the
// error when err is non-nil. Transient conditions — a shed request
// (ErrOverloaded) or a hot-swap routing race (ErrRetry) — encode as status
// "retry" so clients know to back off and resubmit rather than fail.
func EncodeResponse(w io.Writer, class int, err error) error {
	if err != nil {
		status := byte(statusErr)
		if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrRetry) {
			status = statusRetry
		}
		msg := err.Error()
		if len(msg) > math.MaxUint16 {
			msg = msg[:math.MaxUint16]
		}
		payload := make([]byte, 4+len(msg))
		payload[0], payload[1] = WireVersion, status
		binary.LittleEndian.PutUint16(payload[2:], uint16(len(msg)))
		copy(payload[4:], msg)
		return writeFrame(w, payload)
	}
	var payload [6]byte
	payload[0], payload[1] = WireVersion, statusOK
	binary.LittleEndian.PutUint32(payload[2:], uint32(class))
	return writeFrame(w, payload[:])
}

// DecodeResponse reads one response frame, returning the predicted class or
// the server-reported error. A retry-status response decodes to an error
// wrapping ErrOverloaded, so clients test errors.Is(err, ErrOverloaded) and
// back off.
func DecodeResponse(r io.Reader) (int, error) {
	payload, err := readFrame(r)
	if err != nil {
		return -1, err
	}
	if len(payload) < 2 {
		return -1, fmt.Errorf("serve: response payload of %d bytes truncated", len(payload))
	}
	if payload[0] != WireVersion {
		return -1, fmt.Errorf("serve: response version %d, want %d", payload[0], WireVersion)
	}
	switch payload[1] {
	case statusOK:
		if len(payload) != 6 {
			return -1, fmt.Errorf("serve: ok response payload %d bytes, want 6", len(payload))
		}
		return int(int32(binary.LittleEndian.Uint32(payload[2:]))), nil
	case statusErr, statusRetry:
		if len(payload) < 4 {
			return -1, fmt.Errorf("serve: error response truncated")
		}
		mlen := int(binary.LittleEndian.Uint16(payload[2:]))
		if len(payload) != 4+mlen {
			return -1, fmt.Errorf("serve: error response payload %d bytes, want %d", len(payload), 4+mlen)
		}
		if payload[1] == statusRetry {
			return -1, fmt.Errorf("serve: remote: %s (back off and retry): %w", payload[4:], ErrOverloaded)
		}
		return -1, fmt.Errorf("serve: remote: %s", payload[4:])
	default:
		return -1, fmt.Errorf("serve: response status %d unknown", payload[1])
	}
}
