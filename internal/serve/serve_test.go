package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpnn/internal/core"
	"hpnn/internal/keys"
	"hpnn/internal/lockscheme"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
	"hpnn/internal/tensor"
	"hpnn/internal/tpu"
)

// testFixture is a locked model plus everything needed to serve it and to
// check served answers against a single-call reference device.
type testFixture struct {
	model *core.Model
	dev   *keys.Device
	sched *schedule.Schedule
	x     *tensor.Tensor // [n, C, H, W] random inputs
	want  []int          // single-call reference predictions
	feat  int
}

// newFixture builds a small random locked MLP (8×8, 4 classes) with n
// reference inputs. Random weights are fine for differential checks: the
// quantized path is deterministic, so serve and single-call must agree
// bit-for-bit regardless of training.
func newFixture(t testing.TB, arch core.Arch, hw, n int, seed uint64) *testFixture {
	t.Helper()
	m := core.MustModel(core.Config{Arch: arch, InC: 1, InH: hw, InW: hw, Classes: 4, Seed: seed})
	key := keys.Generate(rng.New(seed + 1))
	sched := schedule.New(keys.KeyBits, seed+2)
	m.ApplyRawKey(key, sched)
	dev := keys.NewDevice("user", key)

	x := tensor.New(n, 1, hw, hw)
	x.FillUniform(rng.New(seed+3), -1, 1)

	ref, err := tpu.NewAccelerator(tpu.DefaultConfig(), dev, sched)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Predict(m, x)
	if err != nil {
		t.Fatal(err)
	}
	return &testFixture{model: m, dev: dev, sched: sched, x: x, want: want, feat: hw * hw}
}

// newSchemeFixture is newFixture through a named lock scheme's full owner
// lifecycle (instrument → publish), with the single-call reference running
// on an accelerator lowering that scheme. It parameterizes the serve
// differential and bench suites over the whole lockscheme registry.
func newSchemeFixture(t testing.TB, schemeName string, arch core.Arch, hw, n int, seed uint64) *testFixture {
	t.Helper()
	scheme, err := lockscheme.Get(schemeName)
	if err != nil {
		t.Fatal(err)
	}
	m := core.MustModel(core.Config{Arch: arch, InC: 1, InH: hw, InW: hw, Classes: 4, Seed: seed})
	key := keys.Generate(rng.New(seed + 1))
	sched := schedule.New(keys.KeyBits, seed+2)
	dev := keys.NewDevice("user", key)
	if err := scheme.InstrumentTraining(m, dev, sched); err != nil {
		t.Fatal(err)
	}
	if err := scheme.Publish(m, dev, sched); err != nil {
		t.Fatal(err)
	}

	x := tensor.New(n, 1, hw, hw)
	x.FillUniform(rng.New(seed+3), -1, 1)

	ref, err := tpu.NewAcceleratorFor(scheme, tpu.DefaultConfig(), dev, sched)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Predict(m, x)
	if err != nil {
		t.Fatal(err)
	}
	return &testFixture{model: m, dev: dev, sched: sched, x: x, want: want, feat: hw * hw}
}

func (f *testFixture) server(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(f.model, tpu.DefaultConfig(), f.dev, f.sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sample returns a [C, H, W] view of reference input i.
func (f *testFixture) sample(i int) *tensor.Tensor {
	return tensor.FromSlice(f.x.Data[i*f.feat:(i+1)*f.feat], 1, f.x.Shape[2], f.x.Shape[3])
}

func TestServePredictMatchesReference(t *testing.T) {
	f := newFixture(t, core.MLP, 8, 16, 100)
	s := f.server(t, Config{Shards: 2})
	defer s.Close()
	for i := 0; i < 16; i++ {
		got, err := s.Predict(context.Background(), f.sample(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != f.want[i] {
			t.Fatalf("sample %d: served class %d, reference %d", i, got, f.want[i])
		}
	}
}

func TestServeRejectsBadShape(t *testing.T) {
	f := newFixture(t, core.MLP, 8, 1, 110)
	s := f.server(t, Config{Shards: 1})
	defer s.Close()
	if _, err := s.Predict(context.Background(), tensor.New(1, 4, 4)); err == nil {
		t.Fatal("wrong sample shape accepted")
	}
	if _, err := s.PredictBatch(context.Background(), tensor.New(2, 1, 4, 4)); err == nil {
		t.Fatal("wrong batch shape accepted")
	}
}

// TestServeHammer drives the batcher from 32 goroutines with mixed
// single-sample and batch submissions plus mid-flight cancellations, and
// asserts every request is answered exactly once with the reference class.
// Run under -race (scripts/check.sh runs it -count=3).
func TestServeHammer(t *testing.T) {
	const n = 16
	f := newFixture(t, core.MLP, 8, n, 120)
	s := f.server(t, Config{Shards: 4, MaxBatch: 8, MaxWait: 100 * time.Microsecond, QueueDepth: 4096})
	defer s.Close()

	const goroutines = 32
	const perG = 30
	var answered, canceled atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(200 + g))
			for i := 0; i < perG; i++ {
				switch i % 3 {
				case 0: // single sample
					idx := int(r.Uint64() % n)
					got, err := s.Predict(context.Background(), f.sample(idx))
					if err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					if got != f.want[idx] {
						t.Errorf("goroutine %d sample %d: class %d, want %d", g, idx, got, f.want[idx])
						return
					}
					answered.Add(1)
				case 1: // batch of 1..5 samples starting at a random offset
					bn := 1 + int(r.Uint64()%5)
					lo := int(r.Uint64() % uint64(n-bn+1))
					bx := tensor.FromSlice(f.x.Data[lo*f.feat:(lo+bn)*f.feat], bn, 1, 8, 8)
					got, err := s.PredictBatch(context.Background(), bx)
					if err != nil {
						t.Errorf("goroutine %d batch: %v", g, err)
						return
					}
					for j := range got {
						if got[j] != f.want[lo+j] {
							t.Errorf("goroutine %d batch sample %d: class %d, want %d",
								g, lo+j, got[j], f.want[lo+j])
							return
						}
					}
					answered.Add(uint64(bn))
				case 2: // cancellation racing the in-flight request
					ctx, cancel := context.WithCancel(context.Background())
					idx := int(r.Uint64() % n)
					go cancel()
					got, err := s.Predict(ctx, f.sample(idx))
					switch {
					case err == nil:
						if got != f.want[idx] {
							t.Errorf("goroutine %d canceled-race sample %d: class %d, want %d",
								g, idx, got, f.want[idx])
							return
						}
						answered.Add(1)
					case errors.Is(err, context.Canceled):
						canceled.Add(1)
					default:
						t.Errorf("goroutine %d canceled-race: unexpected error %v", g, err)
						return
					}
					cancel()
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Close()
	if st.Overloaded != 0 {
		t.Fatalf("queue sized for the load yet %d requests shed", st.Overloaded)
	}
	// Every submission got exactly one outcome; the server's own counters
	// must agree with the client-side tally (completed answers the server
	// recorded for abandoned requests are counted in st.Completed but not in
	// answered, so the server total can only exceed the client tally by the
	// number of cancellations).
	if st.Completed < answered.Load() {
		t.Fatalf("server completed %d < client-observed %d", st.Completed, answered.Load())
	}
	if st.Completed+st.Canceled < answered.Load()+canceled.Load() {
		t.Fatalf("server outcomes %d+%d lost requests (client saw %d+%d)",
			st.Completed, st.Canceled, answered.Load(), canceled.Load())
	}
}

// TestServeCloseDuringLoad closes the server while 16 goroutines are
// submitting: every Predict must return (a class or ErrClosed — nothing
// may hang), accepted requests must drain, and Close must not deadlock.
func TestServeCloseDuringLoad(t *testing.T) {
	const n = 8
	f := newFixture(t, core.MLP, 8, n, 130)
	s := f.server(t, Config{Shards: 2, MaxBatch: 4, MaxWait: 50 * time.Microsecond, QueueDepth: 1024})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var served, rejected atomic.Uint64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := (g + i) % n
				got, err := s.Predict(context.Background(), f.sample(idx))
				switch {
				case err == nil:
					if got != f.want[idx] {
						t.Errorf("sample %d: class %d, want %d", idx, got, f.want[idx])
						return
					}
					served.Add(1)
				case errors.Is(err, ErrClosed):
					rejected.Add(1)
					return
				case errors.Is(err, ErrOverloaded):
					// acceptable under this much load; retry
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond) // let load build

	closed := make(chan Stats, 1)
	go func() { closed <- s.Close() }()
	select {
	case st := <-closed:
		close(stop)
		wg.Wait()
		if st.Completed == 0 {
			t.Fatal("no requests served before close")
		}
		if st.Completed < served.Load() {
			t.Fatalf("server counted %d completions, clients observed %d", st.Completed, served.Load())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked under load")
	}

	if _, err := s.Predict(context.Background(), f.sample(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Predict returned %v, want ErrClosed", err)
	}
	// Idempotent close.
	s.Close()
}

// TestServeQueuedCancellation cancels contexts of requests sitting in the
// queue behind a held batcher window and checks they resolve with the
// context error while later traffic still flows.
func TestServeQueuedCancellation(t *testing.T) {
	const n = 8
	f := newFixture(t, core.MLP, 8, n, 140)
	// One shard and a long MaxWait so requests linger in the batch window.
	s := f.server(t, Config{Shards: 1, MaxBatch: 64, MaxWait: 20 * time.Millisecond, QueueDepth: 256})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Predict(ctx, f.sample(i%n))
		}(i)
	}
	time.Sleep(2 * time.Millisecond) // requests now queued or in the window
	cancel()
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("request %d: unexpected error %v", i, err)
		}
	}
	// The server keeps serving after the cancellation storm.
	got, err := s.Predict(context.Background(), f.sample(0))
	if err != nil {
		t.Fatal(err)
	}
	if got != f.want[0] {
		t.Fatalf("post-cancel class %d, want %d", got, f.want[0])
	}
}

// TestServeBackpressure stalls the single shard (via the test batch hook)
// so the pipeline's total capacity is exactly known — one batch in the
// worker, Shards batches buffered, one batch held by the blocked flush,
// QueueDepth queued — floods past it, and requires typed overload errors
// rather than unbounded buffering. Then it releases the shard and verifies
// recovery. The hook makes this deterministic even on GOMAXPROCS=1, where
// a free-running worker drains the queue faster than a flood can fill it.
func TestServeBackpressure(t *testing.T) {
	const n = 4
	f := newFixture(t, core.MLP, 8, n, 150)

	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	cfg := Config{Shards: 1, MaxBatch: 1, MaxWait: 50 * time.Microsecond, QueueDepth: 1}
	cfg.testBatchHook = func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-gate
	}
	s := f.server(t, cfg)
	defer s.Close()

	// With MaxBatch=1 every request is its own batch, so while the worker is
	// parked in the hook the pipeline holds at most: 1 (in the worker) +
	// 1 (batches buffer, cap=Shards) + 1 (batcher's flush blocked mid-send) +
	// 1 (queue, cap=QueueDepth) = 4 requests. Everything beyond must shed.
	const capacity = 4
	const flood = 12

	var overloaded, served atomic.Uint64
	var wg sync.WaitGroup
	submit := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Predict(context.Background(), f.sample(i%n))
			switch {
			case errors.Is(err, ErrOverloaded):
				overloaded.Add(1)
			case err == nil:
				served.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}

	submit(0)
	select {
	case <-entered: // the shard is now provably parked
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up the first request")
	}
	for i := 1; i < flood; i++ {
		submit(i)
	}
	// The stalled pipeline absorbs at most capacity-1 more requests, so at
	// least flood-capacity goroutines must observe ErrOverloaded.
	deadline := time.Now().Add(10 * time.Second)
	for overloaded.Load() < flood-capacity {
		if time.Now().After(deadline) {
			t.Fatalf("stalled pipeline of capacity %d shed only %d of %d requests",
				capacity, overloaded.Load(), flood)
		}
		time.Sleep(100 * time.Microsecond)
	}

	close(gate) // release the shard; absorbed requests drain
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no request survived the flood")
	}
	if served.Load() > capacity {
		t.Fatalf("pipeline of capacity %d served %d flood requests", capacity, served.Load())
	}
	if got := s.Stats().Overloaded; got != overloaded.Load() {
		t.Fatalf("server counted %d shed requests, clients saw %d", got, overloaded.Load())
	}
	// Recovery: a lone request goes straight through.
	if _, err := s.Predict(context.Background(), f.sample(0)); err != nil {
		t.Fatalf("server did not recover after overload: %v", err)
	}
}

// TestServeBatchCoalescing checks the micro-batcher actually coalesces:
// concurrent submissions under a generous window must produce fewer
// dispatches than requests.
func TestServeBatchCoalescing(t *testing.T) {
	const n = 16
	f := newFixture(t, core.MLP, 8, n, 160)
	s := f.server(t, Config{Shards: 2, MaxBatch: 8, MaxWait: 5 * time.Millisecond, QueueDepth: 1024})

	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Predict(context.Background(), f.sample(i%n)); err != nil {
				t.Errorf("predict: %v", err)
			}
		}(i)
	}
	wg.Wait()
	st := s.Close()
	if st.Completed != 64 {
		t.Fatalf("completed %d of 64", st.Completed)
	}
	if st.Batches >= 64 {
		t.Fatalf("64 requests dispatched as %d batches — no coalescing", st.Batches)
	}
	if st.MeanBatch <= 1 {
		t.Fatalf("mean batch %.2f, want > 1", st.MeanBatch)
	}
}

func TestServeStatsString(t *testing.T) {
	f := newFixture(t, core.MLP, 8, 2, 170)
	s := f.server(t, Config{Shards: 1})
	if _, err := s.Predict(context.Background(), f.sample(0)); err != nil {
		t.Fatal(err)
	}
	st := s.Close()
	if st.P50 <= 0 || st.Max < st.P50 {
		t.Fatalf("implausible latency percentiles: %+v", st)
	}
	if s.HardwareStats().MACs == 0 {
		t.Fatal("served traffic recorded no MMU activity")
	}
	if s.WorkspaceBytes() == 0 {
		t.Fatal("no workspace footprint reported")
	}
	if str := st.String(); str == "" {
		t.Fatal("empty stats rendering")
	}
}
