//go:build race

package serve

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumented runtime allocates on channel operations and
// would distort the allocation pin.
const raceEnabled = true
