// Package cryptobase implements the cryptographic protection baseline the
// paper argues against in §II: encrypting a model's weight parameters with
// a provably-secure cipher before publication, with authorized users
// decrypting at load time.
//
// The package exists to quantify the paper's qualitative claim that
// encryption of millions of parameters is a heavyweight alternative to
// HPNN's zero-cycle, 4096-gate locking: the hpnn-bench crypto experiment
// measures AES-CTR encrypt/decrypt latency across model sizes and compares
// it with the (free) lock path.
package cryptobase

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// KeySize is the AES-256 key size in bytes.
const KeySize = 32

// EncryptParams encrypts a parameter vector with AES-256-CTR. The returned
// ciphertext embeds the 16-byte IV as its prefix.
func EncryptParams(params []float64, key []byte, iv []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cryptobase: %w", err)
	}
	if len(iv) != aes.BlockSize {
		return nil, fmt.Errorf("cryptobase: IV must be %d bytes, got %d", aes.BlockSize, len(iv))
	}
	plain := make([]byte, 8*len(params))
	for i, v := range params {
		binary.LittleEndian.PutUint64(plain[8*i:], math.Float64bits(v))
	}
	out := make([]byte, aes.BlockSize+len(plain))
	copy(out, iv)
	cipher.NewCTR(block, iv).XORKeyStream(out[aes.BlockSize:], plain)
	return out, nil
}

// DecryptParams reverses EncryptParams.
func DecryptParams(ciphertext []byte, key []byte) ([]float64, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cryptobase: %w", err)
	}
	if len(ciphertext) < aes.BlockSize || (len(ciphertext)-aes.BlockSize)%8 != 0 {
		return nil, fmt.Errorf("cryptobase: malformed ciphertext of %d bytes", len(ciphertext))
	}
	iv := ciphertext[:aes.BlockSize]
	body := ciphertext[aes.BlockSize:]
	plain := make([]byte, len(body))
	cipher.NewCTR(block, iv).XORKeyStream(plain, body)
	params := make([]float64, len(plain)/8)
	for i := range params {
		params[i] = math.Float64frombits(binary.LittleEndian.Uint64(plain[8*i:]))
	}
	return params, nil
}

// OverheadReport compares the per-inference-session cost of the encryption
// baseline against HPNN locking for a given parameter count.
type OverheadReport struct {
	Params int
	Bytes  int
	// Encrypt and Decrypt are the AES-256-CTR latencies. Decrypt is the
	// cost every authorized load pays before the first inference.
	Encrypt time.Duration
	Decrypt time.Duration
	// HPNNExtraCycles is the inference-time cycle overhead of HPNN's
	// in-datapath locking (always 0) and HPNNExtraGates its area cost —
	// the lightweight alternative's entire price.
	HPNNExtraCycles uint64
	HPNNExtraGates  uint64
}

// MeasureOverhead generates paramCount pseudo-parameters, encrypts and
// decrypts them, and reports wall-clock costs alongside HPNN's constants.
func MeasureOverhead(paramCount int, key []byte, iv []byte) (OverheadReport, error) {
	params := make([]float64, paramCount)
	for i := range params {
		params[i] = float64(i%1000) * 1e-3
	}
	start := time.Now()
	ct, err := EncryptParams(params, key, iv)
	if err != nil {
		return OverheadReport{}, err
	}
	encDur := time.Since(start)

	start = time.Now()
	back, err := DecryptParams(ct, key)
	if err != nil {
		return OverheadReport{}, err
	}
	decDur := time.Since(start)
	if len(back) != paramCount {
		return OverheadReport{}, fmt.Errorf("cryptobase: round-trip lost parameters")
	}
	return OverheadReport{
		Params:          paramCount,
		Bytes:           8 * paramCount,
		Encrypt:         encDur,
		Decrypt:         decDur,
		HPNNExtraCycles: 0,
		HPNNExtraGates:  4096, // 256 accumulators × 16 XOR gates
	}, nil
}
