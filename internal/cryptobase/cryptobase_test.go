package cryptobase

import (
	"bytes"
	"testing"
	"testing/quick"

	"hpnn/internal/rng"
)

func testKey() []byte {
	k := make([]byte, KeySize)
	for i := range k {
		k[i] = byte(i * 7)
	}
	return k
}

func testIV() []byte {
	iv := make([]byte, 16)
	for i := range iv {
		iv[i] = byte(255 - i)
	}
	return iv
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw % 2000)
		params := make([]float64, n)
		r := rng.New(seed)
		for i := range params {
			params[i] = r.Norm()
		}
		ct, err := EncryptParams(params, testKey(), testIV())
		if err != nil {
			return false
		}
		back, err := DecryptParams(ct, testKey())
		if err != nil {
			return false
		}
		if len(back) != n {
			return false
		}
		for i := range params {
			if params[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCiphertextHidesParams(t *testing.T) {
	params := make([]float64, 256)
	for i := range params {
		params[i] = 1.0
	}
	ct, err := EncryptParams(params, testKey(), testIV())
	if err != nil {
		t.Fatal(err)
	}
	// Constant plaintext must not yield repeating ciphertext blocks (CTR).
	if bytes.Equal(ct[16:32], ct[32:48]) {
		t.Fatal("identical plaintext blocks produced identical ciphertext blocks")
	}
}

func TestWrongKeyGarbles(t *testing.T) {
	params := []float64{1, 2, 3, 4}
	ct, _ := EncryptParams(params, testKey(), testIV())
	wrong := testKey()
	wrong[0] ^= 0xFF
	back, err := DecryptParams(ct, wrong)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range params {
		if back[i] != params[i] {
			same = false
		}
	}
	if same {
		t.Fatal("wrong key decrypted correctly")
	}
}

func TestBadInputsRejected(t *testing.T) {
	if _, err := EncryptParams(nil, []byte("short"), testIV()); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := EncryptParams(nil, testKey(), []byte("short")); err == nil {
		t.Fatal("short IV accepted")
	}
	if _, err := DecryptParams([]byte("tiny"), testKey()); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
	if _, err := DecryptParams(make([]byte, 16+12), testKey()); err == nil {
		t.Fatal("misaligned ciphertext accepted")
	}
}

func TestMeasureOverhead(t *testing.T) {
	rep, err := MeasureOverhead(10000, testKey(), testIV())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Params != 10000 || rep.Bytes != 80000 {
		t.Fatalf("report sizes wrong: %+v", rep)
	}
	if rep.Encrypt <= 0 || rep.Decrypt <= 0 {
		t.Fatal("durations not measured")
	}
	if rep.HPNNExtraCycles != 0 || rep.HPNNExtraGates != 4096 {
		t.Fatal("HPNN constants wrong")
	}
}
