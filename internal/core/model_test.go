package core

import (
	"math"
	"testing"

	"hpnn/internal/dataset"
	"hpnn/internal/keys"
	"hpnn/internal/nn"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
	"hpnn/internal/tensor"
)

// TestLockedNeuronCountsMatchTableI verifies that at native input sizes and
// WidthScale=1 the architectures have exactly the locked-neuron counts the
// paper reports in Table I.
func TestLockedNeuronCountsMatchTableI(t *testing.T) {
	cases := []struct {
		arch          Arch
		c, h, w, want int
	}{
		{CNN1, 1, 28, 28, 4352},
		{CNN2, 3, 32, 32, 198144},
		{CNN3, 3, 32, 32, 29696},
	}
	for _, tc := range cases {
		m := MustModel(Config{Arch: tc.arch, InC: tc.c, InH: tc.h, InW: tc.w, Seed: 1})
		if got := m.LockedNeurons(); got != tc.want {
			t.Fatalf("%s: %d locked neurons, want %d (Table I)", tc.arch, got, tc.want)
		}
	}
}

func TestArchitectureLayerInventory(t *testing.T) {
	// CNN1: 2 C, 2 MP, 2 ReLU, 1 FC per Table I.
	m := MustModel(Config{Arch: CNN1, InC: 1, InH: 28, InW: 28, Seed: 1})
	var convs, pools, relus, fcs int
	for _, l := range m.Net.Layers {
		switch l.(type) {
		case *nn.Conv2D:
			convs++
		case *nn.MaxPool:
			pools++
		case *nn.ReLU:
			relus++
		case *nn.Dense:
			fcs++
		}
	}
	if convs != 2 || pools != 2 || relus != 2 || fcs != 1 {
		t.Fatalf("CNN1 inventory C=%d MP=%d ReLU=%d FC=%d, want 2/2/2/1", convs, pools, relus, fcs)
	}
}

func TestResNet18Structure(t *testing.T) {
	m := MustModel(Config{Arch: ResNet18, InC: 1, InH: 16, InW: 16, WidthScale: 0.125, Seed: 2})
	// 1 stem lock + 8 blocks × 2 locks each.
	if got := len(m.Locks()); got != 17 {
		t.Fatalf("ResNet18 has %d locks, want 17", got)
	}
	blocks := 0
	for _, l := range m.Net.Layers {
		if _, ok := l.(*nn.Residual); ok {
			blocks++
		}
	}
	if blocks != 8 {
		t.Fatalf("ResNet18 has %d residual blocks, want 8", blocks)
	}
	// Forward/backward smoke at reduced scale.
	x := tensor.New(2, 1, 16, 16)
	x.FillNorm(rng.New(3), 0, 1)
	out := m.Net.Forward(x, true)
	if out.Shape[0] != 2 || out.Shape[1] != 10 {
		t.Fatalf("ResNet18 output shape %v", out.Shape)
	}
	loss := nn.SoftmaxCrossEntropy{}
	_, g := loss.Loss(out, []int{0, 1})
	m.Net.Backward(g)
}

func TestUnknownArchRejected(t *testing.T) {
	if _, err := NewModel(Config{Arch: "vgg", InC: 1, InH: 8, InW: 8}); err == nil {
		t.Fatal("unknown architecture accepted")
	}
	if _, err := NewModel(Config{Arch: CNN1, InC: 0, InH: 8, InW: 8}); err == nil {
		t.Fatal("invalid input dims accepted")
	}
}

func TestApplyKeyDeterministicAndKeyed(t *testing.T) {
	cfg := Config{Arch: MLP, InC: 1, InH: 8, InW: 8, Seed: 4}
	sched := schedule.New(keys.KeyBits, 99)
	k1 := keys.Generate(rng.New(1))
	k2 := keys.Generate(rng.New(2))

	m1 := MustModel(cfg)
	m1.ApplyRawKey(k1, sched)
	m2 := MustModel(cfg)
	m2.ApplyRawKey(k1, sched)
	m3 := MustModel(cfg)
	m3.ApplyRawKey(k2, sched)

	b1, b2, b3 := m1.KeyBits(), m2.KeyBits(), m3.KeyBits()
	same12, same13 := 0, 0
	for i := range b1 {
		if b1[i] == b2[i] {
			same12++
		}
		if b1[i] == b3[i] {
			same13++
		}
	}
	if same12 != len(b1) {
		t.Fatal("same key + schedule must give identical lock bits")
	}
	if same13 > len(b1)*3/4 {
		t.Fatalf("different keys agree on %d/%d lock bits", same13, len(b1))
	}
}

func TestApplyKeyScheduleSecrecy(t *testing.T) {
	cfg := Config{Arch: MLP, InC: 1, InH: 8, InW: 8, Seed: 4}
	k := keys.Generate(rng.New(1))
	m1 := MustModel(cfg)
	m1.ApplyRawKey(k, schedule.New(keys.KeyBits, 1))
	m2 := MustModel(cfg)
	m2.ApplyRawKey(k, schedule.New(keys.KeyBits, 2))
	b1, b2 := m1.KeyBits(), m2.KeyBits()
	same := 0
	for i := range b1 {
		if b1[i] == b2[i] {
			same++
		}
	}
	if same == len(b1) {
		t.Fatal("schedule seed has no effect on lock bits — scheduling is not private")
	}
}

func TestCloneWeightsTo(t *testing.T) {
	cfg := Config{Arch: CNN1, InC: 1, InH: 16, InW: 16, WidthScale: 0.5, Seed: 5}
	src := MustModel(cfg)
	dst := MustModel(Config{Arch: CNN1, InC: 1, InH: 16, InW: 16, WidthScale: 0.5, Seed: 77})
	if err := src.CloneWeightsTo(dst); err != nil {
		t.Fatal(err)
	}
	// With identical (disengaged) locks the two models must agree.
	src.DisengageLocks()
	dst.DisengageLocks()
	x := tensor.New(3, 1, 16, 16)
	x.FillNorm(rng.New(6), 0, 1)
	a := src.Net.Forward(x, false)
	b := dst.Net.Forward(x, false)
	if !tensor.Equal(a, b, 1e-12) {
		t.Fatal("cloned weights disagree on forward pass")
	}
}

func TestCloneWeightsMismatch(t *testing.T) {
	a := MustModel(Config{Arch: MLP, InC: 1, InH: 8, InW: 8, Seed: 1})
	b := MustModel(Config{Arch: MLP, InC: 1, InH: 8, InW: 8, WidthScale: 2, Seed: 1})
	if err := a.CloneWeightsTo(b); err == nil {
		t.Fatal("mismatched architectures accepted")
	}
}

func TestPredictBatchBoundaryInvariance(t *testing.T) {
	m := MustModel(Config{Arch: MLP, InC: 1, InH: 8, InW: 8, Seed: 7})
	x := tensor.New(13, 1, 8, 8)
	x.FillNorm(rng.New(8), 0, 1)
	a := m.Predict(x, 64)
	b := m.Predict(x, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("predictions depend on batch size")
		}
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := MustModel(Config{Arch: MLP, InC: 1, InH: 8, InW: 8, Seed: 7})
	if m.Accuracy(tensor.New(0, 1, 8, 8), nil, 8) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

// TestTheorem1 reproduces the paper's Theorem 1: for a single-layer
// fully-connected network initialized with all-zero weights and trained
// with the key-dependent delta rule, the weight vectors learned under
// opposite lock factors are exact negations: w(L=-1) = -w(L=+1), and both
// networks produce identical outputs.
func TestTheorem1(t *testing.T) {
	build := func(bit byte) (*nn.Network, *nn.Dense, *nn.Lock) {
		d := nn.NewDense(6, 3) // zero-initialized
		lock := nn.NewLock("t1", 3)
		bits := []byte{bit, bit, bit}
		lock.SetBits(bits)
		return nn.NewNetwork(d, lock, nn.NewSigmoid()), d, lock
	}
	netPos, dPos, _ := build(0)
	netNeg, dNeg, _ := build(1)

	r := rng.New(9)
	mse := nn.MSE{}
	opt1 := nn.NewSGD(0.1)
	opt2 := nn.NewSGD(0.1)
	for ep := 0; ep < 25; ep++ {
		x := tensor.New(4, 6)
		x.FillNorm(r, 0, 1)
		target := tensor.New(4, 3)
		target.FillUniform(r, 0, 1)

		out1 := netPos.Forward(x, true)
		_, g1 := mse.Loss(out1, target)
		netPos.Backward(g1)
		opt1.Step(netPos.Params())

		out2 := netNeg.Forward(x, true)
		_, g2 := mse.Loss(out2, target)
		netNeg.Backward(g2)
		opt2.Step(netNeg.Params())
	}
	for i := range dPos.W.Value.Data {
		if math.Abs(dPos.W.Value.Data[i]+dNeg.W.Value.Data[i]) > 1e-9 {
			t.Fatalf("Theorem 1 violated at weight %d: %v vs %v",
				i, dPos.W.Value.Data[i], dNeg.W.Value.Data[i])
		}
	}
	for i := range dPos.B.Value.Data {
		if math.Abs(dPos.B.Value.Data[i]+dNeg.B.Value.Data[i]) > 1e-9 {
			t.Fatalf("Theorem 1 violated at bias %d", i)
		}
	}
	// Identical predictions.
	x := tensor.New(5, 6)
	x.FillNorm(r, 0, 1)
	o1 := netPos.Forward(x, false)
	o2 := netNeg.Forward(x, false)
	if !tensor.Equal(o1, o2, 1e-9) {
		t.Fatal("Theorem 1: equivalent models disagree on outputs")
	}
}

// TestLemma1 reproduces the paper's Lemma 1 equivalence: flipping a
// neuron's key bit and negating its incoming weight vector (and bias)
// leaves the network function unchanged — the weight assignments
// equivalent under different keys exist explicitly.
func TestLemma1(t *testing.T) {
	cfg := Config{Arch: MLP, InC: 1, InH: 4, InW: 4, WidthScale: 0.25, Seed: 10}
	m := MustModel(cfg)
	sched := schedule.New(keys.KeyBits, 3)
	m.ApplyRawKey(keys.Generate(rng.New(11)), sched)

	// Clone the model, flip the first lock's bits for a few neurons and
	// negate the matching rows of the first Dense layer.
	m2 := MustModel(cfg)
	if err := m.CloneWeightsTo(m2); err != nil {
		t.Fatal(err)
	}
	for i, l := range m.Locks() {
		m2.Locks()[i].SetBits(l.Bits())
	}
	var firstDense *nn.Dense
	for _, l := range m2.Net.Layers {
		if d, ok := l.(*nn.Dense); ok {
			firstDense = d
			break
		}
	}
	lock2 := m2.Locks()[0]
	bits := lock2.Bits()
	for _, j := range []int{0, 3, 7, 11} {
		bits[j] ^= 1
		in := firstDense.In
		for i := 0; i < in; i++ {
			firstDense.W.Value.Data[j*in+i] *= -1
		}
		firstDense.B.Value.Data[j] *= -1
	}
	lock2.SetBits(bits)

	x := tensor.New(6, 1, 4, 4)
	x.FillNorm(rng.New(12), 0, 1)
	o1 := m.Net.Forward(x, false)
	o2 := m2.Net.Forward(x, false)
	if !tensor.Equal(o1, o2, 1e-10) {
		t.Fatal("Lemma 1: equivalent weight assignment changed the network function")
	}
}

// TestLockedTrainingAccuracyCollapse is the headline HPNN behaviour at
// miniature image scale: a key-locked CNN1 reaches good accuracy with the
// key and collapses toward chance (10%) without it.
func TestLockedTrainingAccuracyCollapse(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Name: "fashion", TrainN: 400, TestN: 200, H: 16, W: 16, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := MustModel(Config{Arch: CNN1, InC: 1, InH: 16, InW: 16, WidthScale: 1, Seed: 14})
	sched := schedule.New(keys.KeyBits, 5)
	m.ApplyRawKey(keys.Generate(rng.New(15)), sched)

	res := Train(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, TrainConfig{
		Epochs: 8, BatchSize: 32, LR: 0.02, Momentum: 0.9, Seed: 16,
	})
	withKey := res.FinalTestAcc()
	m.DisengageLocks()
	withoutKey := m.Accuracy(ds.TestX, ds.TestY, 64)
	m.EngageLocks()

	if withKey < 0.8 {
		t.Fatalf("locked CNN1 failed to train: test acc %v", withKey)
	}
	if withoutKey > 0.4 {
		t.Fatalf("no-key accuracy %v did not collapse (with key: %v)", withoutKey, withKey)
	}
	t.Logf("with key: %.3f, without key: %.3f", withKey, withoutKey)
}

func TestTrainRecordsTrajectory(t *testing.T) {
	ds, _ := dataset.Generate(dataset.Config{Name: "fashion", TrainN: 60, TestN: 30, H: 12, W: 12, Seed: 17})
	m := MustModel(Config{Arch: MLP, InC: 1, InH: 12, InW: 12, Seed: 18})
	var lines int
	res := Train(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, TrainConfig{
		Epochs: 3, BatchSize: 16, LR: 0.05,
		Logf: func(string, ...any) { lines++ },
	})
	if len(res.EpochLoss) != 3 || len(res.TestAcc) != 3 {
		t.Fatalf("trajectory lengths %d/%d, want 3/3", len(res.EpochLoss), len(res.TestAcc))
	}
	if lines != 3 {
		t.Fatalf("Logf called %d times, want 3", lines)
	}
	if res.BestTestAcc() < res.TestAcc[0] {
		t.Fatal("BestTestAcc below first epoch")
	}
	if res.EpochLoss[2] >= res.EpochLoss[0] {
		t.Fatalf("loss did not decrease: %v", res.EpochLoss)
	}
}

func TestDisengageEngageRoundTrip(t *testing.T) {
	m := MustModel(Config{Arch: MLP, InC: 1, InH: 8, InW: 8, Seed: 19})
	m.ApplyRawKey(keys.Generate(rng.New(20)), schedule.New(keys.KeyBits, 6))
	x := tensor.New(2, 1, 8, 8)
	x.FillNorm(rng.New(21), 0, 1)
	before := m.Net.Forward(x, false).Clone()
	m.DisengageLocks()
	// Forward returns layer-owned scratch: Clone before the next pass
	// overwrites it.
	during := m.Net.Forward(x, false).Clone()
	m.EngageLocks()
	after := m.Net.Forward(x, false)
	if tensor.Equal(before, during, 1e-12) {
		t.Fatal("disengaging locks should change outputs for a random key")
	}
	if !tensor.Equal(before, after, 1e-12) {
		t.Fatal("engage after disengage must restore the function")
	}
}
