package core

import (
	"fmt"

	"hpnn/internal/dataset"
	"hpnn/internal/nn"
	"hpnn/internal/tensor"
)

// TrainConfig controls a (key-dependent) training run. The same loop
// serves owner training and attacker fine-tuning: the only difference is
// the model's lock state and the data it sees.
type TrainConfig struct {
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
	// LRDecayEvery/LRDecayFactor implement the step schedule used for the
	// longer runs; 0 disables decay.
	LRDecayEvery  int
	LRDecayFactor float64
	// ClipNorm caps the global gradient norm per step. 0 selects the
	// default of 5 (which stabilizes high-LR momentum runs); negative
	// values disable clipping.
	ClipNorm float64
	Seed     uint64
	// Logf receives one line per epoch when non-nil.
	Logf func(format string, args ...any)
	// OnEpoch, when non-nil, runs after every epoch with the 0-based
	// epoch index and the trajectory so far. Returning false stops
	// training early — the hook point for checkpointing (pair it with
	// modelio.SaveFile) and early stopping.
	OnEpoch func(epoch int, r TrainResult) bool
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.LRDecayFactor == 0 {
		c.LRDecayFactor = 0.5
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	return c
}

// TrainResult records the per-epoch trajectory of a run — the raw series
// behind the accuracy-vs-epoch curves of Figs. 5 and 6.
type TrainResult struct {
	EpochLoss []float64
	// TestAcc holds per-epoch test accuracy when eval data was supplied.
	TestAcc []float64
	// FinalTrainAcc is the training accuracy after the last epoch.
	FinalTrainAcc float64
}

// BestTestAcc returns the best per-epoch test accuracy (0 if none).
func (r TrainResult) BestTestAcc() float64 {
	best := 0.0
	for _, a := range r.TestAcc {
		if a > best {
			best = a
		}
	}
	return best
}

// FinalTestAcc returns the last epoch's test accuracy (0 if none).
func (r TrainResult) FinalTestAcc() float64 {
	if len(r.TestAcc) == 0 {
		return 0
	}
	return r.TestAcc[len(r.TestAcc)-1]
}

// Train optimizes the model on (trainX, trainY) with softmax cross-entropy
// and momentum SGD. If testX is non-nil the model is evaluated after every
// epoch (eval mode, locks in their current state).
func Train(m *Model, trainX *tensor.Tensor, trainY []int, testX *tensor.Tensor, testY []int, cfg TrainConfig) TrainResult {
	cfg = cfg.withDefaults()
	if trainX.Shape[0] != len(trainY) {
		panic(fmt.Sprintf("hpnn: %d samples vs %d labels", trainX.Shape[0], len(trainY)))
	}
	opt := nn.NewMomentumSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	loss := nn.SoftmaxCrossEntropy{}
	// The parameter list and loss-gradient buffer are hoisted out of the
	// step loop: together with the layers' own scratch reuse this makes the
	// steady-state step allocation-free.
	params := m.Net.Params()
	var gradBuf *tensor.Tensor
	var res TrainResult
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		opt.SetLR(nn.StepDecay(cfg.LR, epoch, cfg.LRDecayEvery, cfg.LRDecayFactor))
		batches := dataset.Batches(trainX, trainY, cfg.BatchSize, cfg.Seed+uint64(epoch)*0x9e37+1)
		epochLoss := 0.0
		for _, b := range batches {
			out := m.Net.Forward(b.X, true)
			l, g := loss.LossInto(gradBuf, out, b.Y)
			gradBuf = g
			epochLoss += l * float64(len(b.Y))
			m.Net.Backward(g)
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, cfg.ClipNorm)
			}
			opt.Step(params)
		}
		epochLoss /= float64(len(trainY))
		res.EpochLoss = append(res.EpochLoss, epochLoss)
		if testX != nil {
			acc := m.Accuracy(testX, testY, cfg.BatchSize)
			res.TestAcc = append(res.TestAcc, acc)
			if cfg.Logf != nil {
				cfg.Logf("epoch %2d  loss %.4f  test acc %.4f", epoch+1, epochLoss, acc)
			}
		} else if cfg.Logf != nil {
			cfg.Logf("epoch %2d  loss %.4f", epoch+1, epochLoss)
		}
		if cfg.OnEpoch != nil && !cfg.OnEpoch(epoch, res) {
			break
		}
	}
	res.FinalTrainAcc = m.Accuracy(trainX, trainY, cfg.BatchSize)
	return res
}
