package core

import (
	"fmt"

	"hpnn/internal/tensor"
	"hpnn/internal/train"
)

// TrainConfig controls a (key-dependent) training run. The same engine
// serves owner training, watermark embedding and attacker fine-tuning:
// the only difference is the model's lock state, the data it sees and the
// hooks installed. The loop itself lives in internal/train; this type is
// the model-level configuration surface.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	// Optimizer selects the update rule by name: "" or "sgd" is momentum
	// SGD (the delta rule of Eq. 3 plus momentum); "adam" is Adam with
	// standard betas (Momentum below is then ignored).
	Optimizer   string
	LR          float64
	Momentum    float64
	WeightDecay float64
	// LRDecayEvery/LRDecayFactor implement the step schedule used for the
	// longer runs; 0 disables decay.
	LRDecayEvery  int
	LRDecayFactor float64
	// Schedule names the learning-rate schedule: "" or "step" uses
	// LRDecayEvery/LRDecayFactor; "cosine" anneals to MinLR over the run;
	// "constant" holds LR fixed. WarmupEpochs, when positive, prepends a
	// linear ramp up to the base rate before the named schedule begins.
	Schedule     string
	WarmupEpochs int
	MinLR        float64
	// ClipNorm caps the global gradient norm per step. 0 selects the
	// default of 5 (which stabilizes high-LR momentum runs); negative
	// values disable clipping.
	ClipNorm float64
	Seed     uint64
	// Logf receives one line per epoch when non-nil (legacy convenience;
	// equivalent to Hooks.Logf).
	Logf func(format string, args ...any)
	// OnEpoch, when non-nil, runs after every epoch with the 0-based
	// epoch index and the trajectory so far. Returning false stops
	// training early (legacy convenience; Hooks.OnEpoch carries timing,
	// throughput and checkpoint snapshots).
	OnEpoch func(epoch int, r TrainResult) bool
	// Hooks is the trainer's full observer bus: per-step timing,
	// samples/sec, evaluation callbacks and resumable state snapshots for
	// checkpointing (pair EpochInfo.Snapshot with modelio.SaveCheckpoint).
	Hooks train.Hooks
	// GradAugment, when non-nil, runs between the backward pass and
	// gradient clipping each step; it may add regularizer terms to the
	// parameter gradients and returns the extra per-sample loss (the
	// watermark embedding path).
	GradAugment func() float64
	// GradAugments is the generalized hook bus: every entry runs after
	// GradAugment under the same contract (the trigger-set watermark path).
	GradAugments []func() float64
	// Replicas trains data-parallel with K model replicas; 0 keeps the
	// sequential loop. The run is bitwise identical for any K (and resumes
	// across K), because the numerics are fixed by GradShards alone.
	Replicas int
	// GradShards is the gradient micro-shard count for data-parallel runs
	// (power of two, ≥ Replicas; 0 defaults to 8 when Replicas > 0).
	GradShards int
	// Resume restores trainer state captured by EpochInfo.Snapshot
	// (typically round-tripped through a modelio checkpoint record); the
	// run then continues the interrupted one bitwise. The model must
	// already hold the checkpointed weights and lock bits.
	Resume *train.State
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.LRDecayFactor == 0 {
		c.LRDecayFactor = 0.5
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	return c
}

// schedule builds the train.LRSchedule the config names. Cosine decays
// over the post-warmup horizon so the final epoch lands exactly on MinLR.
func (c TrainConfig) schedule() (train.LRSchedule, error) {
	var base train.LRSchedule
	switch c.Schedule {
	case "", "step":
		base = train.StepDecay{Base: c.LR, Every: c.LRDecayEvery, Factor: c.LRDecayFactor}
	case "cosine":
		base = train.Cosine{Base: c.LR, Min: c.MinLR, Epochs: c.Epochs - c.WarmupEpochs}
	case "constant", "const":
		base = train.Constant{Base: c.LR}
	default:
		return nil, fmt.Errorf("hpnn: unknown LR schedule %q (want step, cosine or constant)", c.Schedule)
	}
	if c.WarmupEpochs > 0 {
		base = train.LinearWarmup{Epochs: c.WarmupEpochs, Next: base}
	}
	return base, nil
}

// TrainResult records the per-epoch trajectory of a run — the raw series
// behind the accuracy-vs-epoch curves of Figs. 5 and 6.
type TrainResult struct {
	EpochLoss []float64
	// TestAcc holds per-epoch test accuracy when eval data was supplied.
	TestAcc []float64
	// FinalTrainAcc is the training accuracy after the last epoch.
	FinalTrainAcc float64
}

// BestTestAcc returns the best per-epoch test accuracy (0 if none).
func (r TrainResult) BestTestAcc() float64 {
	best := 0.0
	for _, a := range r.TestAcc {
		if a > best {
			best = a
		}
	}
	return best
}

// FinalTestAcc returns the last epoch's test accuracy (0 if none).
func (r TrainResult) FinalTestAcc() float64 {
	if len(r.TestAcc) == 0 {
		return 0
	}
	return r.TestAcc[len(r.TestAcc)-1]
}

// NewTrainer builds the unified training engine for m from cfg, with the
// legacy Logf/OnEpoch fields merged into the hook bus. Most callers want
// TrainChecked; the experiments and checkpointing CLIs use the trainer
// directly when they need Snapshot access between epochs.
func NewTrainer(m *Model, cfg TrainConfig) (*train.Trainer, error) {
	cfg = cfg.withDefaults()
	sched, err := cfg.schedule()
	if err != nil {
		return nil, err
	}
	hooks := cfg.Hooks
	if hooks.Logf == nil {
		hooks.Logf = cfg.Logf
	}
	if legacy := cfg.OnEpoch; legacy != nil {
		user := hooks.OnEpoch
		hooks.OnEpoch = func(info train.EpochInfo) bool {
			ok := true
			if user != nil {
				ok = user(info)
			}
			r := TrainResult{EpochLoss: info.Trajectory.EpochLoss, TestAcc: info.Trajectory.TestAcc}
			return legacy(info.Epoch, r) && ok
		}
	}
	return train.New(m.Net, train.Config{
		Epochs:       cfg.Epochs,
		BatchSize:    cfg.BatchSize,
		Optimizer:    cfg.Optimizer,
		LR:           cfg.LR,
		Momentum:     cfg.Momentum,
		WeightDecay:  cfg.WeightDecay,
		Schedule:     sched,
		ClipNorm:     cfg.ClipNorm,
		Seed:         cfg.Seed,
		Hooks:        hooks,
		GradAugment:  cfg.GradAugment,
		GradAugments: cfg.GradAugments,
		Replicas:     cfg.Replicas,
		GradShards:   cfg.GradShards,
	})
}

// TrainChecked optimizes the model on (trainX, trainY) with softmax
// cross-entropy through the unified training engine. If testX is non-nil
// the model is evaluated after every epoch (eval mode, locks in their
// current state). Invalid data or configuration returns a typed error
// (train.DataSizeError for sample/label mismatches).
func TrainChecked(m *Model, trainX *tensor.Tensor, trainY []int, testX *tensor.Tensor, testY []int, cfg TrainConfig) (TrainResult, error) {
	cfg = cfg.withDefaults()
	tr, err := NewTrainer(m, cfg)
	if err != nil {
		return TrainResult{}, err
	}
	if cfg.Resume != nil {
		if err := tr.Restore(*cfg.Resume); err != nil {
			return TrainResult{}, err
		}
	}
	var eval func() float64
	if testX != nil {
		eval = func() float64 { return m.Accuracy(testX, testY, cfg.BatchSize) }
	}
	r, err := tr.Run(trainX, trainY, eval)
	if err != nil {
		return TrainResult{}, err
	}
	res := TrainResult{EpochLoss: r.EpochLoss, TestAcc: r.TestAcc}
	res.FinalTrainAcc = m.Accuracy(trainX, trainY, cfg.BatchSize)
	return res, nil
}

// Train is TrainChecked panicking on error — the legacy shim kept for
// callers that treat misconfiguration as a programming bug.
func Train(m *Model, trainX *tensor.Tensor, trainY []int, testX *tensor.Tensor, testY []int, cfg TrainConfig) TrainResult {
	res, err := TrainChecked(m, trainX, trainY, testX, testY, cfg)
	if err != nil {
		panic(err)
	}
	return res
}
