package core

import (
	"testing"

	"hpnn/internal/nn"
	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// BenchmarkTrainStepCNN1 measures one steady-state training step (forward,
// loss, backward, clip, optimizer) of the Table I Fashion-MNIST network at
// batch 16. Allocations per op are the headline metric: after the workspace
// refactor a warmed-up step performs zero tensor allocations.
func BenchmarkTrainStepCNN1(b *testing.B) {
	m := MustModel(Config{Arch: CNN1, InC: 1, InH: 28, InW: 28, Classes: 10, Seed: 7})
	const batch = 16
	x := tensor.New(batch, 1, 28, 28)
	x.FillUniform(rng.New(1), 0, 1)
	y := make([]int, batch)
	for i := range y {
		y[i] = i % 10
	}
	opt := nn.NewMomentumSGD(0.01, 0.9, 0)
	loss := nn.SoftmaxCrossEntropy{}
	params := m.Net.Params()
	var gradBuf *tensor.Tensor
	step := func() {
		out := m.Net.Forward(x, true)
		_, g := loss.LossInto(gradBuf, out, y)
		gradBuf = g
		m.Net.Backward(g)
		nn.ClipGradNorm(params, 5)
		opt.Step(params)
	}
	step() // warm up caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}
