package core

import (
	"testing"

	"hpnn/internal/nn"
	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// TestTrainStepCNN1ZeroAllocSteadyState is the headline acceptance test of
// the workspace execution engine: one full training step of the Table I
// Fashion-MNIST network (forward, loss, backward, gradient clip, momentum
// update) at batch 16 performs zero heap allocations once every layer's
// scratch, the loss-gradient buffer, and the optimizer's velocity state have
// been allocated by a warmup step.
func TestTrainStepCNN1ZeroAllocSteadyState(t *testing.T) {
	m := MustModel(Config{Arch: CNN1, InC: 1, InH: 28, InW: 28, Classes: 10, Seed: 7})
	const batch = 16
	x := tensor.New(batch, 1, 28, 28)
	x.FillUniform(rng.New(1), 0, 1)
	y := make([]int, batch)
	for i := range y {
		y[i] = i % 10
	}
	opt := nn.NewMomentumSGD(0.01, 0.9, 0)
	loss := nn.SoftmaxCrossEntropy{}
	params := m.Net.Params()
	var gradBuf *tensor.Tensor
	step := func() {
		m.Net.ZeroGrad()
		out := m.Net.Forward(x, true)
		_, g := loss.LossInto(gradBuf, out, y)
		gradBuf = g
		m.Net.Backward(g)
		nn.ClipGradNorm(params, 5)
		opt.Step(params)
	}
	step() // warmup: layer scratch, grad buffer, and velocity state settle
	if allocs := testing.AllocsPerRun(5, step); allocs != 0 {
		t.Errorf("CNN1 training step: %v allocs/run in steady state, want 0", allocs)
	}
}

// TestPredictZeroAllocSteadyState checks the batched inference path: after
// one warmup call, Accuracy (which drives predictInto with reused batch
// views and a cached prediction buffer) allocates nothing.
func TestPredictZeroAllocSteadyState(t *testing.T) {
	m := MustModel(Config{Arch: MLP, InC: 1, InH: 8, InW: 8, Classes: 4, Seed: 3})
	x := tensor.New(10, 1, 8, 8)
	x.FillUniform(rng.New(2), 0, 1)
	y := make([]int, 10)
	for i := range y {
		y[i] = i % 4
	}
	eval := func() { m.Accuracy(x, y, 4) }
	eval() // warmup
	if allocs := testing.AllocsPerRun(5, eval); allocs != 0 {
		t.Errorf("Accuracy: %v allocs/run in steady state, want 0", allocs)
	}
}
