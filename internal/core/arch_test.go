package core

import (
	"strings"
	"testing"

	"hpnn/internal/dataset"
	"hpnn/internal/nn"
	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// countLayers tallies layer kinds, descending into residual blocks.
func countLayers(net *nn.Network) map[string]int {
	counts := map[string]int{}
	var walk func(l nn.Layer)
	walk = func(l nn.Layer) {
		switch v := l.(type) {
		case *nn.Conv2D:
			counts["conv"]++
		case *nn.Dense:
			counts["dense"]++
		case *nn.ReLU:
			counts["relu"]++
		case *nn.MaxPool:
			counts["maxpool"]++
		case *nn.BatchNorm2D:
			counts["bn"]++
		case *nn.Lock:
			counts["lock"]++
		case *nn.Residual:
			counts["residual"]++
			for _, ll := range v.Body.Layers {
				walk(ll)
			}
			if v.Skip != nil {
				for _, ll := range v.Skip.Layers {
					walk(ll)
				}
			}
			for _, ll := range v.Post.Layers {
				walk(ll)
			}
		}
	}
	for _, l := range net.Layers {
		walk(l)
	}
	return counts
}

// TestCNN2Inventory: Table I says CNN2 = 6 C, 3 MP, 8 ReLU, 3 FC.
func TestCNN2Inventory(t *testing.T) {
	m := MustModel(Config{Arch: CNN2, InC: 3, InH: 32, InW: 32, Seed: 1})
	c := countLayers(m.Net)
	if c["conv"] != 6 || c["maxpool"] != 3 || c["relu"] != 8 || c["dense"] != 3 {
		t.Fatalf("CNN2 inventory %v, want 6C/3MP/8ReLU/3FC", c)
	}
	if c["lock"] != 8 {
		t.Fatalf("CNN2 has %d locks, want one per ReLU (8)", c["lock"])
	}
}

// TestCNN3Inventory: Table I says CNN3 = 3 C, 3 MP, 4 ReLU, 2 FC.
func TestCNN3Inventory(t *testing.T) {
	m := MustModel(Config{Arch: CNN3, InC: 3, InH: 32, InW: 32, Seed: 1})
	c := countLayers(m.Net)
	if c["conv"] != 3 || c["maxpool"] != 3 || c["relu"] != 4 || c["dense"] != 2 {
		t.Fatalf("CNN3 inventory %v, want 3C/3MP/4ReLU/2FC", c)
	}
}

// TestResNet18ConvCount: standard ResNet-18 has 20 convolutions (1 stem +
// 16 in blocks + 3 projection shortcuts) and a single FC.
func TestResNet18ConvCount(t *testing.T) {
	m := MustModel(Config{Arch: ResNet18, InC: 3, InH: 32, InW: 32, WidthScale: 0.125, Seed: 1})
	c := countLayers(m.Net)
	if c["conv"] != 20 {
		t.Fatalf("ResNet-18 has %d convs, want 20", c["conv"])
	}
	if c["dense"] != 1 {
		t.Fatalf("ResNet-18 has %d FC layers, want 1", c["dense"])
	}
	if c["bn"] != 20 {
		t.Fatalf("ResNet-18 has %d batch-norms, want 20 (one per conv)", c["bn"])
	}
	if c["lock"] != 17 {
		t.Fatalf("ResNet-18 has %d locks, want 17", c["lock"])
	}
}

// TestEveryReLUIsLocked: the paper locks every neuron of every nonlinear
// layer — each ReLU must be immediately preceded by a Lock.
func TestEveryReLUIsLocked(t *testing.T) {
	for _, arch := range []Arch{CNN1, CNN2, CNN3, MLP} {
		cfg := Config{Arch: arch, InC: 3, InH: 16, InW: 16, WidthScale: 0.25, Seed: 1}
		m := MustModel(cfg)
		layers := m.Net.Layers
		for i, l := range layers {
			if _, ok := l.(*nn.ReLU); !ok {
				continue
			}
			if i == 0 {
				t.Fatalf("%s: ReLU at position 0", arch)
			}
			if _, ok := layers[i-1].(*nn.Lock); !ok {
				t.Fatalf("%s: ReLU at %d not preceded by a Lock (%s)", arch, i, layers[i-1].Name())
			}
		}
	}
}

func TestWidthScaleChangesParamCount(t *testing.T) {
	small := MustModel(Config{Arch: CNN2, InC: 3, InH: 16, InW: 16, WidthScale: 0.125, Seed: 1})
	big := MustModel(Config{Arch: CNN2, InC: 3, InH: 16, InW: 16, WidthScale: 0.25, Seed: 1})
	if small.Net.ParamCount() >= big.Net.ParamCount() {
		t.Fatal("width scale did not change parameter count")
	}
}

func TestWidthScaleNeverBelowOne(t *testing.T) {
	// Tiny scales must clamp channel counts at 1, not 0.
	m := MustModel(Config{Arch: CNN2, InC: 1, InH: 16, InW: 16, WidthScale: 0.001, Seed: 1})
	x := tensor.New(1, 1, 16, 16)
	x.FillNorm(rng.New(2), 0, 1)
	out := m.Net.Forward(x, false)
	if out.Shape[1] != 10 {
		t.Fatalf("degenerate-width model broken: output %v", out.Shape)
	}
}

func TestLockIDsAreStable(t *testing.T) {
	a := MustModel(Config{Arch: CNN1, InC: 1, InH: 16, InW: 16, Seed: 1})
	b := MustModel(Config{Arch: CNN1, InC: 1, InH: 16, InW: 16, Seed: 999})
	la, lb := a.Locks(), b.Locks()
	if len(la) != len(lb) {
		t.Fatal("lock counts differ across seeds")
	}
	for i := range la {
		if la[i].ID != lb[i].ID {
			t.Fatalf("lock IDs depend on the weight seed: %s vs %s", la[i].ID, lb[i].ID)
		}
		if !strings.HasPrefix(la[i].ID, "cnn1/") {
			t.Fatalf("lock ID %q not namespaced by architecture", la[i].ID)
		}
	}
}

func TestArchitecturesList(t *testing.T) {
	if len(Architectures()) != 5 {
		t.Fatalf("expected 5 architectures, got %d", len(Architectures()))
	}
}

func TestTrainConfigDefaults(t *testing.T) {
	c := TrainConfig{}.withDefaults()
	if c.Epochs == 0 || c.BatchSize == 0 || c.LR == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.ClipNorm != 5 {
		t.Fatalf("default clip norm %v, want 5", c.ClipNorm)
	}
	neg := TrainConfig{ClipNorm: -1}.withDefaults()
	if neg.ClipNorm != -1 {
		t.Fatal("negative ClipNorm (disable) overridden")
	}
}

func TestKeyBitsConcatenation(t *testing.T) {
	m := MustModel(Config{Arch: MLP, InC: 1, InH: 8, InW: 8, Seed: 1})
	bits := m.KeyBits()
	if len(bits) != m.LockedNeurons() {
		t.Fatalf("KeyBits length %d != locked neurons %d", len(bits), m.LockedNeurons())
	}
	for _, b := range bits {
		if b != 0 {
			t.Fatal("fresh model must have zero key bits")
		}
	}
}

func TestTrainPanicsOnLabelMismatch(t *testing.T) {
	m := MustModel(Config{Arch: MLP, InC: 1, InH: 8, InW: 8, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("label/sample mismatch did not panic")
		}
	}()
	Train(m, tensor.New(4, 1, 8, 8), []int{0, 1}, nil, nil, TrainConfig{Epochs: 1})
}

func TestPredictDefaultBatch(t *testing.T) {
	m := MustModel(Config{Arch: MLP, InC: 1, InH: 8, InW: 8, Seed: 2})
	x := tensor.New(3, 1, 8, 8)
	x.FillNorm(rng.New(3), 0, 1)
	a := m.Predict(x, 0) // 0 selects the default batch size
	b := m.Predict(x, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("default batch size changed predictions")
		}
	}
}

func TestTrainOnEpochEarlyStop(t *testing.T) {
	ds, _ := dataset.Generate(dataset.Config{Name: "fashion", TrainN: 40, TestN: 20, H: 12, W: 12, Seed: 30})
	m := MustModel(Config{Arch: MLP, InC: 1, InH: 12, InW: 12, Seed: 31})
	calls := 0
	res := Train(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, TrainConfig{
		Epochs: 10, BatchSize: 16, LR: 0.02,
		OnEpoch: func(epoch int, r TrainResult) bool {
			calls++
			return epoch < 2 // stop after the 3rd epoch
		},
	})
	if calls != 3 {
		t.Fatalf("OnEpoch called %d times, want 3", calls)
	}
	if len(res.EpochLoss) != 3 {
		t.Fatalf("training ran %d epochs after early stop, want 3", len(res.EpochLoss))
	}
}
