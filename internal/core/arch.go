// Package core is the core of the reproduction: it builds the paper's DNN
// architectures with HPNN locks on every nonlinear layer, trains them with
// the key-dependent backpropagation algorithm, and applies or removes keys
// for the owner / authorized-user / attacker scenarios.
package core

import (
	"fmt"
	"math"

	"hpnn/internal/nn"
	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// Arch names a network architecture from the paper's evaluation (Table I
// and Fig. 3).
type Arch string

// Architectures. Channel/width plans are derived so that at native input
// sizes and WidthScale=1 the locked-neuron counts match Table I exactly:
// CNN1 has 4352, CNN2 has 198144 and CNN3 has 29696 ReLU neurons.
const (
	// CNN1: 2 conv, 2 maxpool, 2 ReLU, 1 FC (Fashion-MNIST row of Table I).
	CNN1 Arch = "cnn1"
	// CNN2: 6 conv, 3 maxpool, 8 ReLU, 3 FC (CIFAR-10 row of Table I).
	CNN2 Arch = "cnn2"
	// CNN3: 3 conv, 3 maxpool, 4 ReLU, 2 FC (SVHN row of Table I).
	CNN3 Arch = "cnn3"
	// ResNet18: the residual network of Fig. 3 and Fig. 5.
	ResNet18 Arch = "resnet18"
	// MLP: a small locked multi-layer perceptron used by analysis
	// experiments and examples (not part of the paper's table).
	MLP Arch = "mlp"
)

// Config describes a model to build.
type Config struct {
	Arch       Arch
	InC        int     // input channels
	InH, InW   int     // input spatial size
	Classes    int     // output classes
	WidthScale float64 // scales channel counts/hidden widths; 1.0 = paper widths, 0 = 1.0
	Seed       uint64  // weight-initialization seed
}

func (c Config) withDefaults() Config {
	if c.WidthScale == 0 {
		c.WidthScale = 1
	}
	if c.Classes == 0 {
		c.Classes = 10
	}
	return c
}

func (c Config) scale(w int) int {
	s := int(math.Round(float64(w) * c.WidthScale))
	if s < 1 {
		s = 1
	}
	return s
}

// builder assembles a locked network while tracking per-sample feature
// dimensions.
type builder struct {
	cfg     Config
	r       *rng.Rand
	layers  []nn.Layer
	c, h, w int // current feature-map dims (spatial path)
	flat    int // current flat width (dense path); 0 while spatial
	nLocks  int
}

func newBuilder(cfg Config) *builder {
	return &builder{cfg: cfg, r: rng.New(cfg.Seed), c: cfg.InC, h: cfg.InH, w: cfg.InW}
}

func (b *builder) conv(outC, k, stride, pad int) *builder {
	g := tensor.ConvGeom{InC: b.c, InH: b.h, InW: b.w, KH: k, KW: k, Stride: stride, Pad: pad}
	b.layers = append(b.layers, nn.NewConv2D(g, outC).InitHe(b.r))
	b.c, b.h, b.w = outC, g.OutH(), g.OutW()
	return b
}

func (b *builder) maxpool(k, stride int) *builder {
	g := tensor.ConvGeom{InC: b.c, InH: b.h, InW: b.w, KH: k, KW: k, Stride: stride}
	b.layers = append(b.layers, nn.NewMaxPool(g))
	b.h, b.w = g.OutH(), g.OutW()
	return b
}

func (b *builder) lockedReLU() *builder {
	n := b.featSize()
	id := fmt.Sprintf("%s/lock%02d", b.cfg.Arch, b.nLocks)
	b.nLocks++
	b.layers = append(b.layers, nn.NewLock(id, n), nn.NewReLU())
	return b
}

func (b *builder) flatten() *builder {
	b.layers = append(b.layers, nn.NewFlatten())
	b.flat = b.c * b.h * b.w
	return b
}

func (b *builder) dense(out int) *builder {
	b.layers = append(b.layers, nn.NewDense(b.flat, out).InitHe(b.r))
	b.flat = out
	return b
}

func (b *builder) featSize() int {
	if b.flat > 0 {
		return b.flat
	}
	return b.c * b.h * b.w
}

func (b *builder) build() *nn.Network { return nn.NewNetwork(b.layers...) }

// buildNetwork constructs the architecture's layer stack.
func buildNetwork(cfg Config) (*nn.Network, error) {
	if cfg.InC <= 0 || cfg.InH <= 0 || cfg.InW <= 0 {
		return nil, fmt.Errorf("hpnn: invalid input dims %dx%dx%d", cfg.InC, cfg.InH, cfg.InW)
	}
	switch cfg.Arch {
	case CNN1:
		return buildCNN1(cfg), nil
	case CNN2:
		return buildCNN2(cfg), nil
	case CNN3:
		return buildCNN3(cfg), nil
	case ResNet18:
		return buildResNet18(cfg), nil
	case MLP:
		return buildMLP(cfg), nil
	default:
		return nil, fmt.Errorf("hpnn: unknown architecture %q", cfg.Arch)
	}
}

// buildCNN1: conv(→4, 5×5) · Lock · ReLU · pool2 · conv(→32, 5×5) · Lock ·
// ReLU · pool2 · FC. At 28×28×1 and scale 1 the two ReLU layers hold
// 4·24·24 + 32·8·8 = 4352 neurons, matching Table I.
func buildCNN1(cfg Config) *nn.Network {
	b := newBuilder(cfg)
	b.conv(cfg.scale(4), 5, 1, 0).lockedReLU().maxpool(2, 2)
	b.conv(cfg.scale(32), 5, 1, 0).lockedReLU().maxpool(2, 2)
	b.flatten().dense(cfg.Classes)
	return b.build()
}

// buildCNN2: VGG-style [conv-conv-pool]×3 with channels 64/96/128 plus
// FC(1024)·FC(512)·FC(classes); ReLU (locked) after all six convs and the
// first two FCs. At 32×32×3 and scale 1: 2·64·32² + 2·96·16² + 2·128·8² +
// 1024 + 512 = 198144 locked neurons, matching Table I.
func buildCNN2(cfg Config) *nn.Network {
	b := newBuilder(cfg)
	b.conv(cfg.scale(64), 3, 1, 1).lockedReLU()
	b.conv(cfg.scale(64), 3, 1, 1).lockedReLU().maxpool(2, 2)
	b.conv(cfg.scale(96), 3, 1, 1).lockedReLU()
	b.conv(cfg.scale(96), 3, 1, 1).lockedReLU().maxpool(2, 2)
	b.conv(cfg.scale(128), 3, 1, 1).lockedReLU()
	b.conv(cfg.scale(128), 3, 1, 1).lockedReLU().maxpool(2, 2)
	b.flatten()
	b.dense(cfg.scale(1024)).lockedReLU()
	b.dense(cfg.scale(512)).lockedReLU()
	b.dense(cfg.Classes)
	return b.build()
}

// buildCNN3: [conv-pool]×3 with channels 16/32/64 plus FC(1024)·FC(classes);
// ReLU (locked) after each conv and the first FC. At 32×32×3 and scale 1:
// 16·32² + 32·16² + 64·8² + 1024 = 29696 locked neurons, matching Table I.
func buildCNN3(cfg Config) *nn.Network {
	b := newBuilder(cfg)
	b.conv(cfg.scale(16), 3, 1, 1).lockedReLU().maxpool(2, 2)
	b.conv(cfg.scale(32), 3, 1, 1).lockedReLU().maxpool(2, 2)
	b.conv(cfg.scale(64), 3, 1, 1).lockedReLU().maxpool(2, 2)
	b.flatten()
	b.dense(cfg.scale(1024)).lockedReLU()
	b.dense(cfg.Classes)
	return b.build()
}

// buildMLP: Dense(64)·Lock·ReLU · Dense(64)·Lock·ReLU · Dense(classes).
func buildMLP(cfg Config) *nn.Network {
	b := newBuilder(cfg)
	b.flatten()
	b.dense(cfg.scale(64)).lockedReLU()
	b.dense(cfg.scale(64)).lockedReLU()
	b.dense(cfg.Classes)
	return b.build()
}

// buildResNet18 follows He et al.'s CIFAR-style ResNet-18: a 3×3 stem then
// four stages of two basic blocks with channel plan 64/128/256/512 (stages
// 2-4 downsample by stride 2 with a 1×1 projection skip), global average
// pooling and a final FC. Every ReLU — in the stem, inside each block and
// after each residual join — is locked.
func buildResNet18(cfg Config) *nn.Network {
	b := newBuilder(cfg)
	// Stem.
	b.conv(cfg.scale(64), 3, 1, 1)
	b.layers = append(b.layers, nn.NewBatchNorm2D(b.c))
	b.lockedReLU()
	// Stages.
	plan := []struct {
		ch     int
		stride int
	}{
		{64, 1}, {128, 2}, {256, 2}, {512, 2},
	}
	for _, st := range plan {
		ch := cfg.scale(st.ch)
		b.basicBlock(ch, st.stride)
		b.basicBlock(ch, 1)
	}
	b.layers = append(b.layers, nn.NewGlobalAvgPool())
	b.flat = b.c
	b.dense(cfg.Classes)
	return b.build()
}

// basicBlock appends one ResNet basic block:
//
//	body: conv3×3(stride) · BN · Lock · ReLU · conv3×3 · BN
//	skip: identity, or conv1×1(stride) · BN when shape changes
//	post: Lock · ReLU
func (b *builder) basicBlock(outC, stride int) {
	inC, inH, inW := b.c, b.h, b.w
	r := b.r

	g1 := tensor.ConvGeom{InC: inC, InH: inH, InW: inW, KH: 3, KW: 3, Stride: stride, Pad: 1}
	midH, midW := g1.OutH(), g1.OutW()
	g2 := tensor.ConvGeom{InC: outC, InH: midH, InW: midW, KH: 3, KW: 3, Stride: 1, Pad: 1}

	innerLockID := fmt.Sprintf("%s/lock%02d", b.cfg.Arch, b.nLocks)
	b.nLocks++
	body := nn.NewNetwork(
		nn.NewConv2D(g1, outC).InitHe(r),
		nn.NewBatchNorm2D(outC),
		nn.NewLock(innerLockID, outC*midH*midW),
		nn.NewReLU(),
		nn.NewConv2D(g2, outC).InitHe(r),
		nn.NewBatchNorm2D(outC),
	)

	var skip *nn.Network
	if stride != 1 || inC != outC {
		sg := tensor.ConvGeom{InC: inC, InH: inH, InW: inW, KH: 1, KW: 1, Stride: stride, Pad: 0}
		skip = nn.NewNetwork(nn.NewConv2D(sg, outC).InitHe(r), nn.NewBatchNorm2D(outC))
	}

	postLockID := fmt.Sprintf("%s/lock%02d", b.cfg.Arch, b.nLocks)
	b.nLocks++
	post := nn.NewNetwork(nn.NewLock(postLockID, outC*midH*midW), nn.NewReLU())

	b.layers = append(b.layers, nn.NewResidual(body, skip, post))
	b.c, b.h, b.w = outC, midH, midW
}

// Architectures lists the Table I / Fig. 3 architectures.
func Architectures() []Arch { return []Arch{CNN1, CNN2, CNN3, ResNet18, MLP} }
