package core

import (
	"fmt"
	"testing"

	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// BenchmarkTrainStep measures one data-parallel training step at replica
// counts K ∈ {1, 2, 4, 8} for the small CNN1 and the full-width ResNet-18.
// The run drives the real Trainer (Epochs = b.N over a single-batch
// dataset), so ns/op is a complete step: shard forward/backward across the
// replicas, tree reduction, BN stat absorption, clipping and the optimizer
// update. GradShards is pinned to 8 for every K, so all rows compute the
// bitwise-identical model and the ratio between them is pure execution
// scaling. scripts/bench_train.sh turns this into results/BENCH_train.json
// with samples/sec and the runner's CPU count (single-core runners will
// show no K-scaling — that is honest, not a regression).
func BenchmarkTrainStep(b *testing.B) {
	const batch = 32
	cases := []struct {
		name    string
		arch    Arch
		c, h, w int
	}{
		{"CNN1", CNN1, 1, 16, 16},
		{"ResNet18", ResNet18, 3, 16, 16},
	}
	for _, tc := range cases {
		for _, k := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/K%d", tc.name, k), func(b *testing.B) {
				m := MustModel(Config{Arch: tc.arch, InC: tc.c, InH: tc.h, InW: tc.w, Classes: 10, Seed: 7})
				x := tensor.New(batch, tc.c, tc.h, tc.w)
				x.FillNorm(rng.New(1), 0, 1)
				y := make([]int, batch)
				for i := range y {
					y[i] = i % 10
				}
				tr, err := NewTrainer(m, TrainConfig{
					Epochs: b.N, BatchSize: batch, LR: 0.01, Momentum: 0.9, Seed: 3,
					Replicas: k, GradShards: 8,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				if _, err := tr.Run(x, y, nil); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
