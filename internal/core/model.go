package core

import (
	"fmt"

	"hpnn/internal/keys"
	"hpnn/internal/nn"
	"hpnn/internal/schedule"
	"hpnn/internal/tensor"
)

// Model is a (possibly key-locked) deep-learning model: the network, its
// configuration and its lock layers.
type Model struct {
	Config Config
	Net    *nn.Network

	// Scheme is the lock-scheme identifier the model was published under
	// (package lockscheme). Empty means the default HPNN XOR scheme, which
	// keeps pre-scheme serialized artifacts byte-identical.
	Scheme string

	locks []*nn.Lock

	// Cached batch-view header and shape for evaluation: Predict slices the
	// dataset into batch views without allocating tensor headers, so the
	// repeated Accuracy probes of the attack loops stay cheap.
	evalView  tensor.Tensor
	evalShape []int
	predsBuf  []int
}

// NewModel builds a model from cfg with freshly initialized weights.
// All locks start engaged with all-zero bits (every factor +1), which is
// functionally the unlocked baseline until a key is applied.
func NewModel(cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	net, err := buildNetwork(cfg)
	if err != nil {
		return nil, err
	}
	return &Model{Config: cfg, Net: net, locks: net.Locks()}, nil
}

// MustModel is NewModel panicking on error, for tests and examples with
// static configs.
func MustModel(cfg Config) *Model {
	m, err := NewModel(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Locks returns the model's lock layers in forward order.
func (m *Model) Locks() []*nn.Lock { return m.locks }

// LockedNeurons returns the total number of neurons in nonlinear layers —
// the "No. of neurons in nonlinear (ReLU) layers" column of Table I.
func (m *Model) LockedNeurons() int {
	n := 0
	for _, l := range m.locks {
		n += l.Neurons()
	}
	return n
}

// ApplyKey programs every lock from the device's sealed key through the
// hardware scheduling algorithm: neuron j of lock layer L is served by
// accumulator column sched.Assign(L.ID, ...)[j] and therefore locked with
// that column's key bit. This is both the owner's one-time training
// pre-processing (§III-D3) and the trusted-hardware inference behaviour.
func (m *Model) ApplyKey(dev *keys.Device, sched *schedule.Schedule) {
	for _, l := range m.locks {
		cols := sched.Assign(l.ID, l.Neurons())
		l.SetBits(dev.BitsForColumns(cols))
		l.Engage()
	}
}

// ApplyRawKey is ApplyKey for callers that hold the key value itself (the
// model owner during training).
func (m *Model) ApplyRawKey(key keys.Key, sched *schedule.Schedule) {
	m.ApplyKey(keys.NewDevice("owner-training", key), sched)
}

// DisengageLocks removes all lock layers' effect, modelling an attacker
// loading the stolen weights into the plain baseline architecture (no key,
// no trusted hardware).
func (m *Model) DisengageLocks() {
	for _, l := range m.locks {
		l.Disengage()
	}
}

// EngageLocks re-enables the lock layers with their current bits.
func (m *Model) EngageLocks() {
	for _, l := range m.locks {
		l.Engage()
	}
}

// KeyBits returns the concatenated per-neuron lock bits across all locks
// (diagnostics and serialization).
func (m *Model) KeyBits() []byte {
	var bits []byte
	for _, l := range m.locks {
		bits = append(bits, l.Bits()...)
	}
	return bits
}

// Predict returns the argmax class for each sample in x, evaluating in
// batches of batchSize to bound memory. The returned slice is freshly
// allocated; Accuracy uses a model-owned buffer instead.
func (m *Model) Predict(x *tensor.Tensor, batchSize int) []int {
	preds := make([]int, x.Shape[0])
	m.predictInto(preds, x, batchSize)
	return preds
}

func (m *Model) predictInto(preds []int, x *tensor.Tensor, batchSize int) {
	n := x.Shape[0]
	if batchSize <= 0 {
		batchSize = 64
	}
	feat := x.Len() / max(n, 1)
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		m.evalShape = append(m.evalShape[:0], x.Shape...)
		m.evalShape[0] = hi - lo
		bx := tensor.ViewInto(&m.evalView, x.Data[lo*feat:hi*feat], m.evalShape...)
		out := m.Net.Forward(bx, false)
		k := out.Shape[1]
		for i := 0; i < hi-lo; i++ {
			preds[lo+i] = tensor.Argmax(out.Data[i*k : (i+1)*k])
		}
	}
}

// Accuracy evaluates classification accuracy on (x, y). Predictions land in
// a model-owned buffer, so the repeated probes of the key-recovery attack
// (one per bit trial) cost no allocations.
func (m *Model) Accuracy(x *tensor.Tensor, y []int, batchSize int) float64 {
	if len(y) == 0 {
		return 0
	}
	m.predsBuf = tensor.EnsureInts(m.predsBuf, x.Shape[0])
	preds := m.predsBuf
	m.predictInto(preds, x, batchSize)
	correct := 0
	for i, p := range preds {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

// Clone returns a deep copy of the model: weights, batch-norm statistics,
// lock state and scheme identifier. Lock schemes that transform the weight
// space (ciphers, permutations) clone before unlocking so the published
// artifact itself stays untouched.
func (m *Model) Clone() (*Model, error) {
	c, err := NewModel(m.Config)
	if err != nil {
		return nil, err
	}
	if err := m.CloneWeightsTo(c); err != nil {
		return nil, err
	}
	for i, l := range m.locks {
		cl := c.locks[i]
		copy(cl.Factors, l.Factors)
		cl.Engaged = l.Engaged
	}
	c.Scheme = m.Scheme
	return c, nil
}

// CloneWeightsTo copies m's parameter values into dst, which must have an
// identical architecture. Lock state is not copied — this is exactly the
// "stolen weights" operation: an attacker obtains parameters, not key
// material.
func (m *Model) CloneWeightsTo(dst *Model) error {
	src := m.Net.Params()
	d := dst.Net.Params()
	if len(src) != len(d) {
		return fmt.Errorf("hpnn: parameter count mismatch %d vs %d", len(src), len(d))
	}
	for i := range src {
		if src[i].Value.Len() != d[i].Value.Len() {
			return fmt.Errorf("hpnn: parameter %d shape mismatch", i)
		}
		copy(d[i].Value.Data, src[i].Value.Data)
	}
	// Running batch-norm statistics travel with the weights.
	copyBatchNormStats(m.Net, dst.Net)
	return nil
}

func copyBatchNormStats(src, dst *nn.Network) {
	sbn := collectBatchNorms(src)
	dbn := collectBatchNorms(dst)
	for i := range sbn {
		copy(dbn[i].RunMean.Data, sbn[i].RunMean.Data)
		copy(dbn[i].RunVar.Data, sbn[i].RunVar.Data)
	}
}

// BatchNormStats returns mutable views of every batch-norm layer's running
// statistics (mean then variance per layer, in network order). Serialization
// uses it to ship inference statistics with the published weights.
func BatchNormStats(m *Model) [][]float64 {
	var out [][]float64
	for _, bn := range collectBatchNorms(m.Net) {
		out = append(out, bn.RunMean.Data, bn.RunVar.Data)
	}
	return out
}

func collectBatchNorms(net *nn.Network) []*nn.BatchNorm2D {
	var out []*nn.BatchNorm2D
	var walk func(l nn.Layer)
	walk = func(l nn.Layer) {
		switch v := l.(type) {
		case *nn.BatchNorm2D:
			out = append(out, v)
		case *nn.Residual:
			for _, ll := range v.Body.Layers {
				walk(ll)
			}
			if v.Skip != nil {
				for _, ll := range v.Skip.Layers {
					walk(ll)
				}
			}
			for _, ll := range v.Post.Layers {
				walk(ll)
			}
		}
	}
	for _, l := range net.Layers {
		walk(l)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
