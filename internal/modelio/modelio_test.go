package modelio

import (
	"bytes"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"hpnn/internal/core"
	"hpnn/internal/keys"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
	"hpnn/internal/tensor"
)

func sampleModel(t *testing.T, arch core.Arch) *core.Model {
	t.Helper()
	cfg := core.Config{Arch: arch, InC: 1, InH: 16, InW: 16, Seed: 60}
	if arch == core.ResNet18 {
		cfg.WidthScale = 0.125
	}
	m := core.MustModel(cfg)
	// Give the weights structure so round-trips are meaningful.
	r := rng.New(61)
	for _, p := range m.Net.Params() {
		p.Value.FillNorm(r, 0, 0.5)
	}
	return m
}

func sameForward(t *testing.T, a, b *core.Model) bool {
	t.Helper()
	x := tensor.New(3, 1, 16, 16)
	x.FillNorm(rng.New(62), 0, 1)
	oa := a.Net.Forward(x, false)
	ob := b.Net.Forward(x, false)
	return tensor.Equal(oa, ob, 1e-12)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, arch := range []core.Arch{core.CNN1, core.MLP, core.ResNet18} {
		m := sampleModel(t, arch)
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("%s: save: %v", arch, err)
		}
		back, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v", arch, err)
		}
		if back.Config.Arch != arch {
			t.Fatalf("%s: arch lost", arch)
		}
		if !sameForward(t, m, back) {
			t.Fatalf("%s: round-trip changed the network function", arch)
		}
	}
}

func TestSaveLoadPreservesBatchNormStats(t *testing.T) {
	m := sampleModel(t, core.ResNet18)
	// Push the running stats away from their init.
	x := tensor.New(4, 1, 16, 16)
	x.FillNorm(rng.New(63), 1, 2)
	m.Net.Forward(x, true)

	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a := core.BatchNormStats(m)
	b := core.BatchNormStats(back)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("stat block counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("batch-norm running stats not preserved")
			}
		}
	}
}

func TestLoadedModelHasNoKey(t *testing.T) {
	m := sampleModel(t, core.CNN1)
	m.ApplyRawKey(keys.Generate(rng.New(64)), schedule.New(keys.KeyBits, 65))
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range back.KeyBits() {
		if b != 0 {
			t.Fatal("serialized model leaked lock bits — key material must not be published")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("NOPE----------------"),
		append([]byte("HPNN"), 9, 9, 9, 9), // bad version
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	m := sampleModel(t, core.CNN1)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	if _, err := Load(bytes.NewReader(blob[:len(blob)/2])); err == nil {
		t.Fatal("truncated model accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := sampleModel(t, core.MLP)
	path := filepath.Join(t.TempDir(), "model.hpnn")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sameForward(t, m, back) {
		t.Fatal("file round-trip changed the network function")
	}
}

func TestFlattenParams(t *testing.T) {
	m := sampleModel(t, core.MLP)
	flat := FlattenParams(m)
	if len(flat) != m.Net.ParamCount() {
		t.Fatalf("flattened %d values, want %d", len(flat), m.Net.ParamCount())
	}
}

func TestZooPublishFetchList(t *testing.T) {
	zoo := NewZoo()
	srv := httptest.NewServer(zoo.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	m := sampleModel(t, core.CNN1)
	if err := client.Publish("fashion-cnn1", m); err != nil {
		t.Fatal(err)
	}
	names, err := client.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "fashion-cnn1" {
		t.Fatalf("zoo list %v", names)
	}
	back, err := client.Fetch("fashion-cnn1")
	if err != nil {
		t.Fatal(err)
	}
	if !sameForward(t, m, back) {
		t.Fatal("zoo round-trip changed the network function")
	}
}

func TestZooFetchMissing(t *testing.T) {
	srv := httptest.NewServer(NewZoo().Handler())
	defer srv.Close()
	if _, err := NewClient(srv.URL).Fetch("nope"); err == nil {
		t.Fatal("missing model fetched")
	}
}

func TestZooRejectsInvalidUpload(t *testing.T) {
	zoo := NewZoo()
	srv := httptest.NewServer(zoo.Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/models/bad", "application/octet-stream",
		bytes.NewReader([]byte("not a model")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 422 {
		t.Fatalf("invalid upload got status %d, want 422", resp.StatusCode)
	}
	if len(zoo.Names()) != 0 {
		t.Fatal("invalid model stored")
	}
}

func TestZooRejectsBadPaths(t *testing.T) {
	srv := httptest.NewServer(NewZoo().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/models/a/b")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("nested path got %d, want 400", resp.StatusCode)
	}
}

// failAfter is a writer that errors after n bytes — exercises Save's
// error propagation.
type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errWriteFull
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errWriteFull
	}
	f.n -= len(p)
	return len(p), nil
}

var errWriteFull = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "disk full" }

func TestSaveWriteErrors(t *testing.T) {
	m := sampleModel(t, core.CNN1)
	// Probe several truncation points: magic, config, params.
	for _, n := range []int{0, 2, 10, 100, 1000} {
		if err := Save(&failAfter{n: n}, m); err == nil {
			t.Fatalf("Save with %d-byte writer did not fail", n)
		}
	}
}

func TestSaveFileToBadPath(t *testing.T) {
	m := sampleModel(t, core.MLP)
	if err := SaveFile("/nonexistent-dir/model.hpnn", m); err == nil {
		t.Fatal("SaveFile to bad path succeeded")
	}
	if _, err := LoadFile("/nonexistent-dir/model.hpnn"); err == nil {
		t.Fatal("LoadFile from bad path succeeded")
	}
}

func TestLoadRejectsWrongArchParams(t *testing.T) {
	// Serialize an MLP, then corrupt the stored arch string to cnn1 —
	// parameter names/counts will not line up.
	m := sampleModel(t, core.MLP)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	blob := bytes.Replace(buf.Bytes(), []byte("mlp"), []byte("XYZ"), 1)
	if _, err := Load(bytes.NewReader(blob)); err == nil {
		t.Fatal("unknown architecture in file accepted")
	}
}
