// Package modelio serializes HPNN models to a compact binary format and
// implements the public model-sharing platform of Fig. 1: an HTTP model zoo
// where the owner publishes obfuscated models and end-users (authorized or
// not — the format is public by design) download them.
//
// Lock bits are deliberately NOT serialized: the published artifact is the
// baseline architecture plus obfuscated weights. Key material exists only
// inside trusted devices (package keys) and the owner's training pipeline.
package modelio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"hpnn/internal/core"
	"hpnn/internal/lockscheme"
)

// magic identifies serialized HPNN models.
var magic = [4]byte{'H', 'P', 'N', 'N'}

// Format versions. Version 1 is the original layout, implicitly the default
// HPNN XOR scheme; version 2 inserts the lock-scheme identifier right after
// the version word. Default-scheme models keep writing version 1, so every
// pre-scheme artifact round-trips byte-identically.
const (
	formatVersion   uint32 = 1
	formatVersionV2 uint32 = 2
)

// maxStringLen bounds deserialized strings defensively.
const maxStringLen = 1 << 16

// maxTensorElems bounds deserialized tensors defensively (512M params).
const maxTensorElems = 1 << 29

// Save writes m (architecture config + weights + batch-norm statistics) to w.
// The model's lock-scheme stamp travels with the artifact: non-default
// schemes select format version 2 with the scheme identifier inline.
func Save(w io.Writer, m *core.Model) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if !lockscheme.Valid(m.Scheme) {
		return fmt.Errorf("modelio: model stamped with unknown lock scheme %q", m.Scheme)
	}
	if lockscheme.IsDefault(m.Scheme) {
		if err := writeU32(bw, formatVersion); err != nil {
			return err
		}
	} else {
		if err := writeU32(bw, formatVersionV2); err != nil {
			return err
		}
		if err := writeString(bw, m.Scheme); err != nil {
			return err
		}
	}
	cfg := m.Config
	if err := writeString(bw, string(cfg.Arch)); err != nil {
		return err
	}
	for _, v := range []int{cfg.InC, cfg.InH, cfg.InW, cfg.Classes} {
		if err := writeU32(bw, uint32(v)); err != nil {
			return err
		}
	}
	if err := writeF64(bw, cfg.WidthScale); err != nil {
		return err
	}
	if err := writeU64(bw, cfg.Seed); err != nil {
		return err
	}
	params := m.Net.Params()
	if err := writeU32(bw, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(len(p.Value.Data))); err != nil {
			return err
		}
		for _, v := range p.Value.Data {
			if err := writeF64(bw, v); err != nil {
				return err
			}
		}
	}
	stats := core.BatchNormStats(m)
	if err := writeU32(bw, uint32(len(stats))); err != nil {
		return err
	}
	for _, s := range stats {
		if err := writeU32(bw, uint32(len(s))); err != nil {
			return err
		}
		for _, v := range s {
			if err := writeF64(bw, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a model saved by Save: it rebuilds the architecture from the
// stored config and fills in the published weights. All locks start
// engaged with zero bits (the baseline function) — applying a key is the
// caller's (i.e. the trusted hardware's) job.
func Load(r io.Reader) (*core.Model, error) {
	br := bufio.NewReader(r)
	var m4 [4]byte
	if _, err := io.ReadFull(br, m4[:]); err != nil {
		return nil, fmt.Errorf("modelio: reading magic: %w", err)
	}
	if m4 != magic {
		return nil, fmt.Errorf("modelio: bad magic %q", m4)
	}
	ver, err := readU32(br)
	if err != nil {
		return nil, err
	}
	scheme := "" // v1: implicit default scheme
	switch ver {
	case formatVersion:
	case formatVersionV2:
		if scheme, err = readString(br); err != nil {
			return nil, err
		}
		if scheme == "" || !lockscheme.Valid(scheme) {
			return nil, fmt.Errorf("modelio: unknown lock scheme %q", scheme)
		}
	default:
		return nil, fmt.Errorf("modelio: unsupported format version %d", ver)
	}
	arch, err := readString(br)
	if err != nil {
		return nil, err
	}
	var dims [4]uint32
	for i := range dims {
		if dims[i], err = readU32(br); err != nil {
			return nil, err
		}
	}
	widthScale, err := readF64(br)
	if err != nil {
		return nil, err
	}
	seed, err := readU64(br)
	if err != nil {
		return nil, err
	}
	model, err := core.NewModel(core.Config{
		Arch: core.Arch(arch),
		InC:  int(dims[0]), InH: int(dims[1]), InW: int(dims[2]),
		Classes:    int(dims[3]),
		WidthScale: widthScale,
		Seed:       seed,
	})
	if err != nil {
		return nil, fmt.Errorf("modelio: rebuilding architecture: %w", err)
	}
	model.Scheme = scheme
	nParams, err := readU32(br)
	if err != nil {
		return nil, err
	}
	params := model.Net.Params()
	if int(nParams) != len(params) {
		return nil, fmt.Errorf("modelio: file has %d parameters, architecture needs %d", nParams, len(params))
	}
	for _, p := range params {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		if name != p.Name {
			return nil, fmt.Errorf("modelio: parameter order mismatch: file %q vs model %q", name, p.Name)
		}
		n, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if int(n) != len(p.Value.Data) {
			return nil, fmt.Errorf("modelio: parameter %q has %d values, want %d", name, n, len(p.Value.Data))
		}
		for i := range p.Value.Data {
			if p.Value.Data[i], err = readF64(br); err != nil {
				return nil, err
			}
		}
	}
	nStats, err := readU32(br)
	if err != nil {
		return nil, err
	}
	stats := core.BatchNormStats(model)
	if int(nStats) != len(stats) {
		return nil, fmt.Errorf("modelio: file has %d batch-norm blocks, architecture needs %d", nStats, len(stats))
	}
	for _, s := range stats {
		n, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if int(n) != len(s) {
			return nil, fmt.Errorf("modelio: batch-norm stat size mismatch")
		}
		for i := range s {
			if s[i], err = readF64(br); err != nil {
				return nil, err
			}
		}
	}
	return model, nil
}

// SaveFile writes the model to path.
func SaveFile(path string, m *core.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, m); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// FlattenParams concatenates all parameter values, used by the encryption
// baseline measurements.
func FlattenParams(m *core.Model) []float64 {
	var out []float64
	for _, p := range m.Net.Params() {
		out = append(out, p.Value.Data...)
	}
	return out
}

// --- primitive encoders -----------------------------------------------------

func writeU32(w io.Writer, v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
func writeU64(w io.Writer, v uint64) error { return binary.Write(w, binary.LittleEndian, v) }
func writeF64(w io.Writer, v float64) error {
	return writeU64(w, math.Float64bits(v))
}

func writeString(w io.Writer, s string) error {
	if len(s) > maxStringLen {
		return fmt.Errorf("modelio: string too long (%d)", len(s))
	}
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readU64(r io.Reader) (uint64, error) {
	var v uint64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readF64(r io.Reader) (float64, error) {
	v, err := readU64(r)
	return math.Float64frombits(v), err
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("modelio: string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
