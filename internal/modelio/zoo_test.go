package modelio

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"testing"

	"hpnn/internal/core"
)

// TestZooGetAliasing is the regression test for the slice-aliasing bug:
// Get must return a copy, in both directions. A caller mutating what it
// got must not corrupt the zoo's stored blob, and the zoo storing a blob
// must not alias the publisher's buffer.
func TestZooGetAliasing(t *testing.T) {
	m := sampleModel(t, core.MLP)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	original := append([]byte(nil), buf.Bytes()...)

	zoo := NewZoo()
	upload := buf.Bytes()
	zoo.Put("m", upload)
	// Publisher reuses its buffer after Put: the stored blob must not move.
	for i := range upload {
		upload[i] = 0xAA
	}

	got, ok := zoo.Get("m")
	if !ok {
		t.Fatal("published model missing")
	}
	if !bytes.Equal(got, original) {
		t.Fatal("zoo stored an alias of the publisher's buffer")
	}
	// Consumer scribbles on its copy: the next Get must see the original.
	for i := range got {
		got[i] ^= 0xFF
	}
	again, ok := zoo.Get("m")
	if !ok {
		t.Fatal("published model missing on second get")
	}
	if !bytes.Equal(again, original) {
		t.Fatal("mutating a fetched blob corrupted the zoo's copy")
	}
}

// TestZooVersioning pins the hot-swap signal: every Put bumps the entry's
// version, Records carries it, and GetVersion agrees.
func TestZooVersioning(t *testing.T) {
	m := sampleModel(t, core.MLP)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	zoo := NewZoo()
	zoo.Put("m", buf.Bytes())
	if _, v, _ := zoo.GetVersion("m"); v != 1 {
		t.Fatalf("first publish at version %d, want 1", v)
	}
	zoo.Put("m", buf.Bytes())
	if _, v, _ := zoo.GetVersion("m"); v != 2 {
		t.Fatalf("re-publish at version %d, want 2", v)
	}
	recs := zoo.Records()
	if len(recs) != 1 || recs[0].Version != 2 {
		t.Fatalf("records %+v, want one entry at version 2", recs)
	}
	if _, _, ok := zoo.GetVersion("ghost"); ok {
		t.Fatal("unpublished model reported a version")
	}
}

// TestZooConditionalFetch pins the ETag watch protocol end to end over
// HTTP: an unconditional fetch returns bytes and an ETag, a conditional
// fetch with the current ETag returns ErrNotModified with no body, and a
// re-publish changes the ETag so the next conditional fetch downloads.
func TestZooConditionalFetch(t *testing.T) {
	zoo := NewZoo()
	srv := httptest.NewServer(zoo.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	m := sampleModel(t, core.CNN1)
	if err := client.Publish("m", m); err != nil {
		t.Fatal(err)
	}
	blob, etag, err := client.FetchBlob("m", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 || etag == "" {
		t.Fatalf("unconditional fetch: %d bytes, etag %q", len(blob), etag)
	}
	if _, err := Load(bytes.NewReader(blob)); err != nil {
		t.Fatalf("fetched blob does not decode: %v", err)
	}

	same, sameTag, err := client.FetchBlob("m", etag)
	if !errors.Is(err, ErrNotModified) {
		t.Fatalf("conditional fetch of unchanged model: %v, want ErrNotModified", err)
	}
	if same != nil || sameTag != etag {
		t.Fatalf("not-modified fetch returned %d bytes, etag %q", len(same), sameTag)
	}

	// Re-publish (new version, same weights is fine) → new ETag → download.
	if err := client.Publish("m", m); err != nil {
		t.Fatal(err)
	}
	blob2, etag2, err := client.FetchBlob("m", etag)
	if err != nil {
		t.Fatal(err)
	}
	if etag2 == etag {
		t.Fatalf("re-publish kept ETag %q", etag)
	}
	if len(blob2) == 0 {
		t.Fatal("changed model fetched no bytes")
	}
	if _, _, err := client.FetchBlob("ghost", ""); err == nil {
		t.Fatal("missing model fetched")
	}
}

// TestZooPublishBlob pins the bytes-in path checkpoint exports use,
// including server-side validation of junk.
func TestZooPublishBlob(t *testing.T) {
	zoo := NewZoo()
	srv := httptest.NewServer(zoo.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	m := sampleModel(t, core.MLP)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	if err := client.PublishBlob("m", buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	back, err := client.Fetch("m")
	if err != nil {
		t.Fatal(err)
	}
	if !sameForward(t, m, back) {
		t.Fatal("blob publish round-trip changed the network function")
	}
	if err := client.PublishBlob("junk", []byte("not a model")); err == nil {
		t.Fatal("junk blob published")
	}
}
