package modelio

import (
	"bytes"
	"testing"

	"hpnn/internal/core"
	"hpnn/internal/lockscheme"
	"hpnn/internal/nn"
	"hpnn/internal/train"
)

// FuzzLoad hardens the deserializer against malformed input: Load must
// return an error or a valid model — never panic or hang — for arbitrary
// bytes. The seed corpus includes a valid model and targeted mutations.
func FuzzLoad(f *testing.F) {
	m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 1})
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("HPNN"))
	f.Add(valid[:len(valid)/2])
	// Corrupt the parameter-count field.
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 40 {
		corrupt[38] = 0xFF
		corrupt[39] = 0xFF
	}
	f.Add(corrupt)
	// Oversized string length.
	huge := append([]byte(nil), valid[:8]...)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0x7F)
	f.Add(huge)
	// Format v2: a valid scheme-stamped blob, a v2 header claiming an
	// unknown scheme, and a v2 header with a truncated scheme string.
	m.Scheme = "deeplock"
	var v2 bytes.Buffer
	if err := Save(&v2, m); err != nil {
		f.Fatal(err)
	}
	m.Scheme = ""
	f.Add(v2.Bytes())
	bogus := append([]byte(nil), "HPNN"...)
	bogus = append(bogus, 2, 0, 0, 0, 5, 0, 0, 0)
	bogus = append(bogus, "bogus"...)
	f.Add(bogus)
	f.Add(v2.Bytes()[:10])

	f.Fuzz(func(t *testing.T, data []byte) {
		model, err := Load(bytes.NewReader(data))
		if err == nil && model == nil {
			t.Fatal("Load returned nil model without error")
		}
	})
}

// FuzzDecodeCheckpoint hardens the checkpoint decoder the same way:
// LoadCheckpoint must return an error or a valid (model, state) pair —
// never panic, hang, or allocate unboundedly — for arbitrary bytes. The
// seed corpus is a valid checkpoint plus truncations and targeted
// corruptions of the length and count fields.
func FuzzDecodeCheckpoint(f *testing.F) {
	m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 1})
	st := train.State{
		NextEpoch: 2,
		Seed:      7,
		Schedule:  "step(0.05,every=2,factor=0.5)",
		Optimizer: nn.OptState{Kind: "sgd", Slots: [][][]float64{{{0.5, -0.5}}, {}}},
		EpochLoss: []float64{1.5, 1.0},
		TestAcc:   []float64{0.3, 0.5},
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m, st); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("HPCK"))
	f.Add(valid[:8])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-4])
	// Forged model-blob length.
	forged := append([]byte(nil), valid[:8]...)
	forged = append(forged, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	f.Add(forged)
	// Corrupt a byte in the middle of the embedded model blob and in the
	// trailing state section.
	for _, off := range []int{20, len(valid) - 12} {
		corrupt := append([]byte(nil), valid...)
		corrupt[off] ^= 0xFF
		f.Add(corrupt)
	}
	// Checkpoint v2: a valid scheme-stamped record, a v2 header with an
	// unknown scheme, and a header/blob scheme disagreement (v2 header over
	// the original v1 body).
	m.Scheme = "pufshuffle"
	var v2 bytes.Buffer
	if err := SaveCheckpoint(&v2, m, st); err != nil {
		f.Fatal(err)
	}
	m.Scheme = ""
	f.Add(v2.Bytes())
	bogus := append([]byte(nil), "HPCK"...)
	bogus = append(bogus, 2, 0, 0, 0, 5, 0, 0, 0)
	bogus = append(bogus, "bogus"...)
	f.Add(bogus)
	spliced := append([]byte(nil), "HPCK"...)
	spliced = append(spliced, 2, 0, 0, 0, 8, 0, 0, 0)
	spliced = append(spliced, "deeplock"...)
	spliced = append(spliced, valid[8:]...)
	f.Add(spliced)

	f.Fuzz(func(t *testing.T, data []byte) {
		model, _, err := LoadCheckpoint(bytes.NewReader(data))
		if err == nil && model == nil {
			t.Fatal("LoadCheckpoint returned nil model without error")
		}
	})
}

// FuzzSniffScheme hardens the zoo's record-header sniffing: for arbitrary
// bytes it must return a registered scheme or an error — never panic — and
// must agree with the full decoder about the scheme of anything Load
// accepts.
func FuzzSniffScheme(f *testing.F) {
	m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 1})
	for _, scheme := range []string{"", "deeplock", "pufshuffle"} {
		m.Scheme = scheme
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:6])
	}
	m.Scheme = ""
	f.Add([]byte{})
	f.Add([]byte("HPNN"))
	bogus := append([]byte(nil), "HPNN"...)
	bogus = append(bogus, 2, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F)
	f.Add(bogus)

	f.Fuzz(func(t *testing.T, data []byte) {
		scheme, err := SniffScheme(data)
		if err != nil {
			return
		}
		if !lockscheme.Valid(scheme) || scheme == "" {
			t.Fatalf("SniffScheme returned unregistered scheme %q", scheme)
		}
		if model, lerr := Load(bytes.NewReader(data)); lerr == nil {
			if got := lockscheme.Canonical(model.Scheme); got != scheme {
				t.Fatalf("sniffed scheme %q, full decode says %q", scheme, got)
			}
		}
	})
}
