package modelio

import (
	"bytes"
	"testing"

	"hpnn/internal/core"
	"hpnn/internal/nn"
	"hpnn/internal/train"
)

// FuzzLoad hardens the deserializer against malformed input: Load must
// return an error or a valid model — never panic or hang — for arbitrary
// bytes. The seed corpus includes a valid model and targeted mutations.
func FuzzLoad(f *testing.F) {
	m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 1})
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("HPNN"))
	f.Add(valid[:len(valid)/2])
	// Corrupt the parameter-count field.
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 40 {
		corrupt[38] = 0xFF
		corrupt[39] = 0xFF
	}
	f.Add(corrupt)
	// Oversized string length.
	huge := append([]byte(nil), valid[:8]...)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0x7F)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		model, err := Load(bytes.NewReader(data))
		if err == nil && model == nil {
			t.Fatal("Load returned nil model without error")
		}
	})
}

// FuzzDecodeCheckpoint hardens the checkpoint decoder the same way:
// LoadCheckpoint must return an error or a valid (model, state) pair —
// never panic, hang, or allocate unboundedly — for arbitrary bytes. The
// seed corpus is a valid checkpoint plus truncations and targeted
// corruptions of the length and count fields.
func FuzzDecodeCheckpoint(f *testing.F) {
	m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 1})
	st := train.State{
		NextEpoch: 2,
		Seed:      7,
		Schedule:  "step(0.05,every=2,factor=0.5)",
		Optimizer: nn.OptState{Kind: "sgd", Slots: [][][]float64{{{0.5, -0.5}}, {}}},
		EpochLoss: []float64{1.5, 1.0},
		TestAcc:   []float64{0.3, 0.5},
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m, st); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("HPCK"))
	f.Add(valid[:8])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-4])
	// Forged model-blob length.
	forged := append([]byte(nil), valid[:8]...)
	forged = append(forged, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	f.Add(forged)
	// Corrupt a byte in the middle of the embedded model blob and in the
	// trailing state section.
	for _, off := range []int{20, len(valid) - 12} {
		corrupt := append([]byte(nil), valid...)
		corrupt[off] ^= 0xFF
		f.Add(corrupt)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		model, _, err := LoadCheckpoint(bytes.NewReader(data))
		if err == nil && model == nil {
			t.Fatal("LoadCheckpoint returned nil model without error")
		}
	})
}
