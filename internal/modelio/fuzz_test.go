package modelio

import (
	"bytes"
	"testing"

	"hpnn/internal/core"
)

// FuzzLoad hardens the deserializer against malformed input: Load must
// return an error or a valid model — never panic or hang — for arbitrary
// bytes. The seed corpus includes a valid model and targeted mutations.
func FuzzLoad(f *testing.F) {
	m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 1})
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("HPNN"))
	f.Add(valid[:len(valid)/2])
	// Corrupt the parameter-count field.
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 40 {
		corrupt[38] = 0xFF
		corrupt[39] = 0xFF
	}
	f.Add(corrupt)
	// Oversized string length.
	huge := append([]byte(nil), valid[:8]...)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0x7F)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		model, err := Load(bytes.NewReader(data))
		if err == nil && model == nil {
			t.Fatal("Load returned nil model without error")
		}
	})
}
