package modelio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"hpnn/internal/core"
	"hpnn/internal/lockscheme"
)

// Zoo is the public model-sharing platform of Fig. 1: an in-memory HTTP
// service where owners publish obfuscated models and anyone can list and
// download them. Distribution is deliberately open — HPNN's security rests
// on the hardware key, not on restricting access to the weights.
type Zoo struct {
	mu       sync.RWMutex
	models   map[string][]byte
	schemes  map[string]string // per-record lock-scheme identifier (canonical)
	versions map[string]uint64 // bumped on every Put; the ETag serving layer watch loops poll
}

// NewZoo returns an empty model zoo.
func NewZoo() *Zoo {
	return &Zoo{
		models:   make(map[string][]byte),
		schemes:  make(map[string]string),
		versions: make(map[string]uint64),
	}
}

// Record describes one published zoo entry: its name, the lock scheme the
// model was published under, and its version (bumped on every re-publish —
// the hot-swap signal serving registries watch). Pre-scheme (format v1)
// blobs read as the default HPNN XOR scheme.
type Record struct {
	Name    string `json:"name"`
	Scheme  string `json:"scheme"`
	Version uint64 `json:"version"`
}

// ErrNotModified is returned by conditional fetches when the server's copy
// still matches the caller's ETag — nothing to download, nothing to swap.
var ErrNotModified = fmt.Errorf("modelio: model not modified")

// etagFor renders a version as the HTTP ETag the zoo serves.
func etagFor(version uint64) string { return fmt.Sprintf("\"v%d\"", version) }

// SniffScheme reads just enough of a serialized model blob to report its
// lock-scheme identifier (canonicalized). It rejects bad magic, unsupported
// versions and unknown scheme IDs without decoding the weights.
func SniffScheme(blob []byte) (string, error) {
	br := bytes.NewReader(blob)
	var m4 [4]byte
	if _, err := io.ReadFull(br, m4[:]); err != nil {
		return "", fmt.Errorf("modelio: reading magic: %w", err)
	}
	if m4 != magic {
		return "", fmt.Errorf("modelio: bad magic %q", m4)
	}
	ver, err := readU32(br)
	if err != nil {
		return "", err
	}
	switch ver {
	case formatVersion:
		return lockscheme.DefaultName, nil
	case formatVersionV2:
		scheme, err := readString(br)
		if err != nil {
			return "", err
		}
		if scheme == "" || !lockscheme.Valid(scheme) {
			return "", fmt.Errorf("modelio: unknown lock scheme %q", scheme)
		}
		return lockscheme.Canonical(scheme), nil
	default:
		return "", fmt.Errorf("modelio: unsupported format version %d", ver)
	}
}

// Put stores a serialized model under name (local API, used by the server
// side and tests). The record's scheme field is sniffed from the blob
// header; unparseable blobs store with an empty scheme.
func (z *Zoo) Put(name string, blob []byte) {
	scheme, err := SniffScheme(blob)
	if err != nil {
		scheme = ""
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	z.models[name] = append([]byte(nil), blob...)
	z.schemes[name] = scheme
	z.versions[name]++
}

// Get retrieves a copy of a serialized model. The copy is defensive in both
// directions: callers can mutate what they got, and a concurrent Put can
// never change bytes a caller is still decoding.
func (z *Zoo) Get(name string) ([]byte, bool) {
	b, _, ok := z.GetVersion(name)
	return b, ok
}

// GetVersion is Get plus the entry's current version — the pair the
// conditional HTTP handler and watch loops are built on.
func (z *Zoo) GetVersion(name string) ([]byte, uint64, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	b, ok := z.models[name]
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), b...), z.versions[name], true
}

// Names lists the published model names, sorted.
func (z *Zoo) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]string, 0, len(z.models))
	//hpnn:allow(determinism) keys are collected then sorted below
	for n := range z.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Records lists the published entries with their scheme identifiers,
// sorted by name.
func (z *Zoo) Records() []Record {
	names := z.Names()
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]Record, 0, len(names))
	for _, n := range names {
		out = append(out, Record{Name: n, Scheme: z.schemes[n], Version: z.versions[n]})
	}
	return out
}

// Handler serves the zoo over HTTP:
//
//	GET  /models           → JSON list of model names
//	GET  /models/{name}    → binary model download
//	POST /models/{name}    → publish (owner upload)
func (z *Zoo) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/models", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		// An encode error here means the client went away mid-response;
		// the status is already committed, so there is nothing to report.
		_ = json.NewEncoder(w).Encode(z.Names())
	})
	mux.HandleFunc("/records", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(z.Records())
	})
	mux.HandleFunc("/models/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/models/")
		if name == "" || strings.Contains(name, "/") {
			http.Error(w, "invalid model name", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			blob, version, ok := z.GetVersion(name)
			if !ok {
				http.Error(w, "model not found", http.StatusNotFound)
				return
			}
			etag := etagFor(version)
			w.Header().Set("ETag", etag)
			if r.Header.Get("If-None-Match") == etag {
				w.WriteHeader(http.StatusNotModified)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(blob) // short write = client disconnect; nothing to report
		case http.MethodPost:
			blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<30))
			if err != nil {
				http.Error(w, "read error", http.StatusBadRequest)
				return
			}
			// Validate before accepting: the zoo only hosts HPNN models.
			if _, err := Load(bytes.NewReader(blob)); err != nil {
				http.Error(w, fmt.Sprintf("invalid model: %v", err), http.StatusUnprocessableEntity)
				return
			}
			z.Put(name, blob)
			w.WriteHeader(http.StatusCreated)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

// Client talks to a Zoo server.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient returns a zoo client for the given base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: http.DefaultClient}
}

// Publish serializes and uploads a model (the owner-side operation).
func (c *Client) Publish(name string, m *core.Model) error {
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		return err
	}
	resp, err := c.HTTP.Post(c.Base+"/models/"+name, "application/octet-stream", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("modelio: publish failed: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// PublishBlob uploads an already-serialized model blob under name. The
// owner-side path for artifacts that exist as bytes (checkpoint exports,
// files on disk) without a decode/re-encode round trip.
func (c *Client) PublishBlob(name string, blob []byte) error {
	resp, err := c.HTTP.Post(c.Base+"/models/"+name, "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("modelio: publish failed: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// FetchBlob downloads a published model's raw bytes along with the entry's
// ETag. A non-empty etag makes the fetch conditional: when the server's
// copy still matches, FetchBlob returns ErrNotModified and no bytes — the
// cheap poll serving watch loops run between hot-swaps.
func (c *Client) FetchBlob(name, etag string) ([]byte, string, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/models/"+name, nil)
	if err != nil {
		return nil, "", err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil, etag, ErrNotModified
	case http.StatusOK:
		blob, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
		if err != nil {
			return nil, "", err
		}
		return blob, resp.Header.Get("ETag"), nil
	default:
		return nil, "", fmt.Errorf("modelio: fetch failed: %s", resp.Status)
	}
}

// Fetch downloads and deserializes a published model (the end-user or
// attacker operation — anyone can do this).
func (c *Client) Fetch(name string) (*core.Model, error) {
	resp, err := c.HTTP.Get(c.Base + "/models/" + name)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("modelio: fetch failed: %s", resp.Status)
	}
	return Load(resp.Body)
}

// ListRecords returns the published entries with their lock-scheme
// identifiers.
func (c *Client) ListRecords() ([]Record, error) {
	resp, err := c.HTTP.Get(c.Base + "/records")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("modelio: record list failed: %s", resp.Status)
	}
	var recs []Record
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// List returns the published model names.
func (c *Client) List() ([]string, error) {
	resp, err := c.HTTP.Get(c.Base + "/models")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("modelio: list failed: %s", resp.Status)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		return nil, err
	}
	return names, nil
}
