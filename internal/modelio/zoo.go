package modelio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"hpnn/internal/core"
)

// Zoo is the public model-sharing platform of Fig. 1: an in-memory HTTP
// service where owners publish obfuscated models and anyone can list and
// download them. Distribution is deliberately open — HPNN's security rests
// on the hardware key, not on restricting access to the weights.
type Zoo struct {
	mu     sync.RWMutex
	models map[string][]byte
}

// NewZoo returns an empty model zoo.
func NewZoo() *Zoo {
	return &Zoo{models: make(map[string][]byte)}
}

// Put stores a serialized model under name (local API, used by the server
// side and tests).
func (z *Zoo) Put(name string, blob []byte) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.models[name] = append([]byte(nil), blob...)
}

// Get retrieves a serialized model.
func (z *Zoo) Get(name string) ([]byte, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	b, ok := z.models[name]
	return b, ok
}

// Names lists the published model names, sorted.
func (z *Zoo) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]string, 0, len(z.models))
	//hpnn:allow(determinism) keys are collected then sorted below
	for n := range z.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Handler serves the zoo over HTTP:
//
//	GET  /models           → JSON list of model names
//	GET  /models/{name}    → binary model download
//	POST /models/{name}    → publish (owner upload)
func (z *Zoo) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/models", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		// An encode error here means the client went away mid-response;
		// the status is already committed, so there is nothing to report.
		_ = json.NewEncoder(w).Encode(z.Names())
	})
	mux.HandleFunc("/models/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/models/")
		if name == "" || strings.Contains(name, "/") {
			http.Error(w, "invalid model name", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			blob, ok := z.Get(name)
			if !ok {
				http.Error(w, "model not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(blob) // short write = client disconnect; nothing to report
		case http.MethodPost:
			blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<30))
			if err != nil {
				http.Error(w, "read error", http.StatusBadRequest)
				return
			}
			// Validate before accepting: the zoo only hosts HPNN models.
			if _, err := Load(bytes.NewReader(blob)); err != nil {
				http.Error(w, fmt.Sprintf("invalid model: %v", err), http.StatusUnprocessableEntity)
				return
			}
			z.Put(name, blob)
			w.WriteHeader(http.StatusCreated)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

// Client talks to a Zoo server.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient returns a zoo client for the given base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: http.DefaultClient}
}

// Publish serializes and uploads a model (the owner-side operation).
func (c *Client) Publish(name string, m *core.Model) error {
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		return err
	}
	resp, err := c.HTTP.Post(c.Base+"/models/"+name, "application/octet-stream", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("modelio: publish failed: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// Fetch downloads and deserializes a published model (the end-user or
// attacker operation — anyone can do this).
func (c *Client) Fetch(name string) (*core.Model, error) {
	resp, err := c.HTTP.Get(c.Base + "/models/" + name)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("modelio: fetch failed: %s", resp.Status)
	}
	return Load(resp.Body)
}

// List returns the published model names.
func (c *Client) List() ([]string, error) {
	resp, err := c.HTTP.Get(c.Base + "/models")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("modelio: list failed: %s", resp.Status)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		return nil, err
	}
	return names, nil
}
