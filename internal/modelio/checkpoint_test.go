package modelio

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hpnn/internal/core"
	"hpnn/internal/keys"
	"hpnn/internal/nn"
	"hpnn/internal/rng"
	"hpnn/internal/schedule"
	"hpnn/internal/train"
)

// sampleState builds a representative trainer state with both slot shapes
// (populated vectors and a never-touched empty slot).
func sampleState() train.State {
	return train.State{
		NextEpoch: 3,
		Seed:      42,
		Schedule:  "step(0.05,every=2,factor=0.5)",
		Optimizer: nn.OptState{
			Kind: "sgd",
			Slots: [][][]float64{
				{{0.1, -0.2, 0.3}},
				{}, // parameter whose slot was never allocated
				{{1e-9, math.Pi}},
			},
		},
		EpochLoss: []float64{2.31, 1.7, 0.9},
		TestAcc:   []float64{0.2, 0.45, 0.6},
	}
}

func lockedCheckpointModel(t testing.TB) *core.Model {
	t.Helper()
	m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 5})
	m.ApplyRawKey(keys.Generate(rng.New(6)), schedule.New(keys.KeyBits, 7))
	return m
}

func TestCheckpointRoundTrip(t *testing.T) {
	m := lockedCheckpointModel(t)
	st := sampleState()
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m, st); err != nil {
		t.Fatal(err)
	}
	back, got, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Weights round-trip exactly.
	wantP, gotP := m.Net.Params(), back.Net.Params()
	if len(wantP) != len(gotP) {
		t.Fatalf("param count %d vs %d", len(gotP), len(wantP))
	}
	for i := range wantP {
		for j := range wantP[i].Value.Data {
			if math.Float64bits(wantP[i].Value.Data[j]) != math.Float64bits(gotP[i].Value.Data[j]) {
				t.Fatalf("weight %d/%d not bitwise-preserved", i, j)
			}
		}
	}
	// Lock bits and engagement round-trip — the checkpoint is the owner's
	// private artifact, unlike the published model format which strips them.
	wantK, gotK := m.KeyBits(), back.KeyBits()
	if len(wantK) != len(gotK) {
		t.Fatalf("lock bit count %d vs %d", len(gotK), len(wantK))
	}
	anySet := false
	for i := range wantK {
		if wantK[i] != gotK[i] {
			t.Fatalf("lock bit %d lost", i)
		}
		anySet = anySet || wantK[i] == 1
	}
	if !anySet {
		t.Fatal("test key has no set bits — checkpoint lock coverage is vacuous")
	}
	for i, l := range back.Locks() {
		if !l.Engaged {
			t.Fatalf("lock %d engagement lost", i)
		}
	}
	// Trainer state round-trips exactly.
	if got.NextEpoch != st.NextEpoch || got.Seed != st.Seed || got.Schedule != st.Schedule {
		t.Fatalf("state header mismatch: %+v", got)
	}
	if got.Optimizer.Kind != st.Optimizer.Kind || got.Optimizer.Step != st.Optimizer.Step {
		t.Fatalf("optimizer header mismatch: %+v", got.Optimizer)
	}
	if len(got.Optimizer.Slots) != len(st.Optimizer.Slots) {
		t.Fatalf("slot count %d vs %d", len(got.Optimizer.Slots), len(st.Optimizer.Slots))
	}
	for i, slot := range st.Optimizer.Slots {
		if len(got.Optimizer.Slots[i]) != len(slot) {
			t.Fatalf("slot %d vector count %d vs %d", i, len(got.Optimizer.Slots[i]), len(slot))
		}
		for j, vec := range slot {
			for k, v := range vec {
				if math.Float64bits(got.Optimizer.Slots[i][j][k]) != math.Float64bits(v) {
					t.Fatalf("slot %d/%d/%d not bitwise-preserved", i, j, k)
				}
			}
		}
	}
	for i, v := range st.EpochLoss {
		if got.EpochLoss[i] != v {
			t.Fatal("epoch-loss trajectory lost")
		}
	}
	for i, v := range st.TestAcc {
		if got.TestAcc[i] != v {
			t.Fatal("test-acc trajectory lost")
		}
	}
}

// TestCheckpointShardsRoundTrip: data-parallel runs (State.Shards != 0)
// serialize as version 3 with the shard count preserved — even for a
// default-scheme model, whose scheme stamp may be empty and must be
// canonicalized into the v3 header. Sequential runs keep the pre-v3 bytes
// and load with Shards == 0.
func TestCheckpointShardsRoundTrip(t *testing.T) {
	m := lockedCheckpointModel(t)
	st := sampleState()
	st.Shards = 8
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m, st); err != nil {
		t.Fatal(err)
	}
	_, got, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 8 {
		t.Fatalf("shard count %d after round trip, want 8", got.Shards)
	}
	if got.NextEpoch != st.NextEpoch || got.Seed != st.Seed || got.Schedule != st.Schedule {
		t.Fatalf("v3 state header mismatch: %+v", got)
	}

	// Truncating the trailing shard word must be detected, not default.
	data := buf.Bytes()
	if _, _, err := LoadCheckpoint(bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Fatal("v3 checkpoint without shard word accepted")
	}

	// Sequential runs stay on the old versions and load with Shards == 0.
	var seq bytes.Buffer
	if err := SaveCheckpoint(&seq, m, sampleState()); err != nil {
		t.Fatal(err)
	}
	if _, got, err = LoadCheckpoint(bytes.NewReader(seq.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.Shards != 0 {
		t.Fatalf("sequential checkpoint loads with %d shards, want 0", got.Shards)
	}
	if seq.Len() >= buf.Len() {
		t.Fatal("sequential checkpoint did not use the compact pre-v3 layout")
	}
}

func TestCheckpointFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	m := lockedCheckpointModel(t)
	st := train.State{NextEpoch: 1, Seed: 9, Schedule: "const(0.05)"}
	if err := SaveCheckpointFile(path, m, st); err != nil {
		t.Fatal(err)
	}
	// No temporary file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temporary checkpoint file left behind: %v", err)
	}
	// Overwrite with a later epoch; the file must update in place.
	st.NextEpoch = 2
	if err := SaveCheckpointFile(path, m, st); err != nil {
		t.Fatal(err)
	}
	_, got, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextEpoch != 2 {
		t.Fatalf("checkpoint file holds epoch %d, want 2", got.NextEpoch)
	}
	// A save into an unwritable location fails without touching the
	// previous good checkpoint.
	if err := SaveCheckpointFile(filepath.Join(dir, "missing", "x.ckpt"), m, st); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
	if _, _, err := LoadCheckpointFile(path); err != nil {
		t.Fatalf("previous checkpoint damaged by failed save: %v", err)
	}
}

func TestCheckpointRejectsMalformed(t *testing.T) {
	m := lockedCheckpointModel(t)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m, train.State{NextEpoch: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("NOPE1234"),
		"truncated":    valid[:len(valid)/3],
		"half record":  valid[:len(valid)-9],
		"bad version":  append(append([]byte{}, valid[:4]...), 0xFF, 0xFF, 0xFF, 0xFF),
		"forged model": append(append([]byte{}, valid[:8]...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F),
	}
	for name, data := range cases {
		if _, _, err := LoadCheckpoint(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: malformed checkpoint accepted", name)
		}
	}
}

func TestCheckpointLockMismatchRejected(t *testing.T) {
	m := lockedCheckpointModel(t)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m, train.State{NextEpoch: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the lock-count field: it sits right after the embedded model
	// blob (4 magic + 4 version + 8 length + blob).
	data := append([]byte(nil), buf.Bytes()...)
	blobLen := int(uint64(data[8]) | uint64(data[9])<<8 | uint64(data[10])<<16 | uint64(data[11])<<24 |
		uint64(data[12])<<32 | uint64(data[13])<<40 | uint64(data[14])<<48 | uint64(data[15])<<56)
	off := 16 + blobLen
	data[off] = 0x7F // lock count no longer matches the architecture
	if _, _, err := LoadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("checkpoint with wrong lock count accepted")
	}
}
