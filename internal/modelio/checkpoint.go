package modelio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"

	"hpnn/internal/core"
	"hpnn/internal/lockscheme"
	"hpnn/internal/train"
)

// Checkpoint record: everything a killed training run needs to resume
// bitwise. Unlike the published model format (which deliberately strips
// key material), a checkpoint is the OWNER'S private artifact — it embeds
// the lock bits and engagement state alongside the weights, the
// optimizer's slot state (momentum velocity or Adam moments), the
// LR-schedule position and the shuffle-seed stream, plus the trajectory
// recorded so far. Treat checkpoint files like key files.
//
// Layout (little-endian, after the "HPCK" magic and a format version):
//
//	u64  model blob length, then the blob (the public model format:
//	     architecture config + weights + batch-norm statistics)
//	u32  lock count; per lock: u32 neurons, u8 engaged, neurons×u8 bits
//	u32  next epoch (the LR-schedule and shuffle-stream position)
//	u64  shuffle seed
//	str  schedule descriptor (resume sanity check)
//	str  optimizer kind ("sgd"/"adam"), u32 optimizer step counter
//	u32  slot count; per slot: u32 vector count; per vector: u32 len + f64s
//	u32  epoch-loss count + f64s; u32 test-acc count + f64s
//	u32  gradient micro-shard count (version 3 only)

// ckptMagic identifies serialized HPNN training checkpoints.
var ckptMagic = [4]byte{'H', 'P', 'C', 'K'}

// Checkpoint versions. Version 1 is the original layout, implicitly the
// default HPNN XOR scheme; version 2 inserts the lock-scheme identifier
// right after the version word (mirroring the model format). Default-scheme
// checkpoints keep writing version 1, preserving pre-scheme bytes exactly.
// Version 3 records data-parallel runs: the scheme string is always present
// (canonicalized, since the default scheme's stamp may be empty) and a
// trailing u32 carries train.State.Shards — the micro-shard count that
// fixes the run's numerics. The replica count is deliberately NOT recorded:
// checkpoints are replica-count-invariant, so a run trained at K=4 resumes
// bitwise at K=2. Sequential runs (Shards == 0) keep writing v1/v2 bytes
// unchanged.
const (
	ckptVersion   uint32 = 1
	ckptVersionV2 uint32 = 2
	ckptVersionV3 uint32 = 3
)

// Defensive bounds for the decoder (fuzzed; see FuzzDecodeCheckpoint).
const (
	maxModelBlob   = 1 << 30 // 1 GiB serialized model
	maxLocks       = 1 << 16
	maxLockNeurons = 1 << 24
	maxEpochs      = 1 << 20
	maxSlots       = 1 << 16
	maxSlotVectors = 8
	maxShards      = 1 << 16
)

// SaveCheckpoint writes a resumable training checkpoint for m with
// trainer state st (from train.Trainer.Snapshot / EpochInfo.Snapshot).
func SaveCheckpoint(w io.Writer, m *core.Model, st train.State) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ckptMagic[:]); err != nil {
		return err
	}
	if !lockscheme.Valid(m.Scheme) {
		return fmt.Errorf("modelio: model stamped with unknown lock scheme %q", m.Scheme)
	}
	switch {
	case st.Shards != 0:
		// v3 always carries the scheme string, canonicalized — a
		// default-scheme model may be stamped "", which the scheme-bearing
		// load path rejects.
		if st.Shards < 0 || st.Shards > maxShards {
			return fmt.Errorf("modelio: checkpoint shard count %d out of range", st.Shards)
		}
		if err := writeU32(bw, ckptVersionV3); err != nil {
			return err
		}
		if err := writeString(bw, lockscheme.Canonical(m.Scheme)); err != nil {
			return err
		}
	case lockscheme.IsDefault(m.Scheme):
		if err := writeU32(bw, ckptVersion); err != nil {
			return err
		}
	default:
		if err := writeU32(bw, ckptVersionV2); err != nil {
			return err
		}
		if err := writeString(bw, m.Scheme); err != nil {
			return err
		}
	}
	// The model record is length-prefixed because its own reader is
	// buffered and would over-consume a shared stream.
	var blob bytes.Buffer
	if err := Save(&blob, m); err != nil {
		return fmt.Errorf("modelio: embedding model in checkpoint: %w", err)
	}
	if err := writeU64(bw, uint64(blob.Len())); err != nil {
		return err
	}
	if _, err := bw.Write(blob.Bytes()); err != nil {
		return err
	}
	locks := m.Locks()
	if err := writeU32(bw, uint32(len(locks))); err != nil {
		return err
	}
	for _, l := range locks {
		bits := l.Bits()
		if err := writeU32(bw, uint32(len(bits))); err != nil {
			return err
		}
		engaged := byte(0)
		if l.Engaged {
			engaged = 1
		}
		if err := bw.WriteByte(engaged); err != nil {
			return err
		}
		// Lock bits are checkpoint state by design: HPCK files live on the
		// owner's training host, and resume must re-engage the exact lock.
		// This is the single choke point where they touch a writer.
		//hpnn:keyok(owner-side HPCK checkpoint needs lock bits to resume training)
		if _, err := bw.Write(bits); err != nil {
			return err
		}
	}
	if err := writeU32(bw, uint32(st.NextEpoch)); err != nil {
		return err
	}
	if err := writeU64(bw, st.Seed); err != nil {
		return err
	}
	if err := writeString(bw, st.Schedule); err != nil {
		return err
	}
	if err := writeString(bw, st.Optimizer.Kind); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(st.Optimizer.Step)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(st.Optimizer.Slots))); err != nil {
		return err
	}
	for _, slot := range st.Optimizer.Slots {
		if err := writeU32(bw, uint32(len(slot))); err != nil {
			return err
		}
		for _, vec := range slot {
			if err := writeF64s(bw, vec); err != nil {
				return err
			}
		}
	}
	if err := writeF64s(bw, st.EpochLoss); err != nil {
		return err
	}
	if err := writeF64s(bw, st.TestAcc); err != nil {
		return err
	}
	if st.Shards != 0 {
		if err := writeU32(bw, uint32(st.Shards)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadCheckpoint reads a checkpoint saved by SaveCheckpoint: it rebuilds
// the model (weights, batch-norm statistics, lock bits and engagement
// state) and returns the trainer state to pass to train.Trainer.Restore
// (or core.TrainConfig.Resume). Malformed input returns an error — never
// a panic.
func LoadCheckpoint(r io.Reader) (*core.Model, train.State, error) {
	var st train.State
	br := bufio.NewReader(r)
	var m4 [4]byte
	if _, err := io.ReadFull(br, m4[:]); err != nil {
		return nil, st, fmt.Errorf("modelio: reading checkpoint magic: %w", err)
	}
	if m4 != ckptMagic {
		return nil, st, fmt.Errorf("modelio: bad checkpoint magic %q", m4)
	}
	ver, err := readU32(br)
	if err != nil {
		return nil, st, err
	}
	scheme := "" // v1: implicit default scheme
	switch ver {
	case ckptVersion:
	case ckptVersionV2, ckptVersionV3:
		if scheme, err = readString(br); err != nil {
			return nil, st, err
		}
		if scheme == "" || !lockscheme.Valid(scheme) {
			return nil, st, fmt.Errorf("modelio: unknown lock scheme %q in checkpoint", scheme)
		}
	default:
		return nil, st, fmt.Errorf("modelio: unsupported checkpoint version %d", ver)
	}
	blobLen, err := readU64(br)
	if err != nil {
		return nil, st, err
	}
	if blobLen > maxModelBlob {
		return nil, st, fmt.Errorf("modelio: checkpoint model blob %d bytes exceeds limit", blobLen)
	}
	// CopyN grows the buffer with the data actually present, so a bogus
	// length cannot force a huge allocation up front.
	var blob bytes.Buffer
	if _, err := io.CopyN(&blob, br, int64(blobLen)); err != nil {
		return nil, st, fmt.Errorf("modelio: reading embedded model: %w", err)
	}
	model, err := Load(bytes.NewReader(blob.Bytes()))
	if err != nil {
		return nil, st, fmt.Errorf("modelio: decoding embedded model: %w", err)
	}
	// The scheme rides in two places (checkpoint header and embedded model
	// blob); a disagreement means a corrupted or spliced record.
	if lockscheme.Canonical(scheme) != lockscheme.Canonical(model.Scheme) {
		return nil, st, fmt.Errorf("modelio: checkpoint scheme %q disagrees with embedded model scheme %q",
			lockscheme.Canonical(scheme), lockscheme.Canonical(model.Scheme))
	}
	locks := model.Locks()
	nLocks, err := readU32(br)
	if err != nil {
		return nil, st, err
	}
	if nLocks > maxLocks || int(nLocks) != len(locks) {
		return nil, st, fmt.Errorf("modelio: checkpoint has %d locks, architecture needs %d", nLocks, len(locks))
	}
	for _, l := range locks {
		n, err := readU32(br)
		if err != nil {
			return nil, st, err
		}
		if n > maxLockNeurons || int(n) != l.Neurons() {
			return nil, st, fmt.Errorf("modelio: lock %s has %d checkpoint bits, needs %d", l.ID, n, l.Neurons())
		}
		engaged, err := br.ReadByte()
		if err != nil {
			return nil, st, err
		}
		bits := make([]byte, n)
		if _, err := io.ReadFull(br, bits); err != nil {
			return nil, st, err
		}
		for i, b := range bits {
			bits[i] = b & 1
		}
		l.SetBits(bits)
		if engaged != 0 {
			l.Engage()
		} else {
			l.Disengage()
		}
	}
	nextEpoch, err := readU32(br)
	if err != nil {
		return nil, st, err
	}
	if nextEpoch > maxEpochs {
		return nil, st, fmt.Errorf("modelio: checkpoint epoch %d exceeds limit", nextEpoch)
	}
	st.NextEpoch = int(nextEpoch)
	if st.Seed, err = readU64(br); err != nil {
		return nil, st, err
	}
	if st.Schedule, err = readString(br); err != nil {
		return nil, st, err
	}
	if st.Optimizer.Kind, err = readString(br); err != nil {
		return nil, st, err
	}
	optStep, err := readU32(br)
	if err != nil {
		return nil, st, err
	}
	st.Optimizer.Step = int(optStep)
	nSlots, err := readU32(br)
	if err != nil {
		return nil, st, err
	}
	if nSlots > maxSlots {
		return nil, st, fmt.Errorf("modelio: checkpoint has %d optimizer slots, limit %d", nSlots, maxSlots)
	}
	st.Optimizer.Slots = make([][][]float64, nSlots)
	for i := range st.Optimizer.Slots {
		nVecs, err := readU32(br)
		if err != nil {
			return nil, st, err
		}
		if nVecs > maxSlotVectors {
			return nil, st, fmt.Errorf("modelio: optimizer slot %d has %d vectors, limit %d", i, nVecs, maxSlotVectors)
		}
		if nVecs == 0 {
			continue
		}
		vecs := make([][]float64, nVecs)
		for j := range vecs {
			if vecs[j], err = readF64s(br); err != nil {
				return nil, st, err
			}
		}
		st.Optimizer.Slots[i] = vecs
	}
	if st.EpochLoss, err = readF64s(br); err != nil {
		return nil, st, err
	}
	if st.TestAcc, err = readF64s(br); err != nil {
		return nil, st, err
	}
	if len(st.EpochLoss) > maxEpochs || len(st.TestAcc) > maxEpochs {
		return nil, st, fmt.Errorf("modelio: checkpoint trajectory exceeds epoch limit")
	}
	if ver == ckptVersionV3 {
		shards, err := readU32(br)
		if err != nil {
			return nil, st, err
		}
		if shards == 0 || shards > maxShards {
			return nil, st, fmt.Errorf("modelio: checkpoint shard count %d out of range", shards)
		}
		st.Shards = int(shards)
	}
	return model, st, nil
}

// SaveCheckpointFile writes the checkpoint atomically: to a temporary
// sibling first, then rename, so a crash mid-write never clobbers the
// previous good checkpoint — the property the kill/resume flow relies on.
func SaveCheckpointFile(path string, m *core.Model, st train.State) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := SaveCheckpoint(f, m, st); err != nil {
		_ = f.Close()      // the encode error is the one worth reporting
		_ = os.Remove(tmp) // best-effort cleanup of the partial temp file
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp) // best-effort cleanup of the partial temp file
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpointFile reads a checkpoint from path.
func LoadCheckpointFile(path string) (*core.Model, train.State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, train.State{}, err
	}
	defer f.Close()
	return LoadCheckpoint(f)
}

// writeF64s writes a length-prefixed float64 slice.
func writeF64s(w io.Writer, vs []float64) error {
	if err := writeU32(w, uint32(len(vs))); err != nil {
		return err
	}
	for _, v := range vs {
		if err := writeF64(w, v); err != nil {
			return err
		}
	}
	return nil
}

// readF64s reads a length-prefixed float64 slice. The slice grows with
// the data actually present, so a forged length cannot force a huge
// allocation before the stream runs dry.
func readF64s(r io.Reader) ([]float64, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxTensorElems {
		return nil, fmt.Errorf("modelio: float slice length %d exceeds limit", n)
	}
	capHint := int(n)
	if capHint > 4096 {
		capHint = 4096
	}
	out := make([]float64, 0, capHint)
	for i := uint32(0); i < n; i++ {
		v, err := readF64(r)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
