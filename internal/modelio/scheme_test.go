package modelio

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"hpnn/internal/core"
	"hpnn/internal/lockscheme"
	"hpnn/internal/nn"
	"hpnn/internal/train"
)

func optStateForTest() nn.OptState { return nn.OptState{Kind: "sgd"} }

func tinyModel(t *testing.T) *core.Model {
	t.Helper()
	m, err := core.NewModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Default-scheme models must keep writing the original v1 bytes: the scheme
// boundary may not disturb pre-scheme artifacts.
func TestSchemeDefaultStaysV1(t *testing.T) {
	m := tinyModel(t)
	for _, stamp := range []string{"", lockscheme.DefaultName} {
		m.Scheme = stamp
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatal(err)
		}
		if ver := binary.LittleEndian.Uint32(buf.Bytes()[4:8]); ver != 1 {
			t.Errorf("scheme %q: model format version = %d, want 1", stamp, ver)
		}
		var ck bytes.Buffer
		if err := SaveCheckpoint(&ck, m, train.State{Optimizer: optStateForTest()}); err != nil {
			t.Fatal(err)
		}
		if ver := binary.LittleEndian.Uint32(ck.Bytes()[4:8]); ver != 1 {
			t.Errorf("scheme %q: checkpoint version = %d, want 1", stamp, ver)
		}
	}
}

// Non-default schemes round-trip through format v2, for both the model
// format and the checkpoint format.
func TestSchemeRoundTripV2(t *testing.T) {
	for _, scheme := range []string{"deeplock", "pufshuffle"} {
		m := tinyModel(t)
		m.Scheme = scheme
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatal(err)
		}
		if ver := binary.LittleEndian.Uint32(buf.Bytes()[4:8]); ver != 2 {
			t.Errorf("scheme %q: model format version = %d, want 2", scheme, ver)
		}
		got, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Scheme != scheme {
			t.Errorf("loaded scheme = %q, want %q", got.Scheme, scheme)
		}

		var ck bytes.Buffer
		if err := SaveCheckpoint(&ck, m, train.State{Optimizer: optStateForTest()}); err != nil {
			t.Fatal(err)
		}
		cm, _, err := LoadCheckpoint(bytes.NewReader(ck.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if cm.Scheme != scheme {
			t.Errorf("checkpoint-loaded scheme = %q, want %q", cm.Scheme, scheme)
		}
	}
}

// Unknown scheme identifiers are rejected on save (a stamped-but-unregistered
// model is a bug) and on load (a forged or future artifact).
func TestSchemeUnknownRejected(t *testing.T) {
	m := tinyModel(t)
	m.Scheme = "no-such-scheme"
	if err := Save(&bytes.Buffer{}, m); err == nil {
		t.Error("Save accepted unknown scheme stamp")
	}
	if err := SaveCheckpoint(&bytes.Buffer{}, m, train.State{Optimizer: optStateForTest()}); err == nil {
		t.Error("SaveCheckpoint accepted unknown scheme stamp")
	}

	// Forge a v2 header claiming an unregistered scheme.
	forge := func(magicStr, scheme string) []byte {
		var b bytes.Buffer
		b.WriteString(magicStr)
		_ = writeU32(&b, 2)
		_ = writeString(&b, scheme)
		return b.Bytes()
	}
	if _, err := Load(bytes.NewReader(forge("HPNN", "evil"))); err == nil || !strings.Contains(err.Error(), "unknown lock scheme") {
		t.Errorf("Load on forged scheme: err = %v, want unknown-scheme error", err)
	}
	if _, _, err := LoadCheckpoint(bytes.NewReader(forge("HPCK", "evil"))); err == nil || !strings.Contains(err.Error(), "unknown lock scheme") {
		t.Errorf("LoadCheckpoint on forged scheme: err = %v, want unknown-scheme error", err)
	}
}

// A checkpoint whose header scheme disagrees with its embedded model blob is
// a spliced record and must be rejected.
func TestCheckpointSchemeMismatchRejected(t *testing.T) {
	m := tinyModel(t)
	var v1 bytes.Buffer
	if err := SaveCheckpoint(&v1, m, train.State{Optimizer: optStateForTest()}); err != nil {
		t.Fatal(err)
	}
	var spliced bytes.Buffer
	spliced.WriteString("HPCK")
	_ = writeU32(&spliced, 2)
	_ = writeString(&spliced, "deeplock")
	spliced.Write(v1.Bytes()[8:]) // v1 body carries a default-scheme model blob
	if _, _, err := LoadCheckpoint(bytes.NewReader(spliced.Bytes())); err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Errorf("spliced checkpoint: err = %v, want scheme-disagreement error", err)
	}
}

// The zoo tracks the scheme of each record and exposes it over /records.
func TestZooRecordsCarryScheme(t *testing.T) {
	m := tinyModel(t)
	var v1 bytes.Buffer
	if err := Save(&v1, m); err != nil {
		t.Fatal(err)
	}
	m.Scheme = "deeplock"
	var v2 bytes.Buffer
	if err := Save(&v2, m); err != nil {
		t.Fatal(err)
	}
	z := NewZoo()
	z.Put("plain", v1.Bytes())
	z.Put("ciphered", v2.Bytes())
	recs := z.Records()
	want := map[string]string{"ciphered": "deeplock", "plain": lockscheme.DefaultName}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for _, r := range recs {
		if want[r.Name] != r.Scheme {
			t.Errorf("record %q scheme = %q, want %q", r.Name, r.Scheme, want[r.Name])
		}
	}
}
