package dataset

import (
	"math"
	"testing"

	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// TestShardRangePartition: for every (n, shards) combination the shard
// ranges are contiguous, in order, and exactly partition [0, n) — no row is
// duplicated or dropped, including short batches where trailing (or
// interior) shards are empty.
func TestShardRangePartition(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8, 16} {
		for n := 0; n <= 3*shards+1; n++ {
			prev := 0
			for s := 0; s < shards; s++ {
				lo, hi := ShardRange(n, s, shards)
				if lo != prev {
					t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", n, shards, s, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d shards=%d: shard %d is negative [%d,%d)", n, shards, s, lo, hi)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d shards=%d: shards cover [0,%d), want [0,%d)", n, shards, prev, n)
			}
		}
	}
}

// TestShardRangeBalance: no shard is more than one row larger than another
// — the floor-based split is the balanced one.
func TestShardRangeBalance(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		for n := 0; n <= 4*shards; n++ {
			minSz, maxSz := n, 0
			for s := 0; s < shards; s++ {
				lo, hi := ShardRange(n, s, shards)
				if sz := hi - lo; sz < minSz {
					minSz = sz
				} else if sz > maxSz {
					maxSz = sz
				}
			}
			if n >= shards && maxSz-minSz > 1 {
				t.Fatalf("n=%d shards=%d: sizes differ by %d", n, shards, maxSz-minSz)
			}
		}
	}
}

func TestShardRangeValidation(t *testing.T) {
	for _, args := range [][3]int{{10, 0, 0}, {10, -1, 4}, {10, 4, 4}, {-1, 0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShardRange(%d,%d,%d) did not panic", args[0], args[1], args[2])
				}
			}()
			ShardRange(args[0], args[1], args[2])
		}()
	}
}

// TestShardEpochReproducible: sharding a shuffled epoch is bitwise
// reproducible per (seed, epoch, shard count): every shard's rows and
// labels are identical across regenerations, the shards of each batch
// exactly partition it, and distinct epochs draw distinct permutations.
func TestShardEpochReproducible(t *testing.T) {
	r := rng.New(77)
	n, feat := 53, 6
	x := tensor.New(n, feat)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	y := make([]int, n)
	for i := range y {
		y[i] = r.Intn(10)
	}

	// epochShards flattens every (batch, shard) row range of an epoch into
	// one bit pattern.
	epochShards := func(seed uint64, epoch, shards int) []uint64 {
		var out []uint64
		for _, b := range Batches(x, y, 16, seed+uint64(epoch)) {
			bn := len(b.Y)
			covered := 0
			for s := 0; s < shards; s++ {
				lo, hi := ShardRange(bn, s, shards)
				covered += hi - lo
				for _, v := range b.X.Data[lo*feat : hi*feat] {
					out = append(out, math.Float64bits(v))
				}
				for _, label := range b.Y[lo:hi] {
					out = append(out, uint64(label))
				}
			}
			if covered != bn {
				t.Fatalf("shards cover %d of %d rows", covered, bn)
			}
		}
		return out
	}

	a := epochShards(9, 0, 8)
	b := epochShards(9, 0, 8)
	if len(a) != len(b) {
		t.Fatalf("regeneration changed length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch shards not reproducible at %d", i)
		}
	}
	c := epochShards(9, 1, 8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("distinct epochs produced identical shard streams")
	}
}
