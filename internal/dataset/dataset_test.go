package dataset

import (
	"bytes"
	"image/png"
	"math"
	"testing"

	"hpnn/internal/tensor"
)

func gen(t *testing.T, name string, trainN, testN int) *Dataset {
	t.Helper()
	d, err := Generate(Config{Name: name, TrainN: trainN, TestN: testN, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateShapes(t *testing.T) {
	cases := []struct {
		name    string
		c, h, w int
	}{
		{"fashion", 1, 28, 28},
		{"cifar", 3, 32, 32},
		{"svhn", 3, 32, 32},
	}
	for _, tc := range cases {
		d := gen(t, tc.name, 50, 20)
		if d.C != tc.c || d.H != tc.h || d.W != tc.w {
			t.Fatalf("%s native size %dx%dx%d, want %dx%dx%d", tc.name, d.C, d.H, d.W, tc.c, tc.h, tc.w)
		}
		if d.TrainX.Shape[0] != 50 || d.TestX.Shape[0] != 20 {
			t.Fatalf("%s split sizes wrong", tc.name)
		}
		if len(d.TrainY) != 50 || len(d.TestY) != 20 {
			t.Fatalf("%s label counts wrong", tc.name)
		}
	}
}

func TestGenerateCustomResolution(t *testing.T) {
	d, err := Generate(Config{Name: "fashion", TrainN: 20, TestN: 10, H: 16, W: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.H != 16 || d.W != 16 {
		t.Fatal("custom resolution ignored")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Name: "mnist", TrainN: 10, TestN: 10}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := Generate(Config{Name: "fashion", TrainN: 0, TestN: 10}); err == nil {
		t.Fatal("zero train size accepted")
	}
	if _, err := Generate(Config{Name: "fashion", TrainN: 10, TestN: 10, H: 4, W: 4}); err == nil {
		t.Fatal("tiny resolution accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := gen(t, "cifar", 30, 10)
	b := gen(t, "cifar", 30, 10)
	if !tensor.Equal(a.TrainX, b.TrainX, 0) {
		t.Fatal("generation not deterministic")
	}
	for i := range a.TrainY {
		if a.TrainY[i] != b.TrainY[i] {
			t.Fatal("labels not deterministic")
		}
	}
}

func TestSeedsChangeData(t *testing.T) {
	a, _ := Generate(Config{Name: "fashion", TrainN: 20, TestN: 5, Seed: 1})
	b, _ := Generate(Config{Name: "fashion", TrainN: 20, TestN: 5, Seed: 2})
	if tensor.Equal(a.TrainX, b.TrainX, 1e-9) {
		t.Fatal("different seeds gave identical data")
	}
}

func TestLabelsStratified(t *testing.T) {
	for _, name := range Names() {
		d := gen(t, name, 100, 50)
		counts := make([]int, NumClasses)
		for _, y := range d.TrainY {
			counts[y]++
		}
		for cls, c := range counts {
			if c != 10 {
				t.Fatalf("%s class %d has %d/100 train samples", name, cls, c)
			}
		}
	}
}

func TestPixelRangeSane(t *testing.T) {
	for _, name := range Names() {
		d := gen(t, name, 30, 10)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range d.TrainX.Data {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if lo < -3 || hi > 3 {
			t.Fatalf("%s pixel range [%v, %v] out of expected bounds", name, lo, hi)
		}
		if hi-lo < 0.5 {
			t.Fatalf("%s images have almost no dynamic range", name)
		}
	}
}

func TestTrainTestDisjointStreams(t *testing.T) {
	d := gen(t, "fashion", 20, 20)
	// The first train and first test image should differ (independent
	// random streams even with equal sizes).
	feat := d.C * d.H * d.W
	same := true
	for i := 0; i < feat; i++ {
		if d.TrainX.Data[i] != d.TestX.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("train and test streams identical")
	}
}

func TestClassesVisuallyDistinct(t *testing.T) {
	// Mean images of different classes should differ substantially more
	// than mean images of the same class across two disjoint halves —
	// a cheap separability check on each generator.
	for _, name := range Names() {
		d := gen(t, name, 400, 10)
		feat := d.C * d.H * d.W
		means := make([][]float64, NumClasses)
		counts := make([]int, NumClasses)
		for i := range means {
			means[i] = make([]float64, feat)
		}
		for i, y := range d.TrainY {
			for j := 0; j < feat; j++ {
				means[y][j] += d.TrainX.Data[i*feat+j]
			}
			counts[y]++
		}
		for cls := range means {
			for j := range means[cls] {
				means[cls][j] /= float64(counts[cls])
			}
		}
		minDist := math.Inf(1)
		for a := 0; a < NumClasses; a++ {
			for b := a + 1; b < NumClasses; b++ {
				dist := 0.0
				for j := 0; j < feat; j++ {
					dd := means[a][j] - means[b][j]
					dist += dd * dd
				}
				minDist = math.Min(minDist, math.Sqrt(dist/float64(feat)))
			}
		}
		if minDist < 0.02 {
			t.Fatalf("%s: two classes have nearly identical mean images (rms %v)", name, minDist)
		}
	}
}

func TestThiefSubsetFractions(t *testing.T) {
	d := gen(t, "fashion", 200, 20)
	for _, frac := range []float64{0.01, 0.05, 0.1, 0.5, 1.0} {
		x, y := d.ThiefSubset(frac, 3)
		want := int(float64(20)*frac + 0.5) // per class, 20 samples each
		if want == 0 {
			want = 1
		}
		if len(y) != want*NumClasses {
			t.Fatalf("frac %v: got %d samples, want %d", frac, len(y), want*NumClasses)
		}
		if x.Shape[0] != len(y) {
			t.Fatal("thief tensor/label mismatch")
		}
		counts := make([]int, NumClasses)
		for _, v := range y {
			counts[v]++
		}
		for cls, c := range counts {
			if c != want {
				t.Fatalf("frac %v class %d: %d samples, want %d (stratification broken)", frac, cls, c, want)
			}
		}
	}
}

func TestThiefSubsetZeroAndBounds(t *testing.T) {
	d := gen(t, "fashion", 50, 10)
	x, y := d.ThiefSubset(0, 1)
	if x.Shape[0] != 0 || y != nil {
		t.Fatal("zero-fraction thief subset should be empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ThiefSubset(1.5) did not panic")
		}
	}()
	d.ThiefSubset(1.5, 1)
}

func TestThiefSubsetDeterministicAndSeeded(t *testing.T) {
	d := gen(t, "svhn", 100, 10)
	x1, _ := d.ThiefSubset(0.2, 5)
	x2, _ := d.ThiefSubset(0.2, 5)
	if !tensor.Equal(x1, x2, 0) {
		t.Fatal("thief subset not deterministic")
	}
	x3, _ := d.ThiefSubset(0.2, 6)
	if tensor.Equal(x1, x3, 1e-12) {
		t.Fatal("different thief seeds should pick different samples")
	}
}

func TestBatchesPartitionData(t *testing.T) {
	d := gen(t, "fashion", 53, 10)
	batches := Batches(d.TrainX, d.TrainY, 16, 9)
	if len(batches) != 4 {
		t.Fatalf("expected 4 batches for 53/16, got %d", len(batches))
	}
	total := 0
	classTotal := 0
	for _, b := range batches {
		total += len(b.Y)
		if b.X.Shape[0] != len(b.Y) {
			t.Fatal("batch tensor/label mismatch")
		}
		for _, y := range b.Y {
			classTotal += y
		}
	}
	if total != 53 {
		t.Fatalf("batches cover %d samples, want 53", total)
	}
	wantSum := 0
	for _, y := range d.TrainY {
		wantSum += y
	}
	if classTotal != wantSum {
		t.Fatal("batch label multiset differs from dataset labels")
	}
}

func TestBatchesShuffleBySeed(t *testing.T) {
	d := gen(t, "fashion", 64, 10)
	a := Batches(d.TrainX, d.TrainY, 32, 1)
	b := Batches(d.TrainX, d.TrainY, 32, 2)
	if tensor.Equal(a[0].X, b[0].X, 1e-12) {
		t.Fatal("different batch seeds should reorder samples")
	}
}

func TestDrawDigitClipping(t *testing.T) {
	img := tensor.New(3, 16, 16)
	// Entirely off-image draws must not panic or write.
	drawDigit(img, 5, -100, -100, 2, [3]float64{1, 1, 1}, 1)
	if img.Sum() != 0 {
		t.Fatal("off-image digit wrote pixels")
	}
	drawDigit(img, 8, 2, 2, 1, [3]float64{1, 1, 1}, 1)
	if img.Sum() == 0 {
		t.Fatal("on-image digit wrote nothing")
	}
}

func TestToImage(t *testing.T) {
	d := gen(t, "cifar", 20, 5)
	s, label := d.Sample(0)
	if label != d.TrainY[0] {
		t.Fatal("Sample label mismatch")
	}
	img, err := ToImage(s)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != d.W || img.Bounds().Dy() != d.H {
		t.Fatalf("image bounds %v", img.Bounds())
	}
	// Grayscale path.
	f := gen(t, "fashion", 10, 5)
	sf, _ := f.Sample(0)
	if _, err := ToImage(sf); err != nil {
		t.Fatal(err)
	}
	// Invalid shapes rejected.
	if _, err := ToImage(tensor.New(2, 4, 4)); err == nil {
		t.Fatal("2-channel sample accepted")
	}
	if _, err := ToImage(tensor.New(4)); err == nil {
		t.Fatal("flat sample accepted")
	}
}

func TestWriteContactSheet(t *testing.T) {
	d := gen(t, "svhn", 40, 5)
	var buf bytes.Buffer
	if err := d.WriteContactSheet(&buf, 3); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("contact sheet is not valid PNG: %v", err)
	}
	wantW := 3*(d.W+2) + 2
	wantH := d.Classes*(d.H+2) + 2
	if img.Bounds().Dx() != wantW || img.Bounds().Dy() != wantH {
		t.Fatalf("sheet size %v, want %dx%d", img.Bounds(), wantW, wantH)
	}
	if err := d.WriteContactSheet(&buf, 0); err == nil {
		t.Fatal("perClass=0 accepted")
	}
}
