package dataset

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"hpnn/internal/tensor"
)

// ToImage converts one sample ([C,H,W], values ≈ [-1,1]) to an image.
// Single-channel samples render as grayscale, three-channel as RGB.
func ToImage(sample *tensor.Tensor) (image.Image, error) {
	if len(sample.Shape) != 3 {
		return nil, fmt.Errorf("dataset: sample shape %v is not [C,H,W]", sample.Shape)
	}
	c, h, w := sample.Shape[0], sample.Shape[1], sample.Shape[2]
	if c != 1 && c != 3 {
		return nil, fmt.Errorf("dataset: %d channels not renderable (want 1 or 3)", c)
	}
	pix := h * w
	to8 := func(v float64) uint8 {
		x := (v + 1) / 2 * 255
		if x < 0 {
			x = 0
		}
		if x > 255 {
			x = 255
		}
		return uint8(x)
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var r, g, b uint8
			if c == 1 {
				v := to8(sample.Data[y*w+x])
				r, g, b = v, v, v
			} else {
				r = to8(sample.Data[0*pix+y*w+x])
				g = to8(sample.Data[1*pix+y*w+x])
				b = to8(sample.Data[2*pix+y*w+x])
			}
			img.Set(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return img, nil
}

// Sample returns the i-th training sample as a standalone [C,H,W] view.
func (d *Dataset) Sample(i int) (*tensor.Tensor, int) {
	feat := d.C * d.H * d.W
	return tensor.FromSlice(d.TrainX.Data[i*feat:(i+1)*feat], d.C, d.H, d.W), d.TrainY[i]
}

// WriteContactSheet renders a grid with one row per class and perClass
// columns of training samples, PNG-encoded to w — a quick visual check of
// what each synthetic benchmark looks like.
func (d *Dataset) WriteContactSheet(w io.Writer, perClass int) error {
	if perClass <= 0 {
		return fmt.Errorf("dataset: perClass must be positive")
	}
	const gap = 2
	sheetW := perClass*(d.W+gap) + gap
	sheetH := d.Classes*(d.H+gap) + gap
	sheet := image.NewRGBA(image.Rect(0, 0, sheetW, sheetH))
	for y := 0; y < sheetH; y++ {
		for x := 0; x < sheetW; x++ {
			sheet.Set(x, y, color.RGBA{R: 30, G: 30, B: 30, A: 255})
		}
	}
	counts := make([]int, d.Classes)
	for i := range d.TrainY {
		s, label := d.Sample(i)
		if counts[label] >= perClass {
			continue
		}
		img, err := ToImage(s)
		if err != nil {
			return err
		}
		ox := gap + counts[label]*(d.W+gap)
		oy := gap + label*(d.H+gap)
		for y := 0; y < d.H; y++ {
			for x := 0; x < d.W; x++ {
				sheet.Set(ox+x, oy+y, img.At(x, y))
			}
		}
		counts[label]++
	}
	return png.Encode(w, sheet)
}
