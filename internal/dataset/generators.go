package dataset

import (
	"math"

	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// --- mask primitives -------------------------------------------------------
//
// A mask is a pattern intensity field m(u, v) ∈ [0, 1] over normalized image
// coordinates. The fashion benchmark renders masks directly as grayscale;
// the cifar benchmark blends a foreground color over a background with the
// mask as the mixing weight.

type mask func(u, v float64) float64

func stripes(freq, phase, cu, cv float64) mask {
	return func(u, v float64) float64 {
		return 0.5 + 0.5*math.Sin(2*math.Pi*(freq*(cu*u+cv*v)+phase))
	}
}

func checker(freq, p1, p2 float64) mask {
	return func(u, v float64) float64 {
		return 0.5 + 0.5*math.Sin(2*math.Pi*(freq*u+p1))*math.Sin(2*math.Pi*(freq*v+p2))
	}
}

func disk(cx, cy, radius, edge float64) mask {
	return func(u, v float64) float64 {
		d := math.Hypot(u-cx, v-cy)
		return smoothstep(radius+edge, radius-edge, d)
	}
}

func ring(cx, cy, radius, thickness, edge float64) mask {
	return func(u, v float64) float64 {
		d := math.Abs(math.Hypot(u-cx, v-cy) - radius)
		return smoothstep(thickness+edge, thickness-edge, d)
	}
}

func cross(cx, cy, width float64) mask {
	return func(u, v float64) float64 {
		h := smoothstep(width+0.03, width-0.03, math.Abs(v-cy))
		vr := smoothstep(width+0.03, width-0.03, math.Abs(u-cx))
		return math.Max(h, vr)
	}
}

func diagX(cx, cy, width float64) mask {
	return func(u, v float64) float64 {
		d1 := math.Abs((u - cx) - (v - cy))
		d2 := math.Abs((u - cx) + (v - cy))
		return math.Max(
			smoothstep(width+0.04, width-0.04, d1),
			smoothstep(width+0.04, width-0.04, d2))
	}
}

func blobs(r *rng.Rand, count int) mask {
	type bump struct{ x, y, s float64 }
	bs := make([]bump, count)
	for i := range bs {
		bs[i] = bump{x: r.Range(0.15, 0.85), y: r.Range(0.15, 0.85), s: r.Range(0.06, 0.13)}
	}
	return func(u, v float64) float64 {
		s := 0.0
		for _, b := range bs {
			d2 := (u-b.x)*(u-b.x) + (v-b.y)*(v-b.y)
			s += math.Exp(-d2 / (2 * b.s * b.s))
		}
		return math.Min(s, 1)
	}
}

func frame(margin, thickness float64) mask {
	return func(u, v float64) float64 {
		d := math.Min(math.Min(u, 1-u), math.Min(v, 1-v))
		return smoothstep(thickness+0.03, thickness-0.03, math.Abs(d-margin))
	}
}

func gradientMask(angle float64) mask {
	dx, dy := math.Cos(angle), math.Sin(angle)
	return func(u, v float64) float64 {
		t := ((u-0.5)*dx + (v-0.5)*dy) + 0.5
		return clamp01(t)
	}
}

// smoothstep falls from 1 to 0 as x goes from lo to hi (lo > hi allowed:
// arguments are (outer, inner) distances).
func smoothstep(outer, inner, x float64) float64 {
	if outer == inner {
		if x < inner {
			return 1
		}
		return 0
	}
	t := clamp01((outer - x) / (outer - inner))
	return t * t * (3 - 2*t)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return 0 + x
}

// classMask builds the randomized pattern for a class; shared by the
// fashion and cifar benchmarks.
func classMask(label int, r *rng.Rand) mask {
	switch label {
	case 0:
		return stripes(r.Range(2, 4.5), r.Float64(), 0, 1) // horizontal
	case 1:
		return stripes(r.Range(2, 4.5), r.Float64(), 1, 0) // vertical
	case 2:
		return stripes(r.Range(1.5, 3.5), r.Float64(), 0.7071, 0.7071) // diagonal
	case 3:
		return checker(r.Range(1.5, 3), r.Float64(), r.Float64())
	case 4:
		return disk(r.Range(0.35, 0.65), r.Range(0.35, 0.65), r.Range(0.18, 0.32), 0.05)
	case 5:
		return ring(r.Range(0.4, 0.6), r.Range(0.4, 0.6), r.Range(0.22, 0.34), r.Range(0.05, 0.09), 0.03)
	case 6:
		return cross(r.Range(0.3, 0.7), r.Range(0.3, 0.7), r.Range(0.07, 0.13))
	case 7:
		return diagX(r.Range(0.4, 0.6), r.Range(0.4, 0.6), r.Range(0.06, 0.11))
	case 8:
		return blobs(r, 3+r.Intn(4))
	case 9:
		return frame(r.Range(0.08, 0.2), r.Range(0.04, 0.08))
	default:
		panic("dataset: label out of range")
	}
}

// --- fashion: grayscale textures -------------------------------------------

func genFashion(img *tensor.Tensor, label int, r *rng.Rand) {
	h, w := img.Shape[1], img.Shape[2]
	m := classMask(label, r)
	lo := r.Range(0.0, 0.22)
	hi := r.Range(0.78, 1.0)
	for y := 0; y < h; y++ {
		v := float64(y) / float64(h-1)
		for x := 0; x < w; x++ {
			u := float64(x) / float64(w-1)
			img.Data[y*w+x] = lo + (hi-lo)*m(u, v)
		}
	}
}

// --- cifar: colored patterns -----------------------------------------------

// classHues fixes a base foreground color per class; samples jitter around
// it. Classes 0 and 1 use gradients rather than binary masks to widen the
// pattern family mix.
var classHues = [NumClasses][3]float64{
	{0.9, 0.15, 0.15}, // red
	{0.15, 0.85, 0.2}, // green
	{0.2, 0.3, 0.95},  // blue
	{0.95, 0.9, 0.15}, // yellow
	{0.9, 0.2, 0.85},  // magenta
	{0.15, 0.85, 0.9}, // cyan
	{0.95, 0.55, 0.1}, // orange
	{0.55, 0.2, 0.85}, // purple
	{0.15, 0.6, 0.55}, // teal
	{0.85, 0.85, 0.9}, // near-white
}

func genCifar(img *tensor.Tensor, label int, r *rng.Rand) {
	h, w := img.Shape[1], img.Shape[2]
	var m mask
	switch label {
	case 0:
		m = gradientMask(r.Range(-0.4, 0.4)) // roughly horizontal gradient
	case 1:
		m = gradientMask(math.Pi/2 + r.Range(-0.4, 0.4)) // roughly vertical
	default:
		m = classMask(label, r)
	}
	var fg, bg [3]float64
	for c := 0; c < 3; c++ {
		fg[c] = clamp01(classHues[label][c] + r.Range(-0.15, 0.15))
		bg[c] = r.Range(0.05, 0.35)
	}
	pix := h * w
	for y := 0; y < h; y++ {
		v := float64(y) / float64(h-1)
		for x := 0; x < w; x++ {
			u := float64(x) / float64(w-1)
			mv := m(u, v)
			for c := 0; c < 3; c++ {
				img.Data[c*pix+y*w+x] = bg[c] + mv*(fg[c]-bg[c])
			}
		}
	}
}

// --- svhn: rendered digit scenes ---------------------------------------------

// digitFont is a standard 5x7 bitmap font for 0-9; each entry is 7 rows of
// 5 bits (MSB = leftmost pixel).
var digitFont = [10][7]byte{
	{0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110}, // 0
	{0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110}, // 1
	{0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111}, // 2
	{0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110}, // 3
	{0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010}, // 4
	{0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110}, // 5
	{0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110}, // 6
	{0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000}, // 7
	{0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110}, // 8
	{0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100}, // 9
}

// jitter bounds the random offset of a glyph of size g inside an image of
// size total, keeping the glyph fully visible.
func jitter(total, g int) int {
	j := (total - g) / 2
	if j < 0 {
		return 0
	}
	if j > 2 {
		return 2
	}
	return j
}

// drawDigit paints digit d into img with top-left corner (x0, y0) and the
// given glyph pixel size, alpha-blending color with strength alpha.
// Off-image pixels are clipped (used for edge distractors).
func drawDigit(img *tensor.Tensor, d, x0, y0, scale int, color [3]float64, alpha float64) {
	c, h, w := img.Shape[0], img.Shape[1], img.Shape[2]
	pix := h * w
	for row := 0; row < 7; row++ {
		bitsRow := digitFont[d][row]
		for col := 0; col < 5; col++ {
			if bitsRow&(1<<(4-col)) == 0 {
				continue
			}
			for dy := 0; dy < scale; dy++ {
				y := y0 + row*scale + dy
				if y < 0 || y >= h {
					continue
				}
				for dx := 0; dx < scale; dx++ {
					x := x0 + col*scale + dx
					if x < 0 || x >= w {
						continue
					}
					for ch := 0; ch < c; ch++ {
						i := ch*pix + y*w + x
						img.Data[i] = (1-alpha)*img.Data[i] + alpha*color[ch]
					}
				}
			}
		}
	}
}

func genSVHN(img *tensor.Tensor, label int, r *rng.Rand) {
	h, w := img.Shape[1], img.Shape[2]
	pix := h * w
	// Background: dim random color with mild horizontal shading.
	var bg [3]float64
	for c := 0; c < 3; c++ {
		bg[c] = r.Range(0.1, 0.4)
	}
	shade := r.Range(-0.1, 0.1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			t := float64(x) / float64(w-1)
			for c := 0; c < 3; c++ {
				img.Data[c*pix+y*w+x] = clamp01(bg[c] + shade*(t-0.5))
			}
		}
	}
	// Foreground color: bright, with strong enforced contrast against the
	// dim background so the digit dominates every channel.
	var fg [3]float64
	for {
		d := 0.0
		for c := 0; c < 3; c++ {
			fg[c] = r.Range(0.55, 1.0)
			d += math.Abs(fg[c] - bg[c])
		}
		if d > 1.2 {
			break
		}
	}
	// Occasional distractor digit fragment clipped at an edge, at reduced
	// contrast (SVHN crops contain neighboring digits).
	if r.Float64() < 0.3 {
		dd := r.Intn(10)
		ds := max(1, h/9)
		dx := -3 * ds / 2
		if r.Bool() {
			dx = w - 5*ds + 3*ds/2
		}
		dy := r.Intn(max(1, h-7*ds+1))
		var dc [3]float64
		for c := 0; c < 3; c++ {
			dc[c] = clamp01(fg[c] + r.Range(-0.3, 0.3))
		}
		drawDigit(img, dd, dx, dy, ds, dc, 0.35)
	}
	// Central digit: the glyph fills most of the crop (like SVHN's
	// cropped-digit format), with small position jitter.
	scale := max(1, int(float64(h)*r.Range(0.8, 0.99)/7))
	gw, gh := 5*scale, 7*scale
	x0 := (w-gw)/2 + r.Intn(2*jitter(w, gw)+1) - jitter(w, gw)
	y0 := (h-gh)/2 + r.Intn(2*jitter(h, gh)+1) - jitter(h, gh)
	drawDigit(img, label, x0, y0, scale, fg, 1)
}
