// Package dataset provides the three synthetic image-classification
// benchmarks the reproduction uses in place of Fashion-MNIST, CIFAR-10 and
// SVHN (the build is offline; see DESIGN.md for the substitution argument).
//
// Each benchmark is a 10-class procedural generator with substantial
// intra-class variation (random frequencies, phases, positions, colors,
// per-sample noise), so that (a) the tasks are learnable to high accuracy
// with the full training set and (b) small "thief" subsets generalize
// measurably worse — the two properties the paper's experiments rely on.
package dataset

import (
	"fmt"
	"sort"

	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// NumClasses is the class count of every benchmark (matching the paper's
// datasets, all 10-way).
const NumClasses = 10

// Config selects and sizes a benchmark.
type Config struct {
	Name     string // "fashion", "cifar" or "svhn"
	TrainN   int    // training samples (stratified across classes)
	TestN    int    // test samples
	H, W     int    // image size; 0 selects the dataset's native size
	Seed     uint64
	NoiseStd float64 // per-pixel Gaussian noise; 0 selects the default 0.12
}

// Dataset is a generated benchmark with train and test splits. Images are
// stored as [N, C, H, W] tensors with values roughly in [-1, 1].
type Dataset struct {
	Name    string
	C, H, W int
	Classes int

	TrainX *tensor.Tensor
	TrainY []int
	TestX  *tensor.Tensor
	TestY  []int
}

// Generate builds a benchmark from cfg. Generation is deterministic in
// cfg.Seed; train and test are drawn from the same distribution with
// disjoint random streams.
func Generate(cfg Config) (*Dataset, error) {
	gen, c, nativeH, nativeW, err := lookupGenerator(cfg.Name)
	if err != nil {
		return nil, err
	}
	h, w := cfg.H, cfg.W
	if h == 0 {
		h = nativeH
	}
	if w == 0 {
		w = nativeW
	}
	if h < 8 || w < 8 {
		return nil, fmt.Errorf("dataset: image size %dx%d too small (min 8x8)", h, w)
	}
	if cfg.TrainN <= 0 || cfg.TestN <= 0 {
		return nil, fmt.Errorf("dataset: non-positive split sizes %d/%d", cfg.TrainN, cfg.TestN)
	}
	noise := cfg.NoiseStd
	if noise == 0 {
		noise = 0.12
	}
	d := &Dataset{Name: cfg.Name, C: c, H: h, W: w, Classes: NumClasses}
	base := rng.New(cfg.Seed)
	d.TrainX, d.TrainY = synth(gen, base.Fork(1), cfg.TrainN, c, h, w, noise)
	d.TestX, d.TestY = synth(gen, base.Fork(2), cfg.TestN, c, h, w, noise)
	return d, nil
}

// generator renders one sample of class label into img ([C,H,W], zeroed).
type generator func(img *tensor.Tensor, label int, r *rng.Rand)

func lookupGenerator(name string) (generator, int, int, int, error) {
	switch name {
	case "fashion":
		return genFashion, 1, 28, 28, nil
	case "cifar":
		return genCifar, 3, 32, 32, nil
	case "svhn":
		return genSVHN, 3, 32, 32, nil
	default:
		return nil, 0, 0, 0, fmt.Errorf("dataset: unknown benchmark %q (want fashion, cifar or svhn)", name)
	}
}

// Names lists the available benchmarks.
func Names() []string { return []string{"fashion", "cifar", "svhn"} }

func synth(gen generator, r *rng.Rand, n, c, h, w int, noise float64) (*tensor.Tensor, []int) {
	x := tensor.New(n, c, h, w)
	y := make([]int, n)
	feat := c * h * w
	for i := 0; i < n; i++ {
		label := i % NumClasses // stratified
		y[i] = label
		img := tensor.FromSlice(x.Data[i*feat:(i+1)*feat], c, h, w)
		gen(img, label, r.Fork(uint64(i)*2+3))
		postprocess(img, r.Fork(uint64(i)*2+4), noise)
	}
	// Shuffle samples so batches are class-mixed.
	perm := r.Fork(1).Perm(n)
	xs := tensor.New(n, c, h, w)
	ys := make([]int, n)
	for to, from := range perm {
		copy(xs.Data[to*feat:(to+1)*feat], x.Data[from*feat:(from+1)*feat])
		ys[to] = y[from]
	}
	return xs, ys
}

// postprocess applies per-sample brightness/contrast jitter, additive noise
// and recentering to ~[-1, 1].
func postprocess(img *tensor.Tensor, r *rng.Rand, noise float64) {
	contrast := r.Range(0.85, 1.15)
	brightness := r.Range(-0.08, 0.08)
	for i, v := range img.Data {
		v = (v-0.5)*contrast + 0.5 + brightness + noise*r.Norm()
		img.Data[i] = 2*v - 1
	}
}

// InputShape returns the per-sample [C, H, W] dimensions.
func (d *Dataset) InputShape() (int, int, int) { return d.C, d.H, d.W }

// ThiefSubset returns a stratified random subsample of the training split
// containing frac of it (at least one sample per class when frac > 0) —
// the attacker's thief dataset of §IV-B. frac = 0 returns an empty subset.
func (d *Dataset) ThiefSubset(frac float64, seed uint64) (*tensor.Tensor, []int) {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("dataset: thief fraction %v out of [0,1]", frac))
	}
	feat := d.C * d.H * d.W
	if frac == 0 {
		return tensor.New(0, d.C, d.H, d.W), nil
	}
	// Group train indices by class.
	byClass := make([][]int, d.Classes)
	for i, y := range d.TrainY {
		byClass[y] = append(byClass[y], i)
	}
	r := rng.New(seed)
	var picked []int
	for cls := 0; cls < d.Classes; cls++ {
		idx := byClass[cls]
		want := int(float64(len(idx))*frac + 0.5)
		if want == 0 && len(idx) > 0 {
			want = 1
		}
		perm := r.Perm(len(idx))
		for _, p := range perm[:want] {
			picked = append(picked, idx[p])
		}
	}
	sort.Ints(picked)
	x := tensor.New(len(picked), d.C, d.H, d.W)
	y := make([]int, len(picked))
	for to, from := range picked {
		copy(x.Data[to*feat:(to+1)*feat], d.TrainX.Data[from*feat:(from+1)*feat])
		y[to] = d.TrainY[from]
	}
	return x, y
}

// Batch is one training minibatch.
type Batch struct {
	X *tensor.Tensor
	Y []int
}

// Batches splits (x, y) into shuffled minibatches (the final short batch is
// kept). A zero seed still shuffles deterministically.
func Batches(x *tensor.Tensor, y []int, batchSize int, seed uint64) []Batch {
	n := x.Shape[0]
	if batchSize <= 0 {
		panic("dataset: non-positive batch size")
	}
	feat := x.Len() / max(n, 1)
	perm := rng.New(seed).Perm(n)
	var out []Batch
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		shape := append([]int{hi - lo}, x.Shape[1:]...)
		bx := tensor.New(shape...)
		by := make([]int, hi-lo)
		for i := lo; i < hi; i++ {
			from := perm[i]
			copy(bx.Data[(i-lo)*feat:(i-lo+1)*feat], x.Data[from*feat:(from+1)*feat])
			by[i-lo] = y[from]
		}
		out = append(out, Batch{X: bx, Y: by})
	}
	return out
}

// ShardRange returns the half-open row range [lo, hi) of micro-shard s when
// a batch of n rows is split into shards contiguous pieces. The split is the
// canonical balanced one — shard s owns rows [s·n/shards, (s+1)·n/shards)
// with integer floor — so it is a pure function of (n, s, shards): the
// decomposition never depends on how many replicas execute the shards.
// Trailing shards of a short batch may be empty (lo == hi).
func ShardRange(n, s, shards int) (lo, hi int) {
	if shards <= 0 || s < 0 || s >= shards || n < 0 {
		panic(fmt.Sprintf("dataset: ShardRange(n=%d, s=%d, shards=%d) out of range", n, s, shards))
	}
	return s * n / shards, (s + 1) * n / shards
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
