// Package keys implements the HPNN secret key and the trusted-hardware key
// container of the paper (§III-A, §III-D).
//
// The HPNN key is a fixed-length bit string (256 bits, matching the number
// of accumulator units in the Google-TPU-like root of trust). During
// training the model owner expands it — through the private hardware
// scheduling algorithm (package schedule) — into one bit per locked neuron.
// At inference time the key never leaves the trusted device: Device seals
// the key and only answers per-column bit queries from the simulated
// hardware, mirroring TPM-style secure key storage.
package keys

import (
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"hpnn/internal/rng"
)

// KeyBits is the HPNN key length in bits: one bit per accumulator unit of
// the 256×256 matrix-multiply unit (§III-D2).
const KeyBits = 256

// KeyBytes is the key length in bytes.
const KeyBytes = KeyBits / 8

// Key is a 256-bit HPNN key. The zero value is the all-zero key (every
// lock factor +1, i.e. an unlocked model).
type Key struct {
	b [KeyBytes]byte
}

// Generate draws a uniformly random key from r.
func Generate(r *rng.Rand) Key {
	var k Key
	for i := 0; i < KeyBytes; i += 8 {
		v := r.Uint64()
		for j := 0; j < 8; j++ {
			k.b[i+j] = byte(v >> (8 * j))
		}
	}
	return k
}

// FromBytes builds a key from exactly KeyBytes bytes.
func FromBytes(p []byte) (Key, error) {
	var k Key
	if len(p) != KeyBytes {
		return k, fmt.Errorf("keys: need %d bytes, got %d", KeyBytes, len(p))
	}
	copy(k.b[:], p)
	return k, nil
}

// FromHex parses a 64-character hex string.
func FromHex(s string) (Key, error) {
	p, err := hex.DecodeString(s)
	if err != nil {
		return Key{}, fmt.Errorf("keys: %w", err)
	}
	return FromBytes(p)
}

// Hex returns the key as a 64-character hex string.
func (k Key) Hex() string { return hex.EncodeToString(k.b[:]) }

// Bytes returns a copy of the raw key bytes.
func (k Key) Bytes() []byte { return append([]byte(nil), k.b[:]...) }

// Bit returns key bit i (little-endian within bytes); i is taken mod
// KeyBits so accumulator-column indices can be used directly.
func (k Key) Bit(i int) byte {
	i = ((i % KeyBits) + KeyBits) % KeyBits
	return (k.b[i/8] >> (i % 8)) & 1
}

// FlipBit returns a copy of k with bit i inverted.
func (k Key) FlipBit(i int) Key {
	i = ((i % KeyBits) + KeyBits) % KeyBits
	out := k
	out.b[i/8] ^= 1 << (i % 8)
	return out
}

// FlipRandomBits returns a copy of k with exactly n distinct random bits
// inverted — used by the key-distance ablation.
func (k Key) FlipRandomBits(r *rng.Rand, n int) Key {
	if n < 0 || n > KeyBits {
		panic(fmt.Sprintf("keys: cannot flip %d of %d bits", n, KeyBits))
	}
	perm := r.Perm(KeyBits)
	out := k
	for _, i := range perm[:n] {
		out.b[i/8] ^= 1 << (i % 8)
	}
	return out
}

// HammingDistance returns the number of differing bits between k and o.
func (k Key) HammingDistance(o Key) int {
	d := 0
	for i := range k.b {
		d += bits.OnesCount8(k.b[i] ^ o.b[i])
	}
	return d
}

// Equal reports whether two keys are identical, in constant time.
func (k Key) Equal(o Key) bool {
	return subtle.ConstantTimeCompare(k.b[:], o.b[:]) == 1
}

// OnesCount returns the key's Hamming weight.
func (k Key) OnesCount() int {
	c := 0
	for _, b := range k.b {
		c += bits.OnesCount8(b)
	}
	return c
}

// Fingerprint returns a short one-way identifier (the same Mix64 digest a
// Device reports), safe to log or embed in error messages: no prefix of
// the raw key survives the mix.
func (k Key) Fingerprint() string {
	h := rng.Mix64(0x48504e4e) // "HPNN"
	for _, b := range k.b {
		h = rng.Mix64(h ^ uint64(b))
	}
	return fmt.Sprintf("%016x", h)
}

// String renders the one-way fingerprint, never key material: the previous
// hex-prefix form put 32 raw key bits in every log line that formatted a
// key, which hpnn-lint's keyflow check now rejects.
func (k Key) String() string {
	return fmt.Sprintf("HPNNKey(fp=%s, weight=%d)", k.Fingerprint(), k.OnesCount())
}

// Device models the hardware root of trust: a sealed container holding the
// HPNN key in "on-chip" memory. Consumers (the TPU simulator, the owner's
// training pre-processing) can only query per-column key bits; the raw key
// is not retrievable through the Device API.
type Device struct {
	key    Key
	serial string
	// authority is set for devices provisioned through an Authority;
	// revoked devices answer every key-bit query with 0 (the lock
	// hardware degrades to the baseline function, which is useless on an
	// obfuscated model — the license is dead).
	authority *Authority
	// zeroized is set once the sealed key has been wiped; a zeroized
	// device answers every query like a revoked one. Without the flag a
	// wiped device would keep deriving streams from the all-zero key,
	// which is a valid (if degenerate) key, not a dead one.
	zeroized bool
}

// NewDevice provisions a trusted device with the given key. serial is a
// human-readable device identity for licensing bookkeeping.
func NewDevice(serial string, key Key) *Device {
	return &Device{key: key, serial: serial}
}

// Serial returns the device identity.
func (d *Device) Serial() string { return d.serial }

// ColumnBit returns the key bit wired to accumulator column col — the only
// key access the hardware exposes. A revoked device reads as all-zero.
func (d *Device) ColumnBit(col int) byte {
	if d.revokedNow() {
		return 0
	}
	return d.key.Bit(col)
}

// BitsForColumns expands a neuron→column assignment into per-neuron lock
// bits. This is the query the owner's one-time training pre-processing
// performs (§III-D3) and the query the MMU makes when streaming neurons
// through its accumulators.
func (d *Device) BitsForColumns(cols []int) []byte {
	out := make([]byte, len(cols))
	for i, c := range cols {
		out[i] = d.ColumnBit(c)
	}
	return out
}

// Fingerprint returns a short non-sensitive identifier derived from the
// key, used to check that a model and a device were provisioned together
// without revealing key material.
func (d *Device) Fingerprint() string { return d.key.Fingerprint() }

// Revoked reports whether this device's license has been pulled. The lock
// hardware checks it when deciding whether cached key-bit material (the
// batched engine's sign masks) is still valid; like ColumnBit it reveals
// nothing about the key itself.
func (d *Device) Revoked() bool { return d.revokedNow() }

// revokedNow reports whether this device's license has been pulled (or its
// key wiped, which is indistinguishable from the outside).
func (d *Device) revokedNow() bool {
	return d.zeroized || (d.authority != nil && d.authority.Revoked(d.serial))
}

// Zeroize wipes the sealed key in place and retires the device: every
// subsequent query answers like a revoked license. Callers must have
// quiesced the device first — Zeroize is the teardown path (tenant
// eviction, process shutdown), not a concurrent control.
func (d *Device) Zeroize() {
	for i := range d.key.b {
		d.key.b[i] = 0
	}
	d.zeroized = true
}

// Zeroized reports whether the sealed key has been wiped.
func (d *Device) Zeroized() bool { return d.zeroized }

// derive returns a generator keyed by the sealed key and a domain label.
// Every key byte feeds the seed chain, so flipping any single key bit
// rekeys the whole derived stream (the avalanche the cipher- and
// permutation-based lock schemes rely on). The raw key never leaves the
// device: only the mixed stream does.
func (d *Device) derive(domain string) *rng.Rand {
	h := rng.Mix64(0x4c4f434b) // "LOCK"
	for _, b := range d.key.b {
		h = rng.Mix64(h ^ uint64(b))
	}
	for _, c := range domain {
		h = rng.Mix64(h ^ uint64(c))
	}
	return rng.NewStream(h, rng.Mix64(h^0x646f6d61696e)) // "domain"
}

// MaskStream returns n key-derived pseudo-random bytes for the given
// domain label. Weight-cipher lock schemes use it as their keystream; like
// ColumnBit it is a one-way query — the stream reveals nothing about the
// raw key beyond its Mix64 image. A revoked device answers all zeros (the
// identity mask), so a dead license can no longer decrypt anything.
func (d *Device) MaskStream(domain string, n int) []byte {
	out := make([]byte, n)
	if d.revokedNow() {
		return out
	}
	r := d.derive(domain)
	for i := 0; i < n; i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < n; j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
	return out
}

// Permutation returns a key-derived permutation of [0, n) for the given
// domain label — the query behind permutation/shuffle lock schemes. A
// revoked device answers the identity permutation.
func (d *Device) Permutation(domain string, n int) []int {
	if d.revokedNow() {
		p := make([]int, n)
		for i := range p {
			p[i] = i
		}
		return p
	}
	return d.derive(domain).Perm(n)
}

// Ring is the serving layer's key-isolation boundary: a registry of which
// trusted device unlocks which served model. Its invariant is one device,
// one model — a *Device bound to one tenant can never be bound to another,
// so key material sealed for one model's license cannot leak into a
// co-tenant's lowering, even when both run in the same process. The zero
// Ring is not usable; create with NewRing.
type Ring struct {
	mu      sync.Mutex
	byModel map[string]*Device
	owner   map[*Device]string
}

// NewRing returns an empty device ring.
func NewRing() *Ring {
	return &Ring{byModel: make(map[string]*Device), owner: make(map[*Device]string)}
}

// Bind associates model with dev. A nil dev is a valid binding (commodity
// serving, no key). Rebinding a model to the device it already holds is a
// no-op; binding a device that serves another model, or a model that holds
// another device, is an isolation violation and fails.
func (r *Ring) Bind(model string, dev *Device) error {
	if model == "" {
		return fmt.Errorf("keys: ring binding requires a model name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.byModel[model]; ok && cur != dev {
		return fmt.Errorf("keys: model %q is already bound to a different device", model)
	}
	if dev != nil {
		if owner, ok := r.owner[dev]; ok && owner != model {
			return fmt.Errorf("keys: device %q already serves model %q; keys never cross tenants",
				dev.Serial(), owner)
		}
		r.owner[dev] = model
	}
	r.byModel[model] = dev
	return nil
}

// Device returns the device bound to model, and whether a binding exists
// (the bound device may be nil for commodity tenants).
func (r *Ring) Device(model string) (*Device, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.byModel[model]
	return d, ok
}

// Unbind releases model's binding, freeing its device for reuse.
func (r *Ring) Unbind(model string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.byModel[model]; ok {
		if d != nil {
			delete(r.owner, d)
		}
		delete(r.byModel, model)
	}
}

// Zeroize unbinds model and wipes its device's sealed key — the terminal
// form of Unbind for tenants that are gone for good (registry shutdown,
// hpnn-serve process exit). Unlike Unbind, the device cannot be rebound
// usefully afterwards: it answers like a revoked license.
func (r *Ring) Zeroize(model string) {
	r.mu.Lock()
	d, ok := r.byModel[model]
	if ok {
		if d != nil {
			delete(r.owner, d)
		}
		delete(r.byModel, model)
	}
	r.mu.Unlock()
	if d != nil {
		d.Zeroize()
	}
}

// Models lists the bound model names, sorted.
func (r *Ring) Models() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.byModel))
	//hpnn:allow(determinism) keys are collected then sorted below
	for m := range r.byModel {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Authority is the owner-side licensing service of Fig. 1: it provisions
// trusted devices (the "licenses" distributed to authorized end-users),
// tracks their serials and supports revocation. Revoked devices stop
// answering key-bit queries, modelling a root of trust that verifies its
// license state before unsealing the key.
type Authority struct {
	key     Key
	issued  map[string]*Device
	revoked map[string]bool
}

// NewAuthority creates a licensing authority holding the HPNN key.
func NewAuthority(key Key) *Authority {
	return &Authority{
		key:     key,
		issued:  make(map[string]*Device),
		revoked: make(map[string]bool),
	}
}

// Issue provisions a new trusted device under the given serial. Issuing
// the same serial twice fails (each license is a distinct physical device).
func (a *Authority) Issue(serial string) (*Device, error) {
	if serial == "" {
		return nil, fmt.Errorf("keys: empty device serial")
	}
	if _, dup := a.issued[serial]; dup {
		return nil, fmt.Errorf("keys: serial %q already issued", serial)
	}
	d := &Device{key: a.key, serial: serial, authority: a}
	a.issued[serial] = d
	return d, nil
}

// Revoke invalidates a previously issued device.
func (a *Authority) Revoke(serial string) error {
	if _, ok := a.issued[serial]; !ok {
		return fmt.Errorf("keys: unknown serial %q", serial)
	}
	a.revoked[serial] = true
	return nil
}

// Revoked reports whether a serial has been revoked.
func (a *Authority) Revoked(serial string) bool { return a.revoked[serial] }

// Issued lists the issued device serials.
func (a *Authority) Issued() []string {
	out := make([]string, 0, len(a.issued))
	for s := range a.issued {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
