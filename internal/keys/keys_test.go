package keys

import (
	"strings"
	"testing"
	"testing/quick"

	"hpnn/internal/rng"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rng.New(1))
	b := Generate(rng.New(1))
	if !a.Equal(b) {
		t.Fatal("same seed must give same key")
	}
	c := Generate(rng.New(2))
	if a.Equal(c) {
		t.Fatal("different seeds should give different keys")
	}
}

func TestHexRoundTrip(t *testing.T) {
	k := Generate(rng.New(3))
	k2, err := FromHex(k.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if !k.Equal(k2) {
		t.Fatal("hex round-trip lost the key")
	}
}

func TestFromHexRejectsBadInput(t *testing.T) {
	if _, err := FromHex("zz"); err == nil {
		t.Fatal("invalid hex accepted")
	}
	if _, err := FromHex("abcd"); err == nil {
		t.Fatal("short hex accepted")
	}
}

func TestFromBytesLength(t *testing.T) {
	if _, err := FromBytes(make([]byte, 31)); err == nil {
		t.Fatal("short byte key accepted")
	}
	if _, err := FromBytes(make([]byte, 32)); err != nil {
		t.Fatal("32-byte key rejected")
	}
}

func TestBitConsistentWithBytes(t *testing.T) {
	k, _ := FromBytes(append([]byte{0b00000101}, make([]byte, 31)...))
	if k.Bit(0) != 1 || k.Bit(1) != 0 || k.Bit(2) != 1 || k.Bit(3) != 0 {
		t.Fatal("Bit() does not match little-endian byte layout")
	}
	// Modular indexing.
	if k.Bit(KeyBits) != k.Bit(0) || k.Bit(-1) != k.Bit(KeyBits-1) {
		t.Fatal("Bit() modular indexing broken")
	}
}

func TestFlipBit(t *testing.T) {
	k := Generate(rng.New(4))
	for _, i := range []int{0, 7, 8, 100, 255} {
		f := k.FlipBit(i)
		if f.Bit(i) == k.Bit(i) {
			t.Fatalf("FlipBit(%d) did not flip", i)
		}
		if k.HammingDistance(f) != 1 {
			t.Fatalf("FlipBit(%d) changed %d bits", i, k.HammingDistance(f))
		}
	}
}

func TestFlipRandomBitsExactCount(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw) % (KeyBits + 1)
		k := Generate(rng.New(seed))
		flipped := k.FlipRandomBits(rng.New(seed+1), n)
		return k.HammingDistance(flipped) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingDistanceSelfZero(t *testing.T) {
	k := Generate(rng.New(5))
	if k.HammingDistance(k) != 0 {
		t.Fatal("distance to self must be 0")
	}
	var zero Key
	if zero.HammingDistance(zero.FlipRandomBits(rng.New(1), KeyBits)) != KeyBits {
		t.Fatal("flipping all bits must give distance 256")
	}
}

func TestOnesCountOfRandomKeysNearHalf(t *testing.T) {
	total := 0
	for s := uint64(0); s < 50; s++ {
		total += Generate(rng.New(s)).OnesCount()
	}
	mean := float64(total) / 50
	if mean < 110 || mean > 146 {
		t.Fatalf("random key mean weight %v far from 128", mean)
	}
}

func TestStringDoesNotLeakKey(t *testing.T) {
	k := Generate(rng.New(6))
	s := k.String()
	if strings.Contains(s, k.Hex()) {
		t.Fatal("String() leaks the full key")
	}
}

func TestDeviceColumnBits(t *testing.T) {
	k := Generate(rng.New(7))
	d := NewDevice("dev-1", k)
	if d.Serial() != "dev-1" {
		t.Fatal("serial lost")
	}
	for col := 0; col < KeyBits; col++ {
		if d.ColumnBit(col) != k.Bit(col) {
			t.Fatalf("ColumnBit(%d) mismatch", col)
		}
	}
	cols := []int{0, 5, 5, 300}
	bits := d.BitsForColumns(cols)
	for i, c := range cols {
		if bits[i] != k.Bit(c) {
			t.Fatalf("BitsForColumns[%d] mismatch", i)
		}
	}
}

func TestDeviceFingerprintStableAndKeyed(t *testing.T) {
	k1 := Generate(rng.New(8))
	k2 := Generate(rng.New(9))
	d1a := NewDevice("a", k1)
	d1b := NewDevice("b", k1)
	d2 := NewDevice("c", k2)
	if d1a.Fingerprint() != d1b.Fingerprint() {
		t.Fatal("fingerprint must depend only on the key")
	}
	if d1a.Fingerprint() == d2.Fingerprint() {
		t.Fatal("different keys should give different fingerprints")
	}
}

func TestZeroKeyIsAllPlusOne(t *testing.T) {
	var k Key
	for i := 0; i < KeyBits; i++ {
		if k.Bit(i) != 0 {
			t.Fatal("zero key must have all bits 0")
		}
	}
}

func TestAuthorityIssueRevoke(t *testing.T) {
	key := Generate(rng.New(20))
	auth := NewAuthority(key)
	d1, err := auth.Issue("edge-001")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := auth.Issue("edge-001"); err == nil {
		t.Fatal("duplicate serial issued")
	}
	if _, err := auth.Issue(""); err == nil {
		t.Fatal("empty serial issued")
	}
	d2, _ := auth.Issue("edge-002")

	// Both devices answer correctly while licensed.
	if d1.ColumnBit(5) != key.Bit(5) || d2.ColumnBit(5) != key.Bit(5) {
		t.Fatal("licensed device answered wrong bit")
	}

	// Revoking one kills only that license.
	if err := auth.Revoke("edge-001"); err != nil {
		t.Fatal(err)
	}
	if err := auth.Revoke("ghost"); err == nil {
		t.Fatal("revoking unknown serial succeeded")
	}
	allZero := true
	for c := 0; c < KeyBits; c++ {
		if d1.ColumnBit(c) != 0 {
			allZero = false
		}
	}
	if !allZero {
		t.Fatal("revoked device still answers key bits")
	}
	if d2.ColumnBit(7) != key.Bit(7) {
		t.Fatal("revocation leaked to another device")
	}
	// BitsForColumns honours revocation too.
	for _, b := range d1.BitsForColumns([]int{1, 2, 3}) {
		if b != 0 {
			t.Fatal("BitsForColumns ignored revocation")
		}
	}
	got := auth.Issued()
	if len(got) != 2 || got[0] != "edge-001" || got[1] != "edge-002" {
		t.Fatalf("Issued() = %v", got)
	}
}

func TestRingOneDeviceOneModel(t *testing.T) {
	r := rng.New(42)
	devA := NewDevice("a", Generate(r))
	devB := NewDevice("b", Generate(r))
	ring := NewRing()

	if err := ring.Bind("", devA); err == nil {
		t.Fatal("empty model name bound")
	}
	if err := ring.Bind("alpha", devA); err != nil {
		t.Fatal(err)
	}
	// Rebinding the same pair is a no-op; crossing either direction fails.
	if err := ring.Bind("alpha", devA); err != nil {
		t.Fatalf("idempotent rebind failed: %v", err)
	}
	if err := ring.Bind("beta", devA); err == nil {
		t.Fatal("device bound to alpha accepted for beta — key material crossed tenants")
	}
	if err := ring.Bind("alpha", devB); err == nil {
		t.Fatal("model alpha rebound to a different device")
	}
	if err := ring.Bind("beta", devB); err != nil {
		t.Fatal(err)
	}
	// Nil devices (commodity tenants) bind freely and never conflict.
	if err := ring.Bind("plain1", nil); err != nil {
		t.Fatal(err)
	}
	if err := ring.Bind("plain2", nil); err != nil {
		t.Fatal(err)
	}
	if d, ok := ring.Device("alpha"); !ok || d != devA {
		t.Fatal("bound device not returned")
	}
	if d, ok := ring.Device("plain1"); !ok || d != nil {
		t.Fatal("commodity binding not returned as nil device")
	}
	if _, ok := ring.Device("ghost"); ok {
		t.Fatal("unbound model reported a device")
	}
	models := ring.Models()
	if len(models) != 4 {
		t.Fatalf("ring lists %v, want 4 models", models)
	}
	for i := 1; i < len(models); i++ {
		if models[i-1] >= models[i] {
			t.Fatalf("ring listing not sorted: %v", models)
		}
	}
	// Unbind releases the device for a new tenant.
	ring.Unbind("alpha")
	if _, ok := ring.Device("alpha"); ok {
		t.Fatal("unbound model still bound")
	}
	if err := ring.Bind("gamma", devA); err != nil {
		t.Fatalf("device not released on unbind: %v", err)
	}
}

// TestDeviceZeroize: wiping a device zeroes the sealed key's backing
// storage in place and makes every subsequent query answer like a revoked
// license — zero mask stream, identity-free zero bits, no fingerprint
// change needed because Fingerprint is never consulted after teardown.
func TestDeviceZeroize(t *testing.T) {
	d := NewDevice("edge-z", Generate(rng.New(7)))
	if d.Zeroized() {
		t.Fatal("fresh device reports zeroized")
	}
	// Establish that the device is live first, so the post-wipe checks
	// prove a transition rather than a dead fixture.
	live := d.MaskStream("m", 32)
	any := false
	for _, b := range live {
		any = any || b != 0
	}
	if !any {
		t.Fatal("live device produced an all-zero mask stream")
	}

	d.Zeroize()

	if !d.Zeroized() {
		t.Fatal("Zeroize did not mark the device")
	}
	for i, b := range d.key.b {
		if b != 0 {
			t.Fatalf("key byte %d = %#x after Zeroize; backing storage not wiped", i, b)
		}
	}
	for _, b := range d.MaskStream("m", 32) {
		if b != 0 {
			t.Fatal("zeroized device leaked a non-zero mask stream")
		}
	}
	for col := 0; col < KeyBits; col++ {
		if d.ColumnBit(col) != 0 {
			t.Fatalf("zeroized device answered column %d with a live bit", col)
		}
	}
	perm := d.Permutation("p", 8)
	for i, p := range perm {
		if p != i {
			t.Fatalf("zeroized device returned a keyed permutation %v; want identity", perm)
		}
	}
	if !d.Revoked() {
		t.Fatal("zeroized device does not read as revoked")
	}
}

// TestRingZeroize: Ring.Zeroize is the terminal Unbind — the binding is
// gone and the device's key storage is wiped, while plain Unbind leaves
// the device intact for rebinding.
func TestRingZeroize(t *testing.T) {
	r := rng.New(11)
	devA := NewDevice("a", Generate(r))
	devB := NewDevice("b", Generate(r))
	ring := NewRing()
	if err := ring.Bind("alpha", devA); err != nil {
		t.Fatal(err)
	}
	if err := ring.Bind("beta", devB); err != nil {
		t.Fatal(err)
	}

	ring.Zeroize("alpha")
	if _, ok := ring.Device("alpha"); ok {
		t.Fatal("zeroized model still bound")
	}
	if !devA.Zeroized() {
		t.Fatal("ring eviction did not wipe the tenant's device")
	}
	for i, b := range devA.key.b {
		if b != 0 {
			t.Fatalf("key byte %d = %#x after ring Zeroize", i, b)
		}
	}
	// The other tenant's device is untouched.
	if devB.Zeroized() {
		t.Fatal("Zeroize of alpha wiped beta's device")
	}
	// Zeroizing an unknown or commodity (nil-device) model is a no-op.
	ring.Zeroize("ghost")
	if err := ring.Bind("plain", nil); err != nil {
		t.Fatal(err)
	}
	ring.Zeroize("plain")
	if _, ok := ring.Device("plain"); ok {
		t.Fatal("commodity binding survived Zeroize")
	}
}
