// Package watermark implements the white-box DNN watermarking baseline the
// paper positions HPNN against (§I/§II, refs [7,11,19,23]): ownership bits
// embedded into a weight tensor's distribution during training via an
// Uchida-style projection regularizer.
//
// Watermarks let an owner *claim* a stolen model — extract the signature
// and prove ownership — but only if the owner can inspect the model or
// query the pirate service. The paper's argument is that a leaked model
// reused privately bypasses watermark inspection entirely, while HPNN
// prevents the unauthorized use itself. This package makes that comparison
// concrete: embed a watermark, steal the model, fine-tune it, and measure
// (a) whether the signature survives (usually yes — watermarks are robust)
// and (b) whether that helped at all in the private-deployment threat
// model (no: detection requires access the owner does not have).
package watermark

import (
	"fmt"
	"math"

	"hpnn/internal/core"
	"hpnn/internal/nn"
	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// Config describes a watermark to embed.
type Config struct {
	// Bits is the ownership signature length.
	Bits int
	// Strength is the regularizer weight λ.
	Strength float64
	// Seed derives the signature and the secret projection matrix.
	Seed uint64
	// ParamIndex selects which parameter tensor carries the watermark.
	// Negative selects the largest tensor automatically (recommended:
	// small carriers cannot absorb long signatures without residual bit
	// errors).
	ParamIndex int
}

func (c Config) withDefaults() Config {
	if c.Bits == 0 {
		c.Bits = 64
	}
	if c.Strength == 0 {
		c.Strength = 0.05
	}
	return c
}

// Mark is the owner's secret watermarking material.
type Mark struct {
	cfg        Config
	signature  []byte
	projection *tensor.Tensor // [Bits, paramLen]
	// ws holds the projection responses (z) and their gradient (dz):
	// regularize runs once per optimizer step, so its scratch is arena-
	// backed rather than reallocated per call.
	ws *tensor.Workspace
}

// New derives a signature and projection for the given model and config.
func New(m *core.Model, cfg Config) (*Mark, error) {
	cfg = cfg.withDefaults()
	params := m.Net.Params()
	if cfg.ParamIndex < 0 {
		best := 0
		for i, p := range params {
			if p.Value.Len() > params[best].Value.Len() {
				best = i
			}
		}
		cfg.ParamIndex = best
	}
	if cfg.ParamIndex >= len(params) {
		return nil, fmt.Errorf("watermark: parameter index %d out of range", cfg.ParamIndex)
	}
	p := params[cfg.ParamIndex]
	r := rng.New(cfg.Seed)
	sig := make([]byte, cfg.Bits)
	for i := range sig {
		sig[i] = byte(r.Intn(2))
	}
	proj := tensor.New(cfg.Bits, p.Value.Len())
	proj.FillNorm(r, 0, 1/math.Sqrt(float64(p.Value.Len())))
	return &Mark{cfg: cfg, signature: sig, projection: proj, ws: tensor.NewWorkspace()}, nil
}

// Signature returns a copy of the embedded bits.
func (w *Mark) Signature() []byte { return append([]byte(nil), w.signature...) }

// regularize adds λ·∂R/∂w to the carrier tensor's gradient, where
// R = BCE(σ(X·w), signature), and returns R.
func (w *Mark) regularize(p *nn.Param) float64 {
	z := w.ws.MatVec("wm.z", w.projection, p.Value.Data)
	loss := 0.0
	bits := float64(len(z))
	// dR/dz_i = σ(z_i) − b_i (per-bit, not averaged: averaging makes the
	// embedding force vanish against the task gradient); dR/dw = Xᵀ dR/dz.
	dz := w.ws.Get("wm.dz", len(z)).Data
	for i, v := range z {
		s := 1 / (1 + math.Exp(-v))
		b := float64(w.signature[i])
		loss += -(b*math.Log(math.Max(s, 1e-12)) + (1-b)*math.Log(math.Max(1-s, 1e-12)))
		dz[i] = s - b
	}
	loss /= bits
	cols := p.Value.Len()
	for i, d := range dz {
		if d == 0 {
			continue
		}
		row := w.projection.Data[i*cols : (i+1)*cols]
		scaled := w.cfg.Strength * d
		for j, xv := range row {
			p.Grad.Data[j] += scaled * xv
		}
	}
	return loss
}

// Extract reads the signature back from a (possibly stolen and modified)
// model: bit i = [X·w]_i > 0.
func (w *Mark) Extract(m *core.Model) ([]byte, error) {
	params := m.Net.Params()
	if w.cfg.ParamIndex >= len(params) {
		return nil, fmt.Errorf("watermark: model has no parameter %d", w.cfg.ParamIndex)
	}
	p := params[w.cfg.ParamIndex]
	if p.Value.Len() != w.projection.Shape[1] {
		return nil, fmt.Errorf("watermark: carrier size %d does not match projection %d",
			p.Value.Len(), w.projection.Shape[1])
	}
	z := w.ws.MatVec("wm.z", w.projection, p.Value.Data)
	bits := make([]byte, len(z))
	for i, v := range z {
		if v > 0 {
			bits[i] = 1
		}
	}
	return bits, nil
}

// BitErrorRate compares an extraction against the true signature.
func (w *Mark) BitErrorRate(extracted []byte) float64 {
	if len(extracted) != len(w.signature) {
		return 1
	}
	errs := 0
	for i := range extracted {
		if extracted[i] != w.signature[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(w.signature))
}

// Detected reports ownership at the conventional BER < 0.05 threshold.
func (w *Mark) Detected(m *core.Model) (bool, float64, error) {
	bits, err := w.Extract(m)
	if err != nil {
		return false, 1, err
	}
	ber := w.BitErrorRate(bits)
	return ber < 0.05, ber, nil
}

// TrainEmbedded trains the model on (x, y) while embedding the watermark:
// the unified training engine with the projection regularizer installed
// as a gradient-augmentation hook, adding λ·∂R/∂w to the carrier tensor's
// gradient each step.
//
// Embedding used to run its own copy of the epoch loop with a divergent
// shuffle-seed formula; it now shares the Trainer (and train.ShuffleSeed)
// with owner training and the attacks, so identically-seeded runs shuffle
// identically across all three paths. EXPERIMENTS.md records the
// (intentional, seeded) watermark-curve change.
func TrainEmbedded(m *core.Model, w *Mark, trainX *tensor.Tensor, trainY []int, testX *tensor.Tensor, testY []int, cfg core.TrainConfig) core.TrainResult {
	carrier := m.Net.Params()[w.cfg.ParamIndex]
	cfg.GradAugment = func() float64 {
		return w.cfg.Strength * w.regularize(carrier)
	}
	return core.Train(m, trainX, trainY, testX, testY, cfg)
}
