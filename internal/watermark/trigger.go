package watermark

// Blind-watermark trigger set, after "How to prove your model belongs to
// you" (Li et al., 2019): instead of embedding a signature into a weight
// tensor's distribution (the Uchida projection in watermark.go), the owner
// trains the model to classify a small secret set of out-of-distribution
// images — seeded noise carrying a class-keyed logo pattern — with labels
// of the owner's choosing. Ownership is then proven black-box: query the
// suspect model on the trigger set and check whether it answers with the
// secret labels far above chance. No weight access is required, which is
// exactly the capability the projection watermark lacks.
//
// The embedding side is a Config.GradAugments hook: after the task
// gradient lands in the master parameters each step (sequential or
// data-parallel — the hook runs serially on the master either way, so the
// run stays bitwise identical for every replica count), one forward/
// backward pass over the trigger batch adds λ·∂L_trigger/∂w on top.

import (
	"fmt"
	"math"

	"hpnn/internal/core"
	"hpnn/internal/nn"
	"hpnn/internal/rng"
	"hpnn/internal/tensor"
)

// TriggerConfig describes a trigger-set watermark.
type TriggerConfig struct {
	// N is the trigger-set size (default 32).
	N int
	// Strength is the loss weight λ applied to the trigger batch each step
	// (default 1).
	Strength float64
	// Seed derives the trigger images, their logo patterns and the secret
	// label assignment.
	Seed uint64
	// Threshold is the trigger accuracy above which ownership is claimed
	// (default 0.75; chance is 1/classes).
	Threshold float64
}

func (c TriggerConfig) withDefaults() TriggerConfig {
	if c.N == 0 {
		c.N = 32
	}
	if c.Strength == 0 {
		c.Strength = 1
	}
	if c.Threshold == 0 {
		c.Threshold = 0.75
	}
	return c
}

// TriggerSet is the owner's secret trigger material: the images, their
// assigned labels, and the per-step embedding scratch.
type TriggerSet struct {
	cfg     TriggerConfig
	x       *tensor.Tensor // [N, C, H, W]
	y       []int
	classes int
	loss    nn.SoftmaxCrossEntropy
	gradBuf *tensor.Tensor
}

// NewTriggerSet derives a trigger set shaped for the given model. Images
// are unit-normal noise with a class-keyed logo stamped in: each class's
// logo is a seeded set of pixel positions pushed to a strong fixed value,
// so the trigger mapping is learnable but statistically invisible without
// the seed.
func NewTriggerSet(m *core.Model, cfg TriggerConfig) (*TriggerSet, error) {
	cfg = cfg.withDefaults()
	mc := m.Config
	c, h, w, classes := mc.InC, mc.InH, mc.InW, mc.Classes
	if cfg.N < classes {
		return nil, fmt.Errorf("watermark: trigger set of %d cannot cover %d classes", cfg.N, classes)
	}
	r := rng.New(cfg.Seed)
	x := tensor.New(cfg.N, c, h, w)
	x.FillNorm(r, 0, 1)
	// Per-class logo: 1/4 of the pixels of one channel, at seeded
	// positions, saturated to ±3. All triggers of a class share the logo.
	logoN := h * w / 4
	if logoN < 1 {
		logoN = 1
	}
	logos := make([][]int, classes)
	signs := make([][]float64, classes)
	for cl := range logos {
		logos[cl] = make([]int, logoN)
		signs[cl] = make([]float64, logoN)
		for i := range logos[cl] {
			logos[cl][i] = r.Intn(c * h * w)
			signs[cl][i] = 3 - 6*float64(r.Intn(2))
		}
	}
	y := make([]int, cfg.N)
	img := c * h * w
	for i := range y {
		// Round-robin base so every class is covered, shuffled by seed.
		y[i] = i % classes
	}
	r.Shuffle(y)
	for i, label := range y {
		base := i * img
		for j, pos := range logos[label] {
			x.Data[base+pos] = signs[label][j]
		}
	}
	return &TriggerSet{cfg: cfg, x: x, y: y, classes: classes}, nil
}

// Labels returns a copy of the secret trigger labels.
func (ts *TriggerSet) Labels() []int { return append([]int(nil), ts.y...) }

// Hook returns a Config.GradAugments entry that embeds the trigger set
// into m during training: one scaled forward/backward over the trigger
// batch per step, accumulated on top of the task gradient. The returned
// value is the λ-scaled trigger loss added to the step's reported loss.
func (ts *TriggerSet) Hook(m *core.Model) func() float64 {
	net := m.Net
	return func() float64 {
		out := net.Forward(ts.x, true)
		l, g := ts.loss.LossScaledInto(ts.gradBuf, out, ts.y, ts.cfg.Strength/float64(len(ts.y)))
		ts.gradBuf = g
		net.Backward(g)
		return l
	}
}

// Accuracy measures how often the model answers the trigger queries with
// the secret labels — the black-box ownership statistic.
func (ts *TriggerSet) Accuracy(m *core.Model) float64 {
	preds := m.Predict(ts.x, len(ts.y))
	hits := 0
	for i, p := range preds {
		if p == ts.y[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(ts.y))
}

// Detected reports ownership when the trigger accuracy clears the
// configured threshold, and returns the accuracy and the chance rate for
// context.
func (ts *TriggerSet) Detected(m *core.Model) (bool, float64, float64) {
	acc := ts.Accuracy(m)
	chance := 1 / float64(ts.classes)
	return acc >= ts.cfg.Threshold && acc > 2*chance, acc, chance
}

// PValue is a crude binomial tail bound P[X ≥ acc·n] for X ~ Bin(n,
// 1/classes): the probability a non-watermarked model matches the secret
// labels this well by luck (Chernoff bound — loose but monotone, good
// enough for a claim report).
func (ts *TriggerSet) PValue(acc float64) float64 {
	p := 1 / float64(ts.classes)
	if acc <= p {
		return 1
	}
	n := float64(len(ts.y))
	// KL(acc || p) Chernoff exponent.
	kl := acc*math.Log(acc/p) + (1-acc)*math.Log((1-acc)/(1-p))
	return math.Exp(-n * kl)
}
