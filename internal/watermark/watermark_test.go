package watermark

import (
	"testing"

	"hpnn/internal/attack"
	"hpnn/internal/core"
	"hpnn/internal/dataset"
)

func trainWatermarked(t *testing.T) (*core.Model, *Mark, *dataset.Dataset, core.TrainResult) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Name: "fashion", TrainN: 400, TestN: 150, H: 16, W: 16, Seed: 70,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := core.MustModel(core.Config{Arch: core.CNN1, InC: 1, InH: 16, InW: 16, Seed: 71})
	wm, err := New(m, Config{Bits: 64, Strength: 0.1, Seed: 72, ParamIndex: -1})
	if err != nil {
		t.Fatal(err)
	}
	res := TrainEmbedded(m, wm, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, core.TrainConfig{
		Epochs: 8, BatchSize: 32, LR: 0.02, Momentum: 0.9, Seed: 73,
	})
	return m, wm, ds, res
}

func TestEmbedAndExtract(t *testing.T) {
	m, wm, _, res := trainWatermarked(t)
	acc := res.FinalTestAcc()
	if acc < 0.7 {
		t.Fatalf("watermarked training failed: %.3f", acc)
	}
	ok, ber, err := wm.Detected(m)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("watermark not detected after embedding (BER %.3f)", ber)
	}
	if ber != 0 {
		t.Fatalf("freshly embedded watermark has BER %.3f, want 0", ber)
	}
}

func TestUnmarkedModelIsNotDetected(t *testing.T) {
	_, wm, _, _ := trainWatermarked(t)
	other := core.MustModel(core.Config{Arch: core.CNN1, InC: 1, InH: 16, InW: 16, Seed: 99})
	ok, ber, err := wm.Detected(other)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("unrelated model detected as watermarked (BER %.3f)", ber)
	}
	if ber < 0.2 {
		t.Fatalf("unrelated model BER %.3f suspiciously low", ber)
	}
}

// TestWatermarkSurvivesFineTuning: the classic robustness property — and
// exactly why it is NOT sufficient protection: the pirate's fine-tuned
// model still works at high accuracy; the owner merely could prove
// ownership if they ever got their hands on it.
func TestWatermarkSurvivesFineTuning(t *testing.T) {
	m, wm, ds, res := trainWatermarked(t)
	ft, attacker, err := attack.FineTune(m, ds, attack.FineTuneConfig{
		ThiefFrac: 0.1, ThiefSeed: 74, Init: attack.InitStolen,
		Train: core.TrainConfig{Epochs: 5, BatchSize: 16, LR: 0.01, Momentum: 0.9, Seed: 75},
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, ber, err := wm.Detected(attacker)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Logf("note: watermark broken by fine-tuning (BER %.3f) — robustness is limited at this scale", ber)
	}
	// The essential weakness: the stolen, fine-tuned, unwatermark-checked
	// model performs usefully for the pirate — unlike an HPNN-locked one.
	if ft.BestAcc < 0.5 {
		t.Fatalf("pirated watermarked model unusable (%.3f) — scenario not demonstrated", ft.BestAcc)
	}
	_ = res
}

func TestWatermarkConfigValidation(t *testing.T) {
	m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 1})
	if _, err := New(m, Config{ParamIndex: 99}); err == nil {
		t.Fatal("out-of-range carrier accepted")
	}
	// Auto-selection picks the largest tensor (for CNN1 that is conv2.W,
	// not the 100-weight conv1.W at index 0).
	cnn := core.MustModel(core.Config{Arch: core.CNN1, InC: 1, InH: 16, InW: 16, Seed: 1})
	auto, err := New(cnn, Config{Seed: 1, ParamIndex: -1})
	if err != nil {
		t.Fatal(err)
	}
	if auto.cfg.ParamIndex == 0 {
		t.Fatal("auto carrier selection picked the (small) first tensor")
	}
	wm, err := New(m, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(wm.Signature()) != 64 {
		t.Fatalf("default signature length %d, want 64", len(wm.Signature()))
	}
	// Extraction against a mismatched architecture errors cleanly.
	small := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, WidthScale: 2, Seed: 3})
	if _, err := wm.Extract(small); err == nil {
		t.Fatal("mismatched carrier accepted")
	}
}

func TestBitErrorRateBounds(t *testing.T) {
	m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 4})
	wm, _ := New(m, Config{Bits: 8, Seed: 5})
	if wm.BitErrorRate(wm.Signature()) != 0 {
		t.Fatal("self BER must be 0")
	}
	flipped := wm.Signature()
	for i := range flipped {
		flipped[i] ^= 1
	}
	if wm.BitErrorRate(flipped) != 1 {
		t.Fatal("all-flipped BER must be 1")
	}
	if wm.BitErrorRate([]byte{1}) != 1 {
		t.Fatal("length mismatch must read as BER 1")
	}
}
