package watermark

import (
	"math"
	"testing"

	"hpnn/internal/core"
	"hpnn/internal/dataset"
)

func triggerData(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Name: "fashion", TrainN: 400, TestN: 150, H: 16, W: 16, Seed: 170,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestTriggerEmbedAndDetect: the blind-watermark round trip — train with
// the trigger hook under a data-parallel run (the hook rides the
// GradAugments bus, which runs serially on the master for any K), then
// prove ownership black-box. A fresh model must NOT be detected.
func TestTriggerEmbedAndDetect(t *testing.T) {
	ds := triggerData(t)
	m := core.MustModel(core.Config{Arch: core.CNN1, InC: 1, InH: 16, InW: 16, Seed: 171})
	ts, err := NewTriggerSet(m, TriggerConfig{N: 32, Strength: 1, Seed: 172})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.TrainChecked(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, core.TrainConfig{
		Epochs: 8, BatchSize: 32, LR: 0.02, Momentum: 0.9, Seed: 173,
		Replicas: 2, GradShards: 4,
		GradAugments: []func() float64{ts.Hook(m)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.FinalTestAcc(); acc < 0.7 {
		t.Fatalf("trigger-watermarked training failed: %.3f", acc)
	}
	ok, acc, chance := ts.Detected(m)
	if !ok {
		t.Fatalf("trigger watermark not detected after embedding (acc %.3f, chance %.3f)", acc, chance)
	}
	if p := ts.PValue(acc); p > 1e-3 {
		t.Fatalf("detected watermark is statistically weak (acc %.3f, p %.2g)", acc, p)
	}

	// Negative control: an independently trained model answers the trigger
	// queries near chance.
	other := core.MustModel(core.Config{Arch: core.CNN1, InC: 1, InH: 16, InW: 16, Seed: 199})
	if _, err := core.TrainChecked(other, ds.TrainX, ds.TrainY, nil, nil, core.TrainConfig{
		Epochs: 2, BatchSize: 32, LR: 0.02, Momentum: 0.9, Seed: 198,
	}); err != nil {
		t.Fatal(err)
	}
	if ok, acc, _ := ts.Detected(other); ok {
		t.Fatalf("unrelated model detected as trigger-watermarked (acc %.3f)", acc)
	}
}

// TestTriggerBitwiseAcrossK: the embedding run itself — task gradient plus
// trigger hook — must stay bitwise identical across replica counts, since
// the hook runs serially on the master after the data-parallel reduction.
func TestTriggerBitwiseAcrossK(t *testing.T) {
	ds := triggerData(t)
	run := func(k int) []uint64 {
		m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 16, InW: 16, Seed: 181})
		ts, err := NewTriggerSet(m, TriggerConfig{N: 20, Strength: 0.5, Seed: 182})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.TrainChecked(m, ds.TrainX, ds.TrainY, nil, nil, core.TrainConfig{
			Epochs: 2, BatchSize: 32, LR: 0.05, Momentum: 0.9, Seed: 183,
			Replicas: k, GradShards: 4,
			GradAugments: []func() float64{ts.Hook(m)},
		}); err != nil {
			t.Fatal(err)
		}
		var bits []uint64
		for _, p := range m.Net.Params() {
			for _, v := range p.Value.Data {
				bits = append(bits, math.Float64bits(v))
			}
		}
		return bits
	}
	want := run(1)
	for _, k := range []int{2, 4} {
		got := run(k)
		if len(got) != len(want) {
			t.Fatalf("K=%d parameter count mismatch", k)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("K=%d trigger-embedded weights diverge at scalar %d", k, i)
			}
		}
	}
}

// TestTriggerComposesWithProjection: both watermarking methods install at
// once — Uchida on the legacy GradAugment slot, the trigger set on the
// hook bus — and both must be recoverable from the one trained model.
func TestTriggerComposesWithProjection(t *testing.T) {
	ds := triggerData(t)
	m := core.MustModel(core.Config{Arch: core.CNN1, InC: 1, InH: 16, InW: 16, Seed: 191})
	wm, err := New(m, Config{Bits: 64, Strength: 0.1, Seed: 192, ParamIndex: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTriggerSet(m, TriggerConfig{N: 32, Seed: 193})
	if err != nil {
		t.Fatal(err)
	}
	carrier := m.Net.Params()[wm.cfg.ParamIndex]
	_, err = core.TrainChecked(m, ds.TrainX, ds.TrainY, ds.TestX, ds.TestY, core.TrainConfig{
		Epochs: 8, BatchSize: 32, LR: 0.02, Momentum: 0.9, Seed: 194,
		GradAugment:  func() float64 { return wm.cfg.Strength * wm.regularize(carrier) },
		GradAugments: []func() float64{ts.Hook(m)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, ber, err := wm.Detected(m); err != nil || !ok {
		t.Fatalf("projection watermark lost under composition (BER %.3f, err %v)", ber, err)
	}
	if ok, acc, _ := ts.Detected(m); !ok {
		t.Fatalf("trigger watermark lost under composition (acc %.3f)", acc)
	}
}

func TestTriggerConfigValidation(t *testing.T) {
	m := core.MustModel(core.Config{Arch: core.MLP, InC: 1, InH: 8, InW: 8, Seed: 1})
	if _, err := NewTriggerSet(m, TriggerConfig{N: 4}); err == nil {
		t.Fatal("trigger set smaller than the class count accepted")
	}
	ts, err := NewTriggerSet(m, TriggerConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	labels := ts.Labels()
	if len(labels) != 32 {
		t.Fatalf("default trigger size %d, want 32", len(labels))
	}
	// Round-robin base: every class appears.
	seen := make(map[int]bool)
	for _, l := range labels {
		seen[l] = true
	}
	if len(seen) != 10 {
		t.Fatalf("trigger labels cover %d classes, want 10", len(seen))
	}
	// The p-value bound behaves: chance accuracy is not evidence.
	if p := ts.PValue(0.1); p != 1 {
		t.Fatalf("chance-level accuracy has p %.3f, want 1", p)
	}
	if p := ts.PValue(1); p > 1e-9 {
		t.Fatalf("perfect trigger accuracy has p %.2g, want tiny", p)
	}
}
