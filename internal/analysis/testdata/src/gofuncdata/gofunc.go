// Package gofuncdata is a golden fixture for the gofunc check: its import
// path is outside GoStmtAllowPkgs, so any raw go statement is flagged.
package gofuncdata

import "sync"

// Fire spawns an unmanaged goroutine instead of using the worker pool.
func Fire() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "raw go statement outside the worker pool"
		wg.Done()
	}()
	wg.Wait()
}
