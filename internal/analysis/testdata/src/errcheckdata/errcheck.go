// Package errcheckdata is a golden fixture for the errcheck check: the
// test loads it with ErrcheckPkgs pointed at this package. The unflagged
// lines pin the deliberate exemptions (fmt, strings.Builder, deferred
// Close, explicit `_ =` discard).
package errcheckdata

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func fail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Discards exercises every statement position an error can leak from.
func Discards(f *os.File) {
	fail()     // want "error return discarded"
	pair()     // want "error return discarded"
	_ = fail() // explicit discard: the decision is visible, exempt
	if err := fail(); err != nil {
		fmt.Println(err) // fmt is exempt: terminal-write errors are untestable
	}
	var sb strings.Builder
	sb.WriteString("x") // strings.Builder never returns a non-nil error
	defer f.Close()     // deferred Close is the conventional cleanup: exempt
	defer fail()        // want "error return discarded"
	go fail()           // want "error return discarded"
	f.Close()           // want "error return discarded"
	_ = sb.String()
}
