// Package keyflowbaddata holds the malformed-suppression case: a
// //hpnn:keyok with an empty reason. The golden want-comment convention
// cannot express a finding on a comment-only line (one comment per line),
// so TestKeyflowKeyokReason asserts the diagnostic directly.
package keyflowbaddata

import "os"

// Vault mirrors the keyflowdata fixture.
type Vault struct{ secret []byte }

// Secret is the configured source.
func (v *Vault) Secret() []byte { return v.secret }

// NoReason carries a keyok with no reason: the edge is still cut (the
// write below must not be reported), but the empty suppression itself is
// a finding — sanctioned flows must stay auditable.
func NoReason(v *Vault) error {
	//hpnn:keyok()
	return os.WriteFile("escrow.hex", v.Secret(), 0o600)
}
