// Package suppressdata proves //hpnn:allow suppressions are line-scoped and
// check-scoped: each suppressed violation produces no diagnostic, while the
// structurally identical unsuppressed line right next to it still fires.
package suppressdata

import "time"

// Tick trips gofunc and determinism; two of the three sites carry targeted
// suppressions.
func Tick(done chan struct{}) int64 {
	//hpnn:allow(gofunc) fixture: lifecycle joined on the done channel below
	go func() {
		done <- struct{}{}
	}()
	<-done
	// The unsuppressed read sits above the suppressed one: an allow comment
	// covers its own line and the line below, never the line above.
	u := time.Now().Unix() // want `time.Now outside serve/train/cryptobase`
	t := time.Now().Unix() //hpnn:allow(determinism) fixture: timing scaffold
	return t + u
}

// FillInto is a noalloc root whose one growth site is suppressed by the
// comment on the line above it.
func FillInto(dst []int) {
	//hpnn:allow(noalloc) fixture: grow-on-first-use
	buf := make([]int, len(dst))
	copy(dst, buf)
}

// GrowInto shows a suppression naming the wrong check does not silence the
// finding.
func GrowInto(dst []int) {
	//hpnn:allow(determinism) names the wrong check on purpose
	buf := make([]int, len(dst)) // want "make in GrowInto allocates"
	copy(dst, buf)
}
