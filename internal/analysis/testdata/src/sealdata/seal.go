// Package sealdata is a golden fixture for the seal check. It declares its
// own Workspace type — the check matches any named Workspace, so the
// fixture needs no dependency on the real tensor package.
package sealdata

// Tensor stands in for the real buffer type.
type Tensor struct{ Data []float64 }

// Workspace mirrors the getter/Seal/Reset surface of tensor.Workspace.
type Workspace struct{ sealed bool }

func (w *Workspace) Get(key string, shape ...int) *Tensor       { return nil }
func (w *Workspace) GetZeroed(key string, shape ...int) *Tensor { return nil }
func (w *Workspace) Seal()                                      { w.sealed = true }
func (w *Workspace) Reset()                                     { w.sealed = false }

// Bad requests a buffer after sealing: a new key here panics at run time.
func Bad(w *Workspace) {
	w.Get("a", 1)
	w.Seal()
	w.Get("b", 1) // want `w\.Get after w\.Seal\(\) in Bad`
}

// Lifted resets between Seal and Get, which lifts the seal: exempt.
func Lifted(w *Workspace) {
	w.Seal()
	w.Reset()
	w.Get("a", 1)
}

// TwoReceivers seals only a; getters on b stay legal.
func TwoReceivers(a, b *Workspace) {
	a.Seal()
	b.Get("x", 1)       // different receiver: exempt
	a.GetZeroed("y", 1) // want `a\.GetZeroed after a\.Seal\(\) in TwoReceivers`
}
