// Package noallocdata is a golden fixture for the noalloc check: every
// flagged line carries a `// want "regex"` expectation, and the unflagged
// lines pin the check's deliberate exemptions (reslice append, panic
// formatting, constants, pointer-shaped boxing).
package noallocdata

import "fmt"

// T stands in for a tensor-like value type.
type T struct {
	Data  []float64
	Shape []int
}

// CopyInto is a noalloc root by its name suffix.
func CopyInto(dst, src []float64) {
	n := len(src)
	buf := make([]float64, n) // want "make in CopyInto allocates"
	_ = buf
	_ = append(dst, 1)              // want "append in CopyInto may grow and allocate"
	dst2 := append(dst[:0], src...) // reslice idiom: reuses capacity, exempt
	_ = dst2
	fmt.Println("x") // want "call to fmt.Println in CopyInto allocates"
	helper(n)
	_ = &T{}                // want `&T literal in CopyInto escapes to the heap`
	_ = []int{1, 2}         // want "slice literal in CopyInto allocates"
	_ = map[int]int{1: 2}   // want "map literal in CopyInto allocates"
	box(n)                  // want "passing int as .* in CopyInto boxes the value and allocates"
	box(&n)                 // pointer-shaped: boxing a pointer does not allocate
	box(7)                  // constant: staticized, no allocation
	f := func() { _ = dst } // want "func literal in CopyInto may capture variables and allocate"
	f()
	if n < 0 {
		panic(fmt.Sprintf("bad length %d", n)) // cold by construction: exempt
	}
}

// helper is not a root itself; it is reached transitively from CopyInto.
func helper(n int) {
	_ = new(int) // want `new in helper \(on the noalloc path via CopyInto\) allocates`
	_ = n
}

// Annotated is a root by annotation rather than by name.
//
//hpnn:noalloc
func Annotated() {
	_ = make([]byte, 1) // want "make in Annotated allocates"
}

func box(v any) { _ = v }

// RunInto hands worker to dispatch by value, the pool-kernel idiom: the
// closure must still be traced even though RunInto never calls it directly.
func RunInto(dst []int) {
	dispatch(worker)
	_ = dst
}

func dispatch(fn func(int)) { fn(0) }

func worker(i int) {
	_ = make([]int, i) // want `make in worker \(on the noalloc path via RunInto\) allocates`
}

// Unchecked is neither named *Into nor annotated: it may allocate freely.
func Unchecked() []int {
	return make([]int, 3)
}
