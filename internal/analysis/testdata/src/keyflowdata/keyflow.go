// Package keyflowdata is a golden fixture for the keyflow taint check:
// direct source→sink flows, a flow through two call hops reported at the
// site where the material enters the chain, a sanitizer cut, a configured
// module sink, and //hpnn:keyok scoping. The test config maps Vault.Secret
// and Vault.Bits as sources, send as a module sink, and Scrub as the
// sanitizer.
package keyflowdata

import (
	"fmt"
	"os"
)

// Vault stands in for the key device: a method source and a field source.
type Vault struct {
	secret []byte
	Bits   []byte
}

// Secret is the configured method source.
func (v *Vault) Secret() []byte { return v.secret }

// Scrub is the configured sanitizer: it derives a value from the material
// (dataflow-wise a pass-through — without the sanitizer declaration the
// engine would propagate taint straight through it), and the config
// declares the result public by fiat.
func Scrub(b []byte) []byte { return b[:1:1] }

// send is the configured module sink (stands in for a wire encoder).
func send(b []byte) { _ = b }

// LogDirect leaks through a fmt verb in one step.
func LogDirect(v *Vault) {
	fmt.Printf("key=%x\n", v.Secret()) // want "key material from keyflowdata.Vault.Secret reaches fmt.Printf"
}

// FieldFile leaks a source field into a file write.
func FieldFile(v *Vault) error {
	return os.WriteFile("bits.bin", v.Bits, 0o600) // want "key material from keyflowdata.Vault.Bits reaches os.WriteFile"
}

// wrap copies the material into a framed buffer: hop one.
func wrap(b []byte) []byte { return append([]byte("k:"), b...) }

// emit prints whatever it is handed: hop two. The flow is reported at the
// caller that supplies key material, not here — emit's own arguments are
// only parameter-tainted.
func emit(b []byte) {
	fmt.Println(string(b))
}

// TwoHops drives key material through wrap and emit; the finding lands on
// this call with the chain in the message.
func TwoHops(v *Vault) {
	emit(wrap(v.Secret())) // want `key material from keyflowdata.Vault.Secret reaches fmt.Println \(via emit\)`
}

// ModuleSink exercises a configured (non-stdlib) sink.
func ModuleSink(v *Vault) {
	send(v.Secret()) // want "key material from keyflowdata.Vault.Secret reaches keyflowdata.send"
}

// Sanitized routes through the choke point: Scrub's result is clean, so
// the fmt verb below must stay silent (TestKeyflowSanitizerRemoved proves
// it fires again when the sanitizer is deconfigured).
func Sanitized(v *Vault) {
	fmt.Printf("pub=%x\n", Scrub(v.Secret()))
}

// Sanctioned is the keyok escape hatch: the annotated line is cut.
func Sanctioned(v *Vault) error {
	//hpnn:keyok(fixture: owner-requested escrow of the raw key)
	return os.WriteFile("escrow.hex", v.Secret(), 0o600)
}

// KeyokBelow shows scoping: a keyok after the flow covers nothing — the
// annotation must sit on the flagged line or the line above it.
func KeyokBelow(v *Vault) error {
	err := os.WriteFile("late.hex", v.Secret(), 0o600) // want "key material from keyflowdata.Vault.Secret reaches os.WriteFile"
	//hpnn:keyok(fixture: a comment below the flow does not cover it)
	_ = err
	return err
}

// Arithmetic shows the deliberate non-flow: key bits folded through
// arithmetic (the lock transform itself) carry no taint.
func Arithmetic(v *Vault) {
	sum := 0
	for _, b := range v.Bits {
		sum += int(b) * 3
	}
	fmt.Println(sum)
}

// PanicFed shows the cold-path exemption shared with noalloc: a fmt call
// feeding panic directly formats a crash message, not an output.
func PanicFed(v *Vault) {
	if len(v.Bits) == 0 {
		panic(fmt.Sprintf("vault %v has no bits", v.Bits))
	}
}
