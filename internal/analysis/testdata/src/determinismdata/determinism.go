// Package determinismdata is a golden fixture for the determinism check:
// the test loads it with MapRangePkgs pointed at this package, so the map
// range below is restricted while the slice range stays legal.
package determinismdata

import (
	"math/rand" // want "import of math/rand outside internal/rng"
	"time"
)

// Sum ranges a map without sorting the keys: accumulation order — and with
// floating point, the result — changes run to run.
func Sum(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // want "map iteration order is randomized"
		s += v
	}
	for i, v := range []float64{1, 2} { // slice iteration is ordered: exempt
		s += v * float64(i)
	}
	return s
}

// Stamp reads the wall clock twice and the global PRNG once.
func Stamp() int64 {
	_ = rand.Int()     // the import is the finding; call sites are not re-flagged
	t := time.Now()    // want `time.Now outside serve/train/cryptobase`
	d := time.Since(t) // want `time.Since outside serve/train/cryptobase`
	return t.Unix() + int64(d)
}
