package analysis

import (
	"go/ast"
	"go/types"
)

// The shared static callgraph (DESIGN.md §16). Both interprocedural
// clients — the noalloc transitive-contract walk and the keyflow taint
// engine — consume the same graph, so call resolution has exactly one
// implementation: direct identifiers, package-qualified functions, and
// concrete method selections resolve; calls through interfaces or stored
// function values do not (each client documents how it compensates).
//
// The graph is deliberately check-agnostic: every call expression in every
// function body is recorded, in traversal order, with nothing filtered.
// Suppression comments (//hpnn:allow edge cuts, //hpnn:keyok taint cuts)
// are per-check policy, applied by the client over the recorded positions.

// CallSite is one call expression inside a function body.
type CallSite struct {
	Call *ast.CallExpr
	// Callee is the resolved called object: a *types.Func for direct and
	// concrete-method calls (module or external), a *types.Builtin for
	// builtins, nil for indirect calls through function values. Interface
	// method calls resolve to the interface's *types.Func (no body).
	Callee types.Object
	// ValueArgs lists module-level functions appearing by value in the
	// argument list — kernels handed to the worker-pool dispatchers run on
	// behalf of the caller, so flow-sensitive clients treat them as edges.
	ValueArgs []*types.Func
	// IsConversion marks a type conversion, which is not a call at all.
	IsConversion bool
}

// FuncNode is one module function with a body: its syntax, its package
// context, and every call site inside it.
type FuncNode struct {
	Obj   *types.Func
	Pkg   *Package
	Decl  *ast.FuncDecl
	File  *ast.File
	Sites []*CallSite
}

// CallGraph indexes every module function with a body. Nodes holds stable
// program order: packages sorted by import path, files in build-list order,
// declarations in source order — the order every deterministic whole-program
// walk in this package uses.
type CallGraph struct {
	Nodes []*FuncNode
	byObj map[*types.Func]*FuncNode
}

// Node returns the graph node for a function object, or nil when the
// function is outside the module or has no body (assembly stubs).
func (g *CallGraph) Node(fn *types.Func) *FuncNode { return g.byObj[fn] }

// CallGraph builds (once) and returns the program's static callgraph.
func (p *Program) CallGraph() *CallGraph {
	if p.callgraph == nil {
		p.callgraph = buildCallGraph(p)
	}
	return p.callgraph
}

func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{byObj: make(map[*types.Func]*FuncNode)}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Pkg: pkg, Decl: decl, File: file}
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					node.Sites = append(node.Sites, newCallSite(pkg, call))
					return true
				})
				g.Nodes = append(g.Nodes, node)
				g.byObj[obj] = node
			}
		}
	}
	return g
}

// newCallSite resolves one call expression: callee object, by-value
// function arguments, and whether the "call" is really a conversion.
func newCallSite(pkg *Package, call *ast.CallExpr) *CallSite {
	site := &CallSite{Call: call}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		site.IsConversion = true
		return site
	}
	site.Callee = calleeObject(pkg, call)
	for _, arg := range call.Args {
		if fn, ok := identObject(pkg, arg).(*types.Func); ok {
			site.ValueArgs = append(site.ValueArgs, fn)
		}
	}
	return site
}

// CalleeFunc returns the site's callee as a *types.Func, or nil.
func (s *CallSite) CalleeFunc() *types.Func {
	fn, _ := s.Callee.(*types.Func)
	return fn
}

// enclosedBy reports whether the site's position falls inside the given
// call expression's source span (the site itself included) — how a
// suppression on an outer call cuts every edge in its subtree, matching the
// legacy walker's skipped-subtree semantics.
func (s *CallSite) enclosedBy(outer *ast.CallExpr) bool {
	return outer.Pos() <= s.Call.Pos() && s.Call.Pos() <= outer.End()
}
