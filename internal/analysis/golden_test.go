package analysis

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// quotedPat extracts the quoted regexes from a `// want "..." "..."`
// comment; both interpreted and backquoted (raw) forms are accepted.
var quotedPat = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// expectation is one `// want "regex"` annotation from a fixture file: a
// diagnostic on that line whose message matches the regex must be produced.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants parses the fixture program's `// want` comments into
// positional expectations.
func collectWants(t *testing.T, prog *Program) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rel, err := filepath.Rel(prog.Root, pos.Filename)
					if err != nil {
						t.Fatalf("relativizing %s: %v", pos.Filename, err)
					}
					quoted := quotedPat.FindAllString(text, -1)
					if len(quoted) == 0 {
						t.Fatalf("%s:%d: want comment with no quoted pattern: %s", rel, pos.Line, text)
					}
					for _, q := range quoted {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", rel, pos.Line, q, err)
						}
						wants = append(wants, &expectation{
							file: filepath.ToSlash(rel),
							line: pos.Line,
							re:   regexp.MustCompile(pat),
						})
					}
				}
			}
		}
	}
	return wants
}

// runGolden loads one fixture package, applies the config mutation, runs the
// named checks, and verifies the diagnostics against the fixture's `// want`
// comments exactly: every diagnostic must match a want on its line, and
// every want must be hit.
func runGolden(t *testing.T, fixture string, mutate func(*Config), checks ...string) {
	t.Helper()
	prog, err := Load(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if mutate != nil {
		mutate(&prog.Config)
	}
	diags, err := Lint(prog, checks...)
	if err != nil {
		t.Fatalf("linting fixture %s: %v", fixture, err)
	}
	wants := collectWants(t, prog)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

func TestNoAllocGolden(t *testing.T) {
	runGolden(t, "noallocdata", nil, "noalloc")
}

func TestDeterminismGolden(t *testing.T) {
	runGolden(t, "determinismdata", func(c *Config) {
		c.MapRangePkgs = []string{"determinismdata"}
	}, "determinism")
}

func TestGoFuncGolden(t *testing.T) {
	runGolden(t, "gofuncdata", nil, "gofunc")
}

func TestErrcheckGolden(t *testing.T) {
	runGolden(t, "errcheckdata", func(c *Config) {
		c.ErrcheckPkgs = []string{"errcheckdata"}
	}, "errcheck")
}

func TestSealGolden(t *testing.T) {
	runGolden(t, "sealdata", nil, "seal")
}

// TestSuppressions runs the three checks the suppress fixture trips; the
// suppressed sites must stay silent and the deliberately unsuppressed (or
// wrongly suppressed) sites must still fire.
func TestSuppressions(t *testing.T) {
	runGolden(t, "suppressdata", nil, "noalloc", "determinism", "gofunc")
}

// TestSelfLint asserts the repo itself is clean under the default
// configuration — the same gate scripts/check.sh enforces.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint loads and type-checks the whole module; skipped in -short mode")
	}
	prog, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if prog.Module != "hpnn" {
		t.Fatalf("module path = %q, want hpnn", prog.Module)
	}
	// The confidentiality check must be part of the default gate, not an
	// opt-in: a clean self-lint here means clean including keyflow.
	names := CheckNames()
	found := false
	for _, n := range names {
		if n == "keyflow" {
			found = true
		}
	}
	if !found {
		t.Fatalf("keyflow missing from the default check registry: %v", names)
	}
	diags, err := Lint(prog)
	if err != nil {
		t.Fatalf("linting module: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

func TestMatchPkg(t *testing.T) {
	cases := []struct {
		path     string
		patterns []string
		want     bool
	}{
		{"hpnn/internal/tensor", []string{"hpnn/internal/tensor"}, true},
		{"hpnn/internal/tensor", []string{"hpnn/internal/nn"}, false},
		{"hpnn/cmd/hpnn-train", []string{"hpnn/cmd/..."}, true},
		{"hpnn/cmd", []string{"hpnn/cmd/..."}, true},
		{"hpnn/cmdx", []string{"hpnn/cmd/..."}, false},
		{"hpnn/internal/tensor", nil, false},
	}
	for _, c := range cases {
		if got := matchPkg(c.path, c.patterns); got != c.want {
			t.Errorf("matchPkg(%q, %v) = %v, want %v", c.path, c.patterns, got, c.want)
		}
	}
}
