package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// runDeterminism enforces the bitwise-reproducibility invariants that HPNN's
// security argument depends on (key-dependent backprop and the locked TPU
// path must replay exactly):
//
//   - no `for range` over a map type inside the compute packages — map
//     iteration order is randomized per run; sort the keys first or suppress
//     with //hpnn:allow(determinism) when the loop is provably
//     order-independent (sums, full clears);
//   - no math/rand (v1 or v2) import outside the seeded internal/rng
//     generators;
//   - no time.Now / time.Since outside the serving, training-telemetry, and
//     crypto-benchmark packages (and tests, which are never loaded).
func runDeterminism(prog *Program, report func(pos token.Pos, format string, args ...any)) {
	for _, pkg := range prog.Pkgs {
		mapRangeRestricted := matchPkg(pkg.Path, prog.Config.MapRangePkgs)
		randAllowed := matchPkg(pkg.Path, prog.Config.RandAllowPkgs)
		timeAllowed := matchPkg(pkg.Path, prog.Config.TimeAllowPkgs)

		for _, file := range pkg.Files {
			if !randAllowed {
				for _, imp := range file.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if path == "math/rand" || path == "math/rand/v2" {
						report(imp.Pos(), "import of %s outside internal/rng: use the seeded deterministic generators", path)
					}
				}
			}
			if !mapRangeRestricted && timeAllowed {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.RangeStmt:
					if !mapRangeRestricted {
						return true
					}
					if _, isMap := pkg.Info.TypeOf(node.X).Underlying().(*types.Map); isMap {
						report(node.Pos(), "map iteration order is randomized: sort the keys before ranging (or suppress if order-independent)")
					}
				case *ast.CallExpr:
					if timeAllowed {
						return true
					}
					if fn, ok := calleeObject(pkg, node).(*types.Func); ok &&
						fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
						(fn.Name() == "Now" || fn.Name() == "Since") {
						report(node.Pos(), "time.%s outside serve/train/cryptobase: wall-clock reads break reproducibility", fn.Name())
					}
				}
				return true
			})
		}
	}
}
