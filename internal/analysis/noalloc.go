package analysis

import (
	"go/ast"
	"go/build"
	"go/token"
	"go/types"
	"strings"
)

// runNoAlloc enforces the zero-allocation contract on the repo's hot paths.
//
// Roots are functions whose name carries a configured suffix (*Into,
// *SliceInto) or an explicit //hpnn:noalloc annotation. The contract is
// transitive: every module function a root statically calls — including
// top-level kernel functions passed by value into the worker-pool dispatchers
// — inherits it. Within the contract the check flags the allocation sources
// Go makes syntactically visible:
//
//   - make / new
//   - append, unless it is the canonical non-growing reslice idiom
//     append(x[:0], ...)
//   - slice and map composite literals, and &T{...} (escaping composite)
//   - any call into package fmt
//   - interface boxing at call sites: a non-pointer-shaped, non-constant
//     concrete value passed where an interface is expected
//   - func literals (closure capture)
//
// Two deliberate exemptions keep the signal high: a fmt call whose result
// feeds panic(...) directly is cold by construction and is not flagged, and
// an //hpnn:allow(noalloc) on a call site both suppresses the finding and
// cuts the call-graph edge — that is how the intentionally slow systolic
// register-level simulation is excluded at its single entry point.
//
// Calls through interfaces or stored function values cannot be resolved
// statically and are not followed; annotate each concrete implementation
// instead. First-use growth paths are suppressed in place with
// //hpnn:allow(noalloc) plus a reason.
//
// The transitive closure runs over the shared callgraph (callgraph.go), the
// same graph the keyflow taint engine consumes, so both interprocedural
// checks resolve calls identically. noalloc_legacy_test.go pins the
// migrated walk to the original hand-rolled BFS diagnostic-for-diagnostic.
func runNoAlloc(prog *Program, report func(pos token.Pos, format string, args ...any)) {
	allows := collectAllows(prog)
	cg := prog.CallGraph()
	var roots []*types.Func

	for _, node := range cg.Nodes {
		name := node.Decl.Name.Name
		isRoot := false
		for _, suf := range prog.Config.NoAllocSuffixes {
			if strings.HasSuffix(name, suf) {
				isRoot = true
				break
			}
		}
		if !isRoot && funcHasAnnotation(prog, node.File, node.Decl, "noalloc") {
			isRoot = true
		}
		if isRoot {
			roots = append(roots, node.Obj)
		}
	}

	// Breadth-first closure over the callgraph, remembering which root first
	// pulled each function into the contract so diagnostics can say why a
	// helper deep in the tensor package is being held to it.
	rootOf := make(map[*types.Func]*types.Func)
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		if _, seen := rootOf[r]; !seen {
			rootOf[r] = r
			queue = append(queue, r)
		}
	}
	enqueue := func(callee, root *types.Func) {
		if cg.Node(callee) == nil {
			return // outside the module (stdlib) or no body (assembly)
		}
		if _, seen := rootOf[callee]; seen {
			return
		}
		rootOf[callee] = root
		queue = append(queue, callee)
	}

	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := cg.Node(fn)
		root := rootOf[fn]
		where := fn.Name()
		if root != fn {
			where = fn.Name() + " (on the noalloc path via " + root.Name() + ")"
		}

		// Edges come from the recorded call sites: an //hpnn:allow(noalloc)
		// on a call cuts every edge in that call's subtree (the legacy
		// walker's skipped-subtree semantics); conversions, builtins, and
		// fmt calls contribute no edges (fmt's value arguments feed the
		// formatter, not the caller's hot path).
		var cutSpans []*ast.CallExpr
		for _, site := range node.Sites {
			if allows.at(prog, site.Call.Pos(), "noalloc") {
				cutSpans = append(cutSpans, site.Call)
				continue
			}
			cut := false
			for _, span := range cutSpans {
				if site.enclosedBy(span) {
					cut = true
					break
				}
			}
			if cut || site.IsConversion {
				continue
			}
			if _, isBuiltin := site.Callee.(*types.Builtin); isBuiltin {
				continue
			}
			if callee := site.CalleeFunc(); callee != nil {
				if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
					continue
				}
				enqueue(callee, root)
			}
			// Module functions passed by value (kernel workers handed to
			// the pool dispatchers) execute on behalf of the caller.
			for _, va := range site.ValueArgs {
				enqueue(va, root)
			}
		}

		// fmt calls feeding panic directly are exempt (cold path); the
		// panic call is visited before its argument, so mark it here.
		panicFed := make(map[ast.Node]bool)

		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch node2 := n.(type) {
			case *ast.FuncLit:
				report(node2.Pos(), "func literal in %s may capture variables and allocate", where)
				return false
			case *ast.UnaryExpr:
				if node2.Op == token.AND {
					if lit, ok := node2.X.(*ast.CompositeLit); ok {
						report(node2.Pos(), "&%s literal in %s escapes to the heap", litName(lit), where)
						return false // the inner literal is covered by this finding
					}
				}
			case *ast.CompositeLit:
				switch node.Pkg.Info.TypeOf(node2).Underlying().(type) {
				case *types.Slice:
					report(node2.Pos(), "slice literal in %s allocates", where)
				case *types.Map:
					report(node2.Pos(), "map literal in %s allocates", where)
				}
			case *ast.CallExpr:
				if allows.at(prog, node2.Pos(), "noalloc") {
					return false // suppressed call site: findings in the subtree too
				}
				if b, ok := calleeObject(node.Pkg, node2).(*types.Builtin); ok && b.Name() == "panic" {
					for _, arg := range node2.Args {
						if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
							if fn, ok := calleeObject(node.Pkg, inner).(*types.Func); ok &&
								fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
								panicFed[inner] = true
							}
						}
					}
					return true
				}
				if panicFed[node2] {
					return true // formatting a panic message: cold by construction
				}
				checkNoAllocCall(prog, node.Pkg, node2, where, report, nil)
			}
			return true
		})
	}
}

func litName(lit *ast.CompositeLit) string {
	if lit.Type == nil {
		return "composite"
	}
	return types.ExprString(lit.Type)
}

// checkNoAllocCall inspects one call expression inside a noalloc function:
// it flags allocating builtins, fmt calls, and interface boxing. With a
// non-nil follow it also feeds statically resolvable module callees (and
// module functions passed by value as arguments) back into the closure —
// the legacy interleaved walk, kept for the parity oracle; the production
// check passes nil and takes its edges from the shared callgraph.
func checkNoAllocCall(prog *Program, pkg *Package, call *ast.CallExpr, where string,
	report func(pos token.Pos, format string, args ...any), follow func(*types.Func)) {

	// Type conversions are not calls; interface-typed conversions do not
	// occur on the repo's hot paths and are out of scope here.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	if obj := calleeObject(pkg, call); obj != nil {
		switch callee := obj.(type) {
		case *types.Builtin:
			switch callee.Name() {
			case "make":
				report(call.Pos(), "make in %s allocates", where)
			case "new":
				report(call.Pos(), "new in %s allocates", where)
			case "append":
				if !isResliceAppend(pkg, call) {
					report(call.Pos(), "append in %s may grow and allocate", where)
				}
			}
			return
		case *types.Func:
			if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
				report(call.Pos(), "call to fmt.%s in %s allocates", callee.Name(), where)
				return // boxing into fmt's ...any is subsumed by this finding
			}
			if follow != nil {
				follow(callee)
			}
		}
	}

	// Module functions passed by value (kernel workers handed to the pool
	// dispatchers) execute on behalf of the caller; pull them in.
	if follow != nil {
		for _, arg := range call.Args {
			if obj := identObject(pkg, arg); obj != nil {
				if fn, ok := obj.(*types.Func); ok {
					follow(fn)
				}
			}
		}
	}

	checkBoxing(pkg, call, where, report)
}

// calleeObject resolves the called object for direct calls: plain
// identifiers, package-qualified functions, and concrete method selections.
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		return pkg.Info.Uses[fun.Sel] // pkg-qualified function
	}
	return nil
}

func identObject(pkg *Package, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		if pkg.Info.Selections[x] == nil { // qualified identifier, not a field/method
			return pkg.Info.Uses[x.Sel]
		}
	}
	return nil
}

// isResliceAppend recognizes append(x[:0], ...): the repo's canonical
// steady-state reuse idiom, which only grows when capacity is exceeded on
// first use. Growth on the first call is accepted everywhere this idiom
// appears; the AllocsPerRun pins verify the steady state.
func isResliceAppend(pkg *Package, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	sl, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || sl.High == nil {
		return false
	}
	tv, ok := pkg.Info.Types[sl.High]
	return ok && tv.Value != nil && tv.Value.String() == "0"
}

// checkBoxing flags call arguments that convert a concrete, non-pointer-
// shaped value into an interface parameter: the conversion heap-allocates
// the value. Pointer-shaped values (pointers, channels, maps, funcs) and
// constants are stored or staticized without allocation and are exempt.
func checkBoxing(pkg *Package, call *ast.CallExpr, where string,
	report func(pos token.Pos, format string, args ...any)) {

	sigType := pkg.Info.TypeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				continue // a []T passed through ...T is not boxed per element
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := pkg.Info.Types[arg]
		if !ok || tv.IsNil() || tv.Value != nil {
			continue // nil and constants do not allocate
		}
		at := tv.Type
		if at == nil {
			continue
		}
		if _, isIface := at.Underlying().(*types.Interface); isIface {
			continue
		}
		if pointerShaped(at) || zeroSized(at) {
			continue
		}
		report(arg.Pos(), "passing %s as %s in %s boxes the value and allocates",
			at.String(), pt.String(), where)
	}
}

// pointerShaped reports whether values of t fit in an interface's data word
// without allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func zeroSized(t types.Type) bool {
	sizes := types.SizesFor("gc", build.Default.GOARCH)
	return sizes != nil && sizes.Sizeof(t) == 0
}
