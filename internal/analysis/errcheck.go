package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runErrcheck flags silently discarded error returns in the packages that
// touch external state: the CLIs, the model/checkpoint codecs, and the
// serving layer. A call whose error is dropped on the floor as a bare
// statement (or `go` statement) hides I/O failures; write the error path or
// discard explicitly with `_ =` so the decision is visible in review.
//
// Deliberate exemptions, so the check stays high-signal:
//   - package fmt (terminal writes; errors are untestable in practice),
//   - methods on strings.Builder and bytes.Buffer (documented to never
//     return a non-nil error),
//   - `defer x.Close()` (the conventional error-path cleanup of read-only
//     resources); a *statement* `x.Close()` is still flagged.
func runErrcheck(prog *Program, report func(pos token.Pos, format string, args ...any)) {
	errType := types.Universe.Lookup("error").Type()

	returnsError := func(pkg *Package, call *ast.CallExpr) bool {
		t := pkg.Info.TypeOf(call)
		if t == nil {
			return false
		}
		if types.Identical(t, errType) {
			return true
		}
		if tup, ok := t.(*types.Tuple); ok {
			for i := 0; i < tup.Len(); i++ {
				if types.Identical(tup.At(i).Type(), errType) {
					return true
				}
			}
		}
		return false
	}

	exempt := func(pkg *Package, call *ast.CallExpr) bool {
		fn, ok := calleeObject(pkg, call).(*types.Func)
		if !ok {
			return false
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return false
		}
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		named, ok := rt.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return false
		}
		switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
		case "strings.Builder", "bytes.Buffer":
			return true
		}
		return false
	}

	for _, pkg := range prog.Pkgs {
		if !matchPkg(pkg.Path, prog.Config.ErrcheckPkgs) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var call *ast.CallExpr
				deferred := false
				switch stmt := n.(type) {
				case *ast.ExprStmt:
					call, _ = stmt.X.(*ast.CallExpr)
				case *ast.DeferStmt:
					call, deferred = stmt.Call, true
				case *ast.GoStmt:
					call = stmt.Call
				default:
					return true
				}
				if call == nil || !returnsError(pkg, call) || exempt(pkg, call) {
					return true
				}
				if deferred {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
						return true
					}
				}
				report(call.Pos(), "error return discarded: handle it or discard explicitly with _ =")
				return true
			})
		}
	}
}
