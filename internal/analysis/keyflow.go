package analysis

import (
	"go/token"
)

// keyflow: the confidentiality invariant, machine-checked. The paper's
// security argument assumes key material — device secrets, PUF-style
// permutations, lock bits, multiplicative factors — never leaves the
// process except through the sanctioned choke points (scheme publication,
// checkpoint encryption, explicitly annotated owner-side writes). This
// check runs the interprocedural taint engine (taint.go) over the shared
// callgraph (callgraph.go) and reports every source→sink flow that is not
// cut by a sanitizer or a `//hpnn:keyok(reason)` annotation.
func runKeyflow(prog *Program, report func(pos token.Pos, format string, args ...any)) {
	eng, err := newTaintEngine(prog, report)
	if err != nil {
		report(token.NoPos, "%v", err)
		return
	}
	eng.reportBadKeyok()
	eng.run()
}
