// Package analysis is hpnn's in-tree static analyzer. It loads and
// type-checks every package in the module using only the standard library
// (go/parser, go/types, and the source importer for stdlib dependencies),
// then runs a registry of named checks that enforce the repo's zero-alloc,
// determinism, and concurrency invariants at review time instead of run
// time. See DESIGN.md §11 for the check catalogue and the suppression
// syntax.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package: its syntax, its type
// information, and enough position context to report file:line diagnostics.
type Package struct {
	Path  string // import path, e.g. "hpnn/internal/tensor"
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the fully loaded module: every non-test package, type-checked
// against its in-module and stdlib dependencies, sharing one FileSet.
type Program struct {
	Fset   *token.FileSet
	Module string // module path from go.mod ("hpnn")
	Root   string // absolute module root
	Pkgs   []*Package
	Config Config

	byPath    map[string]*Package
	callgraph *CallGraph // built lazily by CallGraph()
}

// Lookup returns the loaded package with the given import path, or nil.
func (p *Program) Lookup(path string) *Package { return p.byPath[path] }

// loader type-checks module packages in dependency order. Stdlib imports are
// delegated to the standard source importer; module-internal imports recurse
// into the loader itself, so one pass over the directory tree yields a
// consistent, fully typed view of the module with zero external tooling.
type loader struct {
	fset   *token.FileSet
	module string
	root   string
	std    types.ImporterFrom
	pkgs   map[string]*Package
	active map[string]bool // cycle detection
}

// Load walks the module rooted at root (a directory containing go.mod, or a
// bare directory for single-package test loads), parses every non-test
// package honoring build constraints, and type-checks the lot. Test files
// are excluded by design: the checks police production code, and several
// invariants (time.Now, allocation) are explicitly relaxed in tests.
func Load(root string) (*Program, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module := readModulePath(abs)
	l := &loader{
		fset:   token.NewFileSet(),
		module: module,
		root:   abs,
		pkgs:   make(map[string]*Package),
		active: make(map[string]bool),
	}
	l.std, _ = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)

	dirs, err := packageDirs(abs)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		if _, err := l.load(l.importPathFor(dir)); err != nil {
			return nil, err
		}
	}

	prog := &Program{
		Fset:   l.fset,
		Module: module,
		Root:   abs,
		Config: DefaultConfig(),
		byPath: l.pkgs,
	}
	for _, pkg := range l.pkgs {
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// readModulePath extracts the module path from root/go.mod, falling back to
// the directory base name so bare testdata directories load as a
// self-contained single-package module.
func readModulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return filepath.Base(root)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return filepath.Base(root)
}

// packageDirs returns every directory under root that holds buildable Go
// files, skipping testdata, vendor, hidden directories, and the analyzer's
// own golden fixtures.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if bp, err := build.ImportDir(path, 0); err == nil && len(bp.GoFiles) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func (l *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.module
	}
	return l.module + "/" + filepath.ToSlash(rel)
}

func (l *loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
}

// Import implements types.Importer by routing module-internal paths through
// the loader and everything else (stdlib) through the source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if l.std == nil {
		return nil, fmt.Errorf("analysis: no stdlib importer for %q", path)
	}
	return l.std.ImportFrom(path, l.root, 0)
}

// load parses and type-checks one module package (memoized).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.active[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	dir := l.dirFor(path)
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
