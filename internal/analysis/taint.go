package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Interprocedural forward taint propagation over the shared callgraph
// (DESIGN.md §16). The engine tracks *material-preserving* flows of
// configured source values — copies, conversions, slicing/indexing, string
// concatenation, append/copy, formatting, and flows through module function
// calls and returns — and reports when tainted material reaches a sink.
//
// Deliberately NOT tracked, because the lock transform itself is the
// paper's protection rather than a leak:
//
//   - arithmetic and bitwise binary expressions (factor multiplication in
//     the datapath, keystream XOR in the weight ciphers);
//   - implicit flows (branching on a key bit taints nothing);
//   - whole-struct taint from a tainted field: a struct stores per-field
//     taint inside one function, and a struct value crossing a call
//     boundary carries only its own object-level taint. Field reads are
//     re-seeded at every site by the source patterns, so cross-function
//     field flows are still caught where the material is read.
//
// Sensitivity, sized to the patterns this repo uses:
//
//   - arg sensitivity: function summaries record, per parameter (receiver
//     = slot 0), which results it flows to and which sinks it reaches, so
//     a leak through helper chains is reported at the call site where the
//     material enters the chain, with the chain in the message;
//   - field sensitivity: assignments through a selector taint only the
//     (root object, field) pair, never the whole struct;
//   - return sensitivity: multi-result functions carry per-result taint.
//
// Summaries reach a fixed point by iterating whole-program passes in
// stable callgraph order; the lattice (source bit + parameter bitset per
// result, merged sink records) is finite, so the loop terminates.

// taintVal is the lattice value for one expression or variable: whether it
// carries configured source material (with the first-seen origin for the
// diagnostic), and which enclosing-function parameters it may alias.
type taintVal struct {
	src    bool
	origin string
	params uint64
}

func (t taintVal) any() bool { return t.src || t.params != 0 }

func (t taintVal) or(o taintVal) taintVal {
	out := taintVal{src: t.src || o.src, origin: t.origin, params: t.params | o.params}
	if out.origin == "" {
		out.origin = o.origin
	}
	return out
}

// member names one function, method, or struct field in "pkg:Name" /
// "pkg:Type.Member" pattern form.
type member struct {
	pkg, typ, name string
}

func (m member) String() string {
	base := m.pkg
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	if m.typ != "" {
		return base + "." + m.typ + "." + m.name
	}
	return base + "." + m.name
}

// parseMember parses a config pattern: "import/path:Func" or
// "import/path:Type.Member".
func parseMember(pat string) (member, error) {
	pkg, rest, ok := strings.Cut(pat, ":")
	if !ok || pkg == "" || rest == "" {
		return member{}, fmt.Errorf("analysis: keyflow pattern %q (want pkg:Func or pkg:Type.Member)", pat)
	}
	m := member{pkg: pkg, name: rest}
	if typ, name, ok := strings.Cut(rest, "."); ok {
		m.typ, m.name = typ, name
	}
	return m, nil
}

func memberSet(pats []string) (map[member]bool, error) {
	set := make(map[member]bool, len(pats))
	for _, p := range pats {
		m, err := parseMember(p)
		if err != nil {
			return nil, err
		}
		set[m] = true
	}
	return set, nil
}

// funcMember describes a *types.Func (package function, concrete method,
// or interface method) in member form.
func funcMember(fn *types.Func) member {
	m := member{name: fn.Name()}
	if fn.Pkg() != nil {
		m.pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		m.typ = namedTypeName(sig.Recv().Type())
	}
	return m
}

func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// sinkRecord is one way a function's parameters reach a sink: the bitset
// of leaking parameter slots, the sink description, and the call chain
// from this function down to the sink.
type sinkRecord struct {
	params uint64
	desc   string
	chain  string // " → "-joined callee names, "" when the sink is direct
}

// summary is one function's interprocedural behavior: per-result taint and
// the sinks its parameters reach. Summaries only grow, so the fixed point
// is well defined.
type summary struct {
	rets  []taintVal
	sinks map[string]*sinkRecord // keyed by sink desc
}

func newSummary(fn *types.Func) *summary {
	n := 0
	if sig, ok := fn.Type().(*types.Signature); ok {
		n = sig.Results().Len()
	}
	return &summary{rets: make([]taintVal, n), sinks: make(map[string]*sinkRecord)}
}

// taintEngine is the whole-program analysis state shared across passes.
type taintEngine struct {
	prog      *Program
	cg        *CallGraph
	sources   map[member]bool
	sinks     map[member]bool
	sans      map[member]bool
	keyok     map[string]map[int]string // file -> line -> reason
	summaries map[*types.Func]*summary
	changed   bool
	reporting bool
	reported  map[string]bool
	report    func(pos token.Pos, format string, args ...any)
}

func newTaintEngine(prog *Program, report func(pos token.Pos, format string, args ...any)) (*taintEngine, error) {
	sources, err := memberSet(prog.Config.KeyflowSources)
	if err != nil {
		return nil, err
	}
	sinks, err := memberSet(prog.Config.KeyflowSinks)
	if err != nil {
		return nil, err
	}
	sans, err := memberSet(prog.Config.KeyflowSanitizers)
	if err != nil {
		return nil, err
	}
	eng := &taintEngine{
		prog:      prog,
		cg:        prog.CallGraph(),
		sources:   sources,
		sinks:     sinks,
		sans:      sans,
		summaries: make(map[*types.Func]*summary),
		reported:  make(map[string]bool),
		report:    report,
	}
	eng.collectKeyok()
	return eng, nil
}

// maxTaintPasses bounds the whole-program fixed-point loop; the summary
// lattice converges in two or three passes on this module, the cap only
// guards against pathological inputs.
const maxTaintPasses = 16

func (e *taintEngine) run() {
	for pass := 0; pass < maxTaintPasses; pass++ {
		e.changed = false
		for _, node := range e.cg.Nodes {
			e.analyze(node)
		}
		if !e.changed {
			break
		}
	}
	e.reporting = true
	for _, node := range e.cg.Nodes {
		e.analyze(node)
	}
}

func (e *taintEngine) reportOnce(pos token.Pos, format string, args ...any) {
	if !e.reporting {
		return
	}
	key := fmt.Sprintf("%d|%s", pos, fmt.Sprintf(format, args...))
	if e.reported[key] {
		return
	}
	e.reported[key] = true
	e.report(pos, format, args...)
}

// collectKeyok gathers `//hpnn:keyok(reason)` comments: the sanctioned
// key-material flows. A keyok on a line (or the line above, mirroring
// //hpnn:allow scoping) cuts the taint edge at every call and source read
// on that line. The reason is mandatory — an empty one is itself reported.
func (e *taintEngine) collectKeyok() {
	e.keyok = make(map[string]map[int]string)
	for _, pkg := range e.prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//hpnn:keyok(")
					if !ok {
						continue
					}
					reason, _, ok := strings.Cut(rest, ")")
					if !ok {
						reason = ""
					}
					p := e.prog.Fset.Position(c.Pos())
					file := e.relFile(p.Filename)
					if e.keyok[file] == nil {
						e.keyok[file] = make(map[int]string)
					}
					e.keyok[file][p.Line] = strings.TrimSpace(reason)
				}
			}
		}
	}
}

func (e *taintEngine) relFile(file string) string {
	if rel, err := filepath.Rel(e.prog.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

// keyokAt reports whether a keyok suppression covers pos (same line or the
// line above), and the declared reason.
func (e *taintEngine) keyokAt(pos token.Pos) (string, bool) {
	p := e.prog.Fset.Position(pos)
	lines := e.keyok[e.relFile(p.Filename)]
	if lines == nil {
		return "", false
	}
	for _, l := range [2]int{p.Line, p.Line - 1} {
		if reason, ok := lines[l]; ok {
			return reason, true
		}
	}
	return "", false
}

// reportBadKeyok flags every keyok comment with an empty reason: the
// suppression grammar requires one, so sanctioned flows stay auditable.
func (e *taintEngine) reportBadKeyok() {
	for _, pkg := range e.prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//hpnn:keyok(")
					if !ok {
						continue
					}
					reason, _, ok := strings.Cut(rest, ")")
					if !ok || strings.TrimSpace(reason) == "" {
						e.report(c.Pos(), "//hpnn:keyok requires a reason: //hpnn:keyok(<why this flow is sanctioned>)")
					}
				}
			}
		}
	}
}

// fieldKey identifies one field of one local root object for
// field-sensitive taint.
type fieldKey struct {
	root  types.Object
	field string
}

// fnTaint is the per-function analysis state for one pass over one body.
type fnTaint struct {
	eng      *taintEngine
	node     *FuncNode
	vars     map[types.Object]taintVal
	fields   map[fieldKey]taintVal
	paramBit map[types.Object]int
	results  []types.Object // named results, nil entries for unnamed
	panicFed map[*ast.CallExpr]bool
	sum      *summary
	dirty    bool
}

// analyze runs one pass over one function: seeds parameter bits, walks the
// body to a local fixed point, and merges the discovered summary into the
// engine.
func (e *taintEngine) analyze(node *FuncNode) {
	ft := &fnTaint{
		eng:      e,
		node:     node,
		vars:     make(map[types.Object]taintVal),
		fields:   make(map[fieldKey]taintVal),
		paramBit: make(map[types.Object]int),
		sum:      newSummary(node.Obj),
	}
	sig := node.Obj.Type().(*types.Signature)
	bit := 0
	if recv := sig.Recv(); recv != nil {
		ft.paramBit[recv] = bit
		bit++
	} else {
		bit++ // slot 0 stays reserved so methods and functions share the layout
	}
	for i := 0; i < sig.Params().Len(); i++ {
		ft.paramBit[sig.Params().At(i)] = bit
		bit++
	}
	for i := 0; i < sig.Results().Len(); i++ {
		r := sig.Results().At(i)
		if r.Name() != "" {
			ft.results = append(ft.results, r)
		} else {
			ft.results = append(ft.results, nil)
		}
	}

	// A sink call whose result feeds panic(...) directly formats a crash
	// message, not an output — the same cold-path exemption noalloc grants
	// panic-fed fmt calls.
	ft.panicFed = make(map[*ast.CallExpr]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if b, ok := calleeObject(node.Pkg, call).(*types.Builtin); ok && b.Name() == "panic" {
			for _, arg := range call.Args {
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					ft.panicFed[inner] = true
				}
			}
		}
		return true
	})

	// Local fixed point: loops can feed taint backwards through the body.
	for i := 0; i < 4; i++ {
		ft.dirty = false
		ast.Inspect(node.Decl.Body, ft.visit)
		if !ft.dirty {
			break
		}
	}
	// Named results carry their final taint into the summary.
	for i, r := range ft.results {
		if r != nil {
			ft.mergeRet(i, ft.vars[r])
		}
	}
	e.mergeSummary(node.Obj, ft.sum)
}

func (e *taintEngine) mergeSummary(fn *types.Func, got *summary) {
	cur, ok := e.summaries[fn]
	if !ok {
		e.summaries[fn] = got
		for _, r := range got.rets {
			if r.any() {
				e.changed = true
				break
			}
		}
		if len(got.sinks) > 0 {
			e.changed = true
		}
		return
	}
	for i := range got.rets {
		merged := cur.rets[i].or(got.rets[i])
		if merged != cur.rets[i] {
			cur.rets[i] = merged
			e.changed = true
		}
	}
	for k, sk := range got.sinks {
		if have, ok := cur.sinks[k]; ok {
			if have.params|sk.params != have.params {
				have.params |= sk.params
				e.changed = true
			}
		} else {
			cur.sinks[k] = sk
			e.changed = true
		}
	}
}

func (ft *fnTaint) mergeRet(i int, t taintVal) {
	if i < len(ft.sum.rets) && t.any() {
		merged := ft.sum.rets[i].or(t)
		if merged != ft.sum.rets[i] {
			ft.sum.rets[i] = merged
			ft.dirty = true
		}
	}
}

func (ft *fnTaint) visit(n ast.Node) bool {
	switch node := n.(type) {
	case *ast.AssignStmt:
		ft.assign(node)
	case *ast.ValueSpec:
		ft.valueSpec(node)
	case *ast.RangeStmt:
		if t := ft.tv(node.X); t.any() && node.Value != nil {
			ft.setLV(node.Value, t)
		}
	case *ast.ReturnStmt:
		ft.ret(node)
	case *ast.CallExpr:
		ft.call(node)
	}
	return true
}

func (ft *fnTaint) assign(a *ast.AssignStmt) {
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		for i, t := range ft.tvMulti(a.Rhs[0], len(a.Lhs)) {
			ft.setLV(a.Lhs[i], t)
		}
		return
	}
	for i, r := range a.Rhs {
		if i >= len(a.Lhs) {
			break
		}
		t := ft.tv(r)
		if a.Tok == token.ADD_ASSIGN {
			// Only string concatenation preserves material among the
			// op-assigns; arithmetic accumulation does not.
			if !isStringy(ft.node.Pkg.Info.TypeOf(a.Lhs[i])) {
				continue
			}
		} else if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
			continue
		}
		ft.setLV(a.Lhs[i], t)
	}
}

func (ft *fnTaint) valueSpec(s *ast.ValueSpec) {
	if len(s.Values) == 1 && len(s.Names) > 1 {
		for i, t := range ft.tvMulti(s.Values[0], len(s.Names)) {
			ft.setLV(s.Names[i], t)
		}
		return
	}
	for i, v := range s.Values {
		if i < len(s.Names) {
			ft.setLV(s.Names[i], ft.tv(v))
		}
	}
}

func (ft *fnTaint) ret(r *ast.ReturnStmt) {
	switch {
	case len(r.Results) == 0:
		// bare return: named results merged after the walk
	case len(r.Results) == len(ft.sum.rets):
		for i, expr := range r.Results {
			ft.mergeRet(i, ft.tv(expr))
		}
	case len(r.Results) == 1:
		for i, t := range ft.tvMulti(r.Results[0], len(ft.sum.rets)) {
			ft.mergeRet(i, t)
		}
	}
}

// tvMulti evaluates a single expression producing n values (multi-result
// call, type assertion, map read with ok).
func (ft *fnTaint) tvMulti(e ast.Expr, n int) []taintVal {
	out := make([]taintVal, n)
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		res := ft.call(x)
		copy(out, res)
	case *ast.TypeAssertExpr:
		out[0] = ft.tv(x.X)
	case *ast.IndexExpr:
		out[0] = ft.tv(x)
	case *ast.UnaryExpr: // <-ch with ok
	}
	return out
}

// setLV propagates taint into an lvalue. Selector targets taint only the
// (root, field) pair; index/star targets taint the whole container.
func (ft *fnTaint) setLV(lhs ast.Expr, t taintVal) {
	if !t.any() {
		return
	}
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := ft.node.Pkg.Info.Defs[x]
		if obj == nil {
			obj = ft.node.Pkg.Info.Uses[x]
		}
		if obj == nil {
			return
		}
		ft.setVar(obj, t)
	case *ast.SelectorExpr:
		if root := rootObject(ft.node.Pkg, x.X); root != nil {
			key := fieldKey{root: root, field: x.Sel.Name}
			merged := ft.fields[key].or(t)
			if merged != ft.fields[key] {
				ft.fields[key] = merged
				ft.dirty = true
			}
		}
	case *ast.IndexExpr:
		ft.setLV(x.X, t)
	case *ast.StarExpr:
		ft.setLV(x.X, t)
	case *ast.SliceExpr:
		ft.setLV(x.X, t)
	}
}

func (ft *fnTaint) setVar(obj types.Object, t taintVal) {
	merged := ft.vars[obj].or(t)
	if merged != ft.vars[obj] {
		ft.vars[obj] = merged
		ft.dirty = true
	}
}

// rootObject finds the leftmost identifier object of a selector chain.
func rootObject(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pkg.Info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

// tv computes the taint of one expression, evaluating calls (and their
// sink effects) along the way.
func (ft *fnTaint) tv(e ast.Expr) taintVal {
	info := ft.node.Pkg.Info
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			return taintVal{}
		}
		t := ft.vars[obj]
		if bit, ok := ft.paramBit[obj]; ok {
			t = t.or(taintVal{params: 1 << uint(bit)})
		}
		return t
	case *ast.SelectorExpr:
		return ft.selector(x)
	case *ast.ParenExpr:
		return ft.tv(x.X)
	case *ast.IndexExpr:
		return ft.tv(x.X)
	case *ast.SliceExpr:
		return ft.tv(x.X)
	case *ast.StarExpr:
		return ft.tv(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return ft.tv(x.X)
		}
		return taintVal{}
	case *ast.BinaryExpr:
		// String concatenation is the one material-preserving binary op;
		// arithmetic/bitwise results (lock multiply, keystream XOR) are the
		// protection itself, not a leak.
		if x.Op == token.ADD && isStringy(info.TypeOf(x)) {
			return ft.tv(x.X).or(ft.tv(x.Y))
		}
		return taintVal{}
	case *ast.CompositeLit:
		var t taintVal
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t = t.or(ft.tv(el))
		}
		return t
	case *ast.CallExpr:
		res := ft.call(x)
		if len(res) > 0 {
			return res[0]
		}
		return taintVal{}
	case *ast.TypeAssertExpr:
		return ft.tv(x.X)
	}
	return taintVal{}
}

// selector evaluates a field or method-value selection: configured source
// fields seed taint (unless keyok'd); otherwise the field's own taint and
// the root object's taint both count.
func (ft *fnTaint) selector(se *ast.SelectorExpr) taintVal {
	info := ft.node.Pkg.Info
	sel, ok := info.Selections[se]
	if !ok {
		// Package-qualified identifier: globals are not tracked.
		return taintVal{}
	}
	if sel.Kind() == types.FieldVal {
		if v, ok := sel.Obj().(*types.Var); ok && v.Pkg() != nil {
			m := member{pkg: v.Pkg().Path(), typ: namedTypeName(sel.Recv()), name: v.Name()}
			if ft.eng.sources[m] {
				if _, cut := ft.eng.keyokAt(se.Pos()); cut {
					return taintVal{}
				}
				return taintVal{src: true, origin: m.String()}
			}
		}
		var t taintVal
		if root := rootObject(ft.node.Pkg, se.X); root != nil {
			t = ft.fields[fieldKey{root: root, field: se.Sel.Name}]
		}
		return t.or(ft.tv(se.X))
	}
	return taintVal{}
}

// receiverExpr returns the receiver expression of a method call, or nil.
func receiverExpr(pkg *Package, call *ast.CallExpr) ast.Expr {
	if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if pkg.Info.Selections[se] != nil {
			return se.X
		}
	}
	return nil
}

// call evaluates one call expression: source seeding, sanitizer and keyok
// cuts, sink hits (direct and through callee summaries), and taint
// propagation into the results.
func (ft *fnTaint) call(call *ast.CallExpr) []taintVal {
	info := ft.node.Pkg.Info
	nres := resultCount(info, call)
	out := make([]taintVal, nres)

	// Conversions preserve material exactly: string(b), []byte(s).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			out[0] = ft.tv(call.Args[0])
		}
		return out
	}

	obj := calleeObject(ft.node.Pkg, call)
	if b, ok := obj.(*types.Builtin); ok {
		return ft.builtin(b, call, out)
	}

	// Argument taint vector aligned with summary parameter slots:
	// receiver at 0, parameters from 1, variadic args folded into the
	// last slot.
	recv := receiverExpr(ft.node.Pkg, call)
	fn, _ := obj.(*types.Func)
	argT := ft.argTaints(fn, recv, call)

	// A keyok on the call line is the sanctioned-flow escape hatch: it
	// cuts the taint edge entirely — results are clean, sinks unreported.
	if _, ok := ft.eng.keyokAt(call.Pos()); ok {
		return out
	}

	if fn != nil {
		m := funcMember(fn)
		if ft.eng.sources[m] {
			for i := range out {
				out[i] = taintVal{src: true, origin: m.String()}
			}
			return out
		}
		if ft.eng.sans[m] {
			return out
		}
		if desc, ok := ft.sinkDesc(fn, m); ok {
			if !ft.panicFed[call] {
				ft.hitSink(call.Pos(), desc, "", argT)
			}
			return out
		}
		if ft.eng.cg.Node(fn) != nil {
			return ft.applySummary(call, fn, argT, out)
		}
		// External (stdlib) non-sink call: results carry the material when
		// their type can hold it; a method mutating its receiver is
		// approximated by tainting the receiver.
		merged := mergeTaints(argT)
		if merged.any() {
			if recv != nil {
				ft.setLV(recv, merged)
			}
			ft.taintResults(call, out, merged)
		}
		return out
	}

	// Indirect call through a function value: propagate conservatively.
	merged := mergeTaints(argT)
	if merged.any() {
		ft.taintResults(call, out, merged)
	}
	return out
}

func mergeTaints(ts []taintVal) taintVal {
	var out taintVal
	for _, t := range ts {
		out = out.or(t)
	}
	return out
}

// argTaints evaluates the receiver and arguments into summary-aligned
// slots (receiver 0, params 1.., variadic folded into the last).
func (ft *fnTaint) argTaints(fn *types.Func, recv ast.Expr, call *ast.CallExpr) []taintVal {
	nparams := len(call.Args)
	variadic := false
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			nparams = sig.Params().Len()
			variadic = sig.Variadic()
		}
	}
	out := make([]taintVal, 1+maxInt(nparams, len(call.Args)))
	if recv != nil {
		out[0] = ft.tv(recv)
	}
	for i, arg := range call.Args {
		slot := i + 1
		if variadic && i >= nparams-1 {
			slot = nparams // fold every variadic arg into the last slot
		}
		if slot < len(out) {
			out[slot] = out[slot].or(ft.tv(arg))
		}
	}
	return out[:1+nparams]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (ft *fnTaint) builtin(b *types.Builtin, call *ast.CallExpr, out []taintVal) []taintVal {
	switch b.Name() {
	case "append":
		var t taintVal
		for _, arg := range call.Args {
			t = t.or(ft.tv(arg))
		}
		out[0] = t
	case "copy":
		if len(call.Args) == 2 {
			if t := ft.tv(call.Args[1]); t.any() {
				ft.setLV(call.Args[0], t)
			}
		}
	case "len", "cap", "make", "new", "min", "max", "delete", "clear", "panic", "print", "println":
		// len/cap expose only size; the rest either allocate fresh memory
		// or are cold paths the check keeps out of scope.
	default:
		// Nested calls in the arguments were already evaluated by tv.
	}
	return out
}

// sinkDesc decides whether a resolved callee is a sink: a configured
// module sink (the serve wire encoders) or one of the built-in output
// boundaries — fmt/log verbs, error construction, os/file and buffered
// writes, io writers, and anything in net.
func (ft *fnTaint) sinkDesc(fn *types.Func, m member) (string, bool) {
	if ft.eng.sinks[m] {
		return m.String(), true
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch path := pkg.Path(); {
	case path == "fmt" || path == "log":
		return path + "." + fn.Name(), true
	case path == "errors" && (fn.Name() == "New" || fn.Name() == "Join"):
		return "errors." + fn.Name(), true
	case path == "os" || path == "bufio" || path == "io":
		return m.String(), true
	case path == "net" || strings.HasPrefix(path, "net/"):
		return m.String(), true
	}
	return "", false
}

// hitSink records tainted material reaching a sink: source taint becomes a
// diagnostic at pos, parameter taint becomes a summary entry so callers
// report at their own call sites.
func (ft *fnTaint) hitSink(pos token.Pos, desc, chain string, argT []taintVal) {
	merged := mergeTaints(argT)
	if !merged.any() {
		return
	}
	if merged.src {
		if chain == "" {
			ft.eng.reportOnce(pos, "key material from %s reaches %s", merged.origin, desc)
		} else {
			ft.eng.reportOnce(pos, "key material from %s reaches %s (via %s)", merged.origin, desc, chain)
		}
	}
	if merged.params != 0 {
		// One record per sink description, keeping the first-seen (shortest,
		// since passes run in stable program order) chain: keying on the
		// chain too would mint a longer key every pass around a recursive
		// cycle and the fixed point would never close.
		if have, ok := ft.sum.sinks[desc]; ok {
			if have.params|merged.params != have.params {
				have.params |= merged.params
				ft.dirty = true
			}
		} else {
			ft.sum.sinks[desc] = &sinkRecord{params: merged.params, desc: desc, chain: chain}
			ft.dirty = true
		}
	}
}

// applySummary folds a module callee's summary into the call site:
// parameter→result flows substitute the argument taints, and
// parameter→sink records become findings here (source taint) or summary
// entries one level up (parameter taint), with the callee prepended to the
// chain.
func (ft *fnTaint) applySummary(call *ast.CallExpr, fn *types.Func, argT []taintVal, out []taintVal) []taintVal {
	sum := ft.eng.summaries[fn]
	if sum == nil {
		return out
	}
	for i := range out {
		if i >= len(sum.rets) {
			break
		}
		r := sum.rets[i]
		if r.src {
			out[i] = out[i].or(taintVal{src: true, origin: r.origin})
		}
		for bit := 0; bit < len(argT); bit++ {
			if r.params&(1<<uint(bit)) != 0 {
				out[i] = out[i].or(argT[bit])
			}
		}
	}
	descs := make([]string, 0, len(sum.sinks))
	for desc := range sum.sinks {
		descs = append(descs, desc)
	}
	sort.Strings(descs)
	for _, desc := range descs {
		sk := sum.sinks[desc]
		var merged taintVal
		for bit := 0; bit < len(argT); bit++ {
			if sk.params&(1<<uint(bit)) != 0 {
				merged = merged.or(argT[bit])
			}
		}
		if !merged.any() {
			continue
		}
		chain := fn.Name()
		if sk.chain != "" {
			chain += " → " + sk.chain
		}
		ft.hitSink(call.Pos(), sk.desc, chain, []taintVal{merged})
	}
	return out
}

// taintResults taints the call's results whose types can carry material
// (bytes, strings, slices, structs, pointers — not bool/numeric/error).
func (ft *fnTaint) taintResults(call *ast.CallExpr, out []taintVal, t taintVal) {
	info := ft.node.Pkg.Info
	rt := info.TypeOf(call)
	if rt == nil {
		return
	}
	if tup, ok := rt.(*types.Tuple); ok {
		for i := 0; i < tup.Len() && i < len(out); i++ {
			if propagatable(tup.At(i).Type()) {
				out[i] = out[i].or(t)
			}
		}
		return
	}
	if len(out) > 0 && propagatable(rt) {
		out[0] = out[0].or(t)
	}
}

// propagatable reports whether a type can carry key material across an
// external call boundary. Booleans, numerics and errors are the
// comparison/length/status shapes the check deliberately lets through.
func propagatable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Interface:
		return !isErrorType(t)
	}
	return true
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

func isStringy(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func resultCount(info *types.Info, call *ast.CallExpr) int {
	t := info.TypeOf(call)
	if t == nil {
		return 1
	}
	if tup, ok := t.(*types.Tuple); ok {
		return maxInt(tup.Len(), 1)
	}
	return 1
}
