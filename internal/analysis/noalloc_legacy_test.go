package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// runNoAllocLegacy is the pre-callgraph noalloc walker, kept verbatim as
// the oracle for TestNoAllocCallgraphParity: the hand-rolled BFS that
// interleaved edge discovery with the reporting walk, before the check
// moved onto the shared callgraph. It shares checkNoAllocCall with the
// production check, so the parity test exercises exactly what the
// migration changed — call resolution, suppression edge cuts, value-arg
// edges, and BFS attribution order.
func runNoAllocLegacy(prog *Program, report func(pos token.Pos, format string, args ...any)) {
	allows := collectAllows(prog)
	type fnInfo struct {
		pkg  *Package
		decl *ast.FuncDecl
	}
	fns := make(map[*types.Func]fnInfo)
	var roots []*types.Func

	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				fns[obj] = fnInfo{pkg: pkg, decl: decl}
				name := decl.Name.Name
				isRoot := false
				for _, suf := range prog.Config.NoAllocSuffixes {
					if strings.HasSuffix(name, suf) {
						isRoot = true
						break
					}
				}
				if !isRoot && funcHasAnnotation(prog, file, decl, "noalloc") {
					isRoot = true
				}
				if isRoot {
					roots = append(roots, obj)
				}
			}
		}
	}

	rootOf := make(map[*types.Func]*types.Func)
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		if _, seen := rootOf[r]; !seen {
			rootOf[r] = r
			queue = append(queue, r)
		}
	}
	enqueue := func(callee, root *types.Func) {
		if _, ok := fns[callee]; !ok {
			return
		}
		if _, seen := rootOf[callee]; seen {
			return
		}
		rootOf[callee] = root
		queue = append(queue, callee)
	}

	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		info := fns[fn]
		root := rootOf[fn]
		where := fn.Name()
		if root != fn {
			where = fn.Name() + " (on the noalloc path via " + root.Name() + ")"
		}

		panicFed := make(map[ast.Node]bool)

		ast.Inspect(info.decl.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncLit:
				report(node.Pos(), "func literal in %s may capture variables and allocate", where)
				return false
			case *ast.UnaryExpr:
				if node.Op == token.AND {
					if lit, ok := node.X.(*ast.CompositeLit); ok {
						report(node.Pos(), "&%s literal in %s escapes to the heap", litName(lit), where)
						return false
					}
				}
			case *ast.CompositeLit:
				switch info.pkg.Info.TypeOf(node).Underlying().(type) {
				case *types.Slice:
					report(node.Pos(), "slice literal in %s allocates", where)
				case *types.Map:
					report(node.Pos(), "map literal in %s allocates", where)
				}
			case *ast.CallExpr:
				if allows.at(prog, node.Pos(), "noalloc") {
					return false
				}
				if b, ok := calleeObject(info.pkg, node).(*types.Builtin); ok && b.Name() == "panic" {
					for _, arg := range node.Args {
						if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
							if fn, ok := calleeObject(info.pkg, inner).(*types.Func); ok &&
								fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
								panicFed[inner] = true
							}
						}
					}
					return true
				}
				if panicFed[node] {
					return true
				}
				checkNoAllocCall(prog, info.pkg, node, where, report, func(callee *types.Func) {
					enqueue(callee, root)
				})
			}
			return true
		})
	}
}

// TestNoAllocCallgraphParity runs the migrated (callgraph-backed) noalloc
// check and the legacy walker over every fixture and over the repo itself,
// and requires bit-identical diagnostics — message text, position, and
// attribution order ("via <root>") all included.
func TestNoAllocCallgraphParity(t *testing.T) {
	fixtures := []string{
		"noallocdata", "determinismdata", "gofuncdata",
		"errcheckdata", "sealdata", "suppressdata",
		"keyflowdata", "keyflowbaddata",
	}
	for _, fixture := range fixtures {
		t.Run(fixture, func(t *testing.T) {
			prog, err := Load(filepath.Join("testdata", "src", fixture))
			if err != nil {
				t.Fatalf("loading fixture %s: %v", fixture, err)
			}
			compareNoAllocWalkers(t, prog)
		})
	}
	t.Run("self", func(t *testing.T) {
		if testing.Short() {
			t.Skip("self parity loads and type-checks the whole module; skipped in -short mode")
		}
		prog, err := Load(filepath.Join("..", ".."))
		if err != nil {
			t.Fatalf("loading repo: %v", err)
		}
		compareNoAllocWalkers(t, prog)
	})
}

func compareNoAllocWalkers(t *testing.T, prog *Program) {
	t.Helper()
	collect := func(run func(*Program, func(token.Pos, string, ...any))) []string {
		var out []string
		run(prog, func(pos token.Pos, format string, args ...any) {
			p := prog.Fset.Position(pos)
			out = append(out, p.String()+": "+fmt.Sprintf(format, args...))
		})
		return out
	}
	got := collect(runNoAlloc)
	want := collect(runNoAllocLegacy)
	if len(got) != len(want) {
		t.Fatalf("callgraph walker: %d findings, legacy walker: %d\ncallgraph: %v\nlegacy: %v",
			len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d differs:\ncallgraph: %s\nlegacy:    %s", i, got[i], want[i])
		}
	}
}
