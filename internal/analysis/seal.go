package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// workspaceGetters are the tensor.Workspace methods that hand out (and on a
// sealed workspace may refuse to grow) buffers.
var workspaceGetters = map[string]bool{
	"Get":       true,
	"GetZeroed": true,
	"MatVec":    true,
}

// runSeal enforces the sealed-workspace contract lexically: within one
// function body, once Seal() has been called on a Workspace receiver, no
// getter may be called on the same receiver later in that body (unless a
// Reset(), which lifts the seal, intervenes). Seal marks the end of a
// shard's warmup — every buffer the steady state needs must already exist —
// so a getter textually after Seal in the same function is either dead
// warmup code or a latent panic waiting for an unseen key. Receivers are
// compared by expression text (w, s.ws, ...), which is exact for the
// repo's idiom of method-local workspace handles.
func runSeal(prog *Program, report func(pos token.Pos, format string, args ...any)) {
	type event struct {
		recv string
		pos  token.Pos
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				var seals, resets []event
				var gets []struct {
					event
					name string
				}
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || !isWorkspace(pkg, sel.X) {
						return true
					}
					recv := types.ExprString(sel.X)
					switch name := sel.Sel.Name; {
					case name == "Seal":
						seals = append(seals, event{recv, call.Pos()})
					case name == "Reset":
						resets = append(resets, event{recv, call.Pos()})
					case workspaceGetters[name]:
						gets = append(gets, struct {
							event
							name string
						}{event{recv, call.Pos()}, name})
					}
					return true
				})
				for _, g := range gets {
					for _, s := range seals {
						if s.recv != g.recv || s.pos >= g.pos {
							continue
						}
						lifted := false
						for _, r := range resets {
							if r.recv == g.recv && r.pos > s.pos && r.pos < g.pos {
								lifted = true
								break
							}
						}
						if !lifted {
							report(g.pos, "%s.%s after %s.Seal() in %s: sealed workspaces must have their full working set before Seal",
								g.recv, g.name, g.recv, decl.Name.Name)
							break
						}
					}
				}
			}
		}
	}
}

// isWorkspace reports whether e's type is (a pointer to) a named type
// called Workspace. Matching by name rather than by the concrete
// tensor.Workspace object keeps the check testable against fixture
// packages with their own Workspace type.
func isWorkspace(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Workspace"
}
