package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Config names the package sets each check applies to. Patterns are import
// paths, with a trailing "/..." matching any subpackage. The defaults encode
// the repo's invariants; tests substitute their fixture package paths.
type Config struct {
	// MapRangePkgs restricts `for range` over maps (iteration order is
	// randomized, so a bare map range in a compute package breaks bitwise
	// reproducibility).
	MapRangePkgs []string
	// RandAllowPkgs may import math/rand; everywhere else must use the
	// deterministic internal/rng generators.
	RandAllowPkgs []string
	// TimeAllowPkgs may call time.Now/time.Since; wall-clock reads anywhere
	// else make key-dependent computation irreproducible.
	TimeAllowPkgs []string
	// GoStmtAllowPkgs may contain raw `go` statements; all other
	// parallelism must route through the tensor worker pool.
	GoStmtAllowPkgs []string
	// ErrcheckPkgs must not silently discard error returns.
	ErrcheckPkgs []string
	// NoAllocSuffixes name function-name suffixes that imply the
	// zero-allocation contract, in addition to //hpnn:noalloc annotations.
	NoAllocSuffixes []string
	// KeyflowSources name the key-material origins the keyflow taint
	// analysis seeds from, as "pkg:Func", "pkg:Type.Method", or
	// "pkg:Type.Field" patterns.
	KeyflowSources []string
	// KeyflowSinks name module functions that put bytes on an external
	// boundary (the serve wire encoders); the stdlib output boundaries
	// (fmt, log, errors.New, os, io, bufio, net) are always sinks.
	KeyflowSinks []string
	// KeyflowSanitizers name the deliberate choke points whose results and
	// effects are considered safe: calls through them cut the taint edge.
	KeyflowSanitizers []string
}

// DefaultConfig returns the repo's invariant configuration.
func DefaultConfig() Config {
	return Config{
		MapRangePkgs: []string{
			"hpnn/internal/tensor", "hpnn/internal/nn", "hpnn/internal/tpu",
			"hpnn/internal/train", "hpnn/internal/core", "hpnn/internal/watermark",
			"hpnn/internal/modelio", "hpnn/internal/lockscheme",
		},
		RandAllowPkgs: []string{"hpnn/internal/rng"},
		TimeAllowPkgs: []string{
			"hpnn/internal/serve", "hpnn/internal/train", "hpnn/internal/cryptobase",
		},
		GoStmtAllowPkgs: []string{
			"hpnn/internal/tensor", "hpnn/internal/serve", "hpnn/internal/train",
		},
		ErrcheckPkgs: []string{
			"hpnn/cmd/...", "hpnn/internal/modelio", "hpnn/internal/serve",
			"hpnn/internal/lockscheme",
		},
		NoAllocSuffixes: []string{"Into", "SliceInto"},
		KeyflowSources: []string{
			// Raw key accessors on the 256-bit model key.
			"hpnn/internal/keys:Key.Bytes",
			"hpnn/internal/keys:Key.Hex",
			"hpnn/internal/keys:Key.Bit",
			// Key-device secrets: derived streams, the PUF-style
			// permutation, and per-column lock bits.
			"hpnn/internal/keys:Device.MaskStream",
			"hpnn/internal/keys:Device.Permutation",
			"hpnn/internal/keys:Device.BitsForColumns",
			"hpnn/internal/keys:Device.ColumnBit",
			// HPCK lock state: factors, engagement flag, recovered bits.
			"hpnn/internal/nn:Lock.Factors",
			"hpnn/internal/nn:Lock.Engaged",
			"hpnn/internal/nn:Lock.Bits",
			"hpnn/internal/core:Model.KeyBits",
		},
		KeyflowSinks: []string{
			"hpnn/internal/serve:writeFrame",
			"hpnn/internal/serve:encodeRequest",
			"hpnn/internal/serve:EncodeRequest",
			"hpnn/internal/serve:EncodeRequestTo",
			"hpnn/internal/serve:EncodeResponse",
		},
		KeyflowSanitizers: []string{
			// Publish is the owner-sanctioned release point of a scheme's
			// public artifact; the contract suite checks it scrubs key bits.
			"hpnn/internal/lockscheme:Scheme.Publish",
			// The checkpoint encryption path: ciphertext is safe to emit.
			"hpnn/internal/cryptobase:EncryptParams",
			// One-way key-identity digest (Mix64 chain), safe to log.
			"hpnn/internal/keys:Device.Fingerprint",
		},
	}
}

// matchPkg reports whether the import path matches any pattern; a pattern
// ending in "/..." matches the prefix and every subpackage.
func matchPkg(path string, patterns []string) bool {
	for _, pat := range patterns {
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return true
			}
		} else if path == pat {
			return true
		}
	}
	return false
}

// Diagnostic is one finding: a position, the check that produced it, and a
// human-readable message.
type Diagnostic struct {
	File    string `json:"file"` // module-root-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Check is one named invariant pass over the whole program.
type Check struct {
	Name string
	Doc  string
	Run  func(prog *Program, report func(pos token.Pos, format string, args ...any))
}

// Checks returns the full registry in stable order.
func Checks() []Check {
	return []Check{
		{Name: "noalloc", Doc: "zero-allocation contract for *Into kernels, //hpnn:noalloc functions, and everything they statically call", Run: runNoAlloc},
		{Name: "determinism", Doc: "no map-order iteration in compute packages, no math/rand outside internal/rng, no wall-clock reads outside serve/train/cryptobase", Run: runDeterminism},
		{Name: "gofunc", Doc: "raw go statements only in the tensor worker pool and the serving layer", Run: runGoFunc},
		{Name: "errcheck", Doc: "no silently discarded error returns in cmd/*, modelio, and serve", Run: runErrcheck},
		{Name: "seal", Doc: "no Workspace getter calls lexically after Seal() on the same receiver", Run: runSeal},
		{Name: "keyflow", Doc: "interprocedural taint: key material (device secrets, lock bits, factors) must not reach fmt/log verbs, error construction, wire encoders, or file/net writes except through sanctioned choke points", Run: runKeyflow},
	}
}

// CheckNames returns the registered check names in stable order.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

// Lint runs the selected checks (all registered checks when names is empty)
// over the program and returns the surviving diagnostics sorted by position.
// Findings carrying a per-line `//hpnn:allow(<check>)` suppression — on the
// flagged line or the line directly above it — are dropped.
func Lint(prog *Program, names ...string) ([]Diagnostic, error) {
	selected := Checks()
	if len(names) > 0 {
		byName := make(map[string]Check)
		for _, c := range Checks() {
			byName[c.Name] = c
		}
		selected = selected[:0]
		for _, n := range names {
			c, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("analysis: unknown check %q (have %s)", n, strings.Join(CheckNames(), ", "))
			}
			selected = append(selected, c)
		}
	}

	allow := collectAllows(prog)
	var diags []Diagnostic
	for _, c := range selected {
		check := c
		check.Run(prog, func(pos token.Pos, format string, args ...any) {
			p := prog.Fset.Position(pos)
			file := p.Filename
			if rel, err := filepath.Rel(prog.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
			if allow.suppressed(file, p.Line, check.Name) {
				return
			}
			diags = append(diags, Diagnostic{
				File: file, Line: p.Line, Col: p.Column,
				Check: check.Name, Message: fmt.Sprintf(format, args...),
			})
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags, nil
}

// allowSet maps file -> line -> set of check names suppressed on that line.
type allowSet map[string]map[int]map[string]bool

// at reports whether a finding at pos would be suppressed for check.
func (a allowSet) at(prog *Program, pos token.Pos, check string) bool {
	p := prog.Fset.Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(prog.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return a.suppressed(file, p.Line, check)
}

// suppressed reports whether a finding on (file, line) is covered by an
// allow comment on the same line or the line immediately above.
func (a allowSet) suppressed(file string, line int, check string) bool {
	lines := a[file]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		if checks := lines[l]; checks != nil && (checks[check] || checks["*"]) {
			return true
		}
	}
	return false
}

// collectAllows scans every comment in the program for the suppression
// marker `//hpnn:allow(check1,check2) optional reason`.
func collectAllows(prog *Program) allowSet {
	set := make(allowSet)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					p := prog.Fset.Position(c.Pos())
					file := p.Filename
					if rel, err := filepath.Rel(prog.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
						file = filepath.ToSlash(rel)
					}
					if set[file] == nil {
						set[file] = make(map[int]map[string]bool)
					}
					if set[file][p.Line] == nil {
						set[file][p.Line] = make(map[string]bool)
					}
					for _, n := range names {
						set[file][p.Line][n] = true
					}
				}
			}
		}
	}
	return set
}

// parseAllow extracts check names from one `//hpnn:allow(a,b)` comment.
func parseAllow(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "//hpnn:allow(")
	if !ok {
		return nil, false
	}
	list, _, ok := strings.Cut(rest, ")")
	if !ok {
		return nil, false
	}
	var names []string
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// funcHasAnnotation reports whether the function declaration carries the
// given `//hpnn:<marker>` annotation in its doc comment or on the line
// directly above it.
func funcHasAnnotation(prog *Program, f *ast.File, decl *ast.FuncDecl, marker string) bool {
	want := "//hpnn:" + marker
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if text, ok := strings.CutPrefix(c.Text, want); ok && (text == "" || text[0] == ' ') {
				return true
			}
		}
	}
	declLine := prog.Fset.Position(decl.Pos()).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if prog.Fset.Position(c.Pos()).Line != declLine-1 {
				continue
			}
			if text, ok := strings.CutPrefix(c.Text, want); ok && (text == "" || text[0] == ' ') {
				return true
			}
		}
	}
	return false
}
