package analysis

import (
	"go/ast"
	"go/token"
)

// runGoFunc confines raw `go` statements to the packages that own the repo's
// two sanctioned concurrency surfaces: the tensor worker pool (persistent
// workers, allocation-free dispatch, deterministic partitioning) and the
// serving layer (batcher and shard goroutines with managed lifecycles).
// Everywhere else an ad-hoc goroutine bypasses SetMaxWorkers, evades the
// pool's determinism guarantees, and has no drain path — route the work
// through Parallel/ParallelCtx/ParallelKernel instead, or suppress with
// //hpnn:allow(gofunc) where a goroutine's lifecycle is genuinely managed
// (e.g. a server main's accept loop).
func runGoFunc(prog *Program, report func(pos token.Pos, format string, args ...any)) {
	for _, pkg := range prog.Pkgs {
		if matchPkg(pkg.Path, prog.Config.GoStmtAllowPkgs) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					report(g.Pos(), "raw go statement outside the worker pool and serve: use tensor.Parallel/ParallelCtx/ParallelKernel")
				}
				return true
			})
		}
	}
}
