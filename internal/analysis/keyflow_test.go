package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func keyflowFixtureConfig(c *Config) {
	c.KeyflowSources = []string{
		"keyflowdata:Vault.Secret",
		"keyflowdata:Vault.Bits",
	}
	c.KeyflowSinks = []string{"keyflowdata:send"}
	c.KeyflowSanitizers = []string{"keyflowdata:Scrub"}
}

func TestKeyflowGolden(t *testing.T) {
	runGolden(t, "keyflowdata", keyflowFixtureConfig, "keyflow")
}

// TestKeyflowSanitizerRemoved proves the sanitizer cut carries the golden
// fixture: with Scrub deconfigured, the Sanitized function's fmt verb —
// silent in the golden run — must fire.
func TestKeyflowSanitizerRemoved(t *testing.T) {
	load := func(mutate func(*Config)) []Diagnostic {
		prog, err := Load(filepath.Join("testdata", "src", "keyflowdata"))
		if err != nil {
			t.Fatalf("loading fixture: %v", err)
		}
		mutate(&prog.Config)
		diags, err := Lint(prog, "keyflow")
		if err != nil {
			t.Fatalf("linting fixture: %v", err)
		}
		return diags
	}
	withSan := load(keyflowFixtureConfig)
	withoutSan := load(func(c *Config) {
		keyflowFixtureConfig(c)
		c.KeyflowSanitizers = nil
	})
	if len(withoutSan) <= len(withSan) {
		t.Fatalf("removing the sanitizer found %d diagnostics, sanitized run found %d — the cut is not load-bearing",
			len(withoutSan), len(withSan))
	}
	have := make(map[string]bool, len(withSan))
	for _, d := range withSan {
		have[d.String()] = true
	}
	for _, d := range withoutSan {
		if have[d.String()] {
			continue
		}
		if !strings.Contains(d.Message, "reaches fmt.Printf") {
			t.Errorf("unexpected extra diagnostic after removing sanitizer: %s", d)
		}
	}
}

// TestKeyflowKeyokReason: an empty-reason keyok cuts the edge (no flow
// diagnostic on the annotated write) but is itself reported.
func TestKeyflowKeyokReason(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "src", "keyflowbaddata"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	prog.Config.KeyflowSources = []string{"keyflowbaddata:Vault.Secret"}
	diags, err := Lint(prog, "keyflow")
	if err != nil {
		t.Fatalf("linting fixture: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the missing-reason finding: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "keyok requires a reason") {
		t.Errorf("diagnostic = %s, want a keyok-requires-a-reason finding", diags[0])
	}
}

// TestParseMember pins the source/sink/sanitizer pattern grammar.
func TestParseMember(t *testing.T) {
	cases := []struct {
		pat  string
		want member
		err  bool
	}{
		{pat: "hpnn/internal/keys:Key.Hex", want: member{pkg: "hpnn/internal/keys", typ: "Key", name: "Hex"}},
		{pat: "hpnn/internal/cryptobase:EncryptParams", want: member{pkg: "hpnn/internal/cryptobase", name: "EncryptParams"}},
		{pat: "keyflowdata:send", want: member{pkg: "keyflowdata", name: "send"}},
		{pat: "no-colon", err: true},
		{pat: ":Member", err: true},
		{pat: "pkg:", err: true},
	}
	for _, c := range cases {
		got, err := parseMember(c.pat)
		if c.err {
			if err == nil {
				t.Errorf("parseMember(%q) succeeded, want error", c.pat)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseMember(%q): %v", c.pat, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseMember(%q) = %+v, want %+v", c.pat, got, c.want)
		}
	}
}
