package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	parent.Uint64()
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	// Forking must not advance the parent.
	c1again := parent.Fork(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Fork is not deterministic at a fixed parent position")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forks with different labels produced identical output")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n < 40; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := New(11)
	const n = 200000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		got := float64(c) / n
		if math.Abs(got-0.1) > 0.01 {
			t.Fatalf("bucket %d frequency %v deviates from 0.1", i, got)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMix64Injective(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 5000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %d", prev, i, h)
		}
		seen[h] = i
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(21)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range(-3,5) = %v out of bounds", v)
		}
	}
}

func TestSplitMix64Sequence(t *testing.T) {
	a := NewSplitMix64(12345)
	b := NewSplitMix64(12345)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		v := a.Next()
		if v != b.Next() {
			t.Fatal("SplitMix64 not deterministic")
		}
		if seen[v] {
			t.Fatalf("SplitMix64 repeated a value within 1000 draws")
		}
		seen[v] = true
	}
}

func TestBoolRoughlyFair(t *testing.T) {
	r := New(77)
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < 4700 || trues > 5300 {
		t.Fatalf("Bool gave %d/10000 trues", trues)
	}
}
